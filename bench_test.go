// Package repro's root benchmarks wrap the experiment harness: one
// testing.B target per table/figure of the paper. Each iteration runs
// the full (quick-scale) experiment in virtual time; run with
//
//	go test -bench=. -benchmem
//
// and see cmd/raizn-bench for full-scale runs with the printed tables.
package main

import (
	"io"
	"testing"

	"raizn/internal/bench"
)

func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(name, io.Discard, true); err != nil {
			b.Fatalf("%s: %v", name, err)
		}
	}
}

// BenchmarkTable1Metadata regenerates Table 1 (metadata locations/sizes).
func BenchmarkTable1Metadata(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkRawDevices regenerates the §6.1 raw device numbers.
func BenchmarkRawDevices(b *testing.B) { runExperiment(b, "raw") }

// BenchmarkFig7MdraidStripeSize regenerates Figure 7 (mdraid stripe-unit
// sweep).
func BenchmarkFig7MdraidStripeSize(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8RaiznStripeSize regenerates Figure 8 (RAIZN stripe-unit
// sweep).
func BenchmarkFig8RaiznStripeSize(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9HeadToHead regenerates Figure 9 (RAIZN vs mdraid
// throughput and latency).
func BenchmarkFig9HeadToHead(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10GCTimeseries regenerates Figure 10 (overwrite time
// series; FTL GC cliff vs flat RAIZN).
func BenchmarkFig10GCTimeseries(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11Degraded regenerates Figure 11 (degraded reads).
func BenchmarkFig11Degraded(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12Rebuild regenerates Figure 12 (time-to-repair vs valid
// data).
func BenchmarkFig12Rebuild(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13KVS regenerates Figure 13 (db_bench workloads).
func BenchmarkFig13KVS(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14OLTP regenerates Figure 14 (sysbench OLTP).
func BenchmarkFig14OLTP(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkAblatePartialParity regenerates the §5.4 partial-parity
// mechanism ablation (pp-log vs inline-meta vs ZRWA).
func BenchmarkAblatePartialParity(b *testing.B) { runExperiment(b, "ablate-pp") }

// BenchmarkAblateResetWAL regenerates the §5.2 reset-WAL cost ablation.
func BenchmarkAblateResetWAL(b *testing.B) { runExperiment(b, "ablate-wal") }

// BenchmarkAblateJournal regenerates the mdraid write-journal cost
// ablation.
func BenchmarkAblateJournal(b *testing.B) { runExperiment(b, "ablate-journal") }
