// Command raizn-bench regenerates the paper's tables and figures on the
// simulated device arrays. Run with -list to see the experiment registry,
// -exp <name> to run one, or -all for everything.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"raizn/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiments")
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // surface live objects, not transient garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
	}()

	switch {
	case *list:
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.Name, e.Title)
		}
	case *all:
		for _, e := range bench.Experiments() {
			if err := bench.Run(e.Name, os.Stdout, *quick); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	case *exp != "":
		if err := bench.Run(*exp, os.Stdout, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
