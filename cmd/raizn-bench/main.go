// Command raizn-bench regenerates the paper's tables and figures on the
// simulated device arrays. Run with -list to see the experiment registry,
// -exp <name> to run one, or -all for everything.
package main

import (
	"flag"
	"fmt"
	"os"

	"raizn/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiments")
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	flag.Parse()

	switch {
	case *list:
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.Name, e.Title)
		}
	case *all:
		for _, e := range bench.Experiments() {
			if err := bench.Run(e.Name, os.Stdout, *quick); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	case *exp != "":
		if err := bench.Run(*exp, os.Stdout, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
