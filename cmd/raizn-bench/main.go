// Command raizn-bench regenerates the paper's tables and figures on the
// simulated device arrays. Run with -list to see the experiment registry,
// -exp <name> to run one, or -all for everything.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"raizn/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiments")
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	metrics := flag.String("metrics", "", "write a JSON metrics-registry snapshot per experiment to this path (-all inserts the experiment name before the extension)")
	flight := flag.String("flight", "", "ride a flight recorder on each experiment's raizn arrays and write the sampled time series (raizn-flight/v1 JSON) to this path (-all inserts the experiment name before the extension)")
	compare := flag.Bool("compare", false, "compare two bench result files: raizn-bench -compare old.json new.json")
	threshold := flag.Float64("threshold", 5, "regression threshold in percent for -compare")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // surface live objects, not transient garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
	}()

	switch {
	case *compare:
		args := flag.Args()
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "usage: raizn-bench -compare [-threshold pct] old.json new.json")
			os.Exit(2)
		}
		old, err := bench.LoadReport(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cur, err := bench.LoadReport(args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if bench.Compare(os.Stdout, old, cur, *threshold) > 0 {
			os.Exit(1)
		}
	case *list:
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.Name, e.Title)
		}
	case *all:
		for _, e := range bench.Experiments() {
			opts := bench.Options{
				Quick:       *quick,
				MetricsPath: metricsPathFor(*metrics, e.Name),
				FlightPath:  metricsPathFor(*flight, e.Name),
			}
			if err := bench.RunOpts(e.Name, os.Stdout, opts); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	case *exp != "":
		if err := bench.RunOpts(*exp, os.Stdout, bench.Options{Quick: *quick, MetricsPath: *metrics, FlightPath: *flight}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// metricsPathFor derives a per-experiment snapshot path from the -metrics
// base path: "m.json" + "writepath" -> "m.writepath.json".
func metricsPathFor(base, name string) string {
	if base == "" {
		return ""
	}
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "." + name + ext
}
