// Command raizn-faults runs scripted crash and failure scenarios against
// a RAIZN array and verifies the §5 recovery guarantees end to end:
// random power loss during writes, partial zone resets, crash + device
// failure, and rebuild under load. It exits non-zero if any scenario's
// invariant is violated.
//
// Chaos mode drives the deterministic crash-point explorer instead:
//
//	raizn-faults -chaos <scenario>                 enumerate crash points
//	raizn-faults -chaos <scenario> -explore        crash at each, check recovery
//	raizn-faults -chaos <scenario> -forensics N    crash at crossing N, recover the
//	                                               persisted black box, print report
//	raizn-faults -replay <seed-string>             replay a printed repro
//
// Every run prints its seed; the same seed reproduces the same run bit
// for bit, and every violation prints a replay seed string.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"raizn/internal/chaos"
	"raizn/internal/raizn"
	"raizn/internal/scrub"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

var failures int

func check(ok bool, format string, args ...interface{}) {
	status := "ok  "
	if !ok {
		status = "FAIL"
		failures++
	}
	fmt.Printf("  [%s] %s\n", status, fmt.Sprintf(format, args...))
}

func devConfig() zns.Config {
	cfg := zns.DefaultConfig()
	cfg.NumZones = 12
	cfg.ZoneSize = 320
	cfg.ZoneCap = 256
	return cfg
}

// pattern is per-sector deterministic: the bytes of a sector depend only
// on its own LBA, so content written in any chunking verifies the same.
func pattern(lba int64, n, ss int) []byte {
	b := make([]byte, n*ss)
	for s := 0; s < n; s++ {
		cur := lba + int64(s)
		for k := 0; k < ss; k++ {
			b[s*ss+k] = byte(cur) ^ byte(k) ^ byte(cur>>8)
		}
	}
	return b
}

func main() {
	seeds := flag.Int("seeds", 10, "random crash seeds per scenario")
	seed := flag.Int64("seed", 1, "base seed; the same seed reproduces the same run")
	chaosName := flag.String("chaos", "", "run the named chaos scenario (see -explore); lists crash points without it")
	explore := flag.Bool("explore", false, "with -chaos: crash at every sampled crossing and check recovery")
	maxPoints := flag.Int("max", 0, "with -explore: cap explored crash points, sampled evenly (0 = all)")
	forensics := flag.Int("forensics", -1, "with -chaos: crash at census crossing N, recover the persisted flight black box from the clones, and print its incident report")
	replay := flag.String("replay", "", "replay a chaos repro seed string as printed for a violation")
	flag.Parse()

	if *replay != "" {
		os.Exit(runReplay(*replay))
	}
	if *chaosName != "" {
		os.Exit(runChaos(*chaosName, *explore, *maxPoints, *forensics, *seed))
	}

	fmt.Printf("seed=%d\n", *seed)
	fmt.Println("scenario 1: random power loss during mixed writes/flushes")
	for i := int64(0); i < int64(*seeds); i++ {
		scenarioRandomCrash(*seed + i)
	}
	fmt.Println("scenario 2: crash between the physical resets of a logical zone")
	scenarioPartialReset()
	fmt.Println("scenario 3: crash followed by device loss (partial-parity recovery)")
	scenarioCrashPlusFailure()
	fmt.Println("scenario 4: writes racing a device rebuild")
	scenarioRebuildUnderLoad()
	fmt.Println("scenario 5: scrub repairs injected rot and latent read errors")
	scenarioScrubRepair()
	fmt.Println("scenario 6: health monitor auto-fails an erroring device and rebuilds")
	scenarioHealthAutoRebuild()

	if failures > 0 {
		fmt.Printf("%d failure(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("all scenarios passed")
}

// runChaos drives the crash-point explorer over a registered scenario.
// Without -explore it only enumerates the crossings. Returns the exit
// code: 0 clean, 1 violations, 2 usage error.
func runChaos(name string, explore bool, maxPoints, forensics int, seed int64) int {
	s := chaos.Lookup(name)
	if s == nil {
		fmt.Fprintf(os.Stderr, "unknown chaos scenario %q (have %v)\n", name, chaos.Names())
		return 2
	}
	fmt.Printf("chaos scenario %s seed=%d ops=%d\n", s.Name, seed, len(s.Ops))

	if forensics >= 0 {
		rep, err := chaos.CrashForensics(s, forensics, chaos.VarFlushed, chaos.Options{Seed: seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "forensics: %v\n", err)
			return 1
		}
		fmt.Print(rep)
		return 0
	}

	if !explore {
		census, err := chaos.Census(s, seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "census: %v\n", err)
			return 1
		}
		for i, cp := range census {
			fmt.Printf("%4d  %s\n", i, cp)
		}
		fmt.Printf("%d crash points\n", len(census))
		return 0
	}

	opt := chaos.Options{Seed: seed, MaxPoints: maxPoints}
	res, err := chaos.Explore(s, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "explore: %v\n", err)
		return 1
	}
	fmt.Printf("census=%d explored=%d recovered=%d violations=%d\n",
		len(res.Census), res.Explored, res.Recovered, len(res.Violations))
	for _, v := range res.Violations {
		fmt.Printf("violation: %v\n", v)
		fmt.Printf("  replay: %s\n", chaos.ReproFor(s, v, opt).SeedString())
		// File the incident: recover the black box the crashed run
		// persisted and print the forensics a deployment would see.
		if rep, err := chaos.ForensicsFor(s, v, opt); err == nil {
			fmt.Print(rep)
		} else {
			fmt.Printf("  forensics: %v\n", err)
		}
	}
	if len(res.Violations) > 0 {
		return 1
	}
	return 0
}

// runReplay re-runs a printed repro seed string deterministically and
// reports the violations it reproduces. Exit code 1 signals the violation
// is (still) present, 2 a malformed seed.
func runReplay(seedStr string) int {
	r, err := chaos.ParseSeed(seedStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Printf("replaying %s\n", r.SeedString())
	vios, s, err := chaos.Replay(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Printf("ops kept: %v\n", r.OpsOf(s))
	for _, v := range vios {
		fmt.Printf("violation: %v\n", v)
	}
	if len(vios) > 0 {
		fmt.Printf("%d violation(s) reproduced\n", len(vios))
		return 1
	}
	fmt.Println("no violations reproduced")
	return 0
}

func scenarioRandomCrash(seed int64) {
	clk := vclock.New()
	clk.Run(func() {
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(clk, devConfig())
		}
		vol, err := raizn.Create(clk, devs, raizn.DefaultConfig())
		if err != nil {
			check(false, "create: %v", err)
			return
		}
		rng := rand.New(rand.NewSource(seed))
		ss := vol.SectorSize()
		var flushedWP int64
		lba := int64(0)
		for lba < 400 {
			n := int64(1 + rng.Intn(48))
			if lba+n > 400 {
				n = 400 - lba
			}
			vol.Write(lba, pattern(lba, int(n), ss), 0)
			lba += n
			if rng.Intn(4) == 0 {
				vol.Flush()
				flushedWP = lba
			}
		}
		for _, d := range devs {
			d.PowerLoss(rng)
		}
		vol2, err := raizn.Mount(clk, devs, raizn.DefaultConfig())
		if err != nil {
			check(false, "seed %d: mount: %v", seed, err)
			return
		}
		wp := vol2.Zone(0).WP
		okWP := wp >= flushedWP && wp <= 400
		okData := true
		if wp > 0 {
			buf := make([]byte, wp*int64(ss))
			if err := vol2.Read(0, buf); err != nil {
				okData = false
			} else {
				for at := int64(0); at < wp; at++ {
					want := pattern(at, 1, ss)
					if !bytes.Equal(buf[at*int64(ss):(at+1)*int64(ss)], want) {
						okData = false
						break
					}
				}
			}
		}
		check(okWP && okData, "seed %d: recovered WP=%d (flushed %d), prefix intact=%v", seed, wp, flushedWP, okData)
	})
}

func scenarioPartialReset() {
	clk := vclock.New()
	clk.Run(func() {
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(clk, devConfig())
		}
		vol, _ := raizn.Create(clk, devs, raizn.DefaultConfig())
		ss := vol.SectorSize()
		zs := vol.ZoneSectors()
		vol.Write(0, pattern(0, int(zs), ss), 0)
		vol.Flush()

		// Start a reset on another goroutine and cut power while the
		// physical resets are propagating.
		resetStarted := clk.NewFuture()
		clk.Go(func() {
			resetStarted.Complete(nil)
			vol.ResetZone(0) // will be interrupted by power loss
		})
		resetStarted.Wait()
		clk.Sleep(devs[0].Config().ResetLatency / 2)
		for _, d := range devs {
			d.PowerLoss(nil)
		}
		vol2, err := raizn.Mount(clk, devs, raizn.DefaultConfig())
		if err != nil {
			check(false, "mount after interrupted reset: %v", err)
			return
		}
		st := vol2.Zone(0).State
		// Either the reset completed everywhere (WAL replay) or it
		// never touched any zone; both leave a consistent zone.
		okState := st == zns.ZoneEmpty || st == zns.ZoneClosed || st == zns.ZoneFull
		var okUse bool
		if st == zns.ZoneEmpty {
			okUse = vol2.Write(0, pattern(0, 16, ss), 0) == nil
		} else {
			buf := make([]byte, 16*ss)
			okUse = vol2.Read(0, buf) == nil
		}
		check(okState && okUse, "post-reset-crash zone state %v, usable=%v", st, okUse)
	})
}

func scenarioCrashPlusFailure() {
	clk := vclock.New()
	clk.Run(func() {
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(clk, devConfig())
		}
		vol, _ := raizn.Create(clk, devs, raizn.DefaultConfig())
		ss := vol.SectorSize()
		// Partial stripe, flushed (so partial parity is durable).
		vol.Write(0, pattern(0, 40, ss), 0)
		vol.Flush()
		// Crash, then mount WITHOUT one of the data devices.
		for _, d := range devs {
			d.PowerLoss(nil)
		}
		avail := []*zns.Device{devs[0], devs[1], devs[3], devs[4]}
		vol2, err := raizn.Mount(clk, avail, raizn.DefaultConfig())
		if err != nil {
			check(false, "degraded mount after crash: %v", err)
			return
		}
		wp := vol2.Zone(0).WP
		buf := make([]byte, wp*int64(ss))
		okRead := vol2.Read(0, buf) == nil
		okData := okRead && bytes.Equal(buf, pattern(0, int(wp), ss))
		check(wp == 40 && okData, "degraded+crash recovery: WP=%d (want 40), data intact=%v", wp, okData)
	})
}

// unitSector maps (zone, stripe, data unit, intra offset) to the owning
// device and its absolute sector, mirroring the volume's arithmetic
// layout (su=16, 5 devices, physical zone stride = cfg.ZoneSize).
func unitSector(cfg zns.Config, z, u int, s, intra int64) (int, int64) {
	const n = 5
	pd := n - 1 - int((s+int64(z))%int64(n))
	dev := (pd + 1 + u) % n
	return dev, int64(z)*cfg.ZoneSize + s*16 + intra
}

func scenarioScrubRepair() {
	clk := vclock.New()
	clk.Run(func() {
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(clk, devConfig())
		}
		vol, _ := raizn.Create(clk, devs, raizn.DefaultConfig())
		ss := vol.SectorSize()
		zs := vol.ZoneSectors()
		for z := int64(0); z < 3; z++ {
			vol.Write(z*zs, pattern(z*zs, int(zs), ss), 0)
		}
		vol.Flush()

		// Bit-rot in four distinct stripes plus two latent read errors.
		type hit struct {
			z, u     int
			s, intra int64
		}
		rots := []hit{{0, 0, 0, 0}, {0, 2, 3, 7}, {1, 1, 9, 15}, {2, 3, 14, 4}}
		lats := []hit{{1, 0, 2, 6}, {2, 2, 7, 11}}
		for _, h := range rots {
			dev, pba := unitSector(devConfig(), h.z, h.u, h.s, h.intra)
			if err := devs[dev].CorruptSector(pba); err != nil {
				check(false, "corrupt: %v", err)
				return
			}
		}
		for _, h := range lats {
			dev, pba := unitSector(devConfig(), h.z, h.u, h.s, h.intra)
			if err := devs[dev].InjectReadError(pba); err != nil {
				check(false, "inject: %v", err)
				return
			}
		}

		sb := scrub.New(scrub.Config{Clock: clk, Target: scrub.RaiznTarget{V: vol}, Repair: true})
		stats, err := sb.RunPass()
		okPass := err == nil && stats.Mismatches == int64(len(rots)) &&
			stats.ReadErrors == int64(len(lats)) &&
			stats.RepairedData == int64(len(rots)+len(lats)) && stats.Unrepaired == 0
		check(okPass, "scrub pass repaired %d/%d damaged stripes (%d read errors, %d unrepaired)",
			stats.RepairedData, len(rots)+len(lats), stats.ReadErrors, stats.Unrepaired)

		// Full readback: every acked sector still holds its pattern.
		okData := true
		buf := make([]byte, zs*int64(ss))
		for z := int64(0); z < 3; z++ {
			if vol.Read(z*zs, buf) != nil || !bytes.Equal(buf, pattern(z*zs, int(zs), ss)) {
				okData = false
				break
			}
		}
		check(okData, "full readback intact after repair")

		stats, err = sb.RunPass()
		check(err == nil && stats.Mismatches == 0 && stats.ReadErrors == 0,
			"second pass clean (%d mismatches, %d read errors)", stats.Mismatches, stats.ReadErrors)
	})
}

func scenarioHealthAutoRebuild() {
	clk := vclock.New()
	clk.Run(func() {
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(clk, devConfig())
		}
		vol, _ := raizn.Create(clk, devs, raizn.DefaultConfig())
		ss := vol.SectorSize()
		zs := vol.ZoneSectors()
		for z := int64(0); z < 2; z++ {
			vol.Write(z*zs, pattern(z*zs, int(zs), ss), 0)
		}
		vol.Flush()

		rebuilt := clk.NewFuture()
		var mon *scrub.Monitor
		mon = scrub.NewMonitor(scrub.MonitorConfig{
			Clock: clk, Array: scrub.RaiznArray{V: vol},
			SuspectThreshold: 2, FailThreshold: 5,
			Interval: 10 * time.Millisecond,
			OnFail: func(dev int) {
				if _, err := vol.ReplaceDevice(zns.NewDevice(clk, devConfig())); err != nil {
					rebuilt.Complete(err)
					return
				}
				mon.MarkReplaced(dev)
				rebuilt.Complete(nil)
			},
		})

		// A persistent latent sector: every foreground read of that unit
		// errors (and is transparently repaired), driving the counter up.
		dev, pba := unitSector(devConfig(), 0, 1, 4, 3)
		if err := devs[dev].InjectReadError(pba); err != nil {
			check(false, "inject: %v", err)
			return
		}
		lba := 4*vol.StripeSectors() + 16 // unit 1 of stripe 4
		buf := make([]byte, 16*ss)
		for i := 0; i < 2; i++ {
			if err := vol.Read(lba, buf); err != nil {
				check(false, "read: %v", err)
				return
			}
		}
		mon.Poll()
		okSuspect := mon.State(dev) == scrub.Suspect && vol.Degraded() < 0
		check(okSuspect, "device %d suspect after 2 read errors, array still whole", dev)

		for i := 0; i < 3; i++ {
			if err := vol.Read(lba, buf); err != nil {
				check(false, "read: %v", err)
				return
			}
		}
		mon.Start()
		err := rebuilt.Wait()
		mon.Stop()
		okRebuild := err == nil && vol.Degraded() < 0 && mon.State(dev) == scrub.Healthy
		check(okRebuild, "device %d auto-failed at threshold and rebuilt onto replacement (err=%v)", dev, err)

		okData := true
		buf2 := make([]byte, zs*int64(ss))
		for z := int64(0); z < 2; z++ {
			if vol.Read(z*zs, buf2) != nil || !bytes.Equal(buf2, pattern(z*zs, int(zs), ss)) {
				okData = false
				break
			}
		}
		check(okData, "data intact after health-driven rebuild")
	})
}

func scenarioRebuildUnderLoad() {
	clk := vclock.New()
	clk.Run(func() {
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(clk, devConfig())
		}
		vol, _ := raizn.Create(clk, devs, raizn.DefaultConfig())
		ss := vol.SectorSize()
		zs := vol.ZoneSectors()
		for z := int64(0); z < 4; z++ {
			vol.Write(z*zs, pattern(z*zs, int(zs), ss), 0)
		}
		vol.FailDevice(1)
		done := clk.NewFuture()
		clk.Go(func() {
			_, err := vol.ReplaceDevice(zns.NewDevice(clk, devConfig()))
			done.Complete(err)
		})
		// Concurrent writes to a fresh zone while the rebuild runs.
		base := 4 * zs
		for off := int64(0); off < 128; off += 16 {
			vol.Write(base+off, pattern(base+off, 16, ss), 0)
		}
		err := done.Wait()
		okRebuild := err == nil && vol.Degraded() == -1
		buf := make([]byte, 128*ss)
		okData := vol.Read(base, buf) == nil && bytes.Equal(buf, pattern(base, 128, ss))
		// Verify redundancy of the racing writes.
		vol.FailDevice(0)
		okDeg := vol.Read(base, buf) == nil && bytes.Equal(buf, pattern(base, 128, ss))
		check(okRebuild && okData && okDeg, "rebuild under load: rebuilt=%v data=%v redundant=%v", okRebuild, okData, okDeg)
	})
}
