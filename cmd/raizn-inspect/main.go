// Command raizn-inspect builds a demo RAIZN array, applies an optional
// scripted workload, and dumps volume, logical-zone, and per-device
// physical-zone state — the debugging view of the address-space layout
// of §4.1 — plus the device-health and scrub-progress view of the
// background scrub subsystem. With -serve it instead dumps the
// multi-tenant serving stack: a volume's extent map across hosted
// arrays, the per-tenant QoS table, and the SLO alarm. With -incident it
// runs the incident-forensics demo: the flight recorder rides a workload
// whose tail slows one device, the slow-IO watchdog trips, and the
// frozen black box renders its deterministic incident report.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"raizn/internal/obs"
	"raizn/internal/obs/flight"
	"raizn/internal/raizn"
	"raizn/internal/scrub"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

func main() {
	fillZones := flag.Int("fill", 2, "logical zones to fill before dumping")
	partial := flag.Int("partial", 24, "extra sectors to write into the next zone")
	su := flag.Int64("su", 16, "stripe unit size in sectors")
	engine := flag.String("engine", "logged", "parity-persistence engine: logged or zraid")
	degraded := flag.Bool("degraded", false, "fail device 0 before dumping")
	rot := flag.Int("rot", 0, "seeded single-sector corruptions to inject into filled zones")
	rotSeed := flag.Int64("rot-seed", 1, "seed for corruption placement")
	doScrub := flag.Bool("scrub", false, "run one repair scrub pass before dumping")
	trace := flag.Bool("trace", false, "trace a mixed read/write workload: per-phase breakdown, queue-depth timeline, watchdog-flagged slow IOs")
	zones := flag.Bool("zones", false, "zone-state observability: heatmap, occupancy timeline, lifetime stats, layered WA report")
	serve := flag.Bool("serve", false, "multi-tenant serving view: extent map, per-tenant QoS table, SLO alarm breaches")
	incident := flag.Bool("incident", false, "incident-forensics demo: flight-record a workload, trip the slow-IO watchdog, print the deterministic incident report")
	slowDev := flag.Int("slow-dev", 2, "device to slow during the traced workload (with -trace/-incident)")
	slowFactor := flag.Float64("slow-factor", 8, "service-time multiplier applied to -slow-dev (with -trace/-incident)")
	flag.Parse()

	clk := vclock.New()
	if *serve {
		clk.Run(func() { runServeView(clk) })
		return
	}
	if *incident {
		clk.Run(func() { runIncident(clk, *slowDev, *slowFactor) })
		return
	}
	clk.Run(func() {
		cfg := zns.DefaultConfig()
		cfg.NumZones = 12
		cfg.ZoneSize = 1280
		cfg.ZoneCap = 1024
		rcfg := raizn.DefaultConfig()
		rcfg.StripeUnitSectors = *su
		switch *engine {
		case "logged":
		case "zraid":
			rcfg.ParityEngine = raizn.EngineZRAID
			// Three PP slots (stride su+1) in flight per pool zone.
			cfg.ZRWASectors = 3 * (*su + 1)
		default:
			fmt.Fprintf(os.Stderr, "unknown -engine %q (want logged or zraid)\n", *engine)
			os.Exit(1)
		}
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(clk, cfg)
		}
		tr := obs.NewTracer(clk, obs.Config{Watchdog: obs.WatchdogConfig{MinSamples: 32}})
		rcfg.Tracer = tr
		jrn := obs.NewJournal(clk, obs.JournalConfig{Capacity: 16384})
		if *zones {
			// Enable before the first write so lifetime accounting is exact.
			jrn.Enable()
			rcfg.Journal = jrn
		}
		vol, err := raizn.Create(clk, devs, rcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}

		buf := make([]byte, 32*vol.SectorSize())
		for z := 0; z < *fillZones && z < vol.NumZones(); z++ {
			base := int64(z) * vol.ZoneSectors()
			for off := int64(0); off < vol.ZoneSectors(); off += 32 {
				vol.Write(base+off, buf, 0)
			}
		}
		if *partial > 0 {
			base := int64(*fillZones) * vol.ZoneSectors()
			for off := 0; off+32 <= *partial; off += 32 {
				vol.Write(base+int64(off), buf, 0)
			}
			if rem := int64(*partial % 32); rem > 0 {
				vol.Write(base+int64(*partial)-rem, buf[:rem*int64(vol.SectorSize())], 0)
			}
		}
		vol.Flush()

		if *trace {
			if *slowDev < 0 || *slowDev >= len(devs) {
				fmt.Fprintf(os.Stderr, "trace: -slow-dev %d out of range\n", *slowDev)
				os.Exit(1)
			}
			runTrace(vol, devs, tr, *fillZones, *slowDev, *slowFactor)
		}

		if *zones {
			runZones(vol, devs, clk, jrn, *fillZones)
			return
		}

		if *rot > 0 && *fillZones > 0 {
			rng := rand.New(rand.NewSource(*rotSeed))
			n := len(devs)
			seen := map[[2]int64]bool{}
			// One corruption per distinct (zone, stripe) pair, so the
			// request is capped at the number of pairs available.
			if pairs := int64(*fillZones) * vol.StripesPerZone(); int64(*rot) > pairs {
				fmt.Fprintf(os.Stderr, "rot: capping %d requested corruptions at %d (one per stripe of %d filled zones)\n",
					*rot, pairs, *fillZones)
				*rot = int(pairs)
			}
			for i := 0; i < *rot; i++ {
				var z, s int64
				for {
					z = int64(rng.Intn(*fillZones))
					s = rng.Int63n(vol.StripesPerZone())
					if !seen[[2]int64{z, s}] {
						seen[[2]int64{z, s}] = true
						break
					}
				}
				u := rng.Intn(n - 1)
				intra := rng.Int63n(*su)
				pd := n - 1 - int((s+z)%int64(n))
				dev := (pd + 1 + u) % n
				if err := devs[dev].CorruptSector(z*cfg.ZoneSize + s**su + intra); err != nil {
					fmt.Fprintln(os.Stderr, "corrupt:", err)
					os.Exit(1)
				}
			}
			fmt.Printf("injected %d seeded corruptions (seed %d)\n", *rot, *rotSeed)
		}

		if *doScrub {
			sb := scrub.New(scrub.Config{Clock: clk, Target: scrub.RaiznTarget{V: vol}, Repair: true})
			stats, err := sb.RunPass()
			if err != nil {
				fmt.Fprintln(os.Stderr, "scrub:", err)
				os.Exit(1)
			}
			fmt.Printf("scrub pass: %d stripes verified, %d skipped, %d mismatches, %d data + %d parity repaired, %d unrepaired, %.1f MiB read in %v\n",
				stats.Stripes, stats.Skipped, stats.Mismatches, stats.RepairedData,
				stats.RepairedParity, stats.Unrepaired, float64(stats.BytesRead)/(1<<20), stats.Elapsed)
		}

		if *degraded {
			vol.FailDevice(0)
		}

		fmt.Printf("volume: %d logical zones, zone=%d sectors, stripe=%d sectors, su=%d sectors, engine=%v, degraded=%d\n",
			vol.NumZones(), vol.ZoneSectors(), vol.StripeSectors(), *su, vol.ParityEngineKind(), vol.Degraded())
		if vol.ParityEngineKind().String() == "zraid" {
			st := vol.PPEngineStats()
			fmt.Printf("parity engine: pp_volatile=%dB pp_permanent=%dB fallbacks=%d gc_runs=%d gc_migrated=%d\n",
				st.VolatileBytes, st.PermanentBytes, st.FallbackTotal, st.GCRuns, st.GCMigrated)
		}
		fmt.Println("\nlogical zones:")
		for _, zd := range vol.ReportZones() {
			if zd.State == zns.ZoneEmpty {
				continue
			}
			fmt.Printf("  z%-3d %-8v wp=%-8d persisted=%-8d gen=%-3d remapped=%v\n",
				zd.Index, zd.State, zd.WP, zd.PersistedWP, vol.Generation(zd.Index), zd.Remapped)
		}

		fmt.Println("\nscrub progress (next stripe to verify / stripes per zone):")
		for z, pos := range vol.ScrubProgress() {
			if pos == 0 && vol.Zone(z).State == zns.ZoneEmpty {
				continue
			}
			fmt.Printf("  z%-3d %d/%d  checksum coverage=%d stripes\n",
				z, pos, vol.StripesPerZone(), vol.ChecksumCoverage(z))
		}

		mon := scrub.NewMonitor(scrub.MonitorConfig{
			Clock: clk, Array: scrub.RaiznArray{V: vol},
			SuspectThreshold: 1, FailThreshold: 100,
		})
		mon.Poll()
		fmt.Println("\ndevice health:")
		for i := range devs {
			re, corr := vol.DeviceErrorCounters(i)
			state := mon.State(i).String()
			if vol.Degraded() == i {
				state = "failed (removed)"
			}
			fmt.Printf("  dev%d: %-16s read-errors=%-4d corruptions=%d\n", i, state, re, corr)
		}

		fmt.Println("\nphysical zones (per device):")
		for i, d := range devs {
			if *degraded && i == 0 {
				fmt.Printf("  dev%d: FAILED\n", i)
				continue
			}
			fmt.Printf("  dev%d:", i)
			for _, zd := range d.ReportZones() {
				if zd.State == zns.ZoneEmpty {
					continue
				}
				tag := ""
				if role := vol.PhysZoneRole(zd.Index); role != "data" {
					tag = "[" + role + "]"
				}
				fmt.Printf(" z%d%s=%v/%d", zd.Index, tag, zd.State, zd.WP-d.ZoneStart(zd.Index))
			}
			w, r, fl, rs := d.Counters()
			fmt.Printf("  [written=%dKiB read=%dKiB flushes=%d resets=%d]\n", w>>10, r>>10, fl, rs)
		}
	})
}

// runIncident is the end-to-end forensics demo: the full black-box
// stack — metrics registry, event journal, enabled tracer, flight
// recorder — rides a demo array through a mixed workload whose tail
// slows one device. The slow-IO watchdog flags the stragglers, the
// first flag freezes the recorder with a slow-io trigger, and the
// incident report renders to stdout. Everything runs on the virtual
// clock, so two invocations print byte-identical reports (CI diffs
// them).
func runIncident(clk *vclock.Clock, slowDev int, factor float64) {
	cfg := zns.DefaultConfig()
	cfg.NumZones = 12
	cfg.ZoneSize = 1280
	cfg.ZoneCap = 1024
	devs := make([]*zns.Device, 5)
	for i := range devs {
		devs[i] = zns.NewDevice(clk, cfg)
	}
	if slowDev < 0 || slowDev >= len(devs) {
		fmt.Fprintf(os.Stderr, "incident: -slow-dev %d out of range\n", slowDev)
		os.Exit(1)
	}
	reg := obs.NewRegistry()
	jrn := obs.NewJournal(clk, obs.JournalConfig{Capacity: 16384})
	jrn.Enable()
	tr := obs.NewTracer(clk, obs.Config{Watchdog: obs.WatchdogConfig{MinSamples: 32}})
	tr.Enable()
	rcfg := raizn.DefaultConfig()
	rcfg.Metrics = reg
	rcfg.Tracer = tr
	rcfg.Journal = jrn
	vol, err := raizn.Create(clk, devs, rcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rec := flight.New(flight.Config{
		Clock: clk, Registry: reg, Journal: jrn, Label: "demo",
		Degraded:   func() bool { return vol.Degraded() >= 0 },
		MinSamples: 32,
	})
	tr.SetObserver(rec)

	const chunk = 32
	ops := int(vol.ZoneSectors() / chunk)
	if ops > 128 {
		ops = 128
	}
	slowAt := ops * 3 / 4
	wbuf := make([]byte, chunk*vol.SectorSize())
	rbuf := make([]byte, chunk*vol.SectorSize())
	rng := rand.New(rand.NewSource(7))
	var inc *flight.Incident
	for i := 0; i < ops; i++ {
		if i == slowAt {
			devs[slowDev].SetSlowdown(factor)
		}
		if err := vol.Write(int64(i)*chunk, wbuf, 0); err != nil {
			fmt.Fprintln(os.Stderr, "incident write:", err)
			os.Exit(1)
		}
		if i > 0 {
			off := int64(rng.Intn(i)) * chunk
			if err := vol.Read(off, rbuf); err != nil {
				fmt.Fprintln(os.Stderr, "incident read:", err)
				os.Exit(1)
			}
		}
		if inc == nil {
			if flagged, _ := tr.Watchdog().Flagged(); len(flagged) > 0 {
				inc = rec.Incident(flight.Trigger{
					Kind: flight.TrigSlowIO,
					Detail: fmt.Sprintf("watchdog flagged %d slow IO(s); dev%d running %.0fx slow since op %d",
						len(flagged), slowDev, factor, slowAt),
					Dev:  slowDev,
					Zone: -1,
				})
			}
		}
	}
	devs[slowDev].SetSlowdown(1)
	if inc == nil {
		fmt.Fprintln(os.Stderr, "incident: watchdog never fired; try a higher -slow-factor")
		os.Exit(1)
	}
	if err := inc.WriteReport(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runTrace drives a mixed read/write workload with tracing enabled,
// slows one device three quarters of the way through, and prints the
// critical-path breakdown, the device queue-depth timeline, and the span
// trees the slow-IO watchdog flagged.
func runTrace(vol *raizn.Volume, devs []*zns.Device, tr *obs.Tracer, fillZones, slowDev int, factor float64) {
	// Write into a fresh zone past the partial one so the sequential-write
	// constraint holds whatever -fill/-partial were.
	zone := fillZones + 1
	if zone >= vol.NumZones() {
		fmt.Fprintln(os.Stderr, "trace: no free zone left after -fill")
		os.Exit(1)
	}
	const chunk = 32
	ops := int(vol.ZoneSectors() / chunk)
	if ops > 128 {
		ops = 128
	}
	slowAt := ops * 3 / 4

	tr.Enable()
	defer tr.Disable()

	base := int64(zone) * vol.ZoneSectors()
	wbuf := make([]byte, chunk*vol.SectorSize())
	rbuf := make([]byte, chunk*vol.SectorSize())
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < ops; i++ {
		if i == slowAt {
			devs[slowDev].SetSlowdown(factor)
		}
		if err := vol.Write(base+int64(i)*chunk, wbuf, 0); err != nil {
			fmt.Fprintln(os.Stderr, "trace write:", err)
			os.Exit(1)
		}
		if i > 0 {
			off := int64(rng.Intn(i)) * chunk
			if err := vol.Read(base+off, rbuf); err != nil {
				fmt.Fprintln(os.Stderr, "trace read:", err)
				os.Exit(1)
			}
		}
	}
	devs[slowDev].SetSlowdown(1)

	fmt.Printf("=== trace: %d writes + %d reads (32 sectors each) in zone %d; dev%d slowed %.0fx from op %d ===\n",
		ops, ops-1, zone, slowDev, factor, slowAt)
	roots := tr.Snapshot()

	fmt.Println("\nper-phase critical path:")
	obs.Analyze(roots).Write(os.Stdout)

	fmt.Println("\ndevice queue depth:")
	obs.WriteTimeline(os.Stdout, obs.QueueDepthTimeline(roots), 24)

	flagged, dropped := tr.Watchdog().Flagged()
	if thr, ok := tr.Watchdog().Threshold(obs.OpWrite); ok {
		fmt.Printf("\nwatchdog: write threshold %v", thr)
		if rthr, rok := tr.Watchdog().Threshold(obs.OpRead); rok {
			fmt.Printf(", read threshold %v", rthr)
		}
		fmt.Println()
	}
	fmt.Printf("watchdog flagged %d slow IOs (%d more dropped):\n", len(flagged), dropped)
	const maxTrees = 3
	for i, s := range flagged {
		if i == maxTrees {
			fmt.Printf("... %d more flagged span trees omitted\n", len(flagged)-maxTrees)
			break
		}
		fmt.Println()
		fmt.Print(obs.FormatSpanTree(s))
	}
	fmt.Println()
}
