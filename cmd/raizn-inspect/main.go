// Command raizn-inspect builds a demo RAIZN array, applies an optional
// scripted workload, and dumps volume, logical-zone, and per-device
// physical-zone state — the debugging view of the address-space layout
// of §4.1.
package main

import (
	"flag"
	"fmt"
	"os"

	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

func main() {
	fillZones := flag.Int("fill", 2, "logical zones to fill before dumping")
	partial := flag.Int("partial", 24, "extra sectors to write into the next zone")
	su := flag.Int64("su", 16, "stripe unit size in sectors")
	degraded := flag.Bool("degraded", false, "fail device 0 before dumping")
	flag.Parse()

	clk := vclock.New()
	clk.Run(func() {
		cfg := zns.DefaultConfig()
		cfg.NumZones = 12
		cfg.ZoneSize = 1280
		cfg.ZoneCap = 1024
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(clk, cfg)
		}
		rcfg := raizn.DefaultConfig()
		rcfg.StripeUnitSectors = *su
		vol, err := raizn.Create(clk, devs, rcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}

		buf := make([]byte, 32*vol.SectorSize())
		for z := 0; z < *fillZones && z < vol.NumZones(); z++ {
			base := int64(z) * vol.ZoneSectors()
			for off := int64(0); off < vol.ZoneSectors(); off += 32 {
				vol.Write(base+off, buf, 0)
			}
		}
		if *partial > 0 {
			base := int64(*fillZones) * vol.ZoneSectors()
			for off := 0; off+32 <= *partial; off += 32 {
				vol.Write(base+int64(off), buf, 0)
			}
			if rem := int64(*partial % 32); rem > 0 {
				vol.Write(base+int64(*partial)-rem, buf[:rem*int64(vol.SectorSize())], 0)
			}
		}
		vol.Flush()
		if *degraded {
			vol.FailDevice(0)
		}

		fmt.Printf("volume: %d logical zones, zone=%d sectors, stripe=%d sectors, su=%d sectors, degraded=%d\n",
			vol.NumZones(), vol.ZoneSectors(), vol.StripeSectors(), *su, vol.Degraded())
		fmt.Println("\nlogical zones:")
		for _, zd := range vol.ReportZones() {
			if zd.State == zns.ZoneEmpty {
				continue
			}
			fmt.Printf("  z%-3d %-8v wp=%-8d persisted=%-8d gen=%-3d remapped=%v\n",
				zd.Index, zd.State, zd.WP, zd.PersistedWP, vol.Generation(zd.Index), zd.Remapped)
		}
		fmt.Println("\nphysical zones (per device):")
		for i, d := range devs {
			if *degraded && i == 0 {
				fmt.Printf("  dev%d: FAILED\n", i)
				continue
			}
			fmt.Printf("  dev%d:", i)
			for _, zd := range d.ReportZones() {
				if zd.State == zns.ZoneEmpty {
					continue
				}
				fmt.Printf(" z%d=%v/%d", zd.Index, zd.State, zd.WP-d.ZoneStart(zd.Index))
			}
			w, r, fl, rs := d.Counters()
			fmt.Printf("  [written=%dKiB read=%dKiB flushes=%d resets=%d]\n", w>>10, r>>10, fl, rs)
		}
	})
}
