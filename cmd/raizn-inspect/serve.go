package main

import (
	"errors"
	"fmt"
	"os"
	"time"

	"raizn/internal/obs"
	"raizn/internal/obs/flight"
	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/volmgr"
	"raizn/internal/zns"
)

// The -serve view builds a small multi-tenant serving stack — RAIZN
// arrays hosted behind a volume manager — drives one deterministic
// burst, and dumps the serving-side state: the volume's extent map,
// the per-tenant QoS table, and the SLO alarm, which extends the
// slow-IO watchdog from "which IO was slow" to "which tenant's tail
// is out of line".
const (
	serveArrays  = 2
	serveDevs    = 5
	serveTenants = 8
	serveChunk   = 16 // sectors per write
	serveWindow  = 1  // per-client outstanding submissions; serial keeps
	// the burst service-time-bound so per-tenant tails reflect the
	// devices beneath each extent, not shared queueing

	// One device on the last array runs slow, so the tenants whose
	// extents land there develop a visibly worse tail.
	serveSlowDev  = 2
	serveSlowFact = 8.0

	// The serving SLO: an absolute 2ms p99 objective per tenant.
	serveSLOTarget = 2 * time.Millisecond

	// t6's token-bucket ceiling; its client overruns it on purpose so
	// admission control sheds visibly.
	serveRateLimit  = 8192 // sectors/s
	serveRateBurst  = 64   // sectors
	serveLimitedWin = 24
)

func runServeView(clk *vclock.Clock) {
	cfg := zns.DefaultConfig()
	cfg.NumZones = 12
	cfg.ZoneSize = 1280
	cfg.ZoneCap = 1024

	m := volmgr.NewManager(clk, volmgr.Config{})
	var slowed *zns.Device
	for a := 0; a < serveArrays; a++ {
		devs := make([]*zns.Device, serveDevs)
		for i := range devs {
			devs[i] = zns.NewDevice(clk, cfg)
		}
		rcfg := raizn.DefaultConfig()
		rcfg.StripeUnitSectors = serveChunk
		rcfg.Metrics = m.Metrics()
		rcfg.MetricsLabel = fmt.Sprintf("a%d", a)
		vol, err := raizn.Create(clk, devs, rcfg)
		if err != nil {
			serveFatal("create array:", err)
		}
		if _, err := m.AddArray(rcfg.MetricsLabel, vol); err != nil {
			serveFatal("host array:", err)
		}
		if a == serveArrays-1 {
			slowed = devs[serveSlowDev]
		}
	}

	tenants := make([]volmgr.TenantConfig, serveTenants)
	for i := range tenants {
		tc := volmgr.TenantConfig{ID: fmt.Sprintf("t%d", i), Weight: 1}
		switch i {
		case 0, 1:
			tc.Weight = 2
		case serveTenants - 2:
			tc.RateSectorsPerSec = serveRateLimit
			tc.BurstSectors = serveRateBurst
		}
		tenants[i] = tc
	}
	v, err := m.CreateVolume("tenants", volmgr.VolumeSpec{
		Zones: serveTenants,
		Engine: volmgr.EngineConfig{
			QueueDepth: 8,
			SLO:        obs.SLOConfig{Factor: 1, TargetP99: serveSLOTarget, MinSamples: 32},
		},
		Tenants: tenants,
	})
	if err != nil {
		serveFatal("create volume:", err)
	}

	// Each hosted array gets a flight recorder; an SLO breach freezes the
	// breaching tenant's most-implicated array's recorder (CheckIncidents
	// below), which is how a serving stack attributes a tenant's bad tail
	// to the array causing it.
	for _, a := range m.Arrays() {
		rec := flight.New(flight.Config{Clock: clk, Registry: m.Metrics(), Label: a.ID()})
		rec.Poll()
		m.AttachRecorder(a.ID(), rec)
	}

	slowed.SetSlowdown(serveSlowFact)

	// One client per tenant writes 3/4 of its own zone (tenant i owns
	// volume zone i) in pipelined chunks. A throttled submit sleeps and
	// retries the same offset, so per-zone sequential order holds and
	// the engine's shed counter records every rejection.
	quota := v.ZoneSectors() / serveChunk / 4 * serveChunk
	wg := clk.NewWaitGroup()
	for i := 0; i < serveTenants; i++ {
		i := i
		wg.Add(1)
		clk.Go(func() {
			defer wg.Done()
			id := fmt.Sprintf("t%d", i)
			window := serveWindow
			if i == serveTenants-2 {
				window = serveLimitedWin
			}
			buf := make([]byte, serveChunk*v.SectorSize())
			base := int64(i) * v.ZoneSectors()
			var inflight []*vclock.Future
			for off := int64(0); off+serveChunk <= quota; off += serveChunk {
				for {
					fut, err := v.SubmitWrite(id, base+off, buf, 0)
					if err == nil {
						inflight = append(inflight, fut)
						break
					}
					if !errors.Is(err, volmgr.ErrThrottled) {
						serveFatal("submit:", err)
					}
					clk.Sleep(500 * time.Microsecond)
				}
				if len(inflight) >= window {
					if err := inflight[0].Wait(); err != nil {
						serveFatal("write:", err)
					}
					inflight = inflight[1:]
				}
			}
			for _, fut := range inflight {
				if err := fut.Wait(); err != nil {
					serveFatal("write:", err)
				}
			}
		})
	}
	start := clk.Now()
	wg.Wait()
	elapsed := clk.Now() - start

	stats := v.TenantStats()
	breaches := v.Alarm().Check()
	bar, barOK := v.Alarm().Bar()
	if err := v.Close(); err != nil {
		serveFatal("close volume:", err)
	}
	// Hand the open-zone slots back: a real serving stack finishes a
	// shard's zone when the tenant goes cold.
	for z := 0; z < v.NumZones(); z++ {
		if err := v.FinishZone(z); err != nil {
			serveFatal("finish zone:", err)
		}
	}

	fmt.Printf("=== serve: %d arrays x %d devices, volume %q, %d tenants, %d sectors/tenant; dev a%d/%d slowed %.0fx ===\n",
		serveArrays, serveDevs, v.Name(), serveTenants, quota, serveArrays-1, serveSlowDev, serveSlowFact)
	fmt.Printf("burst completed in %v of virtual time\n", elapsed)

	fmt.Println("\nextent map (volume zone -> array/zone):")
	for i, e := range v.ExtentMap() {
		fmt.Printf("  z%-2d -> %s/z%-3d", e.Index, e.Array, e.Zone)
		if (i+1)%4 == 0 || i == v.NumZones()-1 {
			fmt.Println()
		}
	}

	fmt.Println("\nper-tenant QoS:")
	fmt.Printf("  %-7s %2s %9s %6s %6s %8s %10s %10s %12s %s\n",
		"tenant", "w", "accepted", "shed", "done", "MiB", "p50", "p99", "qdelay p99", "limit")
	for _, st := range stats {
		limit := "-"
		for _, tc := range tenants {
			if tc.ID == st.ID && tc.RateSectorsPerSec > 0 {
				limit = fmt.Sprintf("%d sec/s", tc.RateSectorsPerSec)
			}
		}
		fmt.Printf("  %-7s %2d %9d %6d %6d %8.1f %10v %10v %12v %s\n",
			st.ID, st.Weight, st.Accepted, st.Shed, st.CompletedOps,
			float64(st.CompletedBytes)/(1<<20),
			st.Latency.Percentile(50).Round(time.Microsecond),
			st.Latency.Percentile(99).Round(time.Microsecond),
			st.QueueDelay.Percentile(99).Round(time.Microsecond), limit)
	}

	if barOK {
		fmt.Printf("\nslo alarm (per-tenant p99 objective %v):\n", bar)
	} else {
		fmt.Println("\nslo alarm (still warming up):")
	}
	if len(breaches) == 0 {
		fmt.Println("  no tenants in breach")
	}
	for _, b := range breaches {
		fmt.Printf("  BREACH %-7s p99 %v > bar %v (%d samples)\n",
			b.Tenant, b.P99.Round(time.Microsecond), b.Bar.Round(time.Microsecond), b.Samples)
	}

	fmt.Println("\nper-tenant array attribution (most implicated first):")
	for _, st := range stats {
		fmt.Printf("  %-7s", st.ID)
		for _, at := range v.TenantArrayAttribution(st.ID) {
			fmt.Printf("  %s: ops=%d errs=%d mean=%v", at.Array, at.Ops, at.Errors,
				at.MeanLat.Round(time.Microsecond))
		}
		fmt.Println()
	}

	incidents := m.CheckIncidents()
	fmt.Printf("\nincidents filed: %d\n", len(incidents))
	for _, inc := range incidents {
		t := inc.Box.Trigger
		fmt.Printf("  %-10s tenant=%-7s array=%s  %s\n", t.Kind, t.Tenant, t.Array, t.Detail)
	}

	fmt.Println("\narrays:")
	for _, a := range m.Arrays() {
		fmt.Printf("  %s: %d logical zones, %d free\n", a.ID(), a.Volume().NumZones(), a.FreeZones())
	}

	if err := m.Close(); err != nil {
		serveFatal("close manager:", err)
	}
}

func serveFatal(msg string, err error) {
	fmt.Fprintln(os.Stderr, "serve:", msg, err)
	os.Exit(1)
}
