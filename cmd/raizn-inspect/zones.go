package main

import (
	"fmt"
	"os"
	"sort"

	"raizn/internal/obs"
	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// runZones renders the zone-state observability report: a logical +
// per-device heatmap, the open/active occupancy timeline, per-zone
// lifetime stats, the layered write-amplification report, and an
// event-mix summary of the journal. The journal was enabled before the
// first write, so lifetime accounting is exact, and everything runs on
// the virtual clock — the output is bit-identical across runs.
func runZones(vol *raizn.Volume, devs []*zns.Device, clk *vclock.Clock, jrn *obs.Journal, fillZones int) {
	// Exercise the rest of the zone lifecycle so the analyzers have all
	// states to show: reset the first filled zone and rewrite a quarter
	// of it, then seal the partial zone.
	if fillZones > 0 && fillZones <= vol.NumZones() {
		if err := vol.ResetZone(0); err != nil {
			fmt.Fprintln(os.Stderr, "zones reset:", err)
			os.Exit(1)
		}
		buf := make([]byte, 32*vol.SectorSize())
		quarter := vol.ZoneSectors() / 4
		for off := int64(0); off+32 <= quarter; off += 32 {
			if err := vol.Write(off, buf, 0); err != nil {
				fmt.Fprintln(os.Stderr, "zones rewrite:", err)
				os.Exit(1)
			}
		}
	}
	if z := fillZones; z < vol.NumZones() {
		if err := vol.FinishZone(z); err != nil {
			fmt.Fprintln(os.Stderr, "zones finish:", err)
			os.Exit(1)
		}
	}
	vol.Flush()

	evs := jrn.Events()
	endT := clk.Now()
	fmt.Printf("=== zones: journal holds %d events (%d dropped) ===\n", jrn.Len(), jrn.Dropped())
	if vol.ParityEngineKind().String() == "zraid" {
		st := vol.PPEngineStats()
		fmt.Printf("parity engine: zraid  pp_volatile=%dB pp_permanent=%dB fallbacks=%d gc_runs=%d gc_migrated=%d\n",
			st.VolatileBytes, st.PermanentBytes, st.FallbackTotal, st.GCRuns, st.GCMigrated)
	}

	rows := []obs.ZoneRow{logicalZoneRow(vol)}
	for i, d := range devs {
		if vol.Degraded() == i {
			continue
		}
		rows = append(rows, deviceZoneRow(fmt.Sprintf("dev%d", i), d, vol))
	}
	fmt.Println("\nzone heatmap:")
	obs.WriteZoneHeatmap(os.Stdout, rows)

	fmt.Println("\nlogical zone occupancy:")
	open, active := obs.OccupancyTimeline(evs, obs.SrcLogical)
	obs.WriteOccupancy(os.Stdout, open, active, 24)

	fmt.Println("\nlogical zone lifetimes:")
	obs.WriteZoneLifetimes(os.Stdout, obs.ZoneLifetimes(evs, obs.SrcLogical, endT))

	fmt.Println("\nlayered write amplification:")
	vol.WAReport().Write(os.Stdout)

	// Event mix: which mechanisms the workload exercised, by count.
	counts := map[string]int{}
	for _, e := range evs {
		counts[e.Type.String()]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("\nevent mix:")
	for _, n := range names {
		fmt.Printf("  %-16s %6d\n", n, counts[n])
	}
}

// logicalZoneRow converts the volume's zone report to a heatmap row.
func logicalZoneRow(vol *raizn.Volume) obs.ZoneRow {
	row := obs.ZoneRow{Label: "logical"}
	cap := vol.ZoneSectors()
	for _, zd := range vol.ReportZones() {
		row.Zones = append(row.Zones, obs.ZoneInfo{
			Index: zd.Index, State: int(zd.State), WP: zd.WP, Cap: cap,
		})
	}
	return row
}

// deviceZoneRow converts one device's zone report to a heatmap row.
// Device write pointers are absolute LBAs; the heatmap wants them
// zone-relative. Reserved zones carry their role so the renderer can
// mark metadata and partial-parity zones distinctly.
func deviceZoneRow(label string, d *zns.Device, vol *raizn.Volume) obs.ZoneRow {
	row := obs.ZoneRow{Label: label}
	cap := d.Config().ZoneCap
	for _, zd := range d.ReportZones() {
		row.Zones = append(row.Zones, obs.ZoneInfo{
			Index: zd.Index, State: int(zd.State),
			WP: zd.WP - d.ZoneStart(zd.Index), Cap: cap,
			Role: vol.PhysZoneRole(zd.Index),
		})
	}
	return row
}
