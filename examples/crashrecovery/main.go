// Crash recovery walk-through: reproduce the paper's Figure 1 scenario —
// a partial stripe write where power is lost with only a subset of the
// stripe units persisted — and watch RAIZN repair or hide the hole on
// remount (§5.1, §5.2), then relocate the colliding rewrite to a
// metadata zone.
package main

import (
	"fmt"
	"log"

	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

func main() {
	clk := vclock.New()
	clk.Run(func() {
		cfg := zns.DefaultConfig()
		cfg.NumZones = 16
		cfg.ZoneSize = 1280
		cfg.ZoneCap = 1024
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(clk, cfg)
		}
		vol, err := raizn.Create(clk, devs, raizn.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		ss := vol.SectorSize()
		stripe := int(vol.StripeSectors()) // 64 sectors = 256 KiB of data

		fill := func(lba int64, n int, tag byte) []byte {
			b := make([]byte, n*ss)
			for i := range b {
				b[i] = tag ^ byte(i)
			}
			must(vol.Write(lba, b, 0))
			return b
		}

		// One complete stripe, flushed; then a partial second stripe
		// (3 of 4 stripe units written), unflushed.
		fill(0, stripe, 0xA0)
		must(vol.Flush())
		fill(int64(stripe), stripe*3/4, 0xB0)
		fmt.Printf("before crash: zone 0 WP=%d\n", vol.Zone(0).WP)

		// Power loss: keep stripe 0 everywhere, but of stripe 1 only
		// the unit on its third data device survives — too little to
		// reconstruct, exactly Figure 1's "stripe hole". The partial
		// parity log (on the parity device's metadata zone) is also
		// lost with the cache.
		keepOnly := map[int]bool{}
		for u := 0; u < 3; u++ {
			keepOnly[dataDev(vol, 0, 1, u)] = u == 2
		}
		for i, d := range devs {
			cuts := map[int]int64{}
			for z := 0; z < cfg.NumZones; z++ {
				zd := d.Zone(z)
				cuts[z] = zd.WP - d.ZoneStart(z) // keep everything...
			}
			if keep, involved := keepOnly[i]; involved && !keep {
				cuts[0] = 16 // ...except stripe 1's unit on two devices
			}
			if i == parityDev(vol, 0, 1) {
				// Drop the unflushed partial-parity log.
				for z := cfg.NumZones - 3; z < cfg.NumZones; z++ {
					zd := d.Zone(z)
					cuts[z] = zd.PersistedWP - d.ZoneStart(z)
				}
			}
			d.PowerLossAt(cuts)
		}
		fmt.Println("power lost mid-stripe; remounting...")

		vol2, err := raizn.Mount(clk, devs, raizn.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		zd := vol2.Zone(0)
		fmt.Printf("after recovery: WP=%d (stripe 1 truncated), remapped=%v\n", zd.WP, zd.Remapped)

		// The surviving prefix reads back intact.
		buf := make([]byte, stripe*ss)
		must(vol2.Read(0, buf))
		fmt.Println("stripe 0 readable after recovery")

		// Rewriting the truncated range collides with the debris unit
		// that DID persist; RAIZN relocates those sectors to the
		// affected device's metadata zone (§5.2).
		fill2 := make([]byte, stripe*ss)
		for i := range fill2 {
			fill2[i] = 0xC0 ^ byte(i)
		}
		must(vol2.Write(int64(stripe), fill2, 0))
		fmt.Printf("rewrite succeeded; relocated fragments: %d\n", vol2.RelocationCount())

		// And everything — including the relocated range — survives
		// another clean remount.
		must(vol2.Flush())
		vol3, err := raizn.Mount(clk, devs, raizn.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		got := make([]byte, stripe*ss)
		must(vol3.Read(int64(stripe), got))
		for i := range got {
			if got[i] != fill2[i] {
				log.Fatalf("relocated data corrupted at byte %d", i)
			}
		}
		fmt.Println("relocated stripe reads back correctly after a second remount")
	})
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// dataDev / parityDev mirror the volume's layout arithmetic for the demo
// (zone z, stripe s): parity rotates per stripe and per zone.
func parityDev(v *raizn.Volume, z int, s int) int {
	n := 5
	return n - 1 - (s+z)%n
}

func dataDev(v *raizn.Volume, z, s, u int) int {
	return (parityDev(v, z, s) + 1 + u) % 5
}
