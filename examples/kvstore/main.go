// End-to-end application stack (§6.3): an LSM key-value store (RocksDB
// analog) on a log-structured filesystem (F2FS analog) on a RAIZN volume
// on five simulated ZNS SSDs — the full stack the paper's application
// benchmarks exercise.
package main

import (
	"fmt"
	"log"

	"raizn/internal/fio"
	"raizn/internal/kvs"
	"raizn/internal/lfs"
	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

func main() {
	clk := vclock.New()
	clk.Run(func() {
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(clk, zns.DefaultConfig())
		}
		vol, err := raizn.Create(clk, devs, raizn.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		fsys, err := lfs.Format(clk, fio.RaiznTarget{V: vol})
		if err != nil {
			log.Fatal(err)
		}
		db, err := kvs.Open(clk, fsys, kvs.Options{})
		if err != nil {
			log.Fatal(err)
		}

		// Load 2000 keys with 4 KB values (the paper's db_bench value
		// size), forcing memtable flushes and compactions.
		value := make([]byte, 4000)
		for i := range value {
			value[i] = byte(i)
		}
		t0 := clk.Now()
		for i := 0; i < 2000; i++ {
			if err := db.Put([]byte(fmt.Sprintf("user%08d", i)), value); err != nil {
				log.Fatal(err)
			}
		}
		if err := db.WaitIdle(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded 2000 x 4KB values in %v (flushes=%d compactions=%d)\n",
			clk.Now()-t0, db.FlushCount, db.CompactCount)

		// Point reads hit the leveled tables through the filesystem and
		// volume read paths.
		got, err := db.Get([]byte("user00001234"))
		if err != nil || len(got) != 4000 {
			log.Fatalf("get: %v (%d bytes)", err, len(got))
		}
		fmt.Println("point read OK")

		// Range scan across memtable and tables.
		kvsOut, err := db.Scan("user00000100", 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scan from user00000100: %d keys, first=%s\n", len(kvsOut), kvsOut[0].Key)

		// Survive a device failure mid-workload: the volume degrades,
		// the database never notices.
		vol.FailDevice(3)
		if _, err := db.Get([]byte("user00000042")); err != nil {
			log.Fatal(err)
		}
		if err := db.Put([]byte("after-failure"), value); err != nil {
			log.Fatal(err)
		}
		fmt.Println("reads and writes continue with a failed device underneath")

		// Close cleanly, remount everything, and read again.
		if err := db.Close(); err != nil {
			log.Fatal(err)
		}
		fsys2, err := lfs.Mount(clk, fio.RaiznTarget{V: vol})
		if err != nil {
			log.Fatal(err)
		}
		db2, err := kvs.Open(clk, fsys2, kvs.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := db2.Get([]byte("after-failure")); err != nil {
			log.Fatal(err)
		}
		fmt.Println("database reopened from disk; all data intact")
		fmt.Printf("filesystem cleaner: %d runs, %d blocks moved\n", fsys.CleanRuns, fsys.CleanedBlocks)
		db2.Close()
	})
}
