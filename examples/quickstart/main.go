// Quickstart: create a RAIZN array over five simulated ZNS SSDs, write
// and read through the logical zoned volume, inspect zone state, and
// reset a zone — the basic lifecycle of §4.
package main

import (
	"fmt"
	"log"

	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

func main() {
	clk := vclock.New()
	clk.Run(func() {
		// Five ZNS SSDs modeled on the paper's WD ZN540 (scaled down).
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(clk, zns.DefaultConfig())
		}

		// Assemble the array: 4 data + 1 rotating parity per stripe,
		// 64 KiB stripe units.
		vol, err := raizn.Create(clk, devs, raizn.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("RAIZN volume: %d logical zones x %d MiB (capacity %d MiB)\n",
			vol.NumZones(), vol.ZoneSectors()*4096>>20, vol.NumSectors()*4096>>20)

		// Logical zones behave like ZNS zones: sequential writes only.
		payload := make([]byte, 128<<10)
		for i := range payload {
			payload[i] = byte(i)
		}
		var lba int64
		for i := 0; i < 8; i++ {
			if err := vol.Write(lba, payload, 0); err != nil {
				log.Fatalf("write at %d: %v", lba, err)
			}
			lba += int64(len(payload) / vol.SectorSize())
		}
		fmt.Printf("wrote %d KiB sequentially; zone 0 state: %v, WP=%d\n",
			8*128, vol.Zone(0).State, vol.Zone(0).WP)

		// Reads can start anywhere below the write pointer.
		buf := make([]byte, 64<<10)
		if err := vol.Read(37, buf); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("read 64 KiB at LBA 37: first byte %#x\n", buf[0])

		// A flush makes everything durable; FUA does it per write.
		if err := vol.Flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after flush, persisted WP: %d\n", vol.Zone(0).PersistedWP)

		// Non-sequential writes are rejected, exactly like a raw zone.
		if err := vol.Write(0, payload, 0); err != nil {
			fmt.Printf("rewrite without reset rejected: %v\n", err)
		}

		// Resetting the logical zone resets all five physical zones
		// (write-ahead logged against partial-reset crashes, §5.2).
		if err := vol.ResetZone(0); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("zone 0 after reset: %v, generation %d\n",
			vol.Zone(0).State, vol.Generation(0))
		if err := vol.Write(0, payload, 0); err != nil {
			log.Fatal(err)
		}
		fmt.Println("zone rewritten from the start after reset")
		fmt.Printf("total virtual time elapsed: %v\n", clk.Now())
	})
}
