// Failure and rebuild walk-through (§4.2, §6.2): fill part of a RAIZN
// array, fail a device, serve reads degraded, replace the device, and
// compare the rebuild work against an mdraid-style full resync.
package main

import (
	"fmt"
	"log"

	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

func main() {
	clk := vclock.New()
	clk.Run(func() {
		cfg := zns.DefaultConfig() // 64 zones x 4 MiB per device
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(clk, cfg)
		}
		vol, err := raizn.Create(clk, devs, raizn.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}

		// Fill one quarter of the logical zones.
		ss := vol.SectorSize()
		zoneBytes := vol.ZoneSectors() * int64(ss)
		filled := vol.NumZones() / 4
		payload := make([]byte, 256<<10)
		for z := 0; z < filled; z++ {
			base := int64(z) * vol.ZoneSectors()
			for off := int64(0); off < vol.ZoneSectors(); off += int64(len(payload) / ss) {
				if err := vol.Write(base+off, payload, 0); err != nil {
					log.Fatal(err)
				}
			}
		}
		fmt.Printf("filled %d of %d zones (%d MiB of user data)\n",
			filled, vol.NumZones(), int64(filled)*zoneBytes>>20)

		// Fail a device. Reads keep working via parity reconstruction.
		t0 := clk.Now()
		vol.FailDevice(2)
		buf := make([]byte, 1<<20)
		if err := vol.Read(0, buf); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("device 2 failed; degraded 1 MiB read served in %v\n", clk.Now()-t0)

		// Replace it. RAIZN rebuilds only the LBA ranges below each
		// logical zone's write pointer — the ZNS interface tells it
		// exactly which data is valid.
		stats, err := vol.ReplaceDevice(zns.NewDevice(clk, cfg))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rebuild: %d zones, %d MiB written to the replacement, TTR %v\n",
			stats.Zones, stats.BytesWritten>>20, stats.Elapsed)

		fullResyncBytes := int64(cfg.NumZones) * cfg.ZoneCap * int64(ss)
		fmt.Printf("an mdraid-style full resync would have written %d MiB (%.1fx more)\n",
			fullResyncBytes>>20, float64(fullResyncBytes)/float64(stats.BytesWritten))

		// Redundancy is restored: lose a different device, still read.
		vol.FailDevice(0)
		if err := vol.Read(0, buf); err != nil {
			log.Fatal(err)
		}
		fmt.Println("array survives a second (sequential) failure after rebuild")
	})
}
