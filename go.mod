module raizn

go 1.22
