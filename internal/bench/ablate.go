package bench

import (
	"fmt"
	"io"
	"time"

	"raizn/internal/blockdev"
	"raizn/internal/fio"
	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

func init() {
	register(Experiment{
		Name:  "ablate-pp",
		Title: "Ablation: partial-parity mechanisms (§5.1 log vs §5.4 inline-meta vs §5.4 ZRWA)",
		Run:   runAblatePP,
	})
	register(Experiment{
		Name:  "ablate-wal",
		Title: "Ablation: zone-reset write-ahead log cost (§5.2)",
		Run:   runAblateWAL,
	})
}

// extConfig enables the optional device features the §5.4 modes need.
func extConfig(sc scale) zns.Config {
	cfg := znsConfig(sc, true)
	cfg.ZRWASectors = 32
	cfg.MetaBytes = 64
	return cfg
}

func newModeVolume(clk *vclock.Clock, sc scale, mode raizn.ParityMode) (*raizn.Volume, []*zns.Device) {
	devs := make([]*zns.Device, sc.numDevices)
	for i := range devs {
		devs[i] = zns.NewDevice(clk, extConfig(sc))
	}
	cfg := raizn.DefaultConfig()
	cfg.ParityMode = mode
	v, err := raizn.Create(clk, devs, cfg)
	if err != nil {
		panic(err)
	}
	return v, devs
}

// runAblatePP measures the three partial-parity mechanisms on the
// small-sequential-write workload where the paper identifies the parity
// log header as the dominant overhead (Fig. 9's 4 KiB write gap).
func runAblatePP(w io.Writer, quick bool) error {
	sc := scaleFor(quick)
	jobs, qd := 8, 64
	if quick {
		jobs, qd = 4, 16
	}
	modes := []struct {
		name string
		mode raizn.ParityMode
	}{
		{"pp-log (paper)", raizn.PPLog},
		{"inline-meta", raizn.PPInlineMeta},
		{"zrwa", raizn.PPZRWA},
	}
	for _, bs := range []int64{1, 4, 16} { // 4K, 16K, 64K
		fmt.Fprintf(w, "\n-- block size %s --\n", kib(bs))
		t := newTable(w, "mode", "write MiB/s", "device WA", "p99.9")
		for _, m := range modes {
			clk := vclock.New()
			var tput, wa float64
			var p999 time.Duration
			clk.Run(func() {
				v, devs := newModeVolume(clk, sc, m.mode)
				tgt := fio.RaiznTarget{V: v}
				size := v.NumSectors()
				per := size / int64(jobs) / 16 * 16
				var js []fio.Job
				for j := 0; j < jobs; j++ {
					js = append(js, fio.Job{Pattern: fio.SeqWrite, BlockSectors: bs, QueueDepth: qd,
						Offset: int64(j) * per, Size: per / bs * bs, Seed: int64(j)})
				}
				res := fio.Run(clk, tgt, js, fio.Options{})
				tput = res.Throughput
				p999 = res.Hist.Percentile(99.9)
				var devW int64
				for _, d := range devs {
					dw, _, _, _ := d.Counters()
					devW += dw
				}
				// Device write amplification relative to user data plus
				// the unavoidable RAID parity (user * n/d).
				user := float64(res.Bytes)
				wa = float64(devW) / user
			})
			t.row(m.name, f1(tput), f2(wa), p999.String())
		}
	}
	fmt.Fprintln(w, "\nideal WA is n/d = 1.25 (data + rotating parity).")
	fmt.Fprintln(w, "pp-log pays a 4 KiB header per sub-stripe write; inline-meta removes the header;")
	fmt.Fprintln(w, "zrwa removes the log but rewrites the parity prefix in place on every append.")
	return nil
}

// runAblateWAL measures what the §5.2 zone-reset write-ahead log costs
// per reset ("this introduces additional latency to zone resets").
func runAblateWAL(w io.Writer, quick bool) error {
	sc := scaleFor(quick)
	resets := 20
	if quick {
		resets = 6
	}
	measure := func(disable bool) time.Duration {
		var per time.Duration
		clk := vclock.New()
		clk.Run(func() {
			devs := make([]*zns.Device, sc.numDevices)
			for i := range devs {
				devs[i] = zns.NewDevice(clk, znsConfig(sc, true))
			}
			cfg := raizn.DefaultConfig()
			cfg.DisableResetWAL = disable
			v, err := raizn.Create(clk, devs, cfg)
			if err != nil {
				panic(err)
			}
			buf := make([]byte, 64<<10)
			var total time.Duration
			for i := 0; i < resets; i++ {
				if err := v.Write(0, buf, 0); err != nil {
					panic(err)
				}
				t0 := clk.Now()
				if err := v.ResetZone(0); err != nil {
					panic(err)
				}
				total += clk.Now() - t0
			}
			per = total / time.Duration(resets)
		})
		return per
	}
	withWAL := measure(false)
	without := measure(true)
	t := newTable(w, "config", "reset latency")
	t.row("with reset WAL (paper)", withWAL.String())
	t.row("without WAL (unsafe)", without.String())
	fmt.Fprintf(w, "\nWAL adds %v per reset (two FUA metadata appends + counter persists);\n", withWAL-without)
	fmt.Fprintln(w, "the paper accepts this because workloads do not write immediately after resetting (§5.2).")
	return nil
}

func init() {
	register(Experiment{
		Name:  "ablate-journal",
		Title: "Ablation: mdraid write-journal cost vs RAIZN's built-in write-hole closure (§2.2/§5.4)",
		Run:   runAblateJournal,
	})
}

// runAblateJournal quantifies why the paper ran mdraid without a journal
// ("ensuring maximum performance"): with the journal attached every
// stripe write is first made durable in the log, doubling write traffic;
// RAIZN closes the same write hole with partial-parity logs whose cost
// was already paid in Figure 9.
func runAblateJournal(w io.Writer, quick bool) error {
	sc := scaleFor(quick)
	jobs, qd := 8, 64
	if quick {
		jobs, qd = 4, 16
	}
	t := newTable(w, "config", "seqwrite MiB/s", "randwrite 16K MiB/s")
	for _, mode := range []string{"mdraid", "mdraid+journal", "raizn"} {
		clk := vclock.New()
		var seq, rnd float64
		clk.Run(func() {
			var tgt fio.Target
			switch mode {
			case "raizn":
				v, _, err := newRaizn(clk, sc, true, 16)
				if err != nil {
					panic(err)
				}
				tgt = fio.RaiznTarget{V: v}
			default:
				v, _, err := newMdraid(clk, sc, true, 16)
				if err != nil {
					panic(err)
				}
				if mode == "mdraid+journal" {
					v.AttachJournal(blockdevNew(clk, sc))
				}
				tgt = fio.MdraidTarget{V: v}
			}
			size := tgt.NumSectors()
			per := size / int64(jobs) / 16 * 16
			var js []fio.Job
			for j := 0; j < jobs; j++ {
				js = append(js, fio.Job{Pattern: fio.SeqWrite, BlockSectors: 32, QueueDepth: qd,
					Offset: int64(j) * per, Size: per, Seed: int64(j)})
			}
			seq = fio.Run(clk, tgt, js, fio.Options{}).Throughput

			if mode != "raizn" { // random overwrites need a block volume
				rnd = fio.Run(clk, tgt, []fio.Job{{Pattern: fio.RandWrite, BlockSectors: 4,
					QueueDepth: qd, TotalBytes: size * 4096 / 8, Seed: 7}}, fio.Options{}).Throughput
			}
		})
		rndCell := f1(rnd)
		if mode == "raizn" {
			rndCell = "n/a (zoned)"
		}
		t.row(mode, f1(seq), rndCell)
	}
	fmt.Fprintln(w, "\nthe journal absorbs the full array write stream on one device before the array sees it;")
	fmt.Fprintln(w, "RAIZN provides the equivalent guarantee (single-stripe write atomicity, §5.2)")
	fmt.Fprintln(w, "with the partial-parity log already counted in its Figure 9 numbers.")
	return nil
}

// blockdevNew builds the journal device. A journal sees pure sequential
// overwrite, for which real drives erase across parallel dies without
// stalling the write path; the simulator's single write pipe charges
// erases serially, so the journal device gets a short erase latency to
// approximate that parallelism.
func blockdevNew(clk *vclock.Clock, sc scale) *blockdev.Device {
	cfg := blockConfig(sc, true)
	cfg.EraseLatency = 300 * time.Microsecond
	return blockdev.NewDevice(clk, cfg)
}
