package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"raizn/internal/fio"
	"raizn/internal/kvs"
	"raizn/internal/lfs"
	"raizn/internal/oltp"
	"raizn/internal/stats"
	"raizn/internal/vclock"
)

func init() {
	register(Experiment{
		Name:  "fig13",
		Title: "Figure 13: RocksDB-style db_bench workloads on F2FS-style filesystem",
		Run:   runDBBench,
	})
	register(Experiment{
		Name:  "fig14",
		Title: "Figure 14: sysbench OLTP on the KV store (MySQL/MyRocks analog)",
		Run:   runOLTP,
	})
}

// appScale returns device geometry for the application benchmarks (data
// must be stored: the KV store reads it back).
func appScale(quick bool) scale {
	if quick {
		return scale{znsZones: 16, znsZoneCap: 256, numDevices: 5}
	}
	return scale{znsZones: 48, znsZoneCap: 512, numDevices: 5} // 96 MiB/device
}

// newAppStack builds fs + db on the requested volume stack.
func newAppStack(clk *vclock.Clock, sc scale, stack string) (*kvs.DB, error) {
	var dev lfs.Device
	if stack == "raizn" {
		v, _, err := newRaizn(clk, sc, false, 16)
		if err != nil {
			return nil, err
		}
		dev = fio.RaiznTarget{V: v}
	} else {
		v, _, err := newMdraid(clk, sc, false, 16)
		if err != nil {
			return nil, err
		}
		dev = lfs.NewBlockDevice(fio.MdraidTarget{V: v}, sc.znsZoneCap*4)
	}
	fsys, err := lfs.Format(clk, dev)
	if err != nil {
		return nil, err
	}
	return kvs.Open(clk, fsys, kvs.Options{
		MemtableBytes:   256 << 10,
		BaseLevelBytes:  2 << 20,
		TargetFileBytes: 1 << 20,
		MaxLevels:       4,
	})
}

type dbBenchResult struct {
	opsPerSec float64
	p99       time.Duration
}

// dbKey formats db_bench's 16-byte keys.
func dbKey(i int64) []byte { return []byte(fmt.Sprintf("%016d", i)) }

// runDBBench reproduces Figure 13: fillseq, fillrandom, overwrite and
// readwhilewriting at value sizes 4000 and 8000 bytes, on both stacks,
// reporting normalized throughput and p99 latency.
func runDBBench(w io.Writer, quick bool) error {
	sc := appScale(quick)
	valueSizes := []int{4000, 8000}
	nOps := int64(4000)
	if quick {
		valueSizes = []int{4000}
		nOps = 400
	}

	for _, vs := range valueSizes {
		fmt.Fprintf(w, "\n-- value size %d bytes --\n", vs)
		t := newTable(w, "workload", "md ops/s", "rz ops/s", "rz/md", "md p99", "rz p99")
		for _, wl := range []string{"fillseq", "fillrandom", "overwrite", "readwhilewriting"} {
			var res [2]dbBenchResult
			for i, stack := range []string{"mdraid", "raizn"} {
				clk := vclock.New()
				var r dbBenchResult
				var err error
				clk.Run(func() {
					var db *kvs.DB
					db, err = newAppStack(clk, sc, stack)
					if err != nil {
						return
					}
					r, err = runDBWorkload(clk, db, wl, vs, nOps)
					db.Close()
				})
				if err != nil {
					return err
				}
				res[i] = r
			}
			t.row(wl, f1(res[0].opsPerSec), f1(res[1].opsPerSec),
				f2(res[1].opsPerSec/res[0].opsPerSec),
				res[0].p99.String(), res[1].p99.String())
		}
	}
	fmt.Fprintln(w, "\npaper: RAIZN within ~10% of mdraid on throughput and p99 across workloads.")
	return nil
}

// runDBWorkload executes one db_bench workload. The key space is sized so
// overwrite/readwhilewriting rewrite existing keys (forcing compaction
// and, on the FTL stack, device GC).
func runDBWorkload(clk *vclock.Clock, db *kvs.DB, wl string, valueSize int, nOps int64) (dbBenchResult, error) {
	rng := rand.New(rand.NewSource(99))
	value := make([]byte, valueSize)
	rng.Read(value)
	keySpace := nOps

	hist := stats.NewHistogram()
	var count stats.Counter
	op := func(fn func() error) error {
		t0 := clk.Now()
		if err := fn(); err != nil {
			return err
		}
		hist.Record(clk.Now() - t0)
		count.Add(1)
		return nil
	}
	start := clk.Now()

	switch wl {
	case "fillseq":
		for i := int64(0); i < nOps; i++ {
			if err := op(func() error { return db.Put(dbKey(i), value) }); err != nil {
				return dbBenchResult{}, err
			}
		}
	case "fillrandom":
		for i := int64(0); i < nOps; i++ {
			k := rng.Int63n(keySpace)
			if err := op(func() error { return db.Put(dbKey(k), value) }); err != nil {
				return dbBenchResult{}, err
			}
		}
	case "overwrite":
		// Pre-fill, then overwrite random keys (paper: overwrite runs
		// after fillrandom without resetting).
		for i := int64(0); i < keySpace; i++ {
			if err := db.Put(dbKey(i), value); err != nil {
				return dbBenchResult{}, err
			}
		}
		db.WaitIdle()
		start = clk.Now()
		for i := int64(0); i < nOps; i++ {
			k := rng.Int63n(keySpace)
			if err := op(func() error { return db.Put(dbKey(k), value) }); err != nil {
				return dbBenchResult{}, err
			}
		}
	case "readwhilewriting":
		for i := int64(0); i < keySpace; i++ {
			if err := db.Put(dbKey(i), value); err != nil {
				return dbBenchResult{}, err
			}
		}
		db.WaitIdle()
		start = clk.Now()
		// One writer thread, eight reader threads (paper setup).
		stop := false
		writerDone := clk.NewFuture()
		clk.Go(func() {
			wrng := rand.New(rand.NewSource(7))
			for !stop {
				if err := db.Put(dbKey(wrng.Int63n(keySpace)), value); err != nil {
					break
				}
			}
			writerDone.Complete(nil)
		})
		wg := clk.NewWaitGroup()
		perReader := nOps / 8
		for r := 0; r < 8; r++ {
			r := r
			wg.Add(1)
			clk.Go(func() {
				defer wg.Done()
				rrng := rand.New(rand.NewSource(int64(r) + 100))
				for i := int64(0); i < perReader; i++ {
					op(func() error {
						_, err := db.Get(dbKey(rrng.Int63n(keySpace)))
						if err == kvs.ErrNotFound {
							err = nil
						}
						return err
					})
				}
			})
		}
		wg.Wait()
		stop = true
		writerDone.Wait()
	default:
		return dbBenchResult{}, fmt.Errorf("unknown workload %s", wl)
	}

	elapsed := clk.Now() - start
	_, ops := count.Bytes(), count.Ops()
	return dbBenchResult{
		opsPerSec: float64(ops) / elapsed.Seconds(),
		p99:       hist.Percentile(99),
	}, nil
}

// runOLTP reproduces Figure 14: the three sysbench OLTP mixes at 64 and
// 128 client threads on both stacks.
func runOLTP(w io.Writer, quick bool) error {
	sc := appScale(quick)
	cfg := oltp.Config{Tables: 8, RowsPerTable: 400, RowBytes: 190}
	threads := []int{64, 128}
	dur := 300 * time.Millisecond
	if quick {
		cfg = oltp.Config{Tables: 2, RowsPerTable: 100, RowBytes: 190}
		threads = []int{16}
		dur = 50 * time.Millisecond
	}

	for _, wl := range []oltp.Workload{oltp.ReadOnly, oltp.WriteOnly, oltp.ReadWrite} {
		fmt.Fprintf(w, "\n-- %s --\n", wl)
		t := newTable(w, "threads", "md TPS", "rz TPS", "rz/md", "md avg", "rz avg", "md p95", "rz p95")
		for _, th := range threads {
			var res [2]oltp.Result
			for i, stack := range []string{"mdraid", "raizn"} {
				clk := vclock.New()
				var err error
				clk.Run(func() {
					var db *kvs.DB
					db, err = newAppStack(clk, sc, stack)
					if err != nil {
						return
					}
					if err = oltp.Prepare(db, cfg); err != nil {
						return
					}
					db.WaitIdle()
					res[i] = oltp.Run(clk, db, cfg, wl, th, dur, int64(th))
					db.Close()
				})
				if err != nil {
					return err
				}
			}
			ratio := 0.0
			if res[0].TPS > 0 {
				ratio = res[1].TPS / res[0].TPS
			}
			t.row(fmt.Sprintf("%d", th), f1(res[0].TPS), f1(res[1].TPS), f2(ratio),
				res[0].AvgLatency.String(), res[1].AvgLatency.String(),
				res[0].P95Latency.String(), res[1].P95Latency.String())
		}
	}
	fmt.Fprintln(w, "\npaper: RAIZN within error of (or better than) mdraid on TPS, avg and p95 latency.")
	return nil
}
