// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation (§6), each reproducing the workload,
// parameter sweep, and output series of the original on the simulated
// device arrays. Absolute numbers differ from the paper's testbed; the
// shapes — who wins, by what factor, where the crossovers sit — are the
// reproduction targets recorded in EXPERIMENTS.md.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"raizn/internal/blockdev"
	"raizn/internal/mdraid"
	"raizn/internal/obs"
	"raizn/internal/obs/flight"
	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// Experiment is a registered, runnable reproduction of one paper result.
type Experiment struct {
	Name  string // registry key, e.g. "fig9"
	Title string
	Run   func(w io.Writer, quick bool) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments lists all registered experiments in a stable order.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Options configures one experiment run.
type Options struct {
	// Quick shrinks the workload for smoke tests.
	Quick bool
	// MetricsPath, when non-empty, receives a JSON snapshot of the run's
	// metrics registry when the experiment finishes.
	MetricsPath string
	// FlightPath, when non-empty, rides a flight recorder on the run's
	// raizn arrays and writes the sampled time series (a FlightReport)
	// when the experiment finishes. Experiments that build several
	// arrays report the last one built; mdraid-only sides of a compare
	// are not recorded.
	FlightPath string
}

// runRegistry collects the metrics of every volume, device and scrubber
// built during the current experiment run. RunOpts resets it per run and
// snapshots it to Options.MetricsPath. Experiments that sweep
// configurations build several volumes against the same registry: same-
// name counters accumulate across the sweep, and pull-style device
// gauges reflect the most recently built array (GaugeFunc replaces).
var runRegistry = obs.NewRegistry()

// runFlight is the flight recorder attached to the most recent raizn
// array of the current run, when Options.FlightPath asked for one.
var (
	runFlight    *flight.Recorder
	flightWanted bool
)

// Run executes the named experiment, writing its report to w. quick
// shrinks the workload for smoke tests.
func Run(name string, w io.Writer, quick bool) error {
	return RunOpts(name, w, Options{Quick: quick})
}

// RunOpts executes the named experiment with the given options.
func RunOpts(name string, w io.Writer, opts Options) error {
	for _, e := range registry {
		if e.Name == name {
			fmt.Fprintf(w, "=== %s: %s ===\n", e.Name, e.Title)
			runRegistry = obs.NewRegistry()
			runFlight, flightWanted = nil, opts.FlightPath != ""
			if err := e.Run(w, opts.Quick); err != nil {
				return err
			}
			if opts.MetricsPath != "" {
				if err := writeMetricsSnapshot(opts.MetricsPath); err != nil {
					return err
				}
				fmt.Fprintf(w, "\nwrote metrics snapshot to %s\n", opts.MetricsPath)
			}
			if opts.FlightPath != "" {
				if err := writeFlightReport(opts.FlightPath, e.Name, opts.Quick); err != nil {
					return err
				}
				fmt.Fprintf(w, "\nwrote flight time series to %s\n", opts.FlightPath)
			}
			return nil
		}
	}
	return fmt.Errorf("bench: unknown experiment %q (use one of %v)", name, names())
}

func writeMetricsSnapshot(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := runRegistry.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FlightSchemaV1 versions -flight output, like SchemaV1 versions bench
// result files.
const FlightSchemaV1 = "raizn-flight/v1"

// FlightReport is the serialized form of a -flight run: the experiment
// coordinates plus the recorder's black box (sampled metric time
// series, tail-sampled spans, journal tail).
type FlightReport struct {
	Schema     string           `json:"schema"`
	Experiment string           `json:"experiment"`
	Quick      bool             `json:"quick"`
	Box        *flight.BlackBox `json:"box"`
}

func writeFlightReport(path, exp string, quick bool) error {
	if runFlight == nil {
		return fmt.Errorf("bench: -flight: experiment %q built no raizn array to record", exp)
	}
	rep := FlightReport{
		Schema: FlightSchemaV1, Experiment: exp, Quick: quick,
		Box: runFlight.Snapshot(),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func names() []string {
	var out []string
	for _, e := range Experiments() {
		out = append(out, e.Name)
	}
	return out
}

// scale holds the device geometry for a run.
type scale struct {
	znsZones   int
	znsZoneCap int64 // sectors
	numDevices int
}

func scaleFor(quick bool) scale {
	if quick {
		return scale{znsZones: 16, znsZoneCap: 256, numDevices: 5} // 16 MiB/device
	}
	return scale{znsZones: 64, znsZoneCap: 1024, numDevices: 5} // 256 MiB/device
}

// znsConfig returns the paper-calibrated ZNS device model at the given
// scale. discard drops payload storage for timing-only experiments.
func znsConfig(sc scale, discard bool) zns.Config {
	cfg := zns.DefaultConfig()
	cfg.NumZones = sc.znsZones
	cfg.ZoneCap = sc.znsZoneCap
	cfg.ZoneSize = sc.znsZoneCap + sc.znsZoneCap/4
	cfg.MaxOpenZones = 14
	cfg.MaxActiveZones = 28
	cfg.DiscardData = discard
	// Scale the reset cost with the zone size: the real device resets a
	// 1077 MiB zone in ~2 ms, so a scaled-down zone must not pay the
	// full-size reset or reset overhead dwarfs the (scaled) write time.
	cfg.ResetLatency = 100 * time.Microsecond
	return cfg
}

// blockConfig returns the conventional-SSD model with matching capacity.
func blockConfig(sc scale, discard bool) blockdev.Config {
	cfg := blockdev.DefaultConfig()
	cfg.NumSectors = int64(sc.znsZones) * sc.znsZoneCap
	cfg.DiscardData = discard
	return cfg
}

// newRaizn builds a fresh RAIZN array wired into the run's metrics
// registry. Under -flight it also rides a flight recorder on the array:
// an enabled tracer and journal feed it, and the recorder replaces
// runFlight (a sweep's last array is the one reported).
func newRaizn(clk *vclock.Clock, sc scale, discard bool, su int64) (*raizn.Volume, []*zns.Device, error) {
	devs := make([]*zns.Device, sc.numDevices)
	for i := range devs {
		devs[i] = zns.NewDevice(clk, znsConfig(sc, discard))
		devs[i].RegisterMetrics(runRegistry, fmt.Sprintf("zns_dev%d", i))
	}
	rcfg := raizn.DefaultConfig()
	rcfg.StripeUnitSectors = su
	rcfg.Metrics = runRegistry
	var tr *obs.Tracer
	var jrn *obs.Journal
	if flightWanted {
		jrn = obs.NewJournal(clk, obs.JournalConfig{Capacity: 1 << 14})
		jrn.Enable()
		tr = obs.NewTracer(clk, obs.Config{SinkCapacity: 256})
		tr.Enable()
		rcfg.Tracer = tr
		rcfg.Journal = jrn
	}
	v, err := raizn.Create(clk, devs, rcfg)
	if err == nil && flightWanted {
		rec := flight.New(flight.Config{
			Clock: clk, Registry: runRegistry, Journal: jrn, Label: "bench",
			Degraded: func() bool { return v.Degraded() >= 0 },
		})
		tr.SetObserver(rec)
		runFlight = rec
	}
	return v, devs, err
}

// newMdraid builds a fresh mdraid array wired into the run's metrics
// registry.
func newMdraid(clk *vclock.Clock, sc scale, discard bool, chunk int64) (*mdraid.Volume, []*blockdev.Device, error) {
	devs := make([]*blockdev.Device, sc.numDevices)
	for i := range devs {
		devs[i] = blockdev.NewDevice(clk, blockConfig(sc, discard))
		devs[i].RegisterMetrics(runRegistry, fmt.Sprintf("blockdev_dev%d", i))
	}
	mcfg := mdraid.DefaultConfig()
	mcfg.ChunkSectors = chunk
	v, err := mdraid.New(clk, devs, mcfg)
	return v, devs, err
}

// table is a tiny fixed-width text table writer.
type table struct {
	w      io.Writer
	widths []int
}

func newTable(w io.Writer, headers ...string) *table {
	t := &table{w: w}
	for _, h := range headers {
		width := len(h) + 2
		if width < 12 {
			width = 12
		}
		t.widths = append(t.widths, width)
	}
	t.row(headers...)
	return t
}

func (t *table) row(cells ...string) {
	for i, c := range cells {
		w := 12
		if i < len(t.widths) {
			w = t.widths[i]
		}
		fmt.Fprintf(t.w, "%-*s", w, c)
	}
	fmt.Fprintln(t.w)
}

func (t *table) rowf(format string, args ...interface{}) {
	fmt.Fprintf(t.w, format+"\n", args...)
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func kib(bs int64) string { return fmt.Sprintf("%dK", bs*4) } // sectors -> KiB (4 KiB sectors)
