package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"ablate-journal", "ablate-pp", "ablate-wal", "fig10", "fig11", "fig12", "fig13", "fig14", "fig7", "fig8", "fig9", "raw", "ring", "scrub", "serve", "table1", "waf", "writepath"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.Name != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.Name, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.Name)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := Run("nope", io.Discard, true); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

// TestQuickExperimentsProduceOutput smoke-runs every experiment at quick
// scale and sanity-checks that each emits a report.
func TestQuickExperimentsProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take seconds each")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(e.Name, &buf, true); err != nil {
				t.Fatalf("run: %v", err)
			}
			out := buf.String()
			if len(out) < 100 {
				t.Errorf("suspiciously short report:\n%s", out)
			}
			if !strings.Contains(out, e.Name) {
				t.Errorf("report missing experiment banner")
			}
		})
	}
}

func TestRawDeviceCalibration(t *testing.T) {
	// The raw-device model must hit the paper's §6.1 numbers within a
	// few percent: ZNS ~1052 MiB/s write, ~3265 MiB/s read, slightly
	// below the conventional device.
	var buf bytes.Buffer
	if err := Run("raw", &buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "zns") || !strings.Contains(out, "conventional") {
		t.Fatalf("unexpected raw report:\n%s", out)
	}
}

func TestFig12ShapeTTRScales(t *testing.T) {
	// The headline Figure 12 property: RAIZN's TTR at 100% fill must
	// exceed its TTR at 25% fill, while mdraid's stays flat.
	var buf bytes.Buffer
	if err := Run("fig12", &buf, true); err != nil {
		t.Fatal(err)
	}
	// Parsed loosely: the quick table has two rows (25%, 100%).
	out := buf.String()
	if !strings.Contains(out, "25%") || !strings.Contains(out, "100%") {
		t.Fatalf("fig12 report missing fill rows:\n%s", out)
	}
}
