package bench

import (
	"fmt"
	"io"

	"raizn/internal/blockdev"
	"raizn/internal/fio"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

func init() {
	register(Experiment{
		Name:  "fig11",
		Title: "Figure 11: degraded (single device failed) read performance",
		Run:   runDegraded,
	})
	register(Experiment{
		Name:  "fig12",
		Title: "Figure 12: time to repair a replaced device vs valid data",
		Run:   runRebuildTTR,
	})
}

// runDegraded reproduces Figure 11: prime the volume, remove the first
// device, and run the sequential/random read sweeps.
func runDegraded(w io.Writer, quick bool) error {
	sc := scaleFor(quick)
	jobs, qd := 8, 64
	if quick {
		jobs, qd = 4, 16
	}

	for _, stack := range []string{"mdraid", "raizn"} {
		fmt.Fprintf(w, "\n-- %s, degraded (device 0 removed) --\n", stack)
		t := newTable(w, "bs", "seqread MiB/s", "randread MiB/s")
		for _, bs := range blockSizes(quick) {
			clk := vclock.New()
			var seq, rnd float64
			clk.Run(func() {
				var tgt fio.Target
				var failDev func()
				if stack == "raizn" {
					v, _, err := newRaizn(clk, sc, true, 16)
					if err != nil {
						panic(err)
					}
					tgt = fio.RaiznTarget{V: v}
					failDev = func() { v.FailDevice(0) }
				} else {
					v, _, err := newMdraid(clk, sc, true, 16)
					if err != nil {
						panic(err)
					}
					tgt = fio.MdraidTarget{V: v}
					failDev = func() { v.FailDevice(0) }
				}
				size := tgt.NumSectors()
				per := size / int64(jobs) / 16 * 16
				var prime []fio.Job
				for j := 0; j < jobs; j++ {
					prime = append(prime, fio.Job{Pattern: fio.SeqWrite, BlockSectors: 16, QueueDepth: qd,
						Offset: int64(j) * per, Size: per, Seed: int64(j)})
				}
				fio.Run(clk, tgt, prime, fio.Options{})
				failDev()

				var js []fio.Job
				for j := 0; j < jobs; j++ {
					js = append(js, fio.Job{Pattern: fio.SeqRead, BlockSectors: bs, QueueDepth: qd,
						Offset: int64(j) * per, Size: per / bs * bs, Seed: int64(j)})
				}
				seq = fio.Run(clk, tgt, js, fio.Options{}).Throughput

				randBytes := size * 4096 / 8
				if quick {
					randBytes /= 4
				}
				rnd = fio.Run(clk, tgt, []fio.Job{{Pattern: fio.RandRead, BlockSectors: bs, QueueDepth: 256,
					Size: per * int64(jobs), TotalBytes: randBytes}}, fio.Options{}).Throughput
			})
			t.row(kib(bs), f1(seq), f1(rnd))
		}
	}
	fmt.Fprintln(w, "\npaper: degraded performance comparable; RAIZN slightly behind at 4K, ahead at larger IO.")
	return nil
}

// runRebuildTTR reproduces Figure 12: fill the volume to varying levels,
// fail and replace a device, and measure the repair time. RAIZN rebuilds
// only valid data (TTR scales with fill); mdraid resyncs the whole
// device (TTR constant).
func runRebuildTTR(w io.Writer, quick bool) error {
	sc := scaleFor(quick)
	fractions := []float64{0.125, 0.25, 0.5, 0.75, 1.0}
	if quick {
		fractions = []float64{0.25, 1.0}
	}

	t := newTable(w, "filled", "raizn TTR", "raizn GiB written", "mdraid TTR", "mdraid GiB written")
	for _, frac := range fractions {
		// RAIZN: fill `frac` of the zones completely.
		var rzTTR string
		var rzBytes float64
		{
			clk := vclock.New()
			clk.Run(func() {
				v, _, err := newRaizn(clk, sc, true, 16)
				if err != nil {
					panic(err)
				}
				tgt := fio.RaiznTarget{V: v}
				zones := int(float64(v.NumZones())*frac + 0.5)
				zs := v.ZoneSectors()
				for z := 0; z < zones; z++ {
					fio.Run(clk, tgt, []fio.Job{{Pattern: fio.SeqWrite, BlockSectors: 32, QueueDepth: 16,
						Offset: int64(z) * zs, Size: zs}}, fio.Options{})
				}
				v.FailDevice(1)
				stats, err := v.ReplaceDevice(zns.NewDevice(clk, znsConfig(sc, true)))
				if err != nil {
					panic(err)
				}
				rzTTR = stats.Elapsed.String()
				rzBytes = float64(stats.BytesWritten) / (1 << 30)
			})
		}
		// mdraid: same fill, full resync.
		var mdTTR string
		var mdBytes float64
		{
			clk := vclock.New()
			clk.Run(func() {
				v, _, err := newMdraid(clk, sc, true, 16)
				if err != nil {
					panic(err)
				}
				tgt := fio.MdraidTarget{V: v}
				fill := int64(float64(v.NumSectors()) * frac / 32)
				if fill > 0 {
					fio.Run(clk, tgt, []fio.Job{{Pattern: fio.SeqWrite, BlockSectors: 32, QueueDepth: 16,
						Size: fill * 32}}, fio.Options{})
				}
				v.Flush()
				v.FailDevice(1)
				stats, err := v.Resync(blockdev.NewDevice(clk, blockConfig(sc, true)))
				if err != nil {
					panic(err)
				}
				mdTTR = stats.Elapsed.String()
				mdBytes = float64(stats.BytesWritten) / (1 << 30)
			})
		}
		t.row(fmt.Sprintf("%.0f%%", frac*100), rzTTR, f2(rzBytes), mdTTR, f2(mdBytes))
	}
	fmt.Fprintln(w, "\npaper: RAIZN TTR scales linearly with valid data; mdraid TTR is constant (full resync).")
	return nil
}
