package bench

import (
	"fmt"
	"io"
	"time"

	"raizn/internal/fio"
	"raizn/internal/obs"
	"raizn/internal/stats"
	"raizn/internal/vclock"
)

func init() {
	register(Experiment{
		Name:  "fig10",
		Title: "Figure 10: full-device overwrite time series (on-device GC cliff)",
		Run:   runGCTimeseries,
	})
}

// runGCTimeseries reproduces the paper's two-phase overwrite benchmark:
// phase 1 fills the array with five concurrent writers on disjoint 20%
// regions (interleaving their data inside each erase block of the
// conventional SSDs); phase 2 sequentially overwrites the whole address
// space with one writer. mdraid collapses once the FTLs exhaust spare
// blocks and must relocate valid pages; RAIZN overwrites by resetting
// zones and stays flat.
func runGCTimeseries(w io.Writer, quick bool) error {
	sc := scaleFor(quick)
	interval := 10 * time.Millisecond
	if quick {
		interval = 5 * time.Millisecond
	}

	type phaseStats struct {
		p1, p2     *stats.Series
		p2min      float64
		p2steady   float64
		p2meanLat  time.Duration
		p2worstLat time.Duration
		evs        []obs.Event // FTL journal (mdraid stack only)
		dropped    uint64
	}

	run := func(stack string) phaseStats {
		var ps phaseStats
		var jrn *obs.Journal
		clk := vclock.New()
		clk.Run(func() {
			var tgt fio.Target
			if stack == "raizn" {
				v, _, err := newRaizn(clk, sc, true, 16)
				if err != nil {
					panic(err)
				}
				tgt = fio.RaiznTarget{V: v}
			} else {
				v, devs, err := newMdraid(clk, sc, true, 16)
				if err != nil {
					panic(err)
				}
				// Journal the FTLs so the phase-2 table can show the
				// free-block drain and the device WA climbing as GC
				// copies valid pages (the cliff's cause, not just its
				// throughput symptom).
				jrn = obs.NewJournal(clk, obs.JournalConfig{Capacity: 65536})
				jrn.Enable()
				for i, d := range devs {
					d.AttachJournal(jrn, i)
				}
				tgt = fio.MdraidTarget{V: v}
			}

			// Phase 1: five writers on disjoint 20% regions.
			size := tgt.NumSectors()
			per := size / 5 / 16 * 16
			var jobs []fio.Job
			for j := 0; j < 5; j++ {
				jobs = append(jobs, fio.Job{Pattern: fio.SeqWrite, BlockSectors: 32, QueueDepth: 16,
					Offset: int64(j) * per, Size: per, Seed: int64(j)})
			}
			res := fio.Run(clk, tgt, jobs, fio.Options{SampleInterval: interval})
			ps.p1 = res.Series

			// Phase 2: one writer overwrites the whole address space.
			// RAIZN (a zoned volume) overwrites by resetting each zone
			// then rewriting it; mdraid overwrites in place.
			ps.p2 = stats.NewSeries(interval)
			done := false
			clk.Go(func() {
				for !done {
					clk.Sleep(interval)
					ps.p2.Tick(clk.Now())
				}
			})
			if zr, ok := tgt.(fio.ZoneResetter); ok {
				overwriteZoned(clk, tgt, zr, ps.p2)
			} else {
				overwriteFlat(clk, tgt, ps.p2)
			}
			done = true
		})
		if jrn != nil {
			ps.evs = jrn.Events()
			ps.dropped = jrn.Dropped()
		}
		samples := ps.p2.Samples()
		// Trim the final partial interval.
		if len(samples) > 2 {
			samples = samples[:len(samples)-1]
		}
		ps.p2min, ps.p2steady = minMaxTput(samples)
		for _, s := range samples {
			if s.MeanLat > ps.p2worstLat {
				ps.p2worstLat = s.MeanLat
			}
		}
		return ps
	}

	md := run("mdraid")
	rz := run("raizn")

	fmt.Fprintln(w, "\nphase 2 (full overwrite) time series, MiB/s (md-free / md-WA from the FTL journal):")
	t := newTable(w, "t(ms)", "mdraid", "raizn", "md-free", "md-WA")
	mdS, rzS := md.p2.Samples(), rz.p2.Samples()
	ftl := newFTLSeries(md.evs)
	n := len(mdS)
	if len(rzS) < n {
		n = len(rzS)
	}
	step := 1
	if n > 40 {
		step = n / 40
	}
	for i := 0; i < n; i += step {
		free, wa, ok := ftl.at(mdS[i].T)
		freeS := "-"
		if ok {
			freeS = fmt.Sprintf("%d", free)
		}
		t.row(fmt.Sprintf("%d", mdS[i].T.Milliseconds()), f1(mdS[i].Throughput), f1(rzS[i].Throughput),
			freeS, fmt.Sprintf("%.2f", wa))
	}
	if md.dropped > 0 {
		fmt.Fprintf(w, "(FTL journal wrapped: %d oldest events dropped; columns reflect retained events)\n", md.dropped)
	}

	mdMean := meanTput(mdS)
	rzMean := meanTput(rzS)
	fmt.Fprintf(w, "\nmdraid phase-2 throughput: mean %.1f, floor %.1f, ceiling %.1f MiB/s (%.0f%% drop)\n",
		mdMean, md.p2min, md.p2steady, (1-md.p2min/md.p2steady)*100)
	fmt.Fprintf(w, "raizn  phase-2 throughput: mean %.1f, floor %.1f, ceiling %.1f MiB/s (%.0f%% drop)\n",
		rzMean, rz.p2min, rz.p2steady, (1-rz.p2min/rz.p2steady)*100)
	if mdMean > 0 {
		fmt.Fprintf(w, "raizn mean / mdraid mean during the overwrite = %.1fx\n", rzMean/mdMean)
	}
	endFree, endWA, ftlOK := ftl.at(1 << 62)
	if ftlOK {
		fmt.Fprintf(w, "mdraid FTL at end of run: %d free erase blocks (min across devices), device WA %.2f\n", endFree, endWA)
	}
	fmt.Fprintln(w, "paper: mdraid throughput drops up to 93% once FTL GC starts; RAIZN is flat (no on-device GC).")

	if quick {
		fmt.Fprintf(w, "\nquick run: BENCH_pr5.json not written\n")
		return nil
	}
	rep := &Report{Schema: SchemaV1, Experiment: "fig10"}
	rep.Cells = []Cell{
		{Name: "phase2/mdraid", Metrics: map[string]float64{
			"mean_mib_s":    mdMean,
			"floor_mib_s":   md.p2min,
			"ceiling_mib_s": md.p2steady,
			"drop_pct":      (1 - md.p2min/md.p2steady) * 100,
		}},
		{Name: "phase2/raizn", Metrics: map[string]float64{
			"mean_mib_s":    rzMean,
			"floor_mib_s":   rz.p2min,
			"ceiling_mib_s": rz.p2steady,
			"drop_pct":      (1 - rz.p2min/rz.p2steady) * 100,
		}},
		{Name: "ftl/mdraid", Metrics: map[string]float64{
			"final_free_blocks": float64(endFree),
			"final_device_wa":   endWA,
		}},
	}
	if err := rep.WriteFile("BENCH_pr5.json"); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote BENCH_pr5.json\n")
	return nil
}

// ftlSeries replays a blockdev FTL journal to answer "as of time t":
// the minimum free-erase-block count across devices (EvBlockAlloc) and
// the array device-level WA, total flash programs over total host
// programs (the cumulative counters each EvGC event carries).
type ftlSeries struct {
	evs  []obs.Event
	next int
	free map[int16]int64
	gc   map[int16][2]int64 // host pages, total programs
}

func newFTLSeries(evs []obs.Event) *ftlSeries {
	return &ftlSeries{evs: evs, free: map[int16]int64{}, gc: map[int16][2]int64{}}
}

// at advances to virtual time t (monotonically across calls) and
// returns the min free-block count and device WA. ok is false before
// the first allocation event.
func (f *ftlSeries) at(t time.Duration) (minFree int64, wa float64, ok bool) {
	for f.next < len(f.evs) && f.evs[f.next].T <= t {
		e := f.evs[f.next]
		switch e.Type {
		case obs.EvBlockAlloc:
			f.free[e.Src] = e.A
		case obs.EvGC:
			f.gc[e.Src] = [2]int64{e.C, e.D}
		}
		f.next++
	}
	wa = 1
	var host, prog int64
	for _, g := range f.gc {
		host += g[0]
		prog += g[1]
	}
	if host > 0 {
		wa = float64(prog) / float64(host)
	}
	if len(f.free) == 0 {
		return 0, wa, false
	}
	minFree = -1
	for _, v := range f.free {
		if minFree < 0 || v < minFree {
			minFree = v
		}
	}
	return minFree, wa, true
}

// overwriteZoned rewrites the zoned volume zone by zone: reset, then
// sequential writes.
func overwriteZoned(clk *vclock.Clock, tgt fio.Target, zr fio.ZoneResetter, series *stats.Series) {
	const bs = 32
	buf := make([]byte, bs*tgt.SectorSize())
	zs := zr.ZoneSectors()
	for z := 0; z < zr.NumZones(); z++ {
		if err := zr.ResetZone(z); err != nil {
			panic(err)
		}
		base := int64(z) * zs
		// Keep a small window of writes outstanding.
		const window = 8
		futs := make([]*vclock.Future, 0, window)
		starts := make([]time.Duration, 0, window)
		drainOne := func() {
			futs[0].Wait()
			series.Observe(int64(len(buf)), clk.Now()-starts[0])
			futs = futs[1:]
			starts = starts[1:]
		}
		for off := int64(0); off+bs <= zs; off += bs {
			if len(futs) == window {
				drainOne()
			}
			starts = append(starts, clk.Now())
			futs = append(futs, tgt.SubmitWrite(base+off, buf))
		}
		for len(futs) > 0 {
			drainOne()
		}
	}
}

// overwriteFlat overwrites a block volume sequentially in place.
func overwriteFlat(clk *vclock.Clock, tgt fio.Target, series *stats.Series) {
	const bs = 32
	buf := make([]byte, bs*tgt.SectorSize())
	size := tgt.NumSectors()
	const window = 8
	futs := make([]*vclock.Future, 0, window)
	starts := make([]time.Duration, 0, window)
	drainOne := func() {
		futs[0].Wait()
		series.Observe(int64(len(buf)), clk.Now()-starts[0])
		futs = futs[1:]
		starts = starts[1:]
	}
	for off := int64(0); off+bs <= size; off += bs {
		if len(futs) == window {
			drainOne()
		}
		starts = append(starts, clk.Now())
		futs = append(futs, tgt.SubmitWrite(off, buf))
	}
	for len(futs) > 0 {
		drainOne()
	}
}

// meanTput averages throughput over samples with activity.
func meanTput(samples []stats.Sample) float64 {
	var sum float64
	n := 0
	for _, s := range samples {
		if s.Ops == 0 {
			continue
		}
		sum += s.Throughput
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// minMaxTput returns the floor and ceiling of non-zero samples.
func minMaxTput(samples []stats.Sample) (min, max float64) {
	min = -1
	for _, s := range samples {
		if s.Ops == 0 {
			continue
		}
		if min < 0 || s.Throughput < min {
			min = s.Throughput
		}
		if s.Throughput > max {
			max = s.Throughput
		}
	}
	if min < 0 {
		min = 0
	}
	return
}
