package bench

import (
	"fmt"
	"strings"
	"testing"

	"raizn/internal/blockdev"
	"raizn/internal/obs"
	"raizn/internal/raizn"
	"raizn/internal/scrub"
	"raizn/internal/vclock"
	"raizn/internal/volmgr"
	"raizn/internal/zns"
)

// approvedPrefixes is the closed set of metric-family namespaces. A new
// subsystem earns its prefix by being added here, in the same commit
// that documents it — anything else is a typo'd or squatting name.
var approvedPrefixes = []string{
	"raizn_", "zns_", "blockdev_", "scrub_", "volmgr_", "ring_",
}

// buildFullStack registers every metric-producing component in the tree
// against one registry: two raizn arrays (both parity engines, labeled,
// one with the submission ring), their zns devices plus the aggregate
// zone-state gauges, a conventional blockdev, a scrubber, and a volmgr
// with tenants. Light traffic materializes the lazily created series.
func buildFullStack(t *testing.T, clk *vclock.Clock, reg *obs.Registry) {
	t.Helper()
	newArray := func(label string, engine raizn.ParityEngine, useRing bool) *raizn.Volume {
		cfg := zns.DefaultConfig()
		cfg.NumZones = 8
		cfg.ZoneSize = 160
		cfg.ZoneCap = 128
		cfg.MaxOpenZones = 8
		cfg.MaxActiveZones = 10
		if engine == raizn.EngineZRAID {
			cfg.ZRWASectors = 34 // two PP slots (su=16 -> stride 17)
		}
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(clk, cfg)
			devs[i].RegisterMetrics(reg, fmt.Sprintf("zns_%s_dev%d", label, i))
		}
		zns.RegisterZoneStateMetrics(reg, devs)
		rcfg := raizn.DefaultConfig()
		rcfg.Metrics = reg
		rcfg.MetricsLabel = label
		rcfg.ParityEngine = engine
		rcfg.UseRing = useRing
		v, err := raizn.Create(clk, devs, rcfg)
		if err != nil {
			t.Fatalf("Create(%s): %v", label, err)
		}
		return v
	}
	v0 := newArray("a0", raizn.EngineLogged, true)
	v1 := newArray("a1", raizn.EngineZRAID, false)

	// Direct traffic lands in v0's last zone so the volmgr volume below
	// can own the early zones without colliding write pointers.
	buf := make([]byte, 16*v0.SectorSize())
	if err := v0.Write(int64(v0.NumZones()-1)*v0.ZoneSectors(), buf, 0); err != nil {
		t.Fatalf("write a0: %v", err)
	}
	if err := v1.Write(0, buf, 0); err != nil {
		t.Fatalf("write a1: %v", err)
	}

	sb := scrub.New(scrub.Config{Clock: clk, Target: scrub.RaiznTarget{V: v0}})
	sb.RegisterMetrics(reg)
	if _, err := sb.RunPass(); err != nil {
		t.Fatalf("scrub pass: %v", err)
	}

	bd := blockdev.NewDevice(clk, blockdev.DefaultConfig())
	bd.RegisterMetrics(reg, "blockdev_dev0")

	m := volmgr.NewManager(clk, volmgr.Config{Registry: reg})
	if _, err := m.AddArray("a0", v0); err != nil {
		t.Fatalf("AddArray: %v", err)
	}
	vol, err := m.CreateVolume("hyg", volmgr.VolumeSpec{
		Zones:   2,
		Engine:  volmgr.EngineConfig{QueueDepth: 4},
		Tenants: []volmgr.TenantConfig{{ID: "t0", Weight: 1}, {ID: "t1", Weight: 1}},
	})
	if err != nil {
		t.Fatalf("CreateVolume: %v", err)
	}
	fut, err := vol.SubmitWrite("t0", 0, buf, 0)
	if err != nil {
		t.Fatalf("SubmitWrite: %v", err)
	}
	if err := fut.Wait(); err != nil {
		t.Fatalf("volmgr write: %v", err)
	}
	if err := vol.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestMetricHygiene is the registry lint: every metric family registered
// by the full stack — labeled series included — must carry a HELP line
// and live under an approved prefix. It runs as an ordinary test, so a
// violating registration fails CI's test step.
func TestMetricHygiene(t *testing.T) {
	clk := vclock.New()
	reg := obs.NewRegistry()
	clk.Run(func() { buildFullStack(t, clk, reg) })

	snap := reg.Snapshot()
	var names []string
	for n := range snap.Counters {
		names = append(names, n)
	}
	for n := range snap.Gauges {
		names = append(names, n)
	}
	for n := range snap.Histograms {
		names = append(names, n)
	}
	if len(names) < 40 {
		t.Fatalf("full stack registered only %d metrics; the lint is not seeing the real surface", len(names))
	}

	seen := make(map[string]bool)
	for _, n := range names {
		fam := obs.MetricFamily(n)
		if seen[fam] {
			continue
		}
		seen[fam] = true
		if strings.TrimSpace(snap.Help[fam]) == "" {
			t.Errorf("metric family %q (series %q) has no HELP text; add Registry.Help at the registration site", fam, n)
		}
		ok := false
		for _, p := range approvedPrefixes {
			if strings.HasPrefix(fam, p) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("metric family %q is outside the approved namespaces %v", fam, approvedPrefixes)
		}
	}
}
