package bench

import (
	"fmt"
	"io"
	"time"

	"raizn/internal/blockdev"
	"raizn/internal/fio"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

func init() {
	register(Experiment{
		Name:  "raw",
		Title: "§6.1 raw device microbenchmarks (ZNS vs conventional SSD)",
		Run:   runRaw,
	})
	register(Experiment{
		Name:  "fig7",
		Title: "Figure 7: mdraid throughput vs block size across stripe unit sizes",
		Run:   func(w io.Writer, quick bool) error { return runStripeSweep(w, quick, false) },
	})
	register(Experiment{
		Name:  "fig8",
		Title: "Figure 8: RAIZN throughput vs block size across stripe unit sizes",
		Run:   func(w io.Writer, quick bool) error { return runStripeSweep(w, quick, true) },
	})
	register(Experiment{
		Name:  "fig9",
		Title: "Figure 9: RAIZN vs mdraid throughput, median and p99.9 latency (64 KiB stripe units)",
		Run:   runHeadToHead,
	})
}

// paper block-size sweep, in sectors (4 KiB each).
func blockSizes(quick bool) []int64 {
	if quick {
		return []int64{1, 16, 64}
	}
	return []int64{1, 4, 16, 64, 128, 256} // 4K .. 1M
}

// stripe unit sweep, in sectors: 8K..128K.
func stripeUnits(quick bool) []int64 {
	if quick {
		return []int64{4, 16}
	}
	return []int64{2, 4, 8, 16, 32}
}

// runRaw measures a single raw device of each kind, reproducing the §6.1
// numbers: ZNS 1052 MiB/s write / 3265 MiB/s read, each a few percent
// below the conventional device.
func runRaw(w io.Writer, quick bool) error {
	sc := scaleFor(quick)

	measure := func(tgt fio.Target, clk *vclock.Clock) (wr, rd, rrd float64) {
		size := tgt.NumSectors()
		res := fio.Run(clk, tgt, []fio.Job{{Pattern: fio.SeqWrite, BlockSectors: 32, QueueDepth: 32, Size: size}}, fio.Options{})
		wr = res.Throughput
		res = fio.Run(clk, tgt, []fio.Job{{Pattern: fio.SeqRead, BlockSectors: 32, QueueDepth: 32, Size: size}}, fio.Options{})
		rd = res.Throughput
		res = fio.Run(clk, tgt, []fio.Job{{Pattern: fio.RandRead, BlockSectors: 1, QueueDepth: 64, TotalBytes: size * 4096 / 4}}, fio.Options{})
		rrd = res.Throughput
		return
	}

	var zwr, zrd, zrr, cwr, crd, crr float64
	clk := vclock.New()
	clk.Run(func() {
		d := zns.NewDevice(clk, znsConfig(sc, true))
		zwr, zrd, zrr = measure(fio.ZNSFlatTarget{D: d}, clk)
	})
	clk2 := vclock.New()
	clk2.Run(func() {
		d := blockdev.NewDevice(clk2, blockConfig(sc, true))
		cwr, crd, crr = measure(fio.BlockTarget{D: d}, clk2)
	})

	t := newTable(w, "device", "seqwrite MiB/s", "seqread MiB/s", "randread MiB/s")
	t.row("zns", f1(zwr), f1(zrd), f1(zrr))
	t.row("conventional", f1(cwr), f1(crd), f1(crr))
	fmt.Fprintf(w, "paper: ZNS write 1052 MiB/s (-2%% vs conv), read 3265 MiB/s (-4%% vs conv)\n")
	fmt.Fprintf(w, "measured deltas: write %+.1f%%, read %+.1f%%\n",
		(zwr-cwr)/cwr*100, (zrd-crd)/crd*100)
	return nil
}

// volumeBench runs the paper's three microbenchmark workloads at one
// block size against a primed target: sequential read and random read on
// the primed volume; sequential write on a fresh one (the caller
// provides fresh targets via mk).
type volumeResult struct {
	write, seqread, randread float64       // MiB/s
	wp50, wp999, rp50, rp999 time.Duration // write/read latencies
}

// mkTarget builds a fresh volume (and its clock) for a write trial or the
// priming pass.
type mkTarget func() (*vclock.Clock, fio.Target)

func runWorkloads(mk mkTarget, bs int64, quick bool) volumeResult {
	var out volumeResult
	jobs := 8
	qd := 64
	if quick {
		jobs, qd = 4, 16
	}

	// Sequential write on a fresh volume (paper: devices reformatted
	// before each write trial).
	clk, tgt := mk()
	clk.Run(func() {
		size := tgt.NumSectors()
		per := size / int64(jobs)
		per = per / bs * bs
		var js []fio.Job
		for j := 0; j < jobs; j++ {
			js = append(js, fio.Job{Pattern: fio.SeqWrite, BlockSectors: bs, QueueDepth: qd,
				Offset: int64(j) * per, Size: per, Seed: int64(j)})
		}
		res := fio.Run(clk, tgt, js, fio.Options{})
		out.write = res.Throughput
		out.wp50 = res.Hist.Percentile(50)
		out.wp999 = res.Hist.Percentile(99.9)
	})

	// Prime a fresh volume, then sequential + random read.
	clk, tgt = mk()
	clk.Run(func() {
		size := tgt.NumSectors()
		per := size / int64(jobs)
		per = per / bs * bs
		prime := []fio.Job{}
		for j := 0; j < jobs; j++ {
			prime = append(prime, fio.Job{Pattern: fio.SeqWrite, BlockSectors: 16, QueueDepth: qd,
				Offset: int64(j) * per, Size: per, Seed: int64(j)})
		}
		fio.Run(clk, tgt, prime, fio.Options{})

		var js []fio.Job
		for j := 0; j < jobs; j++ {
			js = append(js, fio.Job{Pattern: fio.SeqRead, BlockSectors: bs, QueueDepth: qd,
				Offset: int64(j) * per, Size: per, Seed: int64(j)})
		}
		res := fio.Run(clk, tgt, js, fio.Options{})
		out.seqread = res.Throughput
		out.rp50 = res.Hist.Percentile(50)
		out.rp999 = res.Hist.Percentile(99.9)

		randBytes := size * 4096 / 8
		if quick {
			randBytes /= 4
		}
		res = fio.Run(clk, tgt, []fio.Job{{Pattern: fio.RandRead, BlockSectors: bs, QueueDepth: 256,
			Size: per * int64(jobs), TotalBytes: randBytes}}, fio.Options{})
		out.randread = res.Throughput
	})
	return out
}

// runStripeSweep reproduces Figures 7 (mdraid) and 8 (RAIZN): throughput
// of the three workloads across block sizes, one series per stripe unit
// size.
func runStripeSweep(w io.Writer, quick bool, useRaizn bool) error {
	sc := scaleFor(quick)
	for _, su := range stripeUnits(quick) {
		fmt.Fprintf(w, "\n-- stripe unit %d KiB --\n", su*4)
		t := newTable(w, "bs", "write MiB/s", "seqread MiB/s", "randread MiB/s")
		for _, bs := range blockSizes(quick) {
			mk := func() (*vclock.Clock, fio.Target) {
				clk := vclock.New()
				if useRaizn {
					var tgt fio.Target
					clk.Run(func() {
						v, _, err := newRaizn(clk, sc, true, su)
						if err != nil {
							panic(err)
						}
						tgt = fio.RaiznTarget{V: v}
					})
					return clk, tgt
				}
				var tgt fio.Target
				clk.Run(func() {
					v, _, err := newMdraid(clk, sc, true, su)
					if err != nil {
						panic(err)
					}
					tgt = fio.MdraidTarget{V: v}
				})
				return clk, tgt
			}
			r := runWorkloads(mk, bs, quick)
			t.row(kib(bs), f1(r.write), f1(r.seqread), f1(r.randread))
		}
	}
	return nil
}

// runHeadToHead reproduces Figure 9: both stacks at the chosen 64 KiB
// stripe unit, reporting throughput, median latency and p99.9 latency.
func runHeadToHead(w io.Writer, quick bool) error {
	sc := scaleFor(quick)
	const su = 16 // 64 KiB

	for _, stack := range []string{"mdraid", "raizn"} {
		fmt.Fprintf(w, "\n-- %s (64 KiB stripe units) --\n", stack)
		t := newTable(w, "bs", "write MiB/s", "seqread MiB/s", "randrd MiB/s", "w p50", "w p99.9", "r p50", "r p99.9")
		for _, bs := range blockSizes(quick) {
			mk := func() (*vclock.Clock, fio.Target) {
				clk := vclock.New()
				var tgt fio.Target
				clk.Run(func() {
					if stack == "raizn" {
						v, _, err := newRaizn(clk, sc, true, su)
						if err != nil {
							panic(err)
						}
						tgt = fio.RaiznTarget{V: v}
					} else {
						v, _, err := newMdraid(clk, sc, true, su)
						if err != nil {
							panic(err)
						}
						tgt = fio.MdraidTarget{V: v}
					}
				})
				return clk, tgt
			}
			r := runWorkloads(mk, bs, quick)
			t.row(kib(bs), f1(r.write), f1(r.seqread), f1(r.randread),
				r.wp50.String(), r.wp999.String(), r.rp50.String(), r.rp999.String())
		}
	}
	fmt.Fprintln(w, "\npaper shape: RAIZN trails mdraid on 4-64K writes (parity-log header overhead),")
	fmt.Fprintln(w, "matches or beats it at 256K-1M; latencies comparable.")
	return nil
}
