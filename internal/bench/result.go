package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// SchemaV1 identifies the standardized bench result format. A report is
// a flat list of named cells, each holding metric-name -> value rows;
// cell names encode the experiment's parameter point ("sim/su=4/bs=16/
// jobs=1"). Metric maps marshal with sorted keys, so emitted files are
// byte-deterministic for identical results.
const SchemaV1 = "raizn-bench/v1"

// Report is one benchmark run's results in the standard schema.
type Report struct {
	Schema     string `json:"schema"`
	Experiment string `json:"experiment"`
	Quick      bool   `json:"quick"`
	Cells      []Cell `json:"cells"`
}

// Cell is one parameter point of an experiment.
type Cell struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

// cell looks up a cell by name.
func (r *Report) cell(name string) *Cell {
	for i := range r.Cells {
		if r.Cells[i].Name == name {
			return &r.Cells[i]
		}
	}
	return nil
}

// WriteFile marshals the report (indented, sorted metric keys, trailing
// newline) to path.
func (r *Report) WriteFile(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// LoadReport reads a bench result file: the standard schema directly,
// or the legacy PR3 writepath shape (BENCH_pr3.json, which predates the
// schema) adapted into equivalent cells.
func LoadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if probe.Schema == SchemaV1 {
		var r Report
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &r, nil
	}
	if probe.Schema != "" {
		return nil, fmt.Errorf("%s: unknown schema %q", path, probe.Schema)
	}
	var legacy wpReport
	if err := json.Unmarshal(raw, &legacy); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if legacy.Experiment == "" {
		return nil, fmt.Errorf("%s: neither %s nor legacy writepath shape", path, SchemaV1)
	}
	r := &Report{Schema: SchemaV1, Experiment: legacy.Experiment, Quick: legacy.Quick}
	for _, s := range legacy.Simulated {
		m := map[string]float64{
			"legacy_mib_s":     s.LegacyMiBs,
			"coalesced_mib_s":  s.CoalescedMiB,
			"legacy_p50_us":    s.LegacyP50us,
			"coalesced_p50_us": s.CoalP50us,
			"legacy_p99_us":    s.LegacyP99us,
			"coalesced_p99_us": s.CoalP99us,
		}
		// Degenerate cells (both paths byte-identical) carry no gain
		// measurement: omitting the metric keeps Compare from treating a
		// later non-zero gain as a 100% jump, or a measured 0 as honest.
		if !s.degenerate() {
			m["gain_pct"] = s.GainPct
		}
		r.Cells = append(r.Cells, Cell{
			Name:    fmt.Sprintf("sim/su=%d/bs=%d/jobs=%d", s.SU, s.BS, s.Jobs),
			Metrics: m,
		})
	}
	for _, h := range legacy.Host {
		r.Cells = append(r.Cells, Cell{
			Name: "host/" + h.Name,
			Metrics: map[string]float64{
				"legacy_ns_op":         float64(h.LegacyNsOp),
				"coalesced_ns_op":      float64(h.CoalescedNsOp),
				"legacy_allocs_op":     float64(h.LegacyAllocs),
				"coalesced_allocs_op":  float64(h.CoalescedAllocs),
				"speedup_pct":          h.SpeedupPct,
				"allocs_reduction_pct": h.AllocsRedPct,
			},
		})
	}
	return r, nil
}

// metricDirection classifies a metric name: +1 higher-is-better, -1
// lower-is-better, 0 unknown (deltas are reported but never flagged).
func metricDirection(name string) int {
	switch {
	case strings.Contains(name, "mib_s"), strings.Contains(name, "iops"),
		strings.Contains(name, "gain"), strings.Contains(name, "speedup"),
		strings.Contains(name, "reduction"), strings.Contains(name, "free"),
		strings.Contains(name, "jain"):
		return 1
	case strings.HasSuffix(name, "_us"), strings.HasSuffix(name, "_ns_op"),
		strings.HasSuffix(name, "_allocs_op"), strings.Contains(name, "lat"),
		strings.Contains(name, "_wa"), strings.Contains(name, "drop"),
		strings.Contains(name, "shed"), strings.Contains(name, "overhead"),
		strings.Contains(name, "breach"):
		return -1
	}
	return 0
}

// Compare renders a per-cell, per-metric delta table of cur vs old and
// returns how many metrics regressed by more than thresholdPct in their
// worse direction. Cells or metrics present on only one side are noted
// but not counted as regressions.
func Compare(w io.Writer, old, cur *Report, thresholdPct float64) int {
	fmt.Fprintf(w, "comparing %s (old) vs %s (new), regression threshold %.1f%%\n",
		old.Experiment, cur.Experiment, thresholdPct)
	regressions := 0
	row := func(cell, metric, ov, nv, delta, note string) {
		fmt.Fprintf(w, "%-28s %-22s %12s %12s %10s %s\n", cell, metric, ov, nv, delta, note)
	}
	row("cell", "metric", "old", "new", "delta%", "")
	for _, oc := range old.Cells {
		nc := cur.cell(oc.Name)
		if nc == nil {
			fmt.Fprintf(w, "  cell %q missing from the new report\n", oc.Name)
			continue
		}
		names := make([]string, 0, len(oc.Metrics))
		for m := range oc.Metrics {
			names = append(names, m)
		}
		sort.Strings(names)
		for _, m := range names {
			ov := oc.Metrics[m]
			nv, ok := nc.Metrics[m]
			if !ok {
				fmt.Fprintf(w, "  metric %s/%s missing from the new report\n", oc.Name, m)
				continue
			}
			deltaPct := 0.0
			if ov != 0 {
				deltaPct = (nv - ov) / ov * 100
			} else if nv != 0 {
				deltaPct = 100
			}
			note := ""
			dir := metricDirection(m)
			if dir != 0 && deltaPct*float64(dir) < -thresholdPct {
				note = "REGRESSION"
				regressions++
			}
			row(oc.Name, m, f1(ov), f1(nv), fmt.Sprintf("%+.1f", deltaPct), note)
		}
	}
	for _, nc := range cur.Cells {
		if old.cell(nc.Name) == nil {
			fmt.Fprintf(w, "  cell %q only in the new report\n", nc.Name)
		}
	}
	if regressions == 0 {
		fmt.Fprintln(w, "no regressions past threshold")
	} else {
		fmt.Fprintf(w, "%d metric(s) regressed past threshold\n", regressions)
	}
	return regressions
}
