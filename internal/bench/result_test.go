package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const legacyJSON = `{
  "experiment": "writepath",
  "quick": false,
  "simulated": [
    {"su_sectors": 4, "bs_sectors": 16, "jobs": 1,
     "legacy_mib_s": 100, "coalesced_mib_s": 110, "gain_pct": 10,
     "legacy_p50_us": 500, "coalesced_p50_us": 450,
     "legacy_p99_us": 900, "coalesced_p99_us": 800}
  ],
  "host": [
    {"name": "4K", "legacy_ns_op": 1000, "coalesced_ns_op": 400,
     "legacy_allocs_op": 70, "coalesced_allocs_op": 27,
     "speedup_pct": 60, "allocs_reduction_pct": 61}
  ]
}`

func TestLoadReportLegacyAdapts(t *testing.T) {
	r, err := LoadReport(writeTemp(t, "legacy.json", legacyJSON))
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema != SchemaV1 || r.Experiment != "writepath" {
		t.Fatalf("adapted header = %q/%q", r.Schema, r.Experiment)
	}
	sim := r.cell("sim/su=4/bs=16/jobs=1")
	if sim == nil {
		t.Fatalf("sim cell missing; cells = %+v", r.Cells)
	}
	if sim.Metrics["coalesced_mib_s"] != 110 || sim.Metrics["legacy_p99_us"] != 900 {
		t.Fatalf("sim metrics = %+v", sim.Metrics)
	}
	host := r.cell("host/4K")
	if host == nil || host.Metrics["coalesced_allocs_op"] != 27 {
		t.Fatalf("host cell = %+v", host)
	}
}

func TestLoadReportV1RoundTrip(t *testing.T) {
	rep := &Report{Schema: SchemaV1, Experiment: "fig10", Cells: []Cell{
		{Name: "phase2/raizn", Metrics: map[string]float64{"mean_mib_s": 2800}},
	}}
	p := filepath.Join(t.TempDir(), "r.json")
	if err := rep.WriteFile(p); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReport(p)
	if err != nil {
		t.Fatal(err)
	}
	if back.Experiment != "fig10" || back.cell("phase2/raizn").Metrics["mean_mib_s"] != 2800 {
		t.Fatalf("round trip = %+v", back)
	}
	if _, err := LoadReport(writeTemp(t, "bad.json", `{"schema":"other/v9"}`)); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := &Report{Schema: SchemaV1, Experiment: "x", Cells: []Cell{
		{Name: "a", Metrics: map[string]float64{
			"tput_mib_s":   100, // higher is better
			"lat_p99_us":   100, // lower is better
			"odd_quantity": 100, // unknown direction: never flagged
		}},
	}}
	cur := &Report{Schema: SchemaV1, Experiment: "x", Cells: []Cell{
		{Name: "a", Metrics: map[string]float64{
			"tput_mib_s":   80,  // -20%: regression
			"lat_p99_us":   120, // +20%: regression
			"odd_quantity": 10,  // -90% but unknown direction
		}},
	}}
	var sb strings.Builder
	if got := Compare(&sb, old, cur, 5); got != 2 {
		t.Fatalf("regressions = %d, want 2\n%s", got, sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Fatalf("no REGRESSION marker:\n%s", sb.String())
	}

	// Within threshold: clean.
	sb.Reset()
	if got := Compare(&sb, old, old, 5); got != 0 {
		t.Fatalf("self-compare regressions = %d\n%s", got, sb.String())
	}
	if !strings.Contains(sb.String(), "no regressions past threshold") {
		t.Fatalf("missing clean verdict:\n%s", sb.String())
	}

	// Improvements in the good direction are not regressions.
	better := &Report{Schema: SchemaV1, Experiment: "x", Cells: []Cell{
		{Name: "a", Metrics: map[string]float64{
			"tput_mib_s": 200, "lat_p99_us": 50, "odd_quantity": 100,
		}},
	}}
	sb.Reset()
	if got := Compare(&sb, old, better, 5); got != 0 {
		t.Fatalf("improvement flagged as regression:\n%s", sb.String())
	}
}

func TestCompareMissingCells(t *testing.T) {
	old := &Report{Cells: []Cell{{Name: "gone", Metrics: map[string]float64{"m_mib_s": 1}}}}
	cur := &Report{Cells: []Cell{{Name: "fresh", Metrics: map[string]float64{"m_mib_s": 1}}}}
	var sb strings.Builder
	if got := Compare(&sb, old, cur, 5); got != 0 {
		t.Fatalf("missing cells counted as regressions: %d", got)
	}
	if !strings.Contains(sb.String(), `cell "gone" missing`) ||
		!strings.Contains(sb.String(), `cell "fresh" only in the new report`) {
		t.Fatalf("missing-cell notes absent:\n%s", sb.String())
	}
}
