package bench

import (
	"fmt"
	"hash/crc32"
	"io"
	"testing"

	"raizn/internal/fio"
	"raizn/internal/parity"
	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

func init() {
	register(Experiment{
		Name:  "ring",
		Title: "PR8 batched submission/completion ring, zero-copy reads, fused XOR/CRC",
		Run:   runRing,
	})
}

// The ring experiment quantifies the PR8 overhaul along its three axes:
//
//   - Batched submission: the plan/compute/submit pipeline pushes a
//     stripe write's sub-IOs into per-device SQ batches that the device
//     validates and applies under one lock acquisition, with one future
//     slab and one CQ walker goroutine — host ns/op drops because the
//     per-command fixed costs are paid once per batch.
//   - Zero-copy reads: SubmitReadZC assembles epoch-pinned views of
//     device memory instead of copying payloads into a caller buffer,
//     eliminating the data-buffer allocations of the copying read.
//   - Fused XOR/CRC: parity.XORCRCInto computes the parity image and
//     all unit CRCs in one cache-resident pass over the stripe.
//
// Simulated device time is identical by construction (the batch charges
// the same per-command pipe occupancy), which the sim cell checks: ring
// and direct throughput must agree to within noise.
//
// Results go to the report writer and to BENCH_pr8.json (raizn-bench/v1
// schema, committed at the repo root as the PR's benchmark baseline).

// ringVolCfg returns the volume config for the chosen submission path.
func ringVolCfg(useRing bool) raizn.Config {
	rcfg := raizn.DefaultConfig()
	rcfg.UseRing = useRing
	rcfg.Metrics = runRegistry
	return rcfg
}

// ringHostWrite measures host-side cost (real ns/op, allocs/op) of
// sequential writes of nSectors through the chosen submission path.
func ringHostWrite(sc scale, nSectors int64, useRing bool) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		clk := vclock.New()
		clk.Run(func() {
			devs := make([]*zns.Device, sc.numDevices)
			for i := range devs {
				devs[i] = zns.NewDevice(clk, znsConfig(sc, true))
			}
			v, err := raizn.Create(clk, devs, ringVolCfg(useRing))
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, nSectors*int64(v.SectorSize()))
			var lba int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if lba+nSectors > v.NumSectors() {
					b.StopTimer()
					for z := 0; z < v.NumZones(); z++ {
						if err := v.ResetZone(z); err != nil {
							b.Fatal(err)
						}
					}
					lba = 0
					b.StartTimer()
				}
				if err := v.Write(lba, buf, 0); err != nil {
					b.Fatal(err)
				}
				lba += nSectors
			}
		})
	})
}

// ringHostRead measures host-side read cost over a prefilled zone:
// copying Read versus zero-copy SubmitReadZC. Payloads are materialized
// (DiscardData off) so both paths pay the same memory traffic.
func ringHostRead(sc scale, nSectors int64, zeroCopy bool) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		clk := vclock.New()
		clk.Run(func() {
			devs := make([]*zns.Device, sc.numDevices)
			for i := range devs {
				devs[i] = zns.NewDevice(clk, znsConfig(sc, false))
			}
			v, err := raizn.Create(clk, devs, ringVolCfg(zeroCopy))
			if err != nil {
				b.Fatal(err)
			}
			prefill := make([]byte, v.ZoneSectors()*int64(v.SectorSize()))
			if err := v.Write(0, prefill, 0); err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, nSectors*int64(v.SectorSize()))
			n := v.ZoneSectors() - nSectors
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lba := int64(i) % n
				if zeroCopy {
					r := v.SubmitReadZC(lba, nSectors)
					if err := r.Wait(); err != nil {
						b.Fatal(err)
					}
					if !r.ZeroCopy() {
						b.Fatal("zero-copy read fell back to copying")
					}
					r.Release()
				} else {
					if err := v.Read(lba, buf); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	})
}

// ringXORCRC measures the stripe-compute kernel: parity XOR plus unit
// CRCs as separate passes versus the fused single pass.
func ringXORCRC(units int, unitBytes int, fused bool) testing.BenchmarkResult {
	tab := crc32.MakeTable(crc32.Castagnoli)
	return testing.Benchmark(func(b *testing.B) {
		srcs := make([][]byte, units)
		for i := range srcs {
			srcs[i] = make([]byte, unitBytes)
			for j := range srcs[i] {
				srcs[i][j] = byte(i*31 + j)
			}
		}
		dst := make([]byte, unitBytes)
		crcs := make([]uint32, units+1)
		b.SetBytes(int64(units * unitBytes))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if fused {
				for k := range crcs {
					crcs[k] = 0
				}
				parity.XORCRCInto(dst, srcs, crcs, tab)
			} else {
				for j := range dst {
					dst[j] = 0
				}
				for k, s := range srcs {
					parity.XORInto(dst, s)
					crcs[k] = crc32.Checksum(s, tab)
				}
				crcs[units] = crc32.Checksum(dst, tab)
			}
		}
	})
}

// ringFioWrite runs a sequential-write pass over the whole volume and
// returns aggregate throughput: the simulated-time equivalence check.
func ringFioWrite(sc scale, bs int64, jobs int, useRing bool) (mibs float64) {
	clk := vclock.New()
	clk.Run(func() {
		devs := make([]*zns.Device, sc.numDevices)
		for i := range devs {
			devs[i] = zns.NewDevice(clk, znsConfig(sc, true))
			devs[i].RegisterMetrics(runRegistry, fmt.Sprintf("zns_dev%d", i))
		}
		v, err := raizn.Create(clk, devs, ringVolCfg(useRing))
		if err != nil {
			panic(err)
		}
		tgt := fio.RaiznTarget{V: v}
		size := tgt.NumSectors()
		per := size / int64(jobs) / bs * bs
		var js []fio.Job
		for j := 0; j < jobs; j++ {
			js = append(js, fio.Job{Pattern: fio.SeqWrite, BlockSectors: bs, QueueDepth: 32,
				Offset: int64(j) * per, Size: per, Seed: int64(j)})
		}
		res := fio.Run(clk, tgt, js, fio.Options{})
		mibs = res.Throughput
	})
	return
}

func pctLess(old, new int64) float64 {
	if old == 0 {
		return 0
	}
	return float64(old-new) / float64(old) * 100
}

func runRing(w io.Writer, quick bool) error {
	sc := scaleFor(quick)
	rep := &Report{Schema: SchemaV1, Experiment: "ring", Quick: quick}
	su := raizn.DefaultConfig().StripeUnitSectors
	stripe := su * int64(sc.numDevices-1)

	// Host write path: direct vs ring, 4 KiB and 4-stripe submissions.
	fmt.Fprintf(w, "\n-- host cost per Write (real CPU), ring vs direct --\n")
	tw := newTable(w, "workload", "direct ns/op", "ring ns/op", "speedup", "direct allocs", "ring allocs")
	writeCases := []struct {
		name string
		n    int64
	}{
		{"submit-4k", 1},
		{"submit-4stripe", stripe * 4},
	}
	if quick {
		writeCases = writeCases[1:]
	}
	for _, c := range writeCases {
		dr := ringHostWrite(sc, c.n, false)
		rr := ringHostWrite(sc, c.n, true)
		speedup := pctLess(dr.NsPerOp(), rr.NsPerOp())
		rep.Cells = append(rep.Cells, Cell{
			Name: "host/" + c.name,
			Metrics: map[string]float64{
				"direct_ns_op":     float64(dr.NsPerOp()),
				"ring_ns_op":       float64(rr.NsPerOp()),
				"speedup_pct":      speedup,
				"direct_allocs_op": float64(dr.AllocsPerOp()),
				"ring_allocs_op":   float64(rr.AllocsPerOp()),
			},
		})
		tw.row(c.name, fmt.Sprintf("%d", dr.NsPerOp()), fmt.Sprintf("%d", rr.NsPerOp()),
			fmt.Sprintf("%+.1f%%", speedup),
			fmt.Sprintf("%d", dr.AllocsPerOp()), fmt.Sprintf("%d", rr.AllocsPerOp()))
	}

	// Host read path: copying Read vs zero-copy SubmitReadZC.
	fmt.Fprintf(w, "\n-- host cost per read (real CPU), zero-copy vs copying --\n")
	tr := newTable(w, "workload", "copy ns/op", "zc ns/op", "speedup", "copy allocs", "zc allocs", "allocs cut")
	readN := stripe // one full stripe
	cr := ringHostRead(sc, readN, false)
	zr := ringHostRead(sc, readN, true)
	acut := pctLess(cr.AllocsPerOp(), zr.AllocsPerOp())
	rep.Cells = append(rep.Cells, Cell{
		Name: "host/read-zc",
		Metrics: map[string]float64{
			"copy_ns_op":           float64(cr.NsPerOp()),
			"zc_ns_op":             float64(zr.NsPerOp()),
			"speedup_pct":          pctLess(cr.NsPerOp(), zr.NsPerOp()),
			"copy_allocs_op":       float64(cr.AllocsPerOp()),
			"zc_allocs_op":         float64(zr.AllocsPerOp()),
			"allocs_reduction_pct": acut,
		},
	})
	tr.row("read-1stripe", fmt.Sprintf("%d", cr.NsPerOp()), fmt.Sprintf("%d", zr.NsPerOp()),
		fmt.Sprintf("%+.1f%%", pctLess(cr.NsPerOp(), zr.NsPerOp())),
		fmt.Sprintf("%d", cr.AllocsPerOp()), fmt.Sprintf("%d", zr.AllocsPerOp()),
		fmt.Sprintf("%+.1f%%", acut))

	// Stripe-compute kernel: fused vs separate XOR+CRC passes.
	fmt.Fprintf(w, "\n-- stripe compute kernel, fused vs separate passes --\n")
	tk := newTable(w, "stripe", "separate ns/op", "fused ns/op", "speedup", "GB/s (sep/fused)")
	unitBytes := int(su) * 4096
	sep := ringXORCRC(sc.numDevices-1, unitBytes, false)
	fus := ringXORCRC(sc.numDevices-1, unitBytes, true)
	gbs := func(r testing.BenchmarkResult) float64 {
		return float64(r.Bytes) * float64(r.N) / r.T.Seconds() / 1e9
	}
	rep.Cells = append(rep.Cells, Cell{
		Name: "host/fused-xorcrc",
		Metrics: map[string]float64{
			"separate_ns_op": float64(sep.NsPerOp()),
			"fused_ns_op":    float64(fus.NsPerOp()),
			"speedup_pct":    pctLess(sep.NsPerOp(), fus.NsPerOp()),
			"fused_gb_s":     gbs(fus),
		},
	})
	tk.row(fmt.Sprintf("%dx%dK", sc.numDevices-1, unitBytes/1024),
		fmt.Sprintf("%d", sep.NsPerOp()), fmt.Sprintf("%d", fus.NsPerOp()),
		fmt.Sprintf("%+.1f%%", pctLess(sep.NsPerOp(), fus.NsPerOp())),
		fmt.Sprintf("%.1f/%.1f", gbs(sep), gbs(fus)))

	// Simulated throughput: the ring must not change device-time behavior.
	fmt.Fprintf(w, "\n-- simulated sequential write, ring vs direct (equivalence) --\n")
	ts := newTable(w, "bs", "jobs", "direct MiB/s", "ring MiB/s", "delta")
	bss := []int64{64, 256}
	jobs := 4
	if quick {
		bss = []int64{64}
		jobs = 1
	}
	for _, bs := range bss {
		dm := ringFioWrite(sc, bs, jobs, false)
		rm := ringFioWrite(sc, bs, jobs, true)
		rep.Cells = append(rep.Cells, Cell{
			Name: fmt.Sprintf("sim/seqwrite/bs=%d/jobs=%d", bs, jobs),
			Metrics: map[string]float64{
				"direct_mib_s": dm,
				"ring_mib_s":   rm,
			},
		})
		ts.row(kib(bs), fmt.Sprintf("%d", jobs), f1(dm), f1(rm),
			fmt.Sprintf("%+.2f%%", (rm-dm)/dm*100))
	}

	if quick {
		fmt.Fprintf(w, "\nquick run: BENCH_pr8.json not written\n")
		return nil
	}
	if err := rep.WriteFile("BENCH_pr8.json"); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote BENCH_pr8.json\n")
	return nil
}
