package bench

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"time"

	"raizn/internal/fio"
	"raizn/internal/scrub"
	"raizn/internal/vclock"
)

func init() {
	register(Experiment{
		Name:  "scrub",
		Title: "background scrub: foreground interference vs rate limit, and rot repair coverage vs mdraid",
		Run:   runScrub,
	})
}

func runScrub(w io.Writer, quick bool) error {
	if err := runScrubInterference(w, quick); err != nil {
		return err
	}
	return runScrubCoverage(w, quick)
}

// runScrubInterference measures foreground random-read throughput on a
// primed RAIZN volume with the background scrubber off, then on at
// several rate limits: the token bucket should bound the interference,
// converging to the scrub-off baseline as the limit tightens.
func runScrubInterference(w io.Writer, quick bool) error {
	sc := scaleFor(quick)
	fmt.Fprintf(w, "\n-- foreground 64K randread vs background scrub rate (raizn) --\n")

	type mode struct {
		label string
		on    bool
		rate  int64 // 0 = unthrottled
	}
	modes := []mode{
		{"off", false, 0},
		{"8 MiB/s", true, 8 << 20},
		{"32 MiB/s", true, 32 << 20},
		{"128 MiB/s", true, 128 << 20},
		{"unlimited", true, 0},
	}

	t := newTable(w, "scrub rate", "fg MiB/s", "scrub MiB scanned")
	for _, m := range modes {
		clk := vclock.New()
		var fg float64
		var scanned int64
		clk.Run(func() {
			v, _, err := newRaizn(clk, sc, false, 16)
			if err != nil {
				panic(err)
			}
			tgt := fio.RaiznTarget{V: v}
			fio.Run(clk, tgt, []fio.Job{{Pattern: fio.SeqWrite, BlockSectors: 32, QueueDepth: 16,
				Size: tgt.NumSectors()}}, fio.Options{})
			if err := v.Flush(); err != nil {
				panic(err)
			}

			var s *scrub.Scrubber
			if m.on {
				s = scrub.New(scrub.Config{
					Clock: clk, Target: scrub.RaiznTarget{V: v},
					Repair: true, RateLimit: m.rate,
					PassInterval: time.Millisecond,
				})
				s.RegisterMetrics(runRegistry)
				s.Start()
			}
			// Duration-bounded: the window must be long relative to
			// per-stripe scrub latency or the scrubber never gets going.
			dur := time.Second
			if quick {
				dur = 250 * time.Millisecond
			}
			fg = fio.Run(clk, tgt, []fio.Job{{Pattern: fio.RandRead, BlockSectors: 16, QueueDepth: 64,
				Duration: dur}}, fio.Options{}).Throughput
			if s != nil {
				s.Stop()
				scanned = s.BytesScanned()
			}
		})
		t.row(m.label, f1(fg), f1(float64(scanned)/(1<<20)))
	}
	fmt.Fprintln(w, "\nexpect: fg throughput degrades monotonically with scrub rate and is bounded at each limit.")
	return nil
}

// runScrubCoverage injects the same seeded set of single-sector rot into
// a RAIZN array and an mdraid array, runs one repair scrub on each, and
// reports what each stack detected, repaired, and what a full readback
// finds afterwards. RAIZN's stripe-unit checksums attribute the rot and
// repair it; mdraid detects the parity mismatch but can only rewrite
// parity to match the (rotted) data.
func runScrubCoverage(w io.Writer, quick bool) error {
	// Coverage is scale-independent; run it at the small scale.
	sc := scaleFor(true)
	k := 12
	if quick {
		k = 6
	}
	const seed = 42

	fmt.Fprintf(w, "\n-- rot coverage: %d seeded single-sector corruptions, one repair scrub --\n", k)
	t := newTable(w, "stack", "injected", "detected", "repaired", "bad sectors after")

	// RAIZN.
	{
		clk := vclock.New()
		var detected, repaired, bad int64
		clk.Run(func() {
			v, devs, err := newRaizn(clk, sc, false, 16)
			if err != nil {
				panic(err)
			}
			fillPattern(func(lba int64, d []byte) error { return v.Write(lba, d, 0) },
				v.SectorSize(), v.NumSectors())
			if err := v.Flush(); err != nil {
				panic(err)
			}

			rng := rand.New(rand.NewSource(seed))
			n := len(devs)
			physZone := znsConfig(sc, false).ZoneSize
			su := int64(16)
			seen := map[[2]int64]bool{}
			for i := 0; i < k; i++ {
				var z, s int64
				for {
					z = int64(rng.Intn(v.NumZones()))
					s = rng.Int63n(v.StripesPerZone())
					if !seen[[2]int64{z, s}] {
						seen[[2]int64{z, s}] = true
						break
					}
				}
				u := rng.Intn(n - 1)
				intra := rng.Int63n(su)
				pd := n - 1 - int((s+z)%int64(n))
				dev := (pd + 1 + u) % n
				if err := devs[dev].CorruptSector(z*physZone + s*su + intra); err != nil {
					panic(err)
				}
			}

			sb := scrub.New(scrub.Config{Clock: clk, Target: scrub.RaiznTarget{V: v}, Repair: true})
			sb.RegisterMetrics(runRegistry)
			stats, err := sb.RunPass()
			if err != nil {
				panic(err)
			}
			detected = stats.Mismatches
			repaired = stats.RepairedData + stats.RepairedParity
			bad = countBadSectors(v.Read, v.SectorSize(), v.NumSectors())
		})
		t.row("raizn", fmt.Sprint(k), fmt.Sprint(detected), fmt.Sprint(repaired), fmt.Sprint(bad))
	}

	// mdraid.
	{
		clk := vclock.New()
		var detected, repaired, bad int64
		clk.Run(func() {
			v, devs, err := newMdraid(clk, sc, false, 16)
			if err != nil {
				panic(err)
			}
			fillPattern(func(lba int64, d []byte) error { return v.Write(lba, d, 0) },
				v.SectorSize(), v.NumSectors())
			if err := v.Flush(); err != nil {
				panic(err)
			}

			rng := rand.New(rand.NewSource(seed))
			n := len(devs)
			su := int64(16)
			seen := map[int64]bool{}
			for i := 0; i < k; i++ {
				var s int64
				for {
					s = rng.Int63n(v.NumStripes())
					if !seen[s] {
						seen[s] = true
						break
					}
				}
				u := rng.Intn(n - 1)
				intra := rng.Int63n(su)
				pd := n - 1 - int(s%int64(n))
				dev := (pd + 1 + u) % n
				if err := devs[dev].CorruptSector(s*su + intra); err != nil {
					panic(err)
				}
			}

			stats, err := v.Check(true)
			if err != nil {
				panic(err)
			}
			detected = stats.Mismatches
			// Parity rewrites do not restore rotted data.
			repaired = stats.ReadErrorsRepaired
			bad = countBadSectors(v.Read, v.SectorSize(), v.NumSectors())
		})
		t.row("mdraid", fmt.Sprint(k), fmt.Sprint(detected), fmt.Sprint(repaired), fmt.Sprint(bad))
	}

	fmt.Fprintln(w, "\nexpect: raizn repairs every injected corruption (0 bad sectors after);")
	fmt.Fprintln(w, "mdraid detects the mismatches but cannot attribute them, leaving the data bad.")
	return nil
}

// scrubPattern fills buf with the deterministic per-sector pattern for
// sectors starting at lba.
func scrubPattern(lba int64, ss int, buf []byte) {
	n := len(buf) / ss
	for i := 0; i < n; i++ {
		cur := lba + int64(i)
		for j := 0; j < ss; j++ {
			buf[i*ss+j] = byte(cur) ^ byte(j) ^ byte(cur>>8)
		}
	}
}

// fillPattern writes the pattern over the whole volume, one 64-sector
// chunk at a time (a full stripe at the 16-sector stripe unit).
func fillPattern(write func(lba int64, data []byte) error, ss int, numSectors int64) {
	const chunk = 64
	buf := make([]byte, chunk*ss)
	for lba := int64(0); lba < numSectors; lba += chunk {
		n := int64(chunk)
		if lba+n > numSectors {
			n = numSectors - lba
		}
		scrubPattern(lba, ss, buf[:n*int64(ss)])
		if err := write(lba, buf[:n*int64(ss)]); err != nil {
			panic(err)
		}
	}
}

// countBadSectors reads the whole volume back and counts sectors that no
// longer match the pattern.
func countBadSectors(read func(lba int64, buf []byte) error, ss int, numSectors int64) int64 {
	const chunk = 64
	buf := make([]byte, chunk*ss)
	want := make([]byte, chunk*ss)
	var bad int64
	for lba := int64(0); lba < numSectors; lba += chunk {
		n := int64(chunk)
		if lba+n > numSectors {
			n = numSectors - lba
		}
		if err := read(lba, buf[:n*int64(ss)]); err != nil {
			panic(err)
		}
		scrubPattern(lba, ss, want[:n*int64(ss)])
		for i := int64(0); i < n; i++ {
			if !bytes.Equal(buf[i*int64(ss):(i+1)*int64(ss)], want[i*int64(ss):(i+1)*int64(ss)]) {
				bad++
			}
		}
	}
	return bad
}
