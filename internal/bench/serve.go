package bench

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"time"

	"raizn/internal/raizn"
	"raizn/internal/stats"
	"raizn/internal/vclock"
	"raizn/internal/volmgr"
	"raizn/internal/zns"
)

func init() {
	register(Experiment{
		Name:  "serve",
		Title: "Multi-tenant serving: fairness, weighted shares, open-loop tail latency",
		Run:   runServe,
	})
}

// serveScale sizes the serving workload. The full run matches the PR's
// acceptance bar: >= 64 tenants and >= 1000 concurrent client
// goroutines sharing four RAIZN arrays behind one volume manager.
type serveScale struct {
	arrays  int // hosted RAIZN arrays
	tenants int
	clients int   // client goroutines per tenant (fairness phase)
	chunk   int64 // sectors per closed-loop write
}

func serveScaleFor(quick bool) serveScale {
	if quick {
		return serveScale{arrays: 4, tenants: 16, clients: 8, chunk: 16}
	}
	return serveScale{arrays: 4, tenants: 64, clients: 16, chunk: 16}
}

// runServe drives the volmgr front end through four phases, each on a
// fresh volume over the same hosted arrays:
//
//  1. fairness: equal-weight tenants, closed-loop saturation; Jain's
//     index over a steady-state window must be ~1.
//  2. weighted: half the tenants at weight 2; the per-tenant service
//     ratio over a steady-state window must be ~2:1.
//  3. openloop: Poisson arrivals with Zipf-distributed sizes at ~1.6x
//     the measured capacity; admission control sheds the excess while
//     the survivors' tail latency stays bounded.
//  4. overhead: one tenant, one client, engine vs direct array writes.
//
// Everything runs on one virtual clock with seeded RNGs, so the run is
// reproducible end to end.
func runServe(w io.Writer, quick bool) error {
	sv := serveScaleFor(quick)
	sc := scaleFor(quick)

	// One zone stays open per tenant shard while the shard is hot, so
	// the device model must budget open zones for the tenant population
	// — a deployment choice, exactly like sizing the arrays themselves.
	// Phases finish their zones on teardown, so the budget covers one
	// phase's concurrent writers, not the whole run.
	dcfg := znsConfig(sc, true)
	perArray := (sv.tenants + sv.arrays - 1) / sv.arrays
	if need := perArray + 5; dcfg.MaxOpenZones < need {
		dcfg.MaxOpenZones = need
	}
	if need := dcfg.MaxOpenZones + 8; dcfg.MaxActiveZones < need {
		dcfg.MaxActiveZones = need
	}

	clk := vclock.New()
	var (
		fair           phaseResult
		wtd            phaseResult
		open           phaseResult
		ratio          float64
		breach         int
		engMiB, dirMiB float64
	)
	var runErr error
	clk.Run(func() {
		m := volmgr.NewManager(clk, volmgr.Config{Registry: runRegistry})
		for a := 0; a < sv.arrays; a++ {
			devs := make([]*zns.Device, sc.numDevices)
			for i := range devs {
				devs[i] = zns.NewDevice(clk, dcfg)
				devs[i].RegisterMetrics(runRegistry, fmt.Sprintf("zns_a%d_dev%d", a, i))
			}
			rcfg := raizn.DefaultConfig()
			rcfg.Metrics = runRegistry
			rcfg.MetricsLabel = fmt.Sprintf("a%d", a)
			vol, err := raizn.Create(clk, devs, rcfg)
			if err != nil {
				runErr = err
				return
			}
			if _, err := m.AddArray(rcfg.MetricsLabel, vol); err != nil {
				runErr = err
				return
			}
		}

		fair = runFairPhase(clk, m, sv, "fair", nil)
		heavy := func(i int) int {
			if i < sv.tenants/2 {
				return 2
			}
			return 1
		}
		wtd = runFairPhase(clk, m, sv, "wtd", heavy)
		ratio = classRatio(wtd, sv.tenants/2)
		var alarm int
		open, alarm = runOpenLoopPhase(clk, m, sv, fair)
		breach = alarm
		engMiB, dirMiB = runOverheadPhase(clk, m, sv, sc, dcfg)
		if err := m.Close(); err != nil {
			runErr = err
		}
	})
	if runErr != nil {
		return runErr
	}
	if n := errored(fair, wtd, open); n > 0 {
		return fmt.Errorf("serve: %d requests errored (the workload model must not error)", n)
	}

	fmt.Fprintf(w, "\n%d tenants, %d client goroutines, %d arrays x %d devices\n",
		sv.tenants, sv.tenants*sv.clients, sv.arrays, sc.numDevices)

	fmt.Fprintf(w, "\nphase 1 — equal weights, closed loop (%d clients/tenant):\n", sv.clients)
	printTenantTable(w, fair, sv.tenants)
	fmt.Fprintf(w, "steady window %.2f..%.2f ms: aggregate %.1f MiB/s, Jain %.4f (1.0 = perfectly fair)\n",
		ms(fair.t1), ms(fair.t2), fair.aggMiB, fair.jain)

	fmt.Fprintf(w, "\nphase 2 — weights 2:1 (tenants 0..%d at weight 2):\n", sv.tenants/2-1)
	printClassTable(w, wtd, sv.tenants/2)
	fmt.Fprintf(w, "heavy/light service ratio %.2f (target 2.00, error %.1f%%)\n",
		ratio, math.Abs(ratio/2-1)*100)

	fmt.Fprintf(w, "\nphase 3 — open loop, Poisson arrivals, Zipf sizes, ~1.6x capacity:\n")
	printTenantTable(w, open, sv.tenants)
	fmt.Fprintf(w, "aggregate %.1f MiB/s delivered, %.1f%% of requests shed, Jain %.4f, SLO breaches %d\n",
		open.aggMiB, open.shedPct, open.jain, breach)

	fmt.Fprintf(w, "\nphase 4 — single-tenant engine overhead:\n")
	fmt.Fprintf(w, "through engine %.1f MiB/s, direct array %.1f MiB/s, overhead %.1f%% (negative = engine coalescing wins)\n",
		engMiB, dirMiB, (1-engMiB/dirMiB)*100)

	if quick {
		fmt.Fprintf(w, "\nquick run: BENCH_pr7.json not written\n")
		return nil
	}
	rep := &Report{Schema: SchemaV1, Experiment: "serve"}
	rep.Cells = []Cell{
		{Name: fmt.Sprintf("fairness/n=%d", sv.tenants), Metrics: map[string]float64{
			"jain":      fair.jain,
			"agg_mib_s": fair.aggMiB,
			"p50_us":    fair.p50us,
			"p99_us":    fair.p99us,
			"p999_us":   fair.p999us,
		}},
		{Name: "weighted/2to1", Metrics: map[string]float64{
			"ratio_x":       ratio,
			"ratio_err_pct": math.Abs(ratio/2-1) * 100,
			"agg_mib_s":     wtd.aggMiB,
		}},
		{Name: "openloop/zipf-poisson", Metrics: map[string]float64{
			"agg_mib_s":    open.aggMiB,
			"shed_pct":     open.shedPct,
			"jain":         open.jain,
			"p50_us":       open.p50us,
			"p99_us":       open.p99us,
			"p999_us":      open.p999us,
			"slo_breaches": float64(breach),
		}},
		{Name: "overhead/single-tenant", Metrics: map[string]float64{
			"engine_mib_s": engMiB,
			"direct_mib_s": dirMiB,
			"overhead_pct": (1 - engMiB/dirMiB) * 100,
		}},
	}
	if err := rep.WriteFile("BENCH_pr7.json"); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote BENCH_pr7.json\n")
	return nil
}

// phaseResult carries one phase's steady-state window measurements.
type phaseResult struct {
	stats                []volmgr.TenantStats // final snapshot (for percentiles, shed)
	winB                 []int64              // per-tenant bytes completed inside the window
	t1, t2               time.Duration        // window bounds (virtual)
	aggMiB               float64
	jain                 float64
	p50us, p99us, p999us float64
	shedPct              float64
}

// finish derives the aggregates from the window and final snapshot.
func (p *phaseResult) finish() {
	xs := make([]float64, len(p.winB))
	var winTotal int64
	for i, b := range p.winB {
		xs[i] = float64(b)
		winTotal += b
	}
	p.jain = volmgr.JainIndex(xs)
	p.aggMiB = stats.MiBps(winTotal, p.t2-p.t1)
	all := stats.NewHistogram()
	var acc, shed int64
	for _, t := range p.stats {
		acc += t.Accepted
		shed += t.Shed
		// Merge per-tenant distributions through a sampled re-record:
		// 32 quantile points per tenant, each replayed in proportion to
		// the tenant's sample count. Exact merge needs bucket access;
		// this keeps the aggregate honest without widening the stats API.
		if n := int64(t.Latency.Count()); n > 0 {
			rep := n / 32
			if rep < 1 {
				rep = 1
			}
			for k := 0; k < 32; k++ {
				q := (float64(k) + 0.5) / 32 * 100
				lat := t.Latency.Percentile(q)
				for r := int64(0); r < rep; r++ {
					all.Record(lat)
				}
			}
		}
	}
	p.p50us = us(all.Percentile(50))
	p.p99us = us(all.Percentile(99))
	p.p999us = us(all.Percentile(99.9))
	if acc+shed > 0 {
		p.shedPct = float64(shed) / float64(acc+shed) * 100
	}
}

// tenantAlloc hands out the next sequential chunk of one tenant's zone.
// Allocation and submission happen under the same lock so the engine's
// per-tenant FIFO sees LBAs in zone order — the volume keeps zoned
// sequential-write semantics.
type tenantAlloc struct {
	mu    sync.Mutex
	base  int64
	next  int64
	limit int64
}

// runFairPhase runs one closed-loop phase: every tenant's clients write
// the tenant's zone up to a quota, the monitor snapshots per-tenant
// completed bytes at 25% and 75% of the reference class's total quota,
// and the delta between snapshots is the steady-state measurement
// (start-up transients and tail drain excluded). weight nil means equal
// weights; otherwise weight(i) configures tenant i.
func runFairPhase(clk *vclock.Clock, m *volmgr.Manager, sv serveScale, name string, weight func(int) int) phaseResult {
	tcs := make([]volmgr.TenantConfig, sv.tenants)
	for i := range tcs {
		tcs[i] = volmgr.TenantConfig{ID: fmt.Sprintf("t%02d", i)}
		if weight != nil {
			tcs[i].Weight = weight(i)
		}
	}
	v, err := m.CreateVolume(name, volmgr.VolumeSpec{
		Zones: sv.tenants,
		Engine: volmgr.EngineConfig{
			MaxInflight:    16,
			BatchSize:      8,
			QuantumSectors: sv.chunk,
		},
		Tenants: tcs,
	})
	if err != nil {
		panic(err)
	}
	zs := v.ZoneSectors()
	ss := int64(v.SectorSize())
	quota := zs / sv.chunk * sv.chunk
	if weight == nil {
		quota = zs / sv.chunk * 3 / 4 * sv.chunk // leave headroom: nobody finishes early
	}
	buf := make([]byte, sv.chunk*ss)

	allocs := make([]*tenantAlloc, sv.tenants)
	for i := range allocs {
		allocs[i] = &tenantAlloc{base: int64(i) * zs, limit: quota}
	}

	clients := sv.clients
	if weight != nil {
		clients = 4 // the weighted phase needs backlog, not client count
	}
	wg := clk.NewWaitGroup()
	wg.Add(sv.tenants * clients)
	for i := 0; i < sv.tenants; i++ {
		id, a := tcs[i].ID, allocs[i]
		for c := 0; c < clients; c++ {
			clk.Go(func() {
				defer wg.Done()
				for {
					a.mu.Lock()
					if a.next+sv.chunk > a.limit {
						a.mu.Unlock()
						return
					}
					fut, err := v.SubmitWrite(id, a.base+a.next, buf, 0)
					if err == nil {
						a.next += sv.chunk
					}
					a.mu.Unlock()
					if errors.Is(err, volmgr.ErrThrottled) {
						clk.Sleep(20 * time.Microsecond)
						continue
					}
					if err != nil {
						panic(err)
					}
					if err := fut.Wait(); err != nil {
						panic(err)
					}
				}
			})
		}
	}

	// The monitor: snapshot the reference class (the heavy tenants in a
	// weighted phase, everyone otherwise) at 25% and 75% of its quota.
	refTotal := int64(0)
	isRef := func(i int) bool { return weight == nil || weight(i) > 1 }
	for i := 0; i < sv.tenants; i++ {
		if isRef(i) {
			refTotal += quota * ss
		}
	}
	var res phaseResult
	var snap1, snap2 []volmgr.TenantStats
	phaseDone := false
	var monMu sync.Mutex
	monWG := clk.NewWaitGroup()
	monWG.Add(1)
	clk.Go(func() {
		defer monWG.Done()
		for {
			clk.Sleep(500 * time.Microsecond)
			monMu.Lock()
			done := phaseDone
			monMu.Unlock()
			st := v.TenantStats()
			var refB int64
			for i, t := range st {
				if isRef(i) {
					refB += t.CompletedBytes
				}
			}
			if snap1 == nil && refB*4 >= refTotal {
				snap1, res.t1 = st, clk.Now()
			}
			if snap1 != nil && snap2 == nil && (refB*4 >= refTotal*3 || done) {
				snap2, res.t2 = st, clk.Now()
			}
			if done {
				return
			}
		}
	})
	wg.Wait()
	monMu.Lock()
	phaseDone = true
	monMu.Unlock()
	monWG.Wait() // also orders the monitor's snap writes before the reads below

	if err := v.Close(); err != nil {
		panic(err)
	}
	finishZones(v, sv.tenants)
	res.stats = v.TenantStats()
	if snap1 == nil {
		snap1, res.t1 = res.stats, clk.Now()
	}
	if snap2 == nil {
		snap2, res.t2 = res.stats, clk.Now()
	}
	res.winB = make([]int64, sv.tenants)
	for i := range res.winB {
		res.winB[i] = snap2[i].CompletedBytes - snap1[i].CompletedBytes
	}
	res.finish()
	return res
}

// classRatio is the weighted phase's per-tenant service ratio: mean
// window bytes of tenants [0, nHeavy) over mean window bytes of the
// rest.
func classRatio(p phaseResult, nHeavy int) float64 {
	var hb, lb int64
	for i, b := range p.winB {
		if i < nHeavy {
			hb += b
		} else {
			lb += b
		}
	}
	nLight := len(p.winB) - nHeavy
	if lb == 0 || nLight == 0 || nHeavy == 0 {
		return 0
	}
	return (float64(hb) / float64(nHeavy)) / (float64(lb) / float64(nLight))
}

// zipfSizes are the open-loop request sizes in sectors (16 KiB..256 KiB
// at 4 KiB sectors); the Zipf skew makes small requests dominate counts
// while large ones dominate bytes — the heavy-tailed mix the paper's
// serving scenario assumes.
var zipfSizes = []int64{4, 8, 16, 32, 64}

const zipfS, zipfV = 1.3, 1.0

// zipfMeanSectors is the analytic mean of the mapped size distribution,
// used to convert a byte-rate target into a Poisson arrival rate.
func zipfMeanSectors() float64 {
	var z, mean float64
	for k := range zipfSizes {
		z += math.Pow(zipfV+float64(k), -zipfS)
	}
	for k, s := range zipfSizes {
		mean += math.Pow(zipfV+float64(k), -zipfS) / z * float64(s)
	}
	return mean
}

// runOpenLoopPhase offers ~1.6x the fairness phase's measured capacity
// as open-loop traffic: per tenant, exponential inter-arrival gaps and
// Zipf sizes from a seeded RNG. Arrivals that catch a full queue are
// shed by admission control and counted, not retried — open-loop
// clients don't wait. Returns the phase result and the SLO alarm's
// breach count.
func runOpenLoopPhase(clk *vclock.Clock, m *volmgr.Manager, sv serveScale, fair phaseResult) (phaseResult, int) {
	tcs := make([]volmgr.TenantConfig, sv.tenants)
	for i := range tcs {
		tcs[i] = volmgr.TenantConfig{ID: fmt.Sprintf("t%02d", i)}
	}
	v, err := m.CreateVolume("open", volmgr.VolumeSpec{
		Zones: sv.tenants,
		Engine: volmgr.EngineConfig{
			QueueDepth:     16, // small queues: overload must shed, not buffer
			MaxInflight:    32,
			BatchSize:      8,
			QuantumSectors: sv.chunk,
		},
		Tenants: tcs,
	})
	if err != nil {
		panic(err)
	}
	zs := v.ZoneSectors()
	ss := int64(v.SectorSize())

	// Offered load: 1.6x the closed-loop capacity, split evenly.
	capSectors := fair.aggMiB * (1 << 20) / float64(ss) // sectors/s
	if capSectors <= 0 {
		capSectors = 1e5
	}
	perTenant := capSectors * 1.6 / float64(sv.tenants)
	meanGap := time.Duration(zipfMeanSectors() / perTenant * float64(time.Second))
	buf := make([]byte, zipfSizes[len(zipfSizes)-1]*ss)

	start := clk.Now()
	deadline := start + 200*time.Millisecond // backstop; the zone quota ends the phase first
	wg := clk.NewWaitGroup()
	wg.Add(sv.tenants)
	for i := 0; i < sv.tenants; i++ {
		i := i
		clk.Go(func() {
			defer wg.Done()
			id := tcs[i].ID
			base := int64(i) * zs
			rng := rand.New(rand.NewSource(9000 + int64(i)))
			zipf := rand.NewZipf(rng, zipfS, zipfV, uint64(len(zipfSizes)-1))
			next := int64(0)
			for clk.Now() < deadline {
				clk.Sleep(time.Duration(rng.ExpFloat64() * float64(meanGap)))
				size := zipfSizes[zipf.Uint64()]
				if next+size > zs {
					return // zone exhausted; this tenant's run is over
				}
				_, err := v.SubmitWrite(id, base+next, buf[:size*ss], 0)
				if errors.Is(err, volmgr.ErrThrottled) {
					continue // shed: the LBA is not consumed, order holds
				}
				if err != nil {
					panic(err)
				}
				next += size
			}
		})
	}
	wg.Wait()
	t2 := clk.Now()
	if err := v.Close(); err != nil { // drains everything accepted
		panic(err)
	}
	finishZones(v, sv.tenants)

	var res phaseResult
	res.stats = v.TenantStats()
	res.t1, res.t2 = start, t2
	res.winB = make([]int64, sv.tenants)
	for i, t := range res.stats {
		res.winB[i] = t.CompletedBytes
	}
	res.finish()
	return res, len(v.Alarm().Check())
}

// runOverheadPhase writes one full zone through the engine (one tenant,
// one client, window of 8) and the same pattern directly against a
// fresh RAIZN array, and returns both throughputs in MiB/s.
func runOverheadPhase(clk *vclock.Clock, m *volmgr.Manager, sv serveScale, sc scale, dcfg zns.Config) (engMiB, dirMiB float64) {
	v, err := m.CreateVolume("solo", volmgr.VolumeSpec{
		Zones:   1,
		Engine:  volmgr.EngineConfig{MaxInflight: 16, BatchSize: 8, QuantumSectors: sv.chunk},
		Tenants: []volmgr.TenantConfig{{ID: "solo"}},
	})
	if err != nil {
		panic(err)
	}
	zs := v.ZoneSectors()
	ss := int64(v.SectorSize())
	buf := make([]byte, sv.chunk*ss)

	window := func(submit func(lba int64) *vclock.Future) time.Duration {
		t0 := clk.Now()
		var futs []*vclock.Future
		for off := int64(0); off+sv.chunk <= zs; off += sv.chunk {
			if len(futs) == 8 {
				if err := futs[0].Wait(); err != nil {
					panic(err)
				}
				futs = futs[1:]
			}
			futs = append(futs, submit(off))
		}
		for _, f := range futs {
			if err := f.Wait(); err != nil {
				panic(err)
			}
		}
		return clk.Now() - t0
	}

	engDur := window(func(off int64) *vclock.Future {
		fut, err := v.SubmitWrite("solo", off, buf, 0)
		if err != nil {
			panic(err)
		}
		return fut
	})
	if err := v.Close(); err != nil {
		panic(err)
	}

	// Direct baseline: the same sequential pattern against a standalone
	// array of identical geometry, no engine in the path.
	devs := make([]*zns.Device, sc.numDevices)
	for i := range devs {
		devs[i] = zns.NewDevice(clk, dcfg)
	}
	rcfg := raizn.DefaultConfig()
	rcfg.Metrics = runRegistry
	rcfg.MetricsLabel = "direct"
	dv, err := raizn.Create(clk, devs, rcfg)
	if err != nil {
		panic(err)
	}
	dirDur := window(func(off int64) *vclock.Future {
		return dv.SubmitWrite(off, buf, 0)
	})

	bytes := zs / sv.chunk * sv.chunk * ss
	return stats.MiBps(bytes, engDur), stats.MiBps(bytes, dirDur)
}

// finishZones seals every zone a phase wrote, returning the arrays'
// open-zone slots before the next phase claims its own.
func finishZones(v *volmgr.Volume, zones int) {
	for z := 0; z < zones; z++ {
		if err := v.FinishZone(z); err != nil {
			panic(err)
		}
	}
}

// errored sums the tenants' errored-request counters.
func errored(ps ...phaseResult) int64 {
	var n int64
	for _, p := range ps {
		for _, t := range p.stats {
			n += t.Errored
		}
	}
	return n
}

// printTenantTable renders a sampled per-tenant table: every tenant on
// quick scales, every 8th (plus the last) on full scales.
func printTenantTable(w io.Writer, p phaseResult, tenants int) {
	t := newTable(w, "tenant", "weight", "win MiB/s", "p50(us)", "p99(us)", "p99.9(us)", "shed%")
	step := 1
	if tenants > 16 {
		step = 8
	}
	dur := p.t2 - p.t1
	for i := 0; i < tenants; i += step {
		t.row(tenantRow(p, i, dur)...)
	}
	if (tenants-1)%step != 0 {
		t.row(tenantRow(p, tenants-1, dur)...)
	}
}

// printClassTable renders the weighted phase as two aggregate rows.
func printClassTable(w io.Writer, p phaseResult, nHeavy int) {
	t := newTable(w, "class", "tenants", "weight", "win MiB/s", "MiB/s each")
	dur := p.t2 - p.t1
	var hb, lb int64
	for i, b := range p.winB {
		if i < nHeavy {
			hb += b
		} else {
			lb += b
		}
	}
	nLight := len(p.winB) - nHeavy
	t.row("heavy", fmt.Sprintf("%d", nHeavy), "2", f1(stats.MiBps(hb, dur)),
		f2(stats.MiBps(hb, dur)/float64(nHeavy)))
	t.row("light", fmt.Sprintf("%d", nLight), "1", f1(stats.MiBps(lb, dur)),
		f2(stats.MiBps(lb, dur)/float64(nLight)))
}

func tenantRow(p phaseResult, i int, dur time.Duration) []string {
	st := p.stats[i]
	shed := 0.0
	if st.Accepted+st.Shed > 0 {
		shed = float64(st.Shed) / float64(st.Accepted+st.Shed) * 100
	}
	return []string{
		st.ID,
		fmt.Sprintf("%d", st.Weight),
		f1(stats.MiBps(p.winB[i], dur)),
		f1(us(st.Latency.Percentile(50))),
		f1(us(st.Latency.Percentile(99))),
		f1(us(st.Latency.Percentile(99.9))),
		f1(shed),
	}
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
