package bench

import (
	"fmt"
	"io"

	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

func init() {
	register(Experiment{
		Name:  "table1",
		Title: "Table 1: location and size of RAIZN metadata (5 devices, 64 KiB SU, 1077 MiB zones)",
		Run:   runTable1,
	})
}

// runTable1 instantiates a volume with the paper's exact geometry (data
// payloads discarded, so the multi-terabyte address space costs nothing)
// and prints the metadata footprint beside the paper's figures.
func runTable1(w io.Writer, quick bool) error {
	cfg := zns.DefaultConfig()
	cfg.DiscardData = true
	cfg.ZoneCap = 1077 * 256 // 1077 MiB in 4 KiB sectors
	cfg.ZoneSize = 2048 * 256
	cfg.NumZones = 16
	if !quick {
		cfg.NumZones = 64
	}

	var fp raizn.MetadataFootprint
	clk := vclock.New()
	clk.Run(func() {
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(clk, cfg)
		}
		v, err := raizn.Create(clk, devs, raizn.DefaultConfig())
		if err != nil {
			panic(err)
		}
		fp = v.Footprint()
	})

	kb := func(b int64) string {
		if b%1024 == 0 {
			return fmt.Sprintf("%d KiB", b/1024)
		}
		return fmt.Sprintf("%d B", b)
	}
	t := newTable(w, "metadata type", "persistent location", "storage per update", "memory footprint")
	t.row("remapped stripe unit", "affected device only",
		fmt.Sprintf("%s (header) + %s (unit)", kb(int64(fp.HeaderBytes)), kb(fp.StripeUnitBytes)),
		fmt.Sprintf("%s + %s cached", kb(int64(fp.HeaderBytes)), kb(fp.StripeUnitBytes)))
	t.row("zone reset log", "2 devices (rotated)", kb(fp.ZoneResetLogStorage), "-")
	t.row("generation counters", "all devices", kb(fp.GenCounterStorage),
		fmt.Sprintf("%.2f B per logical zone", fp.GenCounterMemPerZone))
	t.row("partial parity", "device with parity",
		fmt.Sprintf("%s (header) + <=%s", kb(int64(fp.HeaderBytes)), kb(fp.StripeUnitBytes)), "-")
	t.row("superblock", "all devices", kb(fp.SuperblockStorage), kb(fp.SuperblockStorage))
	t.row("stripe buffers", "-", "-",
		fmt.Sprintf("%s x %d per open zone", kb(fp.StripeBufferBytes), fp.StripeBuffersPerZone))
	t.row("persistence bitmaps", "-", "-", fmt.Sprintf("%s per logical zone", kb(fp.PersistBitmapPerZone)))
	t.row("zone descriptors", "-", "-", fmt.Sprintf("%d B per zone per device + per logical zone", fp.ZoneDescriptorBytes))

	fmt.Fprintf(w, "\ngeometry: %d devices (%d data + 1 parity per stripe), stripe unit %s, physical zone %d MiB, logical zone %d MiB\n",
		fp.Devices, fp.DataDevices, kb(fp.StripeUnitBytes), fp.PhysZoneCapBytes>>20, fp.LogicalZoneBytes>>20)
	fmt.Fprintln(w, "paper: header 4 KiB, remapped unit 4+64 KiB, reset log 4 KiB (all devices), gen counters 8.05 B/zone,")
	fmt.Fprintln(w, "partial parity 4 KiB + <=64 KiB, superblock 4 KiB, stripe buffers 320 KiB x 8/open zone (incl. parity slot;")
	fmt.Fprintln(w, "this implementation buffers the D=4 data units: 256 KiB), persistence bitmap ~2 KiB/zone, descriptors 64 B.")
	return nil
}
