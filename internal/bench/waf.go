package bench

import (
	"fmt"
	"io"

	"raizn/internal/ppengine"
	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

func init() {
	register(Experiment{
		Name:  "waf",
		Title: "flash write amplification: logged vs zraid parity engines",
		Run:   runWAF,
	})
}

// runWAF is the parity-engine shootout: the same two workloads run once
// per engine on identical device arrays, and the table reports the flash
// write-amplification factor (NAND bytes programmed / user bytes
// written) next to the host WAF and the engine's own partial-parity
// accounting. The logged engine pays for every partial-parity image with
// a metadata-log append that programs flash; the zraid engine overwrites
// the image in place inside the ZRWA of its PP pool, so superseded
// images never reach NAND and only window slides and GC migrations
// program. ZRAID's claim shape: logged ~2.4x flash WAF on small-write
// workloads, log-structured PP ~1.6x.
func runWAF(w io.Writer, quick bool) error {
	sc := scaleFor(quick)

	type cellResult struct {
		workload, engine string
		userBytes        int64
		hostBytes        int64
		flashBytes       int64
		st               ppengine.Stats
	}
	var results []cellResult

	run := func(workload string, engine raizn.ParityEngine) cellResult {
		clk := vclock.New()
		var res cellResult
		res.workload = workload
		res.engine = engineName(engine)
		clk.Run(func() {
			v, devs, err := newWafVolume(clk, sc, engine)
			if err != nil {
				panic(err)
			}
			// Baseline after format: superblocks and initial checkpoints
			// are setup cost, not workload amplification.
			base := devBytes(devs)
			switch workload {
			case "fillseq":
				res.userBytes = wafFillseq(clk, v, sc)
			case "varmail":
				res.userBytes = wafVarmail(clk, v, sc)
			default:
				panic("unknown workload " + workload)
			}
			if err := v.Flush(); err != nil {
				panic(err)
			}
			end := devBytes(devs)
			res.hostBytes = end.host - base.host
			res.flashBytes = end.flash - base.flash
			res.st = v.PPEngineStats()
		})
		return res
	}

	for _, workload := range []string{"fillseq", "varmail"} {
		for _, engine := range []raizn.ParityEngine{raizn.EngineLogged, raizn.EngineZRAID} {
			fmt.Fprintf(w, "running %s/%s...\n", workload, engineName(engine))
			results = append(results, run(workload, engine))
		}
	}

	fmt.Fprintln(w, "\nflash WAF = NAND bytes programmed / user bytes; host WAF = host bytes written / user bytes")
	t := newTable(w, "workload", "engine", "flash_waf", "host_waf", "pp_volatile", "pp_permanent", "fallbacks", "gc_runs", "gc_migrated")
	for _, r := range results {
		t.row(r.workload, r.engine,
			f2(waf(r.flashBytes, r.userBytes)), f2(waf(r.hostBytes, r.userBytes)),
			fmt.Sprintf("%d", r.st.VolatileBytes), fmt.Sprintf("%d", r.st.PermanentBytes),
			fmt.Sprintf("%d", r.st.FallbackTotal),
			fmt.Sprintf("%d", r.st.GCRuns), fmt.Sprintf("%d", r.st.GCMigrated))
	}

	// Claim shape: on both workloads the log-structured engine's flash
	// WAF sits well below the logged engine's, because superseded partial
	// parity dies in the ZRWA instead of on NAND.
	fmt.Fprintln(w)
	ok := true
	for i := 0; i < len(results); i += 2 {
		lg, zr := results[i], results[i+1]
		lw := waf(lg.flashBytes, lg.userBytes)
		zw := waf(zr.flashBytes, zr.userBytes)
		gap := (1 - zw/lw) * 100
		pass := gap >= 25
		ok = ok && pass
		status := "ok"
		if !pass {
			status = "FAIL (<25%)"
		}
		fmt.Fprintf(w, "%s: zraid flash WAF %.2f vs logged %.2f -> %.0f%% lower [%s]\n",
			lg.workload, zw, lw, gap, status)
	}
	fmt.Fprintln(w, "claim (ZRAID): logged partial-parity logging ~2.4x flash WAF, log-structured PP ~1.6x on small-write workloads.")
	if !ok {
		return fmt.Errorf("waf: zraid flash WAF gap below the 25%% claim threshold")
	}

	if quick {
		fmt.Fprintf(w, "\nquick run: BENCH_pr9.json not written\n")
		return nil
	}
	rep := &Report{Schema: SchemaV1, Experiment: "waf"}
	for _, r := range results {
		rep.Cells = append(rep.Cells, Cell{
			Name: r.workload + "/" + r.engine,
			Metrics: map[string]float64{
				"flash_waf":          waf(r.flashBytes, r.userBytes),
				"host_waf":           waf(r.hostBytes, r.userBytes),
				"user_mib":           float64(r.userBytes) / (1 << 20),
				"pp_volatile_bytes":  float64(r.st.VolatileBytes),
				"pp_permanent_bytes": float64(r.st.PermanentBytes),
				"pp_fallback_total":  float64(r.st.FallbackTotal),
				"gc_count":           float64(r.st.GCRuns),
				"gc_migrated":        float64(r.st.GCMigrated),
			},
		})
	}
	if err := rep.WriteFile("BENCH_pr9.json"); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote BENCH_pr9.json\n")
	return nil
}

func engineName(e raizn.ParityEngine) string {
	if e == raizn.EngineZRAID {
		return "zraid"
	}
	return "logged"
}

func waf(amplified, user int64) float64 {
	if user == 0 {
		return 0
	}
	return float64(amplified) / float64(user)
}

type devCounters struct{ host, flash int64 }

func devBytes(devs []*zns.Device) devCounters {
	var c devCounters
	for _, d := range devs {
		hw, _, _, _ := d.Counters()
		c.host += hw
		c.flash += d.FlashProgramBytes()
	}
	return c
}

// newWafVolume builds a RAIZN array whose devices expose a ZRWA large
// enough for the zraid engine's PP slots (stride su+1 = 17 sectors,
// three slots in flight — tight enough that concurrent zones slide the
// window and exercise the PP-zone GC). The same device model serves the
// logged runs — the logged engine never touches the ZRWA, so the extra
// capability is inert there and the comparison stays apples-to-apples.
func newWafVolume(clk *vclock.Clock, sc scale, engine raizn.ParityEngine) (*raizn.Volume, []*zns.Device, error) {
	devs := make([]*zns.Device, sc.numDevices)
	for i := range devs {
		cfg := znsConfig(sc, true)
		cfg.ZRWASectors = 51
		devs[i] = zns.NewDevice(clk, cfg)
		devs[i].RegisterMetrics(runRegistry, fmt.Sprintf("zns_dev%d", i))
	}
	rcfg := raizn.DefaultConfig()
	rcfg.StripeUnitSectors = 16
	rcfg.ParityEngine = engine
	rcfg.Metrics = runRegistry
	v, err := raizn.Create(clk, devs, rcfg)
	return v, devs, err
}

// wafZones returns the zone count both engine configurations can serve:
// the zraid layout gives up PPZones extra zones per device, and both
// engines must write the same workload for the WAF numbers to compare.
func wafZones(sc scale) int {
	cfg := raizn.DefaultConfig()
	cfg.ParityEngine = raizn.EngineZRAID
	return sc.znsZones - cfg.ReservedZones()
}

// wafFillseq fills zones with sequential 8-sector writes — half a stripe
// unit per command, so every other command lands mid-stripe and logs
// partial parity. Returns the user bytes written.
func wafFillseq(clk *vclock.Clock, v *raizn.Volume, sc scale) int64 {
	const bs = 8
	zones := wafZones(sc)
	zs := v.ZoneSectors()
	buf := make([]byte, bs*v.SectorSize())
	for i := range buf {
		buf[i] = byte(i)
	}
	var user int64
	const window = 8
	var futs []*vclock.Future
	for z := 0; z < zones; z++ {
		base := int64(z) * zs
		for off := int64(0); off+bs <= zs; off += bs {
			if len(futs) == window {
				futs[0].Wait()
				futs = futs[1:]
			}
			futs = append(futs, v.SubmitWrite(base+off, buf, 0))
			user += int64(len(buf))
		}
		for _, f := range futs {
			f.Wait()
		}
		futs = futs[:0]
	}
	return user
}

// wafVarmail emulates a mail-server append pattern: nine concurrent
// writers, one zone each, issuing small appends (2–12 sectors) with
// periodic flushes, then finishing the zone at ~3/4 full. Stripes stay
// partial across many commands, so partial parity dominates the
// metadata traffic; concurrent zones keep several PP images live per
// parity device, which is what slides the zraid window and exercises
// its GC. Returns the user bytes written.
func wafVarmail(clk *vclock.Clock, v *raizn.Volume, sc scale) int64 {
	writers := wafZones(sc)
	if writers > 9 {
		writers = 9
	}
	sizes := []int64{2, 4, 2, 8, 4, 12, 2, 4, 8, 2}
	zs := v.ZoneSectors()
	target := zs * 3 / 4
	var user int64
	var mu = clk.NewWaitGroup()
	userCh := make(chan int64, writers)
	for wi := 0; wi < writers; wi++ {
		wi := wi
		mu.Add(1)
		clk.Go(func() {
			defer mu.Done()
			base := int64(wi) * zs
			off := int64(0)
			var written int64
			for i := 0; off < target; i++ {
				n := sizes[(i+wi)%len(sizes)]
				if off+n > target {
					n = target - off
				}
				buf := make([]byte, n*int64(v.SectorSize()))
				for j := range buf {
					buf[j] = byte(int(n) + j + wi)
				}
				if err := v.Write(base+off, buf, 0); err != nil {
					panic(err)
				}
				written += int64(len(buf))
				off += n
				if i%12 == 11 {
					if err := v.Flush(); err != nil {
						panic(err)
					}
				}
				if wi == 0 && i%24 == 23 {
					if err := v.Maintain(); err != nil {
						panic(err)
					}
				}
			}
			if err := v.FinishZone(wi); err != nil {
				panic(err)
			}
			userCh <- written
		})
	}
	mu.Wait()
	for i := 0; i < writers; i++ {
		user += <-userCh
	}
	if err := v.Maintain(); err != nil {
		panic(err)
	}
	return user
}
