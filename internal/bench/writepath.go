package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"raizn/internal/fio"
	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

func init() {
	register(Experiment{
		Name:  "writepath",
		Title: "PR3 write-path overhaul: sub-IO coalescing vs the legacy per-sub-IO path",
		Run:   runWritePath,
	})
}

// The write-path experiment quantifies the PR3 overhaul along both of
// its axes:
//
//   - Simulated device time: per-device sub-IO coalescing merges the
//     physically adjacent stripe units a multi-stripe write puts on each
//     device into one vectored command, so the per-command overhead
//     (WriteOpOverhead + completion latency) is paid once per merged run
//     instead of once per stripe unit. The gain is largest for small
//     stripe units, where a given block touches the most stripes.
//   - Host CPU: the three-phase plan/compute/submit pipeline computes
//     parity and CRCs outside the zone lock and recycles its write
//     state, parity images and scratch through pools, cutting ns/op and
//     allocs/op.
//
// Results go to the report writer and to BENCH_pr3.json in the current
// directory (committed at the repo root as the PR's benchmark baseline).

// wpSimResult is one simulated fio datapoint pair.
type wpSimResult struct {
	SU           int64   `json:"su_sectors"`
	BS           int64   `json:"bs_sectors"`
	Jobs         int     `json:"jobs"`
	LegacyMiBs   float64 `json:"legacy_mib_s"`
	CoalescedMiB float64 `json:"coalesced_mib_s"`
	GainPct      float64 `json:"gain_pct"`
	// GainNA marks a degenerate cell: both paths produced byte-identical
	// throughput and percentiles, so "0% gain" is not a measurement — the
	// parameter point never exercises the coalescer (e.g. su=16 with
	// bs<=64 sub-IOs that each touch one stripe unit per device).
	GainNA      bool    `json:"gain_na,omitempty"`
	LegacyP50us float64 `json:"legacy_p50_us"`
	CoalP50us   float64 `json:"coalesced_p50_us"`
	LegacyP99us float64 `json:"legacy_p99_us"`
	CoalP99us   float64 `json:"coalesced_p99_us"`
}

// degenerate reports whether the cell's two paths are indistinguishable:
// identical throughput and identical latency percentiles. Old files
// (BENCH_pr3.json predates GainNA) are detected by the same condition.
func (s *wpSimResult) degenerate() bool {
	return s.GainNA || (s.GainPct == 0 &&
		s.LegacyMiBs == s.CoalescedMiB &&
		s.LegacyP50us == s.CoalP50us && s.LegacyP99us == s.CoalP99us)
}

// wpHostResult is one host-side microbenchmark pair.
type wpHostResult struct {
	Name            string  `json:"name"`
	LegacyNsOp      int64   `json:"legacy_ns_op"`
	CoalescedNsOp   int64   `json:"coalesced_ns_op"`
	LegacyAllocs    int64   `json:"legacy_allocs_op"`
	CoalescedAllocs int64   `json:"coalesced_allocs_op"`
	SpeedupPct      float64 `json:"speedup_pct"`
	AllocsRedPct    float64 `json:"allocs_reduction_pct"`
}

type wpReport struct {
	Experiment string         `json:"experiment"`
	Quick      bool           `json:"quick"`
	Simulated  []wpSimResult  `json:"simulated"`
	Host       []wpHostResult `json:"host"`
}

// newRaiznWP builds a RAIZN array with the write path selected, wired
// into the run's metrics registry.
func newRaiznWP(clk *vclock.Clock, sc scale, su int64, legacy bool) (*raizn.Volume, error) {
	devs := make([]*zns.Device, sc.numDevices)
	for i := range devs {
		devs[i] = zns.NewDevice(clk, znsConfig(sc, true))
		devs[i].RegisterMetrics(runRegistry, fmt.Sprintf("zns_dev%d", i))
	}
	rcfg := raizn.DefaultConfig()
	rcfg.StripeUnitSectors = su
	rcfg.LegacyWritePath = legacy
	rcfg.Metrics = runRegistry
	return raizn.Create(clk, devs, rcfg)
}

// wpFioWrite runs a sequential-write pass over the whole volume (split
// across jobs concurrent regions) on a fresh array and returns the
// aggregate throughput and latency percentiles.
func wpFioWrite(sc scale, su, bs int64, jobs int, legacy bool) (mibs, p50us, p99us float64) {
	clk := vclock.New()
	clk.Run(func() {
		v, err := newRaiznWP(clk, sc, su, legacy)
		if err != nil {
			panic(err)
		}
		tgt := fio.RaiznTarget{V: v}
		size := tgt.NumSectors()
		per := size / int64(jobs)
		per = per / bs * bs
		var js []fio.Job
		for j := 0; j < jobs; j++ {
			js = append(js, fio.Job{Pattern: fio.SeqWrite, BlockSectors: bs, QueueDepth: 32,
				Offset: int64(j) * per, Size: per, Seed: int64(j)})
		}
		res := fio.Run(clk, tgt, js, fio.Options{})
		mibs = res.Throughput
		p50us = float64(res.Hist.Percentile(50)) / float64(time.Microsecond)
		p99us = float64(res.Hist.Percentile(99)) / float64(time.Microsecond)
	})
	return
}

// wpHostBench measures host-side cost (real ns/op, allocs/op) of
// sequential writes of nSectors through the chosen write path.
func wpHostBench(sc scale, su, nSectors int64, legacy bool) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		clk := vclock.New()
		clk.Run(func() {
			v, err := newRaiznWP(clk, sc, su, legacy)
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, nSectors*int64(v.SectorSize()))
			var lba int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if lba+nSectors > v.NumSectors() {
					b.StopTimer()
					for z := 0; z < v.NumZones(); z++ {
						if err := v.ResetZone(z); err != nil {
							b.Fatal(err)
						}
					}
					lba = 0
					b.StartTimer()
				}
				if err := v.Write(lba, buf, 0); err != nil {
					b.Fatal(err)
				}
				lba += nSectors
			}
		})
	})
}

func runWritePath(w io.Writer, quick bool) error {
	sc := scaleFor(quick)
	rep := wpReport{Experiment: "writepath", Quick: quick}

	sus := []int64{4, 16}
	bss := []int64{16, 64, 256}
	jobsList := []int{1, 4}
	if quick {
		sus = []int64{4}
		bss = []int64{64}
		jobsList = []int{1}
	}

	fmt.Fprintf(w, "\n-- simulated sequential write, coalesced vs legacy --\n")
	t := newTable(w, "su", "bs", "jobs", "legacy MiB/s", "coalesced MiB/s", "gain", "p50 µs (l/c)", "p99 µs (l/c)")
	for _, su := range sus {
		for _, bs := range bss {
			for _, jobs := range jobsList {
				lm, lp50, lp99 := wpFioWrite(sc, su, bs, jobs, true)
				cm, cp50, cp99 := wpFioWrite(sc, su, bs, jobs, false)
				gain := (cm - lm) / lm * 100
				res := wpSimResult{
					SU: su, BS: bs, Jobs: jobs,
					LegacyMiBs: lm, CoalescedMiB: cm, GainPct: gain,
					LegacyP50us: lp50, CoalP50us: cp50,
					LegacyP99us: lp99, CoalP99us: cp99,
				}
				gainCell := fmt.Sprintf("%+.1f%%", gain)
				if res.degenerate() {
					res.GainNA, res.GainPct = true, 0
					gainCell = "n/a"
				}
				rep.Simulated = append(rep.Simulated, res)
				t.row(kib(su), kib(bs), fmt.Sprintf("%d", jobs), f1(lm), f1(cm),
					gainCell,
					fmt.Sprintf("%.1f/%.1f", lp50, cp50),
					fmt.Sprintf("%.1f/%.1f", lp99, cp99))
			}
		}
	}

	fmt.Fprintf(w, "\n-- host cost per Write (real CPU), coalesced vs legacy --\n")
	th := newTable(w, "workload", "legacy ns/op", "coalesced ns/op", "speedup", "legacy allocs", "coalesced allocs", "allocs cut")
	hostCases := []struct {
		name  string
		su, n int64
	}{
		{"4K", 16, 1},
		{"4-stripe (su=16)", 16, 16 * int64(sc.numDevices-1) * 4},
	}
	if quick {
		hostCases = hostCases[1:]
	}
	for _, hc := range hostCases {
		lr := wpHostBench(sc, hc.su, hc.n, true)
		cr := wpHostBench(sc, hc.su, hc.n, false)
		speedup := float64(lr.NsPerOp()-cr.NsPerOp()) / float64(lr.NsPerOp()) * 100
		acut := float64(lr.AllocsPerOp()-cr.AllocsPerOp()) / float64(lr.AllocsPerOp()) * 100
		rep.Host = append(rep.Host, wpHostResult{
			Name:       hc.name,
			LegacyNsOp: lr.NsPerOp(), CoalescedNsOp: cr.NsPerOp(),
			LegacyAllocs: lr.AllocsPerOp(), CoalescedAllocs: cr.AllocsPerOp(),
			SpeedupPct: speedup, AllocsRedPct: acut,
		})
		th.row(hc.name,
			fmt.Sprintf("%d", lr.NsPerOp()), fmt.Sprintf("%d", cr.NsPerOp()),
			fmt.Sprintf("%+.1f%%", speedup),
			fmt.Sprintf("%d", lr.AllocsPerOp()), fmt.Sprintf("%d", cr.AllocsPerOp()),
			fmt.Sprintf("%+.1f%%", acut))
	}

	if quick {
		// Quick runs (and the package test smoke) must not overwrite the
		// committed full-scale baseline.
		fmt.Fprintf(w, "\nquick run: BENCH_pr3.json not written\n")
		return nil
	}
	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_pr3.json", append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote BENCH_pr3.json\n")
	return nil
}
