// Package blockdev simulates a conventional (block-interface) SSD with a
// page-mapped flash translation layer: erase blocks, overprovisioned
// capacity, and greedy garbage collection that consumes device bandwidth.
//
// This is the substrate under the mdraid baseline. Its purpose in the
// RAIZN reproduction is to make on-device garbage collection *emerge* from
// the flash model — when the host overwrites data after the free block
// pool is exhausted, the FTL must relocate valid pages, and host
// throughput collapses exactly as in Figure 10 of the paper.
package blockdev

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"raizn/internal/obs"
	"raizn/internal/vclock"
)

// Flag carries per-IO cache-control semantics (REQ_FUA / REQ_PREFLUSH).
type Flag uint8

const (
	// FUA persists the written data before completion.
	FUA Flag = 1 << iota
	// Preflush flushes the volatile cache before the write executes.
	Preflush
)

// Errors returned by device operations.
var (
	ErrDeviceFailed = errors.New("blockdev: device failed")
	ErrOutOfRange   = errors.New("blockdev: address out of range")
	ErrUnaligned    = errors.New("blockdev: IO not sector aligned")
	ErrPowerLoss    = errors.New("blockdev: IO lost to power failure")
	// ErrReadMedium is an unrecoverable (latent) media error on a read:
	// the sector is unreadable but the device is otherwise healthy.
	ErrReadMedium = errors.New("blockdev: unrecovered read error (latent sector)")
	// ErrNoData rejects payload-dependent fault injection on a device
	// configured with DiscardData.
	ErrNoData = errors.New("blockdev: device discards payload data")
)

// Config describes a simulated conventional SSD. A flash page holds one
// logical sector (4 KiB), the granularity at which the FTL maps.
type Config struct {
	SectorSize int   // bytes per sector / flash page
	NumSectors int64 // advertised logical capacity, in sectors

	PagesPerBlock int // flash pages per erase block
	// Overprovision is the fraction of extra physical capacity beyond
	// the logical capacity (0.07 = 7%, typical for consumer drives; the
	// paper's enterprise drives behave like a GC'd drive once spare
	// blocks are exhausted either way).
	Overprovision float64

	// GCLowWater triggers garbage collection when the free block count
	// drops to it; GCHighWater is the target to collect back up to.
	GCLowWater  int
	GCHighWater int

	WriteBandwidth  float64       // bytes/second
	ReadBandwidth   float64       // bytes/second
	WriteOpOverhead time.Duration // pipe occupancy per write op
	ReadOpOverhead  time.Duration // pipe occupancy per read op
	WriteLatency    time.Duration // post-pipe completion delay
	ReadLatency     time.Duration // post-pipe completion delay
	FlushLatency    time.Duration
	EraseLatency    time.Duration // per erase-block erase

	DiscardData bool // drop payloads; reads return zeroes

	// Fault-injection model (faults.go), mirroring the zns package:
	// FaultSeed seeds the dedicated fault RNG, ReadErrorRate is the
	// per-sector probability that a read grows a latent unreadable
	// sector, BitRotRate the per-sector probability of silent bit-rot
	// applied as data is written. Both default to 0.
	FaultSeed     int64
	ReadErrorRate float64
	BitRotRate    float64
}

// DefaultConfig returns a scaled-down model of the conventional SSDs in
// the paper's testbed: same hardware platform as the ZNS drives but with
// an FTL, ~2% higher write and ~4% higher read bandwidth (§6.1), and 7%
// overprovisioning. The default logical capacity matches the default ZNS
// device's writable capacity (64 zones x 4 MiB).
func DefaultConfig() Config {
	return Config{
		SectorSize:      4096,
		NumSectors:      64 * 1024, // 256 MiB
		PagesPerBlock:   256,       // 1 MiB erase blocks
		Overprovision:   0.11,      // spare area; exhausted spare triggers GC
		GCLowWater:      2,
		GCHighWater:     4,
		WriteBandwidth:  1073 * (1 << 20),
		ReadBandwidth:   3401 * (1 << 20),
		WriteOpOverhead: 2 * time.Microsecond,
		ReadOpOverhead:  1 * time.Microsecond,
		WriteLatency:    10 * time.Microsecond,
		ReadLatency:     60 * time.Microsecond,
		FlushLatency:    300 * time.Microsecond,
		EraseLatency:    3 * time.Millisecond,
	}
}

func (c *Config) validate() error {
	switch {
	case c.SectorSize <= 0 || c.NumSectors <= 0:
		return errors.New("blockdev: capacity must be positive")
	case c.PagesPerBlock <= 0:
		return errors.New("blockdev: PagesPerBlock must be positive")
	case c.NumSectors < 8*int64(c.PagesPerBlock):
		// Below ~8 erase blocks of logical space, the pages stranded in
		// the open host/GC blocks can exceed the spare area and wedge
		// the FTL; real drives have the same floor, just far away.
		return errors.New("blockdev: logical capacity must be at least 8 erase blocks")
	case c.Overprovision < 0:
		return errors.New("blockdev: negative overprovision")
	case c.WriteBandwidth <= 0 || c.ReadBandwidth <= 0:
		return errors.New("blockdev: bandwidths must be positive")
	case c.ReadErrorRate < 0 || c.ReadErrorRate > 1 || c.BitRotRate < 0 || c.BitRotRate > 1:
		return errors.New("blockdev: fault rates must be in [0, 1]")
	}
	if c.GCLowWater <= 0 {
		c.GCLowWater = 2
	}
	if c.GCHighWater <= c.GCLowWater {
		c.GCHighWater = c.GCLowWater + 2
	}
	return nil
}

const (
	unmapped = int64(-1)
)

type blockState uint8

const (
	blockFree blockState = iota
	blockOpen            // accepting programs
	blockFull
)

type eraseBlock struct {
	state    blockState
	nextPage int // next programmable page within the block
	valid    int // count of valid pages
}

// Device is a simulated conventional SSD. All exported methods are safe
// for concurrent use by simulated goroutines.
type Device struct {
	cfg       Config
	clk       *vclock.Clock
	numBlocks int

	mu     sync.Mutex
	l2p    []int64 // logical page -> physical page (or unmapped)
	p2l    []int64 // physical page -> logical page (or unmapped/invalid)
	blocks []eraseBlock
	free   []int // free block indices (LIFO)

	hostActive int // block accepting host writes, -1 if none
	gcActive   int // block accepting GC relocations, -1 if none

	data []byte // physical page payloads (nil when DiscardData)

	failed bool
	epoch  uint64

	writeBusy time.Duration
	readBusy  time.Duration

	slowFactor float64 // injected service-time multiplier; <=1 means none

	unflushed map[int64]struct{} // logical pages written since last flush

	// Fault injection (faults.go).
	faultRNG         *rand.Rand
	latentErrs       map[int64]bool // logical sectors with latent read errors
	injectedReadErrs int64
	injectedRot      int64
	readMediumErrs   int64

	// Lifetime counters.
	hostWriteBytes int64
	hostReadBytes  int64
	gcCopiedPages  int64
	gcEraseCount   int64
	flushCount     int64

	// Event journal (AttachJournal); block allocations and GC episodes
	// record into it under jslot. Nil until attached; Record is
	// nil-safe and free when disabled.
	jrn   *obs.Journal
	jslot int
}

// NewDevice creates a device with an empty (fully trimmed) FTL. It panics
// on invalid configuration.
func NewDevice(clk *vclock.Clock, cfg Config) *Device {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	logicalPages := cfg.NumSectors
	physPages := int64(float64(logicalPages) * (1 + cfg.Overprovision))
	numBlocks := int((physPages + int64(cfg.PagesPerBlock) - 1) / int64(cfg.PagesPerBlock))
	// The spare area must cover the GC high-water mark plus the two open
	// blocks (host + GC relocation), or a fully-utilized device can
	// strand its free pages in open blocks and wedge; small configs hit
	// this long before the percentage-based overprovision does.
	logicalBlocks := int((logicalPages + int64(cfg.PagesPerBlock) - 1) / int64(cfg.PagesPerBlock))
	if min := logicalBlocks + cfg.GCHighWater + 2; numBlocks < min {
		numBlocks = min
	}
	d := &Device{
		cfg:        cfg,
		clk:        clk,
		numBlocks:  numBlocks,
		l2p:        make([]int64, logicalPages),
		p2l:        make([]int64, int64(numBlocks)*int64(cfg.PagesPerBlock)),
		blocks:     make([]eraseBlock, numBlocks),
		hostActive: -1,
		gcActive:   -1,
		unflushed:  make(map[int64]struct{}),
	}
	for i := range d.l2p {
		d.l2p[i] = unmapped
	}
	for i := range d.p2l {
		d.p2l[i] = unmapped
	}
	for i := numBlocks - 1; i >= 0; i-- {
		d.free = append(d.free, i)
	}
	if !cfg.DiscardData {
		d.data = make([]byte, int64(numBlocks)*int64(cfg.PagesPerBlock)*int64(cfg.SectorSize))
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// NumSectors returns the logical capacity in sectors.
func (d *Device) NumSectors() int64 { return d.cfg.NumSectors }

// Counters returns lifetime counters: host bytes written/read, pages
// copied by GC, and erase operations.
func (d *Device) Counters() (hostWrite, hostRead, gcCopied, erases int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hostWriteBytes, d.hostReadBytes, d.gcCopiedPages, d.gcEraseCount
}

// WriteAmplification returns total flash programs / host programs so far,
// or 1 if the host has not written anything.
func (d *Device) WriteAmplification() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	hostPages := d.hostWriteBytes / int64(d.cfg.SectorSize)
	if hostPages == 0 {
		return 1
	}
	return float64(hostPages+d.gcCopiedPages) / float64(hostPages)
}

// FreeBlocks returns the current number of free erase blocks.
func (d *Device) FreeBlocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.free)
}

// Fail marks the device dead; all subsequent IO errors out.
func (d *Device) Fail() {
	d.mu.Lock()
	d.failed = true
	d.mu.Unlock()
}

// Failed reports whether the device has been failed.
func (d *Device) Failed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failed
}

func (d *Device) fail(err error) *vclock.Future { return d.clk.Completed(err) }

// failSpan ends the span with an immediate submission error and returns
// a pre-completed future carrying it.
func (d *Device) failSpan(sp *obs.Span, err error) *vclock.Future {
	sp.End(err)
	return d.fail(err)
}

// SetSlowdown injects a service-time multiplier on every subsequent
// command (see zns.Device.SetSlowdown). factor <= 1 restores normal
// speed.
func (d *Device) SetSlowdown(factor float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.slowFactor = factor
}

func (d *Device) slowLocked(occ time.Duration) time.Duration {
	if d.slowFactor > 1 {
		occ = time.Duration(float64(occ) * d.slowFactor)
	}
	return occ
}

// markPipe records when a command will reach the head of a pipe whose
// busy-until is busy (see the zns twin).
func markPipe(sp *obs.Span, busy, now time.Duration) {
	if sp == nil {
		return
	}
	start := now
	if busy > start {
		start = busy
	}
	sp.MarkAt(obs.PhaseQueue, start)
}

// RegisterMetrics publishes the device's lifetime counters into the
// registry as pull-style gauges under the given prefix (conventionally
// "blockdev_dev<i>"). The gauge funcs take d.mu at snapshot time.
func (d *Device) RegisterMetrics(r *obs.Registry, prefix string) {
	lockedInt := func(f func() int64) func() int64 {
		return func() int64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return f()
		}
	}
	r.Help(prefix+"_host_write_bytes", "bytes the host wrote to the device")
	r.GaugeFunc(prefix+"_host_write_bytes", lockedInt(func() int64 { return d.hostWriteBytes }))
	r.Help(prefix+"_host_read_bytes", "bytes the host read from the device")
	r.GaugeFunc(prefix+"_host_read_bytes", lockedInt(func() int64 { return d.hostReadBytes }))
	r.Help(prefix+"_gc_copied_pages_total", "valid flash pages relocated by FTL garbage collection")
	r.GaugeFunc(prefix+"_gc_copied_pages_total", lockedInt(func() int64 { return d.gcCopiedPages }))
	r.Help(prefix+"_gc_erases_total", "erase-block erasures performed by FTL garbage collection")
	r.GaugeFunc(prefix+"_gc_erases_total", lockedInt(func() int64 { return d.gcEraseCount }))
	r.Help(prefix+"_flushes_total", "flush commands the device completed")
	r.GaugeFunc(prefix+"_flushes_total", lockedInt(func() int64 { return d.flushCount }))
	r.Help(prefix+"_gc_free_blocks", "erase blocks currently on the FTL free list")
	r.GaugeFunc(prefix+"_gc_free_blocks", lockedInt(func() int64 { return int64(len(d.free)) }))
	r.Help(prefix+"_free_blocks", "erase blocks currently on the FTL free list")
	r.GaugeFunc(prefix+"_free_blocks", lockedInt(func() int64 { return int64(len(d.free)) }))
	r.Help(prefix+"_gc_wa_milli", "device write amplification (total programs / host programs) in thousandths")
	r.GaugeFunc(prefix+"_gc_wa_milli", lockedInt(func() int64 {
		hostPages := d.hostWriteBytes / int64(d.cfg.SectorSize)
		if hostPages == 0 {
			return 1000
		}
		return (hostPages + d.gcCopiedPages) * 1000 / hostPages
	}))
}

// AttachJournal points the device at a shared event journal: block
// allocations and GC episodes record under source slot. Passing nil
// detaches.
func (d *Device) AttachJournal(j *obs.Journal, slot int) {
	d.mu.Lock()
	d.jrn, d.jslot = j, slot
	d.mu.Unlock()
}

func (d *Device) xferTime(n int, bw float64) time.Duration {
	return time.Duration(float64(n) / bw * float64(time.Second))
}

func reservePipe(busy *time.Duration, now, occupancy time.Duration) time.Duration {
	start := now
	if *busy > start {
		start = *busy
	}
	*busy = start + occupancy
	return *busy
}

func (d *Device) schedule(sp *obs.Span, fut *vclock.Future, at time.Duration, epoch uint64, err error, effect func()) {
	now := d.clk.Now()
	d.clk.AfterFunc(at-now, func() {
		d.mu.Lock()
		stale := d.epoch != epoch
		if !stale && effect != nil {
			effect()
		}
		d.mu.Unlock()
		if stale {
			sp.EndAt(at, ErrPowerLoss)
			fut.Complete(ErrPowerLoss)
			return
		}
		sp.EndAt(at, err)
		fut.Complete(err)
	})
}

// allocBlockLocked takes a block from the free list and opens it.
func (d *Device) allocBlockLocked() int {
	if len(d.free) == 0 {
		// Cannot happen: GC keeps at least one block free, and physical
		// capacity exceeds logical capacity.
		panic("blockdev: out of free blocks")
	}
	b := d.free[len(d.free)-1]
	d.free = d.free[:len(d.free)-1]
	d.blocks[b] = eraseBlock{state: blockOpen}
	d.jrn.Record(obs.EvBlockAlloc, d.jslot, -1, int64(len(d.free)), 0, 0, 0)
	return b
}

// programLocked writes one page for logical page lp into the active block
// chain identified by active (either &d.hostActive or &d.gcActive),
// returning the physical page programmed.
func (d *Device) programLocked(lp int64, active *int) int64 {
	if *active == -1 || d.blocks[*active].state != blockOpen {
		*active = d.allocBlockLocked()
	}
	b := *active
	blk := &d.blocks[b]
	pp := int64(b)*int64(d.cfg.PagesPerBlock) + int64(blk.nextPage)
	blk.nextPage++
	blk.valid++
	if blk.nextPage == d.cfg.PagesPerBlock {
		blk.state = blockFull
		*active = -1
	}
	// Invalidate the previous mapping.
	if old := d.l2p[lp]; old != unmapped {
		d.blocks[old/int64(d.cfg.PagesPerBlock)].valid--
		d.p2l[old] = unmapped
	}
	d.l2p[lp] = pp
	d.p2l[pp] = lp
	return pp
}

// gcLocked performs greedy garbage collection until the free pool reaches
// the high-water mark, returning the virtual-time cost of the work (page
// reads + programs + erases), which the caller charges to the write pipe.
func (d *Device) gcLocked() time.Duration {
	var cost time.Duration
	pageBytes := d.cfg.SectorSize
	for len(d.free) < d.cfg.GCHighWater {
		victim := d.pickVictimLocked()
		if victim == -1 {
			break
		}
		blk := &d.blocks[victim]
		base := int64(victim) * int64(d.cfg.PagesPerBlock)
		copied := int64(0)
		for p := 0; p < d.cfg.PagesPerBlock && blk.valid > 0; p++ {
			pp := base + int64(p)
			lp := d.p2l[pp]
			if lp == unmapped {
				continue
			}
			np := d.programLocked(lp, &d.gcActive)
			if d.data != nil {
				copy(d.pageData(np), d.pageData(pp))
			}
			d.p2l[pp] = unmapped
			// programLocked decremented the victim's valid count via
			// the old mapping.
			d.gcCopiedPages++
			copied++
			cost += d.xferTime(pageBytes, d.cfg.ReadBandwidth) + d.xferTime(pageBytes, d.cfg.WriteBandwidth)
		}
		blk.state = blockFree
		blk.nextPage = 0
		blk.valid = 0
		d.free = append(d.free, victim)
		d.gcEraseCount++
		cost += d.cfg.EraseLatency
		if d.jrn.Enabled() {
			hostPages := d.hostWriteBytes / int64(d.cfg.SectorSize)
			d.jrn.Record(obs.EvGC, d.jslot, -1,
				int64(victim), copied, hostPages, hostPages+d.gcCopiedPages)
		}
	}
	return cost
}

// pickVictimLocked returns the full block with the fewest valid pages, or
// -1 if no full block exists.
func (d *Device) pickVictimLocked() int {
	best, bestValid := -1, d.cfg.PagesPerBlock
	for i := range d.blocks {
		if d.blocks[i].state != blockFull {
			continue
		}
		// A fully valid block is never a victim: erasing it frees no
		// net space (the copies consume exactly what the erase yields).
		if d.blocks[i].valid < bestValid {
			best, bestValid = i, d.blocks[i].valid
		}
	}
	return best
}

func (d *Device) pageData(pp int64) []byte {
	off := pp * int64(d.cfg.SectorSize)
	return d.data[off : off+int64(d.cfg.SectorSize)]
}

// Write submits a write of data at the absolute sector; overwrites are
// permitted anywhere in the logical address space. The returned future
// completes when the transfer (including any garbage collection it
// triggered) finishes.
func (d *Device) Write(sector int64, data []byte, flags Flag) *vclock.Future {
	return d.WriteSpan(nil, sector, data, flags)
}

// WriteSpan is Write with a tracing span: the device marks the span's
// queue and media phases and ends it when the command completes.
func (d *Device) WriteSpan(sp *obs.Span, sector int64, data []byte, flags Flag) *vclock.Future {
	if len(data) == 0 || len(data)%d.cfg.SectorSize != 0 {
		return d.failSpan(sp, ErrUnaligned)
	}
	nPages := int64(len(data) / d.cfg.SectorSize)
	if sector < 0 || sector+nPages > d.cfg.NumSectors {
		return d.failSpan(sp, ErrOutOfRange)
	}

	d.mu.Lock()
	if d.failed {
		d.mu.Unlock()
		return d.failSpan(sp, ErrDeviceFailed)
	}
	var gcCost time.Duration
	for i := int64(0); i < nPages; i++ {
		lp := sector + i
		if len(d.free) <= d.cfg.GCLowWater {
			gcCost += d.gcLocked()
		}
		pp := d.programLocked(lp, &d.hostActive)
		if d.data != nil {
			copy(d.pageData(pp), data[i*int64(d.cfg.SectorSize):(i+1)*int64(d.cfg.SectorSize)])
			d.applyBitRotLocked(pp)
		}
		// Rewriting a latent sector repairs it (the FTL programs a fresh
		// page; the grown defect is remapped away).
		if d.latentErrs[lp] {
			delete(d.latentErrs, lp)
		}
		d.unflushed[lp] = struct{}{}
	}
	d.hostWriteBytes += nPages * int64(d.cfg.SectorSize)

	now := d.clk.Now()
	occ := d.slowLocked(gcCost + d.cfg.WriteOpOverhead + d.xferTime(len(data), d.cfg.WriteBandwidth))
	if flags&Preflush != 0 {
		occ += d.cfg.FlushLatency
	}
	sp.SetSegs(1)
	markPipe(sp, d.writeBusy, now)
	media := reservePipe(&d.writeBusy, now, occ)
	sp.MarkAt(obs.PhaseMedia, media)
	done := media + d.cfg.WriteLatency
	epoch := d.epoch
	fua := flags&(FUA|Preflush) != 0
	d.mu.Unlock()

	fut := d.clk.NewFuture()
	d.schedule(sp, fut, done, epoch, nil, func() {
		if fua {
			// Persisting precisely the affected pages is enough for the
			// tests built on this device; a full-cache flush model is
			// not needed at the mdraid layer.
			for i := int64(0); i < nPages; i++ {
				delete(d.unflushed, sector+i)
			}
		}
	})
	return fut
}

// Writev submits one write command whose payload is gathered from segs
// (a scatter list). Like zns.Device.Writev it pays WriteOpOverhead once
// and occupies the write pipe for a single transfer of the combined
// length; semantics match Write of the concatenated payload.
func (d *Device) Writev(sector int64, segs [][]byte, flags Flag) *vclock.Future {
	return d.WritevSpan(nil, sector, segs, flags)
}

// WritevSpan is Writev with a tracing span; the span additionally
// records the scatter-list segment count.
func (d *Device) WritevSpan(sp *obs.Span, sector int64, segs [][]byte, flags Flag) *vclock.Future {
	if len(segs) == 0 {
		return d.failSpan(sp, ErrUnaligned)
	}
	if len(segs) == 1 {
		return d.WriteSpan(sp, sector, segs[0], flags)
	}
	var nPages int64
	for _, s := range segs {
		if len(s) == 0 || len(s)%d.cfg.SectorSize != 0 {
			return d.failSpan(sp, ErrUnaligned)
		}
		nPages += int64(len(s) / d.cfg.SectorSize)
	}
	if sector < 0 || sector+nPages > d.cfg.NumSectors {
		return d.failSpan(sp, ErrOutOfRange)
	}

	d.mu.Lock()
	if d.failed {
		d.mu.Unlock()
		return d.failSpan(sp, ErrDeviceFailed)
	}
	ss := int64(d.cfg.SectorSize)
	var gcCost time.Duration
	lp := sector
	for _, seg := range segs {
		for i := int64(0); i < int64(len(seg))/ss; i, lp = i+1, lp+1 {
			if len(d.free) <= d.cfg.GCLowWater {
				gcCost += d.gcLocked()
			}
			pp := d.programLocked(lp, &d.hostActive)
			if d.data != nil {
				copy(d.pageData(pp), seg[i*ss:(i+1)*ss])
				d.applyBitRotLocked(pp)
			}
			if d.latentErrs[lp] {
				delete(d.latentErrs, lp)
			}
			d.unflushed[lp] = struct{}{}
		}
	}
	d.hostWriteBytes += nPages * ss

	now := d.clk.Now()
	occ := d.slowLocked(gcCost + d.cfg.WriteOpOverhead + d.xferTime(int(nPages*ss), d.cfg.WriteBandwidth))
	if flags&Preflush != 0 {
		occ += d.cfg.FlushLatency
	}
	sp.SetSegs(len(segs))
	markPipe(sp, d.writeBusy, now)
	media := reservePipe(&d.writeBusy, now, occ)
	sp.MarkAt(obs.PhaseMedia, media)
	done := media + d.cfg.WriteLatency
	epoch := d.epoch
	fua := flags&(FUA|Preflush) != 0
	d.mu.Unlock()

	fut := d.clk.NewFuture()
	d.schedule(sp, fut, done, epoch, nil, func() {
		if fua {
			for i := int64(0); i < nPages; i++ {
				delete(d.unflushed, sector+i)
			}
		}
	})
	return fut
}

// Read fills buf starting at the absolute sector. Unwritten (trimmed)
// sectors read as zeroes.
func (d *Device) Read(sector int64, buf []byte) *vclock.Future {
	return d.ReadSpan(nil, sector, buf)
}

// ReadSpan is Read with a tracing span.
func (d *Device) ReadSpan(sp *obs.Span, sector int64, buf []byte) *vclock.Future {
	if len(buf) == 0 || len(buf)%d.cfg.SectorSize != 0 {
		return d.failSpan(sp, ErrUnaligned)
	}
	nPages := int64(len(buf) / d.cfg.SectorSize)
	if sector < 0 || sector+nPages > d.cfg.NumSectors {
		return d.failSpan(sp, ErrOutOfRange)
	}

	d.mu.Lock()
	if d.failed {
		d.mu.Unlock()
		return d.failSpan(sp, ErrDeviceFailed)
	}
	ss := int64(d.cfg.SectorSize)
	for i := int64(0); i < nPages; i++ {
		dst := buf[i*ss : (i+1)*ss]
		pp := d.l2p[sector+i]
		if pp == unmapped || d.data == nil {
			for j := range dst {
				dst[j] = 0
			}
			continue
		}
		copy(dst, d.pageData(pp))
	}
	d.hostReadBytes += nPages * ss

	rerr := d.readFaultLocked(sector, nPages)

	now := d.clk.Now()
	occ := d.slowLocked(d.cfg.ReadOpOverhead + d.xferTime(len(buf), d.cfg.ReadBandwidth))
	markPipe(sp, d.readBusy, now)
	media := reservePipe(&d.readBusy, now, occ)
	sp.MarkAt(obs.PhaseMedia, media)
	done := media + d.cfg.ReadLatency
	epoch := d.epoch
	d.mu.Unlock()

	fut := d.clk.NewFuture()
	d.schedule(sp, fut, done, epoch, rerr, nil)
	return fut
}

// Flush persists the volatile write cache.
func (d *Device) Flush() *vclock.Future {
	return d.FlushSpan(nil)
}

// FlushSpan is Flush with a tracing span.
func (d *Device) FlushSpan(sp *obs.Span) *vclock.Future {
	d.mu.Lock()
	if d.failed {
		d.mu.Unlock()
		return d.failSpan(sp, ErrDeviceFailed)
	}
	snap := make([]int64, 0, len(d.unflushed))
	for lp := range d.unflushed {
		snap = append(snap, lp)
	}
	now := d.clk.Now()
	markPipe(sp, d.writeBusy, now)
	done := reservePipe(&d.writeBusy, now, d.cfg.FlushLatency)
	sp.MarkAt(obs.PhaseMedia, done)
	epoch := d.epoch
	d.flushCount++
	d.mu.Unlock()

	fut := d.clk.NewFuture()
	d.schedule(sp, fut, done, epoch, nil, func() {
		for _, lp := range snap {
			delete(d.unflushed, lp)
		}
	})
	return fut
}

// Trim deallocates the logical range, releasing the mapped flash pages.
func (d *Device) Trim(sector, nSectors int64) error {
	if sector < 0 || nSectors < 0 || sector+nSectors > d.cfg.NumSectors {
		return ErrOutOfRange
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	for i := int64(0); i < nSectors; i++ {
		lp := sector + i
		if pp := d.l2p[lp]; pp != unmapped {
			d.blocks[pp/int64(d.cfg.PagesPerBlock)].valid--
			d.p2l[pp] = unmapped
			d.l2p[lp] = unmapped
		}
		delete(d.unflushed, lp)
	}
	return nil
}

// PowerLoss drops all unflushed data (pessimistically: no partial
// survival; the mdraid experiments in this reproduction do not exercise
// block-device torn writes) and voids in-flight IO.
func (d *Device) PowerLoss() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for lp := range d.unflushed {
		if pp := d.l2p[lp]; pp != unmapped {
			d.blocks[pp/int64(d.cfg.PagesPerBlock)].valid--
			d.p2l[pp] = unmapped
			d.l2p[lp] = unmapped
		}
	}
	d.unflushed = make(map[int64]struct{})
	d.epoch++
	d.writeBusy = 0
	d.readBusy = 0
}
