package blockdev

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"raizn/internal/vclock"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.NumSectors = 4096 // 16 MiB logical
	cfg.PagesPerBlock = 64
	return cfg
}

func run(t *testing.T, cfg Config, fn func(c *vclock.Clock, d *Device)) {
	t.Helper()
	c := vclock.New()
	d := NewDevice(c, cfg)
	c.Run(func() { fn(c, d) })
}

func pattern(cfg Config, nSectors int, tag byte) []byte {
	b := make([]byte, nSectors*cfg.SectorSize)
	for i := range b {
		b[i] = tag ^ byte(i)
	}
	return b
}

func mustWrite(t *testing.T, d *Device, sector int64, data []byte) {
	t.Helper()
	if err := d.Write(sector, data, 0).Wait(); err != nil {
		t.Fatalf("write at %d: %v", sector, err)
	}
}

func mustRead(t *testing.T, d *Device, sector int64, n int) []byte {
	t.Helper()
	buf := make([]byte, n*d.Config().SectorSize)
	if err := d.Read(sector, buf).Wait(); err != nil {
		t.Fatalf("read at %d: %v", sector, err)
	}
	return buf
}

func TestWriteReadRoundTrip(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		data := pattern(cfg, 8, 0x5C)
		mustWrite(t, d, 100, data)
		if got := mustRead(t, d, 100, 8); !bytes.Equal(got, data) {
			t.Error("read mismatch")
		}
	})
}

func TestOverwrite(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		mustWrite(t, d, 10, pattern(cfg, 4, 1))
		mustWrite(t, d, 10, pattern(cfg, 4, 2))
		mustWrite(t, d, 12, pattern(cfg, 1, 3))
		got := mustRead(t, d, 10, 4)
		want := pattern(cfg, 4, 2)
		copy(want[2*cfg.SectorSize:3*cfg.SectorSize], pattern(cfg, 1, 3))
		if !bytes.Equal(got, want) {
			t.Error("overwrite result mismatch")
		}
	})
}

func TestUnwrittenReadsZero(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		if got := mustRead(t, d, 0, 4); !bytes.Equal(got, make([]byte, 4*cfg.SectorSize)) {
			t.Error("unwritten sectors should read zero")
		}
	})
}

func TestBoundsAndAlignment(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		if err := d.Write(cfg.NumSectors, pattern(cfg, 1, 1), 0).Wait(); err != ErrOutOfRange {
			t.Errorf("oob write error = %v", err)
		}
		if err := d.Write(cfg.NumSectors-1, pattern(cfg, 2, 1), 0).Wait(); err != ErrOutOfRange {
			t.Errorf("straddling write error = %v", err)
		}
		if err := d.Write(0, make([]byte, 5), 0).Wait(); err != ErrUnaligned {
			t.Errorf("unaligned write error = %v", err)
		}
		if err := d.Read(-1, make([]byte, cfg.SectorSize)).Wait(); err != ErrOutOfRange {
			t.Errorf("negative read error = %v", err)
		}
	})
}

// fillDevice writes the whole logical space once, sequentially.
func fillDevice(t *testing.T, d *Device, tag byte) {
	t.Helper()
	cfg := d.Config()
	const chunk = 64
	for s := int64(0); s < cfg.NumSectors; s += chunk {
		mustWrite(t, d, s, pattern(cfg, chunk, tag))
	}
}

// fillInterleaved writes the whole logical space by cycling across five
// regions (the paper's Figure 10 phase-1 pattern), so every erase block
// ends up holding pages from five distinct LBA regions.
func fillInterleaved(t *testing.T, d *Device, tag byte) {
	t.Helper()
	cfg := d.Config()
	const chunk = 8
	regions := int64(5)
	regionSize := cfg.NumSectors / regions
	for off := int64(0); off < regionSize; off += chunk {
		for r := int64(0); r < regions; r++ {
			s := r*regionSize + off
			n := chunk
			if s+int64(n) > cfg.NumSectors {
				n = int(cfg.NumSectors - s)
			}
			if n > 0 {
				mustWrite(t, d, s, pattern(cfg, n, tag))
			}
		}
	}
	// Tail left over by integer division.
	for s := regions * regionSize; s < cfg.NumSectors; s += chunk {
		n := chunk
		if s+int64(n) > cfg.NumSectors {
			n = int(cfg.NumSectors - s)
		}
		mustWrite(t, d, s, pattern(cfg, n, tag))
	}
}

func TestSequentialOverwriteNeedsNoCopies(t *testing.T) {
	// A sequential overwrite of a sequentially filled device produces
	// fully-invalid victims: GC must erase but not copy.
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		fillDevice(t, d, 1)
		fillDevice(t, d, 2)
		_, _, gcCopied, erases := d.Counters()
		if erases == 0 {
			t.Error("no erases during full overwrite")
		}
		if gcCopied != 0 {
			t.Errorf("GC copied %d pages; sequential overwrite should copy none", gcCopied)
		}
	})
}

func TestGCTriggersOnOverwrite(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		fillInterleaved(t, d, 1)
		_, _, gc0, _ := d.Counters()
		if gc0 != 0 {
			t.Errorf("GC ran during first fill: %d pages", gc0)
		}
		fillDevice(t, d, 2) // sequential overwrite of interleaved blocks
		_, _, gc1, erases := d.Counters()
		if gc1 == 0 || erases == 0 {
			t.Errorf("GC did not relocate (copied=%d erases=%d)", gc1, erases)
		}
		// Data must survive GC.
		if got := mustRead(t, d, 0, 64); !bytes.Equal(got, pattern(cfg, 64, 2)) {
			t.Error("data corrupted by GC")
		}
	})
}

func TestGCSlowsWrites(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		t0 := c.Now()
		fillDevice(t, d, 1)
		cleanTime := c.Now() - t0

		t1 := c.Now()
		fillDevice(t, d, 2)
		gcTime := c.Now() - t1
		if gcTime < cleanTime*3/2 {
			t.Errorf("overwrite with GC took %v, clean fill %v; expected significant slowdown", gcTime, cleanTime)
		}
	})
}

func TestRandomOverwriteConsistency(t *testing.T) {
	// Property: after arbitrary overwrites (forcing plenty of GC), every
	// sector reads back its most recent write.
	cfg := testConfig()
	cfg.NumSectors = 1024
	cfg.PagesPerBlock = 32
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		rng := rand.New(rand.NewSource(7))
		shadow := make([]byte, cfg.NumSectors*int64(cfg.SectorSize))
		for i := 0; i < 3000; i++ {
			n := 1 + rng.Intn(8)
			s := rng.Int63n(cfg.NumSectors - int64(n) + 1)
			data := make([]byte, n*cfg.SectorSize)
			rng.Read(data)
			mustWrite(t, d, s, data)
			copy(shadow[s*int64(cfg.SectorSize):], data)
		}
		_, _, gc, _ := d.Counters()
		if gc == 0 {
			t.Fatal("test did not exercise GC")
		}
		got := mustRead(t, d, 0, int(cfg.NumSectors))
		if !bytes.Equal(got, shadow) {
			t.Error("device state diverged from shadow copy")
		}
	})
}

func TestWriteAmplificationAccounting(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		fillInterleaved(t, d, 1)
		if wa := d.WriteAmplification(); wa != 1 {
			t.Errorf("clean fill WA = %f, want 1", wa)
		}
		fillDevice(t, d, 2)
		if wa := d.WriteAmplification(); wa <= 1 {
			t.Errorf("post-overwrite WA = %f, want > 1", wa)
		}
	})
}

func TestTrimReleasesSpace(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		fillDevice(t, d, 1)
		if err := d.Trim(0, cfg.NumSectors); err != nil {
			t.Fatal(err)
		}
		if got := mustRead(t, d, 0, 4); !bytes.Equal(got, make([]byte, 4*cfg.SectorSize)) {
			t.Error("trimmed sectors should read zero")
		}
		// A second fill over trimmed space needs little GC (only the
		// erases of the now fully-invalid blocks).
		_, _, gcBefore, _ := d.Counters()
		fillDevice(t, d, 2)
		_, _, gcAfter, _ := d.Counters()
		if copied := gcAfter - gcBefore; copied > int64(cfg.PagesPerBlock) {
			t.Errorf("GC copied %d pages after trim, want ~0", copied)
		}
	})
}

func TestPowerLossDropsUnflushed(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		mustWrite(t, d, 0, pattern(cfg, 2, 1))
		if err := d.Flush().Wait(); err != nil {
			t.Fatal(err)
		}
		mustWrite(t, d, 2, pattern(cfg, 2, 2))
		d.PowerLoss()
		got := mustRead(t, d, 0, 4)
		if !bytes.Equal(got[:2*cfg.SectorSize], pattern(cfg, 2, 1)) {
			t.Error("flushed data lost")
		}
		if !bytes.Equal(got[2*cfg.SectorSize:], make([]byte, 2*cfg.SectorSize)) {
			t.Error("unflushed data survived pessimistic power loss")
		}
	})
}

func TestFUAWriteSurvivesPowerLoss(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		if err := d.Write(5, pattern(cfg, 1, 9), FUA).Wait(); err != nil {
			t.Fatal(err)
		}
		d.PowerLoss()
		if got := mustRead(t, d, 5, 1); !bytes.Equal(got, pattern(cfg, 1, 9)) {
			t.Error("FUA write lost")
		}
	})
}

func TestDeviceFail(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		d.Fail()
		if err := d.Write(0, pattern(cfg, 1, 1), 0).Wait(); err != ErrDeviceFailed {
			t.Errorf("write error = %v", err)
		}
		if err := d.Read(0, make([]byte, cfg.SectorSize)).Wait(); err != ErrDeviceFailed {
			t.Errorf("read error = %v", err)
		}
		if err := d.Trim(0, 1); err != ErrDeviceFailed {
			t.Errorf("trim error = %v", err)
		}
	})
}

func TestLatencySpikesDuringGC(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		fillDevice(t, d, 1)
		// Measure a clean write latency baseline on a fresh region
		// overwrite vs. the worst-case write once GC starts.
		var worst time.Duration
		for s := int64(0); s < cfg.NumSectors; s += 64 {
			t0 := c.Now()
			mustWrite(t, d, s, pattern(cfg, 64, 2))
			if lat := c.Now() - t0; lat > worst {
				worst = lat
			}
		}
		base := cfg.WriteOpOverhead + time.Duration(float64(64*cfg.SectorSize)/cfg.WriteBandwidth*float64(time.Second)) + cfg.WriteLatency
		if worst < 3*base {
			t.Errorf("worst GC-era latency %v not much above base %v", worst, base)
		}
	})
}

func TestFreeBlocksNeverExhausted(t *testing.T) {
	f := func(seed int64) bool {
		cfg := testConfig()
		cfg.NumSectors = 512
		cfg.PagesPerBlock = 16
		ok := true
		c := vclock.New()
		d := NewDevice(c, cfg)
		c.Run(func() {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				n := 1 + rng.Intn(16)
				s := rng.Int63n(cfg.NumSectors - int64(n) + 1)
				if err := d.Write(s, make([]byte, n*cfg.SectorSize), 0).Wait(); err != nil {
					ok = false
					return
				}
				if d.FreeBlocks() < 1 {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
