package blockdev

import "math/rand"

// Latent-error injection for the conventional-SSD model, mirroring the
// zns package (see internal/zns/faults.go for the semantics rationale).
// One difference follows from the interface: a conventional device can
// be rewritten in place, so rewriting a latent logical sector repairs
// it — which is exactly how mdraid's check/repair scrub fixes
// unreadable sectors (reconstruct from peers, rewrite in place).

// faultRNGLocked lazily builds the fault RNG. Caller holds d.mu.
func (d *Device) faultRNGLocked() *rand.Rand {
	if d.faultRNG == nil {
		d.faultRNG = rand.New(rand.NewSource(d.cfg.FaultSeed + 1))
	}
	return d.faultRNG
}

// InjectReadError marks the logical sector as a latent read error:
// every subsequent read covering it completes with ErrReadMedium until
// the sector is rewritten.
func (d *Device) InjectReadError(sector int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	if sector < 0 || sector >= d.cfg.NumSectors {
		return ErrOutOfRange
	}
	if d.latentErrs == nil {
		d.latentErrs = make(map[int64]bool)
	}
	if !d.latentErrs[sector] {
		d.latentErrs[sector] = true
		d.injectedReadErrs++
	}
	return nil
}

// CorruptSector flips one bit of the mapped flash page backing the
// logical sector (silent bit-rot): reads succeed and return the
// corrupted bytes. The sector must be mapped (written) and the device
// must store payloads.
func (d *Device) CorruptSector(sector int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	if d.data == nil {
		return ErrNoData
	}
	if sector < 0 || sector >= d.cfg.NumSectors {
		return ErrOutOfRange
	}
	pp := d.l2p[sector]
	if pp == unmapped {
		return ErrOutOfRange
	}
	d.corruptPageLocked(pp)
	return nil
}

// corruptPageLocked flips a deterministic-by-rng bit of physical page
// pp. Caller holds d.mu; d.data is non-nil.
func (d *Device) corruptPageLocked(pp int64) {
	rng := d.faultRNGLocked()
	pg := d.pageData(pp)
	pg[rng.Intn(len(pg))] ^= 1 << uint(rng.Intn(8))
	d.injectedRot++
}

// applyBitRotLocked draws rot for one freshly programmed page. Caller
// holds d.mu; d.data is non-nil.
func (d *Device) applyBitRotLocked(pp int64) {
	if d.cfg.BitRotRate <= 0 {
		return
	}
	if d.faultRNGLocked().Float64() < d.cfg.BitRotRate {
		d.corruptPageLocked(pp)
	}
}

// readFaultLocked decides whether a read of [sector, sector+n) fails
// with a latent error; rate-injected errors stick to a concrete sector
// so retries fail identically. Caller holds d.mu.
func (d *Device) readFaultLocked(sector, nSectors int64) error {
	for s := sector; s < sector+nSectors; s++ {
		if d.latentErrs[s] {
			d.readMediumErrs++
			return ErrReadMedium
		}
	}
	if d.cfg.ReadErrorRate > 0 {
		rng := d.faultRNGLocked()
		if rng.Float64() < d.cfg.ReadErrorRate*float64(nSectors) {
			bad := sector + rng.Int63n(nSectors)
			if d.latentErrs == nil {
				d.latentErrs = make(map[int64]bool)
			}
			d.latentErrs[bad] = true
			d.injectedReadErrs++
			d.readMediumErrs++
			return ErrReadMedium
		}
	}
	return nil
}

// FaultCounters returns lifetime fault-injection counters: sectors
// marked as latent read errors, pages hit by bit-rot, and reads that
// completed with ErrReadMedium.
func (d *Device) FaultCounters() (latentSectors, rottedPages, readMediumErrors int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.injectedReadErrs, d.injectedRot, d.readMediumErrs
}
