package blockdev

import (
	"math"
	"testing"

	"raizn/internal/obs"
	"raizn/internal/vclock"
)

// TestJournalGCEvents overwrites the device until the FTL collects, then
// checks the journal carries the free-block drain and GC events whose
// cumulative counters reproduce WriteAmplification().
func TestJournalGCEvents(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		j := obs.NewJournal(c, obs.JournalConfig{Capacity: 16384})
		j.Enable()
		d.AttachJournal(j, 1)

		// Interleave first so erase blocks hold pages from five regions,
		// then overwrite sequentially: GC must copy the still-valid pages.
		fillInterleaved(t, d, 1)
		fillDevice(t, d, 2)
		_, _, gcCopied, _ := d.Counters()
		if gcCopied == 0 {
			t.Fatal("workload did not trigger GC copies")
		}

		var allocs, gcs int
		var lastGC obs.Event
		minFree := int64(math.MaxInt64)
		for _, e := range j.Events() {
			if e.Src != 1 {
				t.Fatalf("event src = %d, want 1", e.Src)
			}
			switch e.Type {
			case obs.EvBlockAlloc:
				allocs++
				if e.A < minFree {
					minFree = e.A
				}
			case obs.EvGC:
				gcs++
				// Cumulative counters are monotone, and copied pages are
				// bounded by a block's worth.
				if e.C < lastGC.C || e.D < lastGC.D {
					t.Fatalf("GC counters went backwards: %+v after %+v", e, lastGC)
				}
				if e.B < 0 || e.B > int64(cfg.PagesPerBlock) {
					t.Fatalf("GC copied %d pages, block holds %d", e.B, cfg.PagesPerBlock)
				}
				lastGC = e
			}
		}
		if allocs == 0 || gcs == 0 {
			t.Fatalf("allocs=%d gcs=%d, want both > 0", allocs, gcs)
		}
		if minFree < 0 {
			t.Fatalf("free-block count went negative: %d", minFree)
		}
		if lastGC.C <= 0 || lastGC.D < lastGC.C {
			t.Fatalf("last GC event host_pages=%d programs=%d", lastGC.C, lastGC.D)
		}
		// The event's cumulative copied pages (D-C, as of that GC) never
		// exceed what the device reports at the end, and the event-derived
		// WA shows amplification.
		if copied := lastGC.D - lastGC.C; copied > gcCopied {
			t.Errorf("event copied pages %d > device total %d", copied, gcCopied)
		}
		if evWA := float64(lastGC.D) / float64(lastGC.C); evWA <= 1 {
			t.Errorf("event WA = %f, want > 1", evWA)
		}
		if devWA := d.WriteAmplification(); devWA <= 1 {
			t.Errorf("device WA = %f, want > 1 after overwrite", devWA)
		}
	})
}

// TestJournalDisabledCostsNothing: a device with a disabled (or absent)
// journal must not record or allocate on the write path.
func TestJournalDisabledCostsNothing(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		j := obs.NewJournal(c, obs.JournalConfig{})
		d.AttachJournal(j, 0) // attached but not enabled
		fillDevice(t, d, 1)
		if j.Len() != 0 {
			t.Fatalf("disabled journal recorded %d events", j.Len())
		}
	})
}
