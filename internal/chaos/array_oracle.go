package chaos

import (
	"fmt"
	"math/rand"

	"raizn/internal/obs"
	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// ArrayCrash is one array's crash snapshot, taken outside the scenario
// runner — e.g. by a volume-manager test that crashes several hosted
// arrays mid-burst. Clones are the array's devices after the power cut
// (zns.Device.CrashClone), Events the journal stream recorded for this
// array up to the cut.
type ArrayCrash struct {
	// Clk is the fresh clock the clones were created on; the oracle
	// mounts and probes on it.
	Clk *vclock.Clock
	// Clones are the array's post-power-cut devices, in slot order.
	Clones []*zns.Device
	// Events is the array's journal stream (device events carry the slot
	// index as Src).
	Events []obs.Event
	// Dropped is the journal's overwrite count; a non-zero value skips
	// the checks that need a complete stream.
	Dropped uint64
	// Config is the raizn configuration to Mount with. Observability
	// fields may be zero; geometry and parity fields must match the
	// crashed array's.
	Config raizn.Config
}

// ZoneWatermarks carries a caller's workload-model knowledge about one
// logical zone at the moment of the crash, in zone-relative sectors.
type ZoneWatermarks struct {
	// Durable is the prefix known persistent (FUA/flush completed before
	// the cut). Recovery below it is lost durable data. Understating it
	// is safe; overstating it produces false violations.
	Durable int64
	// Submitted is the highest write end ever submitted. Recovery above
	// it is phantom data. Overstating is safe.
	Submitted int64
	// Finished marks a zone the workload finished; its recovered wp
	// reports full capacity regardless of data written.
	Finished bool
}

// CheckArrayCrash validates one array's recovery contracts against its
// crash snapshot:
//
//   - "open-after-cycle" and J1 "unexplained-bytes" on the raw clones
//     (the latter only with a complete journal), exactly as the scenario
//     runner's oracle checks them;
//   - the array must mount writable ("recovery-failed" /
//     "recovery-readonly");
//   - per logical zone with watermarks: "lost-durable-data" (recovered
//     wp below the durable prefix) and "phantom-data" (above everything
//     submitted).
//
// It returns the violations (Rule and Detail populated) plus the
// mounted volume for caller follow-up checks, or nil if mounting
// failed. The caller must not be inside Clk.Run.
func CheckArrayCrash(ac ArrayCrash, marks map[int]ZoneWatermarks) ([]Violation, *raizn.Volume) {
	var vios []Violation
	add := func(rule, format string, args ...interface{}) {
		vios = append(vios, Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)})
	}

	view := journalView(ac.Events, len(ac.Clones))
	for i, c := range ac.Clones {
		descs := c.ReportZones()
		for _, zd := range descs {
			if zd.State == zns.ZoneOpen {
				add("open-after-cycle", "dev %d zone %d open after power cycle", i, zd.Index)
			}
		}
		if c.Failed() || ac.Dropped > 0 {
			continue
		}
		for _, zd := range descs {
			if zd.State == zns.ZoneFull && view[i].finished[zd.Index] {
				continue
			}
			rel := zd.WP - c.ZoneStart(zd.Index)
			if max := view[i].maxEnd[zd.Index]; rel > max {
				add("unexplained-bytes",
					"dev %d zone %d: wp %d survives but journal explains only %d",
					i, zd.Index, rel, max)
			}
		}
	}

	var live []*zns.Device
	for _, c := range ac.Clones {
		if !c.Failed() {
			live = append(live, c)
		}
	}
	if len(ac.Clones)-len(live) > 1 {
		add("unmountable", "%d failed devices", len(ac.Clones)-len(live))
		return vios, nil
	}
	var vol *raizn.Volume
	var merr error
	ac.Clk.Run(func() { vol, merr = raizn.Mount(ac.Clk, live, ac.Config) })
	if merr != nil {
		add("recovery-failed", "mount: %v", merr)
		return vios, nil
	}
	if vol.ReadOnly() {
		add("recovery-readonly", "array mounted read-only")
	}

	for z, wm := range marks {
		if z < 0 || z >= vol.NumZones() {
			add("bad-watermark", "zone %d out of range", z)
			continue
		}
		desc := vol.Zone(z)
		wp := desc.WP - int64(z)*vol.ZoneSectors()
		if wp < wm.Durable {
			add("lost-durable-data",
				"zone %d: wp %d below durable prefix %d", z, wp, wm.Durable)
		}
		if wm.Finished {
			if desc.State != zns.ZoneFull {
				add("finish-durability",
					"zone %d: finished zone recovered in state %v", z, desc.State)
			}
			continue
		}
		if wp > wm.Submitted {
			add("phantom-data",
				"zone %d: wp %d beyond everything submitted (%d)", z, wp, wm.Submitted)
		}
	}
	return vios, vol
}

// SnapshotArray crash-clones every device of one array onto a fresh
// clock, applying a deterministic torn-write cut drawn from seed (the
// same convention as the scenario runner's VarRand variant; a nil-rng
// cut — persisted data only — is seed < 0). It may be called from
// inside a running simulation; device locks serialize against in-flight
// IO, so the clones capture a crash-consistent instant.
func SnapshotArray(devs []*zns.Device, seed int64) ([]*zns.Device, *vclock.Clock) {
	clk := vclock.New()
	clones := make([]*zns.Device, len(devs))
	for i, d := range devs {
		rng := rngForSlot(seed, i)
		clones[i] = d.CrashClone(clk, rng, nil)
	}
	return clones, clk
}

// rngForSlot derives the per-device torn-cut RNG from a snapshot seed,
// following the scenario runner's seeding convention. Negative seeds
// select the nil-rng cut: only persisted data survives.
func rngForSlot(seed int64, slot int) *rand.Rand {
	if seed < 0 {
		return nil
	}
	return rand.New(rand.NewSource(seed*1000003 + int64(slot)*257))
}
