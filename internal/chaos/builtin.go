package chaos

// Built-in scenarios. "stripe-reset" is the acceptance workload: enough
// stripe writes, metadata flushes and zone lifecycle to cross every hook
// family. "composed" layers device failure, silent corruption, scrub and
// GC pressure on top — the schedule the shrinker is pointed at.
// "zraid-gc" runs the zraid parity engine through PP-slot thrash, ring
// advances and PP-zone GC.

import (
	"raizn/internal/raizn"
	"raizn/internal/zns"
)

func init() {
	Register(StripeReset())
	Register(Composed())
	Register(ZRAIDGC())
}

// StripeReset writes across stripe boundaries, flushes, resets a zone and
// rewrites it at the next generation, and finishes another — crossing the
// write plan/compute/submit pipeline, partial-parity and checksum
// appends, device flush fan-out, the reset WAL protocol, and zone finish.
func StripeReset() *Scenario {
	return New("stripe-reset").
		Write(0, 64).   // one full stripe: data fan-out + full parity
		Write(0, 24).   // partial stripe: partial-parity log append
		WriteFUA(0, 8). // FUA: per-device flush fan-out
		Write(1, 40).
		Flush(). // metadata-flush boundary
		Write(1, 24).
		Reset(0).     // reset WAL on two devices + 5 physical resets
		Write(0, 32). // next-generation data over the reset zone
		Finish(1).    // tail parity seal + 5 physical finishes
		Maintain().
		Build()
}

// Composed is the kitchen-sink schedule: clean writes, a silently
// corrupted sector repaired by scrub, a device failure anchored mid-way
// through a write's submit phase, degraded writes and reads, metadata GC,
// and a zone reset — all crossed with power loss at every point.
func Composed() *Scenario {
	b := New("composed").
		Write(0, 64).
		Write(1, 48).
		Flush().
		Corrupt(1, 5). // dev 1, physical zone 0: hits zone 0 stripe 0 data
		Scrub(0).      // detects and repairs the rot
		Write(0, 32).  // this write's submit crossing triggers the failure
		Write(1, 16).  // degraded write
		ReadCheck(1).  // degraded read path
		Maintain().
		Reset(1).
		Write(1, 24).
		Flush()
	b.FaultAt("raizn.write.submit", 2, Fault{Kind: OpFailDevice, Dev: 2})
	return b.Build()
}

// ZRAIDGC runs the zraid parity engine's whole PP-zone lifecycle under
// the crash explorer. The three data zones are positioned so their tail
// stripes all map their parity to device 4 (stripe indices 5, 4, 3:
// (z+s)%5 == 0), then small interleaved appends keep three partial-
// parity images live against a two-slot ZRWA window — every persist
// appends a fresh slot, the 7-slot head zone fills twice, and the ring
// advance garbage-collects live slots across zones (raizn.ppgc.* crash
// points). The tail covers slot death (stripes closing), a zone reset's
// PP sweep, a finish, and a Maintain-driven reclaim.
func ZRAIDGC() *Scenario {
	dc := zns.DefaultConfig()
	dc.NumZones = 8
	dc.ZoneSize = 160
	dc.ZoneCap = 128
	dc.MaxOpenZones = 8
	dc.MaxActiveZones = 10
	dc.ZRWASectors = 34 // two 17-sector PP slots in flight
	vc := raizn.Config{
		StripeUnitSectors: 16, MetadataZones: 3, StripeBuffers: 4,
		ParityEngine: raizn.EngineZRAID, PPZones: 2,
	}
	b := New("zraid-gc").Devices(5, dc).Volume(vc).
		Write(0, 320). // zone 0 at stripe 5
		Write(1, 256). // zone 1 at stripe 4
		Write(2, 192). // zone 2 at stripe 3
		Flush()
	// Seven interleaved rounds of 8-sector appends: 21 partial-parity
	// persists thrashing one pool, two head advances, two GCs.
	for i := 0; i < 7; i++ {
		b.Write(0, 8).Write(1, 8).Write(2, 8)
	}
	return b.Flush().
		Write(0, 8). // eighth append: the stripes complete, slots die
		Write(1, 8).
		Write(2, 8).
		Maintain(). // reclaims the dead non-head pool + metadata GC
		Reset(2).   // reset WAL + the engine's per-zone PP sweep
		Write(2, 64).
		Finish(1).
		Flush().
		Build()
}
