package chaos

// Built-in scenarios. "stripe-reset" is the acceptance workload: enough
// stripe writes, metadata flushes and zone lifecycle to cross every hook
// family. "composed" layers device failure, silent corruption, scrub and
// GC pressure on top — the schedule the shrinker is pointed at.

func init() {
	Register(StripeReset())
	Register(Composed())
}

// StripeReset writes across stripe boundaries, flushes, resets a zone and
// rewrites it at the next generation, and finishes another — crossing the
// write plan/compute/submit pipeline, partial-parity and checksum
// appends, device flush fan-out, the reset WAL protocol, and zone finish.
func StripeReset() *Scenario {
	return New("stripe-reset").
		Write(0, 64).   // one full stripe: data fan-out + full parity
		Write(0, 24).   // partial stripe: partial-parity log append
		WriteFUA(0, 8). // FUA: per-device flush fan-out
		Write(1, 40).
		Flush(). // metadata-flush boundary
		Write(1, 24).
		Reset(0).     // reset WAL on two devices + 5 physical resets
		Write(0, 32). // next-generation data over the reset zone
		Finish(1).    // tail parity seal + 5 physical finishes
		Maintain().
		Build()
}

// Composed is the kitchen-sink schedule: clean writes, a silently
// corrupted sector repaired by scrub, a device failure anchored mid-way
// through a write's submit phase, degraded writes and reads, metadata GC,
// and a zone reset — all crossed with power loss at every point.
func Composed() *Scenario {
	b := New("composed").
		Write(0, 64).
		Write(1, 48).
		Flush().
		Corrupt(1, 5). // dev 1, physical zone 0: hits zone 0 stripe 0 data
		Scrub(0).      // detects and repairs the rot
		Write(0, 32).  // this write's submit crossing triggers the failure
		Write(1, 16).  // degraded write
		ReadCheck(1).  // degraded read path
		Maintain().
		Reset(1).
		Write(1, 24).
		Flush()
	b.FaultAt("raizn.write.submit", 2, Fault{Kind: OpFailDevice, Dev: 2})
	return b.Build()
}
