package chaos

import (
	"reflect"
	"testing"
)

// TestStripeResetExplore is the acceptance gate: the stripe-write +
// metadata-flush + reset scenario crosses at least 30 crash points, the
// explorer recovers from a crash at every one under all three power-loss
// variants, and the contract checker reports zero violations.
func TestStripeResetExplore(t *testing.T) {
	res, err := Explore(StripeReset(), Options{Seed: 1})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	t.Logf("census=%d explored=%d recovered=%d violations=%d",
		len(res.Census), res.Explored, res.Recovered, len(res.Violations))
	if len(res.Census) < 30 {
		t.Errorf("census has %d crash points, want >= 30", len(res.Census))
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %v", v)
	}
	if res.Recovered != res.Explored {
		t.Errorf("recovered %d of %d runs", res.Recovered, res.Explored)
	}
}

// TestComposedExplore crashes the composed schedule (corruption + scrub +
// mid-write device failure + degraded IO + GC + reset) at a sampled set
// of points and requires clean recovery from all of them.
func TestComposedExplore(t *testing.T) {
	res, err := Explore(Composed(), Options{Seed: 7, MaxPoints: 40})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	t.Logf("census=%d explored=%d recovered=%d violations=%d",
		len(res.Census), res.Explored, res.Recovered, len(res.Violations))
	for _, v := range res.Violations {
		t.Errorf("violation: %v", v)
	}
}

// TestZRAIDGCExplore runs the zraid parity-engine scenario through the
// explorer: the census must include the PP-zone GC crash points (the
// schedule is built to advance the PP ring twice), and recovery must be
// violation-free at a sampled set of crossings under all three
// power-loss variants.
func TestZRAIDGCExplore(t *testing.T) {
	s := ZRAIDGC()
	census, err := Census(s, 11)
	if err != nil {
		t.Fatalf("census: %v", err)
	}
	want := map[string]int{
		"raizn.pp.write":     0,
		"raizn.ppgc.begin":   0,
		"raizn.ppgc.migrate": 0,
		"raizn.ppgc.done":    0,
	}
	for _, cp := range census {
		if _, ok := want[cp.Name]; ok {
			want[cp.Name]++
		}
	}
	for name, n := range want {
		if n == 0 {
			t.Errorf("census never crossed %s", name)
		}
	}

	res, err := Explore(s, Options{Seed: 11, MaxPoints: 40})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	t.Logf("census=%d explored=%d recovered=%d violations=%d",
		len(res.Census), res.Explored, res.Recovered, len(res.Violations))
	for _, v := range res.Violations {
		t.Errorf("violation: %v", v)
	}
	if res.Recovered != res.Explored {
		t.Errorf("recovered %d of %d runs", res.Recovered, res.Explored)
	}
}

// TestExploreDeterminism runs the same bounded exploration twice and
// requires bit-identical results: census, counters and violations.
func TestExploreDeterminism(t *testing.T) {
	opt := Options{Seed: 42, MaxPoints: 10}
	a, err := Explore(StripeReset(), opt)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	b, err := Explore(StripeReset(), opt)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("exploration is nondeterministic:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}

// TestBrokenRecoveryCaughtShrunkReplayed plants an unjournaled garbage
// write in every crash snapshot (an intentionally broken recovery) and
// requires that (1) the checker catches it, (2) the shrinker reduces the
// composed schedule to a minimal one that still fails, and (3) the
// printed replay seed reproduces the same violation deterministically.
func TestBrokenRecoveryCaughtShrunkReplayed(t *testing.T) {
	s := Composed()
	opt := Options{Seed: 3, MaxPoints: 4, Variants: []Variant{VarFlushed}, BreakRecovery: true}
	res, err := Explore(s, opt)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("sabotaged recovery produced no violations; the oracle is blind")
	}
	var target *Violation
	for i := range res.Violations {
		if res.Violations[i].Rule == "unexplained-bytes" {
			target = &res.Violations[i]
			break
		}
	}
	if target == nil {
		t.Fatalf("no unexplained-bytes violation among %d; first: %v",
			len(res.Violations), res.Violations[0])
	}

	repro, err := Shrink(s, *target, opt)
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if repro.KeptOps() >= len(s.Ops) {
		t.Errorf("shrinker removed nothing: kept %d of %d ops", repro.KeptOps(), len(s.Ops))
	}
	t.Logf("shrunk to %d/%d ops: %v", repro.KeptOps(), len(s.Ops), repro.OpsOf(s))
	t.Logf("replay seed: %s", repro.SeedString())

	// The printed seed alone must reproduce the violation — twice, with
	// identical outcomes.
	parsed, err := ParseSeed(repro.SeedString())
	if err != nil {
		t.Fatalf("parse seed: %v", err)
	}
	if !reflect.DeepEqual(parsed, repro) {
		t.Fatalf("seed round-trip mismatch: %+v vs %+v", parsed, repro)
	}
	first, _, err := Replay(parsed)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	second, _, err := Replay(parsed)
	if err != nil {
		t.Fatalf("replay (second): %v", err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("replay is nondeterministic:\nfirst:  %v\nsecond: %v", first, second)
	}
	found := false
	for _, v := range first {
		if v.Rule == target.Rule {
			found = true
		}
	}
	if !found {
		t.Fatalf("replayed run lacks a %q violation: %v", target.Rule, first)
	}
}

// TestSeedStringRoundTrip covers the corners of the replay-seed codec.
func TestSeedStringRoundTrip(t *testing.T) {
	cases := []Repro{
		{Scenario: "stripe-reset", Mask: 0x3ff, Point: "raizn.write.submit", Occ: 2, Variant: VarRand, Seed: 99},
		{Scenario: "composed", Mask: ^uint64(0), Point: "zns.cmd.flush", Occ: 0, Variant: VarFlushed, Seed: -4, Sabotage: true},
	}
	for _, r := range cases {
		got, err := ParseSeed(r.SeedString())
		if err != nil {
			t.Fatalf("%s: %v", r.SeedString(), err)
		}
		if !reflect.DeepEqual(*got, r) {
			t.Fatalf("round trip: %+v != %+v", *got, r)
		}
	}
	for _, bad := range []string{"", "v0:a:1:p#0:all:1", "v1:a:zz:p#0:all:1", "v1:a:1:p:all:1", "v1:a:1:p#0:huh:1"} {
		if _, err := ParseSeed(bad); err == nil {
			t.Errorf("ParseSeed(%q) succeeded, want error", bad)
		}
	}
}
