package chaos

import (
	"fmt"

	"raizn/internal/zns"
)

// Options controls an exploration.
type Options struct {
	// Seed drives every random choice (the rand power-loss variant). The
	// same seed always reproduces the same exploration bit for bit.
	Seed int64
	// Variants limits which power-loss variants run per crash point.
	// Empty means all three.
	Variants []Variant
	// MaxPoints caps how many census crossings are explored; points are
	// sampled evenly across the census. Zero explores every crossing.
	MaxPoints int
	// BreakRecovery plants an unjournaled garbage write in every crash
	// snapshot before recovery runs. Test-only: it must make the checker
	// report a violation at every crash point, proving the oracle can see.
	BreakRecovery bool
}

func (o Options) variants() []Variant {
	if len(o.Variants) > 0 {
		return o.Variants
	}
	return []Variant{VarFlushed, VarAll, VarRand}
}

// Result summarizes an exploration.
type Result struct {
	Census     []CrashPoint // every crossing the scenario makes
	Explored   int          // crash+recover runs performed
	Recovered  int          // runs that recovered with zero violations
	Violations []Violation
}

// Census runs the scenario once, crash-free, and returns the crash points
// it crosses in order. This is the enumeration the explorer targets; the
// CLI prints it so a user can pick crossings to replay.
func Census(s *Scenario, seed int64) ([]CrashPoint, error) {
	census, _, err := runScenario(s, nil, -1, VarFlushed, seed)
	return census, err
}

// occOf returns the ordinal of census[idx] among same-named crossings.
func occOf(census []CrashPoint, idx int) int {
	occ := 0
	for i := 0; i < idx; i++ {
		if census[i].Name == census[idx].Name {
			occ++
		}
	}
	return occ
}

// Explore enumerates the scenario's crash points and, for each selected
// crossing and variant, crashes there, recovers, and checks every
// contract. Violations identify the crash coordinates, so any of them can
// be handed to Shrink / Replay.
func Explore(s *Scenario, opt Options) (*Result, error) {
	census, _, err := runScenario(s, nil, -1, VarFlushed, opt.Seed)
	if err != nil {
		return nil, fmt.Errorf("chaos: census: %w", err)
	}
	res := &Result{Census: census}

	indices := make([]int, 0, len(census))
	if opt.MaxPoints > 0 && opt.MaxPoints < len(census) {
		last := -1
		for i := 0; i < opt.MaxPoints; i++ {
			idx := i * len(census) / opt.MaxPoints
			if idx != last {
				indices = append(indices, idx)
				last = idx
			}
		}
	} else {
		for i := range census {
			indices = append(indices, i)
		}
	}

	for _, idx := range indices {
		occ := occOf(census, idx)
		for _, vr := range opt.variants() {
			res.Explored++
			_, cap, err := runScenario(s, census, idx, vr, opt.Seed)
			if err != nil {
				res.Violations = append(res.Violations, Violation{
					Rule: "nondeterminism", Detail: err.Error(),
					Point: census[idx].Name, Occ: occ, Index: idx, Variant: vr,
				})
				continue
			}
			if opt.BreakRecovery {
				sabotage(s, cap)
			}
			vios := checkRecovery(s, cap)
			for i := range vios {
				vios[i].Point = census[idx].Name
				vios[i].Occ = occ
				vios[i].Index = idx
				vios[i].Variant = vr
			}
			res.Violations = append(res.Violations, vios...)
			if len(vios) == 0 {
				res.Recovered++
			}
		}
	}
	return res, nil
}

// sabotage writes one sector of unjournaled garbage at the write pointer
// of the first writable data zone of the first live clone — a byte no
// durable event explains, which a sound checker must flag. The choice is
// deterministic so a broken-recovery repro replays exactly.
func sabotage(s *Scenario, cap *capture) {
	dataZones := s.Dev.NumZones - s.Vol.ReservedZones()
	for _, c := range cap.clones {
		if c.Failed() {
			continue
		}
		cfg := c.Config()
		for z := 0; z < dataZones; z++ {
			zd := c.Zone(z)
			switch zd.State {
			case zns.ZoneFull, zns.ZoneReadOnly, zns.ZoneOffline:
				continue
			}
			rel := zd.WP - c.ZoneStart(z)
			if rel >= cfg.ZoneCap {
				continue
			}
			buf := make([]byte, cfg.SectorSize)
			for i := range buf {
				buf[i] = 0xA5
			}
			// Payload and wp advance apply at submit; no completion needed.
			c.Write(zd.WP, buf, 0)
			return
		}
	}
}
