package chaos

import (
	"fmt"
	"strings"

	"raizn/internal/obs/flight"
	"raizn/internal/raizn"
)

// Automated incident forensics: every chaos run periodically persists
// its flight recorder through the array's metadata path, so a crash
// capture carries a recent black box on its clones. The functions here
// replay a crash, recover that box from the surviving clones, and
// render the deterministic incident report a real deployment would
// file — trigger, suspect ranking, merged span/journal timeline,
// metric deltas, and the replay seed that reproduces the crash.

// recoverBox pulls the newest persisted flight black box off a crash
// snapshot's clones: devices are scanned in slot order and the first
// intact copy wins. Runs on the capture's clock.
func recoverBox(s *Scenario, cap *capture) ([]byte, bool) {
	var data []byte
	var ok bool
	cap.clk.Run(func() {
		for _, c := range cap.clones {
			if c.Failed() {
				continue
			}
			d, found, err := raizn.RecoverBlackBox(c, s.volConfig())
			if err == nil && found {
				data, ok = d, true
				return
			}
		}
	})
	return data, ok
}

// renderForensics recovers the black box from a crash capture and
// renders the incident report under trig.
func renderForensics(s *Scenario, cap *capture, trig flight.Trigger) (string, error) {
	data, ok := recoverBox(s, cap)
	if !ok {
		return "", fmt.Errorf("chaos: no persisted black box survived the crash at %s", cap.point)
	}
	box, err := flight.Unmarshal(data)
	if err != nil {
		return "", fmt.Errorf("chaos: recovered black box: %w", err)
	}
	var sb strings.Builder
	if err := flight.FromBox(box, &trig).WriteReport(&sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// CrashForensics crashes the scenario at census crossing index with the
// given power-loss variant, recovers the persisted black box from the
// post-crash clones, and renders its incident report. The report is a
// pure function of (scenario, index, variant, seed) — two identically
// seeded calls render byte-identical output, which CI diffs.
func CrashForensics(s *Scenario, index int, vr Variant, opt Options) (string, error) {
	census, _, err := runScenario(s, nil, -1, VarFlushed, opt.Seed)
	if err != nil {
		return "", fmt.Errorf("chaos: census: %w", err)
	}
	if index < 0 || index >= len(census) {
		return "", fmt.Errorf("chaos: crossing %d out of range (census has %d)", index, len(census))
	}
	_, cap, err := runScenario(s, census, index, vr, opt.Seed)
	if err != nil {
		return "", err
	}
	repro := &Repro{
		Scenario: s.Name, Mask: fullMask(len(s.Ops)),
		Point: cap.point.Name, Occ: occOf(census, index),
		Variant: vr, Seed: opt.Seed,
	}
	return renderForensics(s, cap, flight.Trigger{
		Kind: flight.TrigDeviceHealth,
		Detail: fmt.Sprintf("simulated power loss at %s (crossing %d, variant %s)",
			cap.point, index, vr),
		Dev:        cap.point.Src,
		Zone:       cap.point.Zone,
		ReplaySeed: repro.SeedString(),
	})
}

// ForensicsFor renders the incident report for an oracle violation: the
// crash is replayed at the violation's coordinates, the persisted black
// box recovered from the clones, and the report filed under an
// oracle-violation trigger carrying the violated rule and the replay
// seed that reproduces it.
func ForensicsFor(s *Scenario, v Violation, opt Options) (string, error) {
	census, _, err := runScenario(s, nil, -1, VarFlushed, opt.Seed)
	if err != nil {
		return "", fmt.Errorf("chaos: census: %w", err)
	}
	if v.Index < 0 || v.Index >= len(census) {
		return "", fmt.Errorf("chaos: violation crossing %d out of range (census has %d)", v.Index, len(census))
	}
	_, cap, err := runScenario(s, census, v.Index, v.Variant, opt.Seed)
	if err != nil {
		return "", err
	}
	return renderForensics(s, cap, flight.Trigger{
		Kind:       flight.TrigOracle,
		Detail:     fmt.Sprintf("%s: %s", v.Rule, v.Detail),
		Dev:        cap.point.Src,
		Zone:       cap.point.Zone,
		ReplaySeed: ReproFor(s, v, opt).SeedString(),
	})
}
