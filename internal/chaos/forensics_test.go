package chaos

import (
	"strings"
	"testing"
)

// TestCrashForensicsDeterministic is the acceptance property for the
// incident pipeline: the report recovered from a chaos crash-clone's
// black box is byte-identical across two same-seed runs, and carries the
// three kinds of evidence — at least one span, one journal event, one
// metric delta — plus a replay seed for the crash.
func TestCrashForensicsDeterministic(t *testing.T) {
	s := Lookup("composed")
	census, err := Census(s, 1)
	if err != nil {
		t.Fatalf("Census: %v", err)
	}
	// Crash late in the schedule: several persist cadences have passed
	// (so a black box is durably on the first device) and the composed
	// scenario's injected device failure has pushed spans onto the
	// degraded path, where tail sampling always keeps them.
	idx := len(census) * 3 / 4

	r1, err := CrashForensics(s, idx, VarFlushed, Options{Seed: 1})
	if err != nil {
		t.Fatalf("CrashForensics: %v", err)
	}
	r2, err := CrashForensics(s, idx, VarFlushed, Options{Seed: 1})
	if err != nil {
		t.Fatalf("CrashForensics (second run): %v", err)
	}
	if r1 != r2 {
		t.Fatalf("same-seed forensics reports differ:\n%s\n---\n%s", r1, r2)
	}

	for _, want := range []string{
		"incident report",
		"device-health",        // trigger kind for a bare crash capture
		"simulated power loss", // trigger detail
		"replay: v1:composed:", // replay seed for the crash run
		"span",                 // >=1 span in the merged timeline
		"event",                // >=1 journal event
		"metric deltas",        // >=1 metric delta section
	} {
		if !strings.Contains(r1, want) {
			t.Errorf("forensics report missing %q:\n%s", want, r1)
		}
	}
	// The timeline header counts its evidence; both counts must be
	// non-zero (an empty timeline would still satisfy the plain
	// substring checks above).
	if strings.Contains(r1, "(0 spans") || strings.Contains(r1, ", 0 journal events)") {
		t.Errorf("forensics report has an empty timeline:\n%s", r1)
	}
}

// TestCrashForensicsRangeCheck: out-of-range crossings fail cleanly.
func TestCrashForensicsRangeCheck(t *testing.T) {
	s := Lookup("stripe-reset")
	if _, err := CrashForensics(s, 1<<20, VarFlushed, Options{Seed: 1}); err == nil {
		t.Fatal("CrashForensics accepted an out-of-range crossing")
	}
	if _, err := CrashForensics(s, -1, VarFlushed, Options{Seed: 1}); err == nil {
		t.Fatal("CrashForensics accepted a negative crossing")
	}
}
