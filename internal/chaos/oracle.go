package chaos

import (
	"fmt"

	"raizn/internal/obs"
	"raizn/internal/raizn"
	"raizn/internal/zns"
)

// Violation is one contract breach found by the recovery checker.
type Violation struct {
	Rule    string // short rule id, e.g. "unexplained-bytes"
	Detail  string
	Point   string // crash point the snapshot was taken at
	Occ     int    // occurrence of that point name in the census
	Index   int    // census index of the crossing
	Variant Variant
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] at %s#%d (crossing %d, %s): %s",
		v.Rule, v.Point, v.Occ, v.Index, v.Variant, v.Detail)
}

// devJournalState is the journal's view of one device: per zone, the
// highest write pointer any recorded command produced, and whether the
// zone was finished. A crash clone can never hold data beyond it.
type devJournalState struct {
	maxEnd   map[int]int64
	finished map[int]bool
}

// journalView folds the captured event stream into per-device state.
func journalView(events []obs.Event, numDev int) []devJournalState {
	view := make([]devJournalState, numDev)
	for i := range view {
		view[i] = devJournalState{maxEnd: map[int]int64{}, finished: map[int]bool{}}
	}
	for _, e := range events {
		src := int(e.Src)
		if src < 0 || src >= numDev {
			continue // logical-level event
		}
		z := int(e.Zone)
		switch e.Type {
		case obs.EvDevWrite:
			if view[src].maxEnd[z] < e.C {
				view[src].maxEnd[z] = e.C
			}
		case obs.EvZoneReset:
			view[src].maxEnd[z] = 0
			view[src].finished[z] = false
		case obs.EvZoneFinish:
			view[src].finished[z] = true
		}
	}
	return view
}

// checkRecovery mounts the captured crash snapshot and validates every
// recovery contract:
//
//   - J1 "unexplained-bytes": no device zone survives the power cut with
//     a write pointer beyond the highest journaled write (persistence
//     ordering — every surviving byte is explainable by a recorded,
//     submitted command). Checked pre-mount, on the raw clones.
//   - "open-after-cycle": no zone may be open after a power cycle.
//   - "recovery-failed" / "recovery-readonly": the array must mount and
//     stay writable after any single crash.
//   - "lost-durable-data": a zone's recovered write pointer may not fall
//     below its known-durable prefix (flush/FUA/finish completed).
//   - "phantom-data": nor may it exceed everything ever submitted.
//   - "reset-atomicity": a crash during ResetZone leaves the zone either
//     fully reset (mandatory once the reset WAL is durable) or untouched
//     at its pre-reset generation.
//   - "finish-durability": a completed FinishZone survives as a full zone.
//   - "content-mismatch": recovered bytes must match the generation-
//     stamped pattern the workload wrote.
//   - "unexplained-stripe-unit": every recovered logical sector beyond
//     the durable prefix maps (via the stripe layout arithmetic) to a
//     journaled device write covering its stripe unit.
//   - "probe-failed": the recovered array must accept and serve a fresh
//     write.
//
// The returned violations carry only Rule and Detail; the caller stamps
// crash-point coordinates.
func checkRecovery(s *Scenario, cap *capture) []Violation {
	var vios []Violation
	add := func(rule, format string, args ...interface{}) {
		vios = append(vios, Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)})
	}

	// --- Pre-mount: raw clone contracts -----------------------------
	view := journalView(cap.events, len(cap.clones))
	for i, c := range cap.clones {
		descs := c.ReportZones()
		for _, zd := range descs {
			if zd.State == zns.ZoneOpen {
				add("open-after-cycle", "dev %d zone %d open after power cycle", i, zd.Index)
			}
		}
		if c.Failed() || cap.dropped > 0 {
			continue // stale pre-failure state / incomplete journal
		}
		for _, zd := range descs {
			if zd.State == zns.ZoneFull && view[i].finished[zd.Index] {
				// A finished zone reports WP at capacity regardless of how
				// much data it holds; finishing adds no bytes to explain.
				continue
			}
			rel := zd.WP - c.ZoneStart(zd.Index)
			if max := view[i].maxEnd[zd.Index]; rel > max {
				add("unexplained-bytes",
					"dev %d zone %d: wp %d survives but journal explains only %d",
					i, zd.Index, rel, max)
			}
		}
	}

	// --- Mount ------------------------------------------------------
	var live []*zns.Device
	for _, c := range cap.clones {
		if !c.Failed() {
			live = append(live, c)
		}
	}
	if len(cap.clones)-len(live) > 1 {
		add("unmountable", "%d failed devices", len(cap.clones)-len(live))
		return vios
	}
	var vol *raizn.Volume
	var merr error
	cap.clk.Run(func() { vol, merr = raizn.Mount(cap.clk, live, s.volConfig()) })
	if merr != nil {
		add("recovery-failed", "mount: %v", merr)
		return vios
	}
	if vol.ReadOnly() {
		add("recovery-readonly", "array mounted read-only")
	}

	// --- Post-mount: logical contracts vs the workload model --------
	m := cap.model
	ss := vol.SectorSize()
	cap.clk.Run(func() {
		for z := range m.Zones {
			zm := &m.Zones[z]
			zoneStart := int64(z) * m.ZoneSectors
			desc := vol.Zone(z)
			wp := desc.WP - zoneStart

			if zm.Resetting {
				committed := zm.WALDurable || zm.PhysDone
				switch {
				case committed && wp != 0:
					add("reset-atomicity",
						"zone %d: reset WAL durable but zone recovered with wp %d", z, wp)
				case !committed && wp > zm.PreResetWP:
					add("reset-atomicity",
						"zone %d: wp %d beyond pre-reset wp %d", z, wp, zm.PreResetWP)
				case !committed && wp > 0 && !zm.Suspect:
					// Rolled back: surviving prefix must be old-generation.
					checkContent(vol, add, zoneStart, wp, zm.PreResetGen, ss, z)
				}
				continue
			}

			if wp < zm.FlushedWP {
				add("lost-durable-data",
					"zone %d: wp %d below durable prefix %d", z, wp, zm.FlushedWP)
			}
			high := zm.WrittenWP
			if zm.PendingEnd > high {
				high = zm.PendingEnd
			}
			if wp > high && !(zm.Finished || zm.Finishing) {
				add("phantom-data",
					"zone %d: wp %d beyond everything submitted (%d)", z, wp, high)
			}
			if zm.Finished && desc.State != zns.ZoneFull {
				add("finish-durability",
					"zone %d: finished zone recovered in state %v", z, desc.State)
			}

			end := wp
			if end > zm.WrittenWP {
				end = zm.WrittenWP
			}
			if end > 0 && !zm.Suspect {
				checkContent(vol, add, zoneStart, end, zm.Gen, ss, z)
			}

			checkStripeUnits(s, cap, view, add, z, zm, wp, desc)
		}

		probeWrite(vol, m, add, ss)
	})
	return vios
}

// checkContent reads zone-relative [0, end) of the zone starting at
// zoneStart and compares against the generation pattern.
func checkContent(vol *raizn.Volume, add func(string, string, ...interface{}), zoneStart, end int64, gen, ss int, z int) {
	buf := make([]byte, end*int64(ss))
	if err := vol.Read(zoneStart, buf); err != nil {
		add("content-mismatch", "zone %d: read [0,%d): %v", z, end, err)
		return
	}
	want := make([]byte, len(buf))
	fillPattern(want, zoneStart, gen, ss)
	for i := range buf {
		if buf[i] != want[i] {
			add("content-mismatch",
				"zone %d gen %d: byte %d of sector %d differs (got %#x want %#x)",
				z, gen, i%ss, int64(i/ss), buf[i], want[i])
			return
		}
	}
}

// checkStripeUnits asserts persistence ordering at stripe granularity:
// every recovered logical sector beyond the zone's durable prefix must
// map, through the layout arithmetic, to a device zone whose journaled
// write pointer covers it. Skipped when relocation has moved units off
// their arithmetic location or the journal is incomplete.
func checkStripeUnits(s *Scenario, cap *capture, view []devJournalState, add func(string, string, ...interface{}), z int, zm *ZoneModel, wp int64, desc raizn.ZoneDesc) {
	if cap.dropped > 0 || desc.Remapped || zm.Suspect {
		return
	}
	for _, e := range cap.events {
		if e.Type == obs.EvRelocation {
			return
		}
	}
	n := int64(len(cap.clones))
	su := s.Vol.StripeUnitSectors
	stripeSec := su * (n - 1)
	for lba := zm.FlushedWP; lba < wp; {
		st := lba / stripeSec
		inStripe := lba % stripeSec
		u := inStripe / su
		intra := inStripe % su
		step := su - intra
		if lba+step > wp {
			step = wp - lba
		}
		// Left-symmetric rotation (layout.dataDev).
		pdev := n - 1 - (st+int64(z))%n
		dev := int((pdev + 1 + u) % n)
		if !cap.model.FailedDevs[dev] {
			needEnd := st*su + intra + step
			if max := view[dev].maxEnd[z]; max < needEnd && !view[dev].finished[z] {
				// §5.3 write-hole closure: a data unit whose device
				// command was lost in the crash is still explainable when
				// the stripe's other n-1 arithmetic locations — every
				// sibling unit and the rotated parity unit — are
				// journaled; recovery XORs the unit back, so the
				// recovered sectors trace to journaled commands. Arises
				// with multi-stripe writes, where per-device coalescing
				// lets a stripe's parity survive a crash its data didn't.
				reconstructable := true
				for d2 := 0; d2 < int(n); d2++ {
					if d2 == dev {
						continue
					}
					if view[d2].maxEnd[z] < needEnd && !view[d2].finished[z] {
						reconstructable = false
						break
					}
				}
				if !reconstructable {
					add("unexplained-stripe-unit",
						"zone %d sector %d..%d: dev %d zone wp in journal is %d, need %d",
						z, lba, lba+step, dev, max, needEnd)
					return
				}
			}
		}
		lba += step
	}
}

// probeWrite appends a fresh write to the first writable zone of the
// recovered array and reads it back. Must run inside cap.clk.Run.
func probeWrite(vol *raizn.Volume, m *Model, add func(string, string, ...interface{}), ss int) {
	for z := range m.Zones {
		zm := &m.Zones[z]
		if zm.Finished || zm.Finishing || zm.Resetting || zm.Suspect {
			continue
		}
		desc := vol.Zone(z)
		wp := desc.WP - int64(z)*m.ZoneSectors
		if wp < 0 || wp >= m.ZoneSectors {
			continue
		}
		n := m.ZoneSectors - wp
		if n > 16 {
			n = 16
		}
		buf := make([]byte, n*int64(ss))
		for i := range buf {
			buf[i] = byte(0x5A ^ i)
		}
		lba := desc.WP
		if err := vol.Write(lba, buf, zns.FUA); err != nil {
			add("probe-failed", "zone %d: write at %d: %v", z, lba, err)
			return
		}
		got := make([]byte, len(buf))
		if err := vol.Read(lba, got); err != nil {
			add("probe-failed", "zone %d: read-back at %d: %v", z, lba, err)
			return
		}
		for i := range got {
			if got[i] != buf[i] {
				add("probe-failed", "zone %d: read-back byte %d differs", z, i)
				return
			}
		}
		return // one probe is enough
	}
}
