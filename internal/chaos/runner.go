package chaos

import (
	"fmt"
	"math/rand"
	"sync"

	"raizn/internal/obs"
	"raizn/internal/obs/flight"
	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// CrashPoint is one crossing of a named instrumentation point, as
// recorded by the census run. The explorer crashes the scenario at each
// one in turn.
type CrashPoint struct {
	Name string // dotted point name (obs.HookPoint taxonomy)
	Src  int    // device slot, or obs.SrcLogical
	Zone int    // zone the point concerns, or -1
	Arg  int64  // point-specific detail
}

func (p CrashPoint) String() string {
	return fmt.Sprintf("%s src=%d z=%d arg=%d", p.Name, p.Src, p.Zone, p.Arg)
}

// Variant selects how much submitted-but-unflushed data survives the
// simulated power loss at a crash point.
type Variant int

const (
	// VarFlushed keeps only each zone's persisted prefix (the most
	// pessimistic legal outcome).
	VarFlushed Variant = iota
	// VarAll keeps everything submitted (the most optimistic outcome).
	VarAll
	// VarRand draws a legal cut per zone from a seeded source.
	VarRand
	numVariants
)

var variantNames = [numVariants]string{"flushed", "all", "rand"}

func (v Variant) String() string {
	if v < 0 || v >= numVariants {
		return fmt.Sprintf("variant(%d)", int(v))
	}
	return variantNames[v]
}

// parseVariant is the inverse of Variant.String.
func parseVariant(s string) (Variant, error) {
	for i, n := range variantNames {
		if n == s {
			return Variant(i), nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown variant %q", s)
}

// capture is the frozen state of a run at the instant of a crash: the
// post-power-loss device clones (bound to a fresh clock recovery will run
// on), the event journal up to the crash, and the workload model.
type capture struct {
	clk     *vclock.Clock
	clones  []*zns.Device
	events  []obs.Event
	dropped uint64
	model   *Model
	point   CrashPoint
	index   int // census index of the crossing
}

// runCtx is the mutable state of one scenario execution. The hook runs on
// workload and completion goroutines; rc.mu serializes it against the op
// loop (the virtual clock already orders them deterministically, the lock
// is for memory safety).
type runCtx struct {
	s    *Scenario
	clk  *vclock.Clock
	devs []*zns.Device
	vol  *raizn.Volume
	jrn  *obs.Journal
	rec  *flight.Recorder
	seed int64

	mu       sync.Mutex
	model    *Model
	census   []CrashPoint // target < 0: crossings recorded here
	expect   []CrashPoint // target >= 0: census to validate against
	target   int          // census index to crash at; -1 = census mode
	variant  Variant
	n        int // crossings so far
	cap      *capture
	stop     bool
	runErr   error
	faultOcc map[string]int
}

func (rc *runCtx) setErrLocked(err error) {
	if rc.runErr == nil && err != nil {
		rc.runErr = err
		rc.stop = true
	}
}

func (rc *runCtx) stopped() bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.stop
}

// hook is the single crash-point hook attached to the volume and every
// device. It counts crossings, validates determinism against the census,
// captures the crash snapshot at the target crossing, applies anchored
// faults, and feeds the few model fields that only hooks can see.
func (rc *runCtx) hook(p obs.HookPoint) {
	rc.mu.Lock()
	// Model updates driven by sub-op durability boundaries.
	if p.Zone >= 0 && p.Zone < len(rc.model.Zones) {
		zm := &rc.model.Zones[p.Zone]
		switch p.Name {
		case "raizn.write.done":
			if zm.AckedWP < p.Arg {
				zm.AckedWP = p.Arg
			}
		case "raizn.reset.wal":
			zm.WALDurable = true
		case "raizn.reset.phys":
			zm.PhysDone = true
		}
	}

	idx := rc.n
	rc.n++
	cp := CrashPoint{Name: p.Name, Src: p.Src, Zone: p.Zone, Arg: p.Arg}
	if rc.target < 0 {
		rc.census = append(rc.census, cp)
	} else if rc.runErr == nil {
		if idx < len(rc.expect) && rc.expect[idx].Name != p.Name {
			rc.setErrLocked(fmt.Errorf(
				"chaos: nondeterministic crossing %d: census saw %q, run saw %q",
				idx, rc.expect[idx].Name, p.Name))
		} else if idx == rc.target && rc.cap == nil {
			rc.captureLocked(cp, idx)
			rc.stop = true
		}
	}

	// Anchored faults fire on the occ-th crossing of their point name,
	// after any capture at the same crossing (the crash sees the world
	// as it was when the point was reached).
	occ := rc.faultOcc[p.Name]
	rc.faultOcc[p.Name] = occ + 1
	var fire []Fault
	for _, f := range rc.s.Faults {
		if f.Point == p.Name && f.Occ == occ {
			fire = append(fire, f)
		}
	}
	rc.mu.Unlock()
	for _, f := range fire {
		rc.applyFault(f)
	}
}

// captureLocked snapshots every device with the variant's power-loss cut
// applied, plus the journal and model. Caller holds rc.mu; device locks
// are free (hooks fire outside them).
func (rc *runCtx) captureLocked(cp CrashPoint, idx int) {
	clk := vclock.New()
	clones := make([]*zns.Device, len(rc.devs))
	for i, d := range rc.devs {
		var rng *rand.Rand
		var cuts map[int]int64
		switch rc.variant {
		case VarAll:
			cuts = make(map[int]int64, d.Config().NumZones)
			for z := 0; z < d.Config().NumZones; z++ {
				cuts[z] = 1 << 62 // clamped to the zone's submitted wp
			}
		case VarRand:
			rng = rand.New(rand.NewSource(rc.seed*1000003 + int64(idx)*257 + int64(i)))
		}
		clones[i] = d.CrashClone(clk, rng, cuts)
	}
	rc.cap = &capture{
		clk:     clk,
		clones:  clones,
		events:  rc.jrn.Events(),
		dropped: rc.jrn.Dropped(),
		model:   rc.model.clone(),
		point:   cp,
		index:   idx,
	}
}

// persistBox snapshots the flight recorder and writes it through the
// raizn metadata path. Failures are non-fatal: a degraded array keeps
// running without a flight log rather than aborting the workload.
func (rc *runCtx) persistBox() {
	data, err := rc.rec.Snapshot().Marshal()
	if err != nil {
		return
	}
	_ = rc.vol.PersistBlackBox(data)
}

// applyFault applies an anchored fault to the live run. Errors are
// ignored: a shrunken schedule may have already removed the op that made
// the fault applicable (e.g. the device is already failed).
func (rc *runCtx) applyFault(f Fault) {
	switch f.Kind {
	case OpFailDevice:
		if rc.vol.FailDevice(f.Dev) == nil {
			rc.mu.Lock()
			rc.model.FailedDevs[f.Dev] = true
			rc.mu.Unlock()
		}
	case OpInjectReadError:
		rc.devs[f.Dev].InjectReadError(f.Sector)
	case OpCorruptSector:
		if rc.devs[f.Dev].CorruptSector(f.Sector) == nil {
			rc.markSuspect(f.Sector)
		}
	}
}

// markSuspect flags the logical zone backed by the physical zone holding
// the device sector (data zones map 1:1; metadata zones have no logical
// zone and are skipped).
func (rc *runCtx) markSuspect(sector int64) {
	z := int(sector / rc.s.Dev.ZoneSize)
	rc.mu.Lock()
	if z >= 0 && z < len(rc.model.Zones) {
		rc.model.Zones[z].Suspect = true
	}
	rc.mu.Unlock()
}

// runScenario executes the scenario once on a fresh array. With target <
// 0 it returns the census of crash points crossed. With target >= 0 it
// validates crossings against expect, captures a crash snapshot at the
// target crossing, and stops the workload at the next op boundary.
func runScenario(s *Scenario, expect []CrashPoint, target int, variant Variant, seed int64) ([]CrashPoint, *capture, error) {
	clk := vclock.New()
	devs := make([]*zns.Device, s.NumDev)
	for i := range devs {
		devs[i] = zns.NewDevice(clk, s.Dev)
	}
	jrn := obs.NewJournal(clk, obs.JournalConfig{Capacity: 1 << 15})
	jrn.Enable() // before Create, so array-setup IO is explainable too
	cfg := s.volConfig()
	cfg.Journal = jrn
	// Every scenario flies with the full black-box stack: metrics
	// registry, enabled tracer, and a flight recorder tail-sampling the
	// traffic. The recorder's state is periodically persisted through the
	// array's metadata path (see the op loop below), so any crash capture
	// can recover a recent black box from the surviving clones.
	reg := obs.NewRegistry()
	tr := obs.NewTracer(clk, obs.Config{SinkCapacity: 256})
	tr.Enable()
	cfg.Metrics = reg
	cfg.Tracer = tr

	var vol *raizn.Volume
	var cerr error
	clk.Run(func() { vol, cerr = raizn.Create(clk, devs, cfg) })
	if cerr != nil {
		return nil, nil, fmt.Errorf("chaos: create: %w", cerr)
	}

	rec := flight.New(flight.Config{
		Clock: clk, Registry: reg, Journal: jrn, Label: s.Name,
		Degraded: func() bool { return vol.Degraded() >= 0 },
		// Chaos runs are short; start latency-based tail sampling almost
		// immediately so crash captures carry span evidence.
		MinSamples: 8,
	})
	tr.SetObserver(rec)

	rc := &runCtx{
		s: s, clk: clk, devs: devs, vol: vol, jrn: jrn, rec: rec, seed: seed,
		model: &Model{
			ZoneSectors: vol.ZoneSectors(),
			Zones:       make([]ZoneModel, vol.NumZones()),
			FailedDevs:  make([]bool, s.NumDev),
		},
		expect: expect, target: target, variant: variant,
		faultOcc: make(map[string]int),
	}
	vol.AttachHook(rc.hook)
	for i, d := range devs {
		d.AttachHook(rc.hook, i)
	}

	// Persist the black box a few times across the schedule, so crashes
	// anywhere past the first quarter recover a recent one. The cadence
	// is a pure function of the op count — census and crash runs persist
	// at identical crossings, keeping the census valid.
	persistEvery := len(s.Ops) / 4
	if persistEvery < 1 {
		persistEvery = 1
	}
	clk.Run(func() {
		for i, op := range s.Ops {
			if rc.stopped() {
				return
			}
			rc.applyOp(op)
			rec.Poll() // keep metric series moving between spans
			if (i+1)%persistEvery == 0 && !rc.stopped() {
				rc.persistBox()
			}
		}
	})

	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.runErr != nil {
		return rc.census, nil, rc.runErr
	}
	if target >= 0 && rc.cap == nil {
		return rc.census, nil, fmt.Errorf(
			"chaos: target crossing %d never reached (run crossed %d points)", target, rc.n)
	}
	return rc.census, rc.cap, nil
}

// applyOp executes one workload step against the live volume and keeps
// the model in sync. Model fields are touched only under rc.mu; the
// blocking volume call runs unlocked (hooks take rc.mu re-entrantly
// otherwise).
func (rc *runCtx) applyOp(op Op) {
	switch op.Kind {
	case OpWrite:
		rc.mu.Lock()
		zm := &rc.model.Zones[op.Zone]
		start := zm.WrittenWP
		n := op.N
		if rem := rc.model.ZoneSectors - start; n > rem {
			n = rem
		}
		if n <= 0 || zm.Finished || zm.Resetting {
			rc.mu.Unlock()
			return
		}
		gen := zm.Gen
		zm.PendingEnd = start + n
		zm.WrittenWP = start + n
		rc.mu.Unlock()

		ss := rc.vol.SectorSize()
		buf := make([]byte, n*int64(ss))
		lba := int64(op.Zone)*rc.model.ZoneSectors + start
		fillPattern(buf, lba, gen, ss)
		err := rc.vol.Write(lba, buf, op.Flags)

		rc.mu.Lock()
		zm = &rc.model.Zones[op.Zone]
		zm.PendingEnd = 0
		if err != nil {
			rc.setErrLocked(fmt.Errorf("chaos: %s: %w", op, err))
		} else {
			if zm.AckedWP < start+n {
				zm.AckedWP = start + n
			}
			if op.Flags&(zns.FUA|zns.Preflush) != 0 && zm.FlushedWP < start+n {
				zm.FlushedWP = start + n
			}
		}
		rc.mu.Unlock()

	case OpFlush:
		err := rc.vol.Flush()
		rc.mu.Lock()
		if err != nil {
			rc.setErrLocked(fmt.Errorf("chaos: flush: %w", err))
		} else {
			for z := range rc.model.Zones {
				zm := &rc.model.Zones[z]
				if zm.FlushedWP < zm.WrittenWP {
					zm.FlushedWP = zm.WrittenWP
				}
				if zm.RepairPending {
					zm.Suspect, zm.RepairPending = false, false
				}
			}
		}
		rc.mu.Unlock()

	case OpReset:
		rc.mu.Lock()
		zm := &rc.model.Zones[op.Zone]
		zm.Resetting = true
		zm.WALDurable, zm.PhysDone = false, false
		zm.PreResetWP, zm.PreResetGen = zm.WrittenWP, zm.Gen
		rc.mu.Unlock()

		err := rc.vol.ResetZone(op.Zone)

		rc.mu.Lock()
		zm = &rc.model.Zones[op.Zone]
		zm.Resetting = false
		if err != nil {
			rc.setErrLocked(fmt.Errorf("chaos: %s: %w", op, err))
		} else {
			zm.Gen++
			zm.WrittenWP, zm.AckedWP, zm.FlushedWP, zm.PendingEnd = 0, 0, 0, 0
			zm.Finished, zm.Suspect, zm.RepairPending = false, false, false
			zm.WALDurable, zm.PhysDone = false, false
		}
		rc.mu.Unlock()

	case OpFinish:
		rc.mu.Lock()
		rc.model.Zones[op.Zone].Finishing = true
		rc.mu.Unlock()

		err := rc.vol.FinishZone(op.Zone)

		rc.mu.Lock()
		zm := &rc.model.Zones[op.Zone]
		zm.Finishing = false
		if err != nil {
			rc.setErrLocked(fmt.Errorf("chaos: %s: %w", op, err))
		} else {
			zm.Finished = true
			zm.AckedWP = zm.WrittenWP
			if zm.FlushedWP < zm.WrittenWP {
				zm.FlushedWP = zm.WrittenWP
			}
		}
		rc.mu.Unlock()

	case OpScrubZone:
		ok := true
		for st := int64(0); st < rc.vol.StripesPerZone(); st++ {
			if rc.stopped() {
				return
			}
			if _, err := rc.vol.ScrubStripe(op.Zone, st, true); err != nil {
				rc.mu.Lock()
				rc.setErrLocked(fmt.Errorf("chaos: %s stripe %d: %w", op, st, err))
				rc.mu.Unlock()
				ok = false
				break
			}
		}
		if ok {
			rc.mu.Lock()
			zm := &rc.model.Zones[op.Zone]
			if zm.Suspect {
				zm.RepairPending = true // durable only after the next flush
			}
			rc.mu.Unlock()
		}

	case OpMaintain:
		if err := rc.vol.Maintain(); err != nil {
			rc.mu.Lock()
			rc.setErrLocked(fmt.Errorf("chaos: maintain: %w", err))
			rc.mu.Unlock()
		}

	case OpFailDevice:
		if err := rc.vol.FailDevice(op.Dev); err != nil {
			rc.mu.Lock()
			rc.setErrLocked(fmt.Errorf("chaos: %s: %w", op, err))
			rc.mu.Unlock()
		} else {
			rc.mu.Lock()
			rc.model.FailedDevs[op.Dev] = true
			rc.mu.Unlock()
		}

	case OpInjectReadError:
		if err := rc.devs[op.Dev].InjectReadError(op.Sector); err != nil {
			rc.mu.Lock()
			rc.setErrLocked(fmt.Errorf("chaos: %s: %w", op, err))
			rc.mu.Unlock()
		}

	case OpCorruptSector:
		if err := rc.devs[op.Dev].CorruptSector(op.Sector); err != nil {
			rc.mu.Lock()
			rc.setErrLocked(fmt.Errorf("chaos: %s: %w", op, err))
			rc.mu.Unlock()
		} else {
			rc.markSuspect(op.Sector)
		}

	case OpReadCheck:
		rc.mu.Lock()
		zm := rc.model.Zones[op.Zone]
		rc.mu.Unlock()
		if zm.AckedWP == 0 || zm.Suspect {
			return
		}
		ss := rc.vol.SectorSize()
		buf := make([]byte, zm.AckedWP*int64(ss))
		lba := int64(op.Zone) * rc.model.ZoneSectors
		if err := rc.vol.Read(lba, buf); err != nil {
			rc.mu.Lock()
			rc.setErrLocked(fmt.Errorf("chaos: %s: %w", op, err))
			rc.mu.Unlock()
			return
		}
		want := make([]byte, len(buf))
		fillPattern(want, lba, zm.Gen, ss)
		for i := range buf {
			if buf[i] != want[i] {
				rc.mu.Lock()
				rc.setErrLocked(fmt.Errorf(
					"chaos: %s: content mismatch at byte %d (sector %d)",
					op, i, lba+int64(i/ss)))
				rc.mu.Unlock()
				return
			}
		}
	}
}
