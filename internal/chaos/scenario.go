// Package chaos is the deterministic crash/fault-space explorer for a
// RAIZN array. A Scenario describes a workload schedule (writes, flushes,
// resets, scrubs) composed with fault events (device failure, latent
// errors, slowdowns) anchored to named crash points. The explorer runs the
// scenario once to enumerate every crash point it crosses (the census),
// then re-runs it crashing at each crossing: devices are snapshotted with
// a power-loss cut applied (zns.Device.CrashClone), the array is
// remounted from the snapshot on a fresh virtual clock, and the recovery
// checker validates the §5 contracts against the scenario's own model and
// the event journal captured at the instant of the crash (oracle.go).
// A failing composed schedule shrinks to a minimal repro that replays
// deterministically from a printable seed string (shrink.go).
//
// Everything runs on virtual clocks, so the whole exploration is
// bit-reproducible: same scenario + seed => same census, same clones,
// same verdicts.
package chaos

import (
	"fmt"
	"sort"
	"sync"

	"raizn/internal/raizn"
	"raizn/internal/zns"
)

// OpKind enumerates workload steps.
type OpKind int

const (
	// OpWrite appends N sectors of generation-stamped pattern data to
	// logical zone Zone (sequential, at the model's write pointer).
	OpWrite OpKind = iota
	// OpFlush persists all submitted data (volume-level flush).
	OpFlush
	// OpReset resets logical zone Zone (WAL + per-device resets + gen++).
	OpReset
	// OpFinish finishes logical zone Zone (seals tail parity).
	OpFinish
	// OpScrubZone scrubs every stripe of logical zone Zone with repair on.
	OpScrubZone
	// OpMaintain runs metadata GC on every device (GC pressure).
	OpMaintain
	// OpFailDevice fails device Dev (degraded mode from here on).
	OpFailDevice
	// OpInjectReadError marks absolute device sector Sector on device Dev
	// as a latent read error.
	OpInjectReadError
	// OpCorruptSector flips a bit of Sector on device Dev (silent rot).
	// The containing logical zone's content checks are suspended.
	OpCorruptSector
	// OpReadCheck reads logical zone Zone's acknowledged prefix back and
	// verifies the pattern (mid-scenario read path + read-repair traffic).
	OpReadCheck
)

var opNames = map[OpKind]string{
	OpWrite: "write", OpFlush: "flush", OpReset: "reset", OpFinish: "finish",
	OpScrubZone: "scrub", OpMaintain: "maintain", OpFailDevice: "fail-dev",
	OpInjectReadError: "read-err", OpCorruptSector: "corrupt", OpReadCheck: "read-check",
}

// Op is one workload step of a scenario.
type Op struct {
	Kind   OpKind
	Zone   int      // logical zone (Write/Reset/Finish/Scrub/ReadCheck)
	N      int64    // sectors (Write)
	Flags  zns.Flag // write flags (Write)
	Dev    int      // device slot (FailDevice/InjectReadError/CorruptSector)
	Sector int64    // absolute device sector (InjectReadError/CorruptSector)
}

func (o Op) String() string {
	switch o.Kind {
	case OpWrite:
		return fmt.Sprintf("write(z%d,%d,%d)", o.Zone, o.N, o.Flags)
	case OpFailDevice:
		return fmt.Sprintf("fail-dev(%d)", o.Dev)
	case OpInjectReadError, OpCorruptSector:
		return fmt.Sprintf("%s(d%d,s%d)", opNames[o.Kind], o.Dev, o.Sector)
	case OpFlush, OpMaintain:
		return opNames[o.Kind]
	default:
		return fmt.Sprintf("%s(z%d)", opNames[o.Kind], o.Zone)
	}
}

// Fault is a fault event anchored to a named crash point: when the run
// crosses Point for the Occ-th time (0-based, counted per name), the
// fault is applied inline. This is how composed schedules place "device
// dies mid-submit" precisely rather than at an op boundary.
type Fault struct {
	Point  string // crash-point name, e.g. "raizn.write.submit"
	Occ    int    // occurrence index among crossings of that name
	Kind   OpKind // OpFailDevice, OpInjectReadError or OpCorruptSector
	Dev    int
	Sector int64
}

// Scenario is a complete, self-contained chaos schedule.
type Scenario struct {
	Name   string
	NumDev int
	Dev    zns.Config
	Vol    raizn.Config // observability fields are overridden by the runner
	Ops    []Op
	Faults []Fault
}

// volConfig returns the scenario's volume config with the runner-owned
// observability plumbing cleared.
func (s *Scenario) volConfig() raizn.Config {
	cfg := s.Vol
	cfg.Metrics, cfg.Tracer, cfg.Journal = nil, nil, nil
	return cfg
}

// Builder assembles a Scenario.
type Builder struct{ s Scenario }

// New starts a scenario with the default test geometry: 5 devices of 8
// zones (160/128 sectors), 16-sector stripe units — the same scale the
// raizn unit tests use, small enough that hundreds of crash-point runs
// stay cheap.
func New(name string) *Builder {
	dc := zns.DefaultConfig()
	dc.NumZones = 8
	dc.ZoneSize = 160
	dc.ZoneCap = 128
	dc.MaxOpenZones = 8
	dc.MaxActiveZones = 10
	b := &Builder{s: Scenario{Name: name, NumDev: 5, Dev: dc}}
	b.s.Vol = raizn.Config{StripeUnitSectors: 16, MetadataZones: 3, StripeBuffers: 4}
	return b
}

// Devices overrides the device count and configuration.
func (b *Builder) Devices(n int, cfg zns.Config) *Builder {
	b.s.NumDev, b.s.Dev = n, cfg
	return b
}

// Volume overrides the volume configuration (observability fields are
// ignored; the runner owns them).
func (b *Builder) Volume(cfg raizn.Config) *Builder { b.s.Vol = cfg; return b }

// Write appends n sectors of pattern data to logical zone z.
func (b *Builder) Write(z int, n int64) *Builder {
	b.s.Ops = append(b.s.Ops, Op{Kind: OpWrite, Zone: z, N: n})
	return b
}

// WriteFUA is Write with the FUA flag (durable on completion).
func (b *Builder) WriteFUA(z int, n int64) *Builder {
	b.s.Ops = append(b.s.Ops, Op{Kind: OpWrite, Zone: z, N: n, Flags: zns.FUA})
	return b
}

// Flush persists all submitted data.
func (b *Builder) Flush() *Builder { b.s.Ops = append(b.s.Ops, Op{Kind: OpFlush}); return b }

// Reset resets logical zone z.
func (b *Builder) Reset(z int) *Builder {
	b.s.Ops = append(b.s.Ops, Op{Kind: OpReset, Zone: z})
	return b
}

// Finish finishes logical zone z.
func (b *Builder) Finish(z int) *Builder {
	b.s.Ops = append(b.s.Ops, Op{Kind: OpFinish, Zone: z})
	return b
}

// Scrub scrubs every stripe of logical zone z with repair enabled.
func (b *Builder) Scrub(z int) *Builder {
	b.s.Ops = append(b.s.Ops, Op{Kind: OpScrubZone, Zone: z})
	return b
}

// Maintain runs metadata GC on every device.
func (b *Builder) Maintain() *Builder { b.s.Ops = append(b.s.Ops, Op{Kind: OpMaintain}); return b }

// FailDevice fails device dev at this point of the schedule.
func (b *Builder) FailDevice(dev int) *Builder {
	b.s.Ops = append(b.s.Ops, Op{Kind: OpFailDevice, Dev: dev})
	return b
}

// ReadError injects a latent read error at the absolute device sector.
func (b *Builder) ReadError(dev int, sector int64) *Builder {
	b.s.Ops = append(b.s.Ops, Op{Kind: OpInjectReadError, Dev: dev, Sector: sector})
	return b
}

// Corrupt flips a bit of the absolute device sector (silent rot). The
// logical zone backed by that physical zone has its content checks
// suspended until a repairing scrub or reset.
func (b *Builder) Corrupt(dev int, sector int64) *Builder {
	b.s.Ops = append(b.s.Ops, Op{Kind: OpCorruptSector, Dev: dev, Sector: sector})
	return b
}

// ReadCheck verifies logical zone z's acknowledged prefix mid-scenario.
func (b *Builder) ReadCheck(z int) *Builder {
	b.s.Ops = append(b.s.Ops, Op{Kind: OpReadCheck, Zone: z})
	return b
}

// FaultAt anchors a fault event to the occ-th crossing of the named
// crash point.
func (b *Builder) FaultAt(point string, occ int, f Fault) *Builder {
	f.Point, f.Occ = point, occ
	b.s.Faults = append(b.s.Faults, f)
	return b
}

// Build finalizes the scenario. Scenarios are capped at 64 ops so a
// shrinker repro's kept-op set encodes as one hex mask.
func (b *Builder) Build() *Scenario {
	if len(b.s.Ops) > 64 {
		panic("chaos: scenario exceeds 64 ops")
	}
	s := b.s
	return &s
}

// --- Registry -------------------------------------------------------

var (
	regMu    sync.Mutex
	registry = map[string]*Scenario{}
)

// Register adds a named scenario to the global registry (CLI lookup).
func Register(s *Scenario) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[s.Name] = s
}

// Lookup returns the named scenario, or nil.
func Lookup(name string) *Scenario {
	regMu.Lock()
	defer regMu.Unlock()
	return registry[name]
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// --- Workload model --------------------------------------------------

// ZoneModel is the scenario runner's ground truth for one logical zone:
// what was written (and with which generation stamp), what was
// acknowledged, and what is known durable. The oracle compares recovered
// state against these bounds.
type ZoneModel struct {
	Gen         int   // content generation; bumped per completed reset
	WrittenWP   int64 // end of the last write accepted by the volume
	AckedWP     int64 // end of the last write whose completion fired
	FlushedWP   int64 // durable lower bound (flush/FUA/finish completed)
	PendingEnd  int64 // claim of an in-flight write (0 when idle)
	Resetting   bool  // a ResetZone call is in flight
	WALDurable  bool  // the in-flight reset's WAL is on media
	PhysDone    bool  // the in-flight reset finished all device resets
	PreResetWP  int64 // WrittenWP at reset start
	PreResetGen int   // Gen at reset start
	Finishing   bool  // a FinishZone call is in flight
	Finished    bool  // FinishZone completed
	Suspect     bool  // content corrupted by fault injection; skip pattern checks
	// RepairPending: a scrub repaired the corruption, but the repair
	// (relocated data + its metadata record) is not durable until the
	// next flush — a power loss before then legally resurfaces the rot,
	// so Suspect stays set until a flush completes.
	RepairPending bool
}

// Model is the whole-array ground truth maintained by the runner.
type Model struct {
	ZoneSectors int64
	Zones       []ZoneModel
	FailedDevs  []bool
}

func (m *Model) clone() *Model {
	c := &Model{ZoneSectors: m.ZoneSectors}
	c.Zones = append([]ZoneModel(nil), m.Zones...)
	c.FailedDevs = append([]bool(nil), m.FailedDevs...)
	return c
}

// fillPattern stamps buf with the deterministic content of [lba,
// lba+len/ss) at generation gen. Every byte depends on its sector, its
// offset, and the generation, so stale data from before a zone reset can
// never pass a content check for the current generation.
func fillPattern(buf []byte, lba int64, gen int, ss int) {
	g := byte(gen*131 + 17)
	for i := range buf {
		sec := lba + int64(i/ss)
		buf[i] = byte(sec) ^ byte(sec>>8) ^ byte(i%ss) ^ g
	}
}
