package chaos

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Repro pins one failing crash+recover run: a subset of the scenario's
// ops (Mask), the crash coordinates, the power-loss variant and the seed.
// Its SeedString round-trips through ParseSeed, so a failure printed by
// the explorer or shrinker replays bit for bit from the string alone.
type Repro struct {
	Scenario string  // registered scenario name
	Mask     uint64  // bit i set = op i of the scenario is kept
	Point    string  // crash-point name
	Occ      int     // occurrence of that name in the (masked) census
	Variant  Variant // power-loss variant
	Seed     int64
	Sabotage bool // plant the test-only unjournaled write before recovery
}

// SeedString encodes the repro as a single printable token.
func (r *Repro) SeedString() string {
	s := fmt.Sprintf("v1:%s:%x:%s#%d:%s:%d",
		r.Scenario, r.Mask, r.Point, r.Occ, r.Variant, r.Seed)
	if r.Sabotage {
		s += ":sab"
	}
	return s
}

// ParseSeed decodes a SeedString.
func ParseSeed(s string) (*Repro, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 6 || parts[0] != "v1" {
		return nil, fmt.Errorf("chaos: malformed replay seed %q", s)
	}
	r := &Repro{Scenario: parts[1]}
	mask, err := strconv.ParseUint(parts[2], 16, 64)
	if err != nil {
		return nil, fmt.Errorf("chaos: replay seed mask: %w", err)
	}
	r.Mask = mask
	hash := strings.LastIndex(parts[3], "#")
	if hash < 0 {
		return nil, fmt.Errorf("chaos: replay seed point %q lacks #occ", parts[3])
	}
	r.Point = parts[3][:hash]
	if r.Occ, err = strconv.Atoi(parts[3][hash+1:]); err != nil {
		return nil, fmt.Errorf("chaos: replay seed occurrence: %w", err)
	}
	if r.Variant, err = parseVariant(parts[4]); err != nil {
		return nil, err
	}
	if r.Seed, err = strconv.ParseInt(parts[5], 10, 64); err != nil {
		return nil, fmt.Errorf("chaos: replay seed value: %w", err)
	}
	r.Sabotage = len(parts) > 6 && parts[6] == "sab"
	return r, nil
}

// fullMask returns the mask keeping all n ops.
func fullMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

// maskScenario returns a copy of s keeping only the ops whose mask bit is
// set. Anchored faults are kept verbatim (they simply stop firing if
// their crossing disappears).
func maskScenario(s *Scenario, mask uint64) *Scenario {
	sub := *s
	sub.Ops = nil
	for i, op := range s.Ops {
		if mask&(1<<uint(i)) != 0 {
			sub.Ops = append(sub.Ops, op)
		}
	}
	return &sub
}

// OpsOf lists the ops a repro keeps, for printing.
func (r *Repro) OpsOf(s *Scenario) []Op {
	return maskScenario(s, r.Mask).Ops
}

// ReproFor builds the replay repro for a violation reported by Explore on
// the full (unmasked) scenario with the given options: the printed seed
// string re-runs exactly that crash+recover.
func ReproFor(s *Scenario, v Violation, opt Options) *Repro {
	return &Repro{
		Scenario: s.Name,
		Mask:     fullMask(len(s.Ops)),
		Point:    v.Point,
		Occ:      v.Occ,
		Variant:  v.Variant,
		Seed:     opt.Seed,
		Sabotage: opt.BreakRecovery,
	}
}

// runRepro executes the repro against the masked scenario: census, crash
// at the occ-th crossing of the point, optional sabotage, full recovery
// check. occ < 0 means "any occurrence": each is tried in order and the
// first producing a violation with matchRule ("" = any) wins. Returns the
// stamped violations of the chosen run and the occurrence used, or ok =
// false if no tried occurrence produced a matching violation.
func runRepro(s *Scenario, r *Repro, occ int, matchRule string) (vios []Violation, usedOcc int, ok bool) {
	sub := maskScenario(s, r.Mask)
	census, _, err := runScenario(sub, nil, -1, r.Variant, r.Seed)
	if err != nil {
		return nil, 0, false // masked schedule no longer runs cleanly
	}
	seen := -1
	for idx, cp := range census {
		if cp.Name != r.Point {
			continue
		}
		seen++
		if occ >= 0 && seen != occ {
			continue
		}
		_, cap, err := runScenario(sub, census, idx, r.Variant, r.Seed)
		if err != nil {
			if occ >= 0 {
				return nil, seen, false
			}
			continue
		}
		if r.Sabotage {
			sabotage(sub, cap)
		}
		got := checkRecovery(sub, cap)
		for i := range got {
			got[i].Point = cp.Name
			got[i].Occ = seen
			got[i].Index = idx
			got[i].Variant = r.Variant
		}
		matched := false
		for _, v := range got {
			if matchRule == "" || v.Rule == matchRule {
				matched = true
				break
			}
		}
		if occ >= 0 {
			return got, seen, matched && len(got) > 0
		}
		if matched && len(got) > 0 {
			return got, seen, true
		}
	}
	return nil, seen, false
}

// Shrink reduces a failing exploration run to a minimal repro: it
// repeatedly drops ops from the scenario while the crash at the same
// named point still reproduces a violation of the same rule, until no
// single op can be removed (ddmin with subset size 1 — schedules here are
// tens of ops, so the quadratic pass is cheap and the result is 1-minimal).
func Shrink(s *Scenario, v Violation, opt Options) (*Repro, error) {
	r := &Repro{
		Scenario: s.Name,
		Mask:     fullMask(len(s.Ops)),
		Point:    v.Point,
		Occ:      v.Occ,
		Variant:  v.Variant,
		Seed:     opt.Seed,
		Sabotage: opt.BreakRecovery,
	}
	// The un-shrunk repro must fail, else there is nothing to minimize.
	if _, occ, ok := runRepro(s, r, -1, v.Rule); !ok {
		return nil, fmt.Errorf("chaos: violation %q at %s does not reproduce", v.Rule, v.Point)
	} else {
		r.Occ = occ
	}

	for changed := true; changed; {
		changed = false
		for i := 0; i < len(s.Ops); i++ {
			bit := uint64(1) << uint(i)
			if r.Mask&bit == 0 {
				continue
			}
			cand := *r
			cand.Mask &^= bit
			if _, occ, ok := runRepro(s, &cand, -1, v.Rule); ok {
				cand.Occ = occ
				*r = cand
				changed = true
			}
		}
	}
	return r, nil
}

// Replay re-runs a repro (typically decoded from a printed seed string)
// and returns the violations it produces. The scenario is resolved from
// the registry.
func Replay(r *Repro) ([]Violation, *Scenario, error) {
	s := Lookup(r.Scenario)
	if s == nil {
		return nil, nil, fmt.Errorf("chaos: unknown scenario %q (have %v)", r.Scenario, Names())
	}
	vios, seen, ok := runRepro(s, r, r.Occ, "")
	if !ok && vios == nil && seen < r.Occ {
		return nil, s, fmt.Errorf("chaos: point %s#%d not crossed (only %d occurrences)",
			r.Point, r.Occ, seen+1)
	}
	return vios, s, nil
}

// KeptOps returns how many ops the mask keeps.
func (r *Repro) KeptOps() int { return bits.OnesCount64(r.Mask) }
