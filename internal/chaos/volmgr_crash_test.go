package chaos

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"raizn/internal/obs"
	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/volmgr"
	"raizn/internal/zns"
)

// TestVolmgrCrashMidBurst drives a multi-tenant burst through a volume
// sharded over two arrays, power-cuts every device of both arrays in
// the middle of the burst, and runs the per-array journal oracle on
// each crash snapshot: every surviving byte must be journal-explained,
// no zone may stay open, both arrays must mount writable, and no
// tenant's FUA-completed data may be lost.
func TestVolmgrCrashMidBurst(t *testing.T) {
	devCfg := zns.DefaultConfig()
	devCfg.NumZones = 8
	devCfg.ZoneSize = 160
	devCfg.ZoneCap = 128
	devCfg.MaxOpenZones = 8
	devCfg.MaxActiveZones = 10

	const (
		arrays  = 2
		tenants = 6
		chunk   = 16
	)

	clk := vclock.New()
	type arrayState struct {
		devs []*zns.Device
		jrn  *obs.Journal
		cfg  raizn.Config
	}
	var arrs [arrays]arrayState

	// Per volume-zone watermarks, maintained by the tenant goroutines:
	// Submitted advances before SubmitWrite, Durable after a FUA write's
	// future resolves. Both are conservative in the safe direction.
	var wmMu sync.Mutex
	durable := make(map[int]int64)
	submitted := make(map[int]int64)

	type crash struct {
		clones []*zns.Device
		clk    *vclock.Clock
		events []obs.Event
		drop   uint64
		// watermarks as of the crash instant: durable entries recorded
		// before the cut are persisted in the clones (FUA completes only
		// after the device persists), so the projection is exact-or-safe.
		durable   map[int]int64
		submitted map[int]int64
	}
	var crashes [arrays]crash
	var extents []volmgr.ExtentDesc

	clk.Run(func() {
		m := volmgr.NewManager(clk, volmgr.Config{})
		for a := 0; a < arrays; a++ {
			devs := make([]*zns.Device, 3)
			jrn := obs.NewJournal(clk, obs.JournalConfig{Capacity: 1 << 16})
			jrn.Enable()
			cfg := raizn.DefaultConfig()
			cfg.Metrics = m.Metrics()
			cfg.MetricsLabel = fmt.Sprintf("a%d", a)
			cfg.Journal = jrn
			for i := range devs {
				devs[i] = zns.NewDevice(clk, devCfg)
			}
			vol, err := raizn.Create(clk, devs, cfg)
			if err != nil {
				t.Fatalf("Create array %d: %v", a, err)
			}
			if _, err := m.AddArray(cfg.MetricsLabel, vol); err != nil {
				t.Fatalf("AddArray: %v", err)
			}
			arrs[a] = arrayState{devs: devs, jrn: jrn, cfg: cfg}
		}

		var tcs []volmgr.TenantConfig
		for i := 0; i < tenants; i++ {
			tcs = append(tcs, volmgr.TenantConfig{ID: fmt.Sprintf("t%d", i)})
		}
		v, err := m.CreateVolume("vol", volmgr.VolumeSpec{
			Zones:   tenants,
			Engine:  volmgr.EngineConfig{QueueDepth: 16, MaxInflight: 16, BatchSize: 4},
			Tenants: tcs,
		})
		if err != nil {
			t.Fatalf("CreateVolume: %v", err)
		}
		extents = v.ExtentMap()
		zs := v.ZoneSectors()
		ss := v.SectorSize()

		// The burst: every tenant writes its own zone with FUA, tracking
		// watermarks as futures resolve in FIFO order.
		wg := clk.NewWaitGroup()
		wg.Add(tenants)
		for i := 0; i < tenants; i++ {
			i := i
			clk.Go(func() {
				defer wg.Done()
				id := fmt.Sprintf("t%d", i)
				base := int64(i) * zs
				type pend struct {
					fut *vclock.Future
					end int64 // zone-relative end sector
				}
				var futs []pend
				settle := func(p pend) bool {
					if err := p.fut.Wait(); err != nil {
						t.Errorf("%s write: %v", id, err)
						return false
					}
					wmMu.Lock()
					if durable[i] < p.end {
						durable[i] = p.end
					}
					wmMu.Unlock()
					return true
				}
				for off := int64(0); off+chunk <= zs; off += chunk {
					lba := base + off
					data := make([]byte, chunk*ss)
					for j := range data {
						data[j] = byte(i) ^ byte(lba) ^ byte(j)
					}
					wmMu.Lock()
					if submitted[i] < off+chunk {
						submitted[i] = off + chunk
					}
					wmMu.Unlock()
					fut, err := v.SubmitWrite(id, lba, data, zns.FUA)
					if errors.Is(err, volmgr.ErrThrottled) {
						clk.Sleep(50 * time.Microsecond)
						off -= chunk
						continue
					}
					if errors.Is(err, volmgr.ErrClosed) {
						return // crash point passed; burst is over
					}
					if err != nil {
						t.Errorf("%s SubmitWrite: %v", id, err)
						return
					}
					futs = append(futs, pend{fut, off + chunk})
					if len(futs) >= 8 {
						if !settle(futs[0]) {
							return
						}
						futs = futs[1:]
					}
				}
				for _, p := range futs {
					if !settle(p) {
						return
					}
				}
			})
		}

		// Crash in the middle of the burst: once virtual time reaches the
		// cut point, snapshot every device of every array while tenant IO
		// is in flight.
		wg.Add(1)
		clk.AfterFunc(400*time.Microsecond, func() {
			defer wg.Done()
			wmMu.Lock()
			dur := make(map[int]int64, len(durable))
			sub := make(map[int]int64, len(submitted))
			for k, v := range durable {
				dur[k] = v
			}
			for k, v := range submitted {
				sub[k] = v
			}
			wmMu.Unlock()
			for a := 0; a < arrays; a++ {
				clones, cclk := SnapshotArray(arrs[a].devs, int64(1000+a))
				crashes[a] = crash{
					clones:    clones,
					clk:       cclk,
					events:    arrs[a].jrn.Events(),
					drop:      arrs[a].jrn.Dropped(),
					durable:   dur,
					submitted: sub,
				}
			}
		})

		wg.Wait()
		if err := m.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})

	// The cut must land mid-burst: some data already durable, but the
	// burst far from finished — otherwise the oracle run is vacuous.
	var totDur, totSub int64
	for i := 0; i < tenants; i++ {
		totDur += crashes[0].durable[i]
		totSub += crashes[0].submitted[i]
	}
	if totSub == 0 {
		t.Fatalf("crash fired before the burst started")
	}
	if totDur >= tenants*128*2 { // all zones durable = burst already over
		t.Fatalf("crash fired after the burst finished (durable=%d)", totDur)
	}

	for a := 0; a < arrays; a++ {
		if crashes[a].clones == nil {
			t.Fatalf("array %d was never snapshotted", a)
		}
		// Project the volume-zone watermarks onto this array's logical
		// zones through the extent map. Durable marks lag reality (safe);
		// submitted marks lead it (safe).
		marks := make(map[int]ZoneWatermarks)
		for _, e := range extents {
			if e.Array != fmt.Sprintf("a%d", a) {
				continue
			}
			marks[e.Zone] = ZoneWatermarks{
				Durable:   crashes[a].durable[e.Index],
				Submitted: crashes[a].submitted[e.Index],
			}
		}
		cfg := arrs[a].cfg
		cfg.Metrics = nil
		cfg.MetricsLabel = ""
		cfg.Journal = nil
		vios, vol := CheckArrayCrash(ArrayCrash{
			Clk:     crashes[a].clk,
			Clones:  crashes[a].clones,
			Events:  crashes[a].events,
			Dropped: crashes[a].drop,
			Config:  cfg,
		}, marks)
		for _, vio := range vios {
			t.Errorf("array %d: %s", a, vio)
		}
		if vol == nil && len(vios) == 0 {
			t.Errorf("array %d: no volume and no violations", a)
		}
	}
}
