// Package fio is a workload generator modeled on fio (the paper drives
// all microbenchmarks with fio 3.28 + libaio): jobs with a block size,
// queue depth, access pattern, and offset issue asynchronous IO against a
// target volume while a sampler collects per-interval throughput and a
// latency histogram.
package fio

import (
	"math/rand"
	"sync"
	"time"

	"raizn/internal/stats"
	"raizn/internal/vclock"
)

// Target is the device-agnostic face the generator drives. Adapters for
// RAIZN, mdraid, and raw devices live in targets.go.
type Target interface {
	SectorSize() int
	NumSectors() int64
	SubmitWrite(lba int64, data []byte) *vclock.Future
	SubmitRead(lba int64, buf []byte) *vclock.Future
	Flush() error
}

// Pattern is the job's access pattern.
type Pattern int

const (
	SeqWrite Pattern = iota
	SeqRead
	RandRead
	RandWrite
)

func (p Pattern) String() string {
	switch p {
	case SeqWrite:
		return "write"
	case SeqRead:
		return "read"
	case RandRead:
		return "randread"
	case RandWrite:
		return "randwrite"
	default:
		return "?"
	}
}

// Job describes one fio job.
type Job struct {
	Pattern      Pattern
	BlockSectors int64
	QueueDepth   int
	Offset       int64 // first sector of the job's region
	Size         int64 // region size in sectors (random IO stays inside)
	TotalBytes   int64 // stop after this many bytes (0 = use Duration)
	Duration     time.Duration
	Seed         int64
}

// Result aggregates a run.
type Result struct {
	Bytes      int64
	Ops        int64
	Elapsed    time.Duration
	Hist       *stats.Histogram
	Series     *stats.Series
	Throughput float64 // MiB/s over the whole run
}

// Options tune the runner.
type Options struct {
	SampleInterval time.Duration // 0 disables the time series
}

// Run executes the jobs concurrently against the target and returns the
// combined result. It must be called from a simulated goroutine.
func Run(clk *vclock.Clock, target Target, jobs []Job, opts Options) Result {
	res := Result{Hist: stats.NewHistogram()}
	if opts.SampleInterval > 0 {
		res.Series = stats.NewSeries(opts.SampleInterval)
	}
	start := clk.Now()

	// Sampler.
	samplerStop := false
	var samplerDone *vclock.Future
	if res.Series != nil {
		samplerDone = clk.NewFuture()
		clk.Go(func() {
			for {
				clk.Sleep(opts.SampleInterval)
				res.Series.Tick(clk.Now() - start)
				if samplerStop {
					samplerDone.Complete(nil)
					return
				}
			}
		})
	}

	var counter stats.Counter
	wg := clk.NewWaitGroup()
	for i := range jobs {
		job := jobs[i]
		wg.Add(1)
		clk.Go(func() {
			defer wg.Done()
			runJob(clk, target, job, &counter, res.Hist, res.Series)
		})
	}
	wg.Wait()
	res.Elapsed = clk.Now() - start
	samplerStop = true
	if samplerDone != nil {
		samplerDone.Wait()
	}
	res.Bytes, res.Ops = counter.Bytes(), counter.Ops()
	res.Throughput = stats.MiBps(res.Bytes, res.Elapsed)
	return res
}

// runJob issues the job's IO with a sliding window of QueueDepth
// outstanding operations, like libaio.
func runJob(clk *vclock.Clock, target Target, job Job, counter *stats.Counter, hist *stats.Histogram, series *stats.Series) {
	if job.BlockSectors <= 0 {
		job.BlockSectors = 1
	}
	if job.QueueDepth <= 0 {
		job.QueueDepth = 1
	}
	if job.Size <= 0 {
		job.Size = target.NumSectors() - job.Offset
	}
	rng := rand.New(rand.NewSource(job.Seed + 1))
	ss := int64(target.SectorSize())
	blockBytes := job.BlockSectors * ss
	wbuf := make([]byte, blockBytes)
	rng.Read(wbuf)

	deadline := time.Duration(-1)
	if job.Duration > 0 {
		deadline = clk.Now() + job.Duration
	}
	var issuedBytes int64
	next := job.Offset
	nBlocks := job.Size / job.BlockSectors

	inflight := 0
	done := clk.NewWaitGroup()
	var gateMu sync.Mutex
	gate := clk.NewCond(&gateMu)

	for {
		if job.TotalBytes > 0 && issuedBytes >= job.TotalBytes {
			break
		}
		if deadline >= 0 && clk.Now() >= deadline {
			break
		}
		if job.TotalBytes == 0 && deadline < 0 && issuedBytes >= job.Size*ss {
			break // default: one pass over the region
		}

		var lba int64
		switch job.Pattern {
		case SeqWrite, SeqRead:
			if next+job.BlockSectors > job.Offset+job.Size {
				if job.TotalBytes == 0 && deadline < 0 {
					break // finished the pass
				}
				next = job.Offset // wrap (duration/size-bounded runs)
			}
			lba = next
			next += job.BlockSectors
		case RandRead, RandWrite:
			lba = job.Offset + rng.Int63n(nBlocks)*job.BlockSectors
		}

		gateMu.Lock()
		for inflight >= job.QueueDepth {
			gate.Wait()
		}
		inflight++
		gateMu.Unlock()

		t0 := clk.Now()
		var fut *vclock.Future
		switch job.Pattern {
		case SeqWrite, RandWrite:
			fut = target.SubmitWrite(lba, wbuf)
		default:
			buf := make([]byte, blockBytes)
			fut = target.SubmitRead(lba, buf)
		}
		issuedBytes += blockBytes
		done.Add(1)
		clk.Go(func() {
			defer done.Done()
			err := fut.Wait()
			lat := clk.Now() - t0
			if err == nil {
				counter.Add(blockBytes)
				hist.Record(lat)
				if series != nil {
					series.Observe(blockBytes, lat)
				}
			}
			gateMu.Lock()
			inflight--
			gate.Signal()
			gateMu.Unlock()
		})
	}
	done.Wait()
}
