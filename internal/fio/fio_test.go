package fio

import (
	"testing"
	"time"

	"raizn/internal/blockdev"
	"raizn/internal/mdraid"
	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

func znsCfg() zns.Config {
	cfg := zns.DefaultConfig()
	cfg.NumZones = 8
	cfg.ZoneSize = 160
	cfg.ZoneCap = 128
	cfg.MaxOpenZones = 8
	cfg.MaxActiveZones = 10
	return cfg
}

func TestSeqWriteThenReadOnRaizn(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(c, znsCfg())
		}
		v, err := raizn.Create(c, devs, raizn.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		tgt := RaiznTarget{V: v}
		res := Run(c, tgt, []Job{{
			Pattern:      SeqWrite,
			BlockSectors: 16,
			QueueDepth:   4,
			Size:         v.NumSectors(),
		}}, Options{})
		wantBytes := v.NumSectors() * int64(v.SectorSize())
		if res.Bytes != wantBytes {
			t.Errorf("wrote %d bytes, want %d", res.Bytes, wantBytes)
		}
		if res.Throughput <= 0 {
			t.Error("zero throughput")
		}

		res = Run(c, tgt, []Job{{
			Pattern:      SeqRead,
			BlockSectors: 16,
			QueueDepth:   8,
			Size:         v.NumSectors(),
		}}, Options{})
		if res.Bytes != wantBytes {
			t.Errorf("read %d bytes, want %d", res.Bytes, wantBytes)
		}
		if res.Hist.Count() != uint64(res.Ops) || res.Ops == 0 {
			t.Errorf("histogram count %d vs ops %d", res.Hist.Count(), res.Ops)
		}
	})
}

func TestMultiJobOffsets(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(c, znsCfg())
		}
		v, err := raizn.Create(c, devs, raizn.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		// 4 jobs writing 4 different zones concurrently.
		zs := v.ZoneSectors()
		var jobs []Job
		for j := int64(0); j < 4; j++ {
			jobs = append(jobs, Job{
				Pattern: SeqWrite, BlockSectors: 16, QueueDepth: 4,
				Offset: j * zs, Size: zs, Seed: j,
			})
		}
		res := Run(c, RaiznTarget{V: v}, jobs, Options{})
		if res.Bytes != 4*zs*int64(v.SectorSize()) {
			t.Errorf("bytes = %d", res.Bytes)
		}
	})
}

func TestRandReadOnMdraid(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		bcfg := blockdev.DefaultConfig()
		bcfg.NumSectors = 2048
		bcfg.PagesPerBlock = 64
		devs := make([]*blockdev.Device, 5)
		for i := range devs {
			devs[i] = blockdev.NewDevice(c, bcfg)
		}
		v, err := mdraid.New(c, devs, mdraid.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		tgt := MdraidTarget{V: v}
		Run(c, tgt, []Job{{Pattern: SeqWrite, BlockSectors: 64, QueueDepth: 8}}, Options{})
		res := Run(c, tgt, []Job{{
			Pattern: RandRead, BlockSectors: 2, QueueDepth: 16,
			TotalBytes: 1 << 20,
		}}, Options{})
		if res.Bytes < 1<<20 {
			t.Errorf("rand read bytes = %d", res.Bytes)
		}
	})
}

func TestDurationBoundedRun(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		d := blockdev.NewDevice(c, blockdev.DefaultConfig())
		res := Run(c, BlockTarget{D: d}, []Job{{
			Pattern: RandWrite, BlockSectors: 1, QueueDepth: 4,
			Duration: 50 * time.Millisecond, Seed: 9,
		}}, Options{SampleInterval: 10 * time.Millisecond})
		if res.Elapsed < 50*time.Millisecond {
			t.Errorf("elapsed = %v", res.Elapsed)
		}
		if len(res.Series.Samples()) < 4 {
			t.Errorf("samples = %d", len(res.Series.Samples()))
		}
	})
}

func TestZNSFlatTargetSplitsAtZones(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		d := zns.NewDevice(c, znsCfg())
		tgt := ZNSFlatTarget{D: d}
		// One sequential pass over the whole flat space with a block
		// size that does not divide the zone capacity.
		res := Run(c, tgt, []Job{{Pattern: SeqWrite, BlockSectors: 24, QueueDepth: 2}}, Options{})
		want := (tgt.NumSectors() / 24) * 24 * int64(tgt.SectorSize())
		if res.Bytes != want {
			t.Errorf("bytes = %d, want %d", res.Bytes, want)
		}
	})
}

func TestZNSFlatResetAndRewrite(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		d := zns.NewDevice(c, znsCfg())
		tgt := ZNSFlatTarget{D: d}
		Run(c, tgt, []Job{{Pattern: SeqWrite, BlockSectors: 16, QueueDepth: 1, Size: tgt.ZoneSectors()}}, Options{})
		if err := tgt.ResetZone(0); err != nil {
			t.Fatal(err)
		}
		res := Run(c, tgt, []Job{{Pattern: SeqWrite, BlockSectors: 16, QueueDepth: 1, Size: tgt.ZoneSectors()}}, Options{})
		if res.Bytes == 0 {
			t.Error("rewrite after reset failed")
		}
	})
}

// TestAdapterSurfaces exercises every Target adapter method once.
func TestAdapterSurfaces(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		// RAIZN adapter.
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(c, znsCfg())
		}
		rv, err := raizn.Create(c, devs, raizn.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rt := RaiznTarget{V: rv}
		if rt.NumSectors() != rv.NumSectors() || rt.SectorSize() != 4096 {
			t.Error("raizn adapter geometry")
		}
		if rt.NumZones() != rv.NumZones() || rt.ZoneSectors() != rv.ZoneSectors() {
			t.Error("raizn adapter zones")
		}
		if err := rt.SubmitWrite(0, make([]byte, 4096)).Wait(); err != nil {
			t.Error(err)
		}
		buf := make([]byte, 4096)
		if err := rt.SubmitRead(0, buf).Wait(); err != nil {
			t.Error(err)
		}
		if err := rt.Flush(); err != nil {
			t.Error(err)
		}
		if err := rt.ResetZone(0); err != nil {
			t.Error(err)
		}

		// mdraid adapter.
		bcfg := blockdev.DefaultConfig()
		bcfg.NumSectors = 2048
		bcfg.PagesPerBlock = 64
		bdevs := make([]*blockdev.Device, 5)
		for i := range bdevs {
			bdevs[i] = blockdev.NewDevice(c, bcfg)
		}
		mv, err := mdraid.New(c, bdevs, mdraid.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		mt := MdraidTarget{V: mv}
		if mt.NumSectors() != mv.NumSectors() || mt.SectorSize() != 4096 {
			t.Error("mdraid adapter geometry")
		}
		if err := mt.SubmitWrite(0, make([]byte, 4096)).Wait(); err != nil {
			t.Error(err)
		}
		if err := mt.SubmitRead(0, buf).Wait(); err != nil {
			t.Error(err)
		}
		if err := mt.Flush(); err != nil {
			t.Error(err)
		}

		// Raw device adapters.
		zt := ZNSFlatTarget{D: zns.NewDevice(c, znsCfg())}
		if err := zt.SubmitWrite(0, make([]byte, 4096)).Wait(); err != nil {
			t.Error(err)
		}
		if err := zt.SubmitRead(0, buf).Wait(); err != nil {
			t.Error(err)
		}
		if err := zt.Flush(); err != nil {
			t.Error(err)
		}
		if zt.NumZones() != 8 {
			t.Errorf("flat zns zones = %d", zt.NumZones())
		}
		bt := BlockTarget{D: blockdev.NewDevice(c, bcfg)}
		if err := bt.SubmitWrite(5, make([]byte, 4096)).Wait(); err != nil {
			t.Error(err)
		}
		if err := bt.SubmitRead(5, buf).Wait(); err != nil {
			t.Error(err)
		}
		if err := bt.Flush(); err != nil {
			t.Error(err)
		}
		if bt.NumSectors() != 2048 || bt.SectorSize() != 4096 {
			t.Error("block adapter geometry")
		}
		// Pattern names for reports.
		for p, want := range map[Pattern]string{SeqWrite: "write", SeqRead: "read", RandRead: "randread", RandWrite: "randwrite"} {
			if p.String() != want {
				t.Errorf("Pattern %d = %s", p, p.String())
			}
		}
	})
}
