package fio

import (
	"raizn/internal/blockdev"
	"raizn/internal/mdraid"
	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// ZoneResetter is implemented by zoned targets; the Figure 10 overwrite
// harness uses it to reset-and-rewrite zones.
type ZoneResetter interface {
	ZoneSectors() int64
	NumZones() int
	ResetZone(z int) error
}

// RaiznTarget adapts a RAIZN volume.
type RaiznTarget struct{ V *raizn.Volume }

// SectorSize implements Target.
func (t RaiznTarget) SectorSize() int { return t.V.SectorSize() }

// NumSectors implements Target.
func (t RaiznTarget) NumSectors() int64 { return t.V.NumSectors() }

// SubmitWrite implements Target.
func (t RaiznTarget) SubmitWrite(lba int64, data []byte) *vclock.Future {
	return t.V.SubmitWrite(lba, data, 0)
}

// SubmitRead implements Target.
func (t RaiznTarget) SubmitRead(lba int64, buf []byte) *vclock.Future {
	return t.V.SubmitRead(lba, buf)
}

// Flush implements Target.
func (t RaiznTarget) Flush() error { return t.V.Flush() }

// ZoneSectors implements ZoneResetter.
func (t RaiznTarget) ZoneSectors() int64 { return t.V.ZoneSectors() }

// NumZones implements ZoneResetter.
func (t RaiznTarget) NumZones() int { return t.V.NumZones() }

// ResetZone implements ZoneResetter.
func (t RaiznTarget) ResetZone(z int) error { return t.V.ResetZone(z) }

// MdraidTarget adapts an mdraid volume.
type MdraidTarget struct{ V *mdraid.Volume }

// SectorSize implements Target.
func (t MdraidTarget) SectorSize() int { return t.V.SectorSize() }

// NumSectors implements Target.
func (t MdraidTarget) NumSectors() int64 { return t.V.NumSectors() }

// SubmitWrite implements Target.
func (t MdraidTarget) SubmitWrite(lba int64, data []byte) *vclock.Future {
	return t.V.SubmitWrite(lba, data, 0)
}

// SubmitRead implements Target.
func (t MdraidTarget) SubmitRead(lba int64, buf []byte) *vclock.Future {
	return t.V.SubmitRead(lba, buf)
}

// Flush implements Target.
func (t MdraidTarget) Flush() error { return t.V.Flush() }

// ZNSFlatTarget adapts a single raw ZNS device, exposing its writable
// capacity as a dense address space (the §6.1 raw-device benchmarks
// write zones back to back).
type ZNSFlatTarget struct{ D *zns.Device }

// SectorSize implements Target.
func (t ZNSFlatTarget) SectorSize() int { return t.D.Config().SectorSize }

// NumSectors implements Target.
func (t ZNSFlatTarget) NumSectors() int64 {
	return int64(t.D.Config().NumZones) * t.D.Config().ZoneCap
}

func (t ZNSFlatTarget) phys(lba int64) int64 {
	cfg := t.D.Config()
	z := lba / cfg.ZoneCap
	return z*cfg.ZoneSize + lba%cfg.ZoneCap
}

// SubmitWrite implements Target. Writes must arrive sequentially per
// zone, which sequential fio jobs satisfy; the flat mapping never lets a
// block span two zones when the block size divides the zone capacity.
func (t ZNSFlatTarget) SubmitWrite(lba int64, data []byte) *vclock.Future {
	cfg := t.D.Config()
	n := int64(len(data)) / int64(cfg.SectorSize)
	// Split at zone-capacity boundaries.
	if lba/cfg.ZoneCap != (lba+n-1)/cfg.ZoneCap {
		split := (lba/cfg.ZoneCap + 1) * cfg.ZoneCap
		first := (split - lba) * int64(cfg.SectorSize)
		f1 := t.SubmitWrite(lba, data[:first])
		f2 := t.SubmitWrite(split, data[first:])
		out := t.D.Clock().NewFuture()
		t.D.Clock().Go(func() { out.Complete(vclock.WaitAll(f1, f2)) })
		return out
	}
	return t.D.Write(t.phys(lba), data, 0)
}

// SubmitRead implements Target.
func (t ZNSFlatTarget) SubmitRead(lba int64, buf []byte) *vclock.Future {
	cfg := t.D.Config()
	n := int64(len(buf)) / int64(cfg.SectorSize)
	if lba/cfg.ZoneCap != (lba+n-1)/cfg.ZoneCap {
		split := (lba/cfg.ZoneCap + 1) * cfg.ZoneCap
		first := (split - lba) * int64(cfg.SectorSize)
		f1 := t.SubmitRead(lba, buf[:first])
		f2 := t.SubmitRead(split, buf[first:])
		out := t.D.Clock().NewFuture()
		t.D.Clock().Go(func() { out.Complete(vclock.WaitAll(f1, f2)) })
		return out
	}
	return t.D.Read(t.phys(lba), buf)
}

// Flush implements Target.
func (t ZNSFlatTarget) Flush() error { return t.D.Flush().Wait() }

// ZoneSectors implements ZoneResetter.
func (t ZNSFlatTarget) ZoneSectors() int64 { return t.D.Config().ZoneCap }

// NumZones implements ZoneResetter.
func (t ZNSFlatTarget) NumZones() int { return t.D.Config().NumZones }

// ResetZone implements ZoneResetter.
func (t ZNSFlatTarget) ResetZone(z int) error { return t.D.ResetZone(z).Wait() }

// BlockTarget adapts a single raw conventional device.
type BlockTarget struct{ D *blockdev.Device }

// SectorSize implements Target.
func (t BlockTarget) SectorSize() int { return t.D.Config().SectorSize }

// NumSectors implements Target.
func (t BlockTarget) NumSectors() int64 { return t.D.NumSectors() }

// SubmitWrite implements Target.
func (t BlockTarget) SubmitWrite(lba int64, data []byte) *vclock.Future {
	return t.D.Write(lba, data, 0)
}

// SubmitRead implements Target.
func (t BlockTarget) SubmitRead(lba int64, buf []byte) *vclock.Future {
	return t.D.Read(lba, buf)
}

// Flush implements Target.
func (t BlockTarget) Flush() error { return t.D.Flush().Wait() }
