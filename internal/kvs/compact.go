package kvs

import (
	"encoding/binary"
	"sort"
	"strings"

	"raizn/internal/lfs"
)

// background is the flush/compaction worker, one per DB.
func (db *DB) background() {
	for {
		db.mu.Lock()
		for !db.closed && db.bgErr == nil && db.imm == nil && db.compactionNeededLocked() < 0 {
			db.cond.Wait()
		}
		if db.closed || db.bgErr != nil {
			db.mu.Unlock()
			return
		}
		db.bgBusy = true
		var err error
		if db.imm != nil {
			imm, walName := db.imm, db.immWAL
			num := db.allocFileLocked()
			db.mu.Unlock()
			err = db.flushImm(imm, walName, num)
			db.mu.Lock()
			if err == nil {
				db.imm = nil
				db.immWAL = ""
				db.FlushCount++
			}
		} else {
			lvl := db.compactionNeededLocked()
			db.mu.Unlock()
			err = db.compact(lvl)
			db.mu.Lock()
			if err == nil {
				db.CompactCount++
			}
		}
		if err != nil {
			db.bgErr = err
		}
		db.bgBusy = false
		db.cond.Broadcast()
		db.mu.Unlock()
	}
}

// compactionNeededLocked returns the level to compact, or -1.
func (db *DB) compactionNeededLocked() int {
	if len(db.levels[0]) >= db.opt.L0Files {
		return 0
	}
	limit := db.opt.BaseLevelBytes
	for i := 1; i < db.opt.MaxLevels-1; i++ {
		var size int64
		for _, t := range db.levels[i] {
			size += t.size
		}
		if size > limit {
			return i
		}
		limit *= db.opt.LevelRatio
	}
	return -1
}

func (db *DB) allocFileLocked() uint64 {
	db.nextFile++
	return db.nextFile
}

// flushImm writes the immutable memtable as an L0 table, persists the
// manifest, and retires the WAL.
func (db *DB) flushImm(imm *memtable, walName string, num uint64) error {
	name := db.fileName("sst", num)
	keys := imm.sortedKeys()
	t, err := writeTable(db.fs, name, keys, func(k string) entry {
		e, _ := imm.get(k)
		return e
	})
	if err != nil {
		return err
	}
	t.level = 0

	db.mu.Lock()
	db.levels[0] = append([]*tableMeta{t}, db.levels[0]...)
	snap := db.manifestSnapshotLocked()
	db.mu.Unlock()

	if err := db.writeManifest(snap); err != nil {
		return err
	}
	if walName != "" {
		_ = db.fs.Delete(walName)
	}
	return nil
}

// compact merges level into level+1 (L0 compactions take every L0 table;
// deeper levels pick one victim) and retires the inputs.
func (db *DB) compact(level int) error {
	db.mu.Lock()
	var inputs []*tableMeta
	if level == 0 {
		inputs = append(inputs, db.levels[0]...)
	} else if len(db.levels[level]) > 0 {
		inputs = append(inputs, db.levels[level][0])
	}
	if len(inputs) == 0 {
		db.mu.Unlock()
		return nil
	}
	minKey, maxKey := inputs[0].minKey, inputs[0].maxKey
	for _, t := range inputs[1:] {
		if t.minKey < minKey {
			minKey = t.minKey
		}
		if t.maxKey > maxKey {
			maxKey = t.maxKey
		}
	}
	next := level + 1
	var overlaps []*tableMeta
	for _, t := range db.levels[next] {
		if t.maxKey >= minKey && t.minKey <= maxKey {
			overlaps = append(overlaps, t)
		}
	}
	// Determine whether tombstones can be dropped: no deeper data.
	dropTombs := true
	for l := next + 1; l < db.opt.MaxLevels; l++ {
		if len(db.levels[l]) > 0 {
			dropTombs = false
		}
	}
	if next == db.opt.MaxLevels-1 {
		// Output level is the bottom: drop if nothing deeper, which is
		// always true here.
		dropTombs = true
	}
	db.mu.Unlock()

	// Load and merge. Input precedence: higher seq wins, which the
	// per-entry sequence numbers encode directly.
	best := map[string]entry{}
	load := func(t *tableMeta) error {
		es, err := t.loadAll(db.fs)
		if err != nil {
			return err
		}
		for _, e := range es {
			if prev, ok := best[e.key]; !ok || e.seq > prev.seq {
				best[e.key] = e.entry
			}
			db.CompactBytes += int64(16 + len(e.key) + len(e.value))
		}
		return nil
	}
	for _, t := range inputs {
		if err := load(t); err != nil {
			return err
		}
	}
	for _, t := range overlaps {
		if err := load(t); err != nil {
			return err
		}
	}
	keys := make([]string, 0, len(best))
	for k, e := range best {
		if dropTombs && e.tombstone {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Write output tables, split at the target file size.
	var outputs []*tableMeta
	var cur []string
	var curBytes int64
	emit := func() error {
		if len(cur) == 0 {
			return nil
		}
		db.mu.Lock()
		num := db.allocFileLocked()
		db.mu.Unlock()
		t, err := writeTable(db.fs, db.fileName("sst", num), cur, func(k string) entry { return best[k] })
		if err != nil {
			return err
		}
		t.level = next
		outputs = append(outputs, t)
		cur, curBytes = nil, 0
		return nil
	}
	for _, k := range keys {
		cur = append(cur, k)
		curBytes += int64(16 + len(k) + len(best[k].value))
		if curBytes >= db.opt.TargetFileBytes {
			if err := emit(); err != nil {
				return err
			}
		}
	}
	if err := emit(); err != nil {
		return err
	}

	// Install: remove inputs and overlaps, insert outputs.
	retired := map[*tableMeta]bool{}
	for _, t := range inputs {
		retired[t] = true
	}
	for _, t := range overlaps {
		retired[t] = true
	}
	db.mu.Lock()
	for l := range db.levels {
		keep := db.levels[l][:0]
		for _, t := range db.levels[l] {
			if !retired[t] {
				keep = append(keep, t)
			}
		}
		db.levels[l] = keep
	}
	db.levels[next] = append(db.levels[next], outputs...)
	sort.Slice(db.levels[next], func(i, j int) bool {
		return db.levels[next][i].minKey < db.levels[next][j].minKey
	})
	snap := db.manifestSnapshotLocked()
	db.mu.Unlock()

	if err := db.writeManifest(snap); err != nil {
		return err
	}
	for t := range retired {
		_ = db.fs.Delete(t.name)
	}
	return nil
}

// --- manifest ---

// manifestSnapshot is the serializable DB state. Caller holds db.mu.
func (db *DB) manifestSnapshotLocked() []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint64(b, db.nextFile)
	b = binary.LittleEndian.AppendUint64(b, db.seq)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(db.levels)))
	for _, lvl := range db.levels {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(lvl)))
		for _, t := range lvl {
			b = binary.LittleEndian.AppendUint32(b, uint32(len(t.name)))
			b = append(b, t.name...)
		}
	}
	return b
}

// writeManifestLocked is used during Open before the worker starts.
func (db *DB) writeManifestLocked() error {
	return db.writeManifest(db.manifestSnapshotLocked())
}

// writeManifest atomically replaces the MANIFEST via write-temp + rename.
func (db *DB) writeManifest(snap []byte) error {
	tmp := "MANIFEST.tmp"
	if db.fs.Exists(tmp) {
		_ = db.fs.Delete(tmp)
	}
	f, err := db.fs.Create(tmp, lfs.Hot)
	if err != nil {
		return err
	}
	hdr := binary.LittleEndian.AppendUint32(nil, uint32(len(snap)))
	if err := f.Append(hdr); err != nil {
		return err
	}
	if err := f.Append(snap); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return db.fs.Rename(tmp, "MANIFEST")
}

// recover loads the manifest and replays outstanding WALs.
func (db *DB) recover() error {
	if !db.fs.Exists("MANIFEST") {
		return nil // fresh database
	}
	f, err := db.fs.Open("MANIFEST")
	if err != nil {
		return err
	}
	hdr := make([]byte, 4)
	if err := f.ReadAt(hdr, 0); err != nil {
		return err
	}
	n := int(binary.LittleEndian.Uint32(hdr))
	blob := make([]byte, n)
	if err := f.ReadAt(blob, 4); err != nil {
		return err
	}
	off := 0
	u32 := func() int {
		v := int(binary.LittleEndian.Uint32(blob[off:]))
		off += 4
		return v
	}
	db.nextFile = binary.LittleEndian.Uint64(blob[0:8])
	manifestSeq := binary.LittleEndian.Uint64(blob[8:16])
	off = 16
	nLevels := u32()
	for l := 0; l < nLevels && l < len(db.levels); l++ {
		count := u32()
		for i := 0; i < count; i++ {
			nl := u32()
			name := string(blob[off : off+nl])
			off += nl
			t, err := openTable(db.fs, name, l)
			if err != nil {
				return err
			}
			db.levels[l] = append(db.levels[l], t)
		}
	}

	// Replay outstanding WAL files in creation order and compute the
	// restored sequence number.
	var walNames []string
	for _, name := range db.fs.List() {
		if strings.HasPrefix(name, "wal_") {
			walNames = append(walNames, name)
		}
	}
	sort.Strings(walNames)
	var maxSeq uint64
	for _, name := range walNames {
		wf, err := db.fs.Open(name)
		if err != nil {
			return err
		}
		raw := make([]byte, wf.Size())
		if len(raw) > 0 {
			if err := wf.ReadAt(raw, 0); err != nil {
				return err
			}
		}
		if s := db.replayWAL(raw, db.mem); s > maxSeq {
			maxSeq = s
		}
	}
	// Seed seq past every persisted entry: every write since the last
	// manifest is in a WAL, so max(manifest seq, WAL seqs) covers all.
	if manifestSeq > maxSeq {
		maxSeq = manifestSeq
	}
	db.seq = maxSeq

	// Re-home the replayed data: flush it to a fresh L0 table so the
	// old WALs can be retired, then start a clean WAL.
	if db.mem.count() > 0 {
		imm := db.mem
		db.mem = newMemtable()
		db.nextFile++
		if err := db.flushImm(imm, "", db.nextFile); err != nil {
			return err
		}
	}
	for _, name := range walNames {
		_ = db.fs.Delete(name)
	}
	if err := db.rotateWALLocked(); err != nil {
		return err
	}
	return db.writeManifestLocked()
}
