// Package kvs implements a log-structured merge-tree key-value store in
// the role RocksDB plays in the paper's application benchmarks (§6.3):
// writes land in a WAL and memtable, memtables flush to sorted tables,
// and a background compactor merges tables down a leveled hierarchy —
// producing exactly the sequential-write/compaction-read IO mix that
// distinguishes ZNS from FTL devices under sustained load.
//
// The store runs on the lfs filesystem, which in turn runs on either a
// RAIZN or an mdraid volume.
package kvs

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"raizn/internal/lfs"
	"raizn/internal/vclock"
)

// Errors.
var (
	ErrNotFound = errors.New("kvs: key not found")
	ErrClosed   = errors.New("kvs: db closed")
)

// Options tune the store. Zero values pick scaled-down defaults.
type Options struct {
	MemtableBytes   int64 // flush threshold
	L0Files         int   // L0 file count that triggers compaction
	LevelRatio      int64 // size ratio between adjacent levels
	BaseLevelBytes  int64 // L1 size target
	TargetFileBytes int64 // compaction output file size
	MaxLevels       int
	SyncWrites      bool // fsync the WAL on every write
}

func (o Options) withDefaults() Options {
	if o.MemtableBytes == 0 {
		o.MemtableBytes = 256 << 10
	}
	if o.L0Files == 0 {
		o.L0Files = 4
	}
	if o.LevelRatio == 0 {
		o.LevelRatio = 10
	}
	if o.BaseLevelBytes == 0 {
		o.BaseLevelBytes = 1 << 20
	}
	if o.TargetFileBytes == 0 {
		o.TargetFileBytes = 512 << 10
	}
	if o.MaxLevels == 0 {
		o.MaxLevels = 4
	}
	return o
}

// DB is an open store. Methods are safe for concurrent use by simulated
// goroutines.
type DB struct {
	fs  *lfs.FS
	clk *vclock.Clock
	opt Options

	mu       sync.Mutex
	cond     *vclock.Cond
	mem      *memtable
	imm      *memtable // memtable being flushed
	wal      *lfs.File
	walName  string
	immWAL   string
	levels   [][]*tableMeta // levels[0] newest-first; deeper levels key-ordered
	nextFile uint64
	seq      uint64
	closed   bool
	bgErr    error
	bgBusy   bool // flush/compaction running

	// Stats.
	FlushCount   int64
	CompactCount int64
	CompactBytes int64
}

// Open creates or reopens a store on the filesystem. Existing state is
// recovered from the MANIFEST and WAL.
func Open(clk *vclock.Clock, fsys *lfs.FS, opt Options) (*DB, error) {
	db := &DB{
		fs:  fsys,
		clk: clk,
		opt: opt.withDefaults(),
	}
	db.cond = clk.NewCond(&db.mu)
	db.levels = make([][]*tableMeta, db.opt.MaxLevels)
	db.mem = newMemtable()

	if err := db.recover(); err != nil {
		return nil, err
	}
	if db.wal == nil {
		if err := db.rotateWALLocked(); err != nil {
			return nil, err
		}
		if err := db.writeManifestLocked(); err != nil {
			return nil, err
		}
	}
	clk.Go(db.background)
	return db, nil
}

// Put stores a key/value pair.
func (db *DB) Put(key, value []byte) error { return db.write(key, value, false) }

// Delete removes a key (writing a tombstone).
func (db *DB) Delete(key []byte) error { return db.write(key, nil, true) }

func (db *DB) write(key, value []byte, tombstone bool) error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if db.bgErr != nil {
		err := db.bgErr
		db.mu.Unlock()
		return err
	}
	db.seq++
	seq := db.seq
	rec := encodeWALRecord(key, value, tombstone, seq)
	wal := db.wal
	db.mem.put(string(key), value, seq, tombstone)
	memFull := db.mem.bytes >= db.opt.MemtableBytes
	if memFull {
		// Hand the memtable to the background flusher; writers stall
		// only if the previous flush is still running.
		for db.imm != nil {
			db.cond.Wait()
			if db.bgErr != nil {
				err := db.bgErr
				db.mu.Unlock()
				return err
			}
		}
		db.imm = db.mem
		db.immWAL = db.walName
		db.mem = newMemtable()
		if err := db.rotateWALLocked(); err != nil {
			db.mu.Unlock()
			return err
		}
		db.cond.Broadcast() // wake the background worker
	}
	db.mu.Unlock()

	if err := wal.Append(rec); err != nil {
		return err
	}
	if db.opt.SyncWrites {
		return wal.Sync()
	}
	return nil
}

// Get returns the value for key.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	k := string(key)
	if e, ok := db.mem.get(k); ok {
		db.mu.Unlock()
		if e.tombstone {
			return nil, ErrNotFound
		}
		return append([]byte(nil), e.value...), nil
	}
	if db.imm != nil {
		if e, ok := db.imm.get(k); ok {
			db.mu.Unlock()
			if e.tombstone {
				return nil, ErrNotFound
			}
			return append([]byte(nil), e.value...), nil
		}
	}
	// Snapshot the table lists; table files are immutable.
	var tables []*tableMeta
	for _, t := range db.levels[0] {
		if k >= t.minKey && k <= t.maxKey {
			tables = append(tables, t)
		}
	}
	for _, lvl := range db.levels[1:] {
		if t := findTable(lvl, k); t != nil {
			tables = append(tables, t)
		}
	}
	db.mu.Unlock()

	for _, t := range tables {
		e, ok, err := t.get(db.fs, k)
		if err != nil {
			return nil, err
		}
		if ok {
			if e.tombstone {
				return nil, ErrNotFound
			}
			return e.value, nil
		}
	}
	return nil, ErrNotFound
}

// KV is one key/value pair returned by Scan.
type KV struct {
	Key   string
	Value []byte
}

// Scan returns up to limit live pairs with key >= start, in key order.
func (db *DB) Scan(start string, limit int) ([]KV, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	sources := make([]*memtable, 0, 2)
	sources = append(sources, db.mem)
	if db.imm != nil {
		sources = append(sources, db.imm)
	}
	var tables []*tableMeta
	for _, lvl := range db.levels {
		for _, t := range lvl {
			if t.maxKey >= start {
				tables = append(tables, t)
			}
		}
	}
	db.mu.Unlock()

	// Merge by fetching a prefix from every source. A source that
	// saturates its fetch window may be hiding keys beyond its last
	// returned key, so only keys at or below the lowest such cutoff are
	// trustworthy; widen the window until limit keys survive.
	fetch := limit + 8 // slack for tombstones
	for {
		best := map[string]entry{}
		cutoff := ""
		saturated := false
		consider := func(k string, e entry) {
			if prev, ok := best[k]; !ok || e.seq > prev.seq {
				best[k] = e
			}
		}
		note := func(n int, last string) {
			if n == fetch && (!saturated || last < cutoff) {
				saturated = true
				cutoff = last
			}
		}
		for _, m := range sources {
			n, last := m.scan(start, fetch, consider)
			note(n, last)
		}
		for _, t := range tables {
			n, last, err := t.scan(db.fs, start, fetch, consider)
			if err != nil {
				return nil, err
			}
			note(n, last)
		}

		keys := make([]string, 0, len(best))
		for k := range best {
			if !saturated || k <= cutoff {
				keys = append(keys, k)
			}
		}
		sortStrings(keys)
		out := make([]KV, 0, limit)
		for _, k := range keys {
			e := best[k]
			if e.tombstone {
				continue
			}
			out = append(out, KV{Key: k, Value: e.value})
			if len(out) == limit {
				break
			}
		}
		if len(out) == limit || !saturated {
			return out, nil
		}
		fetch *= 2
	}
}

// Flush forces the current memtable to disk and waits for it.
func (db *DB) Flush() error {
	db.mu.Lock()
	for db.imm != nil {
		db.cond.Wait()
	}
	if db.mem.count() == 0 {
		db.mu.Unlock()
		return nil
	}
	db.imm = db.mem
	db.immWAL = db.walName
	db.mem = newMemtable()
	if err := db.rotateWALLocked(); err != nil {
		db.mu.Unlock()
		return err
	}
	db.cond.Broadcast()
	for db.imm != nil && db.bgErr == nil {
		db.cond.Wait()
	}
	err := db.bgErr
	db.mu.Unlock()
	return err
}

// WaitIdle blocks until no flush or compaction work is pending — useful
// for steady-state measurements.
func (db *DB) WaitIdle() error {
	db.mu.Lock()
	for db.bgErr == nil && (db.imm != nil || db.bgBusy || db.compactionNeededLocked() >= 0) {
		db.cond.Wait()
	}
	err := db.bgErr
	db.mu.Unlock()
	return err
}

// Close flushes, waits for in-flight background work, and shuts the
// worker down.
func (db *DB) Close() error {
	if err := db.Flush(); err != nil {
		return err
	}
	db.mu.Lock()
	db.closed = true
	db.cond.Broadcast()
	for db.bgBusy {
		db.cond.Wait()
	}
	db.mu.Unlock()
	return db.fs.Sync()
}

func (db *DB) fileName(kind string, num uint64) string {
	return fmt.Sprintf("%s_%06d", kind, num)
}

func (db *DB) rotateWALLocked() error {
	db.nextFile++
	name := db.fileName("wal", db.nextFile)
	f, err := db.fs.Create(name, lfs.Hot)
	if err != nil {
		return err
	}
	db.wal = f
	db.walName = name
	return nil
}

// findTable binary-searches a key-ordered level for the table whose range
// contains k.
func findTable(lvl []*tableMeta, k string) *tableMeta {
	lo, hi := 0, len(lvl)
	for lo < hi {
		mid := (lo + hi) / 2
		if lvl[mid].maxKey < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(lvl) && k >= lvl[lo].minKey && k <= lvl[lo].maxKey {
		return lvl[lo]
	}
	return nil
}

func sortStrings(s []string) { sort.Strings(s) }
