package kvs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"raizn/internal/fio"
	"raizn/internal/lfs"
	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// newTestFS builds an lfs filesystem over a RAIZN volume big enough for
// compaction churn.
func newTestFS(t *testing.T, c *vclock.Clock) *lfs.FS {
	t.Helper()
	cfg := zns.DefaultConfig()
	cfg.NumZones = 24
	cfg.ZoneSize = 160
	cfg.ZoneCap = 128
	cfg.MaxOpenZones = 14
	cfg.MaxActiveZones = 24
	devs := make([]*zns.Device, 5)
	for i := range devs {
		devs[i] = zns.NewDevice(c, cfg)
	}
	rcfg := raizn.DefaultConfig()
	rcfg.MaxOpenZones = 5
	v, err := raizn.Create(c, devs, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	fsys, err := lfs.Format(c, fio.RaiznTarget{V: v})
	if err != nil {
		t.Fatal(err)
	}
	return fsys
}

func smallOpts() Options {
	return Options{
		MemtableBytes:   8 << 10,
		L0Files:         3,
		BaseLevelBytes:  32 << 10,
		TargetFileBytes: 16 << 10,
		MaxLevels:       4,
	}
}

func runDB(t *testing.T, opt Options, fn func(c *vclock.Clock, db *DB, fsys *lfs.FS)) {
	t.Helper()
	c := vclock.New()
	c.Run(func() {
		fsys := newTestFS(t, c)
		db, err := Open(c, fsys, opt)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		fn(c, db, fsys)
	})
}

func key(i int) []byte { return []byte(fmt.Sprintf("key%08d", i)) }

func val(i, size int) []byte {
	v := make([]byte, size)
	for j := range v {
		v[j] = byte(i) ^ byte(j) ^ byte(i>>8)
	}
	return v
}

func TestPutGet(t *testing.T) {
	runDB(t, smallOpts(), func(c *vclock.Clock, db *DB, fsys *lfs.FS) {
		if err := db.Put(key(1), val(1, 100)); err != nil {
			t.Fatal(err)
		}
		got, err := db.Get(key(1))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val(1, 100)) {
			t.Error("value mismatch")
		}
		if _, err := db.Get(key(2)); err != ErrNotFound {
			t.Errorf("missing key error = %v", err)
		}
		db.Close()
	})
}

func TestOverwriteLatestWins(t *testing.T) {
	runDB(t, smallOpts(), func(c *vclock.Clock, db *DB, fsys *lfs.FS) {
		db.Put(key(7), val(1, 50))
		db.Put(key(7), val(2, 60))
		got, err := db.Get(key(7))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val(2, 60)) {
			t.Error("overwrite not visible")
		}
		db.Close()
	})
}

func TestDeleteTombstone(t *testing.T) {
	runDB(t, smallOpts(), func(c *vclock.Clock, db *DB, fsys *lfs.FS) {
		db.Put(key(3), val(3, 40))
		if err := db.Flush(); err != nil { // push it into an SST
			t.Fatal(err)
		}
		db.Delete(key(3))
		if _, err := db.Get(key(3)); err != ErrNotFound {
			t.Errorf("deleted key error = %v", err)
		}
		// The tombstone must shadow the SST copy across a flush too.
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Get(key(3)); err != ErrNotFound {
			t.Errorf("deleted key after flush error = %v", err)
		}
		db.Close()
	})
}

func TestFlushAndCompactionPreserveData(t *testing.T) {
	runDB(t, smallOpts(), func(c *vclock.Clock, db *DB, fsys *lfs.FS) {
		const n = 400
		for i := 0; i < n; i++ {
			if err := db.Put(key(i), val(i, 200)); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
		}
		if err := db.WaitIdle(); err != nil {
			t.Fatal(err)
		}
		if db.FlushCount == 0 {
			t.Error("no memtable flush happened")
		}
		if db.CompactCount == 0 {
			t.Error("no compaction happened")
		}
		for i := 0; i < n; i++ {
			got, err := db.Get(key(i))
			if err != nil {
				t.Fatalf("get %d: %v", i, err)
			}
			if !bytes.Equal(got, val(i, 200)) {
				t.Fatalf("value %d mismatch", i)
			}
		}
		db.Close()
	})
}

func TestRandomWorkloadAgainstShadowMap(t *testing.T) {
	runDB(t, smallOpts(), func(c *vclock.Clock, db *DB, fsys *lfs.FS) {
		rng := rand.New(rand.NewSource(11))
		shadow := map[string][]byte{}
		for op := 0; op < 1500; op++ {
			i := rng.Intn(200)
			switch rng.Intn(10) {
			case 0:
				db.Delete(key(i))
				delete(shadow, string(key(i)))
			default:
				v := val(rng.Int(), 50+rng.Intn(300))
				db.Put(key(i), v)
				shadow[string(key(i))] = v
			}
		}
		if err := db.WaitIdle(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			want, exists := shadow[string(key(i))]
			got, err := db.Get(key(i))
			switch {
			case exists && err != nil:
				t.Fatalf("key %d: unexpected error %v", i, err)
			case exists && !bytes.Equal(got, want):
				t.Fatalf("key %d: value mismatch", i)
			case !exists && err != ErrNotFound:
				t.Fatalf("key %d: expected ErrNotFound, got %v", i, err)
			}
		}
		db.Close()
	})
}

func TestScan(t *testing.T) {
	runDB(t, smallOpts(), func(c *vclock.Clock, db *DB, fsys *lfs.FS) {
		for i := 0; i < 100; i++ {
			db.Put(key(i), val(i, 100))
		}
		db.Flush()
		for i := 100; i < 120; i++ { // some still in memtable
			db.Put(key(i), val(i, 100))
		}
		db.Delete(key(55))
		kvs, err := db.Scan(string(key(50)), 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(kvs) != 10 {
			t.Fatalf("scan returned %d entries", len(kvs))
		}
		// 55 was deleted: expect 50,51,52,53,54,56,57,58,59,60.
		want := []int{50, 51, 52, 53, 54, 56, 57, 58, 59, 60}
		for i, kv := range kvs {
			if kv.Key != string(key(want[i])) {
				t.Fatalf("scan[%d] = %s, want %s", i, kv.Key, key(want[i]))
			}
			if !bytes.Equal(kv.Value, val(want[i], 100)) {
				t.Fatalf("scan[%d] value mismatch", i)
			}
		}
		db.Close()
	})
}

func TestReopenRecoversFromManifest(t *testing.T) {
	runDB(t, smallOpts(), func(c *vclock.Clock, db *DB, fsys *lfs.FS) {
		for i := 0; i < 150; i++ {
			db.Put(key(i), val(i, 150))
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		db2, err := Open(c, fsys, smallOpts())
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		for i := 0; i < 150; i++ {
			got, err := db2.Get(key(i))
			if err != nil {
				t.Fatalf("get %d after reopen: %v", i, err)
			}
			if !bytes.Equal(got, val(i, 150)) {
				t.Fatalf("value %d mismatch after reopen", i)
			}
		}
		// Writes continue with increasing sequence numbers.
		db2.Put(key(3), val(999, 80))
		got, _ := db2.Get(key(3))
		if !bytes.Equal(got, val(999, 80)) {
			t.Error("post-reopen overwrite lost")
		}
		db2.Close()
	})
}

func TestSyncWritesSurviveWALReplay(t *testing.T) {
	opt := smallOpts()
	opt.SyncWrites = true
	runDB(t, opt, func(c *vclock.Clock, db *DB, fsys *lfs.FS) {
		for i := 0; i < 10; i++ {
			if err := db.Put(key(i), val(i, 60)); err != nil {
				t.Fatal(err)
			}
		}
		// Simulate a crash: do NOT close; reopen replays the WAL.
		db.mu.Lock()
		db.closed = true // stop the worker without flushing
		db.cond.Broadcast()
		db.mu.Unlock()

		db2, err := Open(c, fsys, opt)
		if err != nil {
			t.Fatalf("reopen after crash: %v", err)
		}
		for i := 0; i < 10; i++ {
			got, err := db2.Get(key(i))
			if err != nil {
				t.Fatalf("get %d after WAL replay: %v", i, err)
			}
			if !bytes.Equal(got, val(i, 60)) {
				t.Fatalf("value %d mismatch after WAL replay", i)
			}
		}
		db2.Close()
	})
}

func TestTombstonesPurgedAtBottomLevel(t *testing.T) {
	runDB(t, smallOpts(), func(c *vclock.Clock, db *DB, fsys *lfs.FS) {
		for i := 0; i < 100; i++ {
			db.Put(key(i), val(i, 200))
		}
		for i := 0; i < 100; i++ {
			db.Delete(key(i))
		}
		if err := db.WaitIdle(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			if _, err := db.Get(key(i)); err != ErrNotFound {
				t.Fatalf("key %d resurrected: %v", i, err)
			}
		}
		db.Close()
	})
}

func TestConcurrentReadersDuringWrites(t *testing.T) {
	runDB(t, smallOpts(), func(c *vclock.Clock, db *DB, fsys *lfs.FS) {
		// Preload so readers always have something to find.
		const n = 120
		for i := 0; i < n; i++ {
			db.Put(key(i), val(i, 120))
		}
		stop := false
		wg := c.NewWaitGroup()
		// One writer overwriting keys with version-tagged values.
		wg.Add(1)
		c.Go(func() {
			defer wg.Done()
			for round := 1; round <= 8; round++ {
				for i := 0; i < n; i++ {
					if err := db.Put(key(i), val(i+1000*round, 120)); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				}
			}
			stop = true
		})
		// Four readers validating that values are always well-formed
		// (some version of the key, never torn).
		for r := 0; r < 4; r++ {
			r := r
			wg.Add(1)
			c.Go(func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(r)))
				for !stop {
					i := rng.Intn(n)
					got, err := db.Get(key(i))
					if err != nil {
						t.Errorf("get %d: %v", i, err)
						return
					}
					if len(got) != 120 {
						t.Errorf("torn value: %d bytes", len(got))
						return
					}
					// Memtable hits cost no virtual time; pace the loop
					// so the simulation's clock can advance.
					c.Sleep(5 * time.Microsecond)
				}
			})
		}
		wg.Wait()
		if err := db.WaitIdle(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			got, err := db.Get(key(i))
			if err != nil {
				t.Fatalf("final get %d: %v", i, err)
			}
			if !bytes.Equal(got, val(i+8000, 120)) {
				t.Fatalf("key %d: final value mismatch", i)
			}
		}
		db.Close()
	})
}
