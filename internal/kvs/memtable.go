package kvs

import "sort"

// entry is one versioned value.
type entry struct {
	seq       uint64
	value     []byte
	tombstone bool
}

// memtable is the in-memory write buffer: a map with on-demand sorted
// iteration (sorting happens at flush and scan time, off the Put path).
type memtable struct {
	m     map[string]entry
	bytes int64
}

func newMemtable() *memtable {
	return &memtable{m: make(map[string]entry)}
}

func (t *memtable) put(key string, value []byte, seq uint64, tombstone bool) {
	var v []byte
	if !tombstone {
		v = append([]byte(nil), value...)
	}
	if old, ok := t.m[key]; ok {
		t.bytes -= int64(len(key) + len(old.value))
	}
	t.m[key] = entry{seq: seq, value: v, tombstone: tombstone}
	t.bytes += int64(len(key) + len(v))
}

func (t *memtable) get(key string) (entry, bool) {
	e, ok := t.m[key]
	return e, ok
}

func (t *memtable) count() int { return len(t.m) }

// sortedKeys returns the keys in order.
func (t *memtable) sortedKeys() []string {
	keys := make([]string, 0, len(t.m))
	for k := range t.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// scan feeds up to limit entries with key >= start into consider, in key
// order, returning how many were fed and the last key.
func (t *memtable) scan(start string, limit int, consider func(string, entry)) (int, string) {
	n := 0
	last := ""
	for _, k := range t.sortedKeys() {
		if k < start {
			continue
		}
		consider(k, t.m[k])
		n++
		last = k
		if n == limit {
			break
		}
	}
	return n, last
}
