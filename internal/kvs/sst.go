package kvs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"raizn/internal/lfs"
)

// Sorted table file format (all integers little endian):
//
//	entries:  repeated { u64 seq | u32 klen | u32 vlen | key | value }
//	          vlen == tombstoneLen marks a tombstone (no value bytes)
//	index:    repeated { u32 klen | key | u64 offset }
//	footer:   u64 indexOffset | u32 indexCount | u32 magic
//
// The full index is kept in memory for open tables (tables are small at
// this reproduction's scale; RocksDB would use block-sparse indexes).

const (
	sstMagic     = 0x53535431 // "SST1"
	tombstoneLen = 0xFFFFFFFF
	sstFooterLen = 16
)

// tableMeta describes one immutable sorted table.
type tableMeta struct {
	name     string
	level    int
	size     int64 // entry-region bytes
	minKey   string
	maxKey   string
	idxKeys  []string
	idxOffs  []int64
	entryEnd int64 // offset where the index starts
}

// writeTable writes sorted entries to a new file and returns its
// metadata. keys must be sorted; entries maps key to its newest version.
func writeTable(fsys *lfs.FS, name string, keys []string, get func(string) entry) (*tableMeta, error) {
	f, err := fsys.Create(name, lfs.Cold)
	if err != nil {
		return nil, err
	}
	t := &tableMeta{name: name}
	var buf []byte
	var off int64
	for _, k := range keys {
		e := get(k)
		t.idxKeys = append(t.idxKeys, k)
		t.idxOffs = append(t.idxOffs, off)
		vlen := uint32(len(e.value))
		if e.tombstone {
			vlen = tombstoneLen
		}
		buf = binary.LittleEndian.AppendUint64(buf[:0], e.seq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k)))
		buf = binary.LittleEndian.AppendUint32(buf, vlen)
		buf = append(buf, k...)
		if !e.tombstone {
			buf = append(buf, e.value...)
		}
		if err := f.Append(buf); err != nil {
			return nil, err
		}
		off += int64(len(buf))
	}
	t.entryEnd = off
	t.size = off
	if len(keys) > 0 {
		t.minKey, t.maxKey = keys[0], keys[len(keys)-1]
	}
	// Index + footer.
	var idx []byte
	for i, k := range t.idxKeys {
		idx = binary.LittleEndian.AppendUint32(idx, uint32(len(k)))
		idx = append(idx, k...)
		idx = binary.LittleEndian.AppendUint64(idx, uint64(t.idxOffs[i]))
	}
	idx = binary.LittleEndian.AppendUint64(idx, uint64(off))
	idx = binary.LittleEndian.AppendUint32(idx, uint32(len(t.idxKeys)))
	idx = binary.LittleEndian.AppendUint32(idx, sstMagic)
	if err := f.Append(idx); err != nil {
		return nil, err
	}
	return t, nil
}

// openTable loads a table's index from the file (used on recovery).
func openTable(fsys *lfs.FS, name string, level int) (*tableMeta, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	size := f.Size()
	if size < sstFooterLen {
		return nil, fmt.Errorf("kvs: table %s too small", name)
	}
	foot := make([]byte, sstFooterLen)
	if err := f.ReadAt(foot, size-sstFooterLen); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(foot[12:16]) != sstMagic {
		return nil, fmt.Errorf("kvs: table %s bad magic", name)
	}
	entryEnd := int64(binary.LittleEndian.Uint64(foot[0:8]))
	count := int(binary.LittleEndian.Uint32(foot[8:12]))
	idxBytes := make([]byte, size-sstFooterLen-entryEnd)
	if err := f.ReadAt(idxBytes, entryEnd); err != nil {
		return nil, err
	}
	t := &tableMeta{name: name, level: level, size: entryEnd, entryEnd: entryEnd}
	off := 0
	for i := 0; i < count; i++ {
		kl := int(binary.LittleEndian.Uint32(idxBytes[off:]))
		off += 4
		k := string(idxBytes[off : off+kl])
		off += kl
		o := int64(binary.LittleEndian.Uint64(idxBytes[off:]))
		off += 8
		t.idxKeys = append(t.idxKeys, k)
		t.idxOffs = append(t.idxOffs, o)
	}
	if count > 0 {
		t.minKey, t.maxKey = t.idxKeys[0], t.idxKeys[count-1]
	}
	return t, nil
}

// get looks up k, reading exactly the entry's byte range.
func (t *tableMeta) get(fsys *lfs.FS, k string) (entry, bool, error) {
	i := t.search(k)
	if i < 0 {
		return entry{}, false, nil
	}
	end := t.entryEnd
	if i+1 < len(t.idxOffs) {
		end = t.idxOffs[i+1]
	}
	f, err := fsys.Open(t.name)
	if err != nil {
		return entry{}, false, err
	}
	buf := make([]byte, end-t.idxOffs[i])
	if err := f.ReadAt(buf, t.idxOffs[i]); err != nil {
		return entry{}, false, err
	}
	e, _, err := decodeEntry(buf)
	if err != nil {
		return entry{}, false, err
	}
	return e.entry, true, nil
}

// search returns the index of k, or -1.
func (t *tableMeta) search(k string) int {
	lo, hi := 0, len(t.idxKeys)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.idxKeys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(t.idxKeys) && t.idxKeys[lo] == k {
		return lo
	}
	return -1
}

// scan feeds up to limit entries with key >= start into consider,
// returning how many were fed and the last key.
func (t *tableMeta) scan(fsys *lfs.FS, start string, limit int, consider func(string, entry)) (int, string, error) {
	// Lower bound.
	lo, hi := 0, len(t.idxKeys)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.idxKeys[mid] < start {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(t.idxKeys) {
		return 0, "", nil
	}
	last := lo + limit
	if last > len(t.idxKeys) {
		last = len(t.idxKeys)
	}
	end := t.entryEnd
	if last < len(t.idxOffs) {
		end = t.idxOffs[last]
	}
	f, err := fsys.Open(t.name)
	if err != nil {
		return 0, "", err
	}
	buf := make([]byte, end-t.idxOffs[lo])
	if err := f.ReadAt(buf, t.idxOffs[lo]); err != nil {
		return 0, "", err
	}
	lastKey := ""
	for i := lo; i < last; i++ {
		e, n, err := decodeEntry(buf)
		if err != nil {
			return 0, "", err
		}
		consider(e.key, e.entry)
		lastKey = e.key
		buf = buf[n:]
	}
	return last - lo, lastKey, nil
}

// loadAll reads every entry of the table in key order (compaction input).
func (t *tableMeta) loadAll(fsys *lfs.FS) ([]keyedEntry, error) {
	if len(t.idxKeys) == 0 {
		return nil, nil
	}
	f, err := fsys.Open(t.name)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, t.entryEnd)
	if err := f.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	out := make([]keyedEntry, 0, len(t.idxKeys))
	for len(out) < len(t.idxKeys) {
		e, n, err := decodeEntry(buf)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		buf = buf[n:]
	}
	return out, nil
}

type keyedEntry struct {
	key string
	entry
}

func decodeEntry(b []byte) (keyedEntry, int, error) {
	if len(b) < 16 {
		return keyedEntry{}, 0, errors.New("kvs: truncated entry")
	}
	seq := binary.LittleEndian.Uint64(b[0:8])
	kl := int(binary.LittleEndian.Uint32(b[8:12]))
	vl32 := binary.LittleEndian.Uint32(b[12:16])
	tomb := vl32 == tombstoneLen
	vl := 0
	if !tomb {
		vl = int(vl32)
	}
	if len(b) < 16+kl+vl {
		return keyedEntry{}, 0, errors.New("kvs: truncated entry body")
	}
	k := string(b[16 : 16+kl])
	var v []byte
	if !tomb {
		v = append([]byte(nil), b[16+kl:16+kl+vl]...)
	}
	return keyedEntry{key: k, entry: entry{seq: seq, value: v, tombstone: tomb}}, 16 + kl + vl, nil
}
