package kvs

import (
	"encoding/binary"
)

// WAL record: u64 seq | u32 klen | u32 vlen (tombstoneLen = delete) |
// key | value. The file is append-only; replay stops at the first
// truncated or zero record (lfs pads synced tails with zeroes, which
// decode as an invalid zero-length record).
func encodeWALRecord(key, value []byte, tombstone bool, seq uint64) []byte {
	vlen := uint32(len(value))
	if tombstone {
		vlen = tombstoneLen
	}
	b := make([]byte, 0, 16+len(key)+len(value))
	b = binary.LittleEndian.AppendUint64(b, seq)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(key)))
	b = binary.LittleEndian.AppendUint32(b, vlen)
	b = append(b, key...)
	if !tombstone {
		b = append(b, value...)
	}
	return b
}

// replayWAL parses records from raw WAL bytes into the memtable,
// returning the highest sequence number seen.
func (db *DB) replayWAL(raw []byte, mem *memtable) uint64 {
	var maxSeq uint64
	for len(raw) >= 16 {
		seq := binary.LittleEndian.Uint64(raw[0:8])
		kl := int(binary.LittleEndian.Uint32(raw[8:12]))
		vl32 := binary.LittleEndian.Uint32(raw[12:16])
		tomb := vl32 == tombstoneLen
		vl := 0
		if !tomb {
			vl = int(vl32)
		}
		if kl == 0 || len(raw) < 16+kl+vl {
			break // padding or torn record: end of log
		}
		key := string(raw[16 : 16+kl])
		var val []byte
		if !tomb {
			val = raw[16+kl : 16+kl+vl]
		}
		mem.put(key, val, seq, tomb)
		if seq > maxSeq {
			maxSeq = seq
		}
		raw = raw[16+kl+vl:]
	}
	return maxSeq
}
