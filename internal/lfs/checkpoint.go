package lfs

import (
	"encoding/binary"
	"errors"

	"raizn/internal/vclock"
)

// Checkpoints persist the file table and segment states into the two
// reserved metadata segments, alternating between them like F2FS's
// checkpoint packs: records are appended to the current pack; when it
// fills, the other pack is reset and becomes current. On mount the record
// with the highest generation wins, so a torn checkpoint write simply
// falls back to the previous one.

// encodeCheckpointLocked serializes the filesystem state. Caller holds
// fs.mu.
func (fs *FS) encodeCheckpointLocked() []byte {
	var b []byte
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }

	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	u32(uint32(len(names)))
	for _, n := range names {
		f := fs.files[n]
		u32(uint32(len(n)))
		b = append(b, n...)
		b = append(b, byte(f.temp))
		u64(uint64(f.size))
		u64(uint64(f.tailAt))
		u32(uint32(len(f.blocks)))
		for _, lba := range f.blocks {
			u64(uint64(lba))
		}
		u32(uint32(len(f.tail)))
		b = append(b, f.tail...)
	}
	u32(uint32(len(fs.segs)))
	for i := range fs.segs {
		b = append(b, byte(fs.segs[i].state))
		u64(uint64(fs.segs[i].used))
	}
	return b
}

func (fs *FS) decodeCheckpoint(b []byte) (err error) {
	// A corrupt blob cannot occur for a checkpoint whose header length
	// was satisfied, but decode defensively: any slice panic rejects the
	// blob without mutating the filesystem (state is committed at the
	// end).
	defer func() {
		if recover() != nil {
			err = errors.New("lfs: corrupt checkpoint")
		}
	}()
	var off int
	u32 := func() uint32 {
		v := binary.LittleEndian.Uint32(b[off:])
		off += 4
		return v
	}
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(b[off:])
		off += 8
		return v
	}

	nFiles := int(u32())
	files := make(map[string]*File, nFiles)
	for i := 0; i < nFiles; i++ {
		nl := int(u32())
		name := string(b[off : off+nl])
		off += nl
		temp := Temp(b[off])
		off++
		size := int64(u64())
		tailAt := int64(u64())
		nb := int(u32())
		blocks := make([]int64, nb)
		for j := 0; j < nb; j++ {
			blocks[j] = int64(u64())
		}
		tl := int(u32())
		tail := append([]byte(nil), b[off:off+tl]...)
		off += tl
		files[name] = &File{fs: fs, name: name, temp: temp, size: size, tailAt: tailAt, blocks: blocks, tail: tail}
	}
	nSegs := int(u32())
	if nSegs != len(fs.segs) {
		return errors.New("lfs: checkpoint segment count mismatch")
	}
	segs := make([]segInfo, nSegs)
	for i := 0; i < nSegs; i++ {
		segs[i].state = segState(b[off])
		off++
		segs[i].used = int64(u64())
	}
	// Commit.
	copy(fs.segs, segs)
	fs.files = files

	// Rebuild the reverse map and per-segment valid counts.
	fs.rmap = make(map[int64]blockOwner)
	for _, f := range fs.files {
		for idx, lba := range f.blocks {
			if lba < 0 {
				continue
			}
			fs.rmap[lba] = blockOwner{file: f, idx: int64(idx)}
			fs.segs[lba/fs.segSz].valid++
		}
	}
	// Active segments are abandoned (their post-checkpoint tail is
	// unreachable); the cleaner reclaims the garbage.
	fs.free = fs.free[:0]
	for t := range fs.active {
		fs.active[t] = -1
	}
	for i := range fs.segs {
		switch fs.segs[i].state {
		case segActive:
			fs.segs[i].state = segFull
			fs.segs[i].used = fs.segSz // unreachable tail counts as garbage
		case segFree:
			if i >= mdSegments {
				fs.free = append(fs.free, i)
			}
		}
	}
	return nil
}

const ckptHeader = 24 // magic(4) pad(4) gen(8) len(8)

// checkpointLocked appends a checkpoint record to the current metadata
// pack. Caller holds fs.mu; the lock is dropped around device IO with the
// ckptBusy flag serializing checkpointers.
func (fs *FS) checkpointLocked() error {
	for fs.ckptBusy {
		fs.cond.Wait()
	}
	fs.ckptBusy = true
	defer func() {
		fs.ckptBusy = false
		fs.cond.Broadcast()
	}()

	fs.ckptGen++
	payload := fs.encodeCheckpointLocked()
	bs := int64(fs.block)
	total := (ckptHeader + int64(len(payload)) + bs - 1) / bs * bs
	blob := make([]byte, total)
	binary.LittleEndian.PutUint32(blob[0:4], ckptMagic)
	binary.LittleEndian.PutUint64(blob[8:16], fs.ckptGen)
	binary.LittleEndian.PutUint64(blob[16:24], uint64(len(payload)))
	copy(blob[ckptHeader:], payload)
	nBlocks := total / bs

	if fs.ckptWP+nBlocks > fs.segSz {
		// Roll over to the other pack.
		other := 1 - fs.ckptSeg
		rz := fs.resetSegment(other)
		fs.mu.Unlock()
		err := rz.Wait()
		fs.mu.Lock()
		if err != nil {
			return err
		}
		fs.ckptSeg = other
		fs.ckptWP = 0
		if nBlocks > fs.segSz {
			return errors.New("lfs: checkpoint larger than a segment")
		}
	}
	lba := fs.segStart(fs.ckptSeg) + fs.ckptWP
	fs.ckptWP += nBlocks
	ticket := fs.takeTicketLocked()
	fs.mu.Unlock()
	err := fs.submitOrdered(ticket, lba, blob).Wait()
	fs.mu.Lock()
	return err
}

// Mount loads a filesystem previously created by Format from the device,
// restoring the newest complete checkpoint.
func Mount(clk *vclock.Clock, dev Device) (*FS, error) {
	fs := newFS(clk, dev)
	bs := int64(fs.block)

	var best []byte
	var bestGen uint64
	bestSeg, bestEnd := 0, int64(0)
	for seg := 0; seg < mdSegments; seg++ {
		wp := int64(0)
		hdr := make([]byte, bs)
		for wp < fs.segSz {
			lba := fs.segStart(seg) + wp
			if err := dev.SubmitRead(lba, hdr).Wait(); err != nil {
				break // beyond the zone write pointer
			}
			if binary.LittleEndian.Uint32(hdr[0:4]) != ckptMagic {
				break
			}
			gen := binary.LittleEndian.Uint64(hdr[8:16])
			plen := int64(binary.LittleEndian.Uint64(hdr[16:24]))
			total := (ckptHeader + plen + bs - 1) / bs * bs
			if wp+total/bs > fs.segSz {
				break // torn record
			}
			blob := make([]byte, total)
			copy(blob, hdr)
			if total > bs {
				if err := dev.SubmitRead(lba+1, blob[bs:]).Wait(); err != nil {
					break // payload beyond write pointer: torn
				}
			}
			if gen > bestGen {
				bestGen = gen
				best = blob[ckptHeader : ckptHeader+plen]
				bestSeg = seg
				bestEnd = wp + total/bs
			}
			wp += total / bs
		}
	}
	if best == nil {
		return nil, errors.New("lfs: no valid checkpoint found (not formatted?)")
	}
	if err := fs.decodeCheckpoint(best); err != nil {
		return nil, err
	}
	fs.ckptGen = bestGen
	fs.ckptSeg = bestSeg
	// A torn record may sit beyond the last good one, so the zone write
	// pointer can be ahead of bestEnd; force the next checkpoint to roll
	// over to a freshly reset pack rather than append.
	_ = bestEnd
	fs.ckptWP = fs.segSz
	fs.segs[0].state = segMeta
	fs.segs[1].state = segMeta
	return fs, nil
}
