package lfs

import (
	"raizn/internal/vclock"
)

// cleanLocked frees segments by relocating the live blocks of the
// fullest-invalidated segments into the active logs (F2FS "segment
// cleaning"; on a zoned volume this is the host-side GC the ZNS interface
// makes explicit). Caller holds fs.mu; the lock is released around device
// IO, with the cleaning flag excluding concurrent cleaners/allocators.
func (fs *FS) cleanLocked() error {
	for fs.cleaning {
		fs.cond.Wait()
		if len(fs.free) > 0 {
			return nil // another cleaner already freed space
		}
	}
	fs.cleaning = true
	defer func() {
		fs.cleaning = false
		fs.cond.Broadcast()
	}()
	fs.CleanRuns++

	victim := fs.pickVictimLocked()
	if victim < 0 {
		return ErrNoSpace
	}
	si := &fs.segs[victim]

	// Relocate the victim's live blocks. Live = the owning file's block
	// pointer still references the lba.
	bs := int64(fs.block)
	start := fs.segStart(victim)
	for b := int64(0); b < si.used; b++ {
		lba := start + b
		owner, ok := fs.rmap[lba]
		if !ok || owner.idx >= int64(len(owner.file.blocks)) || owner.file.blocks[owner.idx] != lba {
			continue
		}
		// Copy: read old block, append to the owner's temperature log.
		buf := make([]byte, bs)
		rf := fs.dev.SubmitRead(lba, buf)
		fs.mu.Unlock()
		err := rf.Wait()
		fs.mu.Lock()
		if err != nil {
			return err
		}
		// Re-check liveness after the blocking read.
		if owner.file.blocks[owner.idx] != lba {
			continue
		}
		newLBA, err := fs.allocForCleanLocked(owner.file.temp, victim)
		if err != nil {
			return err
		}
		ticket := fs.takeTicketLocked()
		fs.mu.Unlock()
		err = fs.submitOrdered(ticket, newLBA, buf).Wait()
		fs.mu.Lock()
		if err != nil {
			return err
		}
		fs.invalidateLocked(lba)
		owner.file.blocks[owner.idx] = newLBA
		fs.rmap[newLBA] = owner
		fs.CleanedBlocks++
	}

	// Before erasing the victim, the relocated blocks and the file table
	// referencing their new homes must be durable — otherwise a crash
	// after the reset would leave the only checkpoint pointing into the
	// erased segment. Order: checkpoint (new locations), flush (data +
	// checkpoint), then reset.
	if err := fs.checkpointLocked(); err != nil {
		return err
	}
	fl := fs.clk.NewFuture()
	fs.clk.Go(func() { fl.Complete(fs.dev.Flush()) })
	fs.mu.Unlock()
	err := fl.Wait()
	fs.mu.Lock()
	if err != nil {
		return err
	}

	// The victim is now fully invalid: reset it back into the pool.
	rz := fs.resetSegment(victim)
	fs.mu.Unlock()
	err = rz.Wait()
	fs.mu.Lock()
	if err != nil {
		return err
	}
	fs.segs[victim] = segInfo{state: segFree}
	fs.free = append(fs.free, victim)
	return nil
}

// resetSegment issues the zone reset for a data segment and returns its
// completion. Caller holds fs.mu.
func (fs *FS) resetSegment(seg int) *vclock.Future {
	fut := fs.clk.NewFuture()
	fs.clk.Go(func() {
		fut.Complete(fs.dev.ResetZone(seg))
	})
	return fut
}

// pickVictimLocked chooses the full segment with the fewest live blocks
// (greedy policy). Segments with no invalid blocks are not worth
// cleaning.
func (fs *FS) pickVictimLocked() int {
	best, bestValid := -1, fs.segSz
	for i := mdSegments; i < len(fs.segs); i++ {
		si := &fs.segs[i]
		if si.state != segFull {
			continue
		}
		if si.valid < bestValid {
			best, bestValid = i, si.valid
		}
	}
	return best
}

// allocForCleanLocked allocates a relocation block without recursing into
// the cleaner. It may consume the last free segment; the victim being
// cleaned is about to replenish the pool.
func (fs *FS) allocForCleanLocked(t Temp, victim int) (int64, error) {
	if fs.active[t] >= 0 {
		seg := fs.active[t]
		si := &fs.segs[seg]
		if si.used < fs.segSz {
			lba := fs.segStart(seg) + si.used
			si.used++
			si.valid++
			return lba, nil
		}
		si.state = segFull
		fs.active[t] = -1
	}
	if len(fs.free) == 0 {
		return -1, ErrNoSpace
	}
	seg := fs.free[len(fs.free)-1]
	fs.free = fs.free[:len(fs.free)-1]
	fs.segs[seg] = segInfo{state: segActive}
	fs.active[t] = seg
	return fs.allocForCleanLocked(t, victim)
}
