package lfs

import "raizn/internal/vclock"

// FlatVolume is the minimal flat (overwritable) volume interface needed
// to host the filesystem on block storage; mdraid's volume satisfies the
// submit methods via the fio adapter, or use MdraidDevice below.
type FlatVolume interface {
	SectorSize() int
	NumSectors() int64
	SubmitWrite(lba int64, data []byte) *vclock.Future
	SubmitRead(lba int64, buf []byte) *vclock.Future
	Flush() error
}

// BlockDevice adapts a flat volume to the Device interface by imposing
// synthetic segments: zone resets are pure bookkeeping because the
// underlying volume supports overwrites (the FTL absorbs them — exactly
// the regime that triggers on-device GC in the paper's baseline).
type BlockDevice struct {
	V          FlatVolume
	SegSectors int64
}

// NewBlockDevice wraps v with the given segment size in sectors.
func NewBlockDevice(v FlatVolume, segSectors int64) BlockDevice {
	return BlockDevice{V: v, SegSectors: segSectors}
}

// SectorSize implements Device.
func (b BlockDevice) SectorSize() int { return b.V.SectorSize() }

// NumSectors implements Device.
func (b BlockDevice) NumSectors() int64 { return b.V.NumSectors() }

// SubmitWrite implements Device.
func (b BlockDevice) SubmitWrite(lba int64, data []byte) *vclock.Future {
	return b.V.SubmitWrite(lba, data)
}

// SubmitRead implements Device.
func (b BlockDevice) SubmitRead(lba int64, buf []byte) *vclock.Future {
	return b.V.SubmitRead(lba, buf)
}

// Flush implements Device.
func (b BlockDevice) Flush() error { return b.V.Flush() }

// ZoneSectors implements Device.
func (b BlockDevice) ZoneSectors() int64 { return b.SegSectors }

// NumZones implements Device.
func (b BlockDevice) NumZones() int { return int(b.V.NumSectors() / b.SegSectors) }

// ResetZone implements Device: a no-op, since block volumes overwrite in
// place.
func (b BlockDevice) ResetZone(z int) error { return nil }
