// Package lfs implements a zone-aware log-structured filesystem in the
// role F2FS plays in the paper's application benchmarks (§6.3): it runs
// unmodified on both the RAIZN logical ZNS volume and the mdraid block
// volume, mapping segments to zones on zoned storage (so all device-level
// placement is sequential and erases are whole-zone resets) and to plain
// regions on block storage.
//
// Like F2FS it separates multi-head logs by data temperature (hot =
// write-ahead logs, cold = sorted tables), performs segment cleaning when
// free segments run low, and persists its file table with checkpoint
// records in dedicated metadata segments.
package lfs

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"raizn/internal/vclock"
)

// Device is the storage a filesystem instance runs on. The fio target
// adapters for RAIZN satisfy the zoned form; block volumes are wrapped by
// BlockDevice.
type Device interface {
	SectorSize() int
	NumSectors() int64
	SubmitWrite(lba int64, data []byte) *vclock.Future
	SubmitRead(lba int64, buf []byte) *vclock.Future
	Flush() error

	// Segment geometry. Zoned devices map segments to zones and must
	// reset a zone before it is rewritten; block devices treat resets
	// as free-list bookkeeping.
	ZoneSectors() int64
	NumZones() int
	ResetZone(z int) error
}

// Temp is a data temperature hint, selecting the active log a file's
// blocks are appended to (F2FS's multi-head logging).
type Temp int

const (
	Hot  Temp = iota // frequently rewritten, short-lived (WAL)
	Cold             // write-once, long-lived (SSTs)
	numTemps
)

// Errors.
var (
	ErrExist    = errors.New("lfs: file exists")
	ErrNotExist = errors.New("lfs: file does not exist")
	ErrNoSpace  = errors.New("lfs: no free segments")
	ErrClosed   = errors.New("lfs: filesystem closed")
)

const (
	mdSegments = 2          // alternating checkpoint segments
	ckptMagic  = 0x4C465331 // "LFS1"
)

// FS is a mounted filesystem. Methods are safe for concurrent use by
// simulated goroutines.
type FS struct {
	dev   Device
	clk   *vclock.Clock
	block int   // bytes per block (= sector)
	segSz int64 // blocks per segment

	mu       sync.Mutex
	cond     *vclock.Cond
	files    map[string]*File
	segs     []segInfo
	active   [numTemps]int // active segment per temperature, -1 none
	free     []int
	ckptGen  uint64
	ckptSeg  int   // metadata segment currently appended to (0 or 1)
	ckptWP   int64 // next block within the checkpoint segment
	ckptBusy bool
	cleaning bool
	closed   bool

	rmap map[int64]blockOwner // lba -> owner, for segment cleaning

	// Write-submission ordering gate. Zoned volumes require writes to
	// arrive in write-pointer order, but volume SubmitWrite may block
	// (e.g. RAIZN metadata GC), so it must not run under fs.mu. Writers
	// take a ticket while holding fs.mu (fixing the order) and submit
	// through the gate: only the ticket's turn-holder proceeds, with no
	// sync.Mutex held across the potentially blocking submit.
	ordMu    sync.Mutex
	ordCond  *vclock.Cond
	wTickets uint64
	wServed  uint64

	// Stats.
	CleanedBlocks int64
	CleanRuns     int64
}

// takeTicketLocked reserves the next write-submission slot. Caller holds
// fs.mu.
func (fs *FS) takeTicketLocked() uint64 {
	t := fs.wTickets
	fs.wTickets++
	return t
}

// submitOrdered performs the volume write for the given ticket, in ticket
// order. It must be called WITHOUT fs.mu held and returns the completion
// future after the submit (not the completion) has happened.
func (fs *FS) submitOrdered(ticket uint64, lba int64, data []byte) *vclock.Future {
	fs.ordMu.Lock()
	for fs.wServed != ticket {
		fs.ordCond.Wait()
	}
	fs.ordMu.Unlock()
	fut := fs.dev.SubmitWrite(lba, data)
	fs.ordMu.Lock()
	fs.wServed++
	fs.ordCond.Broadcast()
	fs.ordMu.Unlock()
	return fut
}

type blockOwner struct {
	file *File
	idx  int64 // block index within the file
}

type segInfo struct {
	state segState
	used  int64 // blocks written (log head within the segment)
	valid int64 // live blocks
}

type segState uint8

const (
	segFree segState = iota
	segActive
	segFull
	segMeta
)

// File is an append-only file with block-granular relocation (rewriting
// the unaligned tail relocates it, as any log-structured FS must).
//
// Appends are pipelined like page-cache writeback: full blocks are
// submitted to the device without waiting, and Sync is the barrier that
// drains outstanding writes (collecting their errors) before flushing.
type File struct {
	fs      *FS
	name    string
	temp    Temp
	size    int64   // bytes
	blocks  []int64 // lba of each full or padded block, -1 = hole
	tail    []byte  // bytes past the last durable block boundary
	tailAt  int64   // block index the tail belongs to
	pending []*vclock.Future
	wErr    error // first async write error, surfaced on the next op
}

// maxPending bounds the write pipeline per file before backpressure.
const maxPending = 128

// drainPendingLocked waits for all outstanding writes of the file.
// Caller holds fs.mu; the lock is released around the waits.
func (f *File) drainPendingLocked() error {
	for len(f.pending) > 0 {
		fut := f.pending[0]
		f.pending = f.pending[1:]
		f.fs.mu.Unlock()
		err := fut.Wait()
		f.fs.mu.Lock()
		if err != nil && f.wErr == nil {
			f.wErr = err
		}
	}
	err := f.wErr
	f.wErr = nil
	return err
}

// Format initializes a filesystem on the device and returns it mounted.
func Format(clk *vclock.Clock, dev Device) (*FS, error) {
	if dev.NumZones() < mdSegments+2 {
		return nil, errors.New("lfs: device too small")
	}
	fs := newFS(clk, dev)
	// Reset everything (the device may hold a previous filesystem).
	for z := 0; z < dev.NumZones(); z++ {
		if err := dev.ResetZone(z); err != nil {
			return nil, err
		}
	}
	for i := range fs.segs {
		if i < mdSegments {
			fs.segs[i] = segInfo{state: segMeta}
		} else {
			fs.segs[i] = segInfo{state: segFree}
			fs.free = append(fs.free, i)
		}
	}
	fs.mu.Lock()
	err := fs.checkpointLocked()
	fs.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return fs, nil
}

func newFS(clk *vclock.Clock, dev Device) *FS {
	fs := &FS{
		dev:   dev,
		clk:   clk,
		block: dev.SectorSize(),
		segSz: dev.ZoneSectors(),
		files: make(map[string]*File),
		segs:  make([]segInfo, dev.NumZones()),
		rmap:  make(map[int64]blockOwner),
	}
	fs.cond = clk.NewCond(&fs.mu)
	fs.ordCond = clk.NewCond(&fs.ordMu)
	for t := range fs.active {
		fs.active[t] = -1
	}
	return fs
}

func (fs *FS) segStart(seg int) int64 { return int64(seg) * fs.segSz }

// Create creates an empty file with the given temperature hint.
func (fs *FS) Create(name string, temp Temp) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, ErrClosed
	}
	if _, ok := fs.files[name]; ok {
		return nil, ErrExist
	}
	f := &File{fs: fs, name: name, temp: temp, tailAt: 0}
	fs.files[name] = f
	return f, nil
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.files[name]; ok {
		return f, nil
	}
	return nil, ErrNotExist
}

// Exists reports whether the file exists.
func (fs *FS) Exists(name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[name]
	return ok
}

// List returns all file names, sorted.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for n := range fs.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Delete removes a file, invalidating its blocks.
func (fs *FS) Delete(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return ErrNotExist
	}
	for _, lba := range f.blocks {
		fs.invalidateLocked(lba)
	}
	f.blocks = nil
	delete(fs.files, name)
	return nil
}

// Rename renames a file, replacing any existing target (RocksDB-style
// atomic manifest swap).
func (fs *FS) Rename(old, new string) error {
	fs.mu.Lock()
	f, ok := fs.files[old]
	if !ok {
		fs.mu.Unlock()
		return ErrNotExist
	}
	victim := fs.files[new]
	if victim != nil {
		for _, lba := range victim.blocks {
			fs.invalidateLocked(lba)
		}
	}
	delete(fs.files, old)
	f.name = new
	fs.files[new] = f
	fs.mu.Unlock()
	return nil
}

func (fs *FS) invalidateLocked(lba int64) {
	if lba < 0 {
		return
	}
	seg := int(lba / fs.segSz)
	fs.segs[seg].valid--
	delete(fs.rmap, lba)
}

// cleanReserve is the number of free segments kept back for the
// cleaner's relocations: a victim's live blocks need somewhere to go, so
// cleaning must start before the pool is empty (the classic LFS reserved
// segments).
const cleanReserve = 2

// allocBlockLocked returns the next log block for temperature t,
// rotating to a fresh segment (and cleaning if needed) when the active
// one fills.
func (fs *FS) allocBlockLocked(t Temp) (int64, error) {
	for {
		if fs.active[t] >= 0 {
			seg := fs.active[t]
			si := &fs.segs[seg]
			if si.used < fs.segSz {
				lba := fs.segStart(seg) + si.used
				si.used++
				si.valid++
				return lba, nil
			}
			si.state = segFull
			fs.active[t] = -1
		}
		if len(fs.free) <= cleanReserve {
			err := fs.cleanLocked()
			if err == nil {
				continue
			}
			// Nothing cleanable: dip into the reserve rather than fail
			// a filesystem that still has space.
			if err != ErrNoSpace || len(fs.free) == 0 {
				return -1, err
			}
		}
		seg := fs.free[len(fs.free)-1]
		fs.free = fs.free[:len(fs.free)-1]
		fs.segs[seg] = segInfo{state: segActive}
		fs.active[t] = seg
	}
}

// Append appends p to the file. Full blocks are written immediately; the
// unaligned tail is buffered until Sync or until it fills.
func (f *File) Append(p []byte) error {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	bs := int64(fs.block)
	for len(p) > 0 {
		n := bs - int64(len(f.tail))
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		f.tail = append(f.tail, p[:n]...)
		p = p[n:]
		f.size += n
		if int64(len(f.tail)) == bs {
			if err := f.writeTailLocked(false); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeTailLocked writes the tail buffer as one (possibly padded) block
// at a fresh log location. If pad is false the tail must be exactly one
// block. Caller holds fs.mu.
func (f *File) writeTailLocked(pad bool) error {
	fs := f.fs
	bs := int64(fs.block)
	if len(f.tail) == 0 {
		return nil
	}
	lba, err := fs.allocBlockLocked(f.temp)
	if err != nil {
		return err
	}
	// Snapshot the tail: the submit happens after the ordering gate and
	// the pipeline keeps running, so the payload must not alias the
	// reusable tail buffer.
	blk := append([]byte(nil), f.tail...)
	if pad && int64(len(blk)) < bs {
		blk = append(blk, make([]byte, bs-int64(len(blk)))...)
	}
	// Relocate: invalidate the previous version of this block, if any.
	for int64(len(f.blocks)) <= f.tailAt {
		f.blocks = append(f.blocks, -1)
	}
	fs.invalidateLocked(f.blocks[f.tailAt])
	f.blocks[f.tailAt] = lba
	fs.rmap[lba] = blockOwner{file: f, idx: f.tailAt}
	ticket := fs.takeTicketLocked()

	fs.mu.Unlock()
	fut := fs.submitOrdered(ticket, lba, blk)
	fs.mu.Lock()
	f.pending = append(f.pending, fut)
	if len(f.pending) > maxPending {
		head := f.pending[0]
		f.pending = f.pending[1:]
		fs.mu.Unlock()
		err := head.Wait()
		fs.mu.Lock()
		if err != nil && f.wErr == nil {
			f.wErr = err
		}
	}
	if f.wErr != nil {
		err := f.wErr
		f.wErr = nil
		return err
	}
	if int64(len(f.tail)) == bs {
		f.tail = f.tail[:0]
		f.tailAt++
	}
	return nil
}

// Size returns the file size in bytes.
func (f *File) Size() int64 {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return f.size
}

// ReadAt reads len(p) bytes at byte offset off. Reads past EOF return
// io-style short data as an error.
func (f *File) ReadAt(p []byte, off int64) error {
	fs := f.fs
	fs.mu.Lock()
	if off < 0 || off+int64(len(p)) > f.size {
		fs.mu.Unlock()
		return fmt.Errorf("lfs: read [%d,%d) beyond EOF %d of %s", off, off+int64(len(p)), f.size, f.name)
	}
	bs := int64(fs.block)
	type pending struct {
		fut *vclock.Future
		tmp []byte // whole-block buffer for partial reads (nil = direct)
		dst []byte
		bo  int64
	}
	var reads []pending
	out := p
	pos := off
	for len(out) > 0 {
		bi := pos / bs
		bo := pos % bs
		n := bs - bo
		if n > int64(len(out)) {
			n = int64(len(out))
		}
		switch {
		case bi == f.tailAt && bo < int64(len(f.tail)):
			// Served from the in-memory tail.
			copy(out[:n], f.tail[bo:bo+n])
		case bo == 0 && n == bs:
			// Aligned full block: read straight into the caller's buf.
			reads = append(reads, pending{fut: fs.dev.SubmitRead(f.blocks[bi], out[:n])})
		default:
			// Partial block: read the whole block, copy the slice out.
			tmp := make([]byte, bs)
			reads = append(reads, pending{
				fut: fs.dev.SubmitRead(f.blocks[bi], tmp),
				tmp: tmp, dst: out[:n], bo: bo,
			})
		}
		pos += n
		out = out[n:]
	}
	fs.mu.Unlock()
	var firstErr error
	for _, r := range reads {
		if err := r.fut.Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
		if r.tmp != nil {
			copy(r.dst, r.tmp[r.bo:r.bo+int64(len(r.dst))])
		}
	}
	return firstErr
}

// Sync makes the file's current content durable: the buffered tail is
// written (padded), the device cache flushed, and the file table
// checkpointed so the content survives remount.
func (f *File) Sync() error {
	fs := f.fs
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return ErrClosed
	}
	if err := f.writeTailLocked(true); err != nil {
		fs.mu.Unlock()
		return err
	}
	if err := f.drainPendingLocked(); err != nil {
		fs.mu.Unlock()
		return err
	}
	err := fs.checkpointLocked()
	fs.mu.Unlock()
	if err != nil {
		return err
	}
	return fs.dev.Flush()
}

// Sync checkpoints the filesystem metadata and flushes the device.
func (fs *FS) Sync() error {
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return ErrClosed
	}
	// Snapshot the file set: writeTailLocked releases the lock around
	// device IO, so the map must not be ranged directly.
	files := make([]*File, 0, len(fs.files))
	for _, f := range fs.files {
		files = append(files, f)
	}
	for _, f := range files {
		if err := f.writeTailLocked(true); err != nil {
			fs.mu.Unlock()
			return err
		}
		if err := f.drainPendingLocked(); err != nil {
			fs.mu.Unlock()
			return err
		}
	}
	err := fs.checkpointLocked()
	fs.mu.Unlock()
	if err != nil {
		return err
	}
	return fs.dev.Flush()
}

// Close checkpoints and marks the filesystem unusable.
func (fs *FS) Close() error {
	if err := fs.Sync(); err != nil {
		return err
	}
	fs.mu.Lock()
	fs.closed = true
	fs.mu.Unlock()
	return nil
}

// FreeSegments returns the current number of free data segments.
func (fs *FS) FreeSegments() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.free)
}
