package lfs

import (
	"bytes"
	"math/rand"
	"testing"

	"raizn/internal/blockdev"
	"raizn/internal/fio"
	"raizn/internal/mdraid"
	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// newRaiznDevice builds a small RAIZN volume wrapped as an lfs.Device.
func newRaiznDevice(t *testing.T, c *vclock.Clock) (Device, []*zns.Device) {
	t.Helper()
	cfg := zns.DefaultConfig()
	cfg.NumZones = 16
	cfg.ZoneSize = 160
	cfg.ZoneCap = 128
	cfg.MaxOpenZones = 12
	cfg.MaxActiveZones = 16
	devs := make([]*zns.Device, 5)
	for i := range devs {
		devs[i] = zns.NewDevice(c, cfg)
	}
	rcfg := raizn.DefaultConfig()
	rcfg.MaxOpenZones = 5
	v, err := raizn.Create(c, devs, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	return fio.RaiznTarget{V: v}, devs
}

func newBlockDevice(t *testing.T, c *vclock.Clock) Device {
	t.Helper()
	bcfg := blockdev.DefaultConfig()
	bcfg.NumSectors = 4096
	bcfg.PagesPerBlock = 64
	devs := make([]*blockdev.Device, 5)
	for i := range devs {
		devs[i] = blockdev.NewDevice(c, bcfg)
	}
	v, err := mdraid.New(c, devs, mdraid.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return NewBlockDevice(fio.MdraidTarget{V: v}, 256)
}

// forEachBackend runs the test body on both backends.
func forEachBackend(t *testing.T, fn func(t *testing.T, c *vclock.Clock, dev Device)) {
	t.Run("raizn", func(t *testing.T) {
		c := vclock.New()
		c.Run(func() {
			dev, _ := newRaiznDevice(t, c)
			fn(t, c, dev)
		})
	})
	t.Run("mdraid", func(t *testing.T) {
		c := vclock.New()
		c.Run(func() {
			fn(t, c, newBlockDevice(t, c))
		})
	})
}

func TestCreateWriteRead(t *testing.T) {
	forEachBackend(t, func(t *testing.T, c *vclock.Clock, dev Device) {
		fs, err := Format(c, dev)
		if err != nil {
			t.Fatal(err)
		}
		f, err := fs.Create("a.txt", Hot)
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte("hello log-structured world")
		if err := f.Append(msg); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(msg))
		if err := f.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("got %q", got)
		}
	})
}

func TestLargeFileCrossesSegments(t *testing.T) {
	forEachBackend(t, func(t *testing.T, c *vclock.Clock, dev Device) {
		fs, err := Format(c, dev)
		if err != nil {
			t.Fatal(err)
		}
		f, _ := fs.Create("big", Cold)
		rng := rand.New(rand.NewSource(1))
		// Write ~1.5 segments worth of data in odd-sized chunks.
		want := make([]byte, 0, 400*fs.block)
		total := int(1.5 * float64(fs.segSz) * float64(fs.block))
		for len(want) < total {
			chunk := make([]byte, 1+rng.Intn(10000))
			rng.Read(chunk)
			if err := f.Append(chunk); err != nil {
				t.Fatal(err)
			}
			want = append(want, chunk...)
		}
		got := make([]byte, len(want))
		if err := f.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Error("large file content mismatch")
		}
		// Random offset reads.
		for i := 0; i < 20; i++ {
			off := rng.Intn(len(want) - 100)
			n := 1 + rng.Intn(100)
			buf := make([]byte, n)
			if err := f.ReadAt(buf, int64(off)); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, want[off:off+n]) {
				t.Fatalf("read at %d mismatch", off)
			}
		}
	})
}

func TestDeleteAndRename(t *testing.T) {
	forEachBackend(t, func(t *testing.T, c *vclock.Clock, dev Device) {
		fs, _ := Format(c, dev)
		f, _ := fs.Create("old", Cold)
		f.Append([]byte("data"))
		if err := fs.Rename("old", "new"); err != nil {
			t.Fatal(err)
		}
		if fs.Exists("old") || !fs.Exists("new") {
			t.Error("rename did not move the file")
		}
		if err := fs.Delete("new"); err != nil {
			t.Fatal(err)
		}
		if fs.Exists("new") {
			t.Error("delete did not remove the file")
		}
		if _, err := fs.Open("new"); err != ErrNotExist {
			t.Errorf("Open deleted file: %v", err)
		}
	})
}

func TestRenameReplacesTarget(t *testing.T) {
	forEachBackend(t, func(t *testing.T, c *vclock.Clock, dev Device) {
		fs, _ := Format(c, dev)
		a, _ := fs.Create("a", Cold)
		a.Append([]byte("aaa"))
		b, _ := fs.Create("b", Cold)
		b.Append([]byte("bbbb"))
		if err := fs.Rename("a", "b"); err != nil {
			t.Fatal(err)
		}
		f, err := fs.Open("b")
		if err != nil {
			t.Fatal(err)
		}
		if f.Size() != 3 {
			t.Errorf("size = %d, want 3 (a's content)", f.Size())
		}
	})
}

func TestSyncAndRemount(t *testing.T) {
	forEachBackend(t, func(t *testing.T, c *vclock.Clock, dev Device) {
		fs, _ := Format(c, dev)
		f, _ := fs.Create("wal", Hot)
		payload := []byte("committed-transaction-record-0123456789")
		f.Append(payload)
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		fs2, err := Mount(c, dev)
		if err != nil {
			t.Fatalf("Mount: %v", err)
		}
		f2, err := fs2.Open("wal")
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(payload))
		if err := f2.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Error("synced data lost across remount")
		}
		// The remounted FS must keep working.
		if err := f2.Append([]byte("more")); err != nil {
			t.Fatal(err)
		}
		if err := f2.Sync(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestUnsyncedDataLostAfterRemount(t *testing.T) {
	forEachBackend(t, func(t *testing.T, c *vclock.Clock, dev Device) {
		fs, _ := Format(c, dev)
		f, _ := fs.Create("a", Hot)
		f.Append([]byte("sync me"))
		f.Sync()
		f.Append([]byte(" but not me"))
		// No sync: the second append must not survive.
		fs2, err := Mount(c, dev)
		if err != nil {
			t.Fatal(err)
		}
		f2, err := fs2.Open("a")
		if err != nil {
			t.Fatal(err)
		}
		if f2.Size() != int64(len("sync me")) {
			t.Errorf("size = %d, want %d", f2.Size(), len("sync me"))
		}
	})
}

func TestSegmentCleaning(t *testing.T) {
	forEachBackend(t, func(t *testing.T, c *vclock.Clock, dev Device) {
		fs, _ := Format(c, dev)
		// Churn: create and delete files until the device wraps,
		// forcing the cleaner to run.
		blockBytes := fs.block
		rng := rand.New(rand.NewSource(7))
		keep := make(map[string][]byte)
		capBlocks := int64(dev.NumZones()-mdSegments) * fs.segSz
		churn := int(capBlocks) * 3
		for i := 0; i < churn/8; i++ {
			name := string(rune('A' + i%16))
			if fs.Exists(name) {
				fs.Delete(name)
			}
			f, err := fs.Create(name, Temp(i%2))
			if err != nil {
				t.Fatal(err)
			}
			data := make([]byte, 8*blockBytes-3)
			rng.Read(data)
			if err := f.Append(data); err != nil {
				t.Fatal(err)
			}
			keep[name] = data
		}
		if fs.CleanRuns == 0 {
			t.Error("cleaner never ran despite churn")
		}
		for name, want := range keep {
			f, err := fs.Open(name)
			if err != nil {
				t.Fatalf("Open(%s): %v", name, err)
			}
			got := make([]byte, len(want))
			if err := f.ReadAt(got, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("file %s corrupted after cleaning", name)
			}
		}
	})
}

func TestTailVisibleBeforeSync(t *testing.T) {
	forEachBackend(t, func(t *testing.T, c *vclock.Clock, dev Device) {
		fs, _ := Format(c, dev)
		f, _ := fs.Create("t", Hot)
		f.Append([]byte("abc"))
		buf := make([]byte, 3)
		if err := f.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		if string(buf) != "abc" {
			t.Errorf("tail read = %q", buf)
		}
		// Read spanning a synced block and the in-memory tail.
		big := make([]byte, 5000)
		for i := range big {
			big[i] = byte(i)
		}
		f.Append(big)
		f.Sync()
		f.Append([]byte("tail!"))
		out := make([]byte, 100)
		if err := f.ReadAt(out, f.Size()-100); err != nil {
			t.Fatal(err)
		}
		want := append(append([]byte{}, big[len(big)-95-3+3:]...), []byte("tail!")...)
		_ = want
		if string(out[95:]) != "tail!" {
			t.Errorf("mixed read tail = %q", out[95:])
		}
	})
}

func TestCheckpointRollover(t *testing.T) {
	forEachBackend(t, func(t *testing.T, c *vclock.Clock, dev Device) {
		fs, _ := Format(c, dev)
		f, _ := fs.Create("x", Hot)
		// Enough syncs to fill a checkpoint pack several times over.
		for i := 0; i < 3*int(fs.segSz); i++ {
			f.Append([]byte{byte(i)})
			if err := f.Sync(); err != nil {
				t.Fatalf("sync %d: %v", i, err)
			}
		}
		fs2, err := Mount(c, dev)
		if err != nil {
			t.Fatal(err)
		}
		f2, err := fs2.Open("x")
		if err != nil {
			t.Fatal(err)
		}
		if f2.Size() != int64(3*int(fs.segSz)) {
			t.Errorf("size = %d, want %d", f2.Size(), 3*int(fs.segSz))
		}
	})
}

// TestCleaningCrashConsistency churns the filesystem to force cleaning,
// then crashes (keeping only flushed data) and remounts: every file whose
// write was followed by a Sync must read back exactly.
func TestCleaningCrashConsistency(t *testing.T) {
	t.Run("raizn", func(t *testing.T) {
		c := vclock.New()
		c.Run(func() {
			dev, raw := newRaiznDevice(t, c)
			fs, err := Format(c, dev)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(21))
			synced := map[string][]byte{}
			capBlocks := int64(dev.NumZones()-mdSegments) * fs.segSz
			for i := 0; i < int(capBlocks)/4; i++ {
				name := string(rune('A' + i%12))
				if fs.Exists(name) {
					fs.Delete(name)
					delete(synced, name)
				}
				f, err := Create2(fs, name, Temp(i%2))
				if err != nil {
					t.Fatal(err)
				}
				data := make([]byte, 6*fs.block+17)
				rng.Read(data)
				if err := f.Append(data); err != nil {
					t.Fatal(err)
				}
				if err := f.Sync(); err != nil {
					t.Fatal(err)
				}
				synced[name] = data
			}
			if fs.CleanRuns == 0 {
				t.Fatal("cleaner never ran; test is not exercising the crash window")
			}
			for _, d := range raw {
				d.PowerLoss(nil) // keep only flushed data
			}
			fs2, err := Mount(c, dev)
			if err != nil {
				t.Fatalf("Mount after cleaning crash: %v", err)
			}
			for name, want := range synced {
				f, err := fs2.Open(name)
				if err != nil {
					t.Fatalf("Open(%s): %v", name, err)
				}
				got := make([]byte, len(want))
				if err := f.ReadAt(got, 0); err != nil {
					t.Fatalf("ReadAt(%s): %v", name, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("file %s corrupted after cleaning crash", name)
				}
			}
		})
	})
}

// Create2 is Create with the existing-file tolerance churn tests need.
func Create2(fs *FS, name string, temp Temp) (*File, error) {
	if fs.Exists(name) {
		fs.Delete(name)
	}
	return fs.Create(name, temp)
}

// TestConcurrentWritersOrderingGate appends to many files from many
// goroutines at once: the write-submission gate must keep every zoned
// device write at its write pointer (any ordering bug surfaces as an
// ErrNotSequential from the RAIZN volume).
func TestConcurrentWritersOrderingGate(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		dev, _ := newRaiznDevice(t, c)
		fs, err := Format(c, dev)
		if err != nil {
			t.Fatal(err)
		}
		const writers = 6
		wg := c.NewWaitGroup()
		payloads := make([][]byte, writers)
		for wi := 0; wi < writers; wi++ {
			wi := wi
			wg.Add(1)
			c.Go(func() {
				defer wg.Done()
				name := string(rune('a' + wi))
				f, err := fs.Create(name, Temp(wi%2))
				if err != nil {
					t.Errorf("create %s: %v", name, err)
					return
				}
				rng := rand.New(rand.NewSource(int64(wi)))
				var all []byte
				for i := 0; i < 40; i++ {
					chunk := make([]byte, 1+rng.Intn(3000))
					rng.Read(chunk)
					if err := f.Append(chunk); err != nil {
						t.Errorf("append %s: %v", name, err)
						return
					}
					all = append(all, chunk...)
				}
				if err := f.Sync(); err != nil {
					t.Errorf("sync %s: %v", name, err)
					return
				}
				payloads[wi] = all
			})
		}
		wg.Wait()
		for wi := 0; wi < writers; wi++ {
			name := string(rune('a' + wi))
			f, err := fs.Open(name)
			if err != nil {
				t.Fatalf("open %s: %v", name, err)
			}
			got := make([]byte, len(payloads[wi]))
			if err := f.ReadAt(got, 0); err != nil {
				t.Fatalf("read %s: %v", name, err)
			}
			if !bytes.Equal(got, payloads[wi]) {
				t.Fatalf("file %s content mismatch", name)
			}
		}
	})
}

// TestCleaningRelocatesLiveBlocks interleaves a long-lived file with
// churn so victim segments contain live blocks that must be moved (the
// relocation path, not just whole-segment invalidation).
func TestCleaningRelocatesLiveBlocks(t *testing.T) {
	forEachBackend(t, func(t *testing.T, c *vclock.Clock, dev Device) {
		fs, err := Format(c, dev)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(31))
		keeper, _ := fs.Create("keeper", Cold)
		var keeperData []byte
		capBlocks := int64(dev.NumZones()-mdSegments) * fs.segSz
		for round := 0; round < int(capBlocks)/3; round++ {
			// Grow the keeper by one block: its blocks end up strewn
			// across the churn segments.
			chunk := make([]byte, fs.block)
			rng.Read(chunk)
			if err := keeper.Append(chunk); err != nil {
				t.Fatal(err)
			}
			keeperData = append(keeperData, chunk...)
			// Churn: short-lived files filling the rest of the log.
			name := "churn"
			if fs.Exists(name) {
				fs.Delete(name)
			}
			f, _ := fs.Create(name, Cold)
			junk := make([]byte, 5*fs.block)
			rng.Read(junk)
			if err := f.Append(junk); err != nil {
				t.Fatal(err)
			}
		}
		if fs.CleanedBlocks == 0 {
			t.Fatal("no live blocks were relocated; test ineffective")
		}
		got := make([]byte, len(keeperData))
		if err := keeper.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, keeperData) {
			t.Error("keeper corrupted by cleaning relocation")
		}
		// Filesystem-level sync + remount keeps the relocated blocks.
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
		if fs.FreeSegments() < 0 {
			t.Error("negative free segments")
		}
		names := fs.List()
		if len(names) == 0 {
			t.Error("List returned nothing")
		}
		fs2, err := Mount(c, dev)
		if err != nil {
			t.Fatal(err)
		}
		k2, err := fs2.Open("keeper")
		if err != nil {
			t.Fatal(err)
		}
		got2 := make([]byte, len(keeperData))
		if err := k2.ReadAt(got2, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got2, keeperData) {
			t.Error("keeper corrupted across remount")
		}
		if err := fs2.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := fs2.Create("after-close", Hot); err != ErrClosed {
			t.Errorf("create after close: %v", err)
		}
	})
}
