package mdraid

import (
	"errors"

	"raizn/internal/blockdev"
	"raizn/internal/parity"
	"raizn/internal/vclock"
)

// This file implements md's check/repair scrub (echo check >
// /sys/block/mdX/md/sync_action). Each stripe's chunks are read, parity
// is XOR-verified against the data, and damage is handled the way md
// handles it:
//
//   - An unrecovered read error on one chunk is corrected by
//     reconstructing the chunk from the survivors and rewriting it in
//     place — the FTL remaps the sector, clearing the latent error. md
//     does this on every read path, so it happens in check mode too.
//   - A parity mismatch with no read error is counted, and in repair
//     mode resolved by recomputing parity FROM the data. md has no
//     per-chunk checksums, so it cannot tell which chunk rotted: if a
//     data chunk went bad, "repair" silently rewrites good parity to
//     match the bad data. This is the baseline RAIZN's stripe-unit
//     checksums improve on.
type CheckResult struct {
	BytesRead      int64
	Skipped        bool // stripe dirty in cache or array degraded
	Mismatch       bool
	ReadErrors     int  // chunks that returned a media error
	RepairedData   bool // read-error chunk reconstructed and rewritten
	RepairedParity bool // parity recomputed from data (repair mode)
	Unrepaired     bool // mismatch left in place, or multiple bad chunks
}

// CheckStats aggregates a full Check pass.
type CheckStats struct {
	StripesChecked     int64
	Skipped            int64
	Mismatches         int64
	ReadErrorsRepaired int64
	ParityRewrites     int64
	Unrepaired         int64
	BytesRead          int64
}

// NumStripes returns how many stripe rows the array has.
func (v *Volume) NumStripes() int64 { return v.perDev }

// CheckStripe verifies one stripe row. It takes the same per-stripe
// handling gate as Resync so a concurrent writer cannot tear the
// snapshot.
func (v *Volume) CheckStripe(s int64, repair bool) (CheckResult, error) {
	var res CheckResult
	if s < 0 || s >= v.perDev {
		return res, ErrOutOfRange
	}
	if v.Degraded() >= 0 {
		// No redundancy to check against.
		res.Skipped = true
		return res, nil
	}

	v.mu.Lock()
	l := v.lineLocked(s)
	for l.handling {
		v.cond.Wait()
	}
	if anySet(l.dirty) {
		// The cache holds newer data than the devices; the pending
		// handler will rewrite the stripe anyway.
		v.mu.Unlock()
		res.Skipped = true
		return res, nil
	}
	l.handling = true
	v.mu.Unlock()

	defer func() {
		v.mu.Lock()
		l.handling = false
		redo := anySet(l.dirty)
		v.cond.Broadcast()
		v.mu.Unlock()
		if redo {
			v.kickHandle(s, 0)
		}
	}()

	ss := int64(v.sectorSize())
	chunkBytes := v.chunk * ss
	// Slot order: data chunks 0..d-1, then parity.
	bufs := make([][]byte, v.n)
	futs := make([]*vclock.Future, v.n)
	for u := 0; u < v.n; u++ {
		slot := v.parityDev(s)
		if u < v.d {
			slot = v.dataDev(s, u)
		}
		d := v.dev(slot)
		if d == nil {
			res.Skipped = true
			return res, nil
		}
		bufs[u] = make([]byte, chunkBytes)
		futs[u] = d.Read(v.devPBA(s, 0), bufs[u])
	}
	var unreadable []int
	for u, f := range futs {
		err := f.Wait()
		res.BytesRead += chunkBytes
		if err == nil {
			continue
		}
		if errors.Is(err, blockdev.ErrReadMedium) {
			unreadable = append(unreadable, u)
			res.ReadErrors++
			continue
		}
		return res, err
	}

	switch {
	case len(unreadable) > 1:
		// RAID-5 cannot reconstruct two missing chunks.
		res.Mismatch = true
		res.Unrepaired = true
		return res, nil
	case len(unreadable) == 1:
		u := unreadable[0]
		res.Mismatch = true
		// Reconstruct from the survivors and rewrite in place; the FTL
		// remap clears the latent sector.
		want := bufs[u]
		for i := range want {
			want[i] = 0
		}
		for u2 := 0; u2 < v.n; u2++ {
			if u2 != u {
				parity.XORInto(want, bufs[u2])
			}
		}
		slot := v.parityDev(s)
		if u < v.d {
			slot = v.dataDev(s, u)
		}
		d := v.dev(slot)
		if d == nil {
			res.Unrepaired = true
			return res, nil
		}
		if err := d.Write(v.devPBA(s, 0), want, 0).Wait(); err != nil {
			return res, err
		}
		if u < v.d {
			res.RepairedData = true
		} else {
			res.RepairedParity = true
		}
		return res, nil
	}

	// XOR verify: parity chunk against the XOR of the data chunks.
	want := make([]byte, chunkBytes)
	for u := 0; u < v.d; u++ {
		parity.XORInto(want, bufs[u])
	}
	if bytesEqual(want, bufs[v.d]) {
		return res, nil
	}
	res.Mismatch = true
	if !repair {
		res.Unrepaired = true
		return res, nil
	}
	// Repair mode: md recomputes parity from data. If the rot was in a
	// data chunk this makes the corruption permanent — md cannot tell.
	pd := v.dev(v.parityDev(s))
	if pd == nil {
		res.Unrepaired = true
		return res, nil
	}
	if err := pd.Write(v.devPBA(s, 0), want, 0).Wait(); err != nil {
		return res, err
	}
	res.RepairedParity = true
	return res, nil
}

// Check runs a full check (repair=false) or repair (repair=true) pass
// over every stripe row, like md's sync_action.
func (v *Volume) Check(repair bool) (CheckStats, error) {
	var stats CheckStats
	for s := int64(0); s < v.perDev; s++ {
		res, err := v.CheckStripe(s, repair)
		if err != nil {
			return stats, err
		}
		if res.Skipped {
			stats.Skipped++
		} else {
			stats.StripesChecked++
		}
		if res.Mismatch {
			stats.Mismatches++
		}
		if res.RepairedData {
			stats.ReadErrorsRepaired++
		}
		if res.RepairedParity && res.ReadErrors > 0 {
			stats.ReadErrorsRepaired++
		} else if res.RepairedParity {
			stats.ParityRewrites++
		}
		if res.Unrepaired {
			stats.Unrepaired++
		}
		stats.BytesRead += res.BytesRead
	}
	return stats, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
