package mdraid

import (
	"bytes"
	"testing"

	"raizn/internal/blockdev"
	"raizn/internal/vclock"
)

func TestCheckCleanVolume(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*blockdev.Device) {
		mustWriteV(t, v, 0, 256)
		if err := v.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		stats, err := v.Check(false)
		if err != nil {
			t.Fatalf("Check: %v", err)
		}
		if stats.Mismatches != 0 || stats.Unrepaired != 0 {
			t.Errorf("clean volume reported damage: %+v", stats)
		}
		if stats.StripesChecked == 0 || stats.BytesRead == 0 {
			t.Errorf("check did no work: %+v", stats)
		}
	})
}

func TestCheckRepairsLatentReadError(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*blockdev.Device) {
		mustWriteV(t, v, 0, 256)
		if err := v.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		// Latent sector in data chunk 1 of stripe 2.
		dev := v.dataDev(2, 1)
		if err := devs[dev].InjectReadError(v.devPBA(2, 3)); err != nil {
			t.Fatalf("InjectReadError: %v", err)
		}
		stats, err := v.Check(false)
		if err != nil {
			t.Fatalf("Check: %v", err)
		}
		if stats.ReadErrorsRepaired != 1 {
			t.Errorf("ReadErrorsRepaired = %d, want 1", stats.ReadErrorsRepaired)
		}
		// The rewrite cleared the latent sector: data reads back clean.
		checkReadV(t, v, 0, 256)
		stats, err = v.Check(false)
		if err != nil {
			t.Fatalf("Check (2nd): %v", err)
		}
		if stats.Mismatches != 0 {
			t.Errorf("second check not clean: %+v", stats)
		}
	})
}

func TestCheckDetectsRotButRepairCannotAttribute(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*blockdev.Device) {
		mustWriteV(t, v, 0, 256)
		if err := v.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		// Rot one sector of data chunk 0 in stripe 1.
		dev := v.dataDev(1, 0)
		if err := devs[dev].CorruptSector(v.devPBA(1, 0)); err != nil {
			t.Fatalf("CorruptSector: %v", err)
		}

		// check mode: counted, left alone.
		stats, err := v.Check(false)
		if err != nil {
			t.Fatalf("Check: %v", err)
		}
		if stats.Mismatches != 1 || stats.Unrepaired != 1 {
			t.Errorf("check: %+v, want 1 mismatch, 1 unrepaired", stats)
		}

		// repair mode: parity is rewritten to match the ROTTED data —
		// md cannot attribute the rot, so the corruption becomes
		// permanent and the mismatch disappears.
		stats, err = v.Check(true)
		if err != nil {
			t.Fatalf("Check(repair): %v", err)
		}
		if stats.Mismatches != 1 || stats.ParityRewrites != 1 {
			t.Errorf("repair: %+v, want 1 mismatch, 1 parity rewrite", stats)
		}
		stats, err = v.Check(false)
		if err != nil {
			t.Fatalf("Check (after repair): %v", err)
		}
		if stats.Mismatches != 0 {
			t.Errorf("after repair: %+v, want 0 mismatches", stats)
		}
		// The logical data is now permanently wrong at the rotted LBA.
		lba := int64(1)*v.stripeSectors() + 0 // stripe 1, chunk 0, sector 0
		buf := make([]byte, v.SectorSize())
		if err := v.Read(lba, buf); err != nil {
			t.Fatalf("Read: %v", err)
		}
		if bytes.Equal(buf, lbaPattern(v, lba, 1)) {
			t.Error("rotted sector reads back clean — corruption should be permanent on mdraid")
		}
	})
}

func TestCheckRepairsParityChunkReadError(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*blockdev.Device) {
		mustWriteV(t, v, 0, 256)
		if err := v.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		pdev := v.parityDev(0)
		if err := devs[pdev].InjectReadError(v.devPBA(0, 5)); err != nil {
			t.Fatalf("InjectReadError: %v", err)
		}
		stats, err := v.Check(false)
		if err != nil {
			t.Fatalf("Check: %v", err)
		}
		if stats.ReadErrorsRepaired != 1 {
			t.Errorf("ReadErrorsRepaired = %d, want 1: %+v", stats.ReadErrorsRepaired, stats)
		}
		// Parity restored: kill a data device and read back degraded.
		ddev := v.dataDev(0, 2)
		if err := v.FailDevice(ddev); err != nil {
			t.Fatalf("FailDevice: %v", err)
		}
		checkReadV(t, v, 0, 256)
	})
}

func TestCheckSkipsDirtyStripes(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*blockdev.Device) {
		// Sub-stripe write parks dirty data in the cache (handle timer
		// has not fired yet at virtual-now).
		done := v.SubmitWrite(0, lbaPattern(v, 0, 4), 0)
		res, err := v.CheckStripe(0, false)
		if err != nil {
			t.Fatalf("CheckStripe: %v", err)
		}
		if !res.Skipped {
			t.Error("expected dirty stripe to be skipped")
		}
		if err := done.Wait(); err != nil {
			t.Fatalf("write: %v", err)
		}
	})
}
