package mdraid

import (
	"sync"
	"time"

	"raizn/internal/blockdev"
	"raizn/internal/vclock"
)

// The paper's baseline runs mdraid WITHOUT a journal ("ensuring maximum
// performance", §6), and notes that md's optional dedicated journal
// volume closes the RAID-5 write hole at a cost (§2.2, §5.4). This file
// implements that option so the cost can be measured against RAIZN's
// built-in write-hole closure: when a journal device is attached, every
// stripe handle first appends the dirty data and new parity to the
// journal with FUA, and only then writes the array members — a crash can
// no longer leave data and parity desynchronized.
//
// The journal is circular; space is reclaimed once the corresponding
// array writes complete (modeled by freeing the slot at handle
// completion; md similarly trims the log as stripes commit).

// journal wraps the dedicated journal device.
type journal struct {
	dev *blockdev.Device

	mu   sync.Mutex
	head int64 // next append sector
	used int64 // sectors holding un-committed stripe records
	size int64
}

// AttachJournal adds a journal device to the volume. It must be called
// before IO begins.
func (v *Volume) AttachJournal(dev *blockdev.Device) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.journal = &journal{dev: dev, size: dev.NumSectors()}
}

// logStripe appends the stripe's dirty sectors plus its new parity to the
// journal and returns after they are durable. release frees the space and
// must be called once the array writes have completed.
func (j *journal) logStripe(clk *vclock.Clock, ss int64, l *stripeLine, newParity []byte) (release func(), err error) {
	// Gather the dirty payload (a real journal also writes descriptors;
	// one metadata sector stands in for them).
	var payload []byte
	for i, dirty := range l.inflight {
		if dirty {
			payload = append(payload, l.data[int64(i)*ss:(int64(i)+1)*ss]...)
		}
	}
	payload = append(payload, newParity...)
	meta := make([]byte, ss) // descriptor block
	record := append(meta, payload...)
	nSectors := int64(len(record)) / ss

	j.mu.Lock()
	if j.used+nSectors > j.size {
		// Journal full: in md the submitter would block until space is
		// reclaimed; stripe completion reclaims promptly, so spinning
		// through virtual time is sufficient here.
		for j.used+nSectors > j.size {
			j.mu.Unlock()
			clk.Sleep(50 * time.Microsecond)
			j.mu.Lock()
		}
	}
	start := j.head
	j.head = (j.head + nSectors) % j.size
	j.used += nSectors
	j.mu.Unlock()

	// Write (possibly wrapping) with FUA: the record must be durable
	// before the array members are touched.
	var futs []*vclock.Future
	first := j.size - start
	if first > nSectors {
		first = nSectors
	}
	futs = append(futs, j.dev.Write(start, record[:first*ss], blockdev.FUA))
	if first < nSectors {
		futs = append(futs, j.dev.Write(0, record[first*ss:], blockdev.FUA))
	}
	if err := vclock.WaitAll(futs...); err != nil {
		return nil, err
	}
	return func() {
		j.mu.Lock()
		j.used -= nSectors
		j.mu.Unlock()
	}, nil
}
