// Package mdraid implements the paper's baseline: Linux md RAID-5 over
// conventional (FTL) SSDs, as configured in §6 — left-symmetric rotating
// parity, a stripe cache that batches sequential writes into full-stripe
// writes and falls back to read-modify-write for sub-stripe updates, a
// whole-address-space resync on device replacement, and no journal
// ("mdraid was configured to run without a journal volume, ensuring
// maximum performance").
package mdraid

import (
	"errors"
	"sync"
	"time"

	"raizn/internal/blockdev"
	"raizn/internal/parity"
	"raizn/internal/vclock"
)

// Errors returned by volume operations.
var (
	ErrOutOfRange    = errors.New("mdraid: address out of range")
	ErrUnaligned     = errors.New("mdraid: IO not sector aligned")
	ErrDegraded      = errors.New("mdraid: array already degraded")
	ErrNotEnoughDevs = errors.New("mdraid: not enough devices")
	ErrInconsistent  = errors.New("mdraid: double failure")
)

// Config holds array parameters.
type Config struct {
	// ChunkSectors is the chunk ("stripe unit") size in sectors.
	ChunkSectors int64
	// StripeCacheBytes bounds the stripe cache (mdraid's maximum, used
	// in the paper, is 128 MiB).
	StripeCacheBytes int64
	// HandleDelay is how long an incomplete stripe may wait for more
	// data before it is handled with a read-modify-write. It models
	// md's plugging/batching.
	HandleDelay time.Duration
}

// DefaultConfig mirrors the paper's mdraid setup scaled down: 64 KiB
// chunks and a generous stripe cache.
func DefaultConfig() Config {
	return Config{
		ChunkSectors:     16,
		StripeCacheBytes: 8 << 20,
		HandleDelay:      50 * time.Microsecond,
	}
}

// stripeLine is one cached stripe: data plus dirty tracking.
type stripeLine struct {
	stripe   int64
	data     []byte // d*chunk sectors
	dirty    []bool // per sector: written since last handle
	inflight []bool // per sector: being written by the current handle
	handling bool
	timerSet bool
	waiters  []*vclock.Future // writes waiting for the current dirty set
	inflWait []*vclock.Future // writes covered by the in-flight handle

	lruPrev, lruNext *stripeLine
}

// Volume is an md-style RAID-5 logical volume over block devices.
type Volume struct {
	clk *vclock.Clock
	cfg Config

	mu       sync.Mutex
	devs     []*blockdev.Device // nil = failed slot
	n, d     int
	chunk    int64
	perDev   int64 // chunks per device
	degraded int

	lines    map[int64]*stripeLine
	lruHead  *stripeLine // most recent
	lruTail  *stripeLine
	maxLines int

	cond           *vclock.Cond // waits on stripe handling (resync gate)
	resyncing      bool
	resyncedStripe []bool // during resync: stripes already reconstructed

	journal *journal // optional write journal (closes the write hole)
}

// New assembles a RAID-5 volume over the devices (>= 3, identical).
func New(clk *vclock.Clock, devs []*blockdev.Device, cfg Config) (*Volume, error) {
	if len(devs) < 3 {
		return nil, ErrNotEnoughDevs
	}
	if cfg.ChunkSectors <= 0 {
		cfg.ChunkSectors = 16
	}
	if cfg.StripeCacheBytes <= 0 {
		cfg.StripeCacheBytes = 8 << 20
	}
	if cfg.HandleDelay <= 0 {
		cfg.HandleDelay = 200 * time.Microsecond
	}
	ref := devs[0].Config()
	for _, d := range devs {
		c := d.Config()
		if c.SectorSize != ref.SectorSize || c.NumSectors != ref.NumSectors {
			return nil, errors.New("mdraid: devices have mismatched geometry")
		}
	}
	v := &Volume{
		clk:      clk,
		cfg:      cfg,
		devs:     append([]*blockdev.Device(nil), devs...),
		n:        len(devs),
		d:        len(devs) - 1,
		chunk:    cfg.ChunkSectors,
		perDev:   ref.NumSectors / cfg.ChunkSectors,
		degraded: -1,
		lines:    make(map[int64]*stripeLine),
	}
	v.cond = clk.NewCond(&v.mu)
	lineBytes := v.stripeSectors() * int64(ref.SectorSize)
	v.maxLines = int(cfg.StripeCacheBytes / lineBytes)
	if v.maxLines < 4 {
		v.maxLines = 4
	}
	return v, nil
}

func (v *Volume) sectorSize() int { return v.devs0().Config().SectorSize }

func (v *Volume) devs0() *blockdev.Device {
	for _, d := range v.devs {
		if d != nil {
			return d
		}
	}
	return nil
}

// SectorSize returns the logical block size.
func (v *Volume) SectorSize() int { return v.sectorSize() }

// NumSectors returns the logical capacity: D data chunks per stripe row.
func (v *Volume) NumSectors() int64 { return v.perDev * int64(v.d) * v.chunk }

func (v *Volume) stripeSectors() int64 { return int64(v.d) * v.chunk }

// Degraded returns the failed device index, or -1.
func (v *Volume) Degraded() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.degraded
}

// parityDev returns the parity device of stripe s (left-symmetric).
func (v *Volume) parityDev(s int64) int { return v.n - 1 - int(s%int64(v.n)) }

// dataDev returns the device holding data chunk u of stripe s.
func (v *Volume) dataDev(s int64, u int) int { return (v.parityDev(s) + 1 + u) % v.n }

// devPBA returns the on-device sector of intra-chunk offset `intra` of
// chunk u in stripe s.
func (v *Volume) devPBA(s int64, intra int64) int64 { return s*v.chunk + intra }

// FailDevice marks device i failed.
func (v *Volume) FailDevice(i int) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.degraded == i {
		return nil
	}
	if v.degraded >= 0 {
		return ErrDegraded
	}
	v.degraded = i
	if v.devs[i] != nil {
		v.devs[i].Fail()
	}
	v.devs[i] = nil
	return nil
}

func (v *Volume) dev(i int) *blockdev.Device {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.devs[i]
}

// devForStripe returns the device at slot i for IO against stripe s.
// During a resync the replacement device is invisible for stripes that
// have not been reconstructed yet (their chunks still hold stale data).
func (v *Volume) devForStripe(i int, s int64) *blockdev.Device {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.resyncing && i == v.degraded && v.resyncedStripe != nil && !v.resyncedStripe[s] {
		return nil
	}
	return v.devs[i]
}

// --- stripe cache management (caller holds v.mu) ---

func (v *Volume) lineLocked(s int64) *stripeLine {
	if l, ok := v.lines[s]; ok {
		v.lruTouchLocked(l)
		return l
	}
	// Evict clean lines beyond the cache bound.
	for len(v.lines) >= v.maxLines {
		victim := v.lruTail
		for victim != nil && (victim.handling || anySet(victim.dirty)) {
			victim = victim.lruPrev
		}
		if victim == nil {
			break // everything busy; allow temporary overflow like md
		}
		v.lruRemoveLocked(victim)
		delete(v.lines, victim.stripe)
	}
	ss := int64(v.sectorSize())
	l := &stripeLine{
		stripe:   s,
		data:     make([]byte, v.stripeSectors()*ss),
		dirty:    make([]bool, v.stripeSectors()),
		inflight: make([]bool, v.stripeSectors()),
	}
	v.lines[s] = l
	v.lruInsertLocked(l)
	return l
}

func anySet(b []bool) bool {
	for _, x := range b {
		if x {
			return true
		}
	}
	return false
}

func allSet(b []bool) bool {
	for _, x := range b {
		if !x {
			return false
		}
	}
	return true
}

func (v *Volume) lruInsertLocked(l *stripeLine) {
	l.lruPrev = nil
	l.lruNext = v.lruHead
	if v.lruHead != nil {
		v.lruHead.lruPrev = l
	}
	v.lruHead = l
	if v.lruTail == nil {
		v.lruTail = l
	}
}

func (v *Volume) lruRemoveLocked(l *stripeLine) {
	if l.lruPrev != nil {
		l.lruPrev.lruNext = l.lruNext
	} else {
		v.lruHead = l.lruNext
	}
	if l.lruNext != nil {
		l.lruNext.lruPrev = l.lruPrev
	} else {
		v.lruTail = l.lruPrev
	}
	l.lruPrev, l.lruNext = nil, nil
}

func (v *Volume) lruTouchLocked(l *stripeLine) {
	v.lruRemoveLocked(l)
	v.lruInsertLocked(l)
}

// SubmitWrite buffers the write in the stripe cache and returns a future
// that completes when the data and its parity have reached the member
// devices (md completes a bio after the stripe write finishes).
func (v *Volume) SubmitWrite(lba int64, data []byte, flags blockdev.Flag) *vclock.Future {
	ss := int64(v.sectorSize())
	if len(data) == 0 || int64(len(data))%ss != 0 {
		return v.clk.Completed(ErrUnaligned)
	}
	n := int64(len(data)) / ss
	if lba < 0 || lba+n > v.NumSectors() {
		return v.clk.Completed(ErrOutOfRange)
	}

	result := v.clk.NewFuture()
	remaining := 0
	var wg *countdown

	v.mu.Lock()
	stripeSec := v.stripeSectors()
	pos := lba
	rest := data
	var toHandle []int64
	var toTimer []int64
	for len(rest) > 0 {
		s := pos / stripeSec
		in := pos % stripeSec
		cnt := stripeSec - in
		if avail := int64(len(rest)) / ss; cnt > avail {
			cnt = avail
		}
		l := v.lineLocked(s)
		copy(l.data[in*ss:], rest[:cnt*ss])
		for i := in; i < in+cnt; i++ {
			l.dirty[i] = true
		}
		remaining++
		pos += cnt
		rest = rest[cnt*ss:]
		if allSet(l.dirty) || flags&(blockdev.FUA|blockdev.Preflush) != 0 {
			toHandle = append(toHandle, s)
		} else if !l.timerSet && !l.handling {
			l.timerSet = true
			toTimer = append(toTimer, s)
		}
	}
	wg = &countdown{n: remaining, fut: result}
	// Register the waiter on each touched stripe.
	pos = lba
	rest = data
	for n2 := n; n2 > 0; {
		s := pos / stripeSec
		in := pos % stripeSec
		cnt := stripeSec - in
		if cnt > n2 {
			cnt = n2
		}
		l := v.lines[s]
		l.waiters = append(l.waiters, wrapCountdown(v.clk, wg))
		pos += cnt
		n2 -= cnt
	}
	v.mu.Unlock()

	for _, s := range toHandle {
		v.kickHandle(s, flags)
	}
	for _, s := range toTimer {
		s := s
		v.clk.AfterFunc(v.cfg.HandleDelay, func() {
			v.mu.Lock()
			l, ok := v.lines[s]
			if ok {
				l.timerSet = false
			}
			v.mu.Unlock()
			if ok {
				v.kickHandle(s, 0)
			}
		})
	}
	return result
}

// countdown completes fut after n Done calls.
type countdown struct {
	mu  sync.Mutex
	n   int
	err error
	fut *vclock.Future
}

func (c *countdown) done(err error) {
	c.mu.Lock()
	if err != nil && c.err == nil {
		c.err = err
	}
	c.n--
	fire := c.n == 0
	ferr := c.err
	c.mu.Unlock()
	if fire {
		c.fut.Complete(ferr)
	}
}

// wrapCountdown returns a future whose completion forwards into the
// countdown (stripe handlers complete per-stripe futures).
func wrapCountdown(clk *vclock.Clock, c *countdown) *vclock.Future {
	f := clk.NewFuture()
	clk.Go(func() { c.done(f.Wait()) })
	return f
}

// kickHandle starts a handler for stripe s unless one is running.
func (v *Volume) kickHandle(s int64, flags blockdev.Flag) {
	v.mu.Lock()
	l, ok := v.lines[s]
	if !ok || l.handling || !anySet(l.dirty) {
		v.mu.Unlock()
		return
	}
	l.handling = true
	copy(l.inflight, l.dirty)
	for i := range l.dirty {
		l.dirty[i] = false
	}
	l.inflWait = l.waiters
	l.waiters = nil
	v.mu.Unlock()

	v.clk.Go(func() {
		err := v.handleStripe(s, l, flags)
		v.mu.Lock()
		l.handling = false
		waiters := l.inflWait
		l.inflWait = nil
		for i := range l.inflight {
			l.inflight[i] = false
		}
		redo := anySet(l.dirty)
		v.cond.Broadcast()
		v.mu.Unlock()
		for _, w := range waiters {
			w.Complete(err)
		}
		if redo {
			v.kickHandle(s, 0)
		}
	})
}

// handleStripe writes the in-flight dirty sectors of stripe s plus
// updated parity, choosing between a full-stripe write, a
// reconstruct-write (read the missing minority), or a read-modify-write.
func (v *Volume) handleStripe(s int64, l *stripeLine, flags blockdev.Flag) error {
	ss := int64(v.sectorSize())
	stripeSec := v.stripeSectors()
	covered := 0
	for _, d := range l.inflight {
		if d {
			covered++
		}
	}
	full := covered == int(stripeSec)
	pdev := v.parityDev(s)

	var newParity []byte
	if full {
		// Full-stripe write: parity from cache, no reads.
		units := make([][]byte, v.d)
		for u := 0; u < v.d; u++ {
			units[u] = l.data[int64(u)*v.chunk*ss : int64(u+1)*v.chunk*ss]
		}
		newParity = parity.Encode(units...)
	} else if covered*2 >= int(stripeSec) || v.Degraded() >= 0 {
		// Reconstruct-write: read the non-dirty sectors, then compute
		// parity over the full stripe. (Also the degraded-write path:
		// old parity may be on the dead device.)
		if err := v.fillClean(s, l); err != nil {
			return err
		}
		units := make([][]byte, v.d)
		for u := 0; u < v.d; u++ {
			units[u] = l.data[int64(u)*v.chunk*ss : int64(u+1)*v.chunk*ss]
		}
		newParity = parity.Encode(units...)
	} else {
		// Read-modify-write: old data of the dirty sectors + old
		// parity.
		var err error
		newParity, err = v.rmwParity(s, l)
		if err != nil {
			return err
		}
	}

	// With a journal attached, the stripe's dirty data and new parity
	// are made durable in the log BEFORE any member device is written,
	// closing the RAID-5 write hole (§2.2).
	var release func()
	v.mu.Lock()
	j := v.journal
	v.mu.Unlock()
	if j != nil {
		var jerr error
		release, jerr = j.logStripe(v.clk, int64(v.sectorSize()), l, newParity)
		if jerr != nil {
			return jerr
		}
	}

	// Issue the device writes: dirty data runs + the parity chunk.
	var futs []*vclock.Future
	var devErr error
	for u := 0; u < v.d; u++ {
		dev := v.dataDev(s, u)
		d := v.devForStripe(dev, s)
		if d == nil {
			continue // degraded write omits the dead device
		}
		base := int64(u) * v.chunk
		for lo := int64(0); lo < v.chunk; {
			if !l.inflight[base+lo] {
				lo++
				continue
			}
			hi := lo
			for hi < v.chunk && l.inflight[base+hi] {
				hi++
			}
			futs = append(futs, d.Write(v.devPBA(s, lo), l.data[(base+lo)*ss:(base+hi)*ss], flags))
			lo = hi
		}
	}
	if d := v.devForStripe(pdev, s); d != nil && newParity != nil {
		futs = append(futs, d.Write(v.devPBA(s, 0), newParity, flags))
	}
	for _, f := range futs {
		if err := f.Wait(); err != nil && devErr == nil {
			if !errors.Is(err, blockdev.ErrDeviceFailed) {
				devErr = err
			}
		}
	}
	if release != nil {
		release() // stripe committed to the array: reclaim journal space
	}
	return devErr
}

// fillClean reads every non-inflight sector of the stripe into the cache
// line (reconstruct-write preparation). Degraded chunks are rebuilt from
// the survivors.
func (v *Volume) fillClean(s int64, l *stripeLine) error {
	ss := int64(v.sectorSize())
	var futs []*vclock.Future
	deadUnit := -1
	for u := 0; u < v.d; u++ {
		dev := v.dataDev(s, u)
		d := v.devForStripe(dev, s)
		base := int64(u) * v.chunk
		if d == nil {
			deadUnit = u
			continue
		}
		for lo := int64(0); lo < v.chunk; {
			if l.inflight[base+lo] {
				lo++
				continue
			}
			hi := lo
			for hi < v.chunk && !l.inflight[base+hi] {
				hi++
			}
			futs = append(futs, d.Read(v.devPBA(s, lo), l.data[(base+lo)*ss:(base+hi)*ss]))
			lo = hi
		}
	}
	if err := vclock.WaitAll(futs...); err != nil {
		return err
	}
	if deadUnit >= 0 {
		// Reconstruct the dead chunk's clean sectors from parity +
		// survivors; its dirty sectors already hold new data.
		pd := v.devForStripe(v.parityDev(s), s)
		if pd == nil {
			return ErrInconsistent
		}
		pbuf := make([]byte, v.chunk*ss)
		if err := pd.Read(v.devPBA(s, 0), pbuf).Wait(); err != nil {
			return err
		}
		base := int64(deadUnit) * v.chunk
		for i := int64(0); i < v.chunk; i++ {
			if l.inflight[base+i] {
				continue
			}
			dst := l.data[(base+i)*ss : (base+i+1)*ss]
			copy(dst, pbuf[i*ss:(i+1)*ss])
			for u := 0; u < v.d; u++ {
				if u == deadUnit {
					continue
				}
				src := l.data[(int64(u)*v.chunk+i)*ss : (int64(u)*v.chunk+i+1)*ss]
				parity.XORInto(dst, src)
			}
		}
	}
	return nil
}

// rmwParity computes the new parity chunk via read-modify-write: new
// parity = old parity XOR old dirty data XOR new dirty data.
func (v *Volume) rmwParity(s int64, l *stripeLine) ([]byte, error) {
	ss := int64(v.sectorSize())
	pd := v.devForStripe(v.parityDev(s), s)
	if pd == nil {
		return nil, nil // no parity to maintain
	}
	newP := make([]byte, v.chunk*ss)
	if err := pd.Read(v.devPBA(s, 0), newP).Wait(); err != nil {
		return nil, err
	}
	// XOR out old data, XOR in new data, per dirty sector.
	old := make([]byte, ss)
	for u := 0; u < v.d; u++ {
		dev := v.dataDev(s, u)
		d := v.devForStripe(dev, s)
		base := int64(u) * v.chunk
		for i := int64(0); i < v.chunk; i++ {
			if !l.inflight[base+i] {
				continue
			}
			if d != nil {
				if err := d.Read(v.devPBA(s, i), old).Wait(); err != nil {
					return nil, err
				}
				parity.XORInto(newP[i*ss:(i+1)*ss], old)
			}
			parity.XORInto(newP[i*ss:(i+1)*ss], l.data[(base+i)*ss:(base+i+1)*ss])
		}
	}
	return newP, nil
}

// SubmitRead fills buf from lba, serving dirty bytes from the stripe
// cache and reconstructing chunks of a failed device from parity.
func (v *Volume) SubmitRead(lba int64, buf []byte) *vclock.Future {
	ss := int64(v.sectorSize())
	if len(buf) == 0 || int64(len(buf))%ss != 0 {
		return v.clk.Completed(ErrUnaligned)
	}
	n := int64(len(buf)) / ss
	if lba < 0 || lba+n > v.NumSectors() {
		return v.clk.Completed(ErrOutOfRange)
	}

	type job struct {
		s     int64
		u     int
		intra int64
		cnt   int64
		dst   []byte
	}
	var jobs []job
	stripeSec := v.stripeSectors()
	pos, out := lba, buf
	v.mu.Lock()
	for len(out) > 0 {
		s := pos / stripeSec
		in := pos % stripeSec
		u := int(in / v.chunk)
		intra := in % v.chunk
		cnt := v.chunk - intra
		if avail := int64(len(out)) / ss; cnt > avail {
			cnt = avail
		}
		dst := out[:cnt*ss]
		// Serve dirty/in-flight sectors from the stripe cache and the
		// rest from the devices, splitting the piece into runs.
		l := v.lines[s]
		cached := func(i int64) bool {
			return l != nil && (l.dirty[i] || l.inflight[i])
		}
		for lo := int64(0); lo < cnt; {
			hit := cached(in + lo)
			hi := lo
			for hi < cnt && cached(in+hi) == hit {
				hi++
			}
			if hit {
				copy(dst[lo*ss:hi*ss], l.data[(in+lo)*ss:(in+hi)*ss])
			} else {
				jobs = append(jobs, job{s: s, u: u, intra: intra + lo, cnt: hi - lo, dst: dst[lo*ss : hi*ss]})
			}
			lo = hi
		}
		pos += cnt
		out = out[cnt*ss:]
	}
	v.mu.Unlock()

	var futs []*vclock.Future
	var recon []job
	for _, j := range jobs {
		dev := v.dataDev(j.s, j.u)
		d := v.devForStripe(dev, j.s)
		if d == nil {
			recon = append(recon, j)
			continue
		}
		futs = append(futs, d.Read(v.devPBA(j.s, j.intra), j.dst))
	}

	result := v.clk.NewFuture()
	v.clk.Go(func() {
		err := vclock.WaitAll(futs...)
		if err == nil {
			for _, j := range recon {
				if rerr := v.degradedReadChunk(j.s, j.u, j.intra, j.cnt, j.dst); rerr != nil {
					err = rerr
					break
				}
			}
		}
		result.Complete(err)
	})
	return result
}

// degradedReadChunk reconstructs [intra, intra+cnt) of data chunk u in
// stripe s from the surviving devices.
func (v *Volume) degradedReadChunk(s int64, u int, intra, cnt int64, dst []byte) error {
	ss := int64(v.sectorSize())
	var futs []*vclock.Future
	bufs := make([][]byte, 0, v.d)
	for u2 := 0; u2 < v.d; u2++ {
		if u2 == u {
			continue
		}
		d := v.devForStripe(v.dataDev(s, u2), s)
		if d == nil {
			return ErrInconsistent
		}
		b := make([]byte, cnt*ss)
		futs = append(futs, d.Read(v.devPBA(s, intra), b))
		bufs = append(bufs, b)
	}
	pd := v.devForStripe(v.parityDev(s), s)
	if pd == nil {
		return ErrInconsistent
	}
	pbuf := make([]byte, cnt*ss)
	futs = append(futs, pd.Read(v.devPBA(s, intra), pbuf))
	if err := vclock.WaitAll(futs...); err != nil {
		return err
	}
	copy(dst, pbuf)
	for _, b := range bufs {
		parity.XORInto(dst, b)
	}
	return nil
}

// SubmitFlush handles every dirty stripe, then flushes all devices.
func (v *Volume) SubmitFlush() *vclock.Future {
	v.mu.Lock()
	var dirty []int64
	for s, l := range v.lines {
		if anySet(l.dirty) {
			dirty = append(dirty, s)
		}
	}
	v.mu.Unlock()
	result := v.clk.NewFuture()
	v.clk.Go(func() {
		for _, s := range dirty {
			v.kickHandle(s, 0)
		}
		// Wait for all handlers to drain.
		for {
			v.mu.Lock()
			busy := false
			for _, l := range v.lines {
				if l.handling || anySet(l.dirty) {
					busy = true
					break
				}
			}
			v.mu.Unlock()
			if !busy {
				break
			}
			v.clk.Sleep(50 * time.Microsecond)
		}
		var futs []*vclock.Future
		for i := range v.devs {
			if d := v.dev(i); d != nil {
				futs = append(futs, d.Flush())
			}
		}
		result.Complete(vclock.WaitAll(futs...))
	})
	return result
}

// Write, Read, Flush are blocking wrappers.
func (v *Volume) Write(lba int64, data []byte, flags blockdev.Flag) error {
	return v.SubmitWrite(lba, data, flags).Wait()
}

func (v *Volume) Read(lba int64, buf []byte) error {
	return v.SubmitRead(lba, buf).Wait()
}

func (v *Volume) Flush() error { return v.SubmitFlush().Wait() }

// ResyncStats summarizes a device replacement.
type ResyncStats struct {
	BytesWritten int64
	Elapsed      time.Duration
}

// Resync installs a replacement device and re-syncs it by scanning the
// ENTIRE address space — mdraid cannot tell valid data from free space,
// so TTR is constant regardless of utilization (§6.2, Figure 12).
func (v *Volume) Resync(newDev *blockdev.Device) (ResyncStats, error) {
	var stats ResyncStats
	start := v.clk.Now()

	v.mu.Lock()
	slot := v.degraded
	if slot < 0 {
		v.mu.Unlock()
		return stats, errors.New("mdraid: array is not degraded")
	}
	if v.resyncing {
		v.mu.Unlock()
		return stats, errors.New("mdraid: resync already in progress")
	}
	v.resyncing = true
	v.resyncedStripe = make([]bool, v.perDev)
	v.devs[slot] = newDev
	v.mu.Unlock()

	ss := int64(v.sectorSize())
	chunkBytes := v.chunk * ss
	nStripes := v.perDev
	buf := make([]byte, chunkBytes)
	bufs := make([][]byte, v.d)
	for i := range bufs {
		bufs[i] = make([]byte, chunkBytes)
	}
	for s := int64(0); s < nStripes; s++ {
		// Exclude concurrent stripe handlers while this stripe is
		// reconstructed (a handler mid-write would tear the snapshot).
		v.mu.Lock()
		l := v.lineLocked(s)
		for l.handling {
			v.cond.Wait()
		}
		l.handling = true
		v.mu.Unlock()

		// Read every surviving chunk of the stripe, reconstruct the
		// missing one, write it to the replacement.
		var futs []*vclock.Future
		k := 0
		for i := 0; i < v.n; i++ {
			if i == slot {
				continue
			}
			d := v.dev(i)
			if d == nil {
				return stats, ErrInconsistent
			}
			futs = append(futs, d.Read(v.devPBA(s, 0), bufs[k]))
			k++
		}
		if err := vclock.WaitAll(futs...); err != nil {
			return stats, err
		}
		for i := range buf {
			buf[i] = 0
		}
		for _, b := range bufs {
			parity.XORInto(buf, b)
		}
		err := newDev.Write(v.devPBA(s, 0), buf, 0).Wait()
		v.mu.Lock()
		l.handling = false
		v.resyncedStripe[s] = true
		redo := anySet(l.dirty)
		v.cond.Broadcast()
		v.mu.Unlock()
		if err != nil {
			return stats, err
		}
		if redo {
			v.kickHandle(s, 0)
		}
		stats.BytesWritten += chunkBytes
	}

	v.mu.Lock()
	v.degraded = -1
	v.resyncing = false
	v.resyncedStripe = nil
	v.mu.Unlock()
	stats.Elapsed = v.clk.Now() - start
	return stats, nil
}
