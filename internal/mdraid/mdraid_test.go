package mdraid

import (
	"bytes"
	"math/rand"
	"testing"

	"raizn/internal/blockdev"
	"raizn/internal/vclock"
)

func testDevConfig() blockdev.Config {
	cfg := blockdev.DefaultConfig()
	cfg.NumSectors = 2048 // 8 MiB per device
	cfg.PagesPerBlock = 64
	return cfg
}

func runVol(t *testing.T, fn func(c *vclock.Clock, v *Volume, devs []*blockdev.Device)) {
	t.Helper()
	c := vclock.New()
	c.Run(func() {
		devs := make([]*blockdev.Device, 5)
		for i := range devs {
			devs[i] = blockdev.NewDevice(c, testDevConfig())
		}
		v, err := New(c, devs, DefaultConfig())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		fn(c, v, devs)
	})
}

func lbaPattern(v *Volume, lba int64, nSectors int) []byte {
	ss := v.SectorSize()
	out := make([]byte, nSectors*ss)
	for i := 0; i < nSectors; i++ {
		cur := lba + int64(i)
		for j := 0; j < ss; j++ {
			out[i*ss+j] = byte(cur) ^ byte(j) ^ byte(cur>>8)
		}
	}
	return out
}

func mustWriteV(t *testing.T, v *Volume, lba int64, n int) {
	t.Helper()
	if err := v.Write(lba, lbaPattern(v, lba, n), 0); err != nil {
		t.Fatalf("Write(%d, %d): %v", lba, n, err)
	}
}

func checkReadV(t *testing.T, v *Volume, lba int64, n int) {
	t.Helper()
	buf := make([]byte, n*v.SectorSize())
	if err := v.Read(lba, buf); err != nil {
		t.Fatalf("Read(%d, %d): %v", lba, n, err)
	}
	if !bytes.Equal(buf, lbaPattern(v, lba, n)) {
		t.Fatalf("Read(%d, %d): mismatch", lba, n)
	}
}

func TestGeometry(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*blockdev.Device) {
		// 2048 sectors per device, 4 data devices => 8192 sectors.
		if v.NumSectors() != 8192 {
			t.Errorf("NumSectors = %d, want 8192", v.NumSectors())
		}
	})
}

func TestWriteReadRoundTrip(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*blockdev.Device) {
		mustWriteV(t, v, 0, 64) // full stripe
		checkReadV(t, v, 0, 64)
	})
}

func TestSubStripeWriteRMW(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*blockdev.Device) {
		mustWriteV(t, v, 0, 64) // establish a stripe
		// Small overwrite inside it (mdraid allows overwrites).
		if err := v.Write(10, lbaPattern(v, 1000, 4), 0); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4*v.SectorSize())
		if err := v.Read(10, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, lbaPattern(v, 1000, 4)) {
			t.Error("overwrite not visible")
		}
	})
}

func TestRandomOverwritesConsistent(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*blockdev.Device) {
		rng := rand.New(rand.NewSource(3))
		ss := v.SectorSize()
		shadow := make([]byte, v.NumSectors()*int64(ss))
		for i := 0; i < 400; i++ {
			n := 1 + rng.Intn(32)
			lba := rng.Int63n(v.NumSectors() - int64(n) + 1)
			data := make([]byte, n*ss)
			rng.Read(data)
			if err := v.Write(lba, data, 0); err != nil {
				t.Fatal(err)
			}
			copy(shadow[lba*int64(ss):], data)
		}
		if err := v.Flush(); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(shadow))
		if err := v.Read(0, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, shadow) {
			t.Error("array state diverged from shadow")
		}
	})
}

func TestParityInvariantAfterFlush(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*blockdev.Device) {
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 100; i++ {
			n := 1 + rng.Intn(20)
			lba := rng.Int63n(v.NumSectors() - int64(n) + 1)
			mustWriteV(t, v, lba, n)
		}
		if err := v.Flush(); err != nil {
			t.Fatal(err)
		}
		// XOR across each stripe's device rows must be zero.
		ss := v.SectorSize()
		chunkBytes := int(v.chunk) * ss
		for s := int64(0); s < v.perDev; s++ {
			acc := make([]byte, chunkBytes)
			for i := 0; i < v.n; i++ {
				row := make([]byte, chunkBytes)
				if err := devs[i].Read(s*v.chunk, row).Wait(); err != nil {
					t.Fatal(err)
				}
				for j := range acc {
					acc[j] ^= row[j]
				}
			}
			for j, b := range acc {
				if b != 0 {
					t.Fatalf("stripe %d parity invariant violated at byte %d", s, j)
				}
			}
		}
	})
}

func TestDegradedRead(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*blockdev.Device) {
		mustWriteV(t, v, 0, 512)
		if err := v.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := v.FailDevice(2); err != nil {
			t.Fatal(err)
		}
		checkReadV(t, v, 0, 512)
		checkReadV(t, v, 13, 77)
	})
}

func TestDegradedWrite(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*blockdev.Device) {
		mustWriteV(t, v, 0, 128)
		v.Flush()
		v.FailDevice(1)
		mustWriteV(t, v, 128, 64)                                  // full stripe degraded
		if err := v.Write(5, lbaPattern(v, 5, 3), 0); err != nil { // sub-stripe degraded
			t.Fatal(err)
		}
		v.Flush()
		checkReadV(t, v, 0, 192)
	})
}

func TestResyncRestoresRedundancy(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*blockdev.Device) {
		mustWriteV(t, v, 0, 256)
		v.Flush()
		v.FailDevice(0)
		stats, err := v.Resync(blockdev.NewDevice(c, testDevConfig()))
		if err != nil {
			t.Fatalf("Resync: %v", err)
		}
		// mdraid resyncs the whole device regardless of valid data.
		want := devs[1].Config().NumSectors * int64(v.SectorSize())
		if stats.BytesWritten != want {
			t.Errorf("resync wrote %d bytes, want full device %d", stats.BytesWritten, want)
		}
		if v.Degraded() != -1 {
			t.Error("still degraded after resync")
		}
		checkReadV(t, v, 0, 256)
		// Redundancy restored.
		v.FailDevice(3)
		checkReadV(t, v, 0, 256)
	})
}

func TestResyncTimeConstantRegardlessOfData(t *testing.T) {
	measure := func(fillSectors int64) int64 {
		var elapsed int64
		c := vclock.New()
		c.Run(func() {
			devs := make([]*blockdev.Device, 5)
			for i := range devs {
				devs[i] = blockdev.NewDevice(c, testDevConfig())
			}
			v, err := New(c, devs, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			for lba := int64(0); lba < fillSectors; lba += 64 {
				mustWriteV(t, v, lba, 64)
			}
			v.Flush()
			v.FailDevice(0)
			stats, err := v.Resync(blockdev.NewDevice(c, testDevConfig()))
			if err != nil {
				t.Fatal(err)
			}
			elapsed = int64(stats.Elapsed)
		})
		return elapsed
	}
	t1 := measure(64)
	t2 := measure(4096)
	ratio := float64(t2) / float64(t1)
	if ratio > 1.5 {
		t.Errorf("mdraid resync time should not scale with data: %d vs %d", t1, t2)
	}
}

func TestFullStripeAvoidsReads(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*blockdev.Device) {
		mustWriteV(t, v, 0, 64)
		v.Flush()
		var readBefore int64
		for _, d := range devs {
			_, r, _, _ := d.Counters()
			readBefore += r
		}
		if readBefore != 0 {
			t.Errorf("full-stripe write performed %d bytes of reads", readBefore)
		}
		// A 4 KiB update is an RMW: needs reads.
		if err := v.Write(3, lbaPattern(v, 3, 1), 0); err != nil {
			t.Fatal(err)
		}
		v.Flush()
		var readAfter int64
		for _, d := range devs {
			_, r, _, _ := d.Counters()
			readAfter += r
		}
		if readAfter == 0 {
			t.Error("sub-stripe write performed no reads (RMW expected)")
		}
	})
}

func TestOutOfRangeAndUnaligned(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*blockdev.Device) {
		if err := v.Write(v.NumSectors(), lbaPattern(v, 0, 1), 0); err != ErrOutOfRange {
			t.Errorf("oob write error = %v", err)
		}
		if err := v.Write(0, make([]byte, 5), 0); err != ErrUnaligned {
			t.Errorf("unaligned write error = %v", err)
		}
	})
}

func TestReadDirtyCacheOverlay(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*blockdev.Device) {
		mustWriteV(t, v, 0, 64)
		v.Flush()
		// Dirty a few sectors without flushing; read a range that mixes
		// dirty and clean sectors.
		fut := v.SubmitWrite(4, lbaPattern(v, 500, 2), 0)
		buf := make([]byte, 8*v.SectorSize())
		if err := v.Read(0, buf); err != nil {
			t.Fatal(err)
		}
		ss := v.SectorSize()
		want := append([]byte{}, lbaPattern(v, 0, 8)...)
		copy(want[4*ss:6*ss], lbaPattern(v, 500, 2))
		if !bytes.Equal(buf, want) {
			t.Error("mixed dirty/clean read incorrect")
		}
		fut.Wait()
	})
}

func TestWritesDuringResyncStayConsistent(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*blockdev.Device) {
		mustWriteV(t, v, 0, 1024)
		v.Flush()
		v.FailDevice(2)

		done := c.NewFuture()
		c.Go(func() {
			_, err := v.Resync(blockdev.NewDevice(c, testDevConfig()))
			done.Complete(err)
		})
		// Concurrent writes and reads while the resync runs.
		for i := int64(0); i < 30; i++ {
			mustWriteV(t, v, 1024+i*8, 8)
			checkReadV(t, v, i*8, 8)
		}
		if err := done.Wait(); err != nil {
			t.Fatalf("resync: %v", err)
		}
		if err := v.Flush(); err != nil {
			t.Fatal(err)
		}
		checkReadV(t, v, 0, 1024)
		checkReadV(t, v, 1024, 240)
		// Redundancy restored: fail another device and verify the data
		// written during the resync.
		v.FailDevice(0)
		checkReadV(t, v, 0, 1024)
		checkReadV(t, v, 1024, 240)
	})
}

func TestReadsDuringResyncAvoidStaleReplacement(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*blockdev.Device) {
		mustWriteV(t, v, 0, 512)
		v.Flush()
		v.FailDevice(1)
		done := c.NewFuture()
		c.Go(func() {
			_, err := v.Resync(blockdev.NewDevice(c, testDevConfig()))
			done.Complete(err)
		})
		// Reads racing the resync must never observe the replacement's
		// unwritten chunks.
		for i := 0; i < 20; i++ {
			checkReadV(t, v, int64(i*25), 25)
		}
		if err := done.Wait(); err != nil {
			t.Fatal(err)
		}
		checkReadV(t, v, 0, 512)
	})
}

func TestJournalClosesWriteHole(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*blockdev.Device) {
		jcfg := testDevConfig()
		jdev := blockdev.NewDevice(c, jcfg)
		v.AttachJournal(jdev)

		mustWriteV(t, v, 0, 256)
		if err := v.Write(7, lbaPattern(v, 900, 3), 0); err != nil { // RMW path
			t.Fatal(err)
		}
		v.Flush()
		checkReadV(t, v, 0, 7)
		// The journal device must have absorbed writes.
		w, _, _, _ := jdev.Counters()
		if w == 0 {
			t.Fatal("journal device never written")
		}
		// Data still correct and redundant.
		buf := make([]byte, 3*v.SectorSize())
		if err := v.Read(7, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, lbaPattern(v, 900, 3)) {
			t.Error("journaled overwrite lost")
		}
		v.FailDevice(2)
		checkReadV(t, v, 0, 7)
	})
}

func TestJournalWrapsAround(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*blockdev.Device) {
		jcfg := testDevConfig()
		jcfg.NumSectors = 1024 // small journal: must wrap many times
		jdev := blockdev.NewDevice(c, jcfg)
		v.AttachJournal(jdev)
		for pass := 0; pass < 3; pass++ {
			mustWriteV(t, v, 0, 1024)
			v.Flush()
		}
		checkReadV(t, v, 0, 1024)
	})
}

func TestJournalCostMeasurable(t *testing.T) {
	measure := func(withJournal bool) int64 {
		var elapsed int64
		c := vclock.New()
		c.Run(func() {
			devs := make([]*blockdev.Device, 5)
			for i := range devs {
				devs[i] = blockdev.NewDevice(c, testDevConfig())
			}
			v, err := New(c, devs, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if withJournal {
				v.AttachJournal(blockdev.NewDevice(c, testDevConfig()))
			}
			t0 := c.Now()
			mustWriteV(t, v, 0, 2048)
			v.Flush()
			elapsed = int64(c.Now() - t0)
		})
		return elapsed
	}
	plain := measure(false)
	journaled := measure(true)
	if journaled <= plain {
		t.Errorf("journal should cost throughput: %d vs %d", journaled, plain)
	}
}
