package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"raizn/internal/stats"
)

// Breakdown decomposes a set of root spans into per-phase latency
// histograms: for each host op its end-to-end total plus host-side
// phases (plan/compute/submit and the residual device wait), and for
// each device op the queue/media/completion split the device models
// mark. This is the critical-path view §6 of the paper derives by
// hand-instrumenting fio runs.
type Breakdown struct {
	names []string
	hists map[string]*stats.Histogram
}

func (b *Breakdown) observe(name string, d time.Duration) {
	if d < 0 {
		return
	}
	h, ok := b.hists[name]
	if !ok {
		h = stats.NewHistogram()
		b.hists[name] = h
		b.names = append(b.names, name)
	}
	h.Record(d)
}

// Hist returns the named phase histogram, or nil.
func (b *Breakdown) Hist(name string) *stats.Histogram { return b.hists[name] }

// Analyze builds the per-phase breakdown from finished root spans.
func Analyze(roots []*Span) *Breakdown {
	b := &Breakdown{hists: make(map[string]*stats.Histogram)}
	for _, s := range roots {
		analyzeSpan(b, s)
	}
	sort.Strings(b.names)
	return b
}

func analyzeSpan(b *Breakdown, s *Span) {
	end, ended := s.EndTime()
	if !ended {
		return
	}
	op := s.Op.String()
	b.observe(op+"/total", end-s.start)
	switch s.Op {
	case OpWrite, OpScrub:
		// Three-phase pipeline marks; each is the phase's END time.
		prev := s.start
		last := prev
		for _, p := range []Phase{PhasePlan, PhaseCompute, PhaseSubmit} {
			if t, ok := s.MarkTime(p); ok {
				b.observe(op+"/"+p.String(), t-prev)
				prev, last = t, t
			}
		}
		b.observe(op+"/wait", end-last)
	case OpDevWrite, OpDevRead, OpDevReset, OpDevFinish, OpDevFlush, OpMDAppend:
		q, qok := s.MarkTime(PhaseQueue)
		m, mok := s.MarkTime(PhaseMedia)
		if qok {
			b.observe(op+"/queue", q-s.start)
		}
		if qok && mok {
			b.observe(op+"/media", m-q)
			b.observe(op+"/complete", end-m)
		}
	}
	for _, c := range s.Children() {
		analyzeSpan(b, c)
	}
}

// Write renders the breakdown as a fixed-width table.
func (b *Breakdown) Write(w io.Writer) {
	fmt.Fprintf(w, "%-22s %8s %12s %12s %12s %12s\n",
		"phase", "count", "mean", "p50", "p99", "max")
	for _, name := range b.names {
		h := b.hists[name]
		fmt.Fprintf(w, "%-22s %8d %12v %12v %12v %12v\n",
			name, h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
	}
}

// DepthPoint is one step of a queue-depth timeline.
type DepthPoint struct {
	T     time.Duration
	Depth int
}

// QueueDepthTimeline walks every device sub-span under the given roots
// and returns the number of device commands in flight over time
// (+1 at each sub-span's start, -1 at its end), in time order.
func QueueDepthTimeline(roots []*Span) []DepthPoint {
	type event struct {
		t time.Duration
		d int
	}
	var evs []event
	var collect func(s *Span)
	collect = func(s *Span) {
		switch s.Op {
		case OpDevWrite, OpDevRead, OpDevReset, OpDevFinish, OpDevFlush, OpMDAppend:
			if end, ended := s.EndTime(); ended {
				evs = append(evs, event{s.start, +1}, event{end, -1})
			}
		}
		for _, c := range s.Children() {
			collect(c)
		}
	}
	for _, s := range roots {
		collect(s)
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].d < evs[j].d // completions before submissions at a tie
	})
	var out []DepthPoint
	depth := 0
	for _, e := range evs {
		depth += e.d
		if n := len(out); n > 0 && out[n-1].T == e.t {
			out[n-1].Depth = depth
		} else {
			out = append(out, DepthPoint{e.t, depth})
		}
	}
	return out
}

// WriteTimeline renders the queue-depth timeline as a coarse ASCII
// chart: the span of virtual time is cut into buckets and each row
// shows the peak depth within its bucket.
func WriteTimeline(w io.Writer, pts []DepthPoint, buckets int) {
	if len(pts) == 0 {
		fmt.Fprintln(w, "(no device IO recorded)")
		return
	}
	if buckets <= 0 {
		buckets = 40
	}
	t0, t1 := pts[0].T, pts[len(pts)-1].T
	if t1 <= t0 {
		t1 = t0 + 1
	}
	width := (t1 - t0 + time.Duration(buckets) - 1) / time.Duration(buckets)
	peak := make([]int, buckets)
	maxDepth := 0
	for _, p := range pts {
		i := int((p.T - t0) / width)
		if i >= buckets {
			i = buckets - 1
		}
		if p.Depth > peak[i] {
			peak[i] = p.Depth
		}
		if p.Depth > maxDepth {
			maxDepth = p.Depth
		}
	}
	fmt.Fprintf(w, "queue depth over %v..%v (peak %d, bucket %v)\n", t0, t1, maxDepth, width)
	for i, d := range peak {
		bar := strings.Repeat("#", d)
		fmt.Fprintf(w, "%12v |%s %d\n", t0+time.Duration(i)*width, bar, d)
	}
}

// FormatSpanTree renders a span and its children as an indented tree
// with times relative to the root's start — the watchdog's dump format.
func FormatSpanTree(s *Span) string {
	var sb strings.Builder
	writeSpanTree(&sb, s, s.start, 0)
	return sb.String()
}

func writeSpanTree(sb *strings.Builder, s *Span, t0 time.Duration, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	end, ended := s.EndTime()
	fmt.Fprintf(sb, "%s", s.Op)
	if s.Dev >= 0 {
		fmt.Fprintf(sb, " dev=%d", s.Dev)
	}
	fmt.Fprintf(sb, " lba=%d bytes=%d", s.LBA, s.Bytes)
	if n := s.Segs(); n > 1 {
		fmt.Fprintf(sb, " segs=%d", n)
	}
	fmt.Fprintf(sb, " @%v", s.start-t0)
	if ended {
		fmt.Fprintf(sb, " +%v", end-s.start)
	} else {
		sb.WriteString(" (unfinished)")
	}
	for p := Phase(0); p < NumPhases; p++ {
		if t, ok := s.MarkTime(p); ok {
			fmt.Fprintf(sb, " %s@%v", p, t-t0)
		}
	}
	if err := s.Err(); err != nil {
		fmt.Fprintf(sb, " err=%v", err)
	}
	sb.WriteByte('\n')
	for _, c := range s.Children() {
		writeSpanTree(sb, c, t0, depth+1)
	}
}
