package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// HistSnapshot is a histogram's exported summary.
type HistSnapshot struct {
	Count uint64        `json:"count"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
}

// Snapshot is a point-in-time copy of a registry, safe to serialize
// with no further locking.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	Help       map[string]string       `json:"-"`
}

// Snapshot captures every registered metric, evaluating gauge funcs.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistSnapshot),
		Help:       make(map[string]string),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	for k, v := range r.help {
		s.Help[k] = v
	}
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	funcs := make(map[string]func() int64, len(r.gaugeFuncs))
	for k, v := range r.gaugeFuncs {
		funcs[k] = v
	}
	hists := make(map[string]HistSnapshot, len(r.hists))
	for k, h := range r.hists {
		hs := h.Snapshot()
		hists[k] = HistSnapshot{
			Count: hs.Count(), Min: hs.Min(), Max: hs.Max(), Mean: hs.Mean(),
			P50: hs.Percentile(50), P90: hs.Percentile(90),
			P99: hs.Percentile(99), P999: hs.Percentile(99.9),
		}
	}
	r.mu.Unlock()
	// Gauge funcs run outside the registry lock: they read component
	// state (device counters) that must not nest under r.mu.
	for k, v := range counters {
		s.Counters[k] = v.Load()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Load()
	}
	for k, fn := range funcs {
		s.Gauges[k] = fn()
	}
	s.Histograms = hists
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format: counters and gauges verbatim, histograms as summaries with
// quantile labels, durations converted to seconds.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		if err := s.writeHelp(w, name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if err := s.writeHelp(w, name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name]); err != nil {
			return err
		}
	}
	histNames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		if err := s.writeHelp(w, name); err != nil {
			return err
		}
		h := s.Histograms[name]
		_, err := fmt.Fprintf(w,
			"# TYPE %s summary\n"+
				"%s{quantile=\"0.5\"} %g\n"+
				"%s{quantile=\"0.9\"} %g\n"+
				"%s{quantile=\"0.99\"} %g\n"+
				"%s{quantile=\"0.999\"} %g\n"+
				"%s_sum %g\n"+
				"%s_count %d\n",
			name,
			name, h.P50.Seconds(),
			name, h.P90.Seconds(),
			name, h.P99.Seconds(),
			name, h.P999.Seconds(),
			name, h.Mean.Seconds()*float64(h.Count),
			name, h.Count)
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHelp emits the # HELP line for name if help text was registered.
func (s *Snapshot) writeHelp(w io.Writer, name string) error {
	text, ok := s.Help[name]
	if !ok || text == "" {
		return nil
	}
	_, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(text))
	return err
}

// escapeHelp escapes HELP text per the Prometheus text exposition
// format: backslash and newline.
func escapeHelp(s string) string {
	return helpEscaper.Replace(s)
}

// escapeLabelValue escapes a label value per the text exposition
// format: backslash, newline, and double quote.
func escapeLabelValue(s string) string {
	return labelEscaper.Replace(s)
}

var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
)

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
