package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// HistSnapshot is a histogram's exported summary.
type HistSnapshot struct {
	Count uint64        `json:"count"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
}

// Snapshot is a point-in-time copy of a registry, safe to serialize
// with no further locking.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	Help       map[string]string       `json:"-"`
}

// Snapshot captures every registered metric, evaluating gauge funcs.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistSnapshot),
		Help:       make(map[string]string),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	for k, v := range r.help {
		s.Help[k] = v
	}
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	funcs := make(map[string]func() int64, len(r.gaugeFuncs))
	for k, v := range r.gaugeFuncs {
		funcs[k] = v
	}
	hists := make(map[string]HistSnapshot, len(r.hists))
	for k, h := range r.hists {
		hs := h.Snapshot()
		hists[k] = HistSnapshot{
			Count: hs.Count(), Min: hs.Min(), Max: hs.Max(), Mean: hs.Mean(),
			P50: hs.Percentile(50), P90: hs.Percentile(90),
			P99: hs.Percentile(99), P999: hs.Percentile(99.9),
		}
	}
	r.mu.Unlock()
	// Gauge funcs run outside the registry lock: they read component
	// state (device counters) that must not nest under r.mu.
	for k, v := range counters {
		s.Counters[k] = v.Load()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Load()
	}
	for k, fn := range funcs {
		s.Gauges[k] = fn()
	}
	s.Histograms = hists
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format: counters and gauges verbatim, histograms as summaries with
// quantile labels, durations converted to seconds. Labeled series (see
// LabeledName) are grouped under their metric family: one HELP/TYPE pair
// per family followed by every series, as the format requires. A
// registry with only bare names — the single-array case — produces the
// exact output this exporter always produced.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for _, fam := range familyOrder(sortedKeys(s.Counters)) {
		if err := s.writeFamilyHead(w, fam.name, "counter"); err != nil {
			return err
		}
		for _, name := range fam.series {
			if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name]); err != nil {
				return err
			}
		}
	}
	for _, fam := range familyOrder(sortedKeys(s.Gauges)) {
		if err := s.writeFamilyHead(w, fam.name, "gauge"); err != nil {
			return err
		}
		for _, name := range fam.series {
			if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Gauges[name]); err != nil {
				return err
			}
		}
	}
	histNames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, fam := range familyOrder(histNames) {
		if err := s.writeFamilyHead(w, fam.name, "summary"); err != nil {
			return err
		}
		for _, name := range fam.series {
			h := s.Histograms[name]
			_, err := fmt.Fprintf(w,
				"%s %g\n%s %g\n%s %g\n%s %g\n%s %g\n%s %d\n",
				seriesWithLabel(name, `quantile="0.5"`), h.P50.Seconds(),
				seriesWithLabel(name, `quantile="0.9"`), h.P90.Seconds(),
				seriesWithLabel(name, `quantile="0.99"`), h.P99.Seconds(),
				seriesWithLabel(name, `quantile="0.999"`), h.P999.Seconds(),
				seriesSuffixed(name, "_sum"), h.Mean.Seconds()*float64(h.Count),
				seriesSuffixed(name, "_count"), h.Count)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// family is one metric family: the bare name plus its series in sorted
// order (a single bare series for unlabeled metrics).
type family struct {
	name   string
	series []string
}

// familyOrder groups sorted series names into families ordered by family
// name. With no labeled series every family is a singleton and the
// ordering equals plain sorted-name order.
func familyOrder(names []string) []family {
	byFam := make(map[string]*family)
	var order []string
	for _, n := range names {
		f := MetricFamily(n)
		g, ok := byFam[f]
		if !ok {
			g = &family{name: f}
			byFam[f] = g
			order = append(order, f)
		}
		g.series = append(g.series, n)
	}
	sort.Strings(order)
	out := make([]family, 0, len(order))
	for _, f := range order {
		sort.Strings(byFam[f].series)
		out = append(out, *byFam[f])
	}
	return out
}

// writeFamilyHead emits the # HELP line (when registered, under either
// the family name or — legacy — the exact series name) and the # TYPE
// line for one metric family.
func (s *Snapshot) writeFamilyHead(w io.Writer, fam, typ string) error {
	if err := s.writeHelp(w, fam); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ)
	return err
}

// seriesWithLabel adds one label pair to a series name, merging into an
// existing label set: `h{t="a"}` + `quantile="0.5"` ->
// `h{t="a",quantile="0.5"}`.
func seriesWithLabel(name, label string) string {
	if strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + label + "}"
	}
	return name + "{" + label + "}"
}

// seriesSuffixed appends a name suffix before any label set: `h{t="a"}`
// + `_sum` -> `h_sum{t="a"}`.
func seriesSuffixed(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// writeHelp emits the # HELP line for name if help text was registered.
func (s *Snapshot) writeHelp(w io.Writer, name string) error {
	text, ok := s.Help[name]
	if !ok || text == "" {
		return nil
	}
	_, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(text))
	return err
}

// escapeHelp escapes HELP text per the Prometheus text exposition
// format: backslash and newline.
func escapeHelp(s string) string {
	return helpEscaper.Replace(s)
}

// escapeLabelValue escapes a label value per the text exposition
// format: backslash, newline, and double quote.
func escapeLabelValue(s string) string {
	return labelEscaper.Replace(s)
}

var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
)

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
