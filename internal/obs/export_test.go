package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestPrometheusHelpLines(t *testing.T) {
	r := NewRegistry()
	r.Counter("raizn_wa_data_bytes").Add(7)
	r.Help("raizn_wa_data_bytes", "device bytes carrying user data")
	r.Gauge("zns_zone_state_open_total").Set(3)
	r.Help("zns_zone_state_open_total", "zones currently open")
	r.Counter("raizn_no_help_total").Add(1)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# HELP raizn_wa_data_bytes device bytes carrying user data\n# TYPE raizn_wa_data_bytes counter\nraizn_wa_data_bytes 7\n",
		"# HELP zns_zone_state_open_total zones currently open\n# TYPE zns_zone_state_open_total gauge\nzns_zone_state_open_total 3\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "# HELP raizn_no_help_total") {
		t.Fatalf("HELP emitted for a metric without registered help:\n%s", text)
	}
}

func TestPrometheusHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total").Add(1)
	r.Help("m_total", "line one\nline two with back\\slash")
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP m_total line one\nline two with back\\slash` + "\n"
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaped HELP missing, want %q in:\n%s", want, buf.String())
	}
	// The exposition format keeps HELP on one line: the raw newline must
	// not survive.
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "# HELP") && strings.Contains(line, "line one") &&
			!strings.Contains(line, "line two") {
			t.Fatalf("HELP text split across lines:\n%s", buf.String())
		}
	}
}

func TestEscapeHelpers(t *testing.T) {
	if got := escapeHelp("a\\b\nc"); got != `a\\b\nc` {
		t.Fatalf("escapeHelp = %q", got)
	}
	if got := escapeLabelValue("say \"hi\"\\\n"); got != `say \"hi\"\\\n` {
		t.Fatalf("escapeLabelValue = %q", got)
	}
	if got := escapeLabelValue("plain"); got != "plain" {
		t.Fatalf("escapeLabelValue = %q", got)
	}
}

func TestPrometheusDeterministicOrdering(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		// Insert in shuffled order; output must sort by name within each
		// metric kind.
		r.Counter("z_total").Add(1)
		r.Counter("a_total").Add(2)
		r.Counter("m_total").Add(3)
		r.Gauge("z_gauge").Set(4)
		r.Gauge("a_gauge").Set(5)
		r.Histogram("z_lat_seconds").Record(time.Millisecond)
		r.Histogram("a_lat_seconds").Record(2 * time.Millisecond)
		r.Help("m_total", "the m counter")
		var buf bytes.Buffer
		if err := r.Snapshot().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := build()
	for i := 0; i < 5; i++ {
		if got := build(); got != first {
			t.Fatalf("output differs across runs:\n--- first:\n%s\n--- run %d:\n%s", first, i, got)
		}
	}
	aIdx := strings.Index(first, "a_total")
	mIdx := strings.Index(first, "m_total")
	zIdx := strings.Index(first, "z_total")
	if !(aIdx < mIdx && mIdx < zIdx) {
		t.Fatalf("counters not name-sorted:\n%s", first)
	}
	if ag, zg := strings.Index(first, "a_gauge"), strings.Index(first, "z_gauge"); !(zIdx < ag && ag < zg) {
		t.Fatalf("gauges not after counters or not sorted:\n%s", first)
	}
	if ah, zh := strings.Index(first, "a_lat_seconds"), strings.Index(first, "z_lat_seconds"); !(ah < zh) {
		t.Fatalf("histograms not sorted:\n%s", first)
	}
}
