package flight

import (
	"encoding/json"
	"fmt"
)

// SchemaV1 versions the serialized black box, like raizn-bench/v1
// versions bench reports. Unmarshal rejects anything else.
const SchemaV1 = "raizn-blackbox/v1"

// TriggerKind classifies what froze the recorder.
type TriggerKind int

const (
	// TrigSlowIO: the slow-IO watchdog flagged requests far above the
	// running p99.
	TrigSlowIO TriggerKind = iota
	// TrigSLOBreach: a tenant's latency SLO alarm fired.
	TrigSLOBreach
	// TrigDeviceHealth: a device health transition (suspect/failed).
	TrigDeviceHealth
	// TrigOracle: the chaos recovery oracle found a contract violation.
	TrigOracle
	// TrigPPFallback: the ZRAID parity engine ran out of PP-zone space
	// and fell back to the logged engine.
	TrigPPFallback
)

var trigNames = [...]string{
	"slow-io", "slo-breach", "device-health", "oracle-violation", "pp-fallback",
}

func (k TriggerKind) String() string {
	if int(k) < len(trigNames) {
		return trigNames[k]
	}
	return "trigger?"
}

// Trigger describes the incident that froze the recorder.
type Trigger struct {
	Kind   TriggerKind `json:"kind"`
	TNs    int64       `json:"t_ns"`
	Detail string      `json:"detail"`
	// Dev/Zone are the trigger's own suspect coordinates when it has
	// them (a watchdog knows the slow device, the oracle knows the
	// violated zone); -1 when unknown. They seed the suspect ranking.
	Dev  int `json:"dev"`
	Zone int `json:"zone"`
	// Tenant/Array attribute a volmgr SLO breach.
	Tenant string `json:"tenant,omitempty"`
	Array  string `json:"array,omitempty"`
	// ReplaySeed reproduces the incident when running under chaos.
	ReplaySeed string `json:"replay_seed,omitempty"`
}

// SeriesDump is one metric's retained time series, oldest-first.
type SeriesDump struct {
	Name    string   `json:"name"`
	Dropped uint64   `json:"dropped,omitempty"` // samples lost to ring wraparound
	Samples []Sample `json:"samples"`
}

// SpanDump is one serialized span tree node.
type SpanDump struct {
	Op       string     `json:"op"`
	Dev      int        `json:"dev"`
	LBA      int64      `json:"lba"`
	Bytes    int64      `json:"bytes"`
	StartNs  int64      `json:"start_ns"`
	EndNs    int64      `json:"end_ns"`
	Err      string     `json:"err,omitempty"`
	Children []SpanDump `json:"children,omitempty"`
}

// EventDump is one serialized journal event; A–D keep the per-type
// payload slots documented on obs.EventType.
type EventDump struct {
	Seq  uint64 `json:"seq"`
	TNs  int64  `json:"t_ns"`
	Type string `json:"type"`
	Src  int    `json:"src"`
	Zone int    `json:"zone"`
	A    int64  `json:"a"`
	B    int64  `json:"b"`
	C    int64  `json:"c"`
	D    int64  `json:"d"`
}

// BlackBox is the persistable form of a flight recorder: everything an
// incident report needs, serialized deterministically (fixed field
// order, series sorted by name, spans and events oldest-first).
type BlackBox struct {
	Schema        string       `json:"schema"`
	Label         string       `json:"label,omitempty"`
	Frozen        bool         `json:"frozen"`
	FrozenAtNs    int64        `json:"frozen_at_ns"`
	Trigger       *Trigger     `json:"trigger,omitempty"`
	Series        []SeriesDump `json:"series"`
	Spans         []SpanDump   `json:"spans"`
	SpansTotal    uint64       `json:"spans_total"`
	Events        []EventDump  `json:"events"`
	EventsDropped uint64       `json:"events_dropped,omitempty"`
}

// Marshal serializes the box. The output is byte-deterministic for a
// given box: field order is fixed by the struct and every slice is
// emitted in its stored (sorted or chronological) order.
func (b *BlackBox) Marshal() ([]byte, error) {
	return json.Marshal(b)
}

// Unmarshal parses and schema-checks a serialized black box.
func Unmarshal(data []byte) (*BlackBox, error) {
	var b BlackBox
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("flight: unmarshal black box: %w", err)
	}
	if b.Schema != SchemaV1 {
		return nil, fmt.Errorf("flight: unknown black box schema %q", b.Schema)
	}
	return &b, nil
}
