// Package flight is the black-box flight recorder: an always-on,
// bounded collector that turns the three volatile telemetry streams —
// the metrics registry, the tracer's root spans, and the event journal —
// into a persistable post-mortem artifact. It continuously samples every
// registered metric family into ring-buffered time series, tail-samples
// span trees (only requests above a rolling p99, erroring, or on the
// degraded path are kept — the fast path stays allocation-free, like the
// nil-span discipline), and captures the journal tail when frozen. The
// serialized form (see BlackBox) is persisted through the raizn metadata
// path so it survives simulated power loss; the incident engine (see
// Incident) freezes the recorder on a trigger and renders a
// deterministic merged-timeline report.
//
// Everything is timestamped on the virtual clock and driven lazily —
// sampling happens when a finished span crosses a sample-interval
// boundary or when the owner calls Poll — so the recorder adds no
// goroutines and never perturbs the simulation's schedule.
package flight

import (
	"time"

	"sync"

	"raizn/internal/obs"
	"raizn/internal/stats"
	"raizn/internal/vclock"
)

// Config wires a Recorder to one array's telemetry.
type Config struct {
	// Clock is the virtual clock; required.
	Clock *vclock.Clock
	// Registry is sampled into time series. Nil records no series.
	Registry *obs.Registry
	// Journal supplies the event tail captured at freeze time. Optional.
	Journal *obs.Journal
	// Label identifies the array/volume in reports and persisted boxes.
	Label string
	// Degraded, when set, reports whether the array is currently on a
	// degraded path; spans completing while true are always kept.
	Degraded func() bool
	// SampleInterval is the metric sampling period on the virtual
	// clock; sample timestamps are aligned to its multiples so two runs
	// of the same seed sample at identical instants. Default 1ms.
	SampleInterval time.Duration
	// SeriesCapacity bounds the samples retained per metric series
	// (ring; oldest overwritten). Default 64.
	SeriesCapacity int
	// SpanCapacity bounds the tail-sampled span trees retained
	// (ring; oldest overwritten). Default 64.
	SpanCapacity int
	// JournalTail bounds the journal events copied into the black box.
	// Default 256.
	JournalTail int
	// Multiple of the rolling per-op p99 a span must exceed to be
	// tail-sampled. Default 1 (anything above the p99).
	Multiple float64
	// MinSamples is the per-op warmup before latency-based tail
	// sampling starts. Default 64.
	MinSamples uint64
}

// Sample is one point of a metric time series.
type Sample struct {
	TNs int64 `json:"t_ns"`
	V   int64 `json:"v"`
}

// series is one metric's bounded sample ring.
type series struct {
	ring  []Sample
	pos   int
	total uint64
}

// Recorder is the flight recorder. It implements obs.SpanObserver;
// attach with Tracer.SetObserver. All methods are safe for concurrent
// use by simulated goroutines.
type Recorder struct {
	cfg Config

	mu       sync.Mutex
	frozen   bool
	frozenAt time.Duration
	trigger  *Trigger
	lastTick time.Duration
	series   map[string]*series
	hists    [obs.NumOps]*stats.Histogram
	spans    []*obs.Span
	spanPos  int
	spanTot  uint64
	events   []obs.Event // journal tail, copied at freeze
	evDrop   uint64
}

// New returns a live recorder. The caller attaches it to a tracer with
// tracer.SetObserver(rec); until then only Poll-driven metric sampling
// runs.
func New(cfg Config) *Recorder {
	if cfg.Clock == nil {
		panic("flight: Config.Clock is required")
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = time.Millisecond
	}
	if cfg.SeriesCapacity <= 0 {
		cfg.SeriesCapacity = 64
	}
	if cfg.SpanCapacity <= 0 {
		cfg.SpanCapacity = 64
	}
	if cfg.JournalTail <= 0 {
		cfg.JournalTail = 256
	}
	if cfg.Multiple <= 0 {
		cfg.Multiple = 1
	}
	if cfg.MinSamples == 0 {
		cfg.MinSamples = 64
	}
	r := &Recorder{
		cfg:      cfg,
		lastTick: -1,
		series:   make(map[string]*series),
		spans:    make([]*obs.Span, cfg.SpanCapacity),
	}
	for i := range r.hists {
		r.hists[i] = stats.NewHistogram()
	}
	return r
}

// Label returns the recorder's configured label.
func (r *Recorder) Label() string { return r.cfg.Label }

// ObserveSpan feeds one finished root span: it is judged for tail
// sampling against the rolling p99 of the spans BEFORE it, and its
// completion drives the lazy metric sampler. Implements
// obs.SpanObserver.
func (r *Recorder) ObserveSpan(s *obs.Span) {
	if r == nil {
		return
	}
	lat := s.Duration()
	end := s.Start() + lat
	erred := s.Err() != nil
	degraded := r.cfg.Degraded != nil && r.cfg.Degraded()
	r.mu.Lock()
	if r.frozen {
		r.mu.Unlock()
		return
	}
	h := r.hists[int(s.Op)%len(r.hists)]
	keep := erred || degraded ||
		(h.Count() >= r.cfg.MinSamples &&
			float64(lat) > r.cfg.Multiple*float64(h.Percentile(99)))
	h.Record(lat)
	if keep {
		r.spans[r.spanPos] = s
		r.spanPos = (r.spanPos + 1) % len(r.spans)
		r.spanTot++
	}
	r.maybeSampleLocked(end)
	r.mu.Unlock()
}

// Poll takes a metric sample if a sample-interval boundary has been
// crossed since the last one. Owners with phases of no span traffic
// (bench loops, chaos op boundaries) call it to keep the series moving.
func (r *Recorder) Poll() {
	if r == nil {
		return
	}
	now := r.cfg.Clock.Now()
	r.mu.Lock()
	if !r.frozen {
		r.maybeSampleLocked(now)
	}
	r.mu.Unlock()
}

// maybeSampleLocked samples the registry when now has crossed a new
// sample-interval boundary. The sample is stamped with the boundary
// instant — floor(now/interval)*interval — so sample times are a pure
// function of the virtual clock, not of which span happened to cross.
func (r *Recorder) maybeSampleLocked(now time.Duration) {
	tick := now - now%r.cfg.SampleInterval
	if tick <= r.lastTick && r.lastTick >= 0 {
		return
	}
	r.lastTick = tick
	r.sampleLocked(tick)
}

// sampleLocked appends one point per registered metric series at time t.
// Histograms contribute two derived series, <name>/count and
// <name>/p99_ns. Gauge funcs are evaluated here (outside any component
// lock that matters: ObserveSpan runs at root-span completion and Poll
// from owner code, never under a device mutex).
func (r *Recorder) sampleLocked(t time.Duration) {
	if r.cfg.Registry == nil {
		return
	}
	snap := r.cfg.Registry.Snapshot()
	for k, v := range snap.Counters {
		r.appendLocked(k, t, v)
	}
	for k, v := range snap.Gauges {
		r.appendLocked(k, t, v)
	}
	for k, h := range snap.Histograms {
		r.appendLocked(k+"/count", t, int64(h.Count))
		r.appendLocked(k+"/p99_ns", t, int64(h.P99))
	}
}

func (r *Recorder) appendLocked(name string, t time.Duration, v int64) {
	se := r.series[name]
	if se == nil {
		se = &series{ring: make([]Sample, r.cfg.SeriesCapacity)}
		r.series[name] = se
	}
	se.ring[se.pos] = Sample{TNs: int64(t), V: v}
	se.pos = (se.pos + 1) % len(se.ring)
	se.total++
}

// Freeze stops the recorder at the current virtual time: a final metric
// sample is taken, the journal tail is copied, and the trigger (may be
// nil for a bare crash capture) is pinned. Idempotent — the first
// freeze wins; later spans and polls are ignored.
func (r *Recorder) Freeze(trig *Trigger) {
	if r == nil {
		return
	}
	now := r.cfg.Clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.frozen {
		return
	}
	// Final sample at the freeze instant itself, even off-boundary:
	// the deltas in the incident report end exactly at the trigger.
	if now > r.lastTick || r.lastTick < 0 {
		r.lastTick = now
		r.sampleLocked(now)
	}
	r.frozen = true
	r.frozenAt = now
	r.trigger = trig
	if r.cfg.Journal != nil {
		evs := r.cfg.Journal.Events()
		if len(evs) > r.cfg.JournalTail {
			evs = evs[len(evs)-r.cfg.JournalTail:]
		}
		r.events = append([]obs.Event(nil), evs...)
		r.evDrop = r.cfg.Journal.Dropped()
	}
}

// Frozen reports whether the recorder has been frozen.
func (r *Recorder) Frozen() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frozen
}

// Snapshot serializes the recorder's current state into a BlackBox.
// Works live (the journal tail is captured on the fly) or frozen.
func (r *Recorder) Snapshot() *BlackBox {
	now := r.cfg.Clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	b := &BlackBox{
		Schema:     SchemaV1,
		Label:      r.cfg.Label,
		Frozen:     r.frozen,
		FrozenAtNs: int64(now),
		Trigger:    r.trigger,
		SpansTotal: r.spanTot,
	}
	if r.frozen {
		b.FrozenAtNs = int64(r.frozenAt)
	}

	names := make([]string, 0, len(r.series))
	for k := range r.series {
		names = append(names, k)
	}
	sortStrings(names)
	for _, k := range names {
		se := r.series[k]
		sd := SeriesDump{Name: k, Samples: retained(se)}
		if se.total > uint64(len(sd.Samples)) {
			sd.Dropped = se.total - uint64(len(sd.Samples))
		}
		b.Series = append(b.Series, sd)
	}

	for _, s := range retainedSpans(r.spans, r.spanPos, r.spanTot) {
		b.Spans = append(b.Spans, dumpSpan(s))
	}

	evs := r.events
	drop := r.evDrop
	if !r.frozen && r.cfg.Journal != nil {
		evs = r.cfg.Journal.Events()
		if len(evs) > r.cfg.JournalTail {
			evs = evs[len(evs)-r.cfg.JournalTail:]
		}
		drop = r.cfg.Journal.Dropped()
	}
	for _, e := range evs {
		b.Events = append(b.Events, dumpEvent(e))
	}
	b.EventsDropped = drop
	return b
}

// retained returns a series ring's samples oldest-first.
func retained(se *series) []Sample {
	if se.total < uint64(len(se.ring)) {
		return append([]Sample(nil), se.ring[:se.total]...)
	}
	out := make([]Sample, 0, len(se.ring))
	out = append(out, se.ring[se.pos:]...)
	return append(out, se.ring[:se.pos]...)
}

// retainedSpans returns a span ring's entries oldest-first.
func retainedSpans(ring []*obs.Span, pos int, total uint64) []*obs.Span {
	if total < uint64(len(ring)) {
		return ring[:total]
	}
	out := make([]*obs.Span, 0, len(ring))
	out = append(out, ring[pos:]...)
	return append(out, ring[:pos]...)
}

// sortStrings is an insertion sort; series maps are small and this
// avoids importing sort for one call site.
func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

func dumpSpan(s *obs.Span) SpanDump {
	end, _ := s.EndTime()
	d := SpanDump{
		Op:      s.Op.String(),
		Dev:     s.Dev,
		LBA:     s.LBA,
		Bytes:   s.Bytes,
		StartNs: int64(s.Start()),
		EndNs:   int64(end),
	}
	if err := s.Err(); err != nil {
		d.Err = err.Error()
	}
	for _, c := range s.Children() {
		d.Children = append(d.Children, dumpSpan(c))
	}
	return d
}

func dumpEvent(e obs.Event) EventDump {
	return EventDump{
		Seq: e.Seq, TNs: int64(e.T), Type: e.Type.String(),
		Src: int(e.Src), Zone: int(e.Zone),
		A: e.A, B: e.B, C: e.C, D: e.D,
	}
}
