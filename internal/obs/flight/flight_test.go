package flight

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"raizn/internal/obs"
	"raizn/internal/vclock"
)

// TestSeriesRingWraparound drives the Poll-based sampler past the ring
// capacity and checks that the retained window is the newest N samples,
// oldest-first, with the overwritten remainder counted as dropped.
func TestSeriesRingWraparound(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		reg := obs.NewRegistry()
		ctr := reg.Counter("raizn_test_total")
		rec := New(Config{Clock: clk, Registry: reg, SeriesCapacity: 4})

		const polls = 10
		for i := 0; i < polls; i++ {
			ctr.Inc()
			rec.Poll()
			clk.Sleep(time.Millisecond) // one sample boundary per loop
		}

		box := rec.Snapshot()
		var got *SeriesDump
		for i := range box.Series {
			if box.Series[i].Name == "raizn_test_total" {
				got = &box.Series[i]
			}
		}
		if got == nil {
			t.Fatal("counter series missing from snapshot")
		}
		if len(got.Samples) != 4 {
			t.Fatalf("retained %d samples, want ring capacity 4", len(got.Samples))
		}
		if got.Dropped != polls-4 {
			t.Fatalf("Dropped = %d, want %d", got.Dropped, polls-4)
		}
		for i := 1; i < len(got.Samples); i++ {
			if got.Samples[i].TNs <= got.Samples[i-1].TNs {
				t.Fatalf("samples not oldest-first: %+v", got.Samples)
			}
		}
		// The newest retained sample saw the final counter value.
		if last := got.Samples[len(got.Samples)-1]; last.V != polls {
			t.Fatalf("newest sample V = %d, want %d", last.V, polls)
		}
	})
}

// TestPollAlignsToInterval checks the sample timestamps are boundary-
// aligned — floor(now/interval)*interval — regardless of when Poll runs.
func TestPollAlignsToInterval(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		reg := obs.NewRegistry()
		reg.Counter("raizn_test_total").Inc()
		rec := New(Config{Clock: clk, Registry: reg, SampleInterval: time.Millisecond})
		clk.Sleep(2500 * time.Microsecond) // mid-interval
		rec.Poll()
		clk.Sleep(300 * time.Microsecond) // same interval: no new sample
		rec.Poll()
		box := rec.Snapshot()
		s := box.Series[0].Samples
		if len(s) != 1 {
			t.Fatalf("got %d samples, want 1 (second poll in same interval)", len(s))
		}
		if s[0].TNs != int64(2*time.Millisecond) {
			t.Fatalf("sample at %d ns, want boundary-aligned 2ms", s[0].TNs)
		}
	})
}

var errSpanFailed = errors.New("dev failed")

// feedSpan runs one traced root span of the given latency through the
// tracer (and so into any attached observer).
func feedSpan(clk *vclock.Clock, tr *obs.Tracer, lba int64, d time.Duration, err error) {
	sp := tr.Begin(obs.OpWrite, lba, 4096)
	clk.Sleep(d)
	sp.End(err)
}

// TestTailSamplingKeepsOutliersOnly checks the three keep conditions:
// uniform-latency spans are never retained, erred spans always are, and
// post-warmup latency outliers are.
func TestTailSamplingKeepsOutliersOnly(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tr := obs.NewTracer(clk, obs.Config{SinkCapacity: 4})
		tr.Enable()
		rec := New(Config{Clock: clk, MinSamples: 8})
		tr.SetObserver(rec)

		for i := 0; i < 20; i++ {
			feedSpan(clk, tr, int64(i), time.Millisecond, nil)
		}
		if n := len(rec.Snapshot().Spans); n != 0 {
			t.Fatalf("uniform latencies retained %d spans, want 0", n)
		}

		feedSpan(clk, tr, 100, time.Millisecond, errSpanFailed)
		feedSpan(clk, tr, 101, 10*time.Millisecond, nil) // >> rolling p99
		box := rec.Snapshot()
		if len(box.Spans) != 2 {
			t.Fatalf("retained %d spans, want erred + outlier", len(box.Spans))
		}
		if box.Spans[0].Err == "" {
			t.Error("first retained span should carry the error")
		}
		if box.Spans[1].LBA != 101 {
			t.Errorf("second retained span LBA = %d, want the outlier 101", box.Spans[1].LBA)
		}
	})
}

// TestSpanRingWraparound overflows the span ring with erred spans (always
// kept) and checks oldest-first retention of the newest window.
func TestSpanRingWraparound(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tr := obs.NewTracer(clk, obs.Config{SinkCapacity: 2})
		tr.Enable()
		rec := New(Config{Clock: clk, SpanCapacity: 3})
		tr.SetObserver(rec)
		for i := 0; i < 8; i++ {
			feedSpan(clk, tr, int64(i), time.Millisecond, errSpanFailed)
		}
		box := rec.Snapshot()
		if box.SpansTotal != 8 {
			t.Fatalf("SpansTotal = %d, want 8", box.SpansTotal)
		}
		if len(box.Spans) != 3 {
			t.Fatalf("retained %d spans, want 3", len(box.Spans))
		}
		for i, want := range []int64{5, 6, 7} {
			if box.Spans[i].LBA != want {
				t.Fatalf("retained[%d].LBA = %d, want %d (oldest-first)", i, box.Spans[i].LBA, want)
			}
		}
	})
}

// runScripted drives one fixed workload — mixed-latency spans, journal
// events, a moving counter — and returns the frozen box's bytes.
func runScripted(t *testing.T) []byte {
	t.Helper()
	var out []byte
	clk := vclock.New()
	clk.Run(func() {
		reg := obs.NewRegistry()
		ctr := reg.Counter("raizn_scripted_total")
		jrn := obs.NewJournal(clk, obs.JournalConfig{Capacity: 32})
		jrn.Enable()
		tr := obs.NewTracer(clk, obs.Config{SinkCapacity: 8})
		tr.Enable()
		rec := New(Config{
			Clock: clk, Registry: reg, Journal: jrn,
			Label: "det", MinSamples: 8, SeriesCapacity: 16,
		})
		tr.SetObserver(rec)

		lats := []time.Duration{1, 1, 2, 1, 3, 1, 1, 2, 1, 9, 1, 1, 2, 14, 1, 1}
		for i, l := range lats {
			ctr.Add(int64(l))
			jrn.Record(obs.EvZoneState, i%5, i, int64(i), 0, 0, 0)
			feedSpan(clk, tr, int64(i), l*time.Millisecond, nil)
		}
		rec.Freeze(&Trigger{Kind: TrigSlowIO, Detail: "scripted", Dev: 2, Zone: -1})
		data, err := rec.Snapshot().Marshal()
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		out = data
	})
	return out
}

// TestTailSamplingDeterminism runs the identical scripted workload on two
// fresh clocks and requires byte-identical serialized boxes — the
// property CI's incident double-run diff rests on.
func TestTailSamplingDeterminism(t *testing.T) {
	a := runScripted(t)
	b := runScripted(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed boxes differ:\n%s\n---\n%s", a, b)
	}
	box, err := Unmarshal(a)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if len(box.Spans) == 0 {
		t.Error("scripted workload retained no spans; outliers should be tail-sampled")
	}
	if len(box.Events) == 0 {
		t.Error("frozen box carries no journal events")
	}
}

// TestFreezeFirstWins checks freeze idempotence: the first trigger is
// pinned, and later spans/polls no longer mutate the box.
func TestFreezeFirstWins(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		reg := obs.NewRegistry()
		ctr := reg.Counter("raizn_test_total")
		tr := obs.NewTracer(clk, obs.Config{SinkCapacity: 2})
		tr.Enable()
		rec := New(Config{Clock: clk, Registry: reg})
		tr.SetObserver(rec)

		ctr.Inc()
		rec.Freeze(&Trigger{Kind: TrigOracle, Detail: "first"})
		if !rec.Frozen() {
			t.Fatal("not frozen after Freeze")
		}
		before := rec.Snapshot()

		rec.Freeze(&Trigger{Kind: TrigSlowIO, Detail: "second"})
		ctr.Add(10)
		clk.Sleep(5 * time.Millisecond)
		rec.Poll()
		feedSpan(clk, tr, 7, time.Millisecond, errSpanFailed)

		after := rec.Snapshot()
		if after.Trigger.Detail != "first" {
			t.Fatalf("trigger = %q, want the first freeze to win", after.Trigger.Detail)
		}
		ab, _ := after.Marshal()
		bb, _ := before.Marshal()
		if !bytes.Equal(ab, bb) {
			t.Fatal("frozen box mutated by post-freeze spans/polls")
		}
	})
}

// TestIncidentReport renders a report from a live incident and checks the
// required evidence is all present: a span, a journal event, a metric
// delta, the trigger's suspect coordinates.
func TestIncidentReport(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		reg := obs.NewRegistry()
		ctr := reg.Counter("raizn_writes_total")
		jrn := obs.NewJournal(clk, obs.JournalConfig{Capacity: 32})
		jrn.Enable()
		tr := obs.NewTracer(clk, obs.Config{SinkCapacity: 8})
		tr.Enable()
		rec := New(Config{Clock: clk, Registry: reg, Journal: jrn, Label: "unit", MinSamples: 4})
		tr.SetObserver(rec)

		rec.Poll() // baseline sample at t=0 so the trigger-window delta is visible
		for i := 0; i < 8; i++ {
			ctr.Inc()
			feedSpan(clk, tr, int64(i), time.Millisecond, nil)
		}
		jrn.Record(obs.EvZoneReset, 2, 4, 0, 0, 0, 0)
		sp := tr.Begin(obs.OpWrite, 99, 4096)
		ch := sp.Child(obs.OpDevWrite, 2, 99, 4096)
		clk.Sleep(20 * time.Millisecond)
		ch.End(errSpanFailed)
		sp.End(errSpanFailed)

		inc := rec.Incident(Trigger{Kind: TrigSlowIO, Detail: "unit trigger", Dev: 2, Zone: -1})
		var sb strings.Builder
		if err := inc.WriteReport(&sb); err != nil {
			t.Fatalf("WriteReport: %v", err)
		}
		rep := sb.String()
		for _, want := range []string{
			"slow-io", "unit trigger", // trigger
			"dev 2",              // suspect ranking seeded by trigger + err child
			"raizn_writes_total", // metric delta
			"zone-reset",         // journal event in the timeline
			"span",               // at least one span rendered
		} {
			if !strings.Contains(rep, want) {
				t.Errorf("report missing %q:\n%s", want, rep)
			}
		}

		// Round-trip through the persisted form: FromBox keeps the pinned
		// trigger and renders the same evidence.
		data, err := inc.Box.Marshal()
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		box, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("Unmarshal: %v", err)
		}
		inc2 := FromBox(box, &Trigger{Kind: TrigOracle, Detail: "should not replace"})
		if inc2.Box.Trigger.Detail != "unit trigger" {
			t.Fatalf("FromBox replaced a pinned trigger: %q", inc2.Box.Trigger.Detail)
		}
		var sb2 strings.Builder
		if err := inc2.WriteReport(&sb2); err != nil {
			t.Fatalf("WriteReport (recovered): %v", err)
		}
		if sb2.String() != rep {
			t.Error("recovered box renders a different report than the live incident")
		}
	})
}

// TestUnmarshalRejectsWrongSchema guards the persisted-format contract.
func TestUnmarshalRejectsWrongSchema(t *testing.T) {
	if _, err := Unmarshal([]byte(`{"schema":"bogus/v9"}`)); err == nil {
		t.Fatal("Unmarshal accepted a wrong schema")
	}
	if _, err := Unmarshal([]byte(`{broken`)); err == nil {
		t.Fatal("Unmarshal accepted garbage")
	}
}
