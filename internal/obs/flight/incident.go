package flight

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Incident is a frozen black box plus the trigger that froze it. The
// report renderer works purely from the BlackBox, so an incident built
// from a box recovered off a crash clone renders exactly like one built
// from the live recorder.
type Incident struct {
	Box *BlackBox
}

// Incident freezes the recorder with the trigger (stamping the trigger
// time if unset) and returns the incident. Calling it on an
// already-frozen recorder keeps the first trigger and returns the
// frozen state.
func (r *Recorder) Incident(trig Trigger) *Incident {
	if trig.TNs == 0 {
		trig.TNs = int64(r.cfg.Clock.Now())
	}
	r.Freeze(&trig)
	return &Incident{Box: r.Snapshot()}
}

// FromBox wraps a recovered black box as an incident. When the box
// carries no trigger (a bare crash capture) and trig is non-nil, trig
// is adopted.
func FromBox(b *BlackBox, trig *Trigger) *Incident {
	if b.Trigger == nil && trig != nil {
		b.Trigger = trig
	}
	return &Incident{Box: b}
}

// timelineEntry is one merged line: a span or a journal event.
type timelineEntry struct {
	t    int64
	kind int // 0 = event, 1 = span: events sort first at equal time
	seq  uint64
	text string
}

// suspectScore accumulates evidence against one device or zone.
type suspectScore struct {
	id        int
	score     int64
	slowSpans int
	errSpans  int
	events    int
}

// WriteReport renders the deterministic incident report: trigger,
// per-device and per-zone suspect ranking, the merged timeline of spans
// and journal events, and the metric deltas across the retained window
// up to the freeze instant. Two black boxes with equal content render
// byte-identically.
func (inc *Incident) WriteReport(w io.Writer) error {
	b := inc.Box
	pf := func(format string, args ...interface{}) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := pf("=== incident report (%s) ===\n", b.Schema); err != nil {
		return err
	}
	if b.Label != "" {
		if err := pf("label: %s\n", b.Label); err != nil {
			return err
		}
	}
	if err := pf("frozen at: %v\n", time.Duration(b.FrozenAtNs)); err != nil {
		return err
	}
	if trig := b.Trigger; trig != nil {
		if err := pf("trigger: %s at %v: %s\n",
			trig.Kind, time.Duration(trig.TNs), trig.Detail); err != nil {
			return err
		}
		if trig.Tenant != "" || trig.Array != "" {
			if err := pf("attribution: tenant=%s array=%s\n", trig.Tenant, trig.Array); err != nil {
				return err
			}
		}
		if trig.ReplaySeed != "" {
			if err := pf("replay: %s\n", trig.ReplaySeed); err != nil {
				return err
			}
		}
	} else {
		if err := pf("trigger: none (bare crash capture)\n"); err != nil {
			return err
		}
	}

	devs, zones := b.suspects()
	if err := writeSuspects(w, "suspect devices", "dev", devs); err != nil {
		return err
	}
	if err := writeSuspects(w, "suspect zones", "zone", zones); err != nil {
		return err
	}

	if err := pf("-- timeline (%d spans, %d journal events) --\n",
		len(b.Spans), len(b.Events)); err != nil {
		return err
	}
	for _, e := range b.timeline() {
		if err := pf("  [%12v] %s\n", time.Duration(e.t), e.text); err != nil {
			return err
		}
	}

	deltas := b.metricDeltas()
	if err := pf("-- metric deltas (retained window -> freeze) --\n"); err != nil {
		return err
	}
	for _, d := range deltas {
		if err := pf("  %-44s %+d\n", d.name, d.delta); err != nil {
			return err
		}
	}
	return pf("-- retention: %d/%d spans kept, %d journal events dropped --\n",
		len(b.Spans), b.SpansTotal, b.EventsDropped)
}

// suspects ranks devices and zones by accumulated evidence: erroring
// device sub-spans weigh heaviest, then the slowest sub-span of each
// retained tree, then state-transition journal events. The trigger's
// own coordinates pin their suspect to the top.
func (b *BlackBox) suspects() (devs, zones []suspectScore) {
	dm := map[int]*suspectScore{}
	zm := map[int]*suspectScore{}
	get := func(m map[int]*suspectScore, id int) *suspectScore {
		s := m[id]
		if s == nil {
			s = &suspectScore{id: id}
			m[id] = s
		}
		return s
	}

	var walk func(sd *SpanDump)
	walk = func(sd *SpanDump) {
		// Charge the slowest device child of each node and any erroring
		// device child.
		slowest, slowestDur := -1, int64(-1)
		for i := range sd.Children {
			c := &sd.Children[i]
			if c.Dev >= 0 {
				if d := c.EndNs - c.StartNs; d > slowestDur {
					slowest, slowestDur = c.Dev, d
				}
				if c.Err != "" {
					s := get(dm, c.Dev)
					s.errSpans++
					s.score += 100
				}
			}
			walk(c)
		}
		if slowest >= 0 {
			s := get(dm, slowest)
			s.slowSpans++
			s.score += 10
		}
	}
	for i := range b.Spans {
		walk(&b.Spans[i])
	}

	for _, e := range b.Events {
		var wgt int64
		switch e.Type {
		case "degraded":
			wgt = 100
		case "relocation":
			wgt = 20
		case "zone-reset":
			wgt = 5
		case "gc":
			wgt = 1
		default:
			continue
		}
		if e.Src >= 0 {
			s := get(dm, e.Src)
			s.events++
			s.score += wgt
		}
		if e.Zone >= 0 {
			s := get(zm, e.Zone)
			s.events++
			s.score += wgt
		}
	}

	if t := b.Trigger; t != nil {
		if t.Dev >= 0 {
			get(dm, t.Dev).score += 1000
		}
		if t.Zone >= 0 {
			get(zm, t.Zone).score += 1000
		}
	}

	rank := func(m map[int]*suspectScore) []suspectScore {
		out := make([]suspectScore, 0, len(m))
		for _, s := range m {
			out = append(out, *s)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].score != out[j].score {
				return out[i].score > out[j].score
			}
			return out[i].id < out[j].id
		})
		if len(out) > 5 {
			out = out[:5]
		}
		return out
	}
	return rank(dm), rank(zm)
}

func writeSuspects(w io.Writer, title, unit string, list []suspectScore) error {
	if _, err := fmt.Fprintf(w, "-- %s --\n", title); err != nil {
		return err
	}
	if len(list) == 0 {
		_, err := fmt.Fprintf(w, "  (no evidence)\n")
		return err
	}
	for i, s := range list {
		_, err := fmt.Fprintf(w, "  %d. %s %-3d score %-5d (slow-spans %d, errors %d, events %d)\n",
			i+1, unit, s.id, s.score, s.slowSpans, s.errSpans, s.events)
		if err != nil {
			return err
		}
	}
	return nil
}

// timeline merges the retained spans and journal events into one
// chronological stream. Ties sort events before spans, then by journal
// sequence / span start order — all total, so the rendering is stable.
func (b *BlackBox) timeline() []timelineEntry {
	out := make([]timelineEntry, 0, len(b.Spans)+len(b.Events))
	for _, e := range b.Events {
		out = append(out, timelineEntry{
			t: e.TNs, kind: 0, seq: e.Seq, text: formatEvent(e),
		})
	}
	for i := range b.Spans {
		sd := &b.Spans[i]
		out = append(out, timelineEntry{
			t: sd.StartNs, kind: 1, seq: uint64(i), text: formatSpan(sd),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, c := out[i], out[j]
		if a.t != c.t {
			return a.t < c.t
		}
		if a.kind != c.kind {
			return a.kind < c.kind
		}
		return a.seq < c.seq
	})
	return out
}

func formatEvent(e EventDump) string {
	src := "logical"
	if e.Src >= 0 {
		src = fmt.Sprintf("dev %d", e.Src)
	}
	s := fmt.Sprintf("event %-14s %s", e.Type, src)
	if e.Zone >= 0 {
		s += fmt.Sprintf(" zone %d", e.Zone)
	}
	return s + fmt.Sprintf(" a=%d b=%d c=%d d=%d", e.A, e.B, e.C, e.D)
}

func formatSpan(sd *SpanDump) string {
	s := fmt.Sprintf("span  %-14s lba=%d bytes=%d dur=%v",
		sd.Op, sd.LBA, sd.Bytes, time.Duration(sd.EndNs-sd.StartNs))
	if sd.Err != "" {
		s += " err=" + sd.Err
	}
	if n := len(sd.Children); n > 0 {
		s += fmt.Sprintf(" subs=%d", n)
	}
	return s
}

// metricDelta is one series' change across the retained window.
type metricDelta struct {
	name  string
	delta int64
}

// metricDeltas computes, for every retained series, last-sample minus
// first-sample — the change across the window the ring still covers,
// which ends at the freeze instant. Zero deltas are elided; order is by
// name (series are already name-sorted in the box).
func (b *BlackBox) metricDeltas() []metricDelta {
	var out []metricDelta
	for _, s := range b.Series {
		if len(s.Samples) == 0 {
			continue
		}
		d := s.Samples[len(s.Samples)-1].V - s.Samples[0].V
		if d == 0 {
			continue
		}
		out = append(out, metricDelta{name: s.Name, delta: d})
	}
	return out
}
