package obs

// HookPoint identifies one crossing of a named instrumentation point.
// The chaos harness enumerates crossings to build its crash-point space;
// any other observer (a test asserting "the pp write happened before the
// data write completed", a latency probe) can use the same seam.
//
// Names are dotted paths, layer-first:
//
//	raizn.write.plan / .compute / .submit / .md / .done
//	raizn.flush.done, raizn.reset.wal / .phys / .done, raizn.finish.done
//	raizn.md.append, raizn.pp.write, raizn.rebuild.zone, raizn.scrub.stripe
//	zns.cmd.write / .append / .zrwa / .flush
//	zns.zone.reset / .finish
//
// A point fires after the state transition it names is applied but, for
// device commands, before the completion is delivered — the instant where
// "what is volatile" and "what the host believes" diverge most, which is
// what makes each crossing an interesting crash point.
type HookPoint struct {
	Name string // dotted point name, e.g. "raizn.write.submit"
	Src  int    // device slot, or SrcLogical for volume-level points
	Zone int    // zone index the point concerns, or -1
	Arg  int64  // point-specific detail (sector, stripe, generation)
}

// Hook observes instrumentation-point crossings. Hooks are invoked
// synchronously on the crossing goroutine with no layer locks held, so a
// hook may call back into the device/volume API (snapshot state, inject a
// fault) but must not block on IO it issued from inside the hook.
type Hook func(HookPoint)
