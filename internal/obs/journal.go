package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"raizn/internal/vclock"
)

// EventType classifies a journal event. Events are the state-side twin
// of spans: where a span times one request, an event records one state
// transition — a zone changing lifecycle state, the FTL collecting a
// block, the raizn layer appending metadata or entering degraded mode.
type EventType uint8

const (
	// EvZoneState: a zone changed lifecycle state.
	// A=new state (zns zone-state ordinal), B=write pointer (zone-relative),
	// C=open zones after, D=active zones after.
	EvZoneState EventType = iota
	// EvZoneReset: a zone was reset to empty.
	// A=write pointer before the reset, B=reset count after (physical) or
	// generation after (logical), C=open zones after, D=active zones after.
	EvZoneReset
	// EvZoneFinish: a zone was finished (write pointer forced to capacity).
	// A=write pointer before, C=open zones after, D=active zones after.
	EvZoneFinish
	// EvBlockAlloc: the FTL allocated an erase block for writes.
	// A=free blocks remaining after the allocation.
	EvBlockAlloc
	// EvGC: the FTL collected (and erased) one victim erase block.
	// A=victim block index, B=valid pages copied, C=cumulative host page
	// programs after, D=cumulative total flash page programs (host + GC
	// copies) after — so D/C is the device WA at this instant.
	EvGC
	// EvPartialParity: a partial-parity record was appended (§5.1).
	// A=payload bytes, B=header bytes.
	EvPartialParity
	// EvMetadataWrite: a metadata-zone record was appended (§4.3).
	// A=payload bytes, B=header bytes, C=record type ordinal.
	EvMetadataWrite
	// EvRelocation: a burned write range was relocated (§5.2).
	// A=sectors relocated, B=1 if a parity unit, 0 if data.
	EvRelocation
	// EvDegraded: the array entered (A=1) or left (A=0) degraded mode.
	// Src is the device that failed or was rebuilt.
	EvDegraded
	// EvRebuild: rebuild progress. A=zones rebuilt so far, B=total zones
	// to rebuild, C=bytes written to the replacement so far.
	EvRebuild
	// EvScrub: a scrub pass completed. A=stripes verified, B=mismatches
	// found, C=stripes repaired (data+parity), D=bytes read.
	EvScrub
	// EvDevWrite: a device accepted a write/append command — payload
	// applied and write pointer advanced; durability still pending a
	// flush or FUA completion. A=zone-relative start sector, B=sectors,
	// C=write pointer after, D=flag bits (1=FUA, 2=Preflush).
	EvDevWrite
	// EvDevFlush: a device flush was submitted; the write-pointer
	// snapshot taken here becomes durable when the flush completes.
	// A=flush count after.
	EvDevFlush
	numEventTypes
)

var eventNames = [numEventTypes]string{
	"zone-state", "zone-reset", "zone-finish", "block-alloc", "gc",
	"partial-parity", "metadata-write", "relocation", "degraded",
	"rebuild", "scrub", "dev-write", "dev-flush",
}

func (t EventType) String() string {
	if int(t) < len(eventNames) {
		return eventNames[t]
	}
	return "event?"
}

// eventFieldNames maps each event type's A–D payload slots to the JSON
// field names used by WriteJSON. Empty string = slot unused.
var eventFieldNames = [numEventTypes][4]string{
	EvZoneState:     {"state", "wp", "open", "active"},
	EvZoneReset:     {"wp_before", "count", "open", "active"},
	EvZoneFinish:    {"wp_before", "", "open", "active"},
	EvBlockAlloc:    {"free_after", "", "", ""},
	EvGC:            {"victim", "copied", "host_pages", "programs"},
	EvPartialParity: {"payload_bytes", "header_bytes", "", ""},
	EvMetadataWrite: {"payload_bytes", "header_bytes", "rec_type", ""},
	EvRelocation:    {"sectors", "parity", "", ""},
	EvDegraded:      {"entered", "", "", ""},
	EvRebuild:       {"zones_done", "zones_total", "bytes", ""},
	EvScrub:         {"stripes", "mismatches", "repaired", "bytes_read"},
	EvDevWrite:      {"start", "sectors", "wp_after", "flags"},
	EvDevFlush:      {"flushes", "", "", ""},
}

// Event is one journal entry. Src identifies the emitting component: a
// device index for zns/blockdev events, or SrcLogical for events at the
// raizn logical level. Zone is the zone the event concerns (-1 when not
// zone-scoped). The A–D slots carry the per-type payload documented on
// the EventType constants — fixed int64 slots keep Record allocation-free.
type Event struct {
	Seq  uint64
	T    time.Duration
	Type EventType
	Src  int16
	Zone int32
	A    int64
	B    int64
	C    int64
	D    int64
}

// SrcLogical marks events emitted at the raizn logical-volume level
// rather than by a numbered device.
const SrcLogical = -1

// Journal is a bounded, virtual-clock-timestamped event ring shared by
// every layer of one array: the zns zone state machines, the blockdev
// FTL, and the raizn volume all record into the same stream, so the
// analyzers can correlate a logical reset with the physical resets and
// GC work it caused.
//
// Recording follows the tracer's zero-cost-when-disabled discipline:
// Record on a nil or disabled journal returns after one nil check and
// one atomic load, and never allocates even when enabled — events are
// stored by value into a preallocated ring.
type Journal struct {
	clk     *vclock.Clock
	enabled atomic.Bool

	mu    sync.Mutex
	ring  []Event
	pos   int
	total uint64 // events ever recorded; total - len(ring) = dropped
}

// JournalConfig sizes a Journal.
type JournalConfig struct {
	// Capacity bounds the number of retained events. Default 4096.
	// Oldest events are overwritten.
	Capacity int
}

// NewJournal returns a disabled journal bound to the virtual clock.
func NewJournal(clk *vclock.Clock, cfg JournalConfig) *Journal {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	return &Journal{clk: clk, ring: make([]Event, cfg.Capacity)}
}

// Enable turns recording on.
func (j *Journal) Enable() { j.enabled.Store(true) }

// Disable turns recording off. Retained events are kept.
func (j *Journal) Disable() { j.enabled.Store(false) }

// Enabled reports the atomic enable flag; false for a nil journal.
func (j *Journal) Enabled() bool { return j != nil && j.enabled.Load() }

// Record appends one event at the current virtual time. No-op (one nil
// check + one atomic load) on a nil or disabled journal; allocation-free
// either way.
func (j *Journal) Record(t EventType, src, zone int, a, b, c, d int64) {
	if j == nil || !j.enabled.Load() {
		return
	}
	now := j.clk.Now()
	j.mu.Lock()
	j.total++
	j.ring[j.pos] = Event{
		Seq: j.total, T: now, Type: t,
		Src: int16(src), Zone: int32(zone),
		A: a, B: b, C: c, D: d,
	}
	j.pos++
	if j.pos == len(j.ring) {
		j.pos = 0
	}
	j.mu.Unlock()
}

// Events returns the retained events oldest-first. Nil journal returns
// nil.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := len(j.ring)
	if j.total < uint64(n) {
		n = int(j.total)
	}
	out := make([]Event, 0, n)
	if j.total > uint64(len(j.ring)) {
		// Ring has wrapped: oldest retained event sits at pos.
		out = append(out, j.ring[j.pos:]...)
	}
	out = append(out, j.ring[:j.pos]...)
	return out
}

// Len returns the number of retained events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.total < uint64(len(j.ring)) {
		return int(j.total)
	}
	return len(j.ring)
}

// Dropped returns how many events were overwritten by ring wraparound.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.total <= uint64(len(j.ring)) {
		return 0
	}
	return j.total - uint64(len(j.ring))
}

// Reset drops all retained events (the enable flag is kept).
func (j *Journal) Reset() {
	if j == nil {
		return
	}
	j.mu.Lock()
	for i := range j.ring {
		j.ring[i] = Event{}
	}
	j.pos = 0
	j.total = 0
	j.mu.Unlock()
}

// jsonEvent is the export shape of one event: fixed identity fields
// plus the per-type payload slots under their documented names.
type jsonEvent struct {
	Seq    uint64           `json:"seq"`
	TNs    int64            `json:"t_ns"`
	Type   string           `json:"type"`
	Src    int16            `json:"src"`
	Zone   int32            `json:"zone,omitempty"`
	Fields map[string]int64 `json:"fields,omitempty"`
}

// WriteJSON exports the retained events oldest-first as indented JSON,
// with each event's A–D slots expanded under their per-type field names.
func (j *Journal) WriteJSON(w io.Writer) error {
	evs := j.Events()
	out := make([]jsonEvent, len(evs))
	for i, e := range evs {
		je := jsonEvent{
			Seq: e.Seq, TNs: int64(e.T), Type: e.Type.String(),
			Src: e.Src, Zone: e.Zone,
		}
		if int(e.Type) < len(eventFieldNames) {
			names := eventFieldNames[e.Type]
			vals := [4]int64{e.A, e.B, e.C, e.D}
			for s, name := range names {
				if name == "" {
					continue
				}
				if je.Fields == nil {
					je.Fields = make(map[string]int64, 4)
				}
				je.Fields[name] = vals[s]
			}
		}
		out[i] = je
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
