package obs

import (
	"strings"
	"testing"
	"time"

	"raizn/internal/vclock"
)

func TestJournalDisabledAndNil(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		var nilJ *Journal
		if nilJ.Enabled() {
			t.Fatal("nil journal reports enabled")
		}
		nilJ.Record(EvZoneState, 0, 0, 1, 2, 3, 4) // must not panic
		if nilJ.Events() != nil || nilJ.Len() != 0 || nilJ.Dropped() != 0 {
			t.Fatal("nil journal retained events")
		}
		nilJ.Reset()

		j := NewJournal(clk, JournalConfig{})
		if j.Enabled() {
			t.Fatal("new journal should start disabled")
		}
		j.Record(EvZoneState, 0, 0, 1, 2, 3, 4)
		if j.Len() != 0 {
			t.Fatal("disabled journal recorded an event")
		}
	})
}

func TestJournalDisabledRecordAllocatesNothing(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		var nilJ *Journal
		j := NewJournal(clk, JournalConfig{Capacity: 8})
		allocs := testing.AllocsPerRun(100, func() {
			nilJ.Record(EvGC, 1, -1, 5, 6, 7, 8)
			j.Record(EvGC, 1, -1, 5, 6, 7, 8)
		})
		if allocs != 0 {
			t.Fatalf("disabled Record allocated %.1f per op, want 0", allocs)
		}
		// Enabled recording must also be allocation-free: events are
		// stored by value into the preallocated ring.
		j.Enable()
		allocs = testing.AllocsPerRun(100, func() {
			j.Record(EvGC, 1, -1, 5, 6, 7, 8)
		})
		if allocs != 0 {
			t.Fatalf("enabled Record allocated %.1f per op, want 0", allocs)
		}
	})
}

func TestJournalRingWraparound(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		j := NewJournal(clk, JournalConfig{Capacity: 4})
		j.Enable()
		for i := int64(0); i < 10; i++ {
			j.Record(EvBlockAlloc, 0, -1, i, 0, 0, 0)
		}
		if j.Len() != 4 {
			t.Fatalf("Len = %d, want 4", j.Len())
		}
		if j.Dropped() != 6 {
			t.Fatalf("Dropped = %d, want 6", j.Dropped())
		}
		evs := j.Events()
		if len(evs) != 4 {
			t.Fatalf("Events returned %d, want 4", len(evs))
		}
		// Oldest-first: the retained events are A=6..9, Seq=7..10.
		for i, e := range evs {
			if e.A != int64(6+i) || e.Seq != uint64(7+i) {
				t.Fatalf("event %d = {Seq %d A %d}, want {Seq %d A %d}",
					i, e.Seq, e.A, 7+i, 6+i)
			}
		}
		j.Reset()
		if j.Len() != 0 || j.Dropped() != 0 || len(j.Events()) != 0 {
			t.Fatal("Reset did not clear the ring")
		}
		if !j.Enabled() {
			t.Fatal("Reset cleared the enable flag")
		}
	})
}

func TestJournalTimestampsAndJSON(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		j := NewJournal(clk, JournalConfig{Capacity: 16})
		j.Enable()
		j.Record(EvZoneState, SrcLogical, 3, int64(ZoneStateOpen), 40, 1, 1)
		clk.Sleep(5 * time.Millisecond)
		j.Record(EvGC, 2, -1, 7, 12, 100, 130)
		evs := j.Events()
		if len(evs) != 2 {
			t.Fatalf("got %d events", len(evs))
		}
		if evs[1].T-evs[0].T != 5*time.Millisecond {
			t.Fatalf("timestamps %v, %v: want 5ms apart", evs[0].T, evs[1].T)
		}
		var sb strings.Builder
		if err := j.WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		out := sb.String()
		for _, want := range []string{
			`"type": "zone-state"`, `"type": "gc"`,
			`"state": 1`, `"wp": 40`,
			`"victim": 7`, `"copied": 12`, `"host_pages": 100`, `"programs": 130`,
		} {
			if !strings.Contains(out, want) {
				t.Errorf("WriteJSON output missing %s:\n%s", want, out)
			}
		}
	})
}

func TestOccupancyAndLifetimes(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		j := NewJournal(clk, JournalConfig{})
		j.Enable()
		// z0: open at t=0, finish at t=10ms; z1: open at 10ms, reset at 30ms.
		j.Record(EvZoneState, SrcLogical, 0, int64(ZoneStateOpen), 0, 1, 1)
		clk.Sleep(10 * time.Millisecond)
		j.Record(EvZoneFinish, SrcLogical, 0, 100, 0, 0, 0)
		j.Record(EvZoneState, SrcLogical, 1, int64(ZoneStateOpen), 0, 1, 1)
		clk.Sleep(20 * time.Millisecond)
		j.Record(EvZoneReset, SrcLogical, 1, 50, 1, 0, 0)
		// Different source must be ignored.
		j.Record(EvZoneState, 2, 1, int64(ZoneStateOpen), 0, 9, 9)
		clk.Sleep(10 * time.Millisecond)

		evs := j.Events()
		open, active := OccupancyTimeline(evs, SrcLogical)
		if len(open) != 4 || len(active) != 4 {
			t.Fatalf("occupancy points = %d/%d, want 4/4", len(open), len(active))
		}
		if open[0].Depth != 1 || open[1].Depth != 0 || open[2].Depth != 1 || open[3].Depth != 0 {
			t.Fatalf("open depths = %+v", open)
		}

		lives := ZoneLifetimes(evs, SrcLogical, clk.Now())
		if len(lives) != 2 {
			t.Fatalf("lifetimes for %d zones, want 2", len(lives))
		}
		z0, z1 := lives[0], lives[1]
		if z0.Zone != 0 || z0.Finishes != 1 || z0.Resets != 0 {
			t.Fatalf("z0 = %+v", z0)
		}
		if z0.InState[ZoneStateOpen] != 10*time.Millisecond {
			t.Fatalf("z0 open time = %v", z0.InState[ZoneStateOpen])
		}
		if z0.InState[ZoneStateFull] != 30*time.Millisecond {
			t.Fatalf("z0 full time = %v", z0.InState[ZoneStateFull])
		}
		if z1.Zone != 1 || z1.Resets != 1 || z1.InState[ZoneStateOpen] != 20*time.Millisecond {
			t.Fatalf("z1 = %+v", z1)
		}
		if z1.InState[ZoneStateEmpty] != 10*time.Millisecond+10*time.Millisecond {
			t.Fatalf("z1 empty time = %v", z1.InState[ZoneStateEmpty])
		}
	})
}

func TestZoneHeatmapRendering(t *testing.T) {
	rows := []ZoneRow{{
		Label: "logical",
		Zones: []ZoneInfo{
			{Index: 0, State: ZoneStateEmpty, Cap: 100},
			{Index: 1, State: ZoneStateOpen, WP: 25, Cap: 100},
			{Index: 2, State: ZoneStateOpen, WP: 95, Cap: 100},
			{Index: 3, State: ZoneStateClosed, WP: 10, Cap: 100},
			{Index: 4, State: ZoneStateFull, WP: 100, Cap: 100},
			{Index: 5, State: ZoneStateReadOnly, Cap: 100},
			{Index: 6, State: ZoneStateOffline, Cap: 100},
			{Index: 7, State: ZoneStateOpen, WP: 0, Cap: 100},
		},
	}}
	var sb strings.Builder
	WriteZoneHeatmap(&sb, rows)
	if !strings.Contains(sb.String(), "logical  .3=cFRX0") {
		t.Fatalf("heatmap cells wrong:\n%s", sb.String())
	}
}

func TestWAReportMath(t *testing.T) {
	rep := &WAReport{
		UserBytes: 1000,
		Categories: []WACategory{
			{Name: "data", Bytes: 1000},
			{Name: "parity", Bytes: 400},
			{Name: "metadata", Bytes: 100},
		},
		Devices: []WADevice{
			{Name: "dev0", HostBytes: 800, FlashBytes: 1200},
			{Name: "dev1", HostBytes: 700},
		},
	}
	if rep.RaiznBytes() != 1500 || rep.DeviceHostBytes() != 1500 || rep.FlashBytes() != 1200 {
		t.Fatalf("sums = %d/%d/%d", rep.RaiznBytes(), rep.DeviceHostBytes(), rep.FlashBytes())
	}
	var sb strings.Builder
	rep.Write(&sb)
	out := sb.String()
	for _, want := range []string{"1.500x vs user", "flash programs", "device WA"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
