package obs

import (
	"sort"
	"strings"
)

// Metric labels. The registry stays a flat name -> metric map; a labeled
// series is just a name of the form `base{key="value",...}`, built with
// LabeledName. Components that may be instantiated more than once against
// a shared registry (multiple RAIZN arrays under a volume manager,
// per-tenant engine counters) label their series so same-name metrics no
// longer collide, while single-instance registrations keep their bare
// names and their exporter output byte-for-byte unchanged.

// LabeledName renders base plus key/value label pairs in the Prometheus
// text exposition syntax: LabeledName("raizn_zone_resets_total", "array",
// "a0") -> `raizn_zone_resets_total{array="a0"}`. Pairs are emitted in
// sorted key order so the same label set always produces the same series
// name. An empty kv list (or all-empty values) returns base unchanged.
func LabeledName(base string, kv ...string) string {
	if len(kv)%2 != 0 {
		panic("obs: LabeledName requires key/value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		if kv[i+1] == "" {
			continue
		}
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	if len(pairs) == 0 {
		return base
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// MetricFamily returns the bare metric name of a possibly-labeled series
// name: `raizn_x{array="a0"}` -> "raizn_x". Help text and exporter TYPE
// lines attach to the family, so every labeled series of a family shares
// one registration.
func MetricFamily(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}
