package obs

import (
	"strings"
	"testing"
	"time"
)

func TestLabeledName(t *testing.T) {
	cases := []struct {
		base string
		kv   []string
		want string
	}{
		{"raizn_writes_total", nil, "raizn_writes_total"},
		{"raizn_writes_total", []string{"array", "a0"},
			`raizn_writes_total{array="a0"}`},
		// Keys render in sorted order regardless of argument order.
		{"volmgr_shed_total", []string{"volume", "v", "tenant", "t1"},
			`volmgr_shed_total{tenant="t1",volume="v"}`},
		{"volmgr_shed_total", []string{"tenant", "t1", "volume", "v"},
			`volmgr_shed_total{tenant="t1",volume="v"}`},
		// Empty values drop their pair; all-empty falls back to the bare
		// name so single-instance registrations keep byte-stable series.
		{"raizn_writes_total", []string{"array", ""}, "raizn_writes_total"},
		{"x", []string{"a", "", "b", "2"}, `x{b="2"}`},
		// Label values are escaped per the text exposition format.
		{"x", []string{"k", `a"b` + "\n" + `c\d`}, `x{k="a\"b\nc\\d"}`},
	}
	for _, c := range cases {
		if got := LabeledName(c.base, c.kv...); got != c.want {
			t.Errorf("LabeledName(%q, %v) = %q, want %q", c.base, c.kv, got, c.want)
		}
	}
}

func TestLabeledNameOddPairsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("odd kv list did not panic")
		}
	}()
	LabeledName("x", "key_without_value")
}

func TestMetricFamily(t *testing.T) {
	cases := map[string]string{
		"raizn_writes_total":             "raizn_writes_total",
		`raizn_writes_total{array="a0"}`: "raizn_writes_total",
		`v{tenant="t1",volume="v"}`:      "v",
	}
	for in, want := range cases {
		if got := MetricFamily(in); got != want {
			t.Errorf("MetricFamily(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPrometheusLabeledFamilies checks the exporter groups labeled
// series under one HELP/TYPE pair per family, and that a registry with
// only bare names keeps the historical one-head-per-metric output.
func TestPrometheusLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter(LabeledName("raizn_full_writes_total", "array", "a1")).Add(2)
	r.Counter(LabeledName("raizn_full_writes_total", "array", "a0")).Add(1)
	r.Help("raizn_full_writes_total", "full-stripe writes")
	r.Gauge("plain_gauge").Set(7)

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()

	if n := strings.Count(out, "# TYPE raizn_full_writes_total counter"); n != 1 {
		t.Errorf("want exactly one TYPE line for the family, got %d\n%s", n, out)
	}
	if n := strings.Count(out, "# HELP raizn_full_writes_total full-stripe writes"); n != 1 {
		t.Errorf("want exactly one HELP line for the family, got %d\n%s", n, out)
	}
	// Series sorted within the family, directly after the head.
	a0 := strings.Index(out, `raizn_full_writes_total{array="a0"} 1`)
	a1 := strings.Index(out, `raizn_full_writes_total{array="a1"} 2`)
	ty := strings.Index(out, "# TYPE raizn_full_writes_total")
	if a0 < 0 || a1 < 0 || !(ty < a0 && a0 < a1) {
		t.Errorf("labeled series missing or out of order:\n%s", out)
	}
	if !strings.Contains(out, "plain_gauge 7") {
		t.Errorf("bare series lost:\n%s", out)
	}
}

// TestPrometheusLabeledHistogram checks quantile labels merge into an
// existing label set and _sum/_count suffixes go before the labels.
func TestPrometheusLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(LabeledName("volmgr_request_latency", "tenant", "t1"))
	h.Record(time.Millisecond)

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`volmgr_request_latency{tenant="t1",quantile="0.5"}`,
		`volmgr_request_latency_sum{tenant="t1"}`,
		`volmgr_request_latency_count{tenant="t1"} 1`,
		"# TYPE volmgr_request_latency summary",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestLabeledCountersDistinct is the collision regression test: two
// components registering the same base name with different labels must
// get independent counters, not a silently shared one.
func TestLabeledCountersDistinct(t *testing.T) {
	r := NewRegistry()
	c0 := r.Counter(LabeledName("raizn_writes_total", "array", "a0"))
	c1 := r.Counter(LabeledName("raizn_writes_total", "array", "a1"))
	if c0 == c1 {
		t.Fatalf("differently-labeled series share one counter")
	}
	c0.Add(5)
	c1.Add(9)
	s := r.Snapshot()
	if got := s.Counters[`raizn_writes_total{array="a0"}`]; got != 5 {
		t.Errorf("a0 = %d, want 5", got)
	}
	if got := s.Counters[`raizn_writes_total{array="a1"}`]; got != 9 {
		t.Errorf("a1 = %d, want 9", got)
	}
}
