// Package obs is the end-to-end IO observability subsystem: per-request
// tracing spans timestamped on the virtual clock, a named metrics
// registry the device models and the RAIZN layer register into, JSON and
// Prometheus-text exporters, critical-path analysis, and a slow-IO
// watchdog that flags requests far above the running p99.
//
// Tracing is strictly zero-cost when disabled: Tracer.Begin returns a
// nil *Span while the atomic enable flag is off, and every Span method
// is nil-receiver-safe, so the hot path threads span handles
// unconditionally without a single branch-per-field or allocation.
// The zero-allocation property is enforced by BenchmarkSubmitWrite* in
// internal/raizn plus the checked-in alloc baseline guard.
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"raizn/internal/vclock"
)

// Op classifies a span. Host-level ops (Write..Scrub) are roots created
// by the RAIZN layer; Dev* ops are children created per device sub-IO.
type Op uint8

const (
	OpWrite Op = iota
	OpRead
	OpReset
	OpFlush
	OpScrub
	OpDevWrite
	OpDevRead
	OpDevReset
	OpDevFinish
	OpDevFlush
	OpMDAppend
	numOps
)

// NumOps is the number of Op values; external samplers size per-op
// tables with it.
const NumOps = int(numOps)

var opNames = [numOps]string{
	"write", "read", "reset", "flush", "scrub",
	"dev-write", "dev-read", "dev-reset", "dev-finish", "dev-flush",
	"md-append",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// Phase is a named timestamp within a span. Host spans mark the
// three-phase write pipeline (plan/compute/submit); device spans mark
// when the command reached the head of its pipe (Queue) and when the
// media transfer finished (Media) — completion-interrupt latency is the
// remainder up to the span's end.
type Phase uint8

const (
	PhasePlan Phase = iota
	PhaseCompute
	PhaseSubmit
	PhaseQueue
	PhaseMedia
	NumPhases
)

var phaseNames = [NumPhases]string{"plan", "compute", "submit", "queue", "media"}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "phase?"
}

// Span is one traced request (root) or sub-operation (child). All
// timestamps are virtual-clock offsets. The identifying fields are
// immutable after creation; everything recorded during the span's life
// is guarded by mu so device completions scheduled on other goroutines
// may finish children while the submitter is still attaching new ones.
type Span struct {
	tr     *Tracer
	parent *Span
	id     uint64

	Op    Op
	Dev   int // device index, -1 for host-level spans
	LBA   int64
	Bytes int64

	start time.Duration

	mu       sync.Mutex
	segs     int
	marks    [NumPhases]time.Duration
	markSet  uint8
	end      time.Duration
	ended    bool
	err      error
	children []*Span
}

// Tracer owns the enable flag, the bounded trace sink, and the
// watchdog. The sink is sharded — spans hash to one of sinkShards
// fixed-size rings, each with its own mutex — which approximates a
// per-goroutine ring buffer: concurrent submitters almost always land
// on different shards, so recording a finished root span is one
// uncontended lock plus a slot store, and total retention is bounded.
type Tracer struct {
	clk      *vclock.Clock
	enabled  atomic.Bool
	nextID   atomic.Uint64
	shards   [sinkShards]sinkShard
	wd       *Watchdog
	observer atomic.Pointer[SpanObserver]
}

// SpanObserver receives every finished root span, after the sink and the
// watchdog have seen it. Observers run on the completing goroutine and
// must not block; the flight recorder's tail sampler is the canonical
// implementation. The observer is only consulted when tracing is
// enabled — a disabled tracer never produces root spans, so an attached
// observer costs nothing on that path.
type SpanObserver interface {
	ObserveSpan(s *Span)
}

const sinkShards = 16

type sinkShard struct {
	mu   sync.Mutex
	ring []*Span
	pos  int
}

// Config sizes a Tracer.
type Config struct {
	// SinkCapacity bounds the number of retained root spans across all
	// shards. Default 4096. Oldest spans are overwritten.
	SinkCapacity int
	Watchdog     WatchdogConfig
}

// NewTracer returns a disabled tracer bound to the virtual clock.
func NewTracer(clk *vclock.Clock, cfg Config) *Tracer {
	if cfg.SinkCapacity <= 0 {
		cfg.SinkCapacity = 4096
	}
	per := (cfg.SinkCapacity + sinkShards - 1) / sinkShards
	t := &Tracer{clk: clk, wd: newWatchdog(cfg.Watchdog)}
	for i := range t.shards {
		t.shards[i].ring = make([]*Span, per)
	}
	return t
}

// Enable turns tracing on; Begin starts returning live spans.
func (t *Tracer) Enable() { t.enabled.Store(true) }

// Disable turns tracing off. In-flight spans keep recording.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports the atomic enable flag.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Watchdog returns the tracer's slow-IO watchdog.
func (t *Tracer) Watchdog() *Watchdog { return t.wd }

// SetObserver attaches o as the tracer's span observer (nil detaches).
// At most one observer is active; the last call wins.
func (t *Tracer) SetObserver(o SpanObserver) {
	if t == nil {
		return
	}
	if o == nil {
		t.observer.Store(nil)
		return
	}
	t.observer.Store(&o)
}

// Begin starts a root span, or returns nil when the tracer is nil or
// disabled — the nil span makes every downstream call a no-op.
func (t *Tracer) Begin(op Op, lba, bytes int64) *Span {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	return &Span{
		tr: t, id: t.nextID.Add(1),
		Op: op, Dev: -1, LBA: lba, Bytes: bytes,
		start: t.clk.Now(),
	}
}

// record pushes a finished root span into its sink shard.
func (t *Tracer) record(s *Span) {
	sh := &t.shards[s.id%sinkShards]
	sh.mu.Lock()
	sh.ring[sh.pos] = s
	sh.pos = (sh.pos + 1) % len(sh.ring)
	sh.mu.Unlock()
	t.wd.observe(s)
	if ob := t.observer.Load(); ob != nil {
		(*ob).ObserveSpan(s)
	}
}

// Snapshot returns the retained root spans in submission order.
func (t *Tracer) Snapshot() []*Span {
	if t == nil {
		return nil
	}
	var out []*Span
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, s := range sh.ring {
			if s != nil {
				out = append(out, s)
			}
		}
		sh.mu.Unlock()
	}
	sortSpansByID(out)
	return out
}

// Reset drops all retained spans (watchdog state is kept).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for j := range sh.ring {
			sh.ring[j] = nil
		}
		sh.pos = 0
		sh.mu.Unlock()
	}
}

func sortSpansByID(spans []*Span) {
	// Insertion sort: shards keep spans nearly ordered already and the
	// sink is small; avoids pulling in sort's interface boxing.
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j-1].id > spans[j].id; j-- {
			spans[j-1], spans[j] = spans[j], spans[j-1]
		}
	}
}

// Child starts a sub-span under s, or returns nil when s is nil.
func (s *Span) Child(op Op, dev int, lba, bytes int64) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		tr: s.tr, parent: s, id: s.tr.nextID.Add(1),
		Op: op, Dev: dev, LBA: lba, Bytes: bytes,
		start: s.tr.clk.Now(),
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Mark records phase p at the current virtual time.
func (s *Span) Mark(p Phase) {
	if s == nil {
		return
	}
	s.MarkAt(p, s.tr.clk.Now())
}

// MarkAt records phase p at virtual time t (device models know the
// exact scheduled pipe and media times before they elapse).
func (s *Span) MarkAt(p Phase, t time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.marks[p] = t
	s.markSet |= 1 << p
	s.mu.Unlock()
}

// SetSegs records how many scatter-gather segments a vectored device
// command carried (1 for a plain write).
func (s *Span) SetSegs(n int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.segs = n
	s.mu.Unlock()
}

// End completes the span at the current virtual time.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	s.EndAt(s.tr.clk.Now(), err)
}

// EndAt completes the span at virtual time t. Ending a root span hands
// it to the sink and the watchdog; double-End is idempotent.
func (s *Span) EndAt(t time.Duration, err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = t
	s.err = err
	s.mu.Unlock()
	if s.parent == nil {
		s.tr.record(s)
	}
}

// Start returns the span's begin time on the virtual clock.
func (s *Span) Start() time.Duration { return s.start }

// EndTime returns the completion time and whether the span has ended.
func (s *Span) EndTime() (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end, s.ended
}

// Duration returns end-start, or 0 if the span has not ended.
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return 0
	}
	return s.end - s.start
}

// Err returns the error the span ended with, if any.
func (s *Span) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Segs returns the recorded segment count (0 when never set).
func (s *Span) Segs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.segs
}

// MarkTime returns the timestamp of phase p and whether it was set.
func (s *Span) MarkTime(p Phase) (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.marks[p], s.markSet&(1<<p) != 0
}

// Children returns a copy of the span's child list.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}
