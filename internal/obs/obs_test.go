package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"raizn/internal/vclock"
)

func TestDisabledTracerReturnsNil(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tr := NewTracer(clk, Config{})
		if tr.Enabled() {
			t.Fatal("new tracer should start disabled")
		}
		sp := tr.Begin(OpWrite, 0, 4096)
		if sp != nil {
			t.Fatal("disabled Begin must return nil")
		}
		// Every span method must be a no-op on nil.
		sp.Mark(PhasePlan)
		sp.MarkAt(PhaseQueue, time.Millisecond)
		sp.SetSegs(4)
		c := sp.Child(OpDevWrite, 1, 0, 4096)
		if c != nil {
			t.Fatal("nil span Child must return nil")
		}
		c.End(nil)
		sp.End(nil)
		if got := tr.Snapshot(); len(got) != 0 {
			t.Fatalf("disabled tracer recorded %d spans", len(got))
		}
	})
}

func TestDisabledTracingAllocatesNothing(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tr := NewTracer(clk, Config{})
		allocs := testing.AllocsPerRun(100, func() {
			sp := tr.Begin(OpWrite, 0, 4096)
			c := sp.Child(OpDevWrite, 1, 0, 4096)
			c.MarkAt(PhaseQueue, 0)
			c.SetSegs(2)
			c.EndAt(0, nil)
			sp.Mark(PhaseSubmit)
			sp.End(nil)
		})
		if allocs != 0 {
			t.Fatalf("disabled tracing allocated %.1f per op, want 0", allocs)
		}
	})
}

func TestSpanTreeAndSink(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tr := NewTracer(clk, Config{})
		tr.Enable()

		sp := tr.Begin(OpWrite, 100, 8192)
		clk.Sleep(time.Microsecond)
		sp.Mark(PhasePlan)
		c := sp.Child(OpDevWrite, 2, 700, 4096)
		c.SetSegs(3)
		c.MarkAt(PhaseQueue, clk.Now()+time.Microsecond)
		c.MarkAt(PhaseMedia, clk.Now()+3*time.Microsecond)
		c.EndAt(clk.Now()+5*time.Microsecond, nil)
		clk.Sleep(10 * time.Microsecond)
		sp.End(nil)

		roots := tr.Snapshot()
		if len(roots) != 1 {
			t.Fatalf("got %d roots, want 1", len(roots))
		}
		got := roots[0]
		if got.Op != OpWrite || got.LBA != 100 || got.Bytes != 8192 {
			t.Fatalf("root span = %+v", got)
		}
		if got.Duration() != 11*time.Microsecond {
			t.Fatalf("root duration = %v, want 11µs", got.Duration())
		}
		kids := got.Children()
		if len(kids) != 1 || kids[0].Dev != 2 || kids[0].Segs() != 3 {
			t.Fatalf("children = %+v", kids)
		}
		if _, ok := kids[0].MarkTime(PhaseQueue); !ok {
			t.Fatal("queue mark lost")
		}
		tree := FormatSpanTree(got)
		for _, want := range []string{"write", "dev-write", "dev=2", "segs=3"} {
			if !strings.Contains(tree, want) {
				t.Fatalf("span tree missing %q:\n%s", want, tree)
			}
		}

		tr.Reset()
		if len(tr.Snapshot()) != 0 {
			t.Fatal("Reset did not clear sink")
		}
	})
}

func TestSinkBounded(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tr := NewTracer(clk, Config{SinkCapacity: 32})
		tr.Enable()
		for i := 0; i < 1000; i++ {
			sp := tr.Begin(OpRead, int64(i), 4096)
			sp.End(nil)
		}
		got := tr.Snapshot()
		if len(got) > 32+sinkShards {
			t.Fatalf("sink retained %d spans, want ~32", len(got))
		}
		// Retained spans must be the newest ones.
		for _, s := range got {
			if s.LBA < 900 {
				t.Fatalf("sink retained stale span lba=%d", s.LBA)
			}
		}
	})
}

func TestDoubleEndIdempotent(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tr := NewTracer(clk, Config{})
		tr.Enable()
		sp := tr.Begin(OpFlush, 0, 0)
		sp.End(nil)
		clk.Sleep(time.Second)
		sp.End(nil) // must not re-record or move the end time
		if got := len(tr.Snapshot()); got != 1 {
			t.Fatalf("double End recorded %d spans", got)
		}
		if sp.Duration() != 0 {
			t.Fatalf("second End moved the end time: %v", sp.Duration())
		}
	})
}

func TestWatchdogFlagsOutliers(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tr := NewTracer(clk, Config{Watchdog: WatchdogConfig{Multiple: 3, MinSamples: 10, MaxFlagged: 4}})
		tr.Enable()
		wd := tr.Watchdog()
		end := func(d time.Duration) {
			sp := tr.Begin(OpWrite, 0, 4096)
			sp.EndAt(clk.Now()+d, nil)
		}
		for i := 0; i < 50; i++ {
			end(time.Millisecond)
		}
		if flagged, _ := wd.Flagged(); len(flagged) != 0 {
			t.Fatalf("uniform latency flagged %d spans", len(flagged))
		}
		th, ok := wd.Threshold(OpWrite)
		if !ok || th < time.Millisecond {
			t.Fatalf("threshold = %v, %v", th, ok)
		}
		end(100 * time.Millisecond)
		flagged, dropped := wd.Flagged()
		if len(flagged) != 1 || dropped != 0 {
			t.Fatalf("flagged=%d dropped=%d, want 1/0", len(flagged), dropped)
		}
		if flagged[0].Duration() != 100*time.Millisecond {
			t.Fatalf("flagged wrong span: %v", flagged[0].Duration())
		}
		// The flagged list is bounded; overflow counts as dropped. Each
		// outlier must outrun the p99 the previous one dragged up, so
		// escalate geometrically.
		for i := 0; i < 10; i++ {
			end(time.Second << uint(2*i))
		}
		flagged, dropped = wd.Flagged()
		if len(flagged) != 4 || dropped == 0 {
			t.Fatalf("flagged=%d dropped=%d, want 4/>0", len(flagged), dropped)
		}
	})
}

func TestWatchdogWarmup(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tr := NewTracer(clk, Config{Watchdog: WatchdogConfig{MinSamples: 64}})
		tr.Enable()
		// Slow spans during warmup must not be flagged: a two-sample p99
		// would flag nearly everything.
		for i := 0; i < 63; i++ {
			sp := tr.Begin(OpRead, 0, 0)
			sp.EndAt(clk.Now()+time.Duration(1+i%7)*time.Millisecond, nil)
		}
		if flagged, _ := tr.Watchdog().Flagged(); len(flagged) != 0 {
			t.Fatalf("warmup flagged %d spans", len(flagged))
		}
		if _, ok := tr.Watchdog().Threshold(OpRead); ok {
			t.Fatal("threshold available before MinSamples")
		}
	})
}

func TestRegistryMetrics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("raizn_writes_total")
	c.Add(5)
	c.Inc()
	if r.Counter("raizn_writes_total") != c {
		t.Fatal("Counter not get-or-create")
	}
	if c.Load() != 6 {
		t.Fatalf("counter = %d, want 6", c.Load())
	}
	g := r.Gauge("raizn_open_zones")
	g.Set(3)
	g.Add(-1)
	if g.Load() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Load())
	}
	r.GaugeFunc("zns_host_write_bytes", func() int64 { return 1234 })
	h := r.Histogram("raizn_write_latency_seconds")
	h.Record(time.Millisecond)
	h.Record(3 * time.Millisecond)

	snap := r.Snapshot()
	if snap.Counters["raizn_writes_total"] != 6 {
		t.Fatalf("snapshot counters = %+v", snap.Counters)
	}
	if snap.Gauges["raizn_open_zones"] != 2 || snap.Gauges["zns_host_write_bytes"] != 1234 {
		t.Fatalf("snapshot gauges = %+v", snap.Gauges)
	}
	hs := snap.Histograms["raizn_write_latency_seconds"]
	if hs.Count != 2 || hs.Min != time.Millisecond || hs.Max != 3*time.Millisecond {
		t.Fatalf("snapshot hist = %+v", hs)
	}

	var nilReg *Registry
	nilReg.Counter("x").Inc() // must not panic
	nilReg.GaugeFunc("y", func() int64 { return 0 })
	if got := nilReg.Snapshot(); len(got.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestExporters(t *testing.T) {
	r := NewRegistry()
	r.Counter("zns_write_cmds_total").Add(42)
	r.Gauge("raizn_degraded").Set(1)
	r.Histogram("raizn_read_latency_seconds").Record(2 * time.Millisecond)
	snap := r.Snapshot()

	var jbuf bytes.Buffer
	if err := snap.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(jbuf.Bytes(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v\n%s", err, jbuf.String())
	}
	if back.Counters["zns_write_cmds_total"] != 42 {
		t.Fatalf("round-trip counters = %+v", back.Counters)
	}

	var pbuf bytes.Buffer
	if err := snap.WritePrometheus(&pbuf); err != nil {
		t.Fatal(err)
	}
	text := pbuf.String()
	for _, want := range []string{
		"# TYPE zns_write_cmds_total counter",
		"zns_write_cmds_total 42",
		"# TYPE raizn_degraded gauge",
		"# TYPE raizn_read_latency_seconds summary",
		`raizn_read_latency_seconds{quantile="0.99"}`,
		"raizn_read_latency_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}
}

func TestAnalyzeBreakdown(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tr := NewTracer(clk, Config{})
		tr.Enable()

		// One write: plan 2µs, compute 3µs, submit 1µs, wait 10µs.
		sp := tr.Begin(OpWrite, 0, 4096)
		sp.MarkAt(PhasePlan, clk.Now()+2*time.Microsecond)
		sp.MarkAt(PhaseCompute, clk.Now()+5*time.Microsecond)
		sp.MarkAt(PhaseSubmit, clk.Now()+6*time.Microsecond)
		c := sp.Child(OpDevWrite, 0, 0, 4096)
		c.MarkAt(PhaseQueue, clk.Now()+8*time.Microsecond)
		c.MarkAt(PhaseMedia, clk.Now()+14*time.Microsecond)
		c.EndAt(clk.Now()+16*time.Microsecond, nil)
		sp.EndAt(clk.Now()+16*time.Microsecond, nil)

		b := Analyze(tr.Snapshot())
		check := func(name string, want time.Duration) {
			t.Helper()
			h := b.Hist(name)
			if h == nil || h.Count() != 1 {
				t.Fatalf("phase %s missing", name)
			}
			// Log-bucketed histograms have ~5% relative error.
			got := h.Percentile(50)
			if got < want*94/100 || got > want*106/100 {
				t.Fatalf("%s = %v, want ~%v", name, got, want)
			}
		}
		check("write/total", 16*time.Microsecond)
		check("write/plan", 2*time.Microsecond)
		check("write/compute", 3*time.Microsecond)
		check("write/submit", 1*time.Microsecond)
		check("write/wait", 10*time.Microsecond)
		check("dev-write/queue", 8*time.Microsecond)
		check("dev-write/media", 6*time.Microsecond)
		check("dev-write/complete", 2*time.Microsecond)

		var buf bytes.Buffer
		b.Write(&buf)
		if !strings.Contains(buf.String(), "write/plan") {
			t.Fatalf("breakdown table:\n%s", buf.String())
		}
	})
}

func TestQueueDepthTimeline(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tr := NewTracer(clk, Config{})
		tr.Enable()
		sp := tr.Begin(OpWrite, 0, 0)
		// Two overlapping device IOs: [0,10µs] and [5µs,15µs].
		a := sp.Child(OpDevWrite, 0, 0, 4096)
		a.EndAt(clk.Now()+10*time.Microsecond, nil)
		clk.Sleep(5 * time.Microsecond)
		bSpan := sp.Child(OpDevWrite, 1, 0, 4096)
		bSpan.EndAt(clk.Now()+10*time.Microsecond, nil)
		sp.EndAt(clk.Now()+10*time.Microsecond, nil)

		pts := QueueDepthTimeline(tr.Snapshot())
		wantDepths := []int{1, 2, 1, 0}
		if len(pts) != len(wantDepths) {
			t.Fatalf("timeline = %+v", pts)
		}
		for i, want := range wantDepths {
			if pts[i].Depth != want {
				t.Fatalf("timeline[%d] = %+v, want depth %d (all: %+v)", i, pts[i], want, pts)
			}
		}
		var buf bytes.Buffer
		WriteTimeline(&buf, pts, 4)
		if !strings.Contains(buf.String(), "peak 2") {
			t.Fatalf("timeline render:\n%s", buf.String())
		}
	})
}

func BenchmarkDisabledTracing(b *testing.B) {
	clk := vclock.New()
	clk.Run(func() {
		tr := NewTracer(clk, Config{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := tr.Begin(OpWrite, int64(i), 4096)
			c := sp.Child(OpDevWrite, 0, int64(i), 4096)
			c.MarkAt(PhaseQueue, 0)
			c.SetSegs(1)
			c.EndAt(0, nil)
			sp.Mark(PhaseSubmit)
			sp.End(nil)
		}
	})
}

func BenchmarkEnabledTracing(b *testing.B) {
	clk := vclock.New()
	clk.Run(func() {
		tr := NewTracer(clk, Config{})
		tr.Enable()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := tr.Begin(OpWrite, int64(i), 4096)
			c := sp.Child(OpDevWrite, 0, int64(i), 4096)
			c.MarkAt(PhaseQueue, 0)
			c.SetSegs(1)
			c.EndAt(0, nil)
			sp.End(nil)
		}
	})
}

// TestWatchdogWindowBudget: under a sustained breach the watchdog keeps
// at most MaxPerWindow span trees per virtual-time window, counts the
// rest as dropped, and mirrors the drop count into a bound gauge; a new
// window reopens the budget.
func TestWatchdogWindowBudget(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tr := NewTracer(clk, Config{Watchdog: WatchdogConfig{
			Multiple: 3, MinSamples: 8, MaxFlagged: 64,
			Window: 10 * time.Millisecond, MaxPerWindow: 2,
		}})
		tr.Enable()
		wd := tr.Watchdog()
		g := &Gauge{}
		wd.BindDropGauge(g)
		end := func(d time.Duration) {
			sp := tr.Begin(OpWrite, 0, 4096)
			sp.EndAt(clk.Now()+d, nil)
		}
		for i := 0; i < 20; i++ {
			end(time.Microsecond) // warm the p99 near zero
		}
		// Sustained breach inside one 10ms window. Each outlier raises
		// the rolling p99 it contributes to, so later ones escalate past
		// 3x the previous to keep breaching; all end before t=10ms.
		for _, d := range []time.Duration{
			100 * time.Microsecond, 400 * time.Microsecond,
			1300 * time.Microsecond, 4 * time.Millisecond,
		} {
			end(d)
		}
		flagged, dropped := wd.Flagged()
		if len(flagged) != 2 {
			t.Fatalf("window retained %d spans, want MaxPerWindow=2", len(flagged))
		}
		if dropped != 2 {
			t.Fatalf("dropped = %d, want 2", dropped)
		}
		if g.Load() != 2 {
			t.Fatalf("drop gauge = %d, want 2", g.Load())
		}
		// Advance into the next window: the budget reopens.
		clk.Sleep(20 * time.Millisecond)
		end(15 * time.Millisecond)
		flagged, dropped = wd.Flagged()
		if len(flagged) != 3 || dropped != 2 {
			t.Fatalf("after window roll: flagged=%d dropped=%d, want 3/2", len(flagged), dropped)
		}
	})
}
