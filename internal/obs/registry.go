package obs

import (
	"sync"
	"sync/atomic"

	"raizn/internal/stats"
)

// Counter is a monotonically increasing metric. It is a bare atomic so
// hot paths (the raizn write pipeline bumps several per request) pay
// one LOCK ADD and nothing else.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a settable instantaneous metric.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Registry is a named metrics registry. Names follow the Prometheus
// convention: snake_case with a subsystem prefix (raizn_, zns_,
// blockdev_, scrub_), units spelled out (_bytes, _total, _seconds).
// Lookups are get-or-create, so two components registering the same
// name share the metric — deliberate, so per-device registrations
// aggregate unless the caller namespaces with an index.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	hists      map[string]*stats.Histogram
	help       map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() int64),
		hists:      make(map[string]*stats.Histogram),
		help:       make(map[string]string),
	}
}

// Help attaches a one-line description to a metric name; the
// Prometheus exporter emits it as a # HELP line (with backslashes and
// newlines escaped per the text exposition format). Re-registering
// replaces the text.
func (r *Registry) Help(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
}

// Counter returns the named counter, creating it on first use. A nil
// registry hands back a detached counter so callers never nil-check.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a pull-style gauge evaluated at snapshot time —
// the fit for lifetime counters a device already maintains internally.
// Re-registering a name replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFuncs[name] = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *stats.Histogram {
	if r == nil {
		return stats.NewHistogram()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = stats.NewHistogram()
		r.hists[name] = h
	}
	return h
}
