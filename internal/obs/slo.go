package obs

import (
	"sort"
	"sync"
	"time"

	"raizn/internal/stats"
)

// SLOConfig tunes the per-tenant SLO alarm.
type SLOConfig struct {
	// Factor is the multiple of the reference p99 a tenant's running p99
	// must exceed to breach. The reference is TargetP99 when set,
	// otherwise the running p99 across all tenants. Default 3.
	Factor float64
	// TargetP99, when non-zero, is an absolute latency objective; the
	// breach bar becomes Factor*TargetP99 regardless of fleet behavior.
	TargetP99 time.Duration
	// MinSamples is the per-tenant warmup before a tenant can breach —
	// a cold p99 over a handful of samples flags everyone. Default 64.
	MinSamples uint64
}

// SLOAlarm is the slow-IO watchdog generalized to a tenant population:
// where the Watchdog flags individual requests far above the running
// p99, the alarm keeps a running latency histogram per tenant plus one
// across all tenants, and reports the tenants whose p99 sits above
// Factor× the reference — the "which tenant is being starved or is
// dragging the fleet" question a multi-tenant front end has to answer
// continuously. Observe is safe for concurrent use; evaluation happens
// on demand in Check so the hot path pays one histogram insert.
type SLOAlarm struct {
	cfg SLOConfig

	mu      sync.Mutex
	global  *stats.Histogram
	tenants map[string]*stats.Histogram
}

// SLOBreach reports one tenant over its objective at Check time.
type SLOBreach struct {
	Tenant  string
	P99     time.Duration // the tenant's running p99
	Bar     time.Duration // the threshold it exceeded (Factor × reference)
	Samples uint64
}

// NewSLOAlarm returns an empty alarm.
func NewSLOAlarm(cfg SLOConfig) *SLOAlarm {
	if cfg.Factor <= 0 {
		cfg.Factor = 3
	}
	if cfg.MinSamples == 0 {
		cfg.MinSamples = 64
	}
	return &SLOAlarm{
		cfg:     cfg,
		global:  stats.NewHistogram(),
		tenants: make(map[string]*stats.Histogram),
	}
}

// Observe feeds one completed-request latency for tenant. Nil-safe so
// callers can thread an optional alarm unconditionally.
func (a *SLOAlarm) Observe(tenant string, lat time.Duration) {
	if a == nil {
		return
	}
	a.mu.Lock()
	h, ok := a.tenants[tenant]
	if !ok {
		h = stats.NewHistogram()
		a.tenants[tenant] = h
	}
	a.mu.Unlock()
	h.Record(lat)
	a.global.Record(lat)
}

// Bar returns the current breach threshold: Factor × TargetP99 when an
// absolute objective is configured, else Factor × the running p99 across
// every tenant. ok is false while the reference is still warming up.
func (a *SLOAlarm) Bar() (bar time.Duration, ok bool) {
	if a.cfg.TargetP99 > 0 {
		return time.Duration(a.cfg.Factor * float64(a.cfg.TargetP99)), true
	}
	if a.global.Count() < a.cfg.MinSamples {
		return 0, false
	}
	return time.Duration(a.cfg.Factor * float64(a.global.Percentile(99))), true
}

// Check evaluates every tenant against the current bar and returns the
// breaching tenants sorted worst-first (ties broken by tenant name, so
// the report is deterministic).
func (a *SLOAlarm) Check() []SLOBreach {
	if a == nil {
		return nil
	}
	bar, ok := a.Bar()
	if !ok {
		return nil
	}
	a.mu.Lock()
	hists := make(map[string]*stats.Histogram, len(a.tenants))
	for t, h := range a.tenants {
		hists[t] = h
	}
	a.mu.Unlock()
	var out []SLOBreach
	for t, h := range hists {
		n := h.Count()
		if n < a.cfg.MinSamples {
			continue
		}
		if p99 := h.Percentile(99); p99 > bar {
			out = append(out, SLOBreach{Tenant: t, P99: p99, Bar: bar, Samples: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P99 != out[j].P99 {
			return out[i].P99 > out[j].P99
		}
		return out[i].Tenant < out[j].Tenant
	})
	return out
}

// TenantHist returns the running histogram for tenant, or nil if it has
// never been observed.
func (a *SLOAlarm) TenantHist(tenant string) *stats.Histogram {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tenants[tenant]
}

// Tenants returns the observed tenant ids in sorted order.
func (a *SLOAlarm) Tenants() []string {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	out := make([]string, 0, len(a.tenants))
	for t := range a.tenants {
		out = append(out, t)
	}
	a.mu.Unlock()
	sort.Strings(out)
	return out
}
