package obs

import (
	"testing"
	"time"
)

// feed records n identical latencies for tenant.
func feed(a *SLOAlarm, tenant string, lat time.Duration, n int) {
	for i := 0; i < n; i++ {
		a.Observe(tenant, lat)
	}
}

func TestSLOAlarmNilSafe(t *testing.T) {
	var a *SLOAlarm
	a.Observe("t", time.Millisecond) // must not panic
	if got := a.Check(); got != nil {
		t.Errorf("nil alarm Check = %v, want nil", got)
	}
	if got := a.Tenants(); got != nil {
		t.Errorf("nil alarm Tenants = %v, want nil", got)
	}
}

func TestSLOAlarmRelativeBar(t *testing.T) {
	a := NewSLOAlarm(SLOConfig{Factor: 3, MinSamples: 10})
	// Three healthy tenants at 1ms contribute >99% of the population, so
	// the global p99 (the reference) stays at 1ms; a low-volume straggler
	// at 100ms sits far above Factor x that and must breach.
	for _, id := range []string{"a", "b", "c"} {
		feed(a, id, time.Millisecond, 1000)
	}
	feed(a, "slow", 100*time.Millisecond, 20)
	breaches := a.Check()
	if len(breaches) != 1 || breaches[0].Tenant != "slow" {
		t.Fatalf("breaches = %+v, want exactly [slow]", breaches)
	}
	if b := breaches[0]; b.P99 <= b.Bar {
		t.Errorf("breach reports P99 %v <= Bar %v", b.P99, b.Bar)
	}
}

func TestSLOAlarmAbsoluteTarget(t *testing.T) {
	a := NewSLOAlarm(SLOConfig{Factor: 2, TargetP99: time.Millisecond, MinSamples: 10})
	bar, ok := a.Bar()
	if !ok || bar != 2*time.Millisecond {
		t.Fatalf("Bar = %v/%v, want 2ms immediately (absolute objective)", bar, ok)
	}
	feed(a, "fast", 500*time.Microsecond, 50)
	feed(a, "slow", 5*time.Millisecond, 50)
	breaches := a.Check()
	if len(breaches) != 1 || breaches[0].Tenant != "slow" {
		t.Fatalf("breaches = %+v, want exactly [slow]", breaches)
	}
}

func TestSLOAlarmWarmup(t *testing.T) {
	a := NewSLOAlarm(SLOConfig{Factor: 2, TargetP99: time.Millisecond, MinSamples: 64})
	feed(a, "slow", 10*time.Millisecond, 63) // one short of warmup
	if got := a.Check(); len(got) != 0 {
		t.Fatalf("tenant breached during warmup: %+v", got)
	}
	a.Observe("slow", 10*time.Millisecond)
	if got := a.Check(); len(got) != 1 {
		t.Fatalf("warmed-up tenant did not breach: %+v", got)
	}
}

func TestSLOAlarmRelativeBarWarmup(t *testing.T) {
	a := NewSLOAlarm(SLOConfig{MinSamples: 100})
	feed(a, "only", 10*time.Millisecond, 99)
	if _, ok := a.Bar(); ok {
		t.Fatalf("relative bar available before the global warmup")
	}
	if got := a.Check(); got != nil {
		t.Fatalf("Check before warmup = %+v, want nil", got)
	}
}

func TestSLOAlarmDeterministicOrder(t *testing.T) {
	a := NewSLOAlarm(SLOConfig{Factor: 2, TargetP99: time.Microsecond, MinSamples: 1})
	// Same latency for every tenant: ties must break by name.
	for _, id := range []string{"zeta", "alpha", "mid"} {
		feed(a, id, time.Millisecond, 5)
	}
	got := a.Check()
	if len(got) != 3 {
		t.Fatalf("breaches = %+v, want 3", got)
	}
	for i, want := range []string{"alpha", "mid", "zeta"} {
		if got[i].Tenant != want {
			t.Errorf("breach[%d] = %s, want %s", i, got[i].Tenant, want)
		}
	}
	if ts := a.Tenants(); len(ts) != 3 || ts[0] != "alpha" || ts[2] != "zeta" {
		t.Errorf("Tenants() = %v, want sorted", ts)
	}
}
