package obs

import (
	"sync"
	"time"

	"raizn/internal/stats"
)

// WatchdogConfig tunes the slow-IO watchdog.
type WatchdogConfig struct {
	// Multiple of the running per-op p99 a request must exceed to be
	// flagged. Default 3.
	Multiple float64
	// MinSamples is the per-op warmup before flagging starts — a cold
	// p99 over two samples flags everything. Default 64.
	MinSamples uint64
	// MaxFlagged bounds the retained flagged-span list. Default 16.
	MaxFlagged int
}

// Watchdog watches root-span completions, keeps a running latency
// histogram per op type, and retains the span trees of requests that
// finished slower than Multiple× the running p99 — the "where did that
// outlier go" question Figs. 9–10 of the paper answer by hand.
type Watchdog struct {
	cfg     WatchdogConfig
	mu      sync.Mutex
	hists   [numOps]*stats.Histogram
	flagged []*Span
	dropped int
}

func newWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Multiple <= 0 {
		cfg.Multiple = 3
	}
	if cfg.MinSamples == 0 {
		cfg.MinSamples = 64
	}
	if cfg.MaxFlagged <= 0 {
		cfg.MaxFlagged = 16
	}
	w := &Watchdog{cfg: cfg}
	for i := range w.hists {
		w.hists[i] = stats.NewHistogram()
	}
	return w
}

// observe feeds one finished root span. The span is judged against the
// p99 of the observations BEFORE it — a slow span must not raise the
// bar it is measured against.
func (w *Watchdog) observe(s *Span) {
	lat := s.Duration()
	w.mu.Lock()
	h := w.hists[s.Op]
	slow := h.Count() >= w.cfg.MinSamples &&
		float64(lat) > w.cfg.Multiple*float64(h.Percentile(99))
	if slow {
		if len(w.flagged) < w.cfg.MaxFlagged {
			w.flagged = append(w.flagged, s)
		} else {
			w.dropped++
		}
	}
	w.mu.Unlock()
	h.Record(lat)
}

// Flagged returns the retained slow spans plus how many more were
// flagged but dropped once the list filled.
func (w *Watchdog) Flagged() (spans []*Span, dropped int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]*Span(nil), w.flagged...), w.dropped
}

// Running returns the watchdog's latency histogram for op — the
// baseline flagged spans were compared against.
func (w *Watchdog) Running(op Op) *stats.Histogram {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hists[op]
}

// Threshold reports the current flagging threshold for op, or false
// while still warming up.
func (w *Watchdog) Threshold(op Op) (time.Duration, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	h := w.hists[op]
	if h.Count() < w.cfg.MinSamples {
		return 0, false
	}
	return time.Duration(w.cfg.Multiple * float64(h.Percentile(99))), true
}
