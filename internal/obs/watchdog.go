package obs

import (
	"sync"
	"time"

	"raizn/internal/stats"
)

// WatchdogConfig tunes the slow-IO watchdog.
type WatchdogConfig struct {
	// Multiple of the running per-op p99 a request must exceed to be
	// flagged. Default 3.
	Multiple float64
	// MinSamples is the per-op warmup before flagging starts — a cold
	// p99 over two samples flags everything. Default 64.
	MinSamples uint64
	// MaxFlagged bounds the retained flagged-span list. Default 16.
	MaxFlagged int
	// Window is the virtual-time bucket for the per-window flag budget:
	// under a sustained breach (a device gone slow flags every request)
	// at most MaxPerWindow span trees are retained per Window of span
	// end time, the rest are counted as dropped. Default 10ms.
	Window time.Duration
	// MaxPerWindow bounds the spans retained per Window. Default 8.
	MaxPerWindow int
}

// Watchdog watches root-span completions, keeps a running latency
// histogram per op type, and retains the span trees of requests that
// finished slower than Multiple× the running p99 — the "where did that
// outlier go" question Figs. 9–10 of the paper answer by hand.
type Watchdog struct {
	cfg       WatchdogConfig
	mu        sync.Mutex
	hists     [numOps]*stats.Histogram
	flagged   []*Span
	dropped   int
	curWin    int64 // window index of the last flagged span (-1 initially)
	inWindow  int   // spans retained in curWin
	dropGauge *Gauge
}

func newWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Multiple <= 0 {
		cfg.Multiple = 3
	}
	if cfg.MinSamples == 0 {
		cfg.MinSamples = 64
	}
	if cfg.MaxFlagged <= 0 {
		cfg.MaxFlagged = 16
	}
	if cfg.Window <= 0 {
		cfg.Window = 10 * time.Millisecond
	}
	if cfg.MaxPerWindow <= 0 {
		cfg.MaxPerWindow = 8
	}
	w := &Watchdog{cfg: cfg, curWin: -1}
	for i := range w.hists {
		w.hists[i] = stats.NewHistogram()
	}
	return w
}

// BindDropGauge mirrors the watchdog's dropped-span counter into g so
// the drop rate is visible from the metrics registry (typically a
// labeled raizn_obs_dropped_spans gauge).
func (w *Watchdog) BindDropGauge(g *Gauge) {
	w.mu.Lock()
	w.dropGauge = g
	g.Set(int64(w.dropped))
	w.mu.Unlock()
}

// observe feeds one finished root span. The span is judged against the
// p99 of the observations BEFORE it — a slow span must not raise the
// bar it is measured against.
func (w *Watchdog) observe(s *Span) {
	lat := s.Duration()
	w.mu.Lock()
	h := w.hists[s.Op]
	slow := h.Count() >= w.cfg.MinSamples &&
		float64(lat) > w.cfg.Multiple*float64(h.Percentile(99))
	if slow {
		// Budget flags per window of virtual end time: a sustained
		// breach (every request slow for seconds) must not grow the
		// retained list without bound, nor let one hot window evict
		// evidence of the next.
		if win := int64((s.start + lat) / w.cfg.Window); win != w.curWin {
			w.curWin = win
			w.inWindow = 0
		}
		if w.inWindow >= w.cfg.MaxPerWindow || len(w.flagged) >= w.cfg.MaxFlagged {
			w.dropped++
			if w.dropGauge != nil {
				w.dropGauge.Set(int64(w.dropped))
			}
		} else {
			w.inWindow++
			w.flagged = append(w.flagged, s)
		}
	}
	w.mu.Unlock()
	h.Record(lat)
}

// Flagged returns the retained slow spans plus how many more were
// flagged but dropped once the list filled.
func (w *Watchdog) Flagged() (spans []*Span, dropped int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]*Span(nil), w.flagged...), w.dropped
}

// Running returns the watchdog's latency histogram for op — the
// baseline flagged spans were compared against.
func (w *Watchdog) Running(op Op) *stats.Histogram {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hists[op]
}

// Threshold reports the current flagging threshold for op, or false
// while still warming up.
func (w *Watchdog) Threshold(op Op) (time.Duration, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	h := w.hists[op]
	if h.Count() < w.cfg.MinSamples {
		return 0, false
	}
	return time.Duration(w.cfg.Multiple * float64(h.Percentile(99))), true
}
