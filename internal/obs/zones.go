package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Zone-state ordinals used across journal events and analyzers. They
// deliberately mirror zns.ZoneState (obs cannot import zns), and the
// zns package asserts the correspondence in its tests.
const (
	ZoneStateEmpty = iota
	ZoneStateOpen
	ZoneStateClosed
	ZoneStateFull
	ZoneStateReadOnly
	ZoneStateOffline
	NumZoneStates
)

var zoneStateNames = [NumZoneStates]string{
	"empty", "open", "closed", "full", "read-only", "offline",
}

// ZoneStateName returns the canonical name of a zone-state ordinal.
func ZoneStateName(s int) string {
	if s >= 0 && s < NumZoneStates {
		return zoneStateNames[s]
	}
	return "state?"
}

// ZoneInfo is one zone's instantaneous state for the heatmap — a
// device-neutral copy of what zns.ReportZones / raizn.ReportZones
// return, so the renderer works for logical and physical zones alike.
type ZoneInfo struct {
	Index int
	State int    // zone-state ordinal
	WP    int64  // zone-relative write pointer
	Cap   int64  // writable capacity in sectors
	Role  string // "" or "data" for striped data; "md", "pp" for reserved zones
}

// ZoneRow is one labelled row of the heatmap grid: the logical volume
// or one physical device.
type ZoneRow struct {
	Label string
	Zones []ZoneInfo
}

// heatCell renders one zone as a single character: lifecycle state for
// the terminal states, write-pointer fill shading for open zones.
// Reserved zones keep their role letter in every non-empty state — a
// metadata or partial-parity zone filling up is bookkeeping, not data,
// and the grid should say so at a glance.
func heatCell(z ZoneInfo) byte {
	if z.State != ZoneStateEmpty {
		switch z.Role {
		case "md":
			return 'm'
		case "pp":
			return 'p'
		}
	}
	switch z.State {
	case ZoneStateEmpty:
		return '.'
	case ZoneStateClosed:
		return 'c'
	case ZoneStateFull:
		return 'F'
	case ZoneStateReadOnly:
		return 'R'
	case ZoneStateOffline:
		return 'X'
	}
	// Open: shade by fill. 1..9 covers (0,90%]; '=' is >90% but unsealed.
	if z.Cap <= 0 || z.WP <= 0 {
		return '0'
	}
	fill := float64(z.WP) / float64(z.Cap)
	if fill > 0.9 {
		return '='
	}
	d := int(fill*10) + 1
	if d > 9 {
		d = 9
	}
	return byte('0' + d)
}

// WriteZoneHeatmap renders a compact state/write-pointer grid: one row
// per label, one column per zone. Empty '.', closed 'c', full 'F',
// read-only 'R', offline 'X'; open zones show their fill decile 0-9
// ('=' when over 90% but not yet sealed).
func WriteZoneHeatmap(w io.Writer, rows []ZoneRow) {
	if len(rows) == 0 {
		return
	}
	nz := 0
	labelW := 0
	for _, r := range rows {
		if len(r.Zones) > nz {
			nz = len(r.Zones)
		}
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	fmt.Fprintf(w, "%*s  ", labelW, "")
	for z := 0; z < nz; z++ {
		if z%10 == 0 {
			fmt.Fprintf(w, "%-10d", z)
		}
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		cells := make([]byte, len(r.Zones))
		for i, z := range r.Zones {
			cells[i] = heatCell(z)
		}
		fmt.Fprintf(w, "%-*s  %s\n", labelW, r.Label, cells)
	}
	fmt.Fprintf(w, "%*s  (. empty  1-9 open fill decile  = open >90%%  c closed  F full  R read-only  X offline  m metadata  p partial-parity)\n",
		labelW, "")
}

// OccupancyTimeline extracts the open- and active-zone counts over time
// for one event source from the zone lifecycle events, which carry the
// counts in their C/D slots — no state-machine replay needed.
func OccupancyTimeline(evs []Event, src int) (open, active []DepthPoint) {
	for _, e := range evs {
		if int(e.Src) != src {
			continue
		}
		switch e.Type {
		case EvZoneState, EvZoneReset, EvZoneFinish:
			open = append(open, DepthPoint{e.T, int(e.C)})
			active = append(active, DepthPoint{e.T, int(e.D)})
		}
	}
	return open, active
}

// ZoneLife aggregates one zone's lifetime from the journal.
type ZoneLife struct {
	Zone     int32
	Resets   int64
	Finishes int64
	InState  [NumZoneStates]time.Duration
}

// ZoneLifetimes replays the zone lifecycle events of one source and
// returns per-zone reset/finish counts and time-in-state up to endT.
// Zones are assumed empty at virtual time zero (enable the journal
// before the first write for exact accounting).
func ZoneLifetimes(evs []Event, src int, endT time.Duration) []ZoneLife {
	type zstate struct {
		life  ZoneLife
		state int
		since time.Duration
	}
	zones := make(map[int32]*zstate)
	get := func(z int32) *zstate {
		zs, ok := zones[z]
		if !ok {
			zs = &zstate{life: ZoneLife{Zone: z}, state: ZoneStateEmpty}
			zones[z] = zs
		}
		return zs
	}
	settle := func(zs *zstate, now time.Duration, newState int) {
		if now > zs.since && zs.state >= 0 && zs.state < NumZoneStates {
			zs.life.InState[zs.state] += now - zs.since
		}
		zs.state, zs.since = newState, now
	}
	for _, e := range evs {
		if int(e.Src) != src || e.Zone < 0 {
			continue
		}
		switch e.Type {
		case EvZoneState:
			settle(get(e.Zone), e.T, int(e.A))
		case EvZoneReset:
			zs := get(e.Zone)
			settle(zs, e.T, ZoneStateEmpty)
			zs.life.Resets++
		case EvZoneFinish:
			zs := get(e.Zone)
			settle(zs, e.T, ZoneStateFull)
			zs.life.Finishes++
		}
	}
	out := make([]ZoneLife, 0, len(zones))
	for _, zs := range zones {
		settle(zs, endT, zs.state)
		out = append(out, zs.life)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Zone < out[j].Zone })
	return out
}

// WriteZoneLifetimes renders per-zone lifetime stats as a table.
func WriteZoneLifetimes(w io.Writer, lives []ZoneLife) {
	if len(lives) == 0 {
		fmt.Fprintln(w, "(no zone lifecycle events recorded)")
		return
	}
	fmt.Fprintf(w, "%-5s %7s %8s %12s %12s %12s %12s\n",
		"zone", "resets", "finishes", "empty", "open", "closed", "full")
	for _, l := range lives {
		fmt.Fprintf(w, "z%-4d %7d %8d %12v %12v %12v %12v\n",
			l.Zone, l.Resets, l.Finishes,
			l.InState[ZoneStateEmpty], l.InState[ZoneStateOpen],
			l.InState[ZoneStateClosed], l.InState[ZoneStateFull])
	}
}

// FreeBlockTimeline extracts one FTL's free-erase-block count over time
// from its block-allocation events.
func FreeBlockTimeline(evs []Event, src int) []DepthPoint {
	var out []DepthPoint
	for _, e := range evs {
		if int(e.Src) != src || e.Type != EvBlockAlloc {
			continue
		}
		out = append(out, DepthPoint{e.T, int(e.A)})
	}
	return out
}

// WACategory is one slice of the raizn physical-write breakdown.
type WACategory struct {
	Name  string
	Bytes int64
}

// WADevice is one device's contribution to the device layer of the WA
// report. FlashBytes is zero for device models without an FTL (zns).
type WADevice struct {
	Name       string
	HostBytes  int64 // bytes the upper layer wrote to this device
	FlashBytes int64 // bytes physically programmed, including GC copies
}

// WAReport is the layered write-amplification decomposition: user bytes
// at the top, the raizn layer's physical writes broken into categories
// (data, parity, partial-parity headers/payloads, metadata, rebuild),
// and the device layer's host and flash-program bytes at the bottom.
type WAReport struct {
	UserBytes  int64
	Categories []WACategory
	Devices    []WADevice
}

// RaiznBytes sums the category breakdown — everything the raizn layer
// physically wrote on behalf of UserBytes of user data.
func (r *WAReport) RaiznBytes() int64 {
	var n int64
	for _, c := range r.Categories {
		n += c.Bytes
	}
	return n
}

// DeviceHostBytes sums per-device host writes.
func (r *WAReport) DeviceHostBytes() int64 {
	var n int64
	for _, d := range r.Devices {
		n += d.HostBytes
	}
	return n
}

// FlashBytes sums per-device flash programs; zero when no device has an
// FTL layer.
func (r *WAReport) FlashBytes() int64 {
	var n int64
	for _, d := range r.Devices {
		n += d.FlashBytes
	}
	return n
}

func waFactor(num, den int64) string {
	if den <= 0 {
		return "    -  "
	}
	return fmt.Sprintf("%6.3fx", float64(num)/float64(den))
}

func waMiB(b int64) string {
	return fmt.Sprintf("%9.2f MiB", float64(b)/(1<<20))
}

// Write renders the layered WA report: each layer's total with its
// amplification factor over the user bytes, category and per-device
// breakdowns indented beneath.
func (r *WAReport) Write(w io.Writer) {
	user := r.UserBytes
	raizn := r.RaiznBytes()
	fmt.Fprintf(w, "%-26s %s\n", "user bytes", waMiB(user))
	fmt.Fprintf(w, "%-26s %s  %s vs user\n", "raizn physical bytes", waMiB(raizn), waFactor(raizn, user))
	for _, c := range r.Categories {
		pct := 0.0
		if raizn > 0 {
			pct = 100 * float64(c.Bytes) / float64(raizn)
		}
		fmt.Fprintf(w, "  %-24s %s  %5.1f%%\n", c.Name, waMiB(c.Bytes), pct)
	}
	host := r.DeviceHostBytes()
	fmt.Fprintf(w, "%-26s %s  %s vs user\n", "device host bytes", waMiB(host), waFactor(host, user))
	flash := r.FlashBytes()
	if flash > 0 {
		fmt.Fprintf(w, "%-26s %s  %s vs host, %s vs user\n",
			"flash programs", waMiB(flash), waFactor(flash, host), waFactor(flash, user))
	}
	for _, d := range r.Devices {
		line := fmt.Sprintf("  %-24s %s", d.Name, waMiB(d.HostBytes))
		if d.FlashBytes > 0 {
			line += fmt.Sprintf("  flash %s  %s device WA", waMiB(d.FlashBytes), waFactor(d.FlashBytes, d.HostBytes))
		}
		fmt.Fprintln(w, line)
	}
}

// WriteOccupancy renders the open/active occupancy timelines as two
// stacked ASCII charts.
func WriteOccupancy(w io.Writer, open, active []DepthPoint, buckets int) {
	fmt.Fprintln(w, "open zones:")
	WriteTimeline(w, open, buckets)
	fmt.Fprintln(w, "active zones:")
	WriteTimeline(w, active, buckets)
}
