// Package oltp implements a sysbench-style OLTP workload driver over the
// kvs store, standing in for MySQL/MyRocks in the paper's §6.3 Figure 14
// experiments: N tables of M rows each, driven by concurrent client
// threads running oltp_read_only / oltp_write_only / oltp_read_write
// transaction mixes, reporting transactions per second, average latency,
// and 95th-percentile latency.
package oltp

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"raizn/internal/kvs"
	"raizn/internal/stats"
	"raizn/internal/vclock"
)

// Config describes the dataset (sysbench's --tables / --table-size).
type Config struct {
	Tables       int
	RowsPerTable int
	RowBytes     int // sysbench rows carry ~190 bytes of payload
}

// DefaultConfig mirrors the paper's 8 tables, scaled row count.
func DefaultConfig() Config {
	return Config{Tables: 8, RowsPerTable: 2000, RowBytes: 190}
}

// Workload selects the transaction mix.
type Workload int

const (
	ReadOnly Workload = iota
	WriteOnly
	ReadWrite
)

func (w Workload) String() string {
	switch w {
	case ReadOnly:
		return "oltp_read_only"
	case WriteOnly:
		return "oltp_write_only"
	case ReadWrite:
		return "oltp_read_write"
	default:
		return "?"
	}
}

// rowKey builds the primary key for (table, row).
func rowKey(table, row int) []byte {
	return []byte(fmt.Sprintf("tbl%02d:row%010d", table, row))
}

func rowValue(cfg Config, table, row int, version int) []byte {
	v := make([]byte, cfg.RowBytes)
	for i := range v {
		v[i] = byte(table) ^ byte(row>>(i%3)) ^ byte(version)
	}
	return v
}

// Prepare populates the dataset (sysbench "prepare" phase).
func Prepare(db *kvs.DB, cfg Config) error {
	for t := 0; t < cfg.Tables; t++ {
		for r := 0; r < cfg.RowsPerTable; r++ {
			if err := db.Put(rowKey(t, r), rowValue(cfg, t, r, 0)); err != nil {
				return err
			}
		}
	}
	return db.Flush()
}

// Result aggregates a run.
type Result struct {
	Transactions int64
	TPS          float64
	AvgLatency   time.Duration
	P95Latency   time.Duration
	Errors       int64
}

// Run drives the workload with the given number of client threads for
// the duration (virtual time) and returns sysbench-style metrics. It must
// be called from a simulated goroutine.
func Run(clk *vclock.Clock, db *kvs.DB, cfg Config, w Workload, threads int, duration time.Duration, seed int64) Result {
	hist := stats.NewHistogram()
	var counter stats.Counter
	var errs int64

	start := clk.Now()
	deadline := start + duration
	wg := clk.NewWaitGroup()
	for th := 0; th < threads; th++ {
		th := th
		wg.Add(1)
		clk.Go(func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(th)*7919))
			for clk.Now() < deadline {
				t0 := clk.Now()
				err := runTransaction(db, cfg, w, rng)
				lat := clk.Now() - t0
				if err != nil {
					atomic.AddInt64(&errs, 1)
					continue
				}
				hist.Record(lat)
				counter.Add(1)
			}
		})
	}
	wg.Wait()
	elapsed := clk.Now() - start

	_, txns := counter.Bytes(), counter.Ops()
	res := Result{
		Transactions: txns,
		TPS:          float64(txns) / elapsed.Seconds(),
		AvgLatency:   hist.Mean(),
		P95Latency:   hist.Percentile(95),
		Errors:       errs,
	}
	return res
}

// runTransaction executes one sysbench transaction: read-only runs 10
// point SELECTs and 4 range SELECTs of 20 rows; write-only runs 2
// UPDATEs, 1 DELETE and 1 INSERT (sysbench re-inserts the deleted row);
// read-write runs both halves.
func runTransaction(db *kvs.DB, cfg Config, w Workload, rng *rand.Rand) error {
	table := rng.Intn(cfg.Tables)
	if w == ReadOnly || w == ReadWrite {
		for i := 0; i < 10; i++ {
			row := rng.Intn(cfg.RowsPerTable)
			if _, err := db.Get(rowKey(table, row)); err != nil && err != kvs.ErrNotFound {
				return err
			}
		}
		for i := 0; i < 4; i++ {
			row := rng.Intn(cfg.RowsPerTable)
			if _, err := db.Scan(string(rowKey(table, row)), 20); err != nil {
				return err
			}
		}
	}
	if w == WriteOnly || w == ReadWrite {
		for i := 0; i < 2; i++ {
			row := rng.Intn(cfg.RowsPerTable)
			if err := db.Put(rowKey(table, row), rowValue(cfg, table, row, rng.Int())); err != nil {
				return err
			}
		}
		row := rng.Intn(cfg.RowsPerTable)
		if err := db.Delete(rowKey(table, row)); err != nil {
			return err
		}
		if err := db.Put(rowKey(table, row), rowValue(cfg, table, row, rng.Int())); err != nil {
			return err
		}
	}
	return nil
}
