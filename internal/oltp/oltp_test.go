package oltp

import (
	"testing"
	"time"

	"raizn/internal/fio"
	"raizn/internal/kvs"
	"raizn/internal/lfs"
	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

func newDB(t *testing.T, c *vclock.Clock) *kvs.DB {
	t.Helper()
	cfg := zns.DefaultConfig()
	cfg.NumZones = 32
	cfg.ZoneSize = 256
	cfg.ZoneCap = 256
	cfg.MaxOpenZones = 14
	cfg.MaxActiveZones = 32
	devs := make([]*zns.Device, 5)
	for i := range devs {
		devs[i] = zns.NewDevice(c, cfg)
	}
	v, err := raizn.Create(c, devs, raizn.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fsys, err := lfs.Format(c, fio.RaiznTarget{V: v})
	if err != nil {
		t.Fatal(err)
	}
	db, err := kvs.Open(c, fsys, kvs.Options{
		MemtableBytes:   32 << 10,
		BaseLevelBytes:  128 << 10,
		TargetFileBytes: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func smallCfg() Config {
	return Config{Tables: 2, RowsPerTable: 100, RowBytes: 190}
}

func TestPrepareAndReadOnly(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		db := newDB(t, c)
		cfg := smallCfg()
		if err := Prepare(db, cfg); err != nil {
			t.Fatal(err)
		}
		res := Run(c, db, cfg, ReadOnly, 4, 200*time.Millisecond, 1)
		if res.Errors != 0 {
			t.Errorf("errors = %d", res.Errors)
		}
		if res.Transactions == 0 || res.TPS <= 0 {
			t.Errorf("no transactions completed: %+v", res)
		}
		if res.P95Latency < res.AvgLatency/2 {
			t.Errorf("suspicious latencies: %+v", res)
		}
		db.Close()
	})
}

func TestWriteOnlyAndReadWrite(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		db := newDB(t, c)
		cfg := smallCfg()
		if err := Prepare(db, cfg); err != nil {
			t.Fatal(err)
		}
		for _, w := range []Workload{WriteOnly, ReadWrite} {
			res := Run(c, db, cfg, w, 2, 100*time.Millisecond, 2)
			if res.Errors != 0 {
				t.Errorf("%v errors = %d", w, res.Errors)
			}
			if res.Transactions == 0 {
				t.Errorf("%v: no transactions", w)
			}
		}
		db.Close()
	})
}

func TestWorkloadNames(t *testing.T) {
	if ReadOnly.String() != "oltp_read_only" || WriteOnly.String() != "oltp_write_only" || ReadWrite.String() != "oltp_read_write" {
		t.Error("workload names wrong")
	}
}
