// Package parity implements the XOR erasure coding used by RAID-5-style
// arrays: encoding a parity unit over D data units and reconstructing any
// single missing unit from the survivors.
package parity

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// XORInto xors src into dst in place. The slices must be the same length.
func XORInto(dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("parity: length mismatch %d != %d", len(dst), len(src)))
	}
	// Word-at-a-time main loop; the tail is handled bytewise.
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := src[i : i+8 : i+8]
		d[0] ^= s[0]
		d[1] ^= s[1]
		d[2] ^= s[2]
		d[3] ^= s[3]
		d[4] ^= s[4]
		d[5] ^= s[5]
		d[6] ^= s[6]
		d[7] ^= s[7]
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// Encode computes the XOR parity of units into a freshly allocated slice.
// All units must have equal length; Encode panics otherwise. Encode of no
// units returns nil.
func Encode(units ...[]byte) []byte {
	if len(units) == 0 {
		return nil
	}
	p := make([]byte, len(units[0]))
	copy(p, units[0])
	for _, u := range units[1:] {
		XORInto(p, u)
	}
	return p
}

// EncodeInto computes the XOR parity of units into dst (which must match
// the unit length). It avoids allocation on hot paths.
func EncodeInto(dst []byte, units ...[]byte) {
	for i := range dst {
		dst[i] = 0
	}
	for _, u := range units {
		XORInto(dst, u)
	}
}

// Reconstruct recovers the single missing unit given the D-1 surviving
// data units and the parity unit. XOR reconstruction is symmetric, so the
// caller simply passes every surviving unit (data and parity alike).
func Reconstruct(survivors ...[]byte) []byte {
	return Encode(survivors...)
}

// fuseBlock is the chunk size of the fused XOR+CRC pass: small enough
// that one chunk of every unit plus the parity chunk stays cache-hot
// between the XOR and the CRC update over the same bytes.
const fuseBlock = 4096

// XORCRCInto fuses parity encoding and per-unit checksumming into a
// single pass: dst receives the XOR of srcs, and crcs — which must have
// len(srcs)+1 entries, zero-initialized by the caller — accumulates the
// CRC32 of each source (crcs[i] for srcs[i]) and of dst (the last
// entry), using tab. Equivalent to EncodeInto followed by per-slice
// crc32.Checksum, but each block of the data is checksummed while still
// cache-hot from the XOR, and the XOR runs word-at-a-time. All slices
// must have dst's length.
func XORCRCInto(dst []byte, srcs [][]byte, crcs []uint32, tab *crc32.Table) {
	if len(crcs) != len(srcs)+1 {
		panic(fmt.Sprintf("parity: %d crc slots for %d sources", len(crcs), len(srcs)))
	}
	for _, s := range srcs {
		if len(s) != len(dst) {
			panic(fmt.Sprintf("parity: length mismatch %d != %d", len(s), len(dst)))
		}
	}
	for lo := 0; lo < len(dst); lo += fuseBlock {
		hi := lo + fuseBlock
		if hi > len(dst) {
			hi = len(dst)
		}
		db := dst[lo:hi]
		if len(srcs) == 0 {
			for i := range db {
				db[i] = 0
			}
		} else {
			copy(db, srcs[0][lo:hi])
			for _, s := range srcs[1:] {
				xorWords(db, s[lo:hi])
			}
		}
		for i, s := range srcs {
			crcs[i] = crc32.Update(crcs[i], tab, s[lo:hi])
		}
		crcs[len(srcs)] = crc32.Update(crcs[len(srcs)], tab, db)
	}
}

// xorWords xors src into dst eight bytes at a time (byte-order
// round-trips, so the result is correct on any architecture).
func xorWords(dst, src []byte) {
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}

// EncodeRagged computes parity over units that may be shorter than width;
// missing bytes are treated as zeroes, exactly as RAIZN treats the
// unwritten tail of a partially written stripe. The result has length
// width. Units longer than width panic.
func EncodeRagged(width int, units ...[]byte) []byte {
	p := make([]byte, width)
	for _, u := range units {
		if len(u) > width {
			panic(fmt.Sprintf("parity: unit length %d exceeds width %d", len(u), width))
		}
		XORInto(p[:len(u)], u)
	}
	return p
}
