// Package parity implements the XOR erasure coding used by RAID-5-style
// arrays: encoding a parity unit over D data units and reconstructing any
// single missing unit from the survivors.
package parity

import "fmt"

// XORInto xors src into dst in place. The slices must be the same length.
func XORInto(dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("parity: length mismatch %d != %d", len(dst), len(src)))
	}
	// Word-at-a-time main loop; the tail is handled bytewise.
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := src[i : i+8 : i+8]
		d[0] ^= s[0]
		d[1] ^= s[1]
		d[2] ^= s[2]
		d[3] ^= s[3]
		d[4] ^= s[4]
		d[5] ^= s[5]
		d[6] ^= s[6]
		d[7] ^= s[7]
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// Encode computes the XOR parity of units into a freshly allocated slice.
// All units must have equal length; Encode panics otherwise. Encode of no
// units returns nil.
func Encode(units ...[]byte) []byte {
	if len(units) == 0 {
		return nil
	}
	p := make([]byte, len(units[0]))
	copy(p, units[0])
	for _, u := range units[1:] {
		XORInto(p, u)
	}
	return p
}

// EncodeInto computes the XOR parity of units into dst (which must match
// the unit length). It avoids allocation on hot paths.
func EncodeInto(dst []byte, units ...[]byte) {
	for i := range dst {
		dst[i] = 0
	}
	for _, u := range units {
		XORInto(dst, u)
	}
}

// Reconstruct recovers the single missing unit given the D-1 surviving
// data units and the parity unit. XOR reconstruction is symmetric, so the
// caller simply passes every surviving unit (data and parity alike).
func Reconstruct(survivors ...[]byte) []byte {
	return Encode(survivors...)
}

// EncodeRagged computes parity over units that may be shorter than width;
// missing bytes are treated as zeroes, exactly as RAIZN treats the
// unwritten tail of a partially written stripe. The result has length
// width. Units longer than width panic.
func EncodeRagged(width int, units ...[]byte) []byte {
	p := make([]byte, width)
	for _, u := range units {
		if len(u) > width {
			panic(fmt.Sprintf("parity: unit length %d exceeds width %d", len(u), width))
		}
		XORInto(p[:len(u)], u)
	}
	return p
}
