package parity

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestXORInto(t *testing.T) {
	a := []byte{0x0f, 0xf0, 0xaa}
	b := []byte{0xff, 0xff, 0xaa}
	XORInto(a, b)
	if !bytes.Equal(a, []byte{0xf0, 0x0f, 0x00}) {
		t.Errorf("XORInto = %x", a)
	}
}

func TestXORIntoLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	XORInto(make([]byte, 3), make([]byte, 4))
}

func TestEncodeEmpty(t *testing.T) {
	if Encode() != nil {
		t.Error("Encode() of nothing should be nil")
	}
}

func TestEncodeSelfInverse(t *testing.T) {
	a := []byte{1, 2, 3, 4}
	p := Encode(a, a)
	if !bytes.Equal(p, make([]byte, 4)) {
		t.Errorf("a^a = %x, want zeros", p)
	}
}

func TestEncodeDoesNotAliasInput(t *testing.T) {
	a := []byte{1, 2, 3}
	p := Encode(a)
	p[0] = 0xff
	if a[0] != 1 {
		t.Error("Encode aliased its input")
	}
}

func TestReconstructAnyUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const d, width = 4, 1024
	units := make([][]byte, d)
	for i := range units {
		units[i] = make([]byte, width)
		rng.Read(units[i])
	}
	p := Encode(units...)
	for missing := 0; missing < d; missing++ {
		survivors := [][]byte{p}
		for i, u := range units {
			if i != missing {
				survivors = append(survivors, u)
			}
		}
		got := Reconstruct(survivors...)
		if !bytes.Equal(got, units[missing]) {
			t.Errorf("reconstruction of unit %d failed", missing)
		}
	}
	// Losing the parity unit itself needs no reconstruction, but verify
	// re-encoding reproduces it.
	if !bytes.Equal(Encode(units...), p) {
		t.Error("re-encode mismatch")
	}
}

func TestReconstructProperty(t *testing.T) {
	// Property: for random stripes of random geometry, dropping any one
	// unit and reconstructing from parity is the identity.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(6)
		width := 1 + rng.Intn(512)
		units := make([][]byte, d)
		for i := range units {
			units[i] = make([]byte, width)
			rng.Read(units[i])
		}
		p := Encode(units...)
		missing := rng.Intn(d)
		survivors := [][]byte{p}
		for i, u := range units {
			if i != missing {
				survivors = append(survivors, u)
			}
		}
		return bytes.Equal(Reconstruct(survivors...), units[missing])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeInto(t *testing.T) {
	a := []byte{1, 2}
	b := []byte{3, 4}
	dst := []byte{0xff, 0xff} // must be cleared first
	EncodeInto(dst, a, b)
	if !bytes.Equal(dst, Encode(a, b)) {
		t.Errorf("EncodeInto = %x, want %x", dst, Encode(a, b))
	}
}

func TestEncodeRagged(t *testing.T) {
	full := []byte{1, 2, 3, 4}
	part := []byte{5, 6}
	p := EncodeRagged(4, full, part)
	want := []byte{1 ^ 5, 2 ^ 6, 3, 4}
	if !bytes.Equal(p, want) {
		t.Errorf("EncodeRagged = %x, want %x", p, want)
	}
}

func TestEncodeRaggedMatchesZeroPadding(t *testing.T) {
	// Property: ragged encoding equals encoding with explicit zero padding.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := 1 + rng.Intn(256)
		n := 1 + rng.Intn(5)
		ragged := make([][]byte, n)
		padded := make([][]byte, n)
		for i := range ragged {
			l := rng.Intn(width + 1)
			ragged[i] = make([]byte, l)
			rng.Read(ragged[i])
			padded[i] = make([]byte, width)
			copy(padded[i], ragged[i])
		}
		return bytes.Equal(EncodeRagged(width, ragged...), Encode(padded...))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeRaggedTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unit longer than width")
		}
	}()
	EncodeRagged(2, []byte{1, 2, 3})
}

func BenchmarkXOR64K(b *testing.B) {
	dst := make([]byte, 64<<10)
	src := make([]byte, 64<<10)
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XORInto(dst, src)
	}
}

func TestXORCRCIntoMatchesSeparatePasses(t *testing.T) {
	tab := crc32.MakeTable(crc32.Castagnoli)
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{0, 1, 7, 8, 9, 4095, 4096, 4097, 16384, 65536} {
		for _, d := range []int{0, 1, 3, 4} {
			srcs := make([][]byte, d)
			for i := range srcs {
				srcs[i] = make([]byte, n)
				rng.Read(srcs[i])
			}
			fused := make([]byte, n)
			crcs := make([]uint32, d+1)
			XORCRCInto(fused, srcs, crcs, tab)

			want := make([]byte, n)
			EncodeInto(want, srcs...)
			if !bytes.Equal(fused, want) {
				t.Fatalf("n=%d d=%d: fused parity differs from EncodeInto", n, d)
			}
			for i, s := range srcs {
				if got, wantC := crcs[i], crc32.Checksum(s, tab); got != wantC {
					t.Fatalf("n=%d d=%d: crc[%d] = %08x, want %08x", n, d, i, got, wantC)
				}
			}
			if got, wantC := crcs[d], crc32.Checksum(want, tab); got != wantC {
				t.Fatalf("n=%d d=%d: parity crc = %08x, want %08x", n, d, got, wantC)
			}
		}
	}
}

func TestXORCRCIntoPanics(t *testing.T) {
	tab := crc32.MakeTable(crc32.Castagnoli)
	for name, fn := range map[string]func(){
		"crc-slots": func() { XORCRCInto(make([]byte, 8), [][]byte{make([]byte, 8)}, make([]uint32, 1), tab) },
		"length":    func() { XORCRCInto(make([]byte, 8), [][]byte{make([]byte, 4)}, make([]uint32, 2), tab) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
