// Package ppengine defines the parity-persistence engine: the pluggable
// mechanism a RAIZN volume uses to make sub-stripe ("partial") parity
// crash-safe before a write completes (paper §5.1). Two engines exist:
//
//   - logged: the paper's design. Partial parity is appended as log
//     records to the dedicated parity metadata zone, in one of the three
//     ParityMode variants (header block, inline per-block metadata, or
//     in-place ZRWA prefix updates, §5.4). Implemented inside package
//     raizn as an adapter over its metadata manager.
//   - zraid: the log-structured design from ZRAID (Li et al.): partial
//     parity is written into fixed-size slots inside a small pool of
//     dedicated PP zones through the device's Zone Random Write Area,
//     where later updates overwrite the slot in place. Slot bytes that
//     are superseded while still inside the ZRWA window never program to
//     NAND (pp_volatile); only bytes the window slides past become flash
//     writes (pp_permanent). A PP-zone garbage collector migrates live
//     slots and resets exhausted zones. Implemented in this package
//     (zraid.go).
//
// The volume talks to whichever engine Config.ParityEngine selected
// through the Engine interface below; the write pipeline, recovery and
// the write-amplification accounting are engine-agnostic.
package ppengine

import (
	"raizn/internal/obs"
	"raizn/internal/vclock"
)

// Kind identifies a parity-persistence engine implementation.
type Kind int

const (
	// Logged is the paper's partial-parity logging design (§5.1/§5.4).
	Logged Kind = iota
	// ZRAID is the log-structured PP-zone design with ZRWA slot reuse.
	ZRAID
)

func (k Kind) String() string {
	switch k {
	case Logged:
		return "logged"
	case ZRAID:
		return "zraid"
	default:
		return "unknown"
	}
}

// Append describes one partial-parity image the volume needs persisted
// before the triggering write may complete.
type Append struct {
	Dev      int   // device that will hold the stripe's parity unit
	Zone     int   // logical zone
	Stripe   int64 // zone-relative stripe index
	StartLBA int64 // logical range the image covers
	EndLBA   int64
	Gen      uint64 // generation of the logical zone at persist time
	Payload  []byte // parity image bytes (at most one stripe unit)
	Flags    int    // zns.Flag bits of the triggering write

	// Span is the request's root tracing span (nil while tracing is
	// disabled); engines attach their device sub-IOs as children.
	Span *obs.Span
}

// Record is one partial-parity image recovered by Scan, in the same
// shape recovery consumes logged records: the latest image per
// (zone, stripe) wins and stale generations are filtered by the caller.
type Record struct {
	Zone     int
	Stripe   int64
	StartLBA int64
	EndLBA   int64
	Gen      uint64
	Payload  []byte
}

// Stats are the engine's lifetime counters. For the logged engine the
// volume derives the byte counters from its write-amplification
// categories (every logged PP byte is a flash write); the zraid engine
// tracks the volatile/permanent split and its GC activity here.
type Stats struct {
	VolatileBytes  int64 // PP bytes superseded inside the ZRWA window (never programmed)
	PermanentBytes int64 // PP bytes the window slid past (programmed to NAND)
	FallbackTotal  int64 // Persist refusals that fell back to the metadata log
	GCRuns         int64 // PP-zone garbage collections completed
	GCMigrated     int64 // live slots migrated by GC
}

// Engine is the parity-persistence mechanism a volume plugs into its
// write pipeline, recovery and maintenance paths. Implementations must
// be safe for concurrent use; methods are called with no volume or zone
// locks that the engine could need held.
type Engine interface {
	// Kind identifies the implementation.
	Kind() Kind

	// InPlaceParityPrefix reports whether the engine maintains the
	// partial stripe's parity prefix in place at its final parity
	// location (the logged engine's PPZRWA variant). The write pipeline
	// and recovery consult this instead of testing ParityMode: when
	// true, no PP images are produced and the tail stripe's parity
	// prefix is expected on media.
	InPlaceParityPrefix() bool

	// Persist makes the partial-parity image crash-safe and returns the
	// completion future the triggering write must wait on (nil when the
	// engine had nothing to submit, e.g. a degraded parity device).
	// ok=false means the engine cannot place the image right now (e.g.
	// PP-zone exhaustion with nothing reclaimable); the caller falls back
	// to a metadata-log record, so backpressure never blocks the write
	// path.
	Persist(a Append) (fut *vclock.Future, ok bool)

	// StripeClosed tells the engine stripe s of logical zone z reached
	// full parity on media; any PP state for it is dead and reclaimable.
	StripeClosed(zone int, stripe int64)

	// ZoneReset tells the engine logical zone z was reset; all PP state
	// for the zone is dead.
	ZoneReset(zone int)

	// Scan returns every decodable partial-parity image the engine
	// persisted, for recovery replay. Torn images are dropped; when
	// several images exist for one (zone, stripe) the newest is
	// returned. The logged engine returns nil: its records surface
	// through the ordinary metadata-zone scan.
	Scan() ([]Record, error)

	// Stats returns the engine's lifetime counters.
	Stats() Stats

	// Maintain runs the engine's housekeeping (PP-zone GC for zraid);
	// called from Volume.Maintain.
	Maintain() error

	// Format discards all engine persistence state (resetting PP zones
	// for zraid). Called once after mount-time recovery has replayed and
	// re-checkpointed everything live, so the engine starts fresh.
	Format() error
}
