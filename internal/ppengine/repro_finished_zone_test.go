package ppengine

import (
	"testing"

	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// Repro: with PPZones=3, after the first ring advance the old head zone
// is finished but its tail slots still pass inWindowLocked; overwriting
// them issues a ZRWA write into a ZoneFull zone.
func TestReproFinishedZoneOverwrite(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		cfg := ppDevConfig()
		d := zns.NewDevice(c, cfg)
		eng, err := NewZRAID(ZRAIDConfig{
			Clock:       c,
			NumDevices:  1,
			Device:      func(int) *zns.Device { return d },
			PPZone:      func(i int) int { return i },
			PPZones:     3,
			SectorSize:  d.Config().SectorSize,
			SU:          16,
			ZoneCap:     128,
			ZRWASectors: 34,
			Charge:      func(hdr, pay int64) {},
		})
		if err != nil {
			t.Fatalf("NewZRAID: %v", err)
		}
		e := eng.(*zraidEngine)

		// Fill head zone 0 with 7 live slots (stripes 0..6).
		for s := int64(0); s < 7; s++ {
			fut, ok := e.Persist(mkAppend(d, 0, s, byte(s), 4))
			if !ok {
				t.Fatalf("Persist stripe %d refused", s)
			}
			if err := fut.Wait(); err != nil {
				t.Fatalf("Persist stripe %d: %v", s, err)
			}
		}
		// 8th stripe forces the ring advance: zone 0 finished, head=1.
		fut, ok := e.Persist(mkAppend(d, 0, 7, 7, 4))
		if !ok {
			t.Fatal("Persist stripe 7 refused")
		}
		if err := fut.Wait(); err != nil {
			t.Fatalf("Persist stripe 7: %v", err)
		}

		// Re-persist stripe 6: its slot sits at pos 102 in finished
		// zone 0, inside [wp-ZRWA, wp) by position only.
		fut, ok = e.Persist(mkAppend(d, 0, 6, 0xEE, 4))
		if !ok {
			t.Fatal("re-Persist refused (expected ok=true with erroring future)")
		}
		if err := fut.Wait(); err != nil {
			t.Logf("CONFIRMED: Persist future failed: %v", err)
		} else {
			t.Log("no error: write into finished zone succeeded?")
		}
	})
}
