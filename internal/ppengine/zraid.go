package ppengine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"raizn/internal/obs"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// This file implements the zraid engine: log-structured partial parity
// in dedicated PP zones, after ZRAID (Li et al., "ZRAID: Leveraging
// Zone Random Write Area for Cost-effective RAID on ZNS SSDs").
//
// Partial parity is written in fixed-size slots — one header sector
// plus one stripe unit of payload — through the Zone Random Write Area
// of a small per-device pool of PP zones. A stripe's successive parity
// images overwrite its slot in place while the slot is still inside
// the ZRWA window, so those bytes are never programmed to NAND
// (pp_volatile); when a stripe closes its slot is dead and is reused
// in place by later stripes. Only slot bytes the window slides past —
// or that a zone finish commits — become flash programs (pp_permanent).
//
// The pool is a ring: the head zone takes appends; advancing the head
// finishes the old zone and garbage-collects the zone after the new
// head (migrating its live slots into the head, then resetting it), so
// the next advance always lands on an empty zone. When migration does
// not fit, the GC aborts and Persist reports backpressure, sending the
// image to the ordinary metadata log instead.

const (
	slotMagic   = 0x5A525050 // "ZRPP"
	slotHdrSize = 56         // used bytes of the header sector
)

// ErrNoPPSpace is returned by Maintain/GC when a PP-zone pool cannot be
// reclaimed because live slots exceed the head zone's free space.
var ErrNoPPSpace = errors.New("ppengine: pp zones exhausted by live slots")

// ZRAIDConfig wires a zraid engine to its array.
type ZRAIDConfig struct {
	Clock      *vclock.Clock
	NumDevices int
	// Device returns the device at array slot i, or nil when failed.
	Device func(i int) *zns.Device
	// PPZone returns the physical zone index of pool slot i (same on
	// every device), 0 <= i < PPZones.
	PPZone      func(i int) int
	PPZones     int
	SectorSize  int
	SU          int64 // stripe unit sectors = max payload per slot
	ZoneCap     int64 // writable sectors per PP zone
	ZRWASectors int64 // device ZRWA window, >= SU+1

	// Charge adds a slot write's bytes to the volume's layered WA
	// accounting (header and payload separately). Never nil.
	Charge func(headerBytes, payloadBytes int64)
	// Journal receives EvPartialParity events (may be disabled).
	Journal *obs.Journal
	// Hook fires crash points (raizn.pp.write, raizn.ppgc.*); nil ok.
	Hook func(name string, src, zone int, arg int64)
}

type slotKey struct {
	zone   int
	stripe int64
}

// zrSlot is one slot position in a PP zone and (when live) the image it
// holds. The payload is kept in memory so GC migration and devices
// configured with DiscardData both work without device reads.
type zrSlot struct {
	pool int   // pool index of the owning zone
	pos  int64 // zone-relative sector of the header
	live bool
	key  slotKey
	rec  Record
	seq  uint64
}

// zrZone mirrors one PP zone's append and flash-program state. mark
// tracks the programmed boundary exactly as the device model does: a
// ZRWA zone programs lazily up to wp-ZRWASectors, a finished zone up to
// wp, and a reset discards the unprogrammed tail.
type zrZone struct {
	zone  int   // physical zone index
	wp    int64 // zone-relative sectors appended (slots * stride)
	mark  int64 // zone-relative sectors programmed to flash
	slots []*zrSlot
}

type zrDev struct {
	head  int
	pools []zrZone
	byKey map[slotKey]*zrSlot // live slot per (zone, stripe)
}

type zraidEngine struct {
	cfg    ZRAIDConfig
	stride int64 // slot size in sectors: 1 header + SU payload

	mu     sync.Mutex
	cond   *vclock.Cond
	gcBusy bool
	devs   []zrDev
	seq    uint64

	volatileBytes  int64
	permanentBytes int64
	fallbacks      int64
	gcRuns         int64
	gcMigrated     int64
}

// NewZRAID builds a zraid engine over the array's PP-zone pools.
func NewZRAID(cfg ZRAIDConfig) (Engine, error) {
	stride := cfg.SU + 1
	if cfg.PPZones < 2 {
		return nil, errors.New("ppengine: zraid needs at least 2 PP zones per device")
	}
	if cfg.ZRWASectors < stride {
		return nil, fmt.Errorf("ppengine: zraid needs a ZRWA of at least %d sectors (one PP slot)", stride)
	}
	if cfg.ZoneCap < 2*stride {
		return nil, errors.New("ppengine: PP zone capacity below two slots")
	}
	e := &zraidEngine{cfg: cfg, stride: stride}
	e.cond = cfg.Clock.NewCond(&e.mu)
	e.devs = make([]zrDev, cfg.NumDevices)
	for i := range e.devs {
		e.devs[i].byKey = make(map[slotKey]*zrSlot)
		e.devs[i].pools = make([]zrZone, cfg.PPZones)
		for p := 0; p < cfg.PPZones; p++ {
			e.devs[i].pools[p] = zrZone{zone: cfg.PPZone(p)}
		}
	}
	return e, nil
}

func (e *zraidEngine) Kind() Kind                { return ZRAID }
func (e *zraidEngine) InPlaceParityPrefix() bool { return false }

func (e *zraidEngine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		VolatileBytes:  e.volatileBytes,
		PermanentBytes: e.permanentBytes,
		FallbackTotal:  e.fallbacks,
		GCRuns:         e.gcRuns,
		GCMigrated:     e.gcMigrated,
	}
}

func (e *zraidEngine) fire(name string, src, zone int, arg int64) {
	if e.cfg.Hook != nil {
		e.cfg.Hook(name, src, zone, arg)
	}
}

// Persist places the image in a PP-zone slot, advancing (and garbage
// collecting) the device's pool when the head zone is full. ok=false
// reports backpressure: the pool is exhausted by live slots.
func (e *zraidEngine) Persist(a Append) (*vclock.Future, bool) {
	d := e.cfg.Device(a.Dev)
	if d == nil {
		return nil, false
	}
	e.mu.Lock()
	for e.gcBusy {
		e.cond.Wait()
	}
	if fut, ok := e.placeLocked(d, a); ok {
		e.mu.Unlock()
		return fut, true
	}
	// Head zone full: advance the ring (GC), then retry placement. The
	// gcBusy flag parks concurrent Persists without holding e.mu across
	// the blocking device IO.
	e.gcBusy = true
	e.mu.Unlock()
	err := e.advance(a.Dev, d)
	e.mu.Lock()
	e.gcBusy = false
	e.cond.Broadcast()
	var fut *vclock.Future
	ok := false
	if err == nil {
		fut, ok = e.placeLocked(d, a)
	}
	if !ok {
		e.fallbacks++
	}
	e.mu.Unlock()
	if !ok {
		return nil, false
	}
	return fut, true
}

// inWindowLocked reports whether the slot can still be overwritten in
// place: its header sector is inside [wp-ZRWA, wp] of its zone.
func (e *zraidEngine) inWindowLocked(dv *zrDev, sl *zrSlot) bool {
	return sl.pos >= dv.pools[sl.pool].wp-e.cfg.ZRWASectors
}

// placeLocked finds a slot for the image — the stripe's own live slot,
// a dead slot still inside a ZRWA window, or a fresh append at the head
// zone — and submits the write. ok=false means the head zone has no
// room and the ring must advance. Caller holds e.mu.
func (e *zraidEngine) placeLocked(d *zns.Device, a Append) (*vclock.Future, bool) {
	dv := &e.devs[a.Dev]
	key := slotKey{zone: a.Zone, stripe: a.Stripe}
	ss := int64(e.cfg.SectorSize)

	// The stripe already has a slot: overwrite it in place. The old
	// image was superseded inside the window — it never reaches flash.
	if sl := dv.byKey[key]; sl != nil {
		if e.inWindowLocked(dv, sl) {
			e.volatileBytes += e.stride * ss
			return e.writeSlotLocked(d, a.Dev, dv, sl, a), true
		}
		// The slot slid out of the window and can no longer be
		// overwritten in place; a replacement is written below. Kill the
		// old slot now or GC would migrate the stale image later — with
		// a fresh sequence number that would outrank the replacement at
		// recovery. The mapping goes too: placement can fail here (head
		// full, GC backpressure) and a later retry must not take this
		// branch against a dead slot whose zone GC may since have reset.
		sl.live = false
		delete(dv.byKey, key)
	}

	// Reuse a dead slot that is still overwritable. Its stale content
	// is likewise superseded in-window.
	for pi := range dv.pools {
		for _, sl := range dv.pools[pi].slots {
			if sl.live || !e.inWindowLocked(dv, sl) {
				continue
			}
			e.volatileBytes += e.stride * ss
			sl.live = true
			sl.key = key
			dv.byKey[key] = sl
			return e.writeSlotLocked(d, a.Dev, dv, sl, a), true
		}
	}

	// Append a fresh slot at the head zone.
	hz := &dv.pools[dv.head]
	if hz.wp+e.stride > e.cfg.ZoneCap {
		return nil, false
	}
	sl := &zrSlot{pool: dv.head, pos: hz.wp, live: true, key: key}
	hz.slots = append(hz.slots, sl)
	hz.wp += e.stride
	// The window slid: bytes below wp-ZRWA are programmed by the device.
	if m := hz.wp - e.cfg.ZRWASectors; m > hz.mark {
		e.permanentBytes += (m - hz.mark) * ss
		hz.mark = m
	}
	dv.byKey[key] = sl
	return e.writeSlotLocked(d, a.Dev, dv, sl, a), true
}

// writeSlotLocked encodes and submits one full slot write (header +
// padded payload) at the slot's position through the ZRWA, records the
// image in memory for GC migration and Scan-free reads, and charges the
// WA accounting. Caller holds e.mu; the write is asynchronous.
func (e *zraidEngine) writeSlotLocked(d *zns.Device, dev int, dv *zrDev, sl *zrSlot, a Append) *vclock.Future {
	ss := int64(e.cfg.SectorSize)
	e.seq++
	sl.seq = e.seq
	sl.rec = Record{
		Zone: a.Zone, Stripe: a.Stripe,
		StartLBA: a.StartLBA, EndLBA: a.EndLBA,
		Gen:     a.Gen,
		Payload: append([]byte(nil), a.Payload...),
	}
	buf := e.encodeSlot(sl)
	pz := &dv.pools[sl.pool]
	pba := d.ZoneStart(pz.zone) + sl.pos
	var child *obs.Span
	if a.Span != nil {
		child = a.Span.Child(obs.OpDevWrite, dev, pba, int64(len(buf)))
	}
	fut := d.WriteZRWASpan(child, pba, buf, zns.Flag(a.Flags))
	e.cfg.Charge(ss, e.cfg.SU*ss)
	if e.cfg.Journal != nil && e.cfg.Journal.Enabled() {
		e.cfg.Journal.Record(obs.EvPartialParity, dev, pz.zone, e.cfg.SU*ss, ss, 0, 0)
	}
	e.fire("raizn.pp.write", dev, pz.zone, pba)
	return fut
}

// encodeSlot serializes the slot's image into one fixed-size slot:
// header sector (magic, CRC, key, range, gen, seq) followed by the
// payload zero-padded to a full stripe unit.
func (e *zraidEngine) encodeSlot(sl *zrSlot) []byte {
	ss := e.cfg.SectorSize
	buf := make([]byte, e.stride*int64(ss))
	payLen := (len(sl.rec.Payload) + ss - 1) / ss
	binary.LittleEndian.PutUint32(buf[0:4], slotMagic)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(sl.rec.Zone))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(payLen))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(sl.rec.Stripe))
	binary.LittleEndian.PutUint64(buf[24:32], uint64(sl.rec.StartLBA))
	binary.LittleEndian.PutUint64(buf[32:40], uint64(sl.rec.EndLBA))
	binary.LittleEndian.PutUint64(buf[40:48], sl.rec.Gen)
	binary.LittleEndian.PutUint64(buf[48:56], sl.seq)
	copy(buf[ss:], sl.rec.Payload)
	crc := crc32.Update(0, crcTable, buf[8:slotHdrSize])
	crc = crc32.Update(crc, crcTable, buf[ss:ss+payLen*ss])
	binary.LittleEndian.PutUint32(buf[4:8], crc)
	return buf
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// decodeSlot parses and validates one slot read back from a PP zone.
func decodeSlot(buf []byte, ss int, su int64) (rec Record, seq uint64, ok bool) {
	if binary.LittleEndian.Uint32(buf[0:4]) != slotMagic {
		return Record{}, 0, false
	}
	payLen := int64(binary.LittleEndian.Uint32(buf[12:16]))
	if payLen < 0 || payLen > su {
		return Record{}, 0, false
	}
	if int64(len(buf)) < int64(ss)+payLen*int64(ss) {
		return Record{}, 0, false
	}
	crc := crc32.Update(0, crcTable, buf[8:slotHdrSize])
	crc = crc32.Update(crc, crcTable, buf[ss:int64(ss)+payLen*int64(ss)])
	if crc != binary.LittleEndian.Uint32(buf[4:8]) {
		return Record{}, 0, false
	}
	rec = Record{
		Zone:     int(binary.LittleEndian.Uint32(buf[8:12])),
		Stripe:   int64(binary.LittleEndian.Uint64(buf[16:24])),
		StartLBA: int64(binary.LittleEndian.Uint64(buf[24:32])),
		EndLBA:   int64(binary.LittleEndian.Uint64(buf[32:40])),
		Gen:      binary.LittleEndian.Uint64(buf[40:48]),
		Payload:  append([]byte(nil), buf[ss:int64(ss)+payLen*int64(ss)]...),
	}
	return rec, binary.LittleEndian.Uint64(buf[48:56]), true
}

// advance finishes the full head zone, moves the head to the next ring
// zone (kept empty by the previous advance's GC), and garbage-collects
// the zone after it so the invariant holds for the next advance. Called
// with gcBusy set and e.mu released.
func (e *zraidEngine) advance(dev int, d *zns.Device) error {
	ss := int64(e.cfg.SectorSize)
	e.mu.Lock()
	dv := &e.devs[dev]
	hz := &dv.pools[dv.head]
	next := (dv.head + 1) % len(dv.pools)
	if dv.pools[next].wp != 0 {
		// The invariant broke on an earlier aborted GC and the pool is
		// still packed with live slots: backpressure.
		e.mu.Unlock()
		return ErrNoPPSpace
	}
	// Finishing commits the head zone's in-ZRWA tail to flash.
	e.permanentBytes += (hz.wp - hz.mark) * ss
	hz.mark = hz.wp
	finZone := hz.zone
	dv.head = next
	e.mu.Unlock()

	if err := d.FinishZone(finZone).Wait(); err != nil && !errors.Is(err, zns.ErrDeviceFailed) {
		return err
	}
	victim := (next + 1) % len(e.devs[dev].pools)
	return e.gcZone(dev, d, victim)
}

// gcZone migrates the victim zone's live slots into the head zone, then
// resets the victim, reclaiming its dead slots. Aborts (leaving the
// victim untouched) when the live slots do not fit the head's free
// space with one slot to spare. Called with gcBusy set, e.mu released.
func (e *zraidEngine) gcZone(dev int, d *zns.Device, victim int) error {
	ss := int64(e.cfg.SectorSize)
	e.mu.Lock()
	dv := &e.devs[dev]
	vz := &dv.pools[victim]
	if vz.wp == 0 || victim == dv.head {
		e.mu.Unlock()
		return nil
	}
	var live []*zrSlot
	for _, sl := range vz.slots {
		if sl.live {
			live = append(live, sl)
		}
	}
	hz := &dv.pools[dv.head]
	free := (e.cfg.ZoneCap - hz.wp) / e.stride
	if len(live) > 0 && int64(len(live)) > free-1 {
		e.mu.Unlock()
		return ErrNoPPSpace
	}
	e.fire("raizn.ppgc.begin", dev, vz.zone, int64(len(live)))
	// Re-append every live image at the head. byKey moves to the copies,
	// so a concurrent StripeClosed kills the copy, not the stale slot.
	var futs []*vclock.Future
	for _, sl := range live {
		nhz := &dv.pools[dv.head]
		ns := &zrSlot{pool: dv.head, pos: nhz.wp, live: true, key: sl.key}
		nhz.slots = append(nhz.slots, ns)
		nhz.wp += e.stride
		if m := nhz.wp - e.cfg.ZRWASectors; m > nhz.mark {
			e.permanentBytes += (m - nhz.mark) * ss
			nhz.mark = m
		}
		a := Append{
			Dev: dev, Zone: sl.rec.Zone, Stripe: sl.rec.Stripe,
			StartLBA: sl.rec.StartLBA, EndLBA: sl.rec.EndLBA,
			Gen: sl.rec.Gen, Payload: sl.rec.Payload,
		}
		dv.byKey[ns.key] = ns
		sl.live = false
		futs = append(futs, e.writeSlotLocked(d, dev, dv, ns, a))
		e.gcMigrated++
		e.fire("raizn.ppgc.migrate", dev, vz.zone, sl.pos)
	}
	e.mu.Unlock()

	// The copies must be durable before the originals disappear.
	if err := vclock.WaitAll(futs...); err != nil && !errors.Is(err, zns.ErrDeviceFailed) {
		return err
	}
	if err := d.Flush().Wait(); err != nil && !errors.Is(err, zns.ErrDeviceFailed) {
		return err
	}
	if err := d.ResetZone(vz.zone).Wait(); err != nil && !errors.Is(err, zns.ErrDeviceFailed) {
		return err
	}

	e.mu.Lock()
	// Bytes the window never slid past are discarded without programming.
	e.volatileBytes += (vz.wp - vz.mark) * ss
	for _, sl := range vz.slots {
		if sl.live && dv.byKey[sl.key] == sl {
			delete(dv.byKey, sl.key)
		}
	}
	vz.wp, vz.mark, vz.slots = 0, 0, nil
	e.gcRuns++
	e.mu.Unlock()
	e.fire("raizn.ppgc.done", dev, vz.zone, 0)
	return nil
}

// StripeClosed marks the stripe's slot (if any) dead on every device.
// Cheap: map lookups only, safe under the caller's zone lock.
func (e *zraidEngine) StripeClosed(zone int, stripe int64) {
	key := slotKey{zone: zone, stripe: stripe}
	e.mu.Lock()
	for i := range e.devs {
		if sl := e.devs[i].byKey[key]; sl != nil {
			sl.live = false
			delete(e.devs[i].byKey, key)
		}
	}
	e.mu.Unlock()
}

// ZoneReset marks every slot of the logical zone dead on every device.
func (e *zraidEngine) ZoneReset(zone int) {
	e.mu.Lock()
	for i := range e.devs {
		dv := &e.devs[i]
		for key, sl := range dv.byKey {
			if key.zone == zone {
				sl.live = false
				delete(dv.byKey, key)
			}
		}
	}
	e.mu.Unlock()
}

// Scan walks every PP zone of every live device in slot strides,
// decoding and CRC-validating each slot; torn slots drop out. When
// several slots carry the same (zone, stripe) the highest sequence
// number wins. Runs single-threaded at mount time.
func (e *zraidEngine) Scan() ([]Record, error) {
	type best struct {
		rec Record
		seq uint64
	}
	found := make(map[slotKey]best)
	var order []slotKey
	ss := e.cfg.SectorSize
	for i := 0; i < e.cfg.NumDevices; i++ {
		d := e.cfg.Device(i)
		if d == nil {
			continue
		}
		for p := 0; p < e.cfg.PPZones; p++ {
			z := e.cfg.PPZone(p)
			start := d.ZoneStart(z)
			fill := d.Zone(z).WP - start
			buf := make([]byte, e.stride*int64(ss))
			for pos := int64(0); pos+e.stride <= fill; pos += e.stride {
				if err := d.Read(start+pos, buf).Wait(); err != nil {
					return nil, fmt.Errorf("ppengine: pp zone scan dev %d zone %d: %w", i, z, err)
				}
				rec, seq, ok := decodeSlot(buf, ss, e.cfg.SU)
				if !ok {
					continue
				}
				key := slotKey{zone: rec.Zone, stripe: rec.Stripe}
				if b, seen := found[key]; !seen {
					order = append(order, key)
					found[key] = best{rec: rec, seq: seq}
				} else if seq > b.seq {
					found[key] = best{rec: rec, seq: seq}
				}
			}
		}
	}
	out := make([]Record, 0, len(order))
	for _, key := range order {
		out = append(out, found[key].rec)
	}
	return out, nil
}

// Maintain force-reclaims every non-head PP zone on every live device.
// Pools packed with live slots report ErrNoPPSpace only when nothing
// could be reclaimed at all.
func (e *zraidEngine) Maintain() error {
	for i := 0; i < e.cfg.NumDevices; i++ {
		d := e.cfg.Device(i)
		if d == nil {
			continue
		}
		e.mu.Lock()
		for e.gcBusy {
			e.cond.Wait()
		}
		e.gcBusy = true
		head := e.devs[i].head
		n := len(e.devs[i].pools)
		e.mu.Unlock()
		var err error
		for p := 0; p < n; p++ {
			if p == head {
				continue
			}
			if gerr := e.gcZone(i, d, p); gerr != nil && !errors.Is(gerr, ErrNoPPSpace) {
				err = gerr
				break
			}
		}
		e.mu.Lock()
		e.gcBusy = false
		e.cond.Broadcast()
		e.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Format resets every PP zone that holds data on the devices and clears
// the in-memory pool state. Called after mount-time recovery replayed
// and re-checkpointed everything live: the engine starts fresh.
func (e *zraidEngine) Format() error {
	e.mu.Lock()
	for e.gcBusy {
		e.cond.Wait()
	}
	e.gcBusy = true
	e.mu.Unlock()
	var futs []*vclock.Future
	for i := 0; i < e.cfg.NumDevices; i++ {
		d := e.cfg.Device(i)
		if d == nil {
			continue
		}
		for p := 0; p < e.cfg.PPZones; p++ {
			z := e.cfg.PPZone(p)
			if d.Zone(z).State != zns.ZoneEmpty {
				futs = append(futs, d.ResetZone(z))
			}
		}
	}
	err := vclock.WaitAll(futs...)
	e.mu.Lock()
	for i := range e.devs {
		dv := &e.devs[i]
		dv.head = 0
		dv.byKey = make(map[slotKey]*zrSlot)
		for p := range dv.pools {
			dv.pools[p].wp, dv.pools[p].mark, dv.pools[p].slots = 0, 0, nil
		}
	}
	e.gcBusy = false
	e.cond.Broadcast()
	e.mu.Unlock()
	if err != nil && !errors.Is(err, zns.ErrDeviceFailed) {
		return err
	}
	return nil
}
