package ppengine

import (
	"bytes"
	"testing"

	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// ppDevConfig is a small ZNS device whose first zones serve as the PP
// pool: ZoneCap 128 holds 7 slots at su=16 (stride 17), and the ZRWA
// window covers exactly two slots.
func ppDevConfig() zns.Config {
	cfg := zns.DefaultConfig()
	cfg.NumZones = 4
	cfg.ZoneSize = 160
	cfg.ZoneCap = 128
	cfg.MaxOpenZones = 4
	cfg.MaxActiveZones = 6
	cfg.ZRWASectors = 34
	return cfg
}

func newTestEngine(t *testing.T, c *vclock.Clock, d *zns.Device) *zraidEngine {
	t.Helper()
	eng, err := NewZRAID(ZRAIDConfig{
		Clock:       c,
		NumDevices:  1,
		Device:      func(int) *zns.Device { return d },
		PPZone:      func(i int) int { return i },
		PPZones:     2,
		SectorSize:  d.Config().SectorSize,
		SU:          16,
		ZoneCap:     128,
		ZRWASectors: 34,
		Charge:      func(hdr, pay int64) {},
	})
	if err != nil {
		t.Fatalf("NewZRAID: %v", err)
	}
	return eng.(*zraidEngine)
}

// mkAppend builds an Append whose payload is n sectors of the fill byte.
func mkAppend(d *zns.Device, zone int, stripe int64, fill byte, n int) Append {
	payload := make([]byte, n*d.Config().SectorSize)
	for i := range payload {
		payload[i] = fill
	}
	return Append{
		Dev: 0, Zone: zone, Stripe: stripe,
		StartLBA: stripe * 64, EndLBA: stripe*64 + int64(n),
		Gen: 7, Payload: payload,
	}
}

func TestSlotCodecRoundtrip(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		d := zns.NewDevice(c, ppDevConfig())
		e := newTestEngine(t, c, d)
		ss := d.Config().SectorSize
		sl := &zrSlot{
			seq: 42,
			rec: Record{
				Zone: 3, Stripe: 9, StartLBA: 576, EndLBA: 581,
				Gen:     11,
				Payload: bytes.Repeat([]byte{0xAB}, 5*ss),
			},
		}
		buf := e.encodeSlot(sl)
		if int64(len(buf)) != e.stride*int64(ss) {
			t.Fatalf("slot size %d, want %d", len(buf), e.stride*int64(ss))
		}
		rec, seq, ok := decodeSlot(buf, ss, 16)
		if !ok {
			t.Fatal("roundtrip decode failed")
		}
		if seq != 42 || rec.Zone != 3 || rec.Stripe != 9 ||
			rec.StartLBA != 576 || rec.EndLBA != 581 || rec.Gen != 11 {
			t.Fatalf("decoded header mismatch: %+v seq %d", rec, seq)
		}
		if !bytes.Equal(rec.Payload, sl.rec.Payload) {
			t.Fatal("decoded payload mismatch")
		}

		// A flipped payload byte must fail the CRC.
		buf[ss+100] ^= 1
		if _, _, ok := decodeSlot(buf, ss, 16); ok {
			t.Error("corrupted payload decoded successfully")
		}
		buf[ss+100] ^= 1
		// So must a flipped header byte and a wrong magic.
		buf[20] ^= 1
		if _, _, ok := decodeSlot(buf, ss, 16); ok {
			t.Error("corrupted header decoded successfully")
		}
		buf[20] ^= 1
		buf[0] ^= 1
		if _, _, ok := decodeSlot(buf, ss, 16); ok {
			t.Error("wrong magic decoded successfully")
		}
	})
}

// TestPersistOverwriteVolatile checks the ZRAID claim at slot
// granularity: re-persisting the same stripe overwrites its slot in
// place, so the zone's write pointer does not move and the bytes are
// counted volatile, not permanent.
func TestPersistOverwriteVolatile(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		d := zns.NewDevice(c, ppDevConfig())
		e := newTestEngine(t, c, d)
		ss := int64(d.Config().SectorSize)

		for fillN := 1; fillN <= 4; fillN++ {
			fut, ok := e.Persist(mkAppend(d, 0, 5, byte(fillN), fillN*4))
			if !ok {
				t.Fatalf("Persist %d refused", fillN)
			}
			if err := fut.Wait(); err != nil {
				t.Fatalf("Persist %d: %v", fillN, err)
			}
		}
		if wp := d.Zone(0).WP - d.ZoneStart(0); wp != e.stride {
			t.Errorf("PP zone WP = %d, want one slot (%d)", wp, e.stride)
		}
		st := e.Stats()
		if want := 3 * e.stride * ss; st.VolatileBytes != want {
			t.Errorf("VolatileBytes = %d, want %d (three in-place overwrites)", st.VolatileBytes, want)
		}
		if st.PermanentBytes != 0 {
			t.Errorf("PermanentBytes = %d, want 0 (window never slid)", st.PermanentBytes)
		}

		// Scan returns the newest image only.
		recs, err := e.Scan()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 {
			t.Fatalf("Scan returned %d records, want 1", len(recs))
		}
		if recs[0].Stripe != 5 || recs[0].Payload[0] != 4 || len(recs[0].Payload) != 16*int(ss) {
			t.Errorf("Scan kept the wrong image: stripe %d fill %d len %d",
				recs[0].Stripe, recs[0].Payload[0], len(recs[0].Payload))
		}
	})
}

// TestStaleSlotSuperseded pushes a stripe's slot out of the ZRWA window,
// re-persists the stripe, and checks both Scan and the GC see only the
// replacement.
func TestStaleSlotSuperseded(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		d := zns.NewDevice(c, ppDevConfig())
		e := newTestEngine(t, c, d)

		persist := func(stripe int64, fill byte) {
			t.Helper()
			fut, ok := e.Persist(mkAppend(d, 0, stripe, fill, 8))
			if !ok {
				t.Fatalf("Persist stripe %d refused", stripe)
			}
			if err := fut.Wait(); err != nil {
				t.Fatal(err)
			}
		}
		persist(0, 1)          // slot at pos 0
		for s := int64(1); s <= 3; s++ {
			persist(s, byte(s)) // wp=68: window [34,68], slot 0 outside
		}
		persist(0, 9) // replacement slot, old one must die

		e.mu.Lock()
		liveFor0 := 0
		for _, pz := range e.devs[0].pools {
			for _, sl := range pz.slots {
				if sl.live && sl.key == (slotKey{zone: 0, stripe: 0}) {
					liveFor0++
				}
			}
		}
		e.mu.Unlock()
		if liveFor0 != 1 {
			t.Errorf("stripe 0 has %d live slots, want 1", liveFor0)
		}

		recs, err := e.Scan()
		if err != nil {
			t.Fatal(err)
		}
		got := map[int64]byte{}
		for _, r := range recs {
			got[r.Stripe] = r.Payload[0]
		}
		if got[0] != 9 {
			t.Errorf("Scan kept stale image for stripe 0: fill %d, want 9", got[0])
		}
		if len(recs) != 4 {
			t.Errorf("Scan returned %d records, want 4", len(recs))
		}
	})
}

// TestKilledSlotUnmappedAcrossGC reproduces a write-path crash: a
// stripe's slot slides out of the window, its re-persist cannot place a
// replacement (pool exhausted -> fallback), and the pool holding the
// dead slot is later GC-reset. The next re-persist of the stripe must
// not treat the stale mapping as an in-place overwrite target — the
// slot's position no longer exists on the device.
func TestKilledSlotUnmappedAcrossGC(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		d := zns.NewDevice(c, ppDevConfig())
		e := newTestEngine(t, c, d)

		persist := func(stripe int64, fill byte) bool {
			t.Helper()
			fut, ok := e.Persist(mkAppend(d, 0, stripe, fill, 8))
			if ok {
				if err := fut.Wait(); err != nil {
					t.Fatalf("Persist stripe %d: %v", stripe, err)
				}
			}
			return ok
		}

		// Fill pool 0 (stripes 0-6), then pool 1 (stripes 8-14). Stripe
		// 7's placement advances the head but falls back: the GC aborts
		// because everything is live.
		for s := int64(0); s <= 6; s++ {
			if !persist(s, 1) {
				t.Fatalf("Persist stripe %d refused during fill", s)
			}
		}
		refused := 0
		for s := int64(7); s <= 14; s++ {
			if !persist(s, 1) {
				refused++
			}
		}
		if refused != 1 {
			t.Fatalf("fill refused %d persists, want 1 (the head advance)", refused)
		}

		// Stripe 4's slot (pool 0, pos 68) is out of the window
		// ([85,119]). Its re-persist kills the slot and, with both pools
		// packed live, falls back to the metadata log.
		if persist(4, 2) {
			t.Fatal("Persist stripe 4 placed despite an exhausted pool")
		}

		// Close everything and reclaim: pool 0 (all dead) resets.
		for s := int64(0); s <= 14; s++ {
			e.StripeClosed(0, s)
		}
		if err := e.Maintain(); err != nil {
			t.Fatalf("Maintain: %v", err)
		}

		// Re-persisting stripe 4 must place a fresh slot, not revive the
		// mapping into the reset pool.
		if !persist(4, 9) {
			t.Fatal("Persist stripe 4 refused after reclaim")
		}
		recs, err := e.Scan()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if r.Stripe == 4 && r.Payload[0] != 9 {
				t.Errorf("stripe 4 image fill %d, want 9", r.Payload[0])
			}
		}
	})
}

// TestScanDropsTornSlot plants garbage between valid slots and checks
// the scan skips it without losing the neighbors.
func TestScanDropsTornSlot(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		d := zns.NewDevice(c, ppDevConfig())
		e := newTestEngine(t, c, d)
		for s := int64(0); s < 2; s++ {
			fut, ok := e.Persist(mkAppend(d, 0, s, byte(s+1), 8))
			if !ok {
				t.Fatal("Persist refused")
			}
			if err := fut.Wait(); err != nil {
				t.Fatal(err)
			}
		}
		// Garbage the size of one slot appended directly to the zone.
		junk := bytes.Repeat([]byte{0x5A}, int(e.stride)*d.Config().SectorSize)
		if _, fut := d.Append(0, junk, 0); fut.Wait() != nil {
			t.Fatal("junk append failed")
		}
		recs, err := e.Scan()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2 {
			t.Fatalf("Scan returned %d records, want 2 (junk slot dropped)", len(recs))
		}
	})
}

// TestExhaustionBackpressureAndReclaim fills both PP zones with live
// slots until Persist refuses, then closes the stripes and checks
// Maintain and the ring GC reclaim the pool.
func TestExhaustionBackpressureAndReclaim(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		d := zns.NewDevice(c, ppDevConfig())
		e := newTestEngine(t, c, d)

		var placed []int64
		refused := 0
		for s := int64(0); s < 40 && refused < 3; s++ {
			fut, ok := e.Persist(mkAppend(d, 0, s, 1, 8))
			if !ok {
				refused++
				continue
			}
			if err := fut.Wait(); err != nil {
				t.Fatal(err)
			}
			placed = append(placed, s)
		}
		if refused == 0 {
			t.Fatal("pool never reported backpressure")
		}
		// Both zones hold 7 slots each; every one is live.
		if len(placed) != 14 {
			t.Errorf("placed %d live slots, want 14", len(placed))
		}
		if st := e.Stats(); st.FallbackTotal == 0 {
			t.Error("FallbackTotal not counted")
		}

		// Closing every stripe makes the pool fully reclaimable.
		for _, s := range placed {
			e.StripeClosed(0, s)
		}
		if err := e.Maintain(); err != nil {
			t.Fatalf("Maintain after close: %v", err)
		}
		before := e.Stats()
		if before.GCRuns == 0 {
			t.Error("Maintain reclaimed nothing")
		}

		// New stripes place again without refusals (six concurrent live
		// stripes fit a two-zone ring); the ring advance migrates the
		// live survivors.
		for s := int64(100); s < 106; s++ {
			fut, ok := e.Persist(mkAppend(d, 0, s, 2, 8))
			if !ok {
				t.Fatalf("Persist stripe %d refused after reclaim", s)
			}
			if err := fut.Wait(); err != nil {
				t.Fatal(err)
			}
		}
		after := e.Stats()
		if after.FallbackTotal != before.FallbackTotal {
			t.Errorf("fallbacks grew after reclaim: %d -> %d", before.FallbackTotal, after.FallbackTotal)
		}
		if after.GCRuns <= before.GCRuns {
			t.Errorf("ring advance ran no GC: runs %d -> %d", before.GCRuns, after.GCRuns)
		}
		if after.GCMigrated == 0 {
			t.Error("GC migrated no live slots")
		}

		// The migrated images are intact.
		recs, err := e.Scan()
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int64]bool{}
		for _, r := range recs {
			seen[r.Stripe] = true
		}
		for s := int64(100); s < 106; s++ {
			if !seen[s] {
				t.Errorf("stripe %d image lost across GC", s)
			}
		}
	})
}

// TestFormatClearsPool persists slots, formats, and expects empty zones
// and zeroed mirrors.
func TestFormatClearsPool(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		d := zns.NewDevice(c, ppDevConfig())
		e := newTestEngine(t, c, d)
		for s := int64(0); s < 5; s++ {
			fut, ok := e.Persist(mkAppend(d, 0, s, 3, 8))
			if !ok {
				t.Fatal("Persist refused")
			}
			if err := fut.Wait(); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Format(); err != nil {
			t.Fatalf("Format: %v", err)
		}
		for p := 0; p < 2; p++ {
			if st := d.Zone(p).State; st != zns.ZoneEmpty {
				t.Errorf("PP zone %d state %v after Format, want empty", p, st)
			}
		}
		recs, err := e.Scan()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 0 {
			t.Errorf("Scan found %d records after Format", len(recs))
		}
		fut, ok := e.Persist(mkAppend(d, 0, 77, 4, 8))
		if !ok {
			t.Fatal("Persist refused after Format")
		}
		if err := fut.Wait(); err != nil {
			t.Fatal(err)
		}
	})
}
