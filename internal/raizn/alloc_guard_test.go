package raizn

import "testing"

// Checked-in allocs/op baselines for the SubmitWrite hot path with
// tracing disabled. The obs span plumbing threads nil span handles
// through the whole write path, and that must stay literally free: if
// one of these numbers goes up, something put an allocation (or a live
// span) on the disabled-tracing path. Lower the baseline when the write
// path genuinely improves; raise it only for a deliberate trade-off.
var submitWriteAllocBaseline = []struct {
	name    string
	sectors int64
	allocs  int64
}{
	{"4K", 1, 27},
	{"4-stripe", 16 * 16, 100}, // StripeUnitSectors(16) * 16
}

// TestSubmitWriteAllocGuard enforces the zero-allocation-when-disabled
// tracing property by benchmarking the coalesced write path and
// comparing allocs/op against the committed baseline. CI runs this as a
// dedicated non-race step; the race detector perturbs allocation
// counts, so the guard skips itself under -race.
func TestSubmitWriteAllocGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not comparable under the race detector")
	}
	if testing.Short() {
		t.Skip("skipping benchmark-backed guard in -short mode")
	}
	for _, c := range submitWriteAllocBaseline {
		c := c
		t.Run(c.name, func(t *testing.T) {
			r := testing.Benchmark(func(b *testing.B) {
				benchSeqWrite(b, DefaultConfig(), c.sectors)
			})
			got := r.AllocsPerOp()
			switch {
			case got > c.allocs:
				t.Errorf("SubmitWrite %s: %d allocs/op, baseline %d — the disabled-tracing hot path regressed",
					c.name, got, c.allocs)
			case got < c.allocs:
				t.Logf("SubmitWrite %s: %d allocs/op beats baseline %d; consider lowering it", c.name, got, c.allocs)
			}
		})
	}
}

// TestSubmitReadZCAllocGuard proves the zero-copy read path never
// allocates data buffers: a steady-state ZC read allocates only fixed
// plumbing (futures, pins, part headers), so allocs/op and bytes/op
// must stay flat as the read size grows 4x. A copying read of the same
// 256 KiB range would show up immediately in AllocedBytesPerOp.
func TestSubmitReadZCAllocGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not comparable under the race detector")
	}
	if testing.Short() {
		t.Skip("skipping benchmark-backed guard in -short mode")
	}
	small := testing.Benchmark(func(b *testing.B) { benchSeqReadZC(b, ringConfig(), 16) })
	large := testing.Benchmark(func(b *testing.B) { benchSeqReadZC(b, ringConfig(), 64) })
	const maxAllocs, maxBytes = 24, 2048
	if got := large.AllocsPerOp(); got > maxAllocs {
		t.Errorf("SubmitReadZC 4-stripe: %d allocs/op, baseline %d — ZC read plumbing regressed", got, maxAllocs)
	}
	if got := large.AllocedBytesPerOp(); got > maxBytes {
		t.Errorf("SubmitReadZC 4-stripe: %d B/op, baseline %d — a data buffer leaked onto the ZC path", got, maxBytes)
	}
	// 4x more data must not mean 4x more bytes allocated: the growth from
	// the 1-unit to the 4-unit read is bounded by per-piece headers, far
	// below the 192 KiB of extra payload a copying path would allocate.
	if d := large.AllocedBytesPerOp() - small.AllocedBytesPerOp(); d > maxBytes {
		t.Errorf("SubmitReadZC: bytes/op grew by %d from 1-unit to 4-unit read — payload is being copied", d)
	}
}

// TestRecorderAllocGuard extends the write-path guard to the flight
// recorder: attaching a recorder (as every production array under
// observation does) must cost zero extra allocs/op on the non-sampled
// path. With tracing disabled — the hot-path default the baseline above
// is measured at — Begin returns nil spans and the observer is never
// consulted, so the recorder rides along for free; this guard pins that.
func TestRecorderAllocGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not comparable under the race detector")
	}
	if testing.Short() {
		t.Skip("skipping benchmark-backed guard in -short mode")
	}
	for _, c := range submitWriteAllocBaseline {
		c := c
		t.Run(c.name, func(t *testing.T) {
			r := testing.Benchmark(func(b *testing.B) {
				benchSeqWriteRecorder(b, c.sectors)
			})
			got := r.AllocsPerOp()
			switch {
			case got > c.allocs:
				t.Errorf("SubmitWrite+recorder %s: %d allocs/op, tracing-disabled baseline %d — attaching a flight recorder must be free on the non-sampled path",
					c.name, got, c.allocs)
			case got < c.allocs:
				t.Logf("SubmitWrite+recorder %s: %d allocs/op beats baseline %d", c.name, got, c.allocs)
			}
		})
	}
}
