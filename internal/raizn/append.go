package raizn

import (
	"raizn/internal/obs"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// SubmitAppend is the logical zone-append command: the volume assigns the
// write position (the logical zone's write pointer) and returns it with
// the completion future.
//
// Per §5.4, concurrent appends to one logical zone cannot be reordered
// freely the way a single device reorders them — an on-device reordering
// of stripe units would be unrecoverable after a crash — so RAIZN
// serializes appends per logical zone: the position is assigned under the
// zone lock and the data takes the ordinary write path. Appends to
// different zones proceed concurrently.
func (v *Volume) SubmitAppend(zone int, data []byte, flags zns.Flag) (int64, *vclock.Future) {
	if zone < 0 || zone >= v.lt.numZones {
		return -1, v.clk.Completed(ErrOutOfRange)
	}
	if len(data) == 0 || len(data)%v.sectorSize != 0 {
		return -1, v.clk.Completed(ErrUnaligned)
	}
	nSectors := int64(len(data) / v.sectorSize)
	if v.ReadOnly() {
		return -1, v.clk.Completed(ErrReadOnly)
	}

	lz := v.zones[zone]
	lz.mu.Lock()
	for lz.resetting {
		lz.cond.Wait()
	}
	if lz.state == zns.ZoneFull {
		lz.mu.Unlock()
		return -1, v.clk.Completed(ErrZoneFull)
	}
	off := lz.wp
	if off+nSectors > v.lt.zoneSectors() {
		lz.mu.Unlock()
		return -1, v.clk.Completed(ErrZoneBoundary)
	}
	if lz.state == zns.ZoneEmpty || lz.state == zns.ZoneClosed {
		if err := v.openZoneSlot(lz); err != nil {
			lz.mu.Unlock()
			return -1, v.clk.Completed(err)
		}
	}
	lba := v.lt.zoneStart(zone) + off
	lz.wp = off + nSectors
	sp := v.tracer.Begin(obs.OpWrite, lba, int64(len(data)))
	// runWrite unlocks lz.mu; appends share the whole write pipeline.
	return lba, v.runWrite(sp, lz, off, data, flags)
}

// Append appends data to the logical zone and blocks until completion,
// returning the LBA the data landed at.
func (v *Volume) Append(zone int, data []byte, flags zns.Flag) (int64, error) {
	lba, fut := v.SubmitAppend(zone, data, flags)
	return lba, fut.Wait()
}
