package raizn

import (
	"testing"

	"raizn/internal/vclock"
	"raizn/internal/zns"
)

func TestAppendAssignsSequentialLBAs(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		lba1, err := v.Append(0, lbaPattern(v, 0, 8), 0)
		if err != nil {
			t.Fatal(err)
		}
		lba2, err := v.Append(0, lbaPattern(v, 8, 8), 0)
		if err != nil {
			t.Fatal(err)
		}
		if lba1 != 0 || lba2 != 8 {
			t.Errorf("assigned LBAs %d, %d; want 0, 8", lba1, lba2)
		}
		checkReadV(t, v, 0, 16)
	})
}

func TestConcurrentAppendsSerialize(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		const n = 16
		wg := c.NewWaitGroup()
		lbas := make([]int64, n)
		for i := 0; i < n; i++ {
			i := i
			wg.Add(1)
			c.Go(func() {
				defer wg.Done()
				lba, fut := v.SubmitAppend(1, make([]byte, 4*v.SectorSize()), 0)
				if err := fut.Wait(); err != nil {
					t.Errorf("append %d: %v", i, err)
				}
				lbas[i] = lba
			})
		}
		wg.Wait()
		// All assignments are distinct, 4-sector aligned, and cover
		// exactly [zoneStart, zoneStart+64).
		zs := v.ZoneSectors()
		seen := map[int64]bool{}
		for _, lba := range lbas {
			if lba < zs || lba >= zs+4*n {
				t.Fatalf("append landed at %d, outside the expected range", lba)
			}
			if seen[lba] {
				t.Fatalf("duplicate append LBA %d", lba)
			}
			seen[lba] = true
		}
		if wp := v.Zone(1).WP - zs; wp != 4*n {
			t.Errorf("zone WP = %d, want %d", wp, 4*n)
		}
	})
}

func TestAppendToFullZone(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, int(v.ZoneSectors()), 0)
		if _, err := v.Append(0, make([]byte, v.SectorSize()), 0); err != ErrZoneFull {
			t.Errorf("append to full zone error = %v", err)
		}
	})
}

func TestAppendBeyondCapacityRejected(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, int(v.ZoneSectors())-2, 0)
		if _, err := v.Append(0, make([]byte, 4*v.SectorSize()), 0); err != ErrZoneBoundary {
			t.Errorf("oversized append error = %v", err)
		}
		// An exactly-fitting append succeeds.
		if _, err := v.Append(0, make([]byte, 2*v.SectorSize()), 0); err != nil {
			t.Errorf("fitting append error = %v", err)
		}
	})
}

func TestAppendSurvivesCrash(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		for i := int64(0); i < 10; i++ {
			if _, err := v.Append(0, lbaPattern(v, i*4, 4), 0); err != nil {
				t.Fatal(err)
			}
		}
		v.Flush()
		for _, d := range devs {
			d.PowerLoss(nil)
		}
		v2 := remount(t, c, devs)
		if wp := v2.Zone(0).WP; wp != 40 {
			t.Errorf("WP = %d, want 40", wp)
		}
		checkReadV(t, v2, 0, 40)
	})
}
