package raizn

import (
	"testing"

	"raizn/internal/obs"
	"raizn/internal/obs/flight"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// Package benchmarks measure the HOST-side cost of the simulation (ns/op
// of real CPU per simulated IO), not device performance — device timing
// is virtual. They bound how large an experiment the harness can run.

func benchVolume(b *testing.B, fn func(c *vclock.Clock, v *Volume)) {
	b.Helper()
	benchVolumeCfg(b, DefaultConfig(), fn)
}

func benchVolumeCfg(b *testing.B, vcfg Config, fn func(c *vclock.Clock, v *Volume)) {
	b.Helper()
	c := vclock.New()
	c.Run(func() {
		cfg := zns.DefaultConfig()
		cfg.DiscardData = true
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(c, cfg)
		}
		v, err := Create(c, devs, vcfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		fn(c, v)
	})
}

// benchSeqWrite drives sequential whole-volume writes of the given size,
// resetting all zones on wrap. With allocs set it reports host-side
// allocations per operation — the coalesced path's zero-allocation
// criterion is measured here.
func benchSeqWrite(b *testing.B, vcfg Config, nSectors int64) {
	benchVolumeCfg(b, vcfg, func(c *vclock.Clock, v *Volume) {
		buf := make([]byte, nSectors*int64(v.SectorSize()))
		b.SetBytes(int64(len(buf)))
		b.ReportAllocs()
		var lba int64
		for i := 0; i < b.N; i++ {
			if lba+nSectors > v.NumSectors() {
				b.StopTimer()
				for z := 0; z < v.NumZones(); z++ {
					v.ResetZone(z)
				}
				lba = 0
				b.StartTimer()
			}
			if err := v.Write(lba, buf, 0); err != nil {
				b.Fatal(err)
			}
			lba += nSectors
		}
	})
}

// SubmitWrite host-cost benchmarks, coalesced (default) vs the
// pre-overhaul legacy path. The interesting columns are ns/op and
// allocs/op: the coalesced path pools its write state and parity images.

func BenchmarkSubmitWrite4K(b *testing.B)  { benchSeqWrite(b, DefaultConfig(), 1) }
func BenchmarkSubmitWrite16K(b *testing.B) { benchSeqWrite(b, DefaultConfig(), 4) }
func BenchmarkSubmitWriteStripe(b *testing.B) {
	benchSeqWrite(b, DefaultConfig(), DefaultConfig().StripeUnitSectors*4)
}

// A 4-stripe write is where coalescing pays: each device receives 4
// physically adjacent stripe units, which merge into one vectored
// command instead of 4 separate ones.
func BenchmarkSubmitWrite4Stripe(b *testing.B) {
	benchSeqWrite(b, DefaultConfig(), DefaultConfig().StripeUnitSectors*16)
}

func BenchmarkSubmitWrite4KLegacy(b *testing.B)  { benchSeqWrite(b, legacyConfig(), 1) }
func BenchmarkSubmitWrite16KLegacy(b *testing.B) { benchSeqWrite(b, legacyConfig(), 4) }
func BenchmarkSubmitWriteStripeLegacy(b *testing.B) {
	benchSeqWrite(b, legacyConfig(), DefaultConfig().StripeUnitSectors*4)
}
func BenchmarkSubmitWrite4StripeLegacy(b *testing.B) {
	benchSeqWrite(b, legacyConfig(), DefaultConfig().StripeUnitSectors*16)
}

func BenchmarkVolumeWrite4K(b *testing.B) {
	benchVolume(b, func(c *vclock.Clock, v *Volume) {
		buf := make([]byte, 4096)
		zs := v.ZoneSectors()
		var lba int64
		b.SetBytes(4096)
		for i := 0; i < b.N; i++ {
			if lba%zs == 0 && lba > 0 && lba/zs >= int64(v.NumZones()) {
				b.StopTimer()
				for z := 0; z < v.NumZones(); z++ {
					v.ResetZone(z)
				}
				lba = 0
				b.StartTimer()
			}
			if err := v.Write(lba, buf, 0); err != nil {
				b.Fatal(err)
			}
			lba++
			if lba >= v.NumSectors() {
				b.StopTimer()
				for z := 0; z < v.NumZones(); z++ {
					v.ResetZone(z)
				}
				lba = 0
				b.StartTimer()
			}
		}
	})
}

func BenchmarkVolumeWriteStripe(b *testing.B) {
	benchVolume(b, func(c *vclock.Clock, v *Volume) {
		buf := make([]byte, v.StripeSectors()*int64(v.SectorSize()))
		b.SetBytes(int64(len(buf)))
		var lba int64
		for i := 0; i < b.N; i++ {
			if lba+v.StripeSectors() > v.NumSectors() {
				b.StopTimer()
				for z := 0; z < v.NumZones(); z++ {
					v.ResetZone(z)
				}
				lba = 0
				b.StartTimer()
			}
			if err := v.Write(lba, buf, 0); err != nil {
				b.Fatal(err)
			}
			lba += v.StripeSectors()
		}
	})
}

func BenchmarkVolumeRead64K(b *testing.B) {
	benchVolume(b, func(c *vclock.Clock, v *Volume) {
		init := make([]byte, v.ZoneSectors()*int64(v.SectorSize()))
		if err := v.Write(0, init, 0); err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 64<<10)
		n := v.ZoneSectors() - 16
		b.SetBytes(int64(len(buf)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := v.Read(int64(i)%n, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDegradedRead64K(b *testing.B) {
	benchVolume(b, func(c *vclock.Clock, v *Volume) {
		init := make([]byte, v.ZoneSectors()*int64(v.SectorSize()))
		if err := v.Write(0, init, 0); err != nil {
			b.Fatal(err)
		}
		v.FailDevice(0)
		buf := make([]byte, 64<<10)
		n := v.ZoneSectors() - 16
		b.SetBytes(int64(len(buf)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := v.Read(int64(i)%n, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchVolumeData is benchVolumeCfg with payloads materialized
// (DiscardData off): zero-copy reads need real backing arrays, and the
// copying baseline must pay the same memory traffic to compare fairly.
func benchVolumeData(b *testing.B, vcfg Config, fn func(c *vclock.Clock, v *Volume)) {
	b.Helper()
	c := vclock.New()
	c.Run(func() {
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(c, zns.DefaultConfig())
		}
		v, err := Create(c, devs, vcfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		fn(c, v)
	})
}

// benchSeqReadZC measures the zero-copy read path: assemble views,
// validate pins, release. ZeroCopy must hold on every op — a fallback
// would silently benchmark the copying path.
func benchSeqReadZC(b *testing.B, vcfg Config, nSectors int64) {
	benchVolumeData(b, vcfg, func(c *vclock.Clock, v *Volume) {
		prefill := make([]byte, v.ZoneSectors()*int64(v.SectorSize()))
		if err := v.Write(0, prefill, 0); err != nil {
			b.Fatal(err)
		}
		n := v.ZoneSectors() - nSectors
		b.SetBytes(nSectors * int64(v.SectorSize()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := v.SubmitReadZC(int64(i)%n, nSectors)
			if err := r.Wait(); err != nil {
				b.Fatal(err)
			}
			if !r.ZeroCopy() {
				b.Fatal("zero-copy read fell back to copying")
			}
			r.Release()
		}
	})
}

// benchSeqReadCopy is the copying counterpart on identical devices.
func benchSeqReadCopy(b *testing.B, vcfg Config, nSectors int64) {
	benchVolumeData(b, vcfg, func(c *vclock.Clock, v *Volume) {
		prefill := make([]byte, v.ZoneSectors()*int64(v.SectorSize()))
		if err := v.Write(0, prefill, 0); err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, nSectors*int64(v.SectorSize()))
		n := v.ZoneSectors() - nSectors
		b.SetBytes(int64(len(buf)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := v.Read(int64(i)%n, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSubmitReadCopy4Unit(b *testing.B) { benchSeqReadCopy(b, DefaultConfig(), 64) }
func BenchmarkSubmitReadZC4Unit(b *testing.B)   { benchSeqReadZC(b, ringConfig(), 64) }
func BenchmarkSubmitReadZC1Unit(b *testing.B)   { benchSeqReadZC(b, ringConfig(), 16) }

// benchSeqWriteRecorder is benchSeqWrite with the full observation rig
// attached — registry, (disabled) tracer, flight recorder as span
// observer — for the recorder-overhead alloc guard.
func benchSeqWriteRecorder(b *testing.B, nSectors int64) {
	c := vclock.New()
	c.Run(func() {
		cfg := zns.DefaultConfig()
		cfg.DiscardData = true
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(c, cfg)
		}
		reg := obs.NewRegistry()
		tr := obs.NewTracer(c, obs.Config{SinkCapacity: 64}) // disabled, like the baseline
		vcfg := DefaultConfig()
		vcfg.Metrics = reg
		vcfg.Tracer = tr
		v, err := Create(c, devs, vcfg)
		if err != nil {
			b.Fatal(err)
		}
		rec := flight.New(flight.Config{
			Clock: c, Registry: reg, Label: "guard",
			Degraded: func() bool { return v.Degraded() >= 0 },
		})
		tr.SetObserver(rec)
		buf := make([]byte, nSectors*int64(v.SectorSize()))
		b.SetBytes(int64(len(buf)))
		b.ReportAllocs()
		b.ResetTimer()
		var lba int64
		for i := 0; i < b.N; i++ {
			if lba+nSectors > v.NumSectors() {
				b.StopTimer()
				for z := 0; z < v.NumZones(); z++ {
					v.ResetZone(z)
				}
				lba = 0
				b.StartTimer()
			}
			if err := v.Write(lba, buf, 0); err != nil {
				b.Fatal(err)
			}
			lba += nSectors
		}
	})
}
