package raizn

import (
	"fmt"

	"raizn/internal/zns"
)

// Flight-recorder black-box persistence (internal/obs/flight): the
// serialized box rides the normal metadata write path as a recFlightBox
// record, FUA-appended to the general metadata log so it is durable the
// moment the append completes — a crash capture taken right afterwards
// recovers it even when only flushed data survives. The newest
// generation wins; metadata GC and mount-time consolidation re-emit the
// latest box (see checkpointRecords), so forensics survive log
// roll-over and remount.

// PersistBlackBox durably appends one serialized black box. The first
// live device's general metadata log gets the record; on append failure
// the next device is tried, so a degraded array still records. Must run
// on a simulated goroutine.
func (v *Volume) PersistBlackBox(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("raizn: empty black box")
	}
	maxBytes := (v.lt.physZoneCap - 8) * int64(v.sectorSize)
	if int64(len(data)) > maxBytes {
		return fmt.Errorf("raizn: black box %d bytes exceeds metadata zone budget %d", len(data), maxBytes)
	}
	t := v.loadDevs()
	lastErr := zns.ErrDeviceFailed
	for i := range t.md {
		if t.md[i] == nil || t.devs[i] == nil {
			continue
		}
		rec := &record{
			typ:      recFlightBox,
			startLBA: int64(len(data)),
			gen:      v.nextMDSeq(),
			payload:  data,
		}
		fut, _, err := t.md[i].append(rec, zns.FUA)
		if err != nil {
			lastErr = err
			continue
		}
		if err := fut.Wait(); err != nil {
			lastErr = err
			continue
		}
		v.mu.Lock()
		if rec.gen > v.blackBoxGen || v.blackBox == nil {
			v.blackBox = append(v.blackBox[:0], data...)
			v.blackBoxGen = rec.gen
		}
		v.mu.Unlock()
		return nil
	}
	return lastErr
}

// ReadBlackBox returns a copy of the newest black box the volume knows:
// the last one persisted on this mount, or the one recovered from the
// metadata scan after Mount. ok is false when none exists.
func (v *Volume) ReadBlackBox() (data []byte, ok bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.blackBox) == 0 {
		return nil, false
	}
	return append([]byte(nil), v.blackBox...), true
}

// RecoverBlackBox scans one device's metadata zones for the newest
// persisted black box without mounting the array — the forensics path
// for crash clones whose array may not even mount. cfg is the array's
// configuration (geometry must match what the box was written under).
// ok is false when the device holds no intact box. Must run on a
// simulated goroutine of the device's clock.
func RecoverBlackBox(dev *zns.Device, cfg Config) (data []byte, ok bool, err error) {
	cfg = cfg.withDefaults()
	dc := dev.Config()
	ppZones := 0
	if cfg.ParityEngine == EngineZRAID {
		ppZones = cfg.PPZones
	}
	lt := &layout{
		n: 1, d: 1, su: cfg.StripeUnitSectors,
		physZoneSize: dc.ZoneSize, physZoneCap: dc.ZoneCap,
		numZones: dc.NumZones - cfg.MetadataZones - ppZones,
		mdZones:  cfg.MetadataZones, ppZones: ppZones,
	}
	recs, err := scanMDZones(dev, lt, dc.SectorSize)
	if err != nil {
		return nil, false, err
	}
	if best := newestFlightBox(recs); best != nil {
		return append([]byte(nil), best.payload[:best.startLBA]...), true, nil
	}
	return nil, false, nil
}

// newestFlightBox picks the highest-generation intact flight-box record.
func newestFlightBox(recs []record) *record {
	var best *record
	for i := range recs {
		r := &recs[i]
		if r.typ.base() != recFlightBox {
			continue
		}
		if r.startLBA <= 0 || int64(len(r.payload)) < r.startLBA {
			continue // torn or garbage payload
		}
		if best == nil || r.gen > best.gen {
			best = r
		}
	}
	return best
}
