package raizn

import (
	"bytes"
	"fmt"
	"testing"

	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// TestBlackBoxPersistReadRoundtrip: the newest persisted box is the one
// read back, and generations strictly supersede.
func TestBlackBoxPersistReadRoundtrip(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		if _, ok := v.ReadBlackBox(); ok {
			t.Fatal("fresh volume reports a black box")
		}
		a := []byte(`{"schema":"raizn-blackbox/v1","label":"a"}`)
		b := []byte(`{"schema":"raizn-blackbox/v1","label":"b","frozen":true}`)
		if err := v.PersistBlackBox(a); err != nil {
			t.Fatalf("PersistBlackBox: %v", err)
		}
		if got, ok := v.ReadBlackBox(); !ok || !bytes.Equal(got, a) {
			t.Fatalf("ReadBlackBox = %q, %v; want first box", got, ok)
		}
		if err := v.PersistBlackBox(b); err != nil {
			t.Fatalf("PersistBlackBox: %v", err)
		}
		if got, ok := v.ReadBlackBox(); !ok || !bytes.Equal(got, b) {
			t.Fatalf("ReadBlackBox = %q, %v; want newest box", got, ok)
		}
		if err := v.PersistBlackBox(nil); err == nil {
			t.Fatal("PersistBlackBox accepted an empty box")
		}
	})
}

// TestBlackBoxSurvivesPowerLoss: the box is FUA-appended, so a flushed-
// only power loss immediately after persist must not lose it; Mount's
// metadata scan recovers it without any extra step.
func TestBlackBoxSurvivesPowerLoss(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0)
		box := []byte(`{"schema":"raizn-blackbox/v1","label":"crashbox"}`)
		if err := v.PersistBlackBox(box); err != nil {
			t.Fatalf("PersistBlackBox: %v", err)
		}
		for _, d := range devs {
			d.PowerLossAt(nil) // only flushed data survives
		}
		v2 := remount(t, c, devs)
		got, ok := v2.ReadBlackBox()
		if !ok {
			t.Fatal("black box lost across power loss + remount")
		}
		if !bytes.Equal(got, box) {
			t.Fatalf("recovered box = %q, want %q", got, box)
		}

		// A second remount exercises consolidation: the mount-time
		// metadata rewrite must re-emit the box (checkpointRecords), not
		// erase it.
		v3 := remount(t, c, devs)
		if got, ok := v3.ReadBlackBox(); !ok || !bytes.Equal(got, box) {
			t.Fatalf("box lost by metadata consolidation: %q, %v", got, ok)
		}
	})
}

// TestRecoverBlackBoxStandalone: the forensics path reads the box off a
// single dead device without mounting the array, and reports ok=false on
// devices that never held one (the box goes to the first live device).
func TestRecoverBlackBoxStandalone(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		box := []byte(`{"schema":"raizn-blackbox/v1","label":"solo"}`)
		if err := v.PersistBlackBox(box); err != nil {
			t.Fatalf("PersistBlackBox: %v", err)
		}
		for _, d := range devs {
			d.PowerLossAt(nil)
		}
		got, ok, err := RecoverBlackBox(devs[0], DefaultConfig())
		if err != nil || !ok {
			t.Fatalf("RecoverBlackBox(dev0) = ok=%v err=%v", ok, err)
		}
		if !bytes.Equal(got, box) {
			t.Fatalf("recovered %q, want %q", got, box)
		}
		for i := 1; i < len(devs); i++ {
			if _, ok, err := RecoverBlackBox(devs[i], DefaultConfig()); err != nil || ok {
				t.Fatalf("RecoverBlackBox(dev%d) = ok=%v err=%v, want no box", i, ok, err)
			}
		}
	})
}

// TestBlackBoxRecoveryAtPersistenceCrashHooks drives PowerLossAt after
// every persist in a persist/write interleaving: whichever instant the
// power fails, recovery yields the newest completed box — never a torn
// or stale-over-newer one.
func TestBlackBoxRecoveryAtPersistenceCrashHooks(t *testing.T) {
	const rounds = 4
	for cut := 0; cut < rounds; cut++ {
		c := vclock.New()
		c.Run(func() {
			devs := newTestDevices(c, 5)
			v, err := Create(c, devs, DefaultConfig())
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			var want []byte
			for r := 0; r < rounds; r++ {
				mustWriteV(t, v, int64(r*32), 32, 0)
				box := []byte(fmt.Sprintf(`{"schema":"raizn-blackbox/v1","label":"round-%d"}`, r))
				if err := v.PersistBlackBox(box); err != nil {
					t.Fatalf("PersistBlackBox round %d: %v", r, err)
				}
				want = box
				if r == cut {
					break
				}
			}
			for _, d := range devs {
				d.PowerLossAt(nil)
			}
			v2 := remount(t, c, devs)
			got, ok := v2.ReadBlackBox()
			if !ok {
				t.Fatalf("cut after round %d: box lost", cut)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("cut after round %d: recovered %q, want newest %q", cut, got, want)
			}
		})
	}
}

// TestNewestFlightBoxSkipsTorn: a record whose payload was cut short by
// the crash (shorter than its recorded length) must never be surfaced.
func TestNewestFlightBoxSkipsTorn(t *testing.T) {
	intact := record{typ: recFlightBox, startLBA: 4, gen: 5, payload: []byte("good")}
	torn := record{typ: recFlightBox, startLBA: 100, gen: 9, payload: []byte("shrt")}
	empty := record{typ: recFlightBox, startLBA: 0, gen: 11}
	other := record{typ: recResetWAL, startLBA: 3, gen: 20, payload: []byte("xyz")}

	best := newestFlightBox([]record{intact, torn, empty, other})
	if best == nil || best.gen != 5 {
		t.Fatalf("newestFlightBox picked %+v, want the intact gen-5 record", best)
	}
	if best := newestFlightBox([]record{torn, empty}); best != nil {
		t.Fatalf("newestFlightBox surfaced a torn/empty record: %+v", best)
	}
}
