package raizn

import (
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// checkpointRecords produces the live metadata records of the given kind
// for device dev, serialized from memory — the metadata garbage
// collector's input (paper Fig. 4: "the garbage collector checkpoints any
// valid in-memory metadata to the swap zone, and does not read any logs
// from SSD").
func (v *Volume) checkpointRecords(dev int, kind mdKind) []*record {
	var out []*record
	switch kind {
	case mdGeneral:
		// Superblock.
		sb := superblock{
			version:   1,
			arrayID:   v.arrayID,
			numDev:    uint32(v.lt.n),
			devIndex:  uint32(dev),
			su:        v.lt.su,
			physZones: uint32(v.lt.numZones + v.lt.mdZones + v.lt.ppZones),
			mdZones:   uint32(v.lt.mdZones),
		}
		out = append(out, &record{typ: recSuperblock, gen: v.nextMDSeq(), inline: sb.encode()})

		// Generation counters.
		v.mu.Lock()
		gens := append([]uint64(nil), v.gen...)
		pendingWALs := make(map[int]uint64, len(v.pendingWALs))
		for z, g := range v.pendingWALs {
			pendingWALs[z] = g
		}
		v.mu.Unlock()
		nBlocks := (len(gens) + gensPerBlock - 1) / gensPerBlock
		for b := 0; b < nBlocks; b++ {
			out = append(out, &record{
				typ:    recGenCounters,
				gen:    v.nextMDSeq(),
				inline: encodeGenBlock(b, gens),
			})
		}

		// In-flight zone-reset WALs that are still authoritative.
		for z, g := range pendingWALs {
			if g == gens[z] {
				out = append(out, &record{
					typ:      recResetWAL,
					startLBA: v.lt.zoneStart(z),
					endLBA:   v.lt.zoneStart(z) + v.lt.zoneSectors(),
					gen:      g,
					inline:   encodeResetWAL(z),
				})
			}
		}

		// Relocated fragments whose payload lives on this device.
		v.relocMu.Lock()
		for z, list := range v.reloc {
			for _, e := range list {
				if e.dev != dev {
					continue
				}
				out = append(out, &record{
					typ: recRelocData, startLBA: e.startLBA, endLBA: e.endLBA,
					gen: gens[z], payload: e.data,
				})
			}
		}
		for z, m := range v.parityReloc {
			for _, e := range m {
				if e.dev != dev {
					continue
				}
				out = append(out, &record{
					typ: recRelocParity, startLBA: e.startLBA, endLBA: e.endLBA,
					gen: gens[z], payload: e.data,
				})
			}
		}
		v.relocMu.Unlock()

		// Stripe-unit checksum tables of the zones this device persists.
		out = append(out, v.checksumCheckpointRecords(dev)...)

		// Latest flight-recorder black box: forensic cargo that must
		// survive metadata GC and mount-time consolidation. Copied under
		// v.mu because PersistBlackBox reuses the backing slice.
		v.mu.Lock()
		if len(v.blackBox) > 0 {
			out = append(out, &record{
				typ:      recFlightBox,
				startLBA: int64(len(v.blackBox)),
				gen:      v.blackBoxGen,
				payload:  append([]byte(nil), v.blackBox...),
			})
		}
		v.mu.Unlock()

	case mdParity:
		// Partial parity for every in-progress stripe whose parity this
		// device will hold, recomputed from the stripe buffers ("the
		// latter of which is calculated by XOR'ing the contents of the
		// stripe buffer of each open logical zone", §4.3).
		//
		// NOTE: callers must not hold any zone lock (metadata appends
		// are issued outside zone locks precisely so this is safe).
		for z, lz := range v.zones {
			lz.mu.Lock()
			for s, buf := range lz.active {
				if v.lt.parityDev(z, s) != dev || buf.fill == 0 {
					continue
				}
				if buf.fill == v.lt.stripeSectors() {
					// Completed stripe whose buffer is still pinned for a
					// pending submit phase: its full parity unit is queued
					// for the arithmetic location, no log needed.
					continue
				}
				img := v.parityImageLocked(buf, v.lt.intraRegions(0, buf.fill))
				out = append(out, &record{
					typ:      recPartialParity,
					startLBA: v.lt.stripeStart(z, s),
					endLBA:   v.lt.stripeStart(z, s) + buf.fill,
					gen:      v.Generation(z),
					payload:  img,
				})
			}
			lz.mu.Unlock()
		}
	}
	return out
}

// consolidateMetadata rewrites every device's metadata zones from the
// in-memory state recovered at mount, re-establishing the zone roles
// (general / partial parity / swap). It never resets a zone before its
// live content is durably re-checkpointed elsewhere, so a crash at any
// point leaves at least one complete copy:
//
//  1. Find a resettable zone R1: an empty metadata zone, or — when an
//     interrupted metadata GC left none empty — a zone holding only
//     checkpoint-flagged records (which are by construction duplicates
//     of a source zone that still exists).
//  2. Write the general checkpoint into R1 and flush.
//  3. Reset every other zone holding general records (now duplicates).
//  4. Write the partial-parity checkpoint into a now-empty zone R2 and
//     flush, then reset the remaining non-empty metadata zones.
func (v *Volume) consolidateMetadata() error {
	for dev := range v.devs {
		d := v.devs[dev]
		if d == nil {
			continue
		}
		if err := v.consolidateDevice(dev, d); err != nil {
			return err
		}
	}
	return nil
}

type mdZoneInfo struct {
	phys       int
	empty      bool
	hasGeneral bool
	hasParity  bool
	allCkpt    bool
}

func (v *Volume) classifyMDZones(dev *zns.Device) ([]mdZoneInfo, error) {
	recs, err := scanMDZones(dev, v.lt, v.sectorSize)
	if err != nil {
		return nil, err
	}
	infos := make([]mdZoneInfo, v.lt.mdZones)
	for i := range infos {
		z := v.lt.mdZoneIndex(i)
		zd := dev.Zone(z)
		infos[i] = mdZoneInfo{
			phys:    z,
			empty:   zd.WP == dev.ZoneStart(z) && zd.State != zns.ZoneFull,
			allCkpt: true,
		}
	}
	for i := range recs {
		r := &recs[i]
		zi := int(r.pba/v.lt.physZoneSize) - v.lt.numZones
		if zi < 0 || zi >= len(infos) {
			continue
		}
		if kindOf(r.typ) == mdParity {
			infos[zi].hasParity = true
		} else {
			infos[zi].hasGeneral = true
		}
		if r.typ&recCheckpoint == 0 {
			infos[zi].allCkpt = false
		}
	}
	return infos, nil
}

func (v *Volume) consolidateDevice(dev int, d *zns.Device) error {
	infos, err := v.classifyMDZones(d)
	if err != nil {
		return err
	}

	// Step 1: pick R1.
	r1 := -1
	for i, inf := range infos {
		if inf.empty {
			r1 = i
			break
		}
	}
	if r1 == -1 {
		for i, inf := range infos {
			if inf.allCkpt {
				r1 = i
				break
			}
		}
		if r1 == -1 {
			return errMDFull
		}
		if err := d.ResetZone(infos[r1].phys).Wait(); err != nil {
			return err
		}
	}

	// Step 2: general checkpoint into R1.
	if err := v.writeCheckpoint(d, infos[r1].phys, dev, mdGeneral); err != nil {
		return err
	}

	// Step 3: reset every other zone with general records.
	for i, inf := range infos {
		if i != r1 && inf.hasGeneral {
			if err := d.ResetZone(inf.phys).Wait(); err != nil {
				return err
			}
			infos[i].empty = true
			infos[i].hasGeneral = false
		}
	}

	// Step 4: partial-parity checkpoint into a fresh zone, then clear
	// the old parity zones.
	r2 := -1
	for i, inf := range infos {
		if i != r1 && inf.empty {
			r2 = i
			break
		}
	}
	if r2 == -1 {
		return errMDFull
	}
	if err := v.writeCheckpoint(d, infos[r2].phys, dev, mdParity); err != nil {
		return err
	}
	for i, inf := range infos {
		if i != r1 && i != r2 && inf.hasParity {
			if err := d.ResetZone(inf.phys).Wait(); err != nil {
				return err
			}
		}
	}

	// Install the recovered roles.
	m := newMDManager(v, dev)
	m.active[mdGeneral] = infos[r1].phys
	m.active[mdParity] = infos[r2].phys
	m.swap = m.swap[:0]
	for i, inf := range infos {
		if i != r1 && i != r2 {
			m.swap = append(m.swap, inf.phys)
		}
	}
	v.mu.Lock()
	v.md[dev] = m
	v.publishDevTableLocked()
	v.mu.Unlock()

	// Relocation records rewritten by the checkpoint now live at new
	// PBAs; refresh the in-memory pointers is unnecessary because reads
	// are served from the cached payloads, and the next mount re-learns
	// the PBAs from the checkpoint records.
	return nil
}

// writeCheckpoint appends the checkpoint records of one kind into the
// given physical zone and flushes the device.
func (v *Volume) writeCheckpoint(d *zns.Device, phys int, dev int, kind mdKind) error {
	var futs []*vclock.Future
	for _, r := range v.checkpointRecords(dev, kind) {
		r.typ |= recCheckpoint
		_, fut := d.Append(phys, r.encode(v.sectorSize), 0)
		futs = append(futs, fut)
	}
	futs = append(futs, d.Flush())
	return vclock.WaitAll(futs...)
}
