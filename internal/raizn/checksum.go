package raizn

import (
	"encoding/binary"
	"hash/crc32"

	"raizn/internal/obs"
)

// Stripe-unit checksums make silent bit-rot *detectable*: parity alone
// can only say "some unit of this stripe is wrong" (XOR mismatch), not
// which one, and repairing the wrong unit would launder corruption into
// good data. RAIZN therefore keeps one CRC32-C per stripe unit — the D
// data units plus the parity unit — for every *complete* stripe.
//
// Coverage rules:
//
//   - CRCs are computed at stripe completion, when the whole stripe
//     (data in the stripe buffer + computed parity) is in memory, so
//     they cost no extra device reads.
//   - Partial tail stripes are not covered: their content is still
//     mutable (the next write extends it) and protected by the stripe
//     buffer + partial-parity log instead. The scrubber skips them.
//   - Checksums persist as recChecksums metadata records on device
//     (zone % n), one small record per completed stripe at runtime and
//     packed per-zone records at metadata-GC checkpoint. At mount they
//     are replayed after generation counters, dropped when stale
//     (r.gen != zone gen), and clamped to the stripes below the
//     recovered write pointer.
//   - A zone reset clears its table entries; the generation bump
//     invalidates any stale records still in the logs.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// recChecksums inline payload: zone(4) firstStripe(4) count(4) then
// count * n CRC32 values. The record is inline-only (no payload
// sectors), so one runtime record costs one metadata sector.
const csHeaderBytes = 12

func encodeChecksums(zone int, firstStripe int64, crcs []uint32) []byte {
	buf := make([]byte, csHeaderBytes+4*len(crcs))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(zone))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(firstStripe))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(crcs)))
	for i, c := range crcs {
		binary.LittleEndian.PutUint32(buf[csHeaderBytes+4*i:], c)
	}
	return buf
}

func decodeChecksums(inline []byte) (zone int, firstStripe int64, crcs []uint32, ok bool) {
	if len(inline) < csHeaderBytes {
		return 0, 0, nil, false
	}
	zone = int(binary.LittleEndian.Uint32(inline[0:4]))
	firstStripe = int64(binary.LittleEndian.Uint32(inline[4:8]))
	n := int(binary.LittleEndian.Uint32(inline[8:12]))
	if n < 0 || csHeaderBytes+4*n > len(inline) {
		return 0, 0, nil, false
	}
	crcs = make([]uint32, n)
	for i := range crcs {
		crcs[i] = binary.LittleEndian.Uint32(inline[csHeaderBytes+4*i:])
	}
	return zone, firstStripe, crcs, true
}

// csSlotParity is the per-stripe CRC slot of the parity unit; slots
// 0..d-1 hold the data units in stripe order.
func (v *Volume) csSlots() int { return v.lt.n }

// ensureCSLocked sizes zone z's checksum table. Caller holds csMu.
func (v *Volume) ensureCSLocked(z int) {
	if v.cs[z] == nil {
		stripes := v.lt.stripesPerZone()
		v.cs[z] = make([]uint32, stripes*int64(v.csSlots()))
		v.csHave[z] = make([]bool, stripes)
	}
}

// setStripeChecksums installs the CRC row of stripe s in zone z.
func (v *Volume) setStripeChecksums(z int, s int64, crcs []uint32) {
	v.csMu.Lock()
	defer v.csMu.Unlock()
	v.ensureCSLocked(z)
	copy(v.cs[z][s*int64(v.csSlots()):], crcs)
	v.csHave[z][s] = true
}

// StripeChecksums returns the recorded CRC row of stripe s in zone z
// (slots 0..d-1 data units, slot d parity), or nil if the stripe is not
// covered.
func (v *Volume) StripeChecksums(z int, s int64) []uint32 {
	v.csMu.Lock()
	defer v.csMu.Unlock()
	if v.cs[z] == nil || s < 0 || s >= int64(len(v.csHave[z])) || !v.csHave[z][s] {
		return nil
	}
	n := int64(v.csSlots())
	out := make([]uint32, n)
	copy(out, v.cs[z][s*n:])
	return out
}

// ChecksumCoverage returns how many stripes of zone z carry checksums.
func (v *Volume) ChecksumCoverage(z int) int64 {
	v.csMu.Lock()
	defer v.csMu.Unlock()
	var n int64
	for _, h := range v.csHave[z] {
		if h {
			n++
		}
	}
	return n
}

// clearZoneChecksums drops zone z's table after a reset.
func (v *Volume) clearZoneChecksums(z int) {
	v.csMu.Lock()
	v.cs[z] = nil
	v.csHave[z] = nil
	v.csMu.Unlock()
}

// clampChecksums drops coverage at and beyond stripe limit — used at
// mount when the recovered write pointer rolled back mid-stripe.
func (v *Volume) clampChecksums(z int, limit int64) {
	v.csMu.Lock()
	if v.csHave[z] != nil {
		for s := limit; s < int64(len(v.csHave[z])); s++ {
			v.csHave[z][s] = false
		}
	}
	v.csMu.Unlock()
}

// checksumDev returns the device whose general metadata log persists
// zone z's checksum records.
func (v *Volume) checksumDev(z int) int { return z % v.lt.n }

// recordStripeChecksumsLocked computes the CRC row of the just-completed
// stripe s from its buffer (data units) and the parity image, installs
// it in the table, and queues the runtime metadata record. Caller holds
// lz.mu; buf.fill == stripeSectors.
func (v *Volume) recordStripeChecksumsLocked(lz *logicalZone, s int64, buf *stripeBuffer, pending *[]pendingMD) {
	ss := int64(v.sectorSize)
	suBytes := v.lt.su * ss
	crcs := make([]uint32, v.csSlots())
	for u := 0; u < v.lt.d; u++ {
		crcs[u] = crc32.Checksum(buf.data[int64(u)*suBytes:int64(u+1)*suBytes], crcTable)
	}
	p := v.parityImageLocked(buf, []intraInterval{{0, v.lt.su}})
	crcs[v.lt.d] = crc32.Checksum(p, crcTable)

	z := lz.idx
	v.setStripeChecksums(z, s, crcs)
	v.stats.checksumRecords.Add(1)
	dev := v.checksumDev(z)
	if v.mdm(dev) == nil {
		return // device dead: table entry survives in memory; the next
		// checkpoint after rebuild re-persists it
	}
	*pending = append(*pending, pendingMD{
		dev: dev,
		rec: &record{
			typ:    recChecksums,
			gen:    v.Generation(z),
			inline: encodeChecksums(z, s, crcs),
		},
	})
}

// checksumCheckpointRecords emits packed per-zone checksum records for
// the zones whose checksum device is dev, splitting rows across records
// when a zone's full table exceeds the inline limit.
func (v *Volume) checksumCheckpointRecords(dev int) []*record {
	var out []*record
	rowBytes := 4 * v.csSlots()
	maxRows := (maxInline - csHeaderBytes) / rowBytes
	if maxRows < 1 {
		maxRows = 1
	}
	v.csMu.Lock()
	for z := 0; z < v.lt.numZones; z++ {
		if v.checksumDev(z) != dev || v.csHave[z] == nil {
			continue
		}
		gen := v.gen[z]
		n := int64(v.csSlots())
		// Emit contiguous covered runs.
		for s := int64(0); s < int64(len(v.csHave[z])); {
			if !v.csHave[z][s] {
				s++
				continue
			}
			first := s
			for s < int64(len(v.csHave[z])) && v.csHave[z][s] && s-first < int64(maxRows) {
				s++
			}
			crcs := make([]uint32, (s-first)*n)
			copy(crcs, v.cs[z][first*n:s*n])
			out = append(out, &record{
				typ:    recChecksums,
				gen:    gen,
				inline: encodeChecksums(z, first, crcs),
			})
		}
	}
	v.csMu.Unlock()
	return out
}

// applyChecksumRecord replays one recChecksums record at mount. Caller
// guarantees generation counters are already recovered; stale-generation
// records are dropped.
func (v *Volume) applyChecksumRecord(r *record) {
	z, first, crcs, ok := decodeChecksums(r.inline)
	if !ok || z < 0 || z >= v.lt.numZones {
		return
	}
	if r.gen != v.gen[z] {
		return // pre-reset record: the zone was reset since
	}
	n := int64(v.csSlots())
	rows := int64(len(crcs)) / n
	stripes := v.lt.stripesPerZone()
	v.csMu.Lock()
	v.ensureCSLocked(z)
	for i := int64(0); i < rows; i++ {
		s := first + i
		if s < 0 || s >= stripes {
			continue
		}
		copy(v.cs[z][s*n:], crcs[i*n:(i+1)*n])
		v.csHave[z][s] = true
	}
	v.csMu.Unlock()
}

// DeviceErrorCounters returns the cumulative read-error and corruption
// counts attributed to device i by foreground reads and scrub passes.
func (v *Volume) DeviceErrorCounters(i int) (readErrors, corruptions int64) {
	if i < 0 || i >= len(v.devErrs) {
		return 0, 0
	}
	return v.devErrs[i].readErrors.Load(), v.devErrs[i].corruptions.Load()
}

// noteReadMedium counts a latent read error against device i.
func (v *Volume) noteReadMedium(i int) {
	if i >= 0 && i < len(v.devErrs) {
		v.devErrs[i].readErrors.Add(1)
	}
}

// noteCorruption counts a detected checksum mismatch against device i.
func (v *Volume) noteCorruption(i int) {
	if i >= 0 && i < len(v.devErrs) {
		v.devErrs[i].corruptions.Add(1)
	}
}

// crcOf returns the CRC32-C of a stripe-unit image.
func crcOf(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

// readUnitImage synchronously reads the full `need`-sector prefix of
// data unit u of stripe s (or the parity unit when u == d) into a fresh
// buffer, honoring relocation overlays. It is the scrubber's media
// view of a unit.
func (v *Volume) readUnitImage(sp *obs.Span, z int, s int64, u int, need int64) ([]byte, error) {
	ss := int64(v.sectorSize)
	buf := make([]byte, need*ss)
	var futs []subIO
	var err error
	if u == v.lt.d {
		err = v.readParityPieceSpan(sp, z, s, 0, need, buf, &futs, nil)
	} else {
		err = v.readUnitPieceSpan(sp, z, s, u, 0, need, buf, &futs, nil)
	}
	if err != nil {
		return nil, err
	}
	if err := v.awaitReads(futs); err != nil {
		return nil, err
	}
	return buf, nil
}
