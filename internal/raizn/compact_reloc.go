package raizn

import (
	"raizn/internal/zns"
)

// §5.2: "It is possible for the metadata zone to run out of space due to
// too many remapped stripe units, so if the number of remappings passes a
// user-modifiable threshold, RAIZN rebuilds the affected physical zones
// during initialization. All data is copied from the affected physical
// zone into a swap zone, the zone is reset, and then the data is copied
// back with the remapped stripe unit written to the correct address."
//
// This implementation rewrites each affected physical zone from the
// volume's own redundant state (relocation overlays + parity) rather
// than a literal swap-zone copy: the reconstructed content is identical,
// and a crash at any point mid-rewrite leaves the zone recoverable
// through the standard stripe-hole repair — every sector erased by the
// reset is still covered by parity on the other devices, so no separate
// operation log is required for resumability.

// compactRemappedZones runs during mount, after zone recovery and before
// metadata consolidation, so dropped relocation entries simply vanish
// from the fresh checkpoints.
func (v *Volume) compactRemappedZones() error {
	if v.cfg.RelocationThreshold <= 0 {
		return nil
	}
	if v.degraded >= 0 {
		return nil // no redundancy to rebuild from; defer to a later mount
	}
	for z := 0; z < v.lt.numZones; z++ {
		v.relocMu.Lock()
		count := len(v.reloc[z]) + len(v.parityReloc[z])
		v.relocMu.Unlock()
		if count < v.cfg.RelocationThreshold {
			continue
		}
		if err := v.compactZone(z); err != nil {
			return err
		}
	}
	return nil
}

// compactZone rewrites every physical zone of logical zone z that holds
// relocated fragments (or crash debris), placing all data at its
// arithmetic location, then drops the relocation entries.
func (v *Volume) compactZone(z int) error {
	lz := v.zones[z]
	wp := lz.wp

	// Which devices are affected? Any holding a fragment payload or any
	// whose physical fill deviates from the arithmetic expectation.
	affected := map[int]bool{}
	v.relocMu.Lock()
	for _, e := range v.reloc[z] {
		// The fragment shadows the arithmetic home of [startLBA,endLBA):
		// the AFFECTED device is the one holding that range's unit.
		affected[v.lt.locate(e.startLBA).dev] = true
	}
	for s := range v.parityReloc[z] {
		affected[v.lt.parityDev(z, s)] = true
	}
	v.relocMu.Unlock()
	for i := range v.devs {
		if v.devs[i] == nil {
			continue
		}
		fill, _ := v.physFill(i, z)
		if fill != v.expectedPhysFill(z, i, wp) {
			affected[i] = true
		}
	}

	ss := int64(v.sectorSize)
	su := v.lt.su
	stripeSec := v.lt.stripeSectors()
	for dev := range affected {
		d := v.devs[dev]
		if d == nil {
			continue
		}
		// Reconstruct the device's correct zone content from the
		// volume's logical state (reads use the relocation overlays).
		target := v.expectedPhysFill(z, dev, wp)
		content := make([]byte, target*ss)
		nStripes := (wp + stripeSec - 1) / stripeSec
		var off int64
		for s := int64(0); s < nStripes && off < target; s++ {
			g := clampI64(wp-s*stripeSec, 0, stripeSec)
			u := v.lt.unitOfDev(z, s, dev)
			var piece int64
			if u >= 0 {
				piece = clampI64(g-int64(u)*su, 0, su)
				if piece > 0 {
					var futs []subIO
					if err := v.readUnitPiece(z, s, u, 0, piece, content[off*ss:(off+piece)*ss], &futs); err != nil {
						return err
					}
					if err := v.awaitReads(futs); err != nil {
						return err
					}
				}
			} else {
				// Parity unit: full stripes carry su; the ZRWA mode
				// (or a finished zone) carries the prefix.
				if g == stripeSec {
					piece = su
				} else if v.cfg.ParityMode == PPZRWA || lz.state == zns.ZoneFull {
					piece = min(g, su)
				}
				if piece > 0 {
					var futs []subIO
					buf := content[off*ss : (off+piece)*ss]
					if err := v.readParityPiece(z, s, 0, piece, buf, &futs); err != nil {
						return err
					}
					if err := v.awaitReads(futs); err != nil {
						return err
					}
				}
			}
			off += piece
		}

		// Reset and rewrite. A crash here leaves this device's zone
		// short; the next mount repairs it stripe by stripe from parity
		// (single-device hole), so no operation WAL is needed.
		if err := d.ResetZone(z).Wait(); err != nil {
			return err
		}
		if target > 0 {
			if err := d.Write(d.ZoneStart(z), content[:target*ss], 0).Wait(); err != nil {
				return err
			}
		}
		if lz.state == zns.ZoneFull {
			if err := d.FinishZone(z).Wait(); err != nil {
				return err
			}
		}
		if err := d.Flush().Wait(); err != nil {
			return err
		}
	}

	// Everything now lives at its arithmetic home.
	v.dropRelocEntries(z)
	lz.remapped = false
	return nil
}
