package raizn

import (
	"testing"

	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// buildRemappedZone puts zone 0 into the Figure-1 aftermath: truncated at
// one stripe with persisted debris, then rewritten so fragments exist.
func buildRemappedZone(t *testing.T, c *vclock.Clock, devs []*zns.Device, cfg Config) *Volume {
	t.Helper()
	v, err := Create(c, devs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustWriteV(t, v, 0, 64, 0)
	v.Flush()
	mustWriteV(t, v, 64, 48, 0)
	d0 := v.lt.dataDev(0, 1, 0)
	d1 := v.lt.dataDev(0, 1, 1)
	for i, d := range devs {
		m := map[int]int64{}
		for z := 0; z < d.Config().NumZones; z++ {
			zd := d.Zone(z)
			m[z] = zd.WP - d.ZoneStart(z)
		}
		if i == d0 || i == d1 {
			m[0] = 16
		}
		if i == v.lt.parityDev(0, 1) {
			for mz := 0; mz < v.lt.mdZones; mz++ {
				z := v.lt.mdZoneIndex(mz)
				zd := d.Zone(z)
				m[z] = zd.PersistedWP - d.ZoneStart(z)
			}
		}
		d.PowerLossAt(m)
	}
	v2, err := Mount(c, devs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustWriteV(t, v2, 64, 128, 0) // relocates the collision, fills stripes 1-2
	if v2.RelocationCount() == 0 {
		t.Fatal("setup produced no relocations")
	}
	if err := v2.Flush(); err != nil {
		t.Fatal(err)
	}
	return v2
}

func TestRelocationThresholdCompactsAtMount(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		devs := newTestDevices(c, 5)
		cfg := DefaultConfig()
		cfg.RelocationThreshold = 1 // compact on the first fragment
		buildRemappedZone(t, c, devs, cfg)

		v3, err := Mount(c, devs, cfg)
		if err != nil {
			t.Fatalf("compacting mount: %v", err)
		}
		if v3.RelocationCount() != 0 {
			t.Errorf("fragments remain after compaction: %d", v3.RelocationCount())
		}
		if v3.Zone(0).Remapped {
			t.Error("zone still flagged remapped after compaction")
		}
		checkReadV(t, v3, 0, 192)

		// The data is now at its arithmetic home: degraded reads work
		// even though the fragment payloads (which lived on specific
		// devices) are gone.
		v3.FailDevice(v3.lt.dataDev(0, 1, 2))
		checkReadV(t, v3, 0, 192)
	})
}

func TestRelocationBelowThresholdLeftAlone(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		devs := newTestDevices(c, 5)
		cfg := DefaultConfig()
		cfg.RelocationThreshold = 100 // never triggers here
		buildRemappedZone(t, c, devs, cfg)

		v3, err := Mount(c, devs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if v3.RelocationCount() == 0 {
			t.Error("fragments unexpectedly compacted below threshold")
		}
		checkReadV(t, v3, 0, 192)
	})
}

func TestCompactionSurvivesSubsequentCrash(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		devs := newTestDevices(c, 5)
		cfg := DefaultConfig()
		cfg.RelocationThreshold = 1
		buildRemappedZone(t, c, devs, cfg)

		v3, err := Mount(c, devs, cfg) // compacts
		if err != nil {
			t.Fatal(err)
		}
		checkReadV(t, v3, 0, 192)
		mustWriteV(t, v3, 192, 30, 0)
		v3.Flush()
		for _, d := range devs {
			d.PowerLoss(nil)
		}
		v4, err := Mount(c, devs, cfg)
		if err != nil {
			t.Fatalf("mount after post-compaction crash: %v", err)
		}
		if wp := v4.Zone(0).WP; wp < 222 {
			t.Errorf("WP=%d, want >= 222", wp)
		}
		checkReadV(t, v4, 0, 222)
	})
}
