package raizn

import (
	"math/rand"
	"testing"

	"raizn/internal/obs"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// TestCrashJournalExplainsRecoveredState is the journal/recovery property
// test: after a random workload, a random power loss, and a remount,
// (1) every byte surviving on any device is explained by a journaled
// durable event — no zone's write pointer exceeds the largest journaled
// write end since its last reset — and (2) the recovered logical state
// sits between the workload's durable lower bound and its written upper
// bound, with the whole prefix readable and intact.
func TestCrashJournalExplainsRecoveredState(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := vclock.New()
		c.Run(func() {
			devs := newTestDevices(c, 5)
			j := obs.NewJournal(c, obs.JournalConfig{Capacity: 1 << 15})
			j.Enable() // before Create: superblock writes must be explained too
			cfg := DefaultConfig()
			cfg.Journal = j
			v, err := Create(c, devs, cfg)
			if err != nil {
				t.Fatalf("seed %d: Create: %v", seed, err)
			}

			rng := rand.New(rand.NewSource(seed))
			zs := v.ZoneSectors()
			type zoneTruth struct {
				wp       int64
				flushed  int64
				finished bool
			}
			var truth [2]zoneTruth
			for step := 0; step < 30; step++ {
				z := rng.Intn(2)
				switch k := rng.Intn(10); {
				case k < 6: // sequential write at the zone's write pointer
					if truth[z].finished || truth[z].wp >= zs {
						continue
					}
					n := int64(1 + rng.Intn(40))
					if truth[z].wp+n > zs {
						n = zs - truth[z].wp
					}
					mustWriteV(t, v, int64(z)*zs+truth[z].wp, int(n), 0)
					truth[z].wp += n
				case k < 8: // volume flush: everything written becomes durable
					if err := v.Flush(); err != nil {
						t.Fatalf("seed %d: Flush: %v", seed, err)
					}
					truth[0].flushed = truth[0].wp
					truth[1].flushed = truth[1].wp
				case k == 8: // zone reset
					if err := v.ResetZone(z); err != nil {
						t.Fatalf("seed %d: ResetZone(%d): %v", seed, z, err)
					}
					truth[z] = zoneTruth{}
				default: // zone finish: seals and persists the zone
					if truth[z].finished {
						continue
					}
					if err := v.FinishZone(z); err != nil {
						t.Fatalf("seed %d: FinishZone(%d): %v", seed, z, err)
					}
					truth[z].finished = true
					truth[z].flushed = truth[z].wp
				}
			}

			for _, d := range devs {
				d.PowerLoss(rng)
			}
			if n := j.Dropped(); n > 0 {
				t.Fatalf("seed %d: journal dropped %d events; raise capacity", seed, n)
			}

			// (1) Journal explains every surviving device byte: per (device,
			// zone), the post-crash write pointer cannot exceed the largest
			// journaled write end since that zone's last journaled reset.
			type key struct{ dev, zone int }
			maxEnd := map[key]int64{}
			finished := map[key]bool{}
			for _, e := range j.Events() {
				k := key{int(e.Src), int(e.Zone)}
				switch e.Type {
				case obs.EvDevWrite:
					if e.C > maxEnd[k] {
						maxEnd[k] = e.C
					}
				case obs.EvZoneReset:
					maxEnd[k] = 0
					finished[k] = false
				case obs.EvZoneFinish:
					finished[k] = true
				}
			}
			for i, d := range devs {
				dc := d.Config()
				for z := 0; z < dc.NumZones; z++ {
					k := key{i, z}
					zd := d.Zone(z)
					if zd.State == zns.ZoneFull && finished[k] {
						continue // finished zones report WP at capacity
					}
					rel := zd.WP - d.ZoneStart(z)
					if rel > maxEnd[k] {
						t.Fatalf("seed %d: dev %d zone %d: wp %d survives but journal explains only %d",
							seed, i, z, rel, maxEnd[k])
					}
				}
			}

			// (2) Recovery lands between the durable lower bound and the
			// written upper bound, with the prefix intact.
			v2, err := Mount(c, devs, DefaultConfig())
			if err != nil {
				t.Fatalf("seed %d: Mount: %v", seed, err)
			}
			for z := 0; z < 2; z++ {
				wp := v2.Zone(z).WP - int64(z)*zs
				if wp < truth[z].flushed {
					t.Fatalf("seed %d: zone %d lost durable data: wp %d < flushed %d",
						seed, z, wp, truth[z].flushed)
				}
				if wp > truth[z].wp {
					t.Fatalf("seed %d: zone %d has phantom data: wp %d > written %d",
						seed, z, wp, truth[z].wp)
				}
				if wp > 0 {
					checkReadV(t, v2, int64(z)*zs, int(wp))
				}
				if truth[z].finished && v2.Zone(z).State != zns.ZoneFull {
					t.Fatalf("seed %d: finished zone %d recovered as %v",
						seed, z, v2.Zone(z).State)
				}
			}
		})
	}
}
