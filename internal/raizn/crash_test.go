package raizn

import (
	"bytes"
	"math/rand"
	"testing"

	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// remount simulates mount-after-reboot over the same devices.
func remount(t *testing.T, c *vclock.Clock, devs []*zns.Device) *Volume {
	t.Helper()
	v, err := Mount(c, devs, DefaultConfig())
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	return v
}

func TestMountCleanVolume(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 100, 0)
		zs := v.ZoneSectors()
		mustWriteV(t, v, 2*zs, int(zs), 0) // full zone
		if err := v.Flush(); err != nil {
			t.Fatal(err)
		}
		v2 := remount(t, c, devs)
		if wp := v2.Zone(0).WP; wp != 100 {
			t.Errorf("zone0 WP = %d, want 100", wp)
		}
		if st := v2.Zone(2).State; st != zns.ZoneFull {
			t.Errorf("zone2 state = %v, want full", st)
		}
		checkReadV(t, v2, 0, 100)
		checkReadV(t, v2, 2*zs, int(zs))
	})
}

func TestMountShuffledDeviceOrder(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 200, 0)
		v.Flush()
		shuffled := []*zns.Device{devs[3], devs[0], devs[4], devs[2], devs[1]}
		v2 := remount(t, c, shuffled)
		checkReadV(t, v2, 0, 200)
	})
}

func TestMountAfterAppendContinuesWrites(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 37, 0) // partial stripe tail
		v.Flush()
		v2 := remount(t, c, devs)
		// The rebuilt stripe buffer must let appends continue with
		// correct parity.
		mustWriteV(t, v2, 37, 27, 0) // completes the stripe
		mustWriteV(t, v2, 64, 10, 0)
		v2.Flush()
		v3 := remount(t, c, devs)
		checkReadV(t, v3, 0, 74)
	})
}

func TestCrashLosesNothingFlushed(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0)
		if err := v.Flush(); err != nil {
			t.Fatal(err)
		}
		mustWriteV(t, v, 64, 64, 0) // unflushed
		for _, d := range devs {
			d.PowerLoss(nil) // keep only flushed data
		}
		v2 := remount(t, c, devs)
		if wp := v2.Zone(0).WP; wp < 64 {
			t.Errorf("flushed data lost: WP = %d", wp)
		}
		checkReadV(t, v2, 0, 64)
	})
}

func TestCrashRandomizedAlwaysReadablePrefix(t *testing.T) {
	// Property: after a random crash, the recovered zone exposes a
	// readable prefix of exactly what was written, whatever the cut.
	for seed := int64(1); seed <= 12; seed++ {
		c := vclock.New()
		c.Run(func() {
			devs := newTestDevices(c, 5)
			v, err := Create(c, devs, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			// Random mix of write sizes, some flushed.
			lba := int64(0)
			for lba < 200 {
				n := int64(1 + rng.Intn(40))
				if lba+n > 200 {
					n = 200 - lba
				}
				mustWriteV(t, v, lba, int(n), 0)
				lba += n
				if rng.Intn(3) == 0 {
					v.Flush()
				}
			}
			for _, d := range devs {
				d.PowerLoss(rng)
			}
			v2, err := Mount(c, devs, DefaultConfig())
			if err != nil {
				t.Fatalf("seed %d: Mount: %v", seed, err)
			}
			wp := v2.Zone(0).WP
			if wp > 200 {
				t.Fatalf("seed %d: WP %d beyond written data", seed, wp)
			}
			if wp > 0 {
				buf := make([]byte, wp*int64(v2.SectorSize()))
				if err := v2.Read(0, buf); err != nil {
					t.Fatalf("seed %d: read of recovered prefix: %v", seed, err)
				}
				if !bytes.Equal(buf, lbaPattern(v2, 0, int(wp))) {
					t.Fatalf("seed %d: recovered prefix corrupted (wp=%d)", seed, wp)
				}
			}
		})
	}
}

func TestCrashStripeHoleRepairedByParity(t *testing.T) {
	// A complete stripe (parity written) where one device lost its data
	// unit: recovery must rebuild the missing unit from parity.
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0) // one full stripe
		// Lose device holding unit 1; everything else persists.
		victim := v.lt.dataDev(0, 0, 1)
		cuts := make(map[*zns.Device]map[int]int64)
		for i, d := range devs {
			m := map[int]int64{}
			for z := 0; z < d.Config().NumZones; z++ {
				zd := d.Zone(z)
				m[z] = zd.WP - d.ZoneStart(z) // persist everything...
			}
			if i == victim {
				m[0] = 0 // ...except the victim's data zone 0
			}
			cuts[d] = m
		}
		for _, d := range devs {
			d.PowerLossAt(cuts[d])
		}
		v2 := remount(t, c, devs)
		if wp := v2.Zone(0).WP; wp != 64 {
			t.Errorf("WP after repair = %d, want 64", wp)
		}
		checkReadV(t, v2, 0, 64)
		// The repaired unit must be back on the victim device itself.
		row := make([]byte, 16*v2.SectorSize())
		if err := devs[victim].Read(0, row).Wait(); err != nil {
			t.Fatalf("victim device read: %v", err)
		}
		if !bytes.Equal(row, lbaPattern(v2, 16, 16)) {
			t.Error("victim device does not hold the reconstructed unit")
		}
	})
}

func TestCrashParityHoleRecomputed(t *testing.T) {
	// Data complete, parity lost: the write hole. Recovery recomputes
	// parity so a later device failure is survivable.
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 128, 0) // two full stripes
		pdev := v.lt.parityDev(0, 0)
		cuts := map[int]int64{0: 16} // parity device zone 0: keep only stripe 0's slot? no:
		// stripe 0's unit on pdev is parity at [0,16); stripe 1 data on
		// pdev at [16,32). Cut at 0 loses both.
		_ = cuts
		for i, d := range devs {
			m := map[int]int64{}
			for z := 0; z < d.Config().NumZones; z++ {
				zd := d.Zone(z)
				m[z] = zd.WP - d.ZoneStart(z)
			}
			if i == pdev {
				m[0] = 0
			}
			d.PowerLossAt(m)
		}
		v2 := remount(t, c, devs)
		checkReadV(t, v2, 0, 128)
		// Parity must have been rewritten: fail another device and read
		// through reconstruction.
		victim := v2.lt.dataDev(0, 0, 0)
		v2.FailDevice(victim)
		checkReadV(t, v2, 0, 128)
	})
}

func TestCrashUnrecoverableHoleTruncatesAndRelocates(t *testing.T) {
	// Figure 1's scenario: a partial stripe where one device persisted
	// its unit but two earlier units are missing. The stripe cannot be
	// repaired; the zone is truncated and future conflicting writes are
	// relocated to the metadata zone.
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0) // stripe 0 complete
		v.Flush()
		mustWriteV(t, v, 64, 48, 0) // stripe 1: units 0,1,2 of 4
		// Persist only unit 2 of stripe 1 (device d2); units 0 and 1
		// are lost. The partial parity log is also lost (cut the parity
		// device's metadata zones to their flushed prefix).
		d0 := v.lt.dataDev(0, 1, 0)
		d1 := v.lt.dataDev(0, 1, 1)
		for i, d := range devs {
			m := map[int]int64{}
			for z := 0; z < d.Config().NumZones; z++ {
				zd := d.Zone(z)
				m[z] = zd.WP - d.ZoneStart(z)
			}
			if i == d0 || i == d1 {
				m[0] = 16 // stripe 0's unit only
			}
			if i == v.lt.parityDev(0, 1) {
				// Drop the unflushed pp log for stripe 1.
				for mz := 0; mz < v.lt.mdZones; mz++ {
					z := v.lt.mdZoneIndex(mz)
					zd := d.Zone(z)
					m[z] = zd.PersistedWP - d.ZoneStart(z)
				}
			}
			d.PowerLossAt(m)
		}
		v2 := remount(t, c, devs)
		wp := v2.Zone(0).WP
		if wp != 64 {
			t.Fatalf("WP after truncation = %d, want 64", wp)
		}
		if !v2.Zone(0).Remapped {
			t.Error("zone not flagged remapped despite debris")
		}
		checkReadV(t, v2, 0, 64)

		// Rewriting the truncated range must succeed (relocating the
		// collision with the persisted debris) and read back correctly.
		mustWriteV(t, v2, 64, 64, 0)
		checkReadV(t, v2, 0, 128)
		if v2.RelocationCount() == 0 {
			t.Error("no relocation entries created for burned PBAs")
		}
		// And survive another remount.
		v2.Flush()
		v3 := remount(t, c, devs)
		checkReadV(t, v3, 0, 128)
	})
}

func TestPartialZoneResetCompletedByWAL(t *testing.T) {
	// Crash mid-reset: some physical zones reset, others not. The WAL
	// must finish the job on mount.
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 256, 0) // full zone 0
		v.Flush()

		// Simulate the crash *inside* ResetZone: WAL persisted, then
		// only a subset of devices processed their reset.
		z := 0
		gen := v.Generation(z)
		for _, dev := range []int{v.lt.dataDev(z, 0, 0), v.lt.parityDev(z, 0)} {
			rec := &record{
				typ:      recResetWAL,
				startLBA: v.lt.zoneStart(z),
				endLBA:   v.lt.zoneStart(z) + v.lt.zoneSectors(),
				gen:      gen,
				inline:   encodeResetWAL(z),
			}
			fut, _, err := v.md[dev].append(rec, zns.FUA)
			if err != nil {
				t.Fatal(err)
			}
			if err := fut.Wait(); err != nil {
				t.Fatal(err)
			}
		}
		// Two of five devices complete their reset before the crash.
		devs[0].ResetZone(z).Wait()
		devs[1].ResetZone(z).Wait()
		for _, d := range devs {
			d.PowerLoss(nil)
		}

		v2 := remount(t, c, devs)
		if st := v2.Zone(0).State; st != zns.ZoneEmpty {
			t.Errorf("zone state = %v, want empty (WAL replay)", st)
		}
		if g := v2.Generation(0); g <= gen {
			t.Errorf("generation = %d, want > %d", g, gen)
		}
		// Physical zones all empty.
		for i, d := range devs {
			if zd := d.Zone(0); zd.WP != d.ZoneStart(0) {
				t.Errorf("device %d zone 0 not reset (WP=%d)", i, zd.WP)
			}
		}
		// Zone fully rewritable.
		mustWriteV(t, v2, 0, 64, 0)
		checkReadV(t, v2, 0, 64)
	})
}

func TestStaleMetadataIgnoredAfterReset(t *testing.T) {
	// Partial-parity and reloc records from a previous generation must
	// be discarded after the zone is reset.
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 10, 0) // generates a pp log for gen 0
		if err := v.ResetZone(0); err != nil {
			t.Fatal(err)
		}
		mustWriteV(t, v, 0, 20, 0) // new generation's data
		v.Flush()
		v2 := remount(t, c, devs)
		if wp := v2.Zone(0).WP; wp != 20 {
			t.Errorf("WP = %d, want 20 (stale metadata leaked?)", wp)
		}
		checkReadV(t, v2, 0, 20)
	})
}

func TestMountBumpsGenerationOfEmptyZones(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 10, 0)
		v.Flush()
		g1 := v.Generation(1) // empty zone
		v2 := remount(t, c, devs)
		if g := v2.Generation(1); g != g1+1 {
			t.Errorf("empty zone generation = %d, want %d", g, g1+1)
		}
		if g := v2.Generation(0); g != v.Generation(0) {
			t.Errorf("non-empty zone generation changed")
		}
	})
}

func TestMetadataGCSurvivesChurn(t *testing.T) {
	// Enough partial-parity churn to force metadata GC several times;
	// everything must still recover after remount.
	c := vclock.New()
	c.Run(func() {
		devCfg := testDevConfig()
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(c, devCfg)
		}
		v, err := Create(c, devs, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		// Each 1-sector write produces a 2-sector pp record; the 64-
		// sector pp zone forces GC every ~32 writes.
		zs := v.ZoneSectors()
		total := 0
		for z := int64(0); z < 4; z++ {
			for i := int64(0); i < 60; i++ {
				mustWriteV(t, v, z*zs+i, 1, 0)
				total++
			}
		}
		v.Flush()
		v2 := remount(t, c, devs)
		for z := int64(0); z < 4; z++ {
			if wp := v2.Zone(int(z)).WP - z*zs; wp != 60 {
				t.Errorf("zone %d WP = %d, want 60", z, wp)
			}
			checkReadV(t, v2, z*zs, 60)
		}
	})
}

func TestDoubleCrashIdempotentRecovery(t *testing.T) {
	// Crash, recover, crash again immediately, recover again.
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 100, 0)
		rng := rand.New(rand.NewSource(42))
		for _, d := range devs {
			d.PowerLoss(rng)
		}
		v2 := remount(t, c, devs)
		wp2 := v2.Zone(0).WP
		for _, d := range devs {
			d.PowerLoss(rng)
		}
		v3 := remount(t, c, devs)
		wp3 := v3.Zone(0).WP
		if wp3 < wp2 {
			t.Errorf("recovered WP regressed: %d -> %d", wp2, wp3)
		}
		if wp3 > 0 {
			checkReadV(t, v3, 0, int(wp3))
		}
	})
}
