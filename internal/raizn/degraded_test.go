package raizn

import (
	"bytes"
	"testing"

	"raizn/internal/vclock"
	"raizn/internal/zns"
)

func TestDegradedReadFullStripes(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 256, 0) // full zone
		if err := v.FailDevice(2); err != nil {
			t.Fatal(err)
		}
		if v.Degraded() != 2 {
			t.Errorf("Degraded() = %d", v.Degraded())
		}
		checkReadV(t, v, 0, 256)
		// Odd-granularity reads across the missing unit.
		checkReadV(t, v, 3, 50)
		checkReadV(t, v, 100, 17)
	})
}

func TestDegradedReadPartialStripe(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 40, 0) // partial stripe: lives in the buffer
		v.FailDevice(v.lt.dataDev(0, 0, 1))
		checkReadV(t, v, 0, 40)
	})
}

func TestDegradedWriteContinues(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 30, 0)
		v.FailDevice(0)
		mustWriteV(t, v, 30, 100, 0) // degraded writes omit device 0
		checkReadV(t, v, 0, 130)
	})
}

func TestDegradedWriteThenRemountDegraded(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		v.FailDevice(1)
		mustWriteV(t, v, 0, 128, 0)
		v.Flush()
		// Remount without device 1 entirely.
		avail := []*zns.Device{devs[0], devs[2], devs[3], devs[4]}
		v2, err := Mount(c, avail, DefaultConfig())
		if err != nil {
			t.Fatalf("degraded Mount: %v", err)
		}
		if v2.Degraded() != 1 {
			t.Errorf("Degraded() = %d, want 1", v2.Degraded())
		}
		checkReadV(t, v2, 0, 128)
	})
}

func TestDegradedMountPartialStripeUsesPartialParity(t *testing.T) {
	// §5.1's recovery story: crash with a partial stripe, then the
	// device holding one of its data units fails. The stripe buffer is
	// reconstructed from the partial-parity logs.
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 40, 0) // units 0,1 full; unit 2 half
		v.Flush()
		victim := v.lt.dataDev(0, 0, 1)
		avail := make([]*zns.Device, 0, 4)
		for i, d := range devs {
			if i != victim {
				avail = append(avail, d)
			}
		}
		v2, err := Mount(c, avail, DefaultConfig())
		if err != nil {
			t.Fatalf("Mount: %v", err)
		}
		if wp := v2.Zone(0).WP; wp != 40 {
			t.Errorf("WP = %d, want 40 (from pp logs)", wp)
		}
		checkReadV(t, v2, 0, 40)
		// Appends must continue correctly (buffer reconstructed).
		mustWriteV(t, v2, 40, 24, 0) // completes the stripe
		checkReadV(t, v2, 0, 64)
	})
}

func TestSecondFailureGoesReadOnly(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0)
		v.FailDevice(0)
		if err := v.FailDevice(1); err != ErrDegraded {
			t.Errorf("second failure error = %v", err)
		}
		if !v.ReadOnly() {
			t.Error("volume should be read-only after double failure")
		}
		if err := v.Write(64, lbaPattern(v, 64, 1), 0); err != ErrReadOnly {
			t.Errorf("write on read-only volume error = %v", err)
		}
	})
}

func TestRebuildRestoresRedundancy(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		zs := v.ZoneSectors()
		mustWriteV(t, v, 0, int(zs), 0) // full zone
		mustWriteV(t, v, zs, 100, 0)    // partial zone
		mustWriteV(t, v, 2*zs, 37, 0)   // partial stripe tail
		v.FailDevice(3)
		checkReadV(t, v, 0, int(zs))

		replacement := zns.NewDevice(c, testDevConfig())
		stats, err := v.ReplaceDevice(replacement)
		if err != nil {
			t.Fatalf("ReplaceDevice: %v", err)
		}
		if v.Degraded() != -1 {
			t.Errorf("still degraded after rebuild: %d", v.Degraded())
		}
		if stats.Zones == 0 || stats.BytesWritten == 0 {
			t.Errorf("suspicious rebuild stats: %+v", stats)
		}
		checkReadV(t, v, 0, int(zs))
		checkReadV(t, v, zs, 100)
		checkReadV(t, v, 2*zs, 37)

		// Redundancy is back: fail a different device and read again.
		v.FailDevice(0)
		checkReadV(t, v, 0, int(zs))
		checkReadV(t, v, zs, 100)
		checkReadV(t, v, 2*zs, 37)
	})
}

func TestRebuildOnlyCopiesValidData(t *testing.T) {
	// RAIZN's TTR advantage (§6.2): rebuild writes scale with valid
	// data, not device capacity.
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0) // one stripe in one zone; rest empty
		v.FailDevice(2)
		replacement := zns.NewDevice(c, testDevConfig())
		stats, err := v.ReplaceDevice(replacement)
		if err != nil {
			t.Fatal(err)
		}
		// Device 2 held exactly one stripe unit (16 sectors).
		want := int64(16 * v.SectorSize())
		if stats.BytesWritten != want {
			t.Errorf("rebuild wrote %d bytes, want %d", stats.BytesWritten, want)
		}
	})
}

func TestRebuildTimeScalesWithData(t *testing.T) {
	measure := func(fillZones int) (elapsed int64) {
		c := vclock.New()
		c.Run(func() {
			devs := newTestDevices(c, 5)
			v, err := Create(c, devs, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			zs := v.ZoneSectors()
			for z := 0; z < fillZones; z++ {
				mustWriteV(t, v, int64(z)*zs, int(zs), 0)
			}
			v.FailDevice(1)
			stats, err := v.ReplaceDevice(zns.NewDevice(c, testDevConfig()))
			if err != nil {
				t.Fatal(err)
			}
			elapsed = int64(stats.Elapsed)
		})
		return elapsed
	}
	t1 := measure(1)
	t4 := measure(4)
	if t4 < 2*t1 {
		t.Errorf("rebuild time does not scale with data: 1 zone %d, 4 zones %d", t1, t4)
	}
}

func TestWritesDuringRebuildStayConsistent(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		zs := v.ZoneSectors()
		for z := int64(0); z < 4; z++ {
			mustWriteV(t, v, z*zs, int(zs), 0)
		}
		mustWriteV(t, v, 4*zs, 20, 0)
		v.FailDevice(4)

		replacement := zns.NewDevice(c, testDevConfig())
		done := c.NewFuture()
		c.Go(func() {
			_, err := v.ReplaceDevice(replacement)
			done.Complete(err)
		})
		// Concurrent writes while the rebuild runs.
		for i := int64(0); i < 10; i++ {
			mustWriteV(t, v, 4*zs+20+i*4, 4, 0)
		}
		if err := done.Wait(); err != nil {
			t.Fatalf("rebuild: %v", err)
		}
		for z := int64(0); z < 4; z++ {
			checkReadV(t, v, z*zs, int(zs))
		}
		checkReadV(t, v, 4*zs, 60)
		// Verify redundancy of the data written during rebuild.
		v.FailDevice(2)
		checkReadV(t, v, 4*zs, 60)
	})
}

func TestRebuildOfRemappedZone(t *testing.T) {
	// A zone with relocated fragments on a surviving device must remain
	// readable after an unrelated device is rebuilt; fragments on the
	// dead device are re-materialized at their arithmetic location.
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0)
		v.Flush()
		mustWriteV(t, v, 64, 48, 0)
		// Crash losing units 0,1 of stripe 1 but keeping unit 2 → zone
		// truncated to 64 and remapped (same scenario as the crash
		// test).
		d0 := v.lt.dataDev(0, 1, 0)
		d1 := v.lt.dataDev(0, 1, 1)
		for i, d := range devs {
			m := map[int]int64{}
			for z := 0; z < d.Config().NumZones; z++ {
				zd := d.Zone(z)
				m[z] = zd.WP - d.ZoneStart(z)
			}
			if i == d0 || i == d1 {
				m[0] = 16
			}
			if i == v.lt.parityDev(0, 1) {
				for mz := 0; mz < v.lt.mdZones; mz++ {
					z := v.lt.mdZoneIndex(mz)
					zd := d.Zone(z)
					m[z] = zd.PersistedWP - d.ZoneStart(z)
				}
			}
			d.PowerLossAt(m)
		}
		v2 := remount(t, c, devs)
		mustWriteV(t, v2, 64, 64, 0) // relocates the collision
		if v2.RelocationCount() == 0 {
			t.Fatal("expected relocations")
		}
		// Now fail and rebuild a device.
		v2.FailDevice(d0)
		replacement := zns.NewDevice(c, testDevConfig())
		if _, err := v2.ReplaceDevice(replacement); err != nil {
			t.Fatalf("rebuild: %v", err)
		}
		checkReadV(t, v2, 0, 128)
		v2.Flush()
		after := append([]*zns.Device(nil), devs...)
		after[d0] = replacement
		v3 := remount(t, c, after)
		checkReadV(t, v3, 0, 128)
	})
}

func TestDegradedDataMatchesParityReconstruction(t *testing.T) {
	// Cross-check: normal read vs degraded read of identical ranges.
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 200, 0)
		normal := make([]byte, 200*v.SectorSize())
		if err := v.Read(0, normal); err != nil {
			t.Fatal(err)
		}
		v.FailDevice(1)
		degraded := make([]byte, 200*v.SectorSize())
		if err := v.Read(0, degraded); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(normal, degraded) {
			t.Error("degraded read differs from normal read")
		}
	})
}
