package raizn

import (
	"errors"

	"raizn/internal/obs"
	"raizn/internal/ppengine"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// loggedEngine adapts the paper's partial-parity logging (§5.1 and the
// §5.4 ParityMode variants) to the ppengine.Engine interface. It is a
// thin shim over the volume's metadata managers: Persist appends a
// recPartialParity record to the parity metadata zone of the target
// device, exactly as the pre-engine write path did. Stripe lifecycle
// notifications are no-ops — logged records are reclaimed wholesale by
// the metadata garbage collector, and recovery filters stale ones by
// generation and stripe state.
type loggedEngine struct {
	v *Volume
}

func (le *loggedEngine) Kind() ppengine.Kind { return ppengine.Logged }

func (le *loggedEngine) InPlaceParityPrefix() bool {
	return le.v.cfg.ParityMode == PPZRWA
}

// Persist appends the image as a §5.1 log record. A failed parity
// device persists nothing (the data units carry the write, §4.2), which
// is success for the caller — there is nothing to fall back to.
func (le *loggedEngine) Persist(a ppengine.Append) (*vclock.Future, bool) {
	v := le.v
	m := v.mdm(a.Dev)
	if m == nil {
		return nil, true // device failed: degraded
	}
	rec := &record{
		typ:      recPartialParity,
		startLBA: a.StartLBA,
		endLBA:   a.EndLBA,
		gen:      a.Gen,
		payload:  a.Payload,
	}
	child := a.Span.Child(obs.OpMDAppend, a.Dev, a.StartLBA, int64(len(a.Payload)))
	var fut *vclock.Future
	var err error
	if v.cfg.ParityMode == PPInlineMeta {
		fut, _, err = m.appendMetaSpan(child, rec, zns.Flag(a.Flags))
	} else {
		fut, _, err = m.appendSpan(child, rec, zns.Flag(a.Flags))
	}
	if err != nil {
		child.End(err)
		if errors.Is(err, zns.ErrDeviceFailed) {
			v.noteDeviceError(a.Dev, err)
			return nil, true
		}
		return v.clk.Completed(err), true
	}
	return fut, true
}

func (le *loggedEngine) StripeClosed(zone int, stripe int64) {}
func (le *loggedEngine) ZoneReset(zone int)                  {}

// Scan returns nil: logged records surface through the ordinary
// metadata-zone scan at mount.
func (le *loggedEngine) Scan() ([]ppengine.Record, error) { return nil, nil }

// Stats derives the byte counters from the volume's layered WA
// accounting: every logged partial-parity byte is programmed to flash.
func (le *loggedEngine) Stats() ppengine.Stats {
	return ppengine.Stats{
		PermanentBytes: le.v.stats.waPPHeaderBytes.Load() + le.v.stats.waPPPayloadBytes.Load(),
	}
}

func (le *loggedEngine) Maintain() error { return nil }
func (le *loggedEngine) Format() error   { return nil }
