package raizn

import (
	"testing"

	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// TestAutoDegradeOnDeviceDeath kills a device out from under the volume
// (no FailDevice call): the next IO's sub-IO errors must fold into
// degraded mode and the IO must still succeed.
func TestAutoDegradeOnDeviceDeath(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0)
		devs[2].Fail() // the volume has not been told
		// Writes hit the dead device, tolerate it, and degrade.
		mustWriteV(t, v, 64, 64, 0)
		if v.Degraded() != 2 {
			t.Errorf("Degraded() = %d, want 2 (auto-detected)", v.Degraded())
		}
		checkReadV(t, v, 0, 128)
	})
}

// TestAutoDegradeOnReadError: the first read against a silently dead
// device returns an error and flips the volume to degraded; the retry
// takes the reconstruction path.
func TestAutoDegradeOnReadError(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0)
		devs[1].Fail()
		buf := make([]byte, 64*v.SectorSize())
		err := v.Read(0, buf)
		if err == nil && v.Degraded() != 1 {
			t.Fatalf("read succeeded without degrading (degraded=%d)", v.Degraded())
		}
		// Retry after the volume noticed the death.
		checkReadV(t, v, 0, 64)
		if v.Degraded() != 1 {
			t.Errorf("Degraded() = %d, want 1", v.Degraded())
		}
	})
}

// TestScrubTriggeredDegradeUnderLoad drives the monitor policy by hand:
// scrub passes accumulate per-device error counters from injected latent
// sectors while foreground IO runs concurrently; when the counter
// crosses the threshold the device is failed mid-workload. The
// foreground IO, the scrub repairs, and the degradation must all
// coexist (-race covers the interleavings).
func TestScrubTriggeredDegradeUnderLoad(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 512, 0) // fill zone 0
		if err := v.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}

		// Latent sectors on one device across three stripes of zone 0:
		// each scrub repair attributes an error to that device.
		const target = 2
		nErrs := 0
		for s := int64(0); s < 8 && nErrs < 3; s++ {
			for u := 0; u < v.lt.d; u++ {
				dev, pba := unitSectorPBA(v, 0, s, u, 0)
				if dev == target {
					if err := devs[dev].InjectReadError(pba); err != nil {
						t.Fatalf("InjectReadError: %v", err)
					}
					nErrs++
					break
				}
			}
		}
		if nErrs != 3 {
			t.Fatalf("placed %d latent sectors, want 3", nErrs)
		}

		// Foreground: writes into zone 1 racing the scrub below.
		fgDone := c.NewFuture()
		c.Go(func() {
			base := v.ZoneSectors()
			var err error
			for off := int64(0); off < 512 && err == nil; off += 16 {
				err = v.Write(base+off, lbaPattern(v, base+off, 16), 0)
			}
			fgDone.Complete(err)
		})

		// Scrub zone 0; apply the fail-threshold policy the monitor
		// would: 3 attributed errors fail the device.
		for s := int64(0); s < v.StripesPerZone() && v.Degraded() < 0; s++ {
			if _, err := v.ScrubStripe(0, s, true); err != nil {
				t.Fatalf("ScrubStripe(0, %d): %v", s, err)
			}
			re, corr := v.DeviceErrorCounters(target)
			if re+corr >= 3 {
				if err := v.FailDevice(target); err != nil {
					t.Fatalf("FailDevice: %v", err)
				}
			}
		}
		if v.Degraded() != target {
			re, corr := v.DeviceErrorCounters(target)
			t.Fatalf("Degraded() = %d, want %d (re=%d corr=%d)", v.Degraded(), target, re, corr)
		}
		if err := fgDone.Wait(); err != nil {
			t.Fatalf("foreground writes: %v", err)
		}
		// Everything reads back, served degraded where needed.
		checkReadV(t, v, 0, 512)
		checkReadV(t, v, v.ZoneSectors(), 512)
	})
}

// TestReplaceDeviceRejectsBadGeometry covers the rebuild abort path.
func TestReplaceDeviceRejectsBadGeometry(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0)
		v.FailDevice(0)
		bad := testDevConfig()
		bad.ZoneCap = 64 // mismatched
		bad.ZoneSize = 80
		if _, err := v.ReplaceDevice(zns.NewDevice(c, bad)); err == nil {
			t.Fatal("mismatched replacement accepted")
		}
		// Still degraded and still serving reads.
		if v.Degraded() != 0 {
			t.Errorf("Degraded() = %d, want 0", v.Degraded())
		}
		checkReadV(t, v, 0, 64)
		// A correct replacement still works afterwards.
		if _, err := v.ReplaceDevice(zns.NewDevice(c, testDevConfig())); err != nil {
			t.Fatalf("good replacement rejected: %v", err)
		}
		checkReadV(t, v, 0, 64)
	})
}

// TestReplaceOnHealthyArrayRejected covers the not-degraded error.
func TestReplaceOnHealthyArrayRejected(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		if _, err := v.ReplaceDevice(zns.NewDevice(c, testDevConfig())); err == nil {
			t.Error("replace on healthy array accepted")
		}
	})
}

// TestAccessors covers the remaining introspection surface.
func TestAccessors(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		if v.MaxOpenZones() <= 0 {
			t.Error("MaxOpenZones not positive")
		}
		mustWriteV(t, v, 0, 10, 0)
		zones := v.ReportZones()
		if len(zones) != v.NumZones() {
			t.Fatalf("ReportZones returned %d", len(zones))
		}
		if zones[0].State != zns.ZoneOpen {
			t.Errorf("zone 0 state = %v", zones[0].State)
		}
		fp := v.Footprint()
		if fp.Devices != 5 || fp.DataDevices != 4 || fp.StripeUnitBytes != 64<<10 {
			t.Errorf("footprint = %+v", fp)
		}
		if err := v.Unmount(); err != nil {
			t.Errorf("Unmount: %v", err)
		}
	})
}

// TestInsertRelocShadowing covers fragment replacement.
func TestInsertRelocShadowing(t *testing.T) {
	list := insertReloc(nil, relocEntry{startLBA: 10, endLBA: 20})
	list = insertReloc(list, relocEntry{startLBA: 30, endLBA: 40})
	list = insertReloc(list, relocEntry{startLBA: 5, endLBA: 25}) // shadows [10,20)
	if len(list) != 2 {
		t.Fatalf("len = %d, want 2 (shadowed fragment dropped)", len(list))
	}
	if list[0].startLBA != 5 || list[1].startLBA != 30 {
		t.Errorf("order wrong: %+v", list)
	}
}
