package raizn

import (
	"testing"

	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// TestAutoDegradeOnDeviceDeath kills a device out from under the volume
// (no FailDevice call): the next IO's sub-IO errors must fold into
// degraded mode and the IO must still succeed.
func TestAutoDegradeOnDeviceDeath(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0)
		devs[2].Fail() // the volume has not been told
		// Writes hit the dead device, tolerate it, and degrade.
		mustWriteV(t, v, 64, 64, 0)
		if v.Degraded() != 2 {
			t.Errorf("Degraded() = %d, want 2 (auto-detected)", v.Degraded())
		}
		checkReadV(t, v, 0, 128)
	})
}

// TestAutoDegradeOnReadError: the first read against a silently dead
// device returns an error and flips the volume to degraded; the retry
// takes the reconstruction path.
func TestAutoDegradeOnReadError(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0)
		devs[1].Fail()
		buf := make([]byte, 64*v.SectorSize())
		err := v.Read(0, buf)
		if err == nil && v.Degraded() != 1 {
			t.Fatalf("read succeeded without degrading (degraded=%d)", v.Degraded())
		}
		// Retry after the volume noticed the death.
		checkReadV(t, v, 0, 64)
		if v.Degraded() != 1 {
			t.Errorf("Degraded() = %d, want 1", v.Degraded())
		}
	})
}

// TestReplaceDeviceRejectsBadGeometry covers the rebuild abort path.
func TestReplaceDeviceRejectsBadGeometry(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0)
		v.FailDevice(0)
		bad := testDevConfig()
		bad.ZoneCap = 64 // mismatched
		bad.ZoneSize = 80
		if _, err := v.ReplaceDevice(zns.NewDevice(c, bad)); err == nil {
			t.Fatal("mismatched replacement accepted")
		}
		// Still degraded and still serving reads.
		if v.Degraded() != 0 {
			t.Errorf("Degraded() = %d, want 0", v.Degraded())
		}
		checkReadV(t, v, 0, 64)
		// A correct replacement still works afterwards.
		if _, err := v.ReplaceDevice(zns.NewDevice(c, testDevConfig())); err != nil {
			t.Fatalf("good replacement rejected: %v", err)
		}
		checkReadV(t, v, 0, 64)
	})
}

// TestReplaceOnHealthyArrayRejected covers the not-degraded error.
func TestReplaceOnHealthyArrayRejected(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		if _, err := v.ReplaceDevice(zns.NewDevice(c, testDevConfig())); err == nil {
			t.Error("replace on healthy array accepted")
		}
	})
}

// TestAccessors covers the remaining introspection surface.
func TestAccessors(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		if v.MaxOpenZones() <= 0 {
			t.Error("MaxOpenZones not positive")
		}
		mustWriteV(t, v, 0, 10, 0)
		zones := v.ReportZones()
		if len(zones) != v.NumZones() {
			t.Fatalf("ReportZones returned %d", len(zones))
		}
		if zones[0].State != zns.ZoneOpen {
			t.Errorf("zone 0 state = %v", zones[0].State)
		}
		fp := v.Footprint()
		if fp.Devices != 5 || fp.DataDevices != 4 || fp.StripeUnitBytes != 64<<10 {
			t.Errorf("footprint = %+v", fp)
		}
		if err := v.Unmount(); err != nil {
			t.Errorf("Unmount: %v", err)
		}
	})
}

// TestInsertRelocShadowing covers fragment replacement.
func TestInsertRelocShadowing(t *testing.T) {
	list := insertReloc(nil, relocEntry{startLBA: 10, endLBA: 20})
	list = insertReloc(list, relocEntry{startLBA: 30, endLBA: 40})
	list = insertReloc(list, relocEntry{startLBA: 5, endLBA: 25}) // shadows [10,20)
	if len(list) != 2 {
		t.Fatalf("len = %d, want 2 (shadowed fragment dropped)", len(list))
	}
	if list[0].startLBA != 5 || list[1].startLBA != 30 {
		t.Errorf("order wrong: %+v", list)
	}
}
