package raizn

// MetadataFootprint reports the persistent-location, per-update storage,
// and memory footprint of each RAIZN metadata type for this volume's
// geometry — the contents of the paper's Table 1.
type MetadataFootprint struct {
	SectorBytes      int
	StripeUnitBytes  int64
	DataDevices      int
	Devices          int
	LogicalZones     int
	PhysZoneCapBytes int64
	LogicalZoneBytes int64

	HeaderBytes             int   // per-record header sector
	RemappedUnitStorage     int64 // header + stripe unit, affected device only
	ZoneResetLogStorage     int64 // header sector, two devices
	GenCounterStorage       int64 // header sector per update, all devices
	GenCounterMemPerZone    float64
	PartialParityStorageMax int64 // header + <= stripe unit, parity device
	SuperblockStorage       int64 // header sector, all devices
	StripeBufferBytes       int64 // per buffer (D stripe units)
	StripeBuffersPerZone    int
	PersistBitmapPerZone    int64 // bytes, one bit per stripe unit
	ZoneDescriptorBytes     int   // per zone (physical and logical alike)
}

// Footprint computes the Table 1 quantities for this volume.
func (v *Volume) Footprint() MetadataFootprint {
	ss := int64(v.sectorSize)
	suBytes := v.lt.su * ss
	nSU := v.lt.zoneSectors() / v.lt.su
	return MetadataFootprint{
		SectorBytes:      v.sectorSize,
		StripeUnitBytes:  suBytes,
		DataDevices:      v.lt.d,
		Devices:          v.lt.n,
		LogicalZones:     v.lt.numZones,
		PhysZoneCapBytes: v.lt.physZoneCap * ss,
		LogicalZoneBytes: v.lt.zoneSectors() * ss,

		HeaderBytes:             v.sectorSize,
		RemappedUnitStorage:     ss + suBytes,
		ZoneResetLogStorage:     ss,
		GenCounterStorage:       ss,
		GenCounterMemPerZone:    8 + float64(headerBytes)/float64(gensPerBlock),
		PartialParityStorageMax: ss + suBytes,
		SuperblockStorage:       ss,
		StripeBufferBytes:       int64(v.lt.d) * suBytes,
		StripeBuffersPerZone:    v.cfg.StripeBuffers,
		PersistBitmapPerZone:    (nSU + 7) / 8,
		ZoneDescriptorBytes:     64,
	}
}
