package raizn

import (
	"testing"

	"raizn/internal/obs"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// runVolJournal is runVol with a shared, enabled journal wired through
// Config.Journal (devices attached under their array slots).
func runVolJournal(t *testing.T, fn func(c *vclock.Clock, v *Volume, j *obs.Journal)) {
	t.Helper()
	c := vclock.New()
	c.Run(func() {
		devs := newTestDevices(c, 5)
		j := obs.NewJournal(c, obs.JournalConfig{Capacity: 8192})
		j.Enable()
		cfg := DefaultConfig()
		cfg.Journal = j
		v, err := Create(c, devs, cfg)
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		fn(c, v, j)
	})
}

// TestWAAccountingCloses drives writes, a finish, a reset, and a
// rewrite, then checks the invariant the layered report is built on:
// every byte the raizn layer put on a device is charged to exactly one
// category, so the category sum equals the devices' host-write total.
func TestWAAccountingCloses(t *testing.T) {
	runVolJournal(t, func(c *vclock.Clock, v *Volume, j *obs.Journal) {
		zs := v.ZoneSectors()
		// Fill zone 0, partial-write zone 1 (partial parity), finish it,
		// reset zone 0 and rewrite a bit (reset WAL + gen counters).
		for off := int64(0); off < zs; off += 32 {
			mustWriteV(t, v, off, 32, 0)
		}
		mustWriteV(t, v, zs, 24, 0)
		if err := v.FinishZone(1); err != nil {
			t.Fatal(err)
		}
		if err := v.ResetZone(0); err != nil {
			t.Fatal(err)
		}
		mustWriteV(t, v, 0, 48, 0)
		if err := v.Flush(); err != nil {
			t.Fatal(err)
		}

		rep := v.WAReport()
		if rep.UserBytes == 0 {
			t.Fatal("no user bytes accounted")
		}
		if got, want := rep.RaiznBytes(), rep.DeviceHostBytes(); got != want {
			t.Fatalf("category sum %d != device host bytes %d (unaccounted writes)", got, want)
		}
		if rep.FlashBytes() != 0 {
			t.Fatalf("zns devices have no FTL, FlashBytes = %d", rep.FlashBytes())
		}
		byName := map[string]int64{}
		for _, cat := range rep.Categories {
			byName[cat.Name] = cat.Bytes
		}
		if byName["data"] < rep.UserBytes {
			t.Errorf("data bytes %d < user bytes %d", byName["data"], rep.UserBytes)
		}
		for _, name := range []string{"parity", "pp-payload", "pp-header", "metadata"} {
			if byName[name] == 0 {
				t.Errorf("category %s empty; workload should have exercised it", name)
			}
		}
		if byName["rebuild"] != 0 {
			t.Errorf("rebuild bytes %d without a rebuild", byName["rebuild"])
		}

		// The same numbers must be visible as raizn_wa_* registry series.
		snap := v.Metrics().Snapshot()
		if got := snap.Counters["raizn_wa_data_bytes"]; got != byName["data"] {
			t.Errorf("raizn_wa_data_bytes = %d, report says %d", got, byName["data"])
		}
		if _, ok := snap.Help["raizn_wa_data_bytes"]; !ok {
			t.Error("no HELP registered for raizn_wa_data_bytes")
		}
	})
}

// TestJournalCapturesWritePath checks the event stream records the
// logical zone lifecycle and the metadata/partial-parity appends.
func TestJournalCapturesWritePath(t *testing.T) {
	runVolJournal(t, func(c *vclock.Clock, v *Volume, j *obs.Journal) {
		zs := v.ZoneSectors()
		for off := int64(0); off < zs; off += 32 {
			mustWriteV(t, v, off, 32, 0)
		}
		mustWriteV(t, v, zs, 24, 0)
		if err := v.ResetZone(0); err != nil {
			t.Fatal(err)
		}

		var logicalOpen, logicalReset, pp, md int
		for _, e := range j.Events() {
			switch {
			case e.Type == obs.EvZoneState && e.Src == obs.SrcLogical:
				if e.A == int64(zns.ZoneOpen) {
					logicalOpen++
				}
			case e.Type == obs.EvZoneReset && e.Src == obs.SrcLogical:
				logicalReset++
				if e.Zone != 0 || e.A != zs {
					t.Errorf("logical reset event = %+v, want zone 0 wp_before %d", e, zs)
				}
			case e.Type == obs.EvPartialParity:
				pp++
				if e.A <= 0 {
					t.Errorf("partial-parity event with payload %d", e.A)
				}
			case e.Type == obs.EvMetadataWrite:
				md++
			}
		}
		if logicalOpen < 2 {
			t.Errorf("logical open events = %d, want >= 2 (two zones written)", logicalOpen)
		}
		if logicalReset != 1 {
			t.Errorf("logical reset events = %d, want 1", logicalReset)
		}
		if pp == 0 {
			t.Error("no partial-parity events; the 24-sector tail write should log parity")
		}
		if md == 0 {
			t.Error("no metadata-write events (superblock/gen/WAL expected)")
		}

		// Physical resets rode along under the device sources.
		devResets := 0
		for _, e := range j.Events() {
			if e.Type == obs.EvZoneReset && e.Src >= 0 {
				devResets++
			}
		}
		if devResets != 5 {
			t.Errorf("physical reset events = %d, want 5 (one per device)", devResets)
		}
	})
}

// TestJournalDegradedRebuildEvents covers EvDegraded entry/exit and
// EvRebuild progress.
func TestJournalDegradedRebuildEvents(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		devs := newTestDevices(c, 5)
		j := obs.NewJournal(c, obs.JournalConfig{Capacity: 8192})
		j.Enable()
		cfg := DefaultConfig()
		cfg.Journal = j
		v, err := Create(c, devs, cfg)
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		mustWriteV(t, v, 0, 64, 0)
		if err := v.FailDevice(2); err != nil {
			t.Fatal(err)
		}
		if _, err := v.ReplaceDevice(zns.NewDevice(c, testDevConfig())); err != nil {
			t.Fatalf("ReplaceDevice: %v", err)
		}

		var enter, exit, rebuilds int
		for _, e := range j.Events() {
			switch e.Type {
			case obs.EvDegraded:
				if e.Src != 2 {
					t.Errorf("degraded event src = %d, want 2", e.Src)
				}
				if e.A == 1 {
					enter++
				} else {
					exit++
				}
			case obs.EvRebuild:
				rebuilds++
				if e.Src != 2 || e.C <= 0 {
					t.Errorf("rebuild event = %+v", e)
				}
			}
		}
		if enter != 1 || exit != 1 {
			t.Errorf("degraded enter/exit = %d/%d, want 1/1", enter, exit)
		}
		if rebuilds == 0 {
			t.Error("no rebuild progress events")
		}
	})
}

// TestNoJournalNoEvents checks the default configuration (no journal)
// records nothing and Journal() still returns a usable (disabled)
// journal.
func TestNoJournalNoEvents(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0)
		j := v.Journal()
		if j == nil {
			t.Fatal("Journal() returned nil")
		}
		if j.Enabled() || j.Len() != 0 {
			t.Fatalf("private journal enabled=%v len=%d, want disabled/empty", j.Enabled(), j.Len())
		}
	})
}
