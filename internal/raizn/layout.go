package raizn

// This file contains the arithmetic address translation at the heart of
// RAIZN (paper §4.1): logical zones are built from one physical zone per
// device, data is striped in stripe units across the D data slots of each
// stripe, and the parity slot rotates every stripe (and every zone, so
// zone-reset WAL placement also rotates, §5.2).
//
// All quantities are in sectors unless suffixed Bytes.

// layout captures the immutable geometry of an array.
type layout struct {
	n  int   // total devices (D data + 1 parity per stripe)
	d  int   // data units per stripe
	su int64 // stripe unit size, in sectors

	physZoneSize int64 // device address-space stride of a physical zone
	physZoneCap  int64 // writable sectors per physical zone
	numZones     int   // logical zones (= physical data zones per device)
	mdZones      int   // reserved metadata zones per device (after data zones)
	ppZones      int   // reserved partial-parity zones per device (zraid engine; after md zones)
}

// stripeSectors returns the data sectors carried by one stripe.
func (l *layout) stripeSectors() int64 { return int64(l.d) * l.su }

// zoneSectors returns the logical zone capacity in sectors. The logical
// address space is dense: logical zone size equals its capacity.
func (l *layout) zoneSectors() int64 { return int64(l.d) * l.physZoneCap }

// stripesPerZone returns the number of stripes in a logical zone.
func (l *layout) stripesPerZone() int64 { return l.physZoneCap / l.su }

// numSectors returns the total logical capacity.
func (l *layout) numSectors() int64 { return int64(l.numZones) * l.zoneSectors() }

// zoneOf returns the logical zone containing lba.
func (l *layout) zoneOf(lba int64) int { return int(lba / l.zoneSectors()) }

// zoneStart returns the first LBA of logical zone z.
func (l *layout) zoneStart(z int) int64 { return int64(z) * l.zoneSectors() }

// parityDev returns the device holding the parity unit of stripe s in
// zone z. The rotation advances per stripe and per zone (left-symmetric,
// offset by zone so consecutive zones start their rotation on different
// devices).
func (l *layout) parityDev(z int, s int64) int {
	return l.n - 1 - int((s+int64(z))%int64(l.n))
}

// dataDev returns the device holding data unit u (0-based within the
// stripe) of stripe s in zone z.
func (l *layout) dataDev(z int, s int64, u int) int {
	return (l.parityDev(z, s) + 1 + u) % l.n
}

// unitOfDev is the inverse of dataDev: which data unit (0..d-1) does
// device dev hold in stripe s of zone z? Returns -1 if dev is the parity
// device.
func (l *layout) unitOfDev(z int, s int64, dev int) int {
	p := l.parityDev(z, s)
	if dev == p {
		return -1
	}
	return (dev - p - 1 + l.n) % l.n
}

// addr is a fully resolved physical location of a logical sector.
type addr struct {
	dev int   // device index
	pba int64 // absolute physical sector on that device
}

// locate translates a logical sector to its device and PBA.
func (l *layout) locate(lba int64) addr {
	z := l.zoneOf(lba)
	off := lba - l.zoneStart(z)
	s := off / l.stripeSectors()
	inStripe := off % l.stripeSectors()
	u := int(inStripe / l.su)
	intra := inStripe % l.su
	return addr{
		dev: l.dataDev(z, s, u),
		pba: int64(z)*l.physZoneSize + s*l.su + intra,
	}
}

// parityPBA returns the PBA of the parity unit of stripe s in zone z (on
// parityDev(z, s)).
func (l *layout) parityPBA(z int, s int64) int64 {
	return int64(z)*l.physZoneSize + s*l.su
}

// stripeOf returns the zone-relative stripe index of lba.
func (l *layout) stripeOf(lba int64) int64 {
	z := l.zoneOf(lba)
	return (lba - l.zoneStart(z)) / l.stripeSectors()
}

// stripeStart returns the first LBA of stripe s in zone z.
func (l *layout) stripeStart(z int, s int64) int64 {
	return l.zoneStart(z) + s*l.stripeSectors()
}

// mdZoneIndex returns the physical zone index of the i-th reserved
// metadata zone (0 <= i < mdZones), which live after the data zones.
func (l *layout) mdZoneIndex(i int) int { return l.numZones + i }

// ppZoneIndex returns the physical zone index of the i-th reserved
// partial-parity zone (0 <= i < ppZones), which live after the metadata
// zones. Only the zraid engine reserves any.
func (l *layout) ppZoneIndex(i int) int { return l.numZones + l.mdZones + i }

// intraInterval is a half-open interval of intra-stripe-unit offsets.
type intraInterval struct{ a, b int64 }

// intraRegions returns the (at most two) intervals of intra-unit offsets
// whose parity bytes are affected by a write covering zone-relative
// sectors [start, end) of a single stripe. If the write covers a full
// stripe-unit's worth of offsets the whole [0, su) is affected.
func (l *layout) intraRegions(start, end int64) []intraInterval {
	if end-start >= l.su {
		return []intraInterval{{0, l.su}}
	}
	a := start % l.su
	b := end % l.su
	if a < b {
		return []intraInterval{{a, b}}
	}
	// Wraps across a unit boundary.
	out := make([]intraInterval, 0, 2)
	if a < l.su {
		out = append(out, intraInterval{a, l.su})
	}
	if b > 0 {
		out = append(out, intraInterval{0, b})
	}
	return out
}

// unitFills returns, for a stripe with g data sectors written (0 <= g <=
// stripeSectors), the fill level of each data unit: units 0..j-1 full,
// unit j partially filled, the rest empty.
func (l *layout) unitFills(g int64) []int64 {
	fills := make([]int64, l.d)
	for u := 0; u < l.d; u++ {
		f := g - int64(u)*l.su
		if f < 0 {
			f = 0
		}
		if f > l.su {
			f = l.su
		}
		fills[u] = f
	}
	return fills
}
