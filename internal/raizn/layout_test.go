package raizn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testLayout() *layout {
	return &layout{
		n: 5, d: 4, su: 16,
		physZoneSize: 80, physZoneCap: 64,
		numZones: 5, mdZones: 3,
	}
}

func TestLayoutGeometry(t *testing.T) {
	lt := testLayout()
	if got := lt.stripeSectors(); got != 64 {
		t.Errorf("stripeSectors = %d, want 64", got)
	}
	if got := lt.zoneSectors(); got != 256 {
		t.Errorf("zoneSectors = %d, want 256", got)
	}
	if got := lt.stripesPerZone(); got != 4 {
		t.Errorf("stripesPerZone = %d, want 4", got)
	}
	if got := lt.numSectors(); got != 1280 {
		t.Errorf("numSectors = %d, want 1280", got)
	}
}

func TestParityRotation(t *testing.T) {
	lt := testLayout()
	// Within a zone, consecutive stripes use different parity devices,
	// cycling through all n devices.
	seen := map[int]bool{}
	for s := int64(0); s < int64(lt.n); s++ {
		p := lt.parityDev(0, s)
		if p < 0 || p >= lt.n {
			t.Fatalf("parityDev out of range: %d", p)
		}
		seen[p] = true
	}
	if len(seen) != lt.n {
		t.Errorf("parity rotation covered %d devices, want %d", len(seen), lt.n)
	}
	// Zone offset shifts the rotation (per-zone rotation, §5.2).
	if lt.parityDev(0, 0) == lt.parityDev(1, 0) {
		t.Error("parity rotation does not vary by zone")
	}
}

func TestDataDevDisjointFromParity(t *testing.T) {
	lt := testLayout()
	for z := 0; z < lt.numZones; z++ {
		for s := int64(0); s < lt.stripesPerZone(); s++ {
			p := lt.parityDev(z, s)
			used := map[int]bool{p: true}
			for u := 0; u < lt.d; u++ {
				dev := lt.dataDev(z, s, u)
				if used[dev] {
					t.Fatalf("z=%d s=%d: device %d used twice", z, s, dev)
				}
				used[dev] = true
			}
		}
	}
}

func TestUnitOfDevInverse(t *testing.T) {
	lt := testLayout()
	for z := 0; z < lt.numZones; z++ {
		for s := int64(0); s < lt.stripesPerZone(); s++ {
			for u := 0; u < lt.d; u++ {
				dev := lt.dataDev(z, s, u)
				if got := lt.unitOfDev(z, s, dev); got != u {
					t.Fatalf("unitOfDev(%d,%d,%d) = %d, want %d", z, s, dev, got, u)
				}
			}
			if got := lt.unitOfDev(z, s, lt.parityDev(z, s)); got != -1 {
				t.Fatalf("unitOfDev of parity device = %d, want -1", got)
			}
		}
	}
}

func TestLocateProperties(t *testing.T) {
	lt := testLayout()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lba := rng.Int63n(lt.numSectors())
		a := lt.locate(lba)
		z := lt.zoneOf(lba)
		// PBA lands inside physical zone z.
		if a.pba < int64(z)*lt.physZoneSize || a.pba >= int64(z)*lt.physZoneSize+lt.physZoneCap {
			return false
		}
		// The device is the data device of the right stripe/unit.
		off := lba - lt.zoneStart(z)
		s := off / lt.stripeSectors()
		u := int((off % lt.stripeSectors()) / lt.su)
		return a.dev == lt.dataDev(z, s, u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLocateBijectivePerDevice(t *testing.T) {
	// Distinct LBAs must never map to the same (device, PBA).
	lt := testLayout()
	seen := make(map[addr]int64)
	for lba := int64(0); lba < lt.numSectors(); lba++ {
		a := lt.locate(lba)
		if prev, ok := seen[a]; ok {
			t.Fatalf("LBA %d and %d both map to %+v", prev, lba, a)
		}
		seen[a] = lba
	}
}

func TestIntraRegions(t *testing.T) {
	lt := testLayout() // su = 16
	cases := []struct {
		a, b int64
		want []intraInterval
	}{
		{0, 4, []intraInterval{{0, 4}}},             // inside unit 0
		{20, 28, []intraInterval{{4, 12}}},          // inside unit 1
		{12, 20, []intraInterval{{12, 16}, {0, 4}}}, // wraps unit boundary
		{0, 16, []intraInterval{{0, 16}}},           // exactly one unit
		{8, 40, []intraInterval{{0, 16}}},           // >= su: whole range
		{28, 32, []intraInterval{{12, 16}}},         // ends at boundary
	}
	for _, c := range cases {
		got := lt.intraRegions(c.a, c.b)
		if len(got) != len(c.want) {
			t.Errorf("intraRegions(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("intraRegions(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
			}
		}
	}
}

func TestIntraRegionsCoverWriteLength(t *testing.T) {
	lt := testLayout()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		start := rng.Int63n(lt.stripeSectors() - 1)
		end := start + 1 + rng.Int63n(lt.stripeSectors()-start)
		var total int64
		for _, r := range lt.intraRegions(start, end) {
			if r.a < 0 || r.b > lt.su || r.a >= r.b {
				return false
			}
			total += r.b - r.a
		}
		want := end - start
		if want > lt.su {
			want = lt.su
		}
		return total == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnitFills(t *testing.T) {
	lt := testLayout()
	fills := lt.unitFills(20) // unit0 full(16) + unit1 partial(4)
	want := []int64{16, 4, 0, 0}
	for i := range want {
		if fills[i] != want[i] {
			t.Errorf("unitFills(20) = %v, want %v", fills, want)
			break
		}
	}
	fills = lt.unitFills(64)
	for _, f := range fills {
		if f != 16 {
			t.Errorf("unitFills(full) = %v", fills)
			break
		}
	}
}

func TestMDZoneIndex(t *testing.T) {
	lt := testLayout()
	if got := lt.mdZoneIndex(0); got != 5 {
		t.Errorf("mdZoneIndex(0) = %d, want 5", got)
	}
	if got := lt.mdZoneIndex(2); got != 7 {
		t.Errorf("mdZoneIndex(2) = %d, want 7", got)
	}
}
