package raizn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"raizn/internal/obs"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// Metadata is persisted as log-structured records in the reserved
// metadata zones (paper §4.3). Every record starts with a 32-byte header
// (Figure 3) padded to one sector, optionally followed by an external
// payload (partial parity or relocated data). Small metadata lives inline
// in the header sector.
//
// Layout deviation from Figure 3: the paper stores magic(4) type(4)
// start(8) end(8) gen(8); this implementation splits the type field into
// type(2) + inline-length(2) so inline payload sizes are self-describing.

const (
	mdMagic     = 0x5A52314E // "ZR1N"
	headerBytes = 32
	maxInline   = 4064 // sector(4096) - header(32)
)

// Record types.
type recType uint16

const (
	recSuperblock recType = iota + 1
	recGenCounters
	recResetWAL
	recPartialParity
	recRelocData
	recRelocParity
	recChecksums
	// recFlightBox carries a serialized flight-recorder black box
	// (internal/obs/flight). startLBA holds the box byte length; the box
	// rides as external payload sectors. The newest generation wins on
	// recovery; recover() itself ignores the record — the box is plain
	// forensic cargo, not array state.
	recFlightBox

	// recCheckpoint flags a record written by the metadata garbage
	// collector rather than by normal operation (paper Fig. 4).
	recCheckpoint recType = 0x80
)

func (t recType) base() recType { return t &^ recCheckpoint }
func (t recType) String() string {
	s := ""
	switch t.base() {
	case recSuperblock:
		s = "superblock"
	case recGenCounters:
		s = "gen-counters"
	case recResetWAL:
		s = "reset-wal"
	case recPartialParity:
		s = "partial-parity"
	case recRelocData:
		s = "reloc-data"
	case recRelocParity:
		s = "reloc-parity"
	case recChecksums:
		s = "stripe-checksums"
	case recFlightBox:
		s = "flight-box"
	default:
		s = fmt.Sprintf("recType(%d)", uint16(t))
	}
	if t&recCheckpoint != 0 {
		s += "+ckpt"
	}
	return s
}

// record is one decoded metadata log entry.
type record struct {
	typ      recType
	startLBA int64 // logical range the record describes
	endLBA   int64
	gen      uint64 // generation of the logical zone (or sequence number)
	inline   []byte // inline payload (<= maxInline)
	payload  []byte // external payload sectors, if any

	dev int   // device the record was read from (set by scan)
	pba int64 // absolute sector of the record header (set by scan)
}

// payloadSectors returns how many external payload sectors follow the
// header sector for this record type, derived from the header fields.
func (r *record) payloadSectors(l *layout, sectorSize int) int64 {
	switch r.typ.base() {
	case recPartialParity:
		// Parity image bytes cover the affected intra-unit region(s):
		// min(write length, one stripe unit), rounded up to sectors.
		n := r.endLBA - r.startLBA
		if n > l.su {
			n = l.su
		}
		return n
	case recRelocData, recRelocParity:
		return r.endLBA - r.startLBA
	case recFlightBox:
		// startLBA is the box byte length, carried as payload sectors.
		return (r.startLBA + int64(sectorSize) - 1) / int64(sectorSize)
	default:
		return 0
	}
}

// encode serializes the record into whole sectors.
func (r *record) encode(sectorSize int) []byte {
	if len(r.inline) > maxInline {
		panic("raizn: inline payload too large")
	}
	nPayload := (len(r.payload) + sectorSize - 1) / sectorSize
	buf := make([]byte, (1+nPayload)*sectorSize)
	binary.LittleEndian.PutUint32(buf[0:4], mdMagic)
	binary.LittleEndian.PutUint16(buf[4:6], uint16(r.typ))
	binary.LittleEndian.PutUint16(buf[6:8], uint16(len(r.inline)))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(r.startLBA))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(r.endLBA))
	binary.LittleEndian.PutUint64(buf[24:32], r.gen)
	copy(buf[headerBytes:], r.inline)
	copy(buf[sectorSize:], r.payload)
	return buf
}

// decodeHeader parses a header sector. It returns false if the sector
// does not begin with a valid record header.
func decodeHeader(sector []byte) (record, bool) {
	if len(sector) < headerBytes {
		return record{}, false
	}
	if binary.LittleEndian.Uint32(sector[0:4]) != mdMagic {
		return record{}, false
	}
	r := record{
		typ:      recType(binary.LittleEndian.Uint16(sector[4:6])),
		startLBA: int64(binary.LittleEndian.Uint64(sector[8:16])),
		endLBA:   int64(binary.LittleEndian.Uint64(sector[16:24])),
		gen:      binary.LittleEndian.Uint64(sector[24:32]),
	}
	n := int(binary.LittleEndian.Uint16(sector[6:8]))
	if n > maxInline || headerBytes+n > len(sector) {
		return record{}, false
	}
	r.inline = append([]byte(nil), sector[headerBytes:headerBytes+n]...)
	return r, true
}

// mdKind selects which metadata log a record belongs to. Partial parity
// gets its own zone so its churn does not force GC of the rarely-updated
// general metadata (paper §4.3).
type mdKind int

const (
	mdGeneral mdKind = iota
	mdParity
	mdKinds
)

func kindOf(t recType) mdKind {
	if t.base() == recPartialParity {
		return mdParity
	}
	return mdGeneral
}

var errMDFull = errors.New("raizn: metadata zone out of space mid-GC")

// mdManager manages one device's reserved metadata zones: one active zone
// per kind plus a pool of swap zones used for garbage collection.
//
// Concurrency: m.mu protects the role assignments and serializes zone
// appends; it is NEVER held across a blocking wait. While a GC roll-over
// is in progress (gcBusy), concurrent appends park on the vclock-aware
// condition so simulated time keeps advancing.
type mdManager struct {
	vol *volumeCore // for checkpoint callbacks and geometry
	dev int

	mu     sync.Mutex
	cond   *vclock.Cond
	gcBusy bool
	active [mdKinds]int // physical zone index per kind
	swap   []int        // free metadata zone indices
}

// volumeCore is the narrow view of Volume the metadata manager needs; it
// exists to keep the dependency direction explicit.
type volumeCore = Volume

func newMDManager(v *Volume, dev int) *mdManager {
	m := &mdManager{vol: v, dev: dev}
	m.cond = v.clk.NewCond(&m.mu)
	m.active[mdGeneral] = v.lt.mdZoneIndex(0)
	m.active[mdParity] = v.lt.mdZoneIndex(1)
	for i := 2; i < v.lt.mdZones; i++ {
		m.swap = append(m.swap, v.lt.mdZoneIndex(i))
	}
	return m
}

// append writes a record to the device's metadata log of the appropriate
// kind, garbage collecting into a swap zone if the active zone is full.
// It returns the completion future and the absolute PBA of the record
// header. flags is applied to the device append (FUA for write-ahead
// logging).
func (m *mdManager) append(r *record, flags zns.Flag) (*vclock.Future, int64, error) {
	return m.appendSpan(nil, r, flags)
}

// appendSpan is append with a tracing span; the device marks the span's
// queue and media phases and ends it when the append completes.
func (m *mdManager) appendSpan(sp *obs.Span, r *record, flags zns.Flag) (*vclock.Future, int64, error) {
	dev := m.vol.devs[m.dev]
	if dev == nil {
		sp.End(zns.ErrDeviceFailed)
		return nil, -1, zns.ErrDeviceFailed
	}
	buf := r.encode(m.vol.sectorSize)
	need := int64(len(buf) / m.vol.sectorSize)
	kind := kindOf(r.typ)

	m.mu.Lock()
	for attempt := 0; attempt < 3; attempt++ {
		for m.gcBusy {
			m.cond.Wait()
		}
		z := m.active[kind]
		zd := dev.Zone(z)
		remaining := dev.Config().ZoneCap - (zd.WP - dev.ZoneStart(z))
		if remaining >= need && zd.State != zns.ZoneFull {
			pba, fut := dev.AppendSpan(sp, z, buf, flags)
			if pba >= 0 {
				m.mu.Unlock()
				m.vol.accountMDBytes(r.typ, 1, need-1)
				m.vol.recordMDEvent(m.dev, z, r.typ, 1, need-1)
				name := "raizn.md.append"
				if r.typ.base() == recPartialParity {
					name = "raizn.pp.write"
				}
				m.vol.fireHook(name, m.dev, z, pba)
				return fut, pba, nil
			}
			// Fall through to GC on append failure.
		}
		if err := m.gcSlotLocked(kind); err != nil {
			m.mu.Unlock()
			sp.End(err)
			return nil, -1, err
		}
	}
	m.mu.Unlock()
	sp.End(errMDFull)
	return nil, -1, errMDFull
}

// gcSlotLocked performs the GC roll-over for kind, temporarily releasing
// m.mu across the blocking device IO. Caller holds m.mu on entry and on
// return.
func (m *mdManager) gcSlotLocked(kind mdKind) error {
	for m.gcBusy {
		m.cond.Wait()
	}
	m.gcBusy = true
	m.mu.Unlock()
	err := m.gc(kind)
	m.mu.Lock()
	m.gcBusy = false
	m.cond.Broadcast()
	return err
}

// forceGC runs one GC roll-over of the given kind (used by Maintain).
func (m *mdManager) forceGC(kind mdKind) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gcSlotLocked(kind)
}

// gc rolls the active zone of kind over to a swap zone, checkpointing
// live metadata into it, then resets the old zone into the swap pool
// (paper Fig. 4). Called with gcBusy set and m.mu released; gcBusy
// excludes concurrent appends and role changes.
func (m *mdManager) gc(kind mdKind) error {
	m.vol.stats.metadataGCs.Add(1)
	m.mu.Lock()
	if len(m.swap) == 0 {
		m.mu.Unlock()
		return errMDFull
	}
	dev := m.vol.devs[m.dev]
	if dev == nil {
		m.mu.Unlock()
		return zns.ErrDeviceFailed
	}
	old := m.active[kind]
	m.active[kind] = m.swap[len(m.swap)-1]
	m.swap = m.swap[:len(m.swap)-1]
	newActive := m.active[kind]
	m.mu.Unlock()

	// Checkpoint live metadata from memory into the new active zone.
	var futs []*vclock.Future
	for _, r := range m.vol.checkpointRecords(m.dev, kind) {
		r.typ |= recCheckpoint
		buf := r.encode(m.vol.sectorSize)
		_, fut := dev.Append(newActive, buf, 0)
		sectors := int64(len(buf) / m.vol.sectorSize)
		m.vol.accountMDBytes(r.typ, 1, sectors-1)
		m.vol.recordMDEvent(m.dev, newActive, r.typ, 1, sectors-1)
		futs = append(futs, fut)
	}
	// The checkpoint must be durable before the old zone disappears;
	// otherwise a crash could lose both copies.
	futs = append(futs, dev.Flush())
	if err := vclock.WaitAll(futs...); err != nil {
		return err
	}
	if err := dev.ResetZone(old).Wait(); err != nil {
		return err
	}
	m.mu.Lock()
	m.swap = append(m.swap, old)
	m.mu.Unlock()
	return nil
}

// scan reads every record from all metadata zones of the device,
// tolerating torn tails (records cut off by the zone write pointer are
// dropped).
func scanMDZones(dev *zns.Device, lt *layout, sectorSize int) ([]record, error) {
	var out []record
	for i := 0; i < lt.mdZones; i++ {
		z := lt.mdZoneIndex(i)
		zd := dev.Zone(z)
		start := dev.ZoneStart(z)
		wp := zd.WP
		sector := make([]byte, sectorSize)
		for pba := start; pba < wp; {
			// Inline-meta records (PPInlineMeta, §5.4) carry their header
			// in the per-block metadata of their first payload sector.
			if dev.Config().MetaBytes >= headerBytes {
				if mb, _ := dev.ReadBlockMeta(pba); mb != nil {
					if r, ok := decodeHeader(mb); ok {
						np := r.payloadSectors(lt, sectorSize)
						if pba+np > wp {
							break // torn record
						}
						if np > 0 {
							r.payload = make([]byte, np*int64(sectorSize))
							if err := dev.Read(pba, r.payload).Wait(); err != nil {
								return nil, fmt.Errorf("raizn: metadata payload read: %w", err)
							}
						}
						r.pba = pba
						out = append(out, r)
						pba += np
						continue
					}
				}
			}
			if err := dev.Read(pba, sector).Wait(); err != nil {
				return nil, fmt.Errorf("raizn: metadata scan zone %d: %w", z, err)
			}
			r, ok := decodeHeader(sector)
			if !ok {
				// Not a record header: skip one sector. (Occurs only
				// if a torn multi-sector record left payload sectors
				// behind a dropped header, which prefix persistence
				// prevents; scanning defensively regardless.)
				pba++
				continue
			}
			np := r.payloadSectors(lt, sectorSize)
			if pba+1+np > wp {
				// Torn record: header persisted but payload lost.
				break
			}
			if np > 0 {
				r.payload = make([]byte, np*int64(sectorSize))
				if err := dev.Read(pba+1, r.payload).Wait(); err != nil {
					return nil, fmt.Errorf("raizn: metadata payload read: %w", err)
				}
			}
			r.pba = pba
			out = append(out, r)
			pba += 1 + np
		}
	}
	return out, nil
}

// genCounterBlock encodes a block of generation counters (paper §4.3:
// 32-byte header + 508 8-byte counters, the whole 4 KiB persisted on
// every update). blockIdx selects which 508-zone window this block
// covers.
const gensPerBlock = 507 // one slot is used by the block index

func encodeGenBlock(blockIdx int, gens []uint64) []byte {
	buf := make([]byte, maxInline)
	binary.LittleEndian.PutUint64(buf[0:8], uint64(blockIdx))
	lo := blockIdx * gensPerBlock
	for i := 0; i < gensPerBlock && lo+i < len(gens); i++ {
		binary.LittleEndian.PutUint64(buf[8+8*i:16+8*i], gens[lo+i])
	}
	return buf
}

func decodeGenBlock(inline []byte) (blockIdx int, gens []uint64, ok bool) {
	if len(inline) < 8 {
		return 0, nil, false
	}
	blockIdx = int(binary.LittleEndian.Uint64(inline[0:8]))
	n := (len(inline) - 8) / 8
	gens = make([]uint64, n)
	for i := 0; i < n; i++ {
		gens[i] = binary.LittleEndian.Uint64(inline[8+8*i : 16+8*i])
	}
	return blockIdx, gens, true
}

// superblock is the per-device array descriptor, written at create time
// and checkpointed by metadata GC.
type superblock struct {
	version   uint32
	arrayID   uint64
	numDev    uint32
	devIndex  uint32
	su        int64
	physZones uint32 // total physical zones expected on the device
	mdZones   uint32
}

func (sb *superblock) encode() []byte {
	buf := make([]byte, 40)
	binary.LittleEndian.PutUint32(buf[0:4], sb.version)
	binary.LittleEndian.PutUint64(buf[4:12], sb.arrayID)
	binary.LittleEndian.PutUint32(buf[12:16], sb.numDev)
	binary.LittleEndian.PutUint32(buf[16:20], sb.devIndex)
	binary.LittleEndian.PutUint64(buf[20:28], uint64(sb.su))
	binary.LittleEndian.PutUint32(buf[28:32], sb.physZones)
	binary.LittleEndian.PutUint32(buf[32:36], sb.mdZones)
	return buf
}

func decodeSuperblock(inline []byte) (superblock, bool) {
	if len(inline) < 40 {
		return superblock{}, false
	}
	return superblock{
		version:   binary.LittleEndian.Uint32(inline[0:4]),
		arrayID:   binary.LittleEndian.Uint64(inline[4:12]),
		numDev:    binary.LittleEndian.Uint32(inline[12:16]),
		devIndex:  binary.LittleEndian.Uint32(inline[16:20]),
		su:        int64(binary.LittleEndian.Uint64(inline[20:28])),
		physZones: binary.LittleEndian.Uint32(inline[28:32]),
		mdZones:   binary.LittleEndian.Uint32(inline[32:36]),
	}, true
}

// resetWAL payload: the logical zone index being reset.
func encodeResetWAL(zone int) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(zone))
	return buf
}

func decodeResetWAL(inline []byte) (int, bool) {
	if len(inline) < 8 {
		return 0, false
	}
	return int(binary.LittleEndian.Uint64(inline)), true
}
