package raizn

import (
	"encoding/binary"

	"raizn/internal/obs"
	"raizn/internal/parity"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// This file implements the two §5.4 alternatives to partial-parity
// logging, selected by Config.ParityMode:
//
//   - PPInlineMeta: the 32-byte record header rides in per-block logical
//     metadata instead of occupying a 4 KiB header sector, shrinking
//     every partial-parity log by one sector ("the actual header
//     information could be written into the metadata descriptor instead,
//     reducing write amplification and increasing the performance of
//     small writes").
//   - PPZRWA: partial parity is written (and re-written) in place at its
//     final location through the device's Zone Random Write Area,
//     eliminating parity logs and their metadata-zone churn ("ZRWA …
//     could potentially be used to allow some parity updates to take
//     place in-place and avoid the overhead of the parity logs").

// encodeHeaderMeta serializes just the 32-byte record header, for the
// per-block metadata descriptor.
func (r *record) encodeHeaderMeta() []byte {
	buf := make([]byte, headerBytes)
	binary.LittleEndian.PutUint32(buf[0:4], mdMagic)
	binary.LittleEndian.PutUint16(buf[4:6], uint16(r.typ))
	binary.LittleEndian.PutUint16(buf[6:8], 0) // no inline payload in meta form
	binary.LittleEndian.PutUint64(buf[8:16], uint64(r.startLBA))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(r.endLBA))
	binary.LittleEndian.PutUint64(buf[24:32], r.gen)
	return buf
}

// encodePayloadOnly pads the external payload to whole sectors with no
// header block.
func (r *record) encodePayloadOnly(sectorSize int) []byte {
	n := (len(r.payload) + sectorSize - 1) / sectorSize * sectorSize
	buf := make([]byte, n)
	copy(buf, r.payload)
	return buf
}

// appendMeta writes a record with its header in block metadata and only
// the payload in the data sectors. Same GC behaviour as append.
func (m *mdManager) appendMeta(r *record, flags zns.Flag) (*vclock.Future, int64, error) {
	return m.appendMetaSpan(nil, r, flags)
}

// appendMetaSpan is appendMeta with a tracing span.
func (m *mdManager) appendMetaSpan(sp *obs.Span, r *record, flags zns.Flag) (*vclock.Future, int64, error) {
	dev := m.vol.devs[m.dev]
	if dev == nil {
		sp.End(zns.ErrDeviceFailed)
		return nil, -1, zns.ErrDeviceFailed
	}
	buf := r.encodePayloadOnly(m.vol.sectorSize)
	meta := r.encodeHeaderMeta()
	need := int64(len(buf) / m.vol.sectorSize)
	kind := kindOf(r.typ)

	m.mu.Lock()
	for attempt := 0; attempt < 3; attempt++ {
		for m.gcBusy {
			m.cond.Wait()
		}
		z := m.active[kind]
		zd := dev.Zone(z)
		remaining := dev.Config().ZoneCap - (zd.WP - dev.ZoneStart(z))
		if remaining >= need && zd.State != zns.ZoneFull {
			pba, fut := dev.AppendMetaSpan(sp, z, buf, meta, flags)
			if pba >= 0 {
				m.mu.Unlock()
				// Header rides in per-block metadata: zero header sectors.
				m.vol.accountMDBytes(r.typ, 0, need)
				m.vol.recordMDEvent(m.dev, z, r.typ, 0, need)
				name := "raizn.md.append"
				if r.typ.base() == recPartialParity {
					name = "raizn.pp.write"
				}
				m.vol.fireHook(name, m.dev, z, pba)
				return fut, pba, nil
			}
		}
		if err := m.gcSlotLocked(kind); err != nil {
			m.mu.Unlock()
			sp.End(err)
			return nil, -1, err
		}
	}
	m.mu.Unlock()
	sp.End(errMDFull)
	return nil, -1, errMDFull
}

// issueZRWAParityLocked writes the stripe's current prefix parity in
// place at the final parity location via the ZRWA, overwriting the
// previous prefix. Caller holds lz.mu (device submission order).
func (v *Volume) issueZRWAParityLocked(sp *obs.Span, lz *logicalZone, s int64, buf *stripeBuffer, flags zns.Flag, futs *[]subIO) {
	dev := v.lt.parityDev(lz.idx, s)
	d := v.devForZone(dev, lz.idx)
	if d == nil {
		return // degraded: data units carry the write
	}
	plen := min(buf.fill, v.lt.su)
	img := v.parityImageLocked(buf, []intraInterval{{0, plen}})
	v.stats.zrwaParityWrites.Add(1)
	v.stats.waParityBytes.Add(int64(len(img)))
	pba := v.lt.parityPBA(lz.idx, s)
	child := sp.Child(obs.OpDevWrite, dev, pba, int64(len(img)))
	fut := d.WriteZRWASpan(child, pba, img, flags)
	*futs = append(*futs, subIO{dev: dev, fut: fut})
}

// parityOnMedia reports, for ZRWA mode, how many parity prefix sectors of
// stripe s are on the parity device (its physical fill past the stripe's
// parity offset).
func (v *Volume) parityPrefixLen(z int, s int64) int64 {
	dev := v.lt.parityDev(z, s)
	d := v.devs[dev]
	if d == nil {
		return 0
	}
	physZone := z
	zd := d.Zone(physZone)
	fill := zd.WP - d.ZoneStart(physZone)
	return clampI64(fill-s*v.lt.su, 0, v.lt.su)
}

// reconstructUnitRange repairs intra offsets [a, b) of the single short
// data unit u of stripe s from the (possibly prefix-only) parity plus the
// surviving units, writing the result at the owning device's write
// pointer. Generalizes reconstructUnitTail for ZRWA prefix parity.
func (v *Volume) reconstructUnitRange(z int, s int64, u int, a, b int64, fills []int64) error {
	if b <= a {
		return nil
	}
	ss := int64(v.sectorSize)
	n := b - a
	img := make([]byte, n*ss)
	var futs []subIO
	if err := v.readParityPiece(z, s, a, b, img, &futs); err != nil {
		return err
	}
	var others [][]byte
	for u2 := 0; u2 < v.lt.d; u2++ {
		if u2 == u {
			continue
		}
		hi := min(fills[u2], b)
		if hi <= a {
			continue
		}
		ob := make([]byte, (hi-a)*ss)
		if err := v.readUnitPiece(z, s, u2, a, hi, ob, &futs); err != nil {
			return err
		}
		others = append(others, ob)
	}
	if err := v.awaitReads(futs); err != nil {
		return err
	}
	for _, o := range others {
		parity.XORInto(img[:len(o)], o)
	}
	dev := v.lt.dataDev(z, s, u)
	d := v.devs[dev]
	if d == nil {
		return ErrInconsistent
	}
	pba := int64(z)*v.lt.physZoneSize + s*v.lt.su + a
	return d.Write(pba, img, 0).Wait()
}
