package raizn

import (
	"math/rand"
	"testing"

	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// extDevConfig enables the §5.4 device features.
func extDevConfig() zns.Config {
	cfg := testDevConfig()
	cfg.ZRWASectors = 32 // two stripe units
	cfg.MetaBytes = 64
	return cfg
}

func runModeVol(t *testing.T, mode ParityMode, fn func(c *vclock.Clock, v *Volume, devs []*zns.Device)) {
	t.Helper()
	c := vclock.New()
	c.Run(func() {
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(c, extDevConfig())
		}
		cfg := DefaultConfig()
		cfg.ParityMode = mode
		v, err := Create(c, devs, cfg)
		if err != nil {
			t.Fatalf("Create(mode=%d): %v", mode, err)
		}
		fn(c, v, devs)
	})
}

func TestModeValidation(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		devs := newTestDevices(c, 5) // plain devices: no ZRWA, no meta
		cfg := DefaultConfig()
		cfg.ParityMode = PPZRWA
		if _, err := Create(c, devs, cfg); err == nil {
			t.Error("PPZRWA on plain devices should be rejected")
		}
		cfg.ParityMode = PPInlineMeta
		if _, err := Create(c, devs, cfg); err == nil {
			t.Error("PPInlineMeta on plain devices should be rejected")
		}
	})
}

// exerciseMode writes, reads, crashes, remounts and fails a device under
// the given parity mode.
func exerciseMode(t *testing.T, mode ParityMode) {
	runModeVol(t, mode, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		// Sub-stripe and stripe-spanning writes.
		sizes := []int{5, 11, 16, 33, 64, 3, 60, 64, 20}
		lba := int64(0)
		for _, n := range sizes {
			mustWriteV(t, v, lba, n, 0)
			lba += int64(n)
		}
		checkReadV(t, v, 0, int(lba))

		// Degraded read of full and partial stripes.
		v.Flush()
		victim := v.lt.dataDev(0, 0, 1)
		v.FailDevice(victim)
		checkReadV(t, v, 0, int(lba))

		// Rebuild restores redundancy.
		if _, err := v.ReplaceDevice(zns.NewDevice(c, extDevConfig())); err != nil {
			t.Fatalf("rebuild: %v", err)
		}
		checkReadV(t, v, 0, int(lba))
	})
}

func TestInlineMetaModeEndToEnd(t *testing.T) { exerciseMode(t, PPInlineMeta) }
func TestZRWAModeEndToEnd(t *testing.T)       { exerciseMode(t, PPZRWA) }

// crashMode verifies remount after power loss per mode.
func crashMode(t *testing.T, mode ParityMode) {
	c := vclock.New()
	c.Run(func() {
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(c, extDevConfig())
		}
		cfg := DefaultConfig()
		cfg.ParityMode = mode
		v, err := Create(c, devs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mustWriteV(t, v, 0, 100, 0)
		if err := v.Flush(); err != nil {
			t.Fatal(err)
		}
		mustWriteV(t, v, 100, 30, 0) // unflushed tail
		for _, d := range devs {
			d.PowerLoss(nil)
		}
		v2, err := Mount(c, devs, cfg)
		if err != nil {
			t.Fatalf("Mount: %v", err)
		}
		wp := v2.Zone(0).WP
		if wp < 100 {
			t.Fatalf("flushed data lost: WP=%d", wp)
		}
		checkReadV(t, v2, 0, int(wp))
		// Appends continue correctly after recovery.
		mustWriteV(t, v2, wp, 40, 0)
		checkReadV(t, v2, 0, int(wp)+40)
	})
}

func TestInlineMetaModeCrash(t *testing.T) { crashMode(t, PPInlineMeta) }
func TestZRWAModeCrash(t *testing.T)       { crashMode(t, PPZRWA) }

// TestZRWADegradedMountPartialStripe: ZRWA's in-place parity must cover
// the §5.1 scenario the parity logs cover in the baseline: crash + device
// loss with a partial tail stripe.
func TestZRWADegradedMountPartialStripe(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(c, extDevConfig())
		}
		cfg := DefaultConfig()
		cfg.ParityMode = PPZRWA
		v, err := Create(c, devs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mustWriteV(t, v, 0, 40, 0) // units 0,1 full; unit 2 half
		v.Flush()
		victim := v.lt.dataDev(0, 0, 1)
		avail := make([]*zns.Device, 0, 4)
		for i, d := range devs {
			if i != victim {
				avail = append(avail, d)
			}
		}
		v2, err := Mount(c, avail, cfg)
		if err != nil {
			t.Fatalf("degraded mount: %v", err)
		}
		if wp := v2.Zone(0).WP; wp != 40 {
			t.Errorf("WP=%d, want 40 (from in-place parity prefix)", wp)
		}
		checkReadV(t, v2, 0, 40)
		mustWriteV(t, v2, 40, 24, 0)
		checkReadV(t, v2, 0, 64)
	})
}

// TestInlineMetaReducesWriteAmp measures the §5.4 claim: inline headers
// shave one sector off every partial-parity log.
func TestInlineMetaReducesWriteAmp(t *testing.T) {
	measure := func(mode ParityMode) int64 {
		var total int64
		c := vclock.New()
		c.Run(func() {
			devs := make([]*zns.Device, 5)
			for i := range devs {
				devs[i] = zns.NewDevice(c, extDevConfig())
			}
			cfg := DefaultConfig()
			cfg.ParityMode = mode
			v, err := Create(c, devs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := int64(0); i < 48; i++ { // 48 x 4 KiB sub-stripe writes
				mustWriteV(t, v, i, 1, 0)
			}
			for _, d := range devs {
				w, _, _, _ := d.Counters()
				total += w
			}
		})
		return total
	}
	base := measure(PPLog)
	inline := measure(PPInlineMeta)
	if inline >= base {
		t.Errorf("inline meta did not reduce device writes: %d vs %d", inline, base)
	}
	// Each of the ~36 sub-stripe writes (48 minus the 12 that complete a
	// stripe) saves one 4 KiB header sector.
	saved := base - inline
	if saved < 30*4096 {
		t.Errorf("saved only %d bytes, expected roughly one header per log", saved)
	}
}

// TestZRWAHasNoMetadataChurn: in ZRWA mode the partial-parity metadata
// zone stays empty.
func TestZRWAHasNoMetadataChurn(t *testing.T) {
	runModeVol(t, PPZRWA, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		for i := int64(0); i < 48; i++ {
			mustWriteV(t, v, i, 1, 0)
		}
		for i, d := range devs {
			recs, err := scanMDZones(d, v.lt, v.SectorSize())
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range recs {
				if r.typ.base() == recPartialParity {
					t.Errorf("device %d has a partial-parity log in ZRWA mode", i)
				}
			}
		}
	})
}

// TestDisableResetWALAblation: without the WAL a reset completes (it is
// only the crash window that loses protection).
func TestDisableResetWALAblation(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		devs := newTestDevices(c, 5)
		cfg := DefaultConfig()
		cfg.DisableResetWAL = true
		v, err := Create(c, devs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mustWriteV(t, v, 0, 64, 0)
		if err := v.ResetZone(0); err != nil {
			t.Fatal(err)
		}
		mustWriteV(t, v, 0, 16, 0)
		checkReadV(t, v, 0, 16)
		// No reset-WAL records must exist.
		for _, d := range devs {
			recs, err := scanMDZones(d, v.lt, v.SectorSize())
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range recs {
				if r.typ.base() == recResetWAL {
					t.Error("reset WAL written despite DisableResetWAL")
				}
			}
		}
	})
}

// TestZRWATornUnitRepairedFromPrefixParity: a partial stripe loses one
// middle unit to power failure; the in-place parity prefix repairs it
// even though the stripe never completed.
func TestZRWATornUnitRepairedFromPrefixParity(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(c, extDevConfig())
		}
		cfg := DefaultConfig()
		cfg.ParityMode = PPZRWA
		v, err := Create(c, devs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mustWriteV(t, v, 0, 48, 0) // units 0,1,2 full; unit 3 unwritten
		// Crash: unit 1's device loses its stripe-0 data; everything
		// else (including the in-place parity prefix) persists.
		victim := v.lt.dataDev(0, 0, 1)
		for i, d := range devs {
			m := map[int]int64{}
			for z := 0; z < d.Config().NumZones; z++ {
				zd := d.Zone(z)
				m[z] = zd.WP - d.ZoneStart(z)
			}
			if i == victim {
				m[0] = 0
			}
			d.PowerLossAt(m)
		}
		v2, err := Mount(c, devs, cfg)
		if err != nil {
			t.Fatalf("Mount: %v", err)
		}
		if wp := v2.Zone(0).WP; wp != 48 {
			t.Errorf("WP = %d, want 48 (torn unit repaired)", wp)
		}
		checkReadV(t, v2, 0, 48)
		// The repaired unit is on its own device again.
		row := make([]byte, 16*v2.SectorSize())
		if err := devs[victim].Read(0, row).Wait(); err != nil {
			t.Fatalf("victim read: %v", err)
		}
	})
}

// TestCrashQuickAllModes runs the randomized crash property under every
// parity mode: any prefix the volume exposes after a crash equals what
// was written.
func TestCrashQuickAllModes(t *testing.T) {
	for _, mode := range []ParityMode{PPLog, PPInlineMeta, PPZRWA} {
		mode := mode
		for seed := int64(1); seed <= 6; seed++ {
			c := vclock.New()
			c.Run(func() {
				devs := make([]*zns.Device, 5)
				for i := range devs {
					devs[i] = zns.NewDevice(c, extDevConfig())
				}
				cfg := DefaultConfig()
				cfg.ParityMode = mode
				v, err := Create(c, devs, cfg)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(seed))
				var flushed int64
				lba := int64(0)
				for lba < 200 {
					n := int64(1 + rng.Intn(40))
					if lba+n > 200 {
						n = 200 - lba
					}
					mustWriteV(t, v, lba, int(n), 0)
					lba += n
					if rng.Intn(3) == 0 {
						v.Flush()
						flushed = lba
					}
				}
				for _, d := range devs {
					d.PowerLoss(rng)
				}
				v2, err := Mount(c, devs, cfg)
				if err != nil {
					t.Fatalf("mode %d seed %d: Mount: %v", mode, seed, err)
				}
				wp := v2.Zone(0).WP
				if wp < flushed || wp > 200 {
					t.Fatalf("mode %d seed %d: WP=%d (flushed %d)", mode, seed, wp, flushed)
				}
				if wp > 0 {
					checkReadV(t, v2, 0, int(wp))
				}
			})
		}
	}
}
