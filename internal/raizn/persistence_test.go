package raizn

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// TestFUANeverLost is the §5.3 guarantee: once a FUA write completes,
// the write AND every LBA before it in the zone survive any power loss.
func TestFUANeverLost(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
			rng := rand.New(rand.NewSource(seed))
			lba := int64(0)
			var fuaHigh int64 // end of the last completed FUA write
			for lba < 150 {
				n := int64(1 + rng.Intn(30))
				if lba+n > 150 {
					n = 150 - lba
				}
				flags := zns.Flag(0)
				if rng.Intn(3) == 0 {
					flags = zns.FUA
				}
				mustWriteV(t, v, lba, int(n), flags)
				if flags == zns.FUA {
					fuaHigh = lba + n
				}
				lba += n
			}
			for _, d := range devs {
				d.PowerLoss(rng)
			}
			v2 := remount(t, c, devs)
			if wp := v2.Zone(0).WP; wp < fuaHigh {
				t.Fatalf("seed %d: FUA data lost: WP=%d < FUA end %d", seed, wp, fuaHigh)
			}
			if fuaHigh > 0 {
				checkReadV(t, v2, 0, int(fuaHigh))
			}
		})
	}
}

// TestPreflushOrdersPriorWrites verifies REQ_PREFLUSH semantics: a
// preflush write's completion implies all previously COMPLETED writes are
// durable.
func TestPreflushOrdersPriorWrites(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		zs := v.ZoneSectors()
		mustWriteV(t, v, 0, 50, 0)  // zone 0, volatile
		mustWriteV(t, v, zs, 30, 0) // zone 1, volatile
		mustWriteV(t, v, 50, 10, zns.Preflush|zns.FUA)
		for _, d := range devs {
			d.PowerLoss(nil)
		}
		v2 := remount(t, c, devs)
		if wp := v2.Zone(0).WP; wp < 60 {
			t.Errorf("zone 0 WP=%d, want >= 60", wp)
		}
		if wp := v2.Zone(1).WP - zs; wp < 30 {
			t.Errorf("zone 1 WP=%d, want >= 30 (preflush must persist it)", wp)
		}
		checkReadV(t, v2, 0, 60)
		checkReadV(t, v2, zs, 30)
	})
}

// TestPersistenceBitmapTracksFlushes exercises the Figure 6 bookkeeping.
func TestPersistenceBitmapTracksFlushes(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 33, 0) // SUs 0,1 full + SU 2 partial
		bm := v.PersistenceBitmap(0)
		if bm[0] != 0 {
			t.Errorf("bitmap before flush = %b, want 0", bm[0])
		}
		v.Flush()
		bm = v.PersistenceBitmap(0)
		// 33 sectors = 2 full SUs + 1 sector into SU 2; bits 0..2 set
		// ("a write starting in the middle of a stripe unit implies the
		// beginning was persisted", §5.3).
		if bm[0]&0b111 != 0b111 {
			t.Errorf("bitmap after flush = %b, want low 3 bits", bm[0])
		}
		if bm[0]&^uint64(0b111) != 0 {
			t.Errorf("bitmap has spurious bits: %b", bm[0])
		}
	})
}

// TestFUAFlushesOnlyInvolvedDevices checks the §5.3 optimization: the
// FUA dependency flushes the devices holding non-persisted stripe units,
// not the whole array, when the range allows it.
func TestFUAFlushesOnlyInvolvedDevices(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		before := make([]int64, len(devs))
		snap := func() {
			for i, d := range devs {
				_, _, f, _ := d.Counters()
				before[i] = f
			}
		}
		delta := func() []int64 {
			out := make([]int64, len(devs))
			for i, d := range devs {
				_, _, f, _ := d.Counters()
				out[i] = f - before[i]
			}
			return out
		}
		// A FUA write confined to the first stripe unit + its parity:
		// only those two devices (plus the pp log device, which is the
		// parity device) need flushing.
		snap()
		mustWriteV(t, v, 0, 4, zns.FUA)
		d := delta()
		flushed := 0
		for _, n := range d {
			if n > 0 {
				flushed++
			}
		}
		if flushed == 0 || flushed > 2 {
			t.Errorf("FUA flushed %d devices (%v), want 1-2", flushed, d)
		}
	})
}

// TestCrashQuick is a quick.Check-driven crash property: any prefix the
// volume exposes after a random crash equals what was written.
func TestCrashQuick(t *testing.T) {
	f := func(seed int64) bool {
		ok := true
		c := vclock.New()
		c.Run(func() {
			devs := newTestDevices(c, 5)
			v, err := Create(c, devs, DefaultConfig())
			if err != nil {
				ok = false
				return
			}
			rng := rand.New(rand.NewSource(seed))
			zs := v.ZoneSectors()
			written := map[int]int64{}
			// Interleave writes across up to 3 zones with random sizes,
			// flushes, FUAs, and zone resets.
			for op := 0; op < 60; op++ {
				z := rng.Intn(3)
				switch rng.Intn(10) {
				case 0:
					if v.ResetZone(z) == nil {
						written[z] = 0
					}
				case 1:
					v.Flush()
				default:
					n := int64(1 + rng.Intn(24))
					if written[z]+n > zs {
						continue
					}
					lba := int64(z)*zs + written[z]
					flags := zns.Flag(0)
					if rng.Intn(5) == 0 {
						flags = zns.FUA
					}
					if v.Write(lba, lbaPattern(v, lba, int(n)), flags) == nil {
						written[z] += n
					}
				}
			}
			for _, d := range devs {
				d.PowerLoss(rng)
			}
			v2, err := Mount(c, devs, DefaultConfig())
			if err != nil {
				ok = false
				return
			}
			for z := 0; z < 3; z++ {
				zd := v2.Zone(z)
				wp := zd.WP - int64(z)*zs
				if wp > written[z] {
					ok = false
					return
				}
				if wp > 0 {
					buf := make([]byte, wp*int64(v2.SectorSize()))
					if v2.Read(int64(z)*zs, buf) != nil {
						ok = false
						return
					}
					if !bytes.Equal(buf, lbaPattern(v2, int64(z)*zs, int(wp))) {
						ok = false
						return
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestCrashDuringMetadataGC forces a metadata GC and crashes right after,
// verifying checkpointed records carry recovery.
func TestCrashDuringMetadataGC(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		// Partial-stripe churn generates pp logs; tiny test zones (64
		// sectors) mean the pp zone fills after ~32 single-sector
		// writes and GC rolls it over.
		zs := v.ZoneSectors()
		for z := int64(0); z < 3; z++ {
			for i := int64(0); i < 50; i++ {
				mustWriteV(t, v, z*zs+i, 1, 0)
			}
		}
		v.Flush()
		// One more partial write whose pp log lands in the post-GC
		// zone, then a pessimistic crash.
		mustWriteV(t, v, 3*zs, 1, zns.FUA)
		for _, d := range devs {
			d.PowerLoss(nil)
		}
		v2 := remount(t, c, devs)
		for z := int64(0); z < 3; z++ {
			if wp := v2.Zone(int(z)).WP - z*zs; wp != 50 {
				t.Errorf("zone %d WP=%d, want 50", z, wp)
			}
			checkReadV(t, v2, z*zs, 50)
		}
		if wp := v2.Zone(3).WP - 3*zs; wp != 1 {
			t.Errorf("FUA write lost: zone 3 WP=%d", wp)
		}
	})
}

// TestMaintainCompactsMetadata verifies the §4.3 maintenance operation.
func TestMaintainCompactsMetadata(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		for i := int64(0); i < 40; i++ {
			mustWriteV(t, v, i, 1, 0)
		}
		if err := v.Maintain(); err != nil {
			t.Fatalf("Maintain: %v", err)
		}
		// The volume still works and survives remount.
		mustWriteV(t, v, 40, 24, 0) // completes stripe 0 and more
		v.Flush()
		v2 := remount(t, c, devs)
		checkReadV(t, v2, 0, 64)
	})
}

// TestGenerationCounterPersistedAcrossGC: reset bumps the counter; a
// later metadata GC checkpoint must preserve it.
func TestGenerationCounterPersistedAcrossGC(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 16, 0)
		v.ResetZone(0)
		v.ResetZone(0) // no-op: zone empty
		mustWriteV(t, v, 0, 16, 0)
		v.ResetZone(0)
		gen := v.Generation(0)
		if gen != 2 {
			t.Fatalf("generation = %d, want 2", gen)
		}
		if err := v.Maintain(); err != nil {
			t.Fatal(err)
		}
		v.Flush()
		v2 := remount(t, c, devs)
		// Mount bumps empty zones once more.
		if g := v2.Generation(0); g != gen+1 {
			t.Errorf("generation after GC+remount = %d, want %d", g, gen+1)
		}
	})
}

// TestOpenZoneAccounting drives open/close/reset/finish transitions and
// checks the open-slot count never leaks.
func TestOpenZoneAccounting(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		devs := newTestDevices(c, 5)
		cfg := DefaultConfig()
		cfg.MaxOpenZones = 3
		v, err := Create(c, devs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		zs := v.ZoneSectors()
		// Open 3 zones.
		for z := int64(0); z < 3; z++ {
			mustWriteV(t, v, z*zs, 4, 0)
		}
		// Fill zone 0 to full: frees a slot.
		mustWriteV(t, v, 4, int(zs)-4, 0)
		mustWriteV(t, v, 3*zs, 4, 0)
		// Finish zone 1: frees a slot.
		if err := v.FinishZone(1); err != nil {
			t.Fatal(err)
		}
		mustWriteV(t, v, 4*zs, 4, 0)
		// Reset zone 2: frees a slot.
		if err := v.ResetZone(2); err != nil {
			t.Fatal(err)
		}
		mustWriteV(t, v, 2*zs, 4, 0)
		// All slots used again: 3, 4, 2 are open.
		if err := v.Write(0, lbaPattern(v, 0, 1), 0); err != ErrZoneFull && err != ErrNotSequential {
			t.Errorf("full zone write error = %v", err)
		}
	})
}

// TestExplicitOpenReservesSlot covers OpenZone/CloseZone.
func TestExplicitOpenReservesSlot(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		devs := newTestDevices(c, 5)
		cfg := DefaultConfig()
		cfg.MaxOpenZones = 2
		v, err := Create(c, devs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := v.OpenZone(0); err != nil {
			t.Fatal(err)
		}
		if err := v.OpenZone(1); err != nil {
			t.Fatal(err)
		}
		if err := v.OpenZone(2); err != ErrTooManyOpen {
			t.Errorf("3rd open error = %v", err)
		}
		if err := v.CloseZone(0); err != nil { // nothing written: back to empty
			t.Fatal(err)
		}
		if st := v.Zone(0).State; st != zns.ZoneEmpty {
			t.Errorf("state = %v, want empty", st)
		}
		if err := v.OpenZone(2); err != nil {
			t.Errorf("open after close: %v", err)
		}
	})
}

// TestReadOnlyAfterWriteToReadOnlyVolume covers the read-only mode error
// paths.
func TestReadOnlyModeRejectsMutations(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 16, 0)
		v.FailDevice(0)
		v.FailDevice(1) // double failure -> read-only
		if err := v.ResetZone(0); err != ErrReadOnly {
			t.Errorf("reset error = %v", err)
		}
		if err := v.FinishZone(0); err != ErrReadOnly {
			t.Errorf("finish error = %v", err)
		}
	})
}
