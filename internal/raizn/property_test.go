package raizn

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// TestPropertyScrubNeverLosesAckedData is the subsystem's core safety
// property: under any seeded mix of writes, flushes, bit-rot injection,
// scrub passes, power loss, and remount, every sector below each zone's
// recovered write pointer reads back exactly the data that was written
// there — scrub repairs rot and never "repairs" good data into bad.
//
// Rot is confined to complete, flushed stripes: those are the ones the
// checksum table covers (the partial tail stripe is protected against
// device loss by parity, but single-unit rot there is not attributable).
func TestPropertyScrubNeverLosesAckedData(t *testing.T) {
	if testing.Short() {
		t.Skip("property test runs many simulations")
	}
	prop := func(seed int64) bool {
		return scrubScenarioHolds(t, seed)
	}
	cfg := &quick.Config{
		MaxCount: 12,
		Rand:     rand.New(rand.NewSource(20250805)),
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func scrubScenarioHolds(t *testing.T, seed int64) bool {
	t.Helper()
	ok := true
	c := vclock.New()
	c.Run(func() {
		rng := rand.New(rand.NewSource(seed))
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(c, testDevConfig())
		}
		v, err := Create(c, devs, DefaultConfig())
		if err != nil {
			t.Errorf("seed %d: Create: %v", seed, err)
			ok = false
			return
		}

		const nZones = 3
		zs := v.ZoneSectors()
		stripeSec := v.StripeSectors()
		wp := make([]int64, nZones)      // sectors written per zone
		flushed := make([]int64, nZones) // sectors flushed per zone
		rotted := map[[2]int64]bool{}    // (zone, stripe) already rotted

		scrubAll := func(vol *Volume) bool {
			for z := 0; z < nZones; z++ {
				for s := int64(0); s < vol.StripesPerZone(); s++ {
					res, err := vol.ScrubStripe(z, s, true)
					if err != nil {
						t.Errorf("seed %d: ScrubStripe(%d,%d): %v", seed, z, s, err)
						return false
					}
					if res.Unrepaired {
						t.Errorf("seed %d: stripe (%d,%d) unrepaired", seed, z, s)
						return false
					}
				}
			}
			return true
		}

		// Random operation mix.
		for op := 0; op < 40; op++ {
			switch rng.Intn(6) {
			case 0, 1, 2: // write a chunk to a random non-full zone
				z := rng.Intn(nZones)
				if wp[z] >= zs {
					continue
				}
				n := int64(1 + rng.Intn(48))
				if wp[z]+n > zs {
					n = zs - wp[z]
				}
				lba := int64(z)*zs + wp[z]
				if err := v.Write(lba, lbaPattern(v, lba, int(n)), 0); err != nil {
					t.Errorf("seed %d: write z%d+%d: %v", seed, z, wp[z], err)
					ok = false
					return
				}
				wp[z] += n
			case 3: // flush
				if err := v.Flush(); err != nil {
					t.Errorf("seed %d: flush: %v", seed, err)
					ok = false
					return
				}
				copy(flushed, wp)
			case 4: // rot one sector in a complete, flushed stripe
				z := rng.Intn(nZones)
				stripes := flushed[z] / stripeSec
				if stripes == 0 {
					continue
				}
				s := rng.Int63n(stripes)
				if rotted[[2]int64{int64(z), s}] {
					continue
				}
				rotted[[2]int64{int64(z), s}] = true
				u := rng.Intn(v.lt.n) // any unit, parity included
				dev, pba := unitSectorPBA(v, z, s, u, rng.Int63n(v.lt.su))
				if err := devs[dev].CorruptSector(pba); err != nil {
					t.Errorf("seed %d: corrupt (%d,%d,%d): %v", seed, z, s, u, err)
					ok = false
					return
				}
			case 5: // scrub cycle
				if !scrubAll(v) {
					ok = false
					return
				}
				// Stripes verified (or repaired) this pass are clean
				// again; allow future rot there.
				for k := range rotted {
					delete(rotted, k)
				}
			}
		}

		// Power loss on every device, then remount and a final repair
		// scrub over whatever survived.
		if err := v.Flush(); err != nil {
			t.Errorf("seed %d: final flush: %v", seed, err)
			ok = false
			return
		}
		copy(flushed, wp)
		for _, d := range devs {
			d.PowerLoss(rng)
		}
		v2, err := Mount(c, devs, DefaultConfig())
		if err != nil {
			t.Errorf("seed %d: mount: %v", seed, err)
			ok = false
			return
		}
		if !scrubAll(v2) {
			ok = false
			return
		}

		// The invariant: every zone recovered at least its flushed
		// prefix, and every sector below the recovered WP holds its
		// pattern.
		for z := 0; z < nZones; z++ {
			rwp := v2.Zone(z).WP - int64(z)*zs
			if rwp < flushed[z] {
				t.Errorf("seed %d: z%d recovered WP %d < flushed %d", seed, z, rwp, flushed[z])
				ok = false
				return
			}
			if rwp == 0 {
				continue
			}
			base := int64(z) * zs
			buf := make([]byte, rwp*int64(v2.SectorSize()))
			if err := v2.Read(base, buf); err != nil {
				t.Errorf("seed %d: z%d readback: %v", seed, z, err)
				ok = false
				return
			}
			if !bytes.Equal(buf, lbaPattern(v2, base, int(rwp))) {
				t.Errorf("seed %d: z%d data mismatch below recovered WP %d", seed, z, rwp)
				ok = false
				return
			}
		}
	})
	return ok
}
