//go:build !race

package raizn

// raceEnabled reports whether the race detector is compiled in; guards
// that compare allocation counts skip themselves under -race.
const raceEnabled = false
