// Package raizn implements RAIZN (Redundant Array of Independent Zoned
// Namespaces, ASPLOS'23): a logical volume manager that exposes a single
// host-managed zoned device on top of an array of ZNS SSDs, striping data
// RAID-5 style with rotating parity.
//
// The package is the paper's core contribution. It implements:
//
//   - arithmetic LBA-to-PBA translation over logical zones built from one
//     physical zone per device (§4.1);
//   - stripe buffers and partial-parity logging so sub-stripe writes are
//     crash-safe without violating the devices' no-overwrite rule (§5.1);
//   - log-structured metadata in reserved zones with generation counters,
//     header-tagged records, and swap-zone garbage collection (§4.3);
//   - zone-reset write-ahead logging and stripe-hole recovery, including
//     relocation of writes that collide with power-loss debris (§5.2);
//   - persistence bitmaps and FUA/flush ordering (§5.3);
//   - degraded reads/writes and prioritized, valid-data-only rebuild of
//     replaced devices (§4.2).
//
// All IO is asynchronous (futures on a virtual clock); Write/Read/etc.
// blocking helpers wrap the Submit* calls.
package raizn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"raizn/internal/obs"
	"raizn/internal/ppengine"
	"raizn/internal/ring"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// Errors returned by volume operations.
var (
	ErrNotSequential = errors.New("raizn: write not at logical zone write pointer")
	ErrZoneBoundary  = errors.New("raizn: write crosses a logical zone boundary")
	ErrZoneFull      = errors.New("raizn: logical zone is full")
	ErrTooManyOpen   = errors.New("raizn: max open logical zones exceeded")
	ErrOutOfRange    = errors.New("raizn: address out of range")
	ErrUnaligned     = errors.New("raizn: IO not sector aligned")
	ErrReadBeyondWP  = errors.New("raizn: read beyond logical write pointer")
	ErrZoneResetting = errors.New("raizn: zone reset in progress")
	ErrDegraded      = errors.New("raizn: array already degraded")
	ErrReadOnly      = errors.New("raizn: volume is read-only")
	ErrInconsistent  = errors.New("raizn: array metadata inconsistent")
	ErrNotEnoughDevs = errors.New("raizn: not enough devices")
)

// Config holds the array parameters chosen at creation time.
type Config struct {
	// StripeUnitSectors is the stripe unit ("chunk") size in sectors.
	// The paper settles on 64 KiB (16 sectors) as optimal (§6.1).
	StripeUnitSectors int64
	// MetadataZones is the number of physical zones reserved per device
	// for metadata, minimum 3: one for partial parity, one for general
	// metadata, and at least one swap zone for metadata GC (§4.3).
	MetadataZones int
	// StripeBuffers is the number of pre-allocated stripe buffers per
	// open logical zone (8 in the paper's experiments, §5.1).
	StripeBuffers int
	// MaxOpenZones bounds simultaneously open logical zones. Zero means
	// the device limit minus the reserved metadata zones.
	MaxOpenZones int
	// ArrayID identifies the array in superblocks; zero picks a value
	// derived from the geometry.
	ArrayID uint64
	// ParityMode selects how sub-stripe parity is made crash-safe. The
	// default (PPLog) is the paper's design; the alternatives implement
	// the §5.4 optimizations for devices that support them. ParityMode
	// only applies to the logged engine; EngineZRAID requires PPLog (the
	// default) and persists partial parity its own way.
	ParityMode ParityMode
	// ParityEngine selects the parity-persistence engine (see
	// internal/ppengine): EngineLogged (default) appends partial parity
	// to the metadata zones in one of the ParityMode variants;
	// EngineZRAID writes it log-structured into a dedicated pool of PP
	// zones through the devices' ZRWA, where superseded images never
	// program to flash.
	ParityEngine ParityEngine
	// PPZones is the number of physical zones per device reserved for
	// the zraid engine's partial-parity pool (minimum and default 2).
	// Ignored by the logged engine.
	PPZones int
	// DisableResetWAL skips the zone-reset write-ahead log (§5.2). ONLY
	// for the ablation benchmarks: without the WAL, a crash between the
	// physical resets of a logical zone is unrecoverable ambiguity.
	DisableResetWAL bool
	// RelocationThreshold is the §5.2 "user-modifiable threshold": a
	// logical zone holding at least this many relocated fragments is
	// compacted at mount, rewriting the affected physical zones so all
	// data returns to its arithmetic location. Zero picks the default.
	RelocationThreshold int
	// LegacyWritePath disables per-device sub-IO coalescing and the
	// three-phase (plan/compute/submit) write pipeline, issuing every
	// stripe-unit sub-IO as its own device command with parity computed
	// under the zone lock. Kept for differential testing and as the
	// benchmark baseline; see write_legacy.go.
	LegacyWritePath bool
	// UseRing routes device sub-IOs through the submission/completion
	// ring (internal/ring): the submit phase stages per-device command
	// groups that each device drains under one lock acquisition, with
	// completions reaped by one walker goroutine per batch, and the
	// compute phase fuses parity XOR and CRC into a single pass. Reads
	// are batched the same way. Simulated timing is identical to the
	// direct path (which remains the default, kept alive for
	// differential tests); only host-side fixed costs change.
	UseRing bool
	// Metrics is the registry the volume's counters are backed by. Nil
	// creates a private registry (counters still work; they are just not
	// shared with other components).
	Metrics *obs.Registry
	// MetricsLabel namespaces this volume's raizn_* counters and gauges
	// when several arrays share one registry: a non-empty label turns
	// every series into raizn_*{array="<label>"} so a volume manager
	// hosting many arrays gets per-array series instead of silently
	// summed counters. Empty keeps the bare names — the single-array
	// exporter output is unchanged.
	MetricsLabel string
	// Tracer collects per-request spans through the write/read/reset and
	// scrub paths. Nil creates a private, disabled tracer; tracing costs
	// nothing until it is enabled.
	Tracer *obs.Tracer
	// Journal collects state-transition events (zone lifecycle, partial
	// parity, metadata writes, relocation, degraded/rebuild) across the
	// volume and — when supplied — all its devices, which are attached
	// under their array slot. Nil creates a private, disabled journal;
	// recording costs nothing until it is enabled.
	Journal *obs.Journal
}

// ParityMode selects the partial-parity crash-safety mechanism.
type ParityMode int

const (
	// PPLog writes partial parity as log records (4 KiB header + parity
	// payload) into the dedicated metadata zone — the paper's design
	// (§5.1), requiring no optional device features.
	PPLog ParityMode = iota
	// PPInlineMeta stores the record header in per-block logical
	// metadata (NVMe PI area) instead of a header block, shrinking every
	// log by one sector (§5.4 "logical block metadata"). Requires
	// devices with MetaBytes >= 32.
	PPInlineMeta
	// PPZRWA updates the parity unit in place at its final location
	// through a Zone Random Write Area, eliminating parity logs entirely
	// (§5.4 "ZRWA"). Requires devices with ZRWASectors >= the stripe
	// unit size.
	PPZRWA
)

// ParityEngine selects the parity-persistence engine implementation.
type ParityEngine int

const (
	// EngineLogged is the paper's partial-parity logging (§5.1),
	// including its §5.4 ParityMode variants.
	EngineLogged ParityEngine = iota
	// EngineZRAID is the ZRAID-style log-structured design: partial
	// parity lives in fixed slots inside dedicated PP zones, overwritten
	// in place through the ZRWA and reclaimed by a PP-zone garbage
	// collector. Requires devices with ZRWASectors >= StripeUnitSectors+1.
	EngineZRAID
)

// ReservedZones returns how many physical zones per device the
// configuration reserves outside the logical address space: the metadata
// zones plus, for the zraid engine, the partial-parity pool. Usable
// before withDefaults is applied.
func (c Config) ReservedZones() int {
	r := c.MetadataZones
	if r == 0 {
		r = 3
	}
	if c.ParityEngine == EngineZRAID {
		p := c.PPZones
		if p == 0 {
			p = 2
		}
		r += p
	}
	return r
}

// DefaultConfig returns the paper's evaluation configuration: 64 KiB
// stripe units, 3 metadata zones, 8 stripe buffers per open zone.
func DefaultConfig() Config {
	return Config{
		StripeUnitSectors: 16,
		MetadataZones:     3,
		StripeBuffers:     8,
	}
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.StripeUnitSectors == 0 {
		out.StripeUnitSectors = 16
	}
	if out.MetadataZones == 0 {
		out.MetadataZones = 3
	}
	if out.StripeBuffers == 0 {
		out.StripeBuffers = 8
	}
	if out.RelocationThreshold == 0 {
		out.RelocationThreshold = 64
	}
	if out.ParityEngine == EngineZRAID && out.PPZones == 0 {
		out.PPZones = 2
	}
	return out
}

// stripeBuffer accumulates the data of one in-progress stripe so parity
// can be computed without device reads (§5.1).
type stripeBuffer struct {
	stripe int64  // zone-relative stripe index, -1 when free
	fill   int64  // data sectors present, always a dense prefix
	data   []byte // d*su sectors
}

// logicalZone is the in-memory descriptor of one logical zone (paper
// Table 1: logical zone descriptors + stripe buffers + persistence
// bitmap).
type logicalZone struct {
	idx int

	mu   sync.Mutex
	cond *vclock.Cond // waits: stripe buffer free, reset completion

	state       zns.ZoneState
	wp          int64 // zone-relative sectors claimed by accepted writes
	submittedWP int64 // zone-relative sectors whose sub-IOs are on the devices
	persistedWP int64 // zone-relative sectors known durable
	resetting   bool

	// Write-submission tickets: every accepted write claims the next
	// ticket (submitTail) while it claims its wp range, and performs its
	// device-submit phase only when submitHead has reached the ticket
	// before it — so device sub-IOs hit each physical zone in wp order
	// even though parity/CRC computation runs outside the lock.
	submitTail uint64 // tickets claimed
	submitHead uint64 // tickets whose submit phase completed

	free   []*stripeBuffer         // buffer pool
	active map[int64]*stripeBuffer // stripe index -> buffer in use

	remapped bool // zone has relocated fragments (check reloc map on read)
}

// relocEntry records one relocated fragment: a logical range whose data
// lives in a metadata zone instead of its arithmetic location (§5.2).
type relocEntry struct {
	startLBA, endLBA int64
	dev              int    // device holding the relocated payload
	pba              int64  // payload location (sector after the header)
	data             []byte // in-memory cache (authoritative for reads)
}

// Volume is a RAIZN logical volume. All exported methods are safe for
// concurrent use by simulated goroutines.
type Volume struct {
	clk        *vclock.Clock
	cfg        Config
	lt         *layout
	sectorSize int
	arrayID    uint64

	devs []*zns.Device // nil = failed/removed slot
	md   []*mdManager  // per-device metadata manager (nil when dev nil)

	mu           sync.Mutex
	gen          []uint64 // generation counter per logical zone
	mdSeq        uint64   // sequence for zone-independent records
	degraded     int      // failed device index, or -1
	readOnly     bool
	openCount    int
	rebuilding   bool           // a device replacement is in progress
	rebuiltZones []bool         // during rebuild: zones already re-synced
	pendingWALs  map[int]uint64 // zone-reset intents not yet superseded

	relocMu     sync.Mutex
	reloc       map[int][]relocEntry         // logical zone -> data fragments (sorted by startLBA)
	parityReloc map[int]map[int64]relocEntry // logical zone -> stripe -> relocated parity unit

	// Stripe-unit checksum tables (see checksum.go): per logical zone,
	// n CRC32-C values per complete stripe plus a per-stripe valid flag.
	csMu   sync.Mutex
	cs     [][]uint32
	csHave [][]bool

	// scrubPos[z] is one past the last stripe the scrubber verified in
	// zone z this pass epoch (see scrub.go); devErrs holds per-device
	// health counters fed by foreground reads and scrub.
	scrubMu  sync.Mutex
	scrubPos []int64
	devErrs  []deviceErrors

	zones []*logicalZone

	maxOpen int

	// eng is the parity-persistence engine (Config.ParityEngine): the
	// logged adapter in engine_logged.go or the zraid engine in
	// internal/ppengine. Immutable after construction.
	eng ppengine.Engine

	// devTable is an immutable snapshot of the device/metadata-manager
	// slots, swapped atomically whenever v.devs/v.md/rebuild state change
	// under v.mu. Hot-path lookups (dev, devForZone, mdm) load it once
	// instead of taking v.mu per sub-IO.
	devTable atomic.Pointer[devTable]

	// Hot-path object pools (see write.go): per-write state including
	// plan/parity/CRC slices and parity image buffers, and the persistUpTo
	// device bitmap.
	wsPool   sync.Pool
	needPool sync.Pool

	reg    *obs.Registry
	tracer *obs.Tracer
	jrn    *obs.Journal
	stats  statsCounters

	// rings is the per-array submission/completion ring set, non-nil iff
	// cfg.UseRing. zcEpoch[z] pins zero-copy reads of logical zone z: it
	// is bumped by anything that invalidates device payload views or the
	// relocation overlays a zero-copy read may alias (relocation-map
	// changes, zone reset, device-table changes); see read_zc.go.
	rings   *ring.Set
	zcEpoch []atomic.Uint64
	zcPool  sync.Pool // *ZCRead

	// Crash-point hook (AttachHook); fired at the write plan/compute/
	// submit boundaries, metadata and partial-parity appends, reset and
	// rebuild steps — always outside v.mu and the zone locks. Nil until
	// attached.
	hook obs.Hook

	// blackBox holds the newest flight-recorder black box persisted via
	// PersistBlackBox or recovered by the mount-time metadata scan;
	// metadata GC checkpoints re-emit it (checkpointRecords) so the
	// forensic record survives log roll-over. Guarded by v.mu.
	blackBox    []byte
	blackBoxGen uint64
}

// devTable is the immutable device-slot snapshot published under v.mu.
type devTable struct {
	devs         []*zns.Device
	md           []*mdManager
	degraded     int
	rebuilding   bool
	rebuiltZones []bool
}

// zoneDev returns the device at slot i for IO against logical zone z.
// During a rebuild, the replacement device is invisible for zones that
// have not been re-synced yet: reads take the degraded path and writes
// omit it (§4.2, "writes to non-rebuilt open zones are served in degraded
// mode").
func (t *devTable) zoneDev(i, z int) *zns.Device {
	if t.rebuilding && i == t.degraded && t.rebuiltZones != nil && !t.rebuiltZones[z] {
		return nil
	}
	return t.devs[i]
}

// publishDevTableLocked snapshots the mutable device state into a fresh
// devTable for lock-free readers. Caller holds v.mu (or has exclusive
// access during volume construction). The slices are copied: v.devs,
// v.md and v.rebuiltZones remain the mutable masters.
func (v *Volume) publishDevTableLocked() {
	t := &devTable{
		devs:       append([]*zns.Device(nil), v.devs...),
		md:         append([]*mdManager(nil), v.md...),
		degraded:   v.degraded,
		rebuilding: v.rebuilding,
	}
	if v.rebuiltZones != nil {
		t.rebuiltZones = append([]bool(nil), v.rebuiltZones...)
	}
	v.devTable.Store(t)
	// Any device-slot change (degrade, rebuild progress, replacement)
	// redirects reads, so standing zero-copy views must re-validate.
	v.bumpZCEpoch(-1)
}

// bumpZCEpoch invalidates outstanding zero-copy read views of logical
// zone z (z < 0: all zones). Called whenever something a zero-copy read
// may alias or depend on changes: relocation-map mutations, zone resets,
// and device-table swaps. Device-side payload mutations are caught
// separately by the per-physical-zone zc sequence (zns.Device.ZCValid).
func (v *Volume) bumpZCEpoch(z int) {
	if v.zcEpoch == nil {
		return // volume still under construction
	}
	if z >= 0 {
		v.zcEpoch[z].Add(1)
		return
	}
	for i := range v.zcEpoch {
		v.zcEpoch[i].Add(1)
	}
}

// loadDevs returns the current device-table snapshot.
func (v *Volume) loadDevs() *devTable { return v.devTable.Load() }

// deviceErrors accumulates health-relevant events for one device slot.
type deviceErrors struct {
	readErrors  atomic.Int64 // reads failed with a latent/medium error
	corruptions atomic.Int64 // checksum mismatches attributed to this device
}

// Create initializes a new RAIZN array over the devices (which must be
// identical and empty) and returns the mounted volume.
func Create(clk *vclock.Clock, devs []*zns.Device, cfg Config) (*Volume, error) {
	v, err := newVolume(clk, devs, cfg)
	if err != nil {
		return nil, err
	}
	for _, d := range devs {
		for _, zd := range d.ReportZones() {
			if zd.State != zns.ZoneEmpty {
				return nil, fmt.Errorf("raizn: create on non-empty device (zone %d %v)", zd.Index, zd.State)
			}
		}
	}
	// Persist a superblock on every device.
	var futs []*vclock.Future
	for i := range devs {
		sb := superblock{
			version:   1,
			arrayID:   v.arrayID,
			numDev:    uint32(len(devs)),
			devIndex:  uint32(i),
			su:        v.lt.su,
			physZones: uint32(devs[i].Config().NumZones),
			mdZones:   uint32(v.lt.mdZones),
		}
		fut, _, err := v.md[i].append(&record{
			typ:    recSuperblock,
			gen:    v.nextMDSeq(),
			inline: sb.encode(),
		}, zns.FUA)
		if err != nil {
			return nil, err
		}
		futs = append(futs, fut)
	}
	if err := vclock.WaitAll(futs...); err != nil {
		return nil, err
	}
	return v, nil
}

// newVolume builds the in-memory volume structure shared by Create and
// Mount.
func newVolume(clk *vclock.Clock, devs []*zns.Device, cfg Config) (*Volume, error) {
	cfg = cfg.withDefaults()
	if len(devs) < 3 {
		return nil, ErrNotEnoughDevs
	}
	var ref *zns.Device
	for _, d := range devs {
		if d != nil {
			ref = d
			break
		}
	}
	if ref == nil {
		return nil, ErrNotEnoughDevs
	}
	dc := ref.Config()
	for _, d := range devs {
		if d == nil {
			continue
		}
		c := d.Config()
		if c.SectorSize != dc.SectorSize || c.NumZones != dc.NumZones ||
			c.ZoneSize != dc.ZoneSize || c.ZoneCap != dc.ZoneCap {
			return nil, errors.New("raizn: devices have mismatched geometry")
		}
	}
	if cfg.MetadataZones < 3 {
		return nil, errors.New("raizn: need at least 3 metadata zones")
	}
	if dc.ZoneCap%cfg.StripeUnitSectors != 0 {
		return nil, errors.New("raizn: zone capacity not a multiple of the stripe unit")
	}
	ppZones := 0
	if cfg.ParityEngine == EngineZRAID {
		ppZones = cfg.PPZones
		if ppZones < 2 {
			return nil, errors.New("raizn: the zraid engine needs at least 2 PP zones per device")
		}
		if cfg.ParityMode != PPLog {
			return nil, errors.New("raizn: the zraid engine replaces the parity log; ParityMode must be PPLog")
		}
		if dc.ZRWASectors < cfg.StripeUnitSectors+1 {
			return nil, errors.New("raizn: the zraid engine requires a random write area of at least one PP slot (stripe unit + header)")
		}
	}
	numZones := dc.NumZones - cfg.MetadataZones - ppZones
	if numZones < 1 {
		return nil, errors.New("raizn: no data zones left after metadata reservation")
	}
	lt := &layout{
		n:            len(devs),
		d:            len(devs) - 1,
		su:           cfg.StripeUnitSectors,
		physZoneSize: dc.ZoneSize,
		physZoneCap:  dc.ZoneCap,
		numZones:     numZones,
		mdZones:      cfg.MetadataZones,
		ppZones:      ppZones,
	}
	maxOpen := cfg.MaxOpenZones
	if maxOpen == 0 {
		maxOpen = dc.MaxOpenZones - cfg.MetadataZones
		if ppZones > 0 {
			// The zraid engine keeps at most one PP zone open per device
			// (the pool head; advancing finishes the old head).
			maxOpen--
		}
		if maxOpen < 1 {
			maxOpen = 1
		}
	}
	// A metadata zone must be able to hold a full checkpoint (one
	// partial-parity record of up to 1+SU sectors per open logical zone,
	// plus superblock/counters) with room left for new records, or
	// metadata GC cannot make progress.
	if dc.ZoneCap < int64(maxOpen+2)*(cfg.StripeUnitSectors+1) {
		return nil, errors.New("raizn: zone capacity too small for metadata checkpoints; increase zone capacity or reduce MaxOpenZones")
	}
	switch cfg.ParityMode {
	case PPInlineMeta:
		if dc.MetaBytes < headerBytes {
			return nil, errors.New("raizn: PPInlineMeta requires devices with at least 32 bytes of per-block metadata")
		}
	case PPZRWA:
		if dc.ZRWASectors < cfg.StripeUnitSectors {
			return nil, errors.New("raizn: PPZRWA requires a random write area of at least one stripe unit")
		}
	}
	arrayID := cfg.ArrayID
	if arrayID == 0 {
		arrayID = uint64(lt.n)<<32 ^ uint64(lt.su)<<16 ^ uint64(lt.numZones)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.NewTracer(clk, obs.Config{})
	}
	jrn := cfg.Journal
	if jrn == nil {
		jrn = obs.NewJournal(clk, obs.JournalConfig{})
	} else {
		// A shared journal covers the devices too: each records under
		// its array slot, so analyzers can correlate logical events
		// (SrcLogical) with the physical transitions they caused.
		for i, d := range devs {
			if d != nil {
				d.AttachJournal(jrn, i)
			}
		}
	}
	v := &Volume{
		clk:         clk,
		cfg:         cfg,
		lt:          lt,
		reg:         reg,
		tracer:      tracer,
		jrn:         jrn,
		sectorSize:  dc.SectorSize,
		arrayID:     arrayID,
		devs:        append([]*zns.Device(nil), devs...),
		md:          make([]*mdManager, len(devs)),
		gen:         make([]uint64, numZones),
		degraded:    -1,
		reloc:       make(map[int][]relocEntry),
		parityReloc: make(map[int]map[int64]relocEntry),
		pendingWALs: make(map[int]uint64),
		cs:          make([][]uint32, numZones),
		csHave:      make([][]bool, numZones),
		scrubPos:    make([]int64, numZones),
		devErrs:     make([]deviceErrors, len(devs)),
		zones:       make([]*logicalZone, numZones),
		maxOpen:     maxOpen,
	}
	for i := range devs {
		if devs[i] != nil {
			v.md[i] = newMDManager(v, i)
		}
	}
	if cfg.UseRing {
		v.rings = ring.NewSet(clk, reg, cfg.MetricsLabel, lt.n)
	}
	v.zcEpoch = make([]atomic.Uint64, numZones)
	v.stats = newStatsCounters(reg, cfg.MetricsLabel)
	registerWAHelp(reg)
	reg.Help("raizn_degraded_slot", "device slot currently degraded, -1 when the array is healthy")
	reg.GaugeFunc(obs.LabeledName("raizn_degraded_slot", "array", cfg.MetricsLabel), func() int64 {
		v.mu.Lock()
		defer v.mu.Unlock()
		return int64(v.degraded)
	})
	reg.Help("raizn_open_zones", "logical zones currently open on the array")
	reg.GaugeFunc(obs.LabeledName("raizn_open_zones", "array", cfg.MetricsLabel), func() int64 {
		v.mu.Lock()
		defer v.mu.Unlock()
		return int64(v.openCount)
	})
	if cfg.Tracer != nil {
		// Satellite of the flight recorder: the watchdog's per-window
		// span-dump cap surfaces its drop count through the registry.
		reg.Help("raizn_obs_dropped_spans", "slow-IO watchdog span trees dropped by the per-window and overall retention caps")
		cfg.Tracer.Watchdog().BindDropGauge(
			reg.Gauge(obs.LabeledName("raizn_obs_dropped_spans", "array", cfg.MetricsLabel)))
	}
	for z := range v.zones {
		v.zones[z] = v.newLogicalZone(z)
	}
	v.publishDevTableLocked()
	if cfg.ParityEngine == EngineZRAID {
		eng, err := ppengine.NewZRAID(ppengine.ZRAIDConfig{
			Clock:       clk,
			NumDevices:  lt.n,
			Device:      v.dev,
			PPZone:      lt.ppZoneIndex,
			PPZones:     ppZones,
			SectorSize:  dc.SectorSize,
			SU:          lt.su,
			ZoneCap:     dc.ZoneCap,
			ZRWASectors: dc.ZRWASectors,
			Charge: func(hdr, pay int64) {
				v.stats.waPPHeaderBytes.Add(hdr)
				v.stats.waPPPayloadBytes.Add(pay)
			},
			Journal: jrn,
			Hook:    v.fireHook,
		})
		if err != nil {
			return nil, err
		}
		v.eng = eng
	} else {
		v.eng = &loggedEngine{v: v}
	}
	registerEngineMetrics(reg, cfg.MetricsLabel, v.eng)
	return v, nil
}

// ParityEngineKind reports which parity-persistence engine the volume
// runs.
func (v *Volume) ParityEngineKind() ppengine.Kind { return v.eng.Kind() }

// PPEngineStats returns the parity-persistence engine's lifetime
// counters (volatile/permanent byte split, fallbacks, GC activity).
func (v *Volume) PPEngineStats() ppengine.Stats { return v.eng.Stats() }

// Tracer returns the volume's span tracer (never nil; disabled unless
// the caller enabled it or supplied an enabled one via Config).
func (v *Volume) Tracer() *obs.Tracer { return v.tracer }

// Metrics returns the registry the volume's counters live in.
func (v *Volume) Metrics() *obs.Registry { return v.reg }

// Journal returns the volume's event journal (never nil; disabled
// unless the caller enabled it or supplied an enabled one via Config).
func (v *Volume) Journal() *obs.Journal { return v.jrn }

// AttachHook points the volume at a crash-point hook (see obs.HookPoint
// for the point taxonomy). Attach while the volume is quiescent —
// conventionally right after Create/Mount returns and before workload IO
// is issued; passing nil detaches. Device-level points are attached
// separately via zns.Device.AttachHook.
func (v *Volume) AttachHook(h obs.Hook) { v.hook = h }

// fireHook invokes the attached crash-point hook; free when detached.
// Callers must not hold v.mu or any zone lock.
func (v *Volume) fireHook(name string, src, zone int, arg int64) {
	if v.hook != nil {
		v.hook(obs.HookPoint{Name: name, Src: src, Zone: zone, Arg: arg})
	}
}

func (v *Volume) newLogicalZone(z int) *logicalZone {
	lz := &logicalZone{
		idx:    z,
		state:  zns.ZoneEmpty,
		active: make(map[int64]*stripeBuffer),
	}
	lz.cond = v.clk.NewCond(&lz.mu)
	for i := 0; i < v.cfg.StripeBuffers; i++ {
		lz.free = append(lz.free, &stripeBuffer{
			stripe: -1,
			data:   make([]byte, v.lt.stripeSectors()*int64(v.sectorSize)),
		})
	}
	return lz
}

func (v *Volume) nextMDSeq() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.mdSeq++
	return v.mdSeq
}

// --- Geometry accessors (the ZNS face RAIZN exposes to the host) ---

// SectorSize returns the logical block size in bytes.
func (v *Volume) SectorSize() int { return v.sectorSize }

// NumZones returns the number of logical zones.
func (v *Volume) NumZones() int { return v.lt.numZones }

// NumDevices returns the number of device slots in the array.
func (v *Volume) NumDevices() int { return v.lt.n }

// ZoneSectors returns the capacity (and address-space stride) of a
// logical zone in sectors: D physical zone capacities.
func (v *Volume) ZoneSectors() int64 { return v.lt.zoneSectors() }

// NumSectors returns the volume's logical capacity in sectors.
func (v *Volume) NumSectors() int64 { return v.lt.numSectors() }

// PhysZoneRole reports how the array uses physical zone index z on every
// device: "data" (striped user data + parity), "md" (reserved metadata
// log), or "pp" (dedicated partial-parity pool; only the zraid engine
// reserves any). Zones past the reserved region are "data" — the layout
// never addresses them.
func (v *Volume) PhysZoneRole(z int) string {
	switch {
	case z >= v.lt.numZones+v.lt.mdZones && z < v.lt.numZones+v.lt.mdZones+v.lt.ppZones:
		return "pp"
	case z >= v.lt.numZones && z < v.lt.numZones+v.lt.mdZones:
		return "md"
	default:
		return "data"
	}
}

// StripeSectors returns the data sectors per stripe (D stripe units).
func (v *Volume) StripeSectors() int64 { return v.lt.stripeSectors() }

// MaxOpenZones returns the maximum number of simultaneously open logical
// zones.
func (v *Volume) MaxOpenZones() int { return v.maxOpen }

// ZoneDesc describes a logical zone to the host.
type ZoneDesc struct {
	Index       int
	State       zns.ZoneState
	WP          int64 // absolute LBA of the logical write pointer
	PersistedWP int64 // absolute LBA below which data is known durable
	Remapped    bool  // zone holds relocated fragments
}

// Zone returns the descriptor of logical zone z.
func (v *Volume) Zone(z int) ZoneDesc {
	lz := v.zones[z]
	lz.mu.Lock()
	defer lz.mu.Unlock()
	return ZoneDesc{
		Index:       z,
		State:       lz.state,
		WP:          v.lt.zoneStart(z) + lz.submittedWP,
		PersistedWP: v.lt.zoneStart(z) + lz.persistedWP,
		Remapped:    lz.remapped,
	}
}

// ReportZones returns descriptors for every logical zone.
func (v *Volume) ReportZones() []ZoneDesc {
	out := make([]ZoneDesc, v.lt.numZones)
	for z := range out {
		out[z] = v.Zone(z)
	}
	return out
}

// Generation returns the generation counter of logical zone z.
func (v *Volume) Generation(z int) uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.gen[z]
}

// Degraded returns the failed device index, or -1 if the array is whole.
func (v *Volume) Degraded() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.degraded
}

// ReadOnly reports whether the volume has entered read-only mode.
func (v *Volume) ReadOnly() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.readOnly
}

// FailDevice marks device i failed, entering degraded mode. A second
// failure is fatal for RAID-5; it returns ErrDegraded and puts the volume
// in read-only mode.
func (v *Volume) FailDevice(i int) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.failDeviceLocked(i)
}

func (v *Volume) failDeviceLocked(i int) error {
	if v.degraded == i {
		return nil
	}
	if v.degraded >= 0 {
		v.readOnly = true
		return ErrDegraded
	}
	v.degraded = i
	if v.devs[i] != nil {
		v.devs[i].Fail()
	}
	v.devs[i] = nil
	v.md[i] = nil
	v.publishDevTableLocked()
	v.jrn.Record(obs.EvDegraded, i, -1, 1, 0, 0, 0)
	return nil
}

// noteDeviceError inspects a sub-IO error and transitions to degraded
// mode when a device has died underneath us.
func (v *Volume) noteDeviceError(dev int, err error) {
	if errors.Is(err, zns.ErrReadMedium) {
		v.noteReadMedium(dev)
		return
	}
	if errors.Is(err, zns.ErrDeviceFailed) {
		v.mu.Lock()
		_ = v.failDeviceLocked(dev)
		v.mu.Unlock()
	}
}

// dev returns the device at slot i, or nil if failed. Lock-free: reads
// the published device-table snapshot.
func (v *Volume) dev(i int) *zns.Device {
	return v.loadDevs().devs[i]
}

// devForZone returns the device at slot i for IO against logical zone z;
// see devTable.zoneDev. Lock-free.
func (v *Volume) devForZone(i, z int) *zns.Device {
	return v.loadDevs().zoneDev(i, z)
}

// mdm returns the metadata manager of device i, or nil. Lock-free.
func (v *Volume) mdm(i int) *mdManager {
	return v.loadDevs().md[i]
}

// Unmount flushes all devices. The volume object must not be used
// afterwards.
func (v *Volume) Unmount() error {
	return v.SubmitFlush().Wait()
}

// --- Blocking convenience wrappers ---

// Write writes data at lba and blocks until it completes.
func (v *Volume) Write(lba int64, data []byte, flags zns.Flag) error {
	return v.SubmitWrite(lba, data, flags).Wait()
}

// Read fills buf from lba and blocks until it completes.
func (v *Volume) Read(lba int64, buf []byte) error {
	return v.SubmitRead(lba, buf).Wait()
}

// Flush persists all previously completed writes on every device.
func (v *Volume) Flush() error {
	return v.SubmitFlush().Wait()
}
