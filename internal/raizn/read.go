package raizn

import (
	"errors"
	"sync"

	"raizn/internal/obs"
	"raizn/internal/parity"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// SubmitRead fills buf starting at lba. Reads may span stripes and
// logical zones. Reads of a failed device's stripe units are served by
// reconstruction (degraded read, §4.2); ranges relocated by crash
// recovery are served from the relocation map (§5.2).
func (v *Volume) SubmitRead(lba int64, buf []byte) *vclock.Future {
	if len(buf) == 0 || len(buf)%v.sectorSize != 0 {
		return v.clk.Completed(ErrUnaligned)
	}
	nSectors := int64(len(buf) / v.sectorSize)
	if lba < 0 || lba+nSectors > v.lt.numSectors() {
		return v.clk.Completed(ErrOutOfRange)
	}

	v.stats.logicalReadBytes.Add(int64(len(buf)))
	// Root span of the request; nil (and free) while tracing is disabled.
	sp := v.tracer.Begin(obs.OpRead, lba, int64(len(buf)))
	var futs []subIO
	var stage *readStage
	if v.rings != nil {
		// Ring mode: device sub-reads are staged and drained per device
		// as one SQ group (see drainReadStage) instead of being issued
		// one command at a time.
		stage = newReadStage()
	}
	ss := int64(v.sectorSize)
	pos := lba
	out := buf
	for len(out) > 0 {
		z := v.lt.zoneOf(pos)
		zoneEnd := v.lt.zoneStart(z) + v.lt.zoneSectors()
		n := zoneEnd - pos
		if avail := int64(len(out)) / ss; n > avail {
			n = avail
		}
		if err := v.readZonePortion(sp, z, pos, out[:n*ss], &futs, stage); err != nil {
			sp.End(err)
			if stage != nil {
				v.drainReadStage(stage, &futs) // deliver already-staged SQEs
			}
			return v.clk.Completed(err)
		}
		pos += n
		out = out[n*ss:]
	}
	if stage != nil {
		v.drainReadStage(stage, &futs)
	}
	sp.Mark(obs.PhaseSubmit)

	result := v.clk.NewFuture()
	v.clk.Go(func() {
		err := v.awaitReads(futs)
		sp.End(err)
		result.Complete(err)
	})
	return result
}

// awaitReads waits for read sub-IOs; a device death mid-read is returned
// as an error (the caller should retry, which will take the degraded
// path).
func (v *Volume) awaitReads(futs []subIO) error {
	var firstErr error
	for _, s := range futs {
		err := s.fut.Wait()
		if err == nil {
			continue
		}
		v.noteDeviceError(s.dev, err)
		if errors.Is(err, zns.ErrReadMedium) && s.repair != nil && v.Degraded() < 0 {
			// Latent sector error on a foreground read: reconstruct the
			// whole piece from parity + surviving units (§4.2 machinery).
			c := s.repair
			if rerr := v.degradedReadPiece(nil, c.z, c.s, c.u, c.a, c.b, c.dst, c.wp).Wait(); rerr == nil {
				v.stats.readErrorRepairs.Add(1)
				continue
			}
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// readZonePortion plans the sub-reads for [pos, pos+len) inside zone z.
func (v *Volume) readZonePortion(sp *obs.Span, z int, pos int64, out []byte, futs *[]subIO, stage *readStage) error {
	lz := v.zones[z]
	lz.mu.Lock()
	// Read against the submitted write pointer: sectors a concurrent
	// write has claimed but not yet submitted to the devices are not
	// readable (their payload may still be mid-pipeline).
	wp := lz.submittedWP
	state := lz.state
	lz.mu.Unlock()

	ss := int64(v.sectorSize)
	off := pos - v.lt.zoneStart(z)
	n := int64(len(out)) / ss
	if off+n > wp && state != zns.ZoneFull {
		return ErrReadBeyondWP
	}

	// Zero-fill anything beyond the write pointer (finished zones).
	if off+n > wp {
		zeroFrom := wp - off
		if zeroFrom < 0 {
			zeroFrom = 0
		}
		tail := out[zeroFrom*ss:]
		for i := range tail {
			tail[i] = 0
		}
		if zeroFrom == 0 {
			return nil
		}
		n = zeroFrom
		out = out[:n*ss]
	}

	// Split into per-stripe-unit pieces.
	stripeSec := v.lt.stripeSectors()
	for n > 0 {
		s := off / stripeSec
		inStripe := off % stripeSec
		u := int(inStripe / v.lt.su)
		intra := inStripe % v.lt.su
		pieceLen := v.lt.su - intra
		if pieceLen > n {
			pieceLen = n
		}
		if err := v.readPiece(sp, z, s, u, intra, intra+pieceLen, out[:pieceLen*ss], wp, futs, stage); err != nil {
			return err
		}
		out = out[pieceLen*ss:]
		off += pieceLen
		n -= pieceLen
	}
	return nil
}

// readPiece reads intra offsets [a, b) of data unit u in stripe s of zone
// z into dst, choosing between the normal, relocated, and degraded paths.
func (v *Volume) readPiece(sp *obs.Span, z int, s int64, u int, a, b int64, dst []byte, zoneWP int64, futs *[]subIO, stage *readStage) error {
	dev := v.lt.dataDev(z, s, u)
	if v.devForZone(dev, z) == nil {
		fut := v.degradedReadPiece(sp, z, s, u, a, b, dst, zoneWP)
		*futs = append(*futs, subIO{dev: dev, fut: fut})
		return nil
	}
	// Tag the device sub-reads with reconstruction context so a latent
	// sector error is transparently read-repaired in awaitReads.
	pre := len(*futs)
	var spre int
	if stage != nil {
		spre = len(stage.cmds)
	}
	if err := v.readUnitPieceSpan(sp, z, s, u, a, b, dst, futs, stage); err != nil {
		return err
	}
	ctx := &repairCtx{z: z, s: s, u: u, a: a, b: b, dst: dst, wp: zoneWP}
	for i := pre; i < len(*futs); i++ {
		(*futs)[i].repair = ctx
	}
	if stage != nil {
		for i := spre; i < len(stage.cmds); i++ {
			stage.reps[i] = ctx
		}
	}
	return nil
}

// readUnitPiece reads from the unit's owning (live) device, overlaying
// any relocated fragments that shadow parts of the range.
func (v *Volume) readUnitPiece(z int, s int64, u int, a, b int64, dst []byte, futs *[]subIO) error {
	return v.readUnitPieceSpan(nil, z, s, u, a, b, dst, futs, nil)
}

// readUnitPieceSpan is readUnitPiece with a parent span: each device
// sub-read becomes an OpDevRead child.
func (v *Volume) readUnitPieceSpan(sp *obs.Span, z int, s int64, u int, a, b int64, dst []byte, futs *[]subIO, stage *readStage) error {
	ss := int64(v.sectorSize)
	lbaA := v.lt.stripeStart(z, s) + int64(u)*v.lt.su + a
	lbaB := lbaA + (b - a)

	type gap struct{ lo, hi int64 } // LBA ranges not covered by reloc
	gaps := []gap{{lbaA, lbaB}}
	{
		v.relocMu.Lock()
		frags := v.reloc[z]
		for _, f := range frags {
			if f.endLBA <= lbaA || f.startLBA >= lbaB {
				continue
			}
			// Copy the overlapping part from the in-memory cache.
			lo, hi := max(f.startLBA, lbaA), min(f.endLBA, lbaB)
			copy(dst[(lo-lbaA)*ss:(hi-lbaA)*ss], f.data[(lo-f.startLBA)*ss:(hi-f.startLBA)*ss])
			// Remove [lo,hi) from the gaps.
			var ng []gap
			for _, g := range gaps {
				if hi <= g.lo || lo >= g.hi {
					ng = append(ng, g)
					continue
				}
				if g.lo < lo {
					ng = append(ng, gap{g.lo, lo})
				}
				if hi < g.hi {
					ng = append(ng, gap{hi, g.hi})
				}
			}
			gaps = ng
		}
		v.relocMu.Unlock()
	}

	dev := v.lt.dataDev(z, s, u)
	d := v.devForZone(dev, z)
	if d == nil {
		return ErrInconsistent // caller checked liveness
	}
	for _, g := range gaps {
		intraLo := a + (g.lo - lbaA)
		pba := int64(z)*v.lt.physZoneSize + s*v.lt.su + intraLo
		out := dst[(g.lo-lbaA)*ss : (g.hi-lbaA)*ss]
		child := sp.Child(obs.OpDevRead, dev, pba, int64(len(out)))
		if stage != nil {
			stage.push(dev, d, zns.Cmd{Op: zns.CmdRead, Sector: pba, Data: out, Span: child})
		} else {
			fut := d.ReadSpan(child, pba, out)
			*futs = append(*futs, subIO{dev: dev, fut: fut})
		}
	}
	return nil
}

// degradedReadPiece reconstructs intra offsets [a, b) of the missing data
// unit u from the stripe buffer (partial stripes) or from parity plus the
// surviving units (complete stripes).
func (v *Volume) degradedReadPiece(sp *obs.Span, z int, s int64, u int, a, b int64, dst []byte, zoneWP int64) *vclock.Future {
	v.stats.degradedReads.Add(1)
	ss := int64(v.sectorSize)
	lz := v.zones[z]

	// Partial tail stripes live in a stripe buffer; serve from memory.
	lz.mu.Lock()
	if buf, ok := lz.active[s]; ok {
		base := int64(u) * v.lt.su * ss
		copy(dst, buf.data[base+a*ss:base+b*ss])
		lz.mu.Unlock()
		return v.clk.Completed(nil)
	}
	lz.mu.Unlock()

	// Complete stripe (or finished zone): reconstruct from media.
	stripeSec := v.lt.stripeSectors()
	g := zoneWP - s*stripeSec
	if g < 0 {
		g = 0
	}
	if g > stripeSec {
		g = stripeSec
	}
	fills := v.lt.unitFills(g)
	if fills[u] <= a {
		// The missing unit was never written here: zeroes.
		for i := range dst {
			dst[i] = 0
		}
		return v.clk.Completed(nil)
	}

	var futs []subIO
	nBytes := (b - a) * ss
	pbuf := make([]byte, nBytes)
	if err := v.readParityPieceSpan(sp, z, s, a, b, pbuf, &futs, nil); err != nil {
		return v.clk.Completed(err)
	}
	survivors := make([][]byte, 0, v.lt.d)
	for u2 := 0; u2 < v.lt.d; u2++ {
		if u2 == u || fills[u2] <= a {
			continue
		}
		hi := fills[u2]
		if hi > b {
			hi = b
		}
		sb := make([]byte, (hi-a)*ss)
		if err := v.readUnitPieceSpan(sp, z, s, u2, a, hi, sb, &futs, nil); err != nil {
			return v.clk.Completed(err)
		}
		survivors = append(survivors, sb)
	}

	result := v.clk.NewFuture()
	v.clk.Go(func() {
		if err := v.awaitReads(futs); err != nil {
			result.Complete(err)
			return
		}
		copy(dst, pbuf)
		for _, sb := range survivors {
			parity.XORInto(dst[:len(sb)], sb)
		}
		result.Complete(nil)
	})
	return result
}

// readParityPiece reads intra offsets [a, b) of the parity unit of stripe
// s, honoring relocated parity.
func (v *Volume) readParityPiece(z int, s int64, a, b int64, dst []byte, futs *[]subIO) error {
	return v.readParityPieceSpan(nil, z, s, a, b, dst, futs, nil)
}

// readParityPieceSpan is readParityPiece with a parent span. A relocated
// parity fragment may cover only part of the unit (a burn-split relocates
// just the burned prefix; the remainder was written in place), so the
// uncovered intra ranges are still read from the parity device.
func (v *Volume) readParityPieceSpan(sp *obs.Span, z int, s int64, a, b int64, dst []byte, futs *[]subIO, stage *readStage) error {
	ss := int64(v.sectorSize)
	type gap struct{ lo, hi int64 } // intra ranges not covered by reloc
	gaps := []gap{{a, b}}
	v.relocMu.Lock()
	if m := v.parityReloc[z]; m != nil {
		if e, ok := m[s]; ok {
			lo := e.startLBA - v.lt.stripeStart(z, s)
			hi := lo + int64(len(e.data))/ss
			cl, ch := max(lo, a), min(hi, b)
			if cl < ch {
				copy(dst[(cl-a)*ss:(ch-a)*ss], e.data[(cl-lo)*ss:(ch-lo)*ss])
				var ng []gap
				for _, g := range gaps {
					if ch <= g.lo || cl >= g.hi {
						ng = append(ng, g)
						continue
					}
					if g.lo < cl {
						ng = append(ng, gap{g.lo, cl})
					}
					if ch < g.hi {
						ng = append(ng, gap{ch, g.hi})
					}
				}
				gaps = ng
			}
		}
	}
	v.relocMu.Unlock()
	if len(gaps) == 0 {
		return nil
	}

	dev := v.lt.parityDev(z, s)
	d := v.devForZone(dev, z)
	if d == nil {
		return ErrInconsistent // double failure
	}
	for _, g := range gaps {
		pba := v.lt.parityPBA(z, s) + g.lo
		out := dst[(g.lo-a)*ss : (g.hi-a)*ss]
		child := sp.Child(obs.OpDevRead, dev, pba, int64(len(out)))
		if stage != nil {
			stage.push(dev, d, zns.Cmd{Op: zns.CmdRead, Sector: pba, Data: out, Span: child})
		} else {
			*futs = append(*futs, subIO{dev: dev, fut: d.ReadSpan(child, pba, out)})
		}
	}
	return nil
}

// readStage accumulates device sub-reads for ring-mode submission:
// instead of one device command per gap, SubmitRead stages every SQE and
// drainReadStage hands each device its whole group in one drain (one
// lock acquisition, one future slab), with all completions reaped by a
// single walker. Stages are pooled; drainReadStage recycles them.
type readStage struct {
	cmds []zns.Cmd
	devs []int         // array slot per staged cmd
	dh   []*zns.Device // device handle per staged cmd
	reps []*repairCtx  // read-repair context per staged cmd
	idx  []int         // per-group scratch: staged indices in drain order
}

var readStagePool = sync.Pool{New: func() any { return new(readStage) }}

func newReadStage() *readStage {
	s := readStagePool.Get().(*readStage)
	s.cmds = s.cmds[:0]
	s.devs = s.devs[:0]
	s.dh = s.dh[:0]
	s.reps = s.reps[:0]
	s.idx = s.idx[:0]
	return s
}

func (s *readStage) push(dev int, d *zns.Device, cmd zns.Cmd) {
	s.cmds = append(s.cmds, cmd)
	s.devs = append(s.devs, dev)
	s.dh = append(s.dh, d)
	s.reps = append(s.reps, nil)
}

// drainReadStage drains the staged SQEs through the ring — one group per
// device, preserving per-device staging order — and appends the
// resulting sub-IOs (futures plus their read-repair contexts) to futs.
// The stage is recycled; the batch recycles itself after the completion
// walker delivers the last CQE.
func (v *Volume) drainReadStage(stage *readStage, futs *[]subIO) {
	b := v.rings.Batch()
	for dev := 0; dev < v.lt.n; dev++ {
		var d *zns.Device
		stage.idx = stage.idx[:0]
		for i := range stage.cmds {
			if stage.devs[i] == dev {
				b.Push(stage.cmds[i])
				stage.idx = append(stage.idx, i)
				d = stage.dh[i]
			}
		}
		if d == nil {
			continue
		}
		group := b.Flush(d, dev)
		for k := range group {
			*futs = append(*futs, subIO{dev: dev, fut: group[k].Fut, repair: stage.reps[stage.idx[k]]})
		}
	}
	b.Submit()
	for i := range stage.cmds {
		stage.cmds[i] = zns.Cmd{}
		stage.dh[i] = nil
		stage.reps[i] = nil
	}
	readStagePool.Put(stage)
}
