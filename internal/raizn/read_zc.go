package raizn

import (
	"errors"

	"raizn/internal/obs"
	"raizn/internal/zns"
)

// Zero-copy reads. SubmitReadZC serves a logical range without copying
// payload into caller buffers: device-resident ranges become views of
// device memory (zns.Device.ReadZCSpan / CmdReadZC), relocation-overlay
// ranges become views of the fragment cache, and only the pieces that
// cannot be aliased — degraded reconstruction, ranges the device cannot
// serve zero-copy — are materialized in a pooled arena. The simulated
// read cost (pipe occupancy, latency) is identical to SubmitRead.
//
// Views are pinned optimistically, at two layers:
//
//   - each device view carries the physical zone's zc sequence, bumped
//     by anything that mutates or frees written payload in place (reset,
//     power-loss truncation, corruption, ZRWA overwrites);
//   - the whole request carries the touched logical zones' raizn zc
//     epochs (Volume.zcEpoch), bumped on relocation-map mutations and
//     device-table swaps.
//
// Wait re-validates every pin after the sub-IOs complete; a torn pin
// (epoch-based reclamation: the epoch moved on, so the view may be
// stale) silently falls back to one copying SubmitRead retry.

// zcPart is one ordered segment of the assembled result.
type zcPart struct {
	off  int64  // sector offset relative to the request start
	data []byte // view (device memory, reloc cache, zero slab, or arena)
}

// zcPin pins one device view: valid while the physical zone's zc
// sequence is unchanged.
type zcPin struct {
	d    *zns.Device
	zone int
	seq  uint64
}

type zcGap struct{ lo, hi int64 }

// zcZeroSlab backs reads of a finished zone's tail beyond the write
// pointer, which reads as zeroes. Shared and never written.
var zcZeroSlab = make([]byte, 256<<10)

// ZCRead is an in-flight zero-copy read. Wait blocks for the sub-IOs
// and validates the pins; Segs then exposes the result as ordered
// segments covering the requested range. Release returns the (pooled)
// request object; the segments must not be used afterwards — nor after
// anything that bumps the pinned epochs (they remain safe memory, but
// may no longer reflect volume content).
type ZCRead struct {
	v   *Volume
	sp  *obs.Span
	lba int64
	n   int64 // sectors
	err error

	futs    []subIO
	parts   []zcPart
	segs    [][]byte
	pins    []zcPin
	zcZ     []int    // captured logical-zone epochs...
	zcV     []uint64 // ...and their values at plan time
	pending []int    // staged CmdReadZC index -> parts index (ring mode)

	gapA, gapB []zcGap // overlay-splitting scratch

	arenaBuf []byte // piece-fallback arena (block recycled across reads)
	arenaOff int
	fb       []byte // full-copy fallback buffer

	fellBack bool
	done     bool
}

func (v *Volume) getZCRead() *ZCRead {
	if x := v.zcPool.Get(); x != nil {
		r := x.(*ZCRead)
		r.futs = r.futs[:0]
		r.parts = r.parts[:0]
		r.segs = r.segs[:0]
		r.pins = r.pins[:0]
		r.zcZ = r.zcZ[:0]
		r.zcV = r.zcV[:0]
		r.pending = r.pending[:0]
		r.arenaOff = 0
		r.err = nil
		r.sp = nil
		r.fellBack = false
		r.done = false
		return r
	}
	return &ZCRead{}
}

// arena carves n bytes of scratch for a piece that must be copied. Old
// blocks stay referenced by the parts carved from them, so growing is
// just starting a fresh block.
func (r *ZCRead) arena(n int) []byte {
	if len(r.arenaBuf)-r.arenaOff < n {
		r.arenaBuf = make([]byte, max(n, 64<<10))
		r.arenaOff = 0
	}
	b := r.arenaBuf[r.arenaOff : r.arenaOff+n]
	r.arenaOff += n
	return b
}

// SubmitReadZC submits a zero-copy read of nSectors at lba. It never
// returns nil; submit-time validation errors surface from Wait.
func (v *Volume) SubmitReadZC(lba, nSectors int64) *ZCRead {
	r := v.getZCRead()
	r.v, r.lba, r.n = v, lba, nSectors
	if nSectors <= 0 {
		r.err = ErrUnaligned
		return r
	}
	if lba < 0 || lba+nSectors > v.lt.numSectors() {
		r.err = ErrOutOfRange
		return r
	}
	ss := int64(v.sectorSize)
	v.stats.logicalReadBytes.Add(nSectors * ss)
	r.sp = v.tracer.Begin(obs.OpRead, lba, nSectors*ss)

	// Pin the touched zones' raizn zc epochs before looking at any state
	// they guard (optimistic concurrency: validate after completion).
	for z := v.lt.zoneOf(lba); z <= v.lt.zoneOf(lba+nSectors-1); z++ {
		r.zcZ = append(r.zcZ, z)
		r.zcV = append(r.zcV, v.zcEpoch[z].Load())
	}

	var stage *readStage
	if v.rings != nil {
		stage = newReadStage()
	}
	pos, rem := lba, nSectors
	for rem > 0 {
		z := v.lt.zoneOf(pos)
		n := min(v.lt.zoneStart(z)+v.lt.zoneSectors()-pos, rem)
		if err := v.planZCZone(r, z, pos, n, stage); err != nil {
			r.err = err
			break
		}
		pos += n
		rem -= n
	}
	if stage != nil {
		if r.err == nil {
			r.drainZC(stage)
		} else {
			recycleReadStage(stage) // nothing flushed; drop the staged SQEs
		}
	}
	r.sp.Mark(obs.PhaseSubmit)
	return r
}

// planZCZone plans the [pos, pos+n) portion inside logical zone z.
func (v *Volume) planZCZone(r *ZCRead, z int, pos, n int64, stage *readStage) error {
	lz := v.zones[z]
	lz.mu.Lock()
	wp := lz.submittedWP
	state := lz.state
	lz.mu.Unlock()

	ss := int64(v.sectorSize)
	off := pos - v.lt.zoneStart(z)
	if off+n > wp && state != zns.ZoneFull {
		return ErrReadBeyondWP
	}
	base := pos - r.lba
	if off+n > wp {
		// Finished zone's tail beyond the write pointer reads as zeroes:
		// serve views of the shared zero slab.
		zeroFrom := max(wp-off, 0)
		slabSec := int64(len(zcZeroSlab)) / ss
		for o := zeroFrom; o < n; {
			c := min(n-o, slabSec)
			r.parts = append(r.parts, zcPart{off: base + o, data: zcZeroSlab[:c*ss]})
			o += c
		}
		if zeroFrom == 0 {
			return nil
		}
		n = zeroFrom
	}

	stripeSec := v.lt.stripeSectors()
	for n > 0 {
		s := off / stripeSec
		inStripe := off % stripeSec
		u := int(inStripe / v.lt.su)
		intra := inStripe % v.lt.su
		pieceLen := min(v.lt.su-intra, n)
		if err := v.planZCPiece(r, z, s, u, intra, intra+pieceLen, base, wp, stage); err != nil {
			return err
		}
		base += pieceLen
		off += pieceLen
		n -= pieceLen
	}
	return nil
}

// planZCPiece plans intra offsets [a, b) of data unit u in stripe s of
// zone z; base is the request-relative sector offset of intra a.
func (v *Volume) planZCPiece(r *ZCRead, z int, s int64, u int, a, b, base, zoneWP int64, stage *readStage) error {
	ss := int64(v.sectorSize)
	dev := v.lt.dataDev(z, s, u)
	d := v.devForZone(dev, z)
	if d == nil {
		// Degraded piece: reconstruct into arena scratch (copying).
		dst := r.arena(int((b - a) * ss))
		fut := v.degradedReadPiece(r.sp, z, s, u, a, b, dst, zoneWP)
		r.futs = append(r.futs, subIO{dev: dev, fut: fut})
		r.parts = append(r.parts, zcPart{off: base, data: dst})
		return nil
	}

	lbaA := v.lt.stripeStart(z, s) + int64(u)*v.lt.su + a
	lbaB := lbaA + (b - a)
	gaps := append(r.gapA[:0], zcGap{lbaA, lbaB})
	v.relocMu.Lock()
	for _, f := range v.reloc[z] {
		if f.endLBA <= lbaA || f.startLBA >= lbaB {
			continue
		}
		// Overlay: a direct view of the fragment cache (fragments are
		// replaced wholesale, never mutated in place; a map change bumps
		// the zone's zc epoch and tears this read).
		lo, hi := max(f.startLBA, lbaA), min(f.endLBA, lbaB)
		r.parts = append(r.parts, zcPart{
			off:  base + (lo - lbaA),
			data: f.data[(lo-f.startLBA)*ss : (hi-f.startLBA)*ss],
		})
		ng := r.gapB[:0]
		for _, g := range gaps {
			if hi <= g.lo || lo >= g.hi {
				ng = append(ng, g)
				continue
			}
			if g.lo < lo {
				ng = append(ng, zcGap{g.lo, lo})
			}
			if hi < g.hi {
				ng = append(ng, zcGap{hi, g.hi})
			}
		}
		r.gapA, r.gapB = ng, gaps[:0]
		gaps = ng
	}
	v.relocMu.Unlock()
	r.gapA = gaps

	for _, g := range gaps {
		intraLo := a + (g.lo - lbaA)
		pba := int64(z)*v.lt.physZoneSize + s*v.lt.su + intraLo
		nSec := g.hi - g.lo
		child := r.sp.Child(obs.OpDevRead, dev, pba, nSec*ss)
		if stage != nil {
			r.parts = append(r.parts, zcPart{off: base + (g.lo - lbaA)})
			r.pending = append(r.pending, len(r.parts)-1)
			stage.push(dev, d, zns.Cmd{Op: zns.CmdReadZC, Sector: pba, NSectors: nSec, Span: child})
			continue
		}
		data, zone, seq, fut, err := d.ReadZCSpan(child, pba, nSec)
		if err != nil {
			if errors.Is(err, zns.ErrZCUnavailable) {
				r.parts = append(r.parts, zcPart{off: base + (g.lo - lbaA), data: r.copyGap(d, dev, pba, nSec)})
				continue
			}
			return err
		}
		r.pins = append(r.pins, zcPin{d: d, zone: zone, seq: seq})
		r.futs = append(r.futs, subIO{dev: dev, fut: fut})
		r.parts = append(r.parts, zcPart{off: base + (g.lo - lbaA), data: data})
	}
	return nil
}

// copyGap issues a plain copying device read into arena scratch for a
// gap the device could not serve zero-copy, returning the scratch.
func (r *ZCRead) copyGap(d *zns.Device, dev int, pba, nSec int64) []byte {
	dst := r.arena(int(nSec) * r.v.sectorSize)
	child := r.sp.Child(obs.OpDevRead, dev, pba, int64(len(dst)))
	r.futs = append(r.futs, subIO{dev: dev, fut: d.ReadSpan(child, pba, dst)})
	return dst
}

// drainZC drains the staged CmdReadZC SQEs through the ring, one group
// per device, wiring each returned view (or its copying fallback) into
// the part reserved for it.
func (r *ZCRead) drainZC(stage *readStage) {
	v := r.v
	b := v.rings.Batch()
	for dev := 0; dev < v.lt.n; dev++ {
		var d *zns.Device
		stage.idx = stage.idx[:0]
		for i := range stage.cmds {
			if stage.devs[i] == dev {
				b.Push(stage.cmds[i])
				stage.idx = append(stage.idx, i)
				d = stage.dh[i]
			}
		}
		if d == nil {
			continue
		}
		group := b.Flush(d, dev)
		for k := range group {
			c := &group[k]
			pi := r.pending[stage.idx[k]]
			if c.Err != nil {
				// ErrZCUnavailable or a late rejection: copying fallback
				// (whose own error, if any, surfaces through the future).
				r.parts[pi].data = r.copyGap(d, dev, c.Sector, c.NSectors)
				continue
			}
			r.pins = append(r.pins, zcPin{d: d, zone: c.Zone, seq: c.Seq})
			r.futs = append(r.futs, subIO{dev: dev, fut: c.Fut})
			r.parts[pi].data = c.Data
		}
	}
	b.Submit()
	recycleReadStage(stage)
}

// Wait blocks until every sub-IO completed, validates the pins, and
// assembles the segments. A torn pin or sub-IO failure falls back to
// one copying SubmitRead retry; its result (a single segment) is then
// served instead, so Wait returning nil always means Segs covers the
// requested range consistently.
func (r *ZCRead) Wait() error {
	if r.done {
		return r.err
	}
	r.done = true
	if r.err != nil {
		r.sp.End(r.err)
		return r.err
	}
	err := r.v.awaitReads(r.futs)
	if err == nil && r.valid() {
		r.assemble()
		r.v.stats.zcReads.Add(1)
		r.sp.End(nil)
		return nil
	}
	// Epoch torn underneath us (or a sub-IO failed, e.g. a device died
	// mid-flight): retry once through the copying path, which handles
	// degraded mode and read-repair on its own.
	r.v.stats.zcFallbacks.Add(1)
	r.fellBack = true
	need := int(r.n) * r.v.sectorSize
	if cap(r.fb) < need {
		r.fb = make([]byte, need)
	}
	buf := r.fb[:need]
	if ferr := r.v.SubmitRead(r.lba, buf).Wait(); ferr != nil {
		r.err = ferr
		r.sp.End(ferr)
		return ferr
	}
	r.segs = append(r.segs[:0], buf)
	r.sp.End(nil)
	return nil
}

// valid re-checks every pin captured at plan time.
func (r *ZCRead) valid() bool {
	for i := range r.pins {
		p := &r.pins[i]
		if !p.d.ZCValid(p.zone, p.seq) {
			return false
		}
	}
	for i, z := range r.zcZ {
		if r.v.zcEpoch[z].Load() != r.zcV[i] {
			return false
		}
	}
	return true
}

// assemble orders the parts into the exported segment list. Parts are
// few and nearly sorted (planning walks the range in order; only ring
// drain and overlay splitting reorder), so insertion sort.
func (r *ZCRead) assemble() {
	parts := r.parts
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j].off < parts[j-1].off; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	segs := r.segs[:0]
	for i := range parts {
		if len(parts[i].data) > 0 {
			segs = append(segs, parts[i].data)
		}
	}
	r.segs = segs
}

// Segs returns the result as ordered segments covering the requested
// range. Only valid after Wait returned nil and until Release (or until
// a pinned epoch moves on).
func (r *ZCRead) Segs() [][]byte { return r.segs }

// ZeroCopy reports whether the request was served from views (false:
// the copying fallback ran).
func (r *ZCRead) ZeroCopy() bool { return r.done && r.err == nil && !r.fellBack }

// CopyTo copies the assembled result into dst, returning the bytes
// copied. Convenience for callers that sometimes need a contiguous
// buffer anyway.
func (r *ZCRead) CopyTo(dst []byte) int {
	n := 0
	for _, s := range r.segs {
		n += copy(dst[n:], s)
	}
	return n
}

// Release drops the view references and recycles the request object.
// The ZCRead and its segments must not be used afterwards.
func (r *ZCRead) Release() {
	v := r.v
	if v == nil {
		return
	}
	for i := range r.parts {
		r.parts[i].data = nil
	}
	for i := range r.segs {
		r.segs[i] = nil
	}
	for i := range r.futs {
		r.futs[i] = subIO{}
	}
	for i := range r.pins {
		r.pins[i] = zcPin{}
	}
	v.zcPool.Put(r)
}

// recycleReadStage clears and pools a stage without draining it.
func recycleReadStage(s *readStage) {
	for i := range s.cmds {
		s.cmds[i] = zns.Cmd{}
		s.dh[i] = nil
		s.reps[i] = nil
	}
	readStagePool.Put(s)
}
