package raizn

import (
	"bytes"
	"errors"
	"testing"

	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// zcReadBack reads [lba, lba+n) through SubmitReadZC and returns the
// assembled bytes plus whether the request stayed zero-copy.
func zcReadBack(t *testing.T, v *Volume, lba, n int64) ([]byte, bool) {
	t.Helper()
	r := v.SubmitReadZC(lba, n)
	if err := r.Wait(); err != nil {
		t.Fatalf("SubmitReadZC(%d, %d): %v", lba, n, err)
	}
	out := make([]byte, n*int64(v.SectorSize()))
	if got := r.CopyTo(out); got != len(out) {
		t.Fatalf("SubmitReadZC(%d, %d): assembled %d bytes, want %d", lba, n, got, len(out))
	}
	var total int64
	for _, s := range r.Segs() {
		total += int64(len(s))
	}
	if total != n*int64(v.SectorSize()) {
		t.Fatalf("SubmitReadZC(%d, %d): segments cover %d bytes, want %d", lba, n, total, n*int64(v.SectorSize()))
	}
	zc := r.ZeroCopy()
	r.Release()
	return out, zc
}

// checkZCMatchesCopy compares a zero-copy read's assembly against the
// copying read path for the same range.
func checkZCMatchesCopy(t *testing.T, v *Volume, lba, n int64) bool {
	t.Helper()
	want := make([]byte, n*int64(v.SectorSize()))
	if err := v.Read(lba, want); err != nil {
		t.Fatalf("Read(%d, %d): %v", lba, n, err)
	}
	got, zc := zcReadBack(t, v, lba, n)
	if !bytes.Equal(got, want) {
		t.Errorf("SubmitReadZC(%d, %d): content differs from copying read", lba, n)
	}
	return zc
}

// TestSubmitReadZCMatchesCopyRead fills a volume with a mixed write
// pattern and cross-checks zero-copy assembly against the copying path
// for sub-unit, unit-, stripe- and zone-spanning ranges, on both the
// ring and direct submission paths.
func TestSubmitReadZCMatchesCopyRead(t *testing.T) {
	for _, cfg := range []Config{ringConfig(), DefaultConfig()} {
		cfg := cfg
		name := "direct"
		if cfg.UseRing {
			name = "ring"
		}
		t.Run(name, func(t *testing.T) {
			c := vclock.New()
			c.Run(func() {
				devs := newTestDevices(c, 5)
				v, err := Create(c, devs, cfg)
				if err != nil {
					t.Fatalf("Create: %v", err)
				}
				runDiffWorkload(t, c, v, true, false)
				zs := v.ZoneSectors()
				// Fill zones 0 and 1 to capacity so zone-crossing ranges
				// are legal (a non-full zone refuses reads beyond its WP).
				for z := int64(0); z < 2; z++ {
					wp := v.Zone(int(z)).WP
					mustWriteV(t, v, wp, int(z*zs+zs-wp), 0)
				}

				su := v.StripeSectors() / int64(v.NumDevices()-1)
				ranges := [][2]int64{
					{0, 1},                          // single sector
					{3, su - 1},                     // sub-unit, unaligned start
					{0, su},                         // exact unit
					{su - 2, 5},                     // unit-crossing
					{0, v.StripeSectors()},          // exact stripe
					{su + 1, 2 * v.StripeSectors()}, // stripe-spanning, odd start
					{zs - 8, 16},                    // zone boundary crossing
					{7, 2 * zs},                     // multi-zone
				}
				zc := 0
				for _, rg := range ranges {
					if checkZCMatchesCopy(t, v, rg[0], rg[1]) {
						zc++
					}
				}
				if zc != len(ranges) {
					t.Errorf("%d of %d ranges fell back to copying; all should stay zero-copy", len(ranges)-zc, len(ranges))
				}
				st := v.Stats()
				if st.ZeroCopyReads != int64(len(ranges)) || st.ZeroCopyFallbacks != 0 {
					t.Errorf("stats: ZeroCopyReads=%d ZeroCopyFallbacks=%d, want %d/0",
						st.ZeroCopyReads, st.ZeroCopyFallbacks, len(ranges))
				}
			})
		})
	}
}

// TestSubmitReadZCValidation checks submit-time error surfacing.
func TestSubmitReadZCValidation(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 32, 0)
		for _, tc := range []struct {
			lba, n int64
			want   error
		}{
			{0, 0, ErrUnaligned},
			{-1, 4, ErrOutOfRange},
			{v.NumSectors(), 4, ErrOutOfRange},
			{64, 8, ErrReadBeyondWP}, // zone 0 has only 32 sectors written
		} {
			r := v.SubmitReadZC(tc.lba, tc.n)
			if err := r.Wait(); !errors.Is(err, tc.want) {
				t.Errorf("SubmitReadZC(%d, %d): err %v, want %v", tc.lba, tc.n, err, tc.want)
			}
			r.Release()
		}
	})
}

// TestSubmitReadZCFinishedZoneTail reads across a finished zone's
// zero tail: the tail is served from the shared zero slab, still
// zero-copy, and byte-identical to the copying path.
func TestSubmitReadZCFinishedZoneTail(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 40, 0)
		if err := v.FinishZone(0); err != nil {
			t.Fatalf("FinishZone: %v", err)
		}
		if !checkZCMatchesCopy(t, v, 16, v.ZoneSectors()-16) {
			t.Error("finished-zone tail read fell back to copying")
		}
	})
}

// TestSubmitReadZCTornEpochFallsBack bumps a pinned zone epoch between
// submit and wait: Wait must detect the torn pin, rerun through the
// copying path, and still return the right bytes.
func TestSubmitReadZCTornEpochFallsBack(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0)
		want := make([]byte, 64*v.SectorSize())
		if err := v.Read(0, want); err != nil {
			t.Fatalf("Read: %v", err)
		}

		r := v.SubmitReadZC(0, 64)
		v.bumpZCEpoch(0) // simulate a relocation-map change racing the read
		if err := r.Wait(); err != nil {
			t.Fatalf("Wait after torn epoch: %v", err)
		}
		if r.ZeroCopy() {
			t.Error("torn-epoch read still claims zero-copy")
		}
		got := make([]byte, len(want))
		r.CopyTo(got)
		if !bytes.Equal(got, want) {
			t.Error("torn-epoch fallback returned wrong bytes")
		}
		r.Release()
		if st := v.Stats(); st.ZeroCopyFallbacks != 1 {
			t.Errorf("ZeroCopyFallbacks = %d, want 1", st.ZeroCopyFallbacks)
		}
	})
}

// TestSubmitReadZCTornDeviceSeqFallsBack tears a device-level pin (the
// zns zc sequence, here via sector corruption, which mutates payload in
// place) and checks the fallback re-reads the current content.
func TestSubmitReadZCTornDeviceSeqFallsBack(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0)
		r := v.SubmitReadZC(0, 64)
		// Corrupt a sector in device zone 0 of every device: whichever
		// device serves the first unit, its pin is torn.
		for _, d := range devs {
			if err := d.CorruptSector(d.ZoneStart(0)); err != nil {
				t.Fatalf("CorruptSector: %v", err)
			}
		}
		if err := r.Wait(); err != nil {
			t.Fatalf("Wait after corruption: %v", err)
		}
		if r.ZeroCopy() {
			t.Error("torn-seq read still claims zero-copy")
		}
		want := make([]byte, 64*v.SectorSize())
		if err := v.Read(0, want); err != nil {
			t.Fatalf("Read: %v", err)
		}
		got := make([]byte, len(want))
		r.CopyTo(got)
		if !bytes.Equal(got, want) {
			t.Error("fallback bytes differ from the copying path after corruption")
		}
		r.Release()
	})
}

// TestSubmitReadZCRelocOverlay crashes device zone fills so recovery
// truncates a zone, then writes over the debris to drive burned-prefix
// relocation (the PR 3 crash-differential cuts), and checks zero-copy
// reads overlay the relocation fragments correctly (views of the
// fragment cache) on both submission paths.
func TestSubmitReadZCRelocOverlay(t *testing.T) {
	for _, cfg := range []Config{ringConfig(), DefaultConfig()} {
		cfg := cfg
		name := "direct"
		if cfg.UseRing {
			name = "ring"
		}
		t.Run(name, func(t *testing.T) {
			c := vclock.New()
			c.Run(func() {
				devs := newTestDevices(c, 5)
				v, err := Create(c, devs, cfg)
				if err != nil {
					t.Fatalf("Create: %v", err)
				}
				runDiffWorkload(t, c, v, true, false)

				// The double hole in zone 1 forces recovery to truncate;
				// zone 1's uncut peers keep debris beyond the recovered
				// write pointer, and writing over it burns + relocates.
				for di, d := range devs {
					m := map[int]int64{}
					for z := 0; z < d.Config().NumZones; z++ {
						m[z] = d.Zone(z).WP - d.ZoneStart(z)
					}
					if (di == 1 || di == 2) && m[1] > 24 {
						m[1] = 24
					}
					if di == 3 && m[2] > 40 {
						m[2] = 40
					}
					d.PowerLossAt(m)
				}
				v2, err := Mount(c, devs, cfg)
				if err != nil {
					t.Fatalf("Mount: %v", err)
				}
				zs := v2.ZoneSectors()
				for z := 0; z < v2.NumZones(); z++ {
					zd := v2.Zone(z)
					if zd.State == zns.ZoneFull {
						continue
					}
					rel := zd.WP - int64(z)*zs
					if n := min(int64(32), zs-rel); n > 0 {
						mustWriteV(t, v2, zd.WP, int(n), 0)
					}
				}
				if v2.RelocationCount() == 0 {
					t.Fatal("no relocations; overlay path untested")
				}
				for z := 0; z < v2.NumZones(); z++ {
					zd := v2.Zone(z)
					if n := zd.WP - int64(z)*zs; n > 0 {
						checkZCMatchesCopy(t, v2, int64(z)*zs, n)
					}
				}
				if st := v2.Stats(); st.ZeroCopyReads == 0 {
					t.Error("no zero-copy reads recorded over relocated zones")
				}
			})
		})
	}
}

// TestSubmitReadZCDegraded reads through reconstruction with a failed
// device: degraded pieces are materialized (copied) but the request
// still completes with correct content.
func TestSubmitReadZCDegraded(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 128, 0)
		if err := v.FailDevice(2); err != nil {
			t.Fatalf("FailDevice: %v", err)
		}
		got, _ := zcReadBack(t, v, 0, 128)
		if !bytes.Equal(got, lbaPattern(v, 0, 128)) {
			t.Error("degraded zero-copy read returned wrong bytes")
		}
	})
}

// TestSubmitReadZCDiscardDataFallsBack runs against DiscardData devices
// (no payload materialized): every gap takes the per-piece copying
// fallback via ErrZCUnavailable, and assembly still covers the range.
func TestSubmitReadZCDiscardDataFallsBack(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		dcfg := testDevConfig()
		dcfg.DiscardData = true
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(c, dcfg)
		}
		v, err := Create(c, devs, ringConfig())
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		if err := v.Write(0, make([]byte, 64*v.SectorSize()), 0); err != nil {
			t.Fatalf("Write: %v", err)
		}
		got, _ := zcReadBack(t, v, 0, 64)
		for i, b := range got {
			if b != 0 {
				t.Fatalf("DiscardData read: non-zero byte at %d", i)
			}
		}
	})
}
