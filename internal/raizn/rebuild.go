package raizn

import (
	"errors"
	"time"

	"raizn/internal/obs"
	"raizn/internal/parity"
	"raizn/internal/zns"
)

// RebuildStats summarizes a device replacement.
type RebuildStats struct {
	Zones        int           // zones that needed reconstruction
	BytesWritten int64         // bytes written to the replacement device
	Elapsed      time.Duration // virtual time to repair (TTR)
}

// ReplaceDevice installs a blank device in the failed slot and rebuilds
// it (§4.2). Unlike mdraid — which resyncs the entire address space —
// RAIZN rebuilds only LBA ranges below each logical zone's write pointer,
// so the time to repair scales with the amount of valid data (§6.2,
// Figure 12). Active (open or closed) zones are rebuilt before full
// zones, so subsequent writes leave degraded mode as early as possible.
// Writes targeting not-yet-rebuilt zones are served in degraded mode for
// the duration.
func (v *Volume) ReplaceDevice(newDev *zns.Device) (RebuildStats, error) {
	var stats RebuildStats
	start := v.clk.Now()

	v.mu.Lock()
	slot := v.degraded
	if slot < 0 {
		v.mu.Unlock()
		return stats, errors.New("raizn: array is not degraded")
	}
	if v.rebuilding {
		v.mu.Unlock()
		return stats, errors.New("raizn: rebuild already in progress")
	}
	dc := newDev.Config()
	ref := (*zns.Device)(nil)
	for _, d := range v.devs {
		if d != nil {
			ref = d
			break
		}
	}
	rc := ref.Config()
	if dc.SectorSize != rc.SectorSize || dc.NumZones != rc.NumZones ||
		dc.ZoneSize != rc.ZoneSize || dc.ZoneCap != rc.ZoneCap {
		v.mu.Unlock()
		return stats, errors.New("raizn: replacement device geometry mismatch")
	}
	v.rebuilding = true
	v.rebuiltZones = make([]bool, v.lt.numZones)
	v.devs[slot] = newDev
	if v.cfg.Journal != nil {
		newDev.AttachJournal(v.cfg.Journal, slot)
	}
	v.publishDevTableLocked()
	v.mu.Unlock()

	// Re-create the replacement's metadata: superblock + current
	// checkpoints (the failed device's non-replicated metadata is gone
	// and, per §4.3, inconsequential).
	m := newMDManager(v, slot)
	if err := v.writeCheckpoint(newDev, m.active[mdGeneral], slot, mdGeneral); err != nil {
		return stats, v.abortRebuild(slot, err)
	}
	if err := v.writeCheckpoint(newDev, m.active[mdParity], slot, mdParity); err != nil {
		return stats, v.abortRebuild(slot, err)
	}
	v.mu.Lock()
	v.md[slot] = m
	v.publishDevTableLocked()
	v.mu.Unlock()

	// Rebuild zone by zone, active zones first (§4.2).
	order := make([]int, 0, v.lt.numZones)
	var fullZones []int
	for z := 0; z < v.lt.numZones; z++ {
		switch v.zones[z].state {
		case zns.ZoneOpen, zns.ZoneClosed:
			order = append(order, z)
		case zns.ZoneFull:
			fullZones = append(fullZones, z)
		}
	}
	order = append(order, fullZones...)

	for _, z := range order {
		n, err := v.rebuildZone(z, slot, newDev)
		if err != nil {
			return stats, v.abortRebuild(slot, err)
		}
		stats.Zones++
		stats.BytesWritten += n
		v.stats.waRebuildBytes.Add(n)
		v.jrn.Record(obs.EvRebuild, slot, z,
			int64(stats.Zones), int64(len(order)), stats.BytesWritten, 0)
		v.fireHook("raizn.rebuild.zone", slot, z, int64(stats.Zones))
	}
	// Empty zones need no data; mark everything rebuilt.
	v.mu.Lock()
	for z := range v.rebuiltZones {
		v.rebuiltZones[z] = true
	}
	v.degraded = -1
	v.rebuilding = false
	v.rebuiltZones = nil
	v.publishDevTableLocked()
	v.jrn.Record(obs.EvDegraded, slot, -1, 0, 0, 0, 0)
	v.mu.Unlock()

	if err := newDev.Flush().Wait(); err != nil {
		return stats, err
	}
	stats.Elapsed = v.clk.Now() - start
	return stats, nil
}

func (v *Volume) abortRebuild(slot int, err error) error {
	v.mu.Lock()
	v.rebuilding = false
	v.rebuiltZones = nil
	v.devs[slot] = nil
	v.md[slot] = nil
	v.publishDevTableLocked()
	v.mu.Unlock()
	return err
}

// rebuildZone reconstructs the replacement device's physical zone z from
// the survivors. Writes to this zone are gated for the duration (they
// park on the zone's condition variable, like during a reset); writes to
// other zones proceed, degraded until their own zone is rebuilt.
func (v *Volume) rebuildZone(z, slot int, newDev *zns.Device) (int64, error) {
	lz := v.zones[z]
	lz.mu.Lock()
	for lz.resetting {
		lz.cond.Wait()
	}
	lz.resetting = true
	// Wait out in-flight writes so the stripe buffers and survivor media
	// reflect everything below wp before reconstruction reads them.
	v.drainSubmitsLocked(lz)
	wp := lz.wp
	state := lz.state
	lz.mu.Unlock()
	defer func() {
		lz.mu.Lock()
		lz.resetting = false
		lz.cond.Broadcast()
		lz.mu.Unlock()
	}()

	ss := int64(v.sectorSize)
	su := v.lt.su
	stripeSec := v.lt.stripeSectors()
	var written int64

	nStripes := (wp + stripeSec - 1) / stripeSec
	for s := int64(0); s < nStripes; s++ {
		g := clampI64(wp-s*stripeSec, 0, stripeSec) // stripe data fill
		fills := v.lt.unitFills(g)
		u := v.lt.unitOfDev(z, s, slot)
		var content []byte
		if u >= 0 {
			need := fills[u]
			if need == 0 {
				continue
			}
			buf := make([]byte, need*ss)
			if err := v.reconstructUnitForRebuild(lz, s, u, need, g, buf); err != nil {
				return written, err
			}
			content = buf
		} else {
			// Parity unit: present on media only for complete stripes
			// (or the sealed tail of a finished zone).
			var plen int64
			if g == stripeSec {
				plen = su
			} else if state == zns.ZoneFull && g > 0 {
				plen = min(g, su)
			}
			if plen == 0 {
				continue
			}
			content = v.computeParityForRebuild(lz, z, s, g, plen)
			if content == nil {
				return written, ErrInconsistent
			}
		}
		pba := int64(z)*v.lt.physZoneSize + s*su
		if err := newDev.Write(pba, content, 0).Wait(); err != nil {
			return written, err
		}
		written += int64(len(content))
	}

	if state == zns.ZoneFull {
		if err := newDev.FinishZone(z).Wait(); err != nil {
			return written, err
		}
	}

	// Relocation entries whose payload lived on the dead device are now
	// obsolete: the rebuilt data sits at its arithmetic location.
	v.relocMu.Lock()
	if list := v.reloc[z]; len(list) > 0 {
		keep := list[:0]
		for _, e := range list {
			if e.dev != slot {
				keep = append(keep, e)
			}
		}
		v.reloc[z] = keep
		v.bumpZCEpoch(z)
	}
	if m := v.parityReloc[z]; m != nil {
		for s, e := range m {
			if e.dev == slot {
				delete(m, s)
			}
		}
	}
	v.relocMu.Unlock()

	v.mu.Lock()
	if v.rebuiltZones != nil {
		v.rebuiltZones[z] = true
		v.publishDevTableLocked()
	}
	v.mu.Unlock()
	return written, nil
}

// reconstructUnitForRebuild produces the first `need` sectors of data
// unit u of stripe s. The zone's resetting gate is held (no concurrent
// writers); lz.mu is taken only around buffer-map access.
func (v *Volume) reconstructUnitForRebuild(lz *logicalZone, s int64, u int, need, g int64, dst []byte) error {
	z := lz.idx
	ss := int64(v.sectorSize)
	su := v.lt.su

	// Partial tail stripes live in the stripe buffer.
	lz.mu.Lock()
	if buf, ok := lz.active[s]; ok {
		base := int64(u) * su * ss
		copy(dst, buf.data[base:base+need*ss])
		lz.mu.Unlock()
		return nil
	}
	lz.mu.Unlock()

	// Otherwise reconstruct from parity + surviving units.
	var futs []subIO
	pbuf := make([]byte, need*ss)
	if err := v.readParityPiece(z, s, 0, need, pbuf, &futs); err != nil {
		return err
	}
	fills := v.lt.unitFills(g)
	var survivors [][]byte
	for u2 := 0; u2 < v.lt.d; u2++ {
		if u2 == u || fills[u2] == 0 {
			continue
		}
		hi := min(fills[u2], need)
		if hi <= 0 {
			continue
		}
		b := make([]byte, hi*ss)
		if err := v.readUnitPiece(z, s, u2, 0, hi, b, &futs); err != nil {
			return err
		}
		survivors = append(survivors, b)
	}
	if err := v.awaitReads(futs); err != nil {
		return err
	}
	copy(dst, pbuf)
	for _, b := range survivors {
		parity.XORInto(dst[:len(b)], b)
	}
	return nil
}

// computeParityForRebuild recomputes the parity unit prefix [0, plen) of
// stripe s from the surviving data units (all alive: only the parity
// device failed). Caller holds lz.mu.
func (v *Volume) computeParityForRebuild(lz *logicalZone, z int, s, g, plen int64) []byte {
	ss := int64(v.sectorSize)
	lz.mu.Lock()
	if buf, ok := lz.active[s]; ok {
		img := v.parityImageLocked(buf, []intraInterval{{0, plen}})
		lz.mu.Unlock()
		return img
	}
	lz.mu.Unlock()
	fills := v.lt.unitFills(g)
	img := make([]byte, plen*ss)
	var futs []subIO
	var pieces [][]byte
	for u := 0; u < v.lt.d; u++ {
		hi := min(fills[u], plen)
		if hi <= 0 {
			continue
		}
		b := make([]byte, hi*ss)
		if err := v.readUnitPiece(z, s, u, 0, hi, b, &futs); err != nil {
			return nil
		}
		pieces = append(pieces, b)
	}
	if err := v.awaitReads(futs); err != nil {
		return nil
	}
	for _, b := range pieces {
		parity.XORInto(img[:len(b)], b)
	}
	return img
}
