package raizn

import (
	"fmt"

	"raizn/internal/parity"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// Mount assembles a previously created RAIZN array from the available
// devices and replays its metadata (§4.3, §5). Devices may be passed in
// any order; their array positions are recovered from the superblocks. A
// single missing device is tolerated: the volume mounts degraded.
//
// cfg must carry the same StripeUnitSectors and MetadataZones the array
// was created with (they are validated against the superblocks).
func Mount(clk *vclock.Clock, devs []*zns.Device, cfg Config) (*Volume, error) {
	cfg = cfg.withDefaults()
	if len(devs) == 0 {
		return nil, ErrNotEnoughDevs
	}

	// Phase 1: read superblocks to recover device order.
	type found struct {
		dev *zns.Device
		sb  superblock
	}
	var sbs []found
	for _, d := range devs {
		if d == nil {
			continue
		}
		dc := d.Config()
		ppZones := 0
		if cfg.ParityEngine == EngineZRAID {
			ppZones = cfg.PPZones // metadata zones sit below the PP pool
		}
		lt := &layout{
			n: 1, d: 1, su: cfg.StripeUnitSectors,
			physZoneSize: dc.ZoneSize, physZoneCap: dc.ZoneCap,
			numZones: dc.NumZones - cfg.MetadataZones - ppZones,
			mdZones:  cfg.MetadataZones, ppZones: ppZones,
		}
		recs, err := scanMDZones(d, lt, dc.SectorSize)
		if err != nil {
			return nil, err
		}
		var best *record
		for i := range recs {
			r := &recs[i]
			if r.typ.base() != recSuperblock {
				continue
			}
			if best == nil || r.gen > best.gen {
				best = r
			}
		}
		if best == nil {
			return nil, fmt.Errorf("raizn: device has no superblock")
		}
		sb, ok := decodeSuperblock(best.inline)
		if !ok {
			return nil, ErrInconsistent
		}
		sbs = append(sbs, found{dev: d, sb: sb})
	}
	if len(sbs) == 0 {
		return nil, ErrNotEnoughDevs
	}
	ref := sbs[0].sb
	ordered := make([]*zns.Device, ref.numDev)
	for _, f := range sbs {
		if f.sb.arrayID != ref.arrayID || f.sb.numDev != ref.numDev || f.sb.su != cfg.StripeUnitSectors {
			return nil, fmt.Errorf("raizn: device superblock mismatch: %w", ErrInconsistent)
		}
		if int(f.sb.devIndex) >= len(ordered) || ordered[f.sb.devIndex] != nil {
			return nil, ErrInconsistent
		}
		ordered[f.sb.devIndex] = f.dev
	}
	missing := -1
	for i, d := range ordered {
		if d == nil {
			if missing >= 0 {
				return nil, ErrNotEnoughDevs // two failures
			}
			missing = i
		}
	}

	// Phase 2: build the volume and replay metadata.
	v, err := newVolume(clk, ordered, cfg)
	if err != nil {
		return nil, err
	}
	v.arrayID = ref.arrayID
	if missing >= 0 {
		v.degraded = missing
	}
	if err := v.recover(); err != nil {
		return nil, err
	}
	return v, nil
}

// replayState collects the decoded metadata logs during recovery.
type replayState struct {
	resetWALs []record         // zone-reset intents
	pp        map[int][]record // logical zone -> partial parity logs
	reloc     []record         // relocated data fragments
	prel      []record         // relocated parity units
	cs        []record         // stripe-unit checksum tables
}

// recover replays metadata logs and repairs every logical zone
// (paper §4.3 "zone descriptors" and §5.2).
func (v *Volume) recover() error {
	st := &replayState{pp: make(map[int][]record)}

	// Scan all metadata zones of all live devices.
	var all []record
	for i, d := range v.devs {
		if d == nil {
			continue
		}
		recs, err := scanMDZones(d, v.lt, v.sectorSize)
		if err != nil {
			return err
		}
		for j := range recs {
			recs[j].dev = i
		}
		all = append(all, recs...)
	}

	// Generation counters first: every other record's validity depends
	// on them. Highest sequence number wins per block.
	bestGenSeq := make(map[int]uint64)
	for i := range all {
		r := &all[i]
		if r.gen > v.mdSeq {
			v.mdSeq = r.gen // advance past every persisted sequence number
		}
		if r.typ.base() != recGenCounters {
			continue
		}
		blockIdx, gens, ok := decodeGenBlock(r.inline)
		if !ok {
			continue
		}
		if prev, seen := bestGenSeq[blockIdx]; seen && prev >= r.gen {
			continue
		}
		bestGenSeq[blockIdx] = r.gen
		lo := blockIdx * gensPerBlock
		for k, g := range gens {
			if lo+k < len(v.gen) && g > v.gen[lo+k] {
				v.gen[lo+k] = g
			}
		}
	}

	// Sort the rest by type, dropping records whose generation counter
	// is stale (their logical zone was reset after they were written).
	for i := range all {
		r := all[i]
		switch r.typ.base() {
		case recResetWAL:
			z, ok := decodeResetWAL(r.inline)
			if ok && z >= 0 && z < v.lt.numZones && r.gen == v.gen[z] {
				st.resetWALs = append(st.resetWALs, r)
			}
		case recPartialParity:
			z := v.lt.zoneOf(r.startLBA)
			if z >= 0 && z < v.lt.numZones && r.gen == v.gen[z] {
				st.pp[z] = append(st.pp[z], r)
			}
		case recRelocData:
			z := v.lt.zoneOf(r.startLBA)
			if z >= 0 && z < v.lt.numZones && r.gen == v.gen[z] {
				st.reloc = append(st.reloc, r)
			}
		case recRelocParity:
			z := v.lt.zoneOf(r.startLBA)
			if z >= 0 && z < v.lt.numZones && r.gen == v.gen[z] {
				st.prel = append(st.prel, r)
			}
		case recChecksums:
			// Generation validity is re-checked at apply time, after the
			// reset-WAL and empty-zone bumps below.
			st.cs = append(st.cs, r)
		case recFlightBox:
			// Forensic cargo, not array state: keep the newest intact box
			// in memory so consolidateMetadata re-emits it — consolidation
			// rewrites every metadata zone, and the crash evidence must
			// survive the remount that follows the crash.
			if r.startLBA > 0 && int64(len(r.payload)) >= r.startLBA &&
				(v.blackBox == nil || r.gen > v.blackBoxGen) {
				v.blackBox = append([]byte(nil), r.payload[:r.startLBA]...)
				v.blackBoxGen = r.gen
			}
		}
	}

	// Merge the parity-persistence engine's own scan (zraid PP-zone
	// slots; nil for logged, whose records surfaced in the metadata scan
	// above). The same generation filter applies, and a later reset-WAL
	// application below invalidates engine records along with logged
	// ones.
	engRecs, err := v.eng.Scan()
	if err != nil {
		return err
	}
	for _, r := range engRecs {
		if r.Zone < 0 || r.Zone >= v.lt.numZones || r.Gen != v.gen[r.Zone] {
			continue
		}
		st.pp[r.Zone] = append(st.pp[r.Zone], record{
			typ:      recPartialParity,
			startLBA: r.StartLBA,
			endLBA:   r.EndLBA,
			gen:      r.Gen,
			payload:  r.Payload,
		})
	}

	// Apply valid zone-reset WALs: a logically non-empty zone with a
	// pending reset intent is re-reset (§5.2).
	genDirty := false
	for _, r := range st.resetWALs {
		z, _ := decodeResetWAL(r.inline)
		if v.zoneHasData(z) {
			var futs []subIO
			for i := range v.devs {
				if d := v.devs[i]; d != nil {
					futs = append(futs, subIO{dev: i, fut: d.ResetZone(z)})
				}
			}
			if err := v.awaitSubIOs(futs); err != nil {
				return err
			}
		}
		v.gen[z]++ // invalidates the WAL and all same-generation records
		genDirty = true
		delete(st.pp, z)
	}

	// Re-apply relocation records (skipping those invalidated above).
	for _, r := range st.reloc {
		z := v.lt.zoneOf(r.startLBA)
		if r.gen != v.gen[z] {
			continue
		}
		v.addReloc(z, relocEntry{
			startLBA: r.startLBA, endLBA: r.endLBA,
			dev: r.dev, pba: r.pba + 1, data: r.payload,
		}, false, 0)
	}
	for _, r := range st.prel {
		z := v.lt.zoneOf(r.startLBA)
		if r.gen != v.gen[z] {
			continue
		}
		s := v.lt.stripeOf(r.startLBA)
		v.addReloc(z, relocEntry{
			startLBA: r.startLBA, endLBA: r.endLBA,
			dev: r.dev, pba: r.pba + 1, data: r.payload,
		}, true, s)
	}

	// Repair every logical zone.
	for z := 0; z < v.lt.numZones; z++ {
		dirty, err := v.recoverZone(z, st.pp[z])
		if err != nil {
			return err
		}
		genDirty = genDirty || dirty
	}
	_ = genDirty

	// Replay stripe-unit checksum tables. The generation counters are
	// final now, so stale records (zone reset since the record was
	// written) drop out; coverage is clamped to the complete stripes
	// below each recovered write pointer.
	for i := range st.cs {
		v.applyChecksumRecord(&st.cs[i])
	}
	for z := 0; z < v.lt.numZones; z++ {
		v.clampChecksums(z, v.zones[z].wp/v.lt.stripeSectors())
	}
	// Compact zones whose relocation count passed the threshold (§5.2),
	// then consolidate the metadata zones: re-checkpoint everything live
	// (including the generation counters bumped above) and re-establish
	// the zone roles.
	if err := v.compactRemappedZones(); err != nil {
		return err
	}
	if err := v.consolidateMetadata(); err != nil {
		return err
	}
	// Everything live — including partial parity for in-progress stripes
	// — is re-checkpointed in the metadata zones now; the engine's own
	// persistence (the zraid PP zones) is stale and starts fresh.
	return v.eng.Format()
}

// zoneHasData reports whether any live physical zone of logical zone z
// holds data.
func (v *Volume) zoneHasData(z int) bool {
	for _, d := range v.devs {
		if d == nil {
			continue
		}
		zd := d.Zone(z)
		if zd.WP > d.ZoneStart(z) || zd.State == zns.ZoneFull {
			return true
		}
	}
	return false
}

// physFill returns (fill sectors, finished) of physical zone z on device
// i, or (-1, false) when the device is missing.
func (v *Volume) physFill(i, z int) (int64, bool) {
	d := v.devs[i]
	if d == nil {
		return -1, false
	}
	zd := d.Zone(z)
	return zd.WP - d.ZoneStart(z), zd.State == zns.ZoneFull
}

// recoverZone derives logical zone z's state from the physical write
// pointers, repairing stripe holes with parity or partial-parity logs and
// truncating + flagging the zone when repair is impossible (§4.3 "zone
// descriptors", §5.1, §5.2). It returns whether generation counters were
// changed.
func (v *Volume) recoverZone(z int, ppLogs []record) (genDirty bool, err error) {
	lz := v.zones[z]
	fills := make([]int64, v.lt.n)
	finished := make([]bool, v.lt.n)
	allEmpty, allFinished := true, true
	for i := range v.devs {
		fills[i], finished[i] = v.physFill(i, z)
		if fills[i] > 0 || finished[i] {
			allEmpty = false
		}
		if fills[i] >= 0 && !finished[i] {
			allFinished = false
		}
	}

	if allEmpty {
		// Paper §4.3: empty zones get their generation bumped on mount,
		// invalidating any straggler metadata for the old incarnation.
		lz.state = zns.ZoneEmpty
		lz.wp, lz.submittedWP, lz.persistedWP = 0, 0, 0
		v.gen[z]++
		v.dropRelocEntries(z)
		return true, nil
	}

	su := v.lt.su
	stripeSec := v.lt.stripeSectors()

	// Walk stripes, accumulating the readable logical prefix.
	var wp int64
	truncated := false
	smax := int64(0)
	for i := range fills {
		if fills[i] < 0 {
			continue
		}
		if s := (fills[i] + su - 1) / su; s > smax {
			smax = s
		}
	}
	for s := int64(0); s < smax && !truncated; s++ {
		present := make([]int64, v.lt.d) // data sectors present per unit (-1 unknown)
		for u := 0; u < v.lt.d; u++ {
			dev := v.lt.dataDev(z, s, u)
			if fills[dev] < 0 {
				present[u] = -1
				continue
			}
			present[u] = clampI64(fills[dev]-s*su, 0, su)
		}
		pdev := v.lt.parityDev(z, s)
		q := int64(-1)
		if fills[pdev] >= 0 {
			q = clampI64(fills[pdev]-s*su, 0, su)
		}
		// Relocated parity counts as parity present.
		v.relocMu.Lock()
		if m := v.parityReloc[z]; m != nil {
			if e, ok := m[s]; ok {
				if pl := int64(len(e.data)) / int64(v.sectorSize); pl > q {
					q = pl
				}
			}
		}
		v.relocMu.Unlock()

		g, fixed, trunc, gerr := v.repairStripe(z, s, present, q, ppLogs, allFinished)
		if gerr != nil {
			return genDirty, gerr
		}
		_ = fixed
		wp += g
		if trunc || g < stripeSec {
			truncated = trunc
			// A short stripe ends the logical prefix.
			if !trunc {
				// Legitimate tail stripe: nothing after it by the
				// sequential-write rule; debris past it would have
				// been flagged by repairStripe.
			}
			break
		}
	}

	// Debris detection: any physical fill beyond what the logical write
	// pointer implies means burned PBAs; flag the zone so future writes
	// take the relocation path.
	remapped := false
	for i := range fills {
		if fills[i] < 0 {
			continue
		}
		if fills[i] > v.expectedPhysFill(z, i, wp) {
			remapped = true
		}
	}
	v.relocMu.Lock()
	if len(v.reloc[z]) > 0 || len(v.parityReloc[z]) > 0 {
		remapped = true
	}
	v.relocMu.Unlock()

	lz.wp = wp
	lz.submittedWP = wp
	lz.persistedWP = wp // post-crash, everything on media is durable
	lz.remapped = remapped
	switch {
	case allFinished || wp == v.lt.zoneSectors():
		lz.state = zns.ZoneFull
	case wp == 0:
		lz.state = zns.ZoneEmpty
	default:
		lz.state = zns.ZoneClosed
	}

	// Rebuild the stripe buffer for a partial tail stripe so future
	// appends can compute parity without device reads (§5.1).
	if lz.state == zns.ZoneClosed || lz.state == zns.ZoneOpen {
		if tail := wp % stripeSec; tail != 0 {
			if err := v.rebuildStripeBuffer(lz, wp/stripeSec, tail, ppLogs); err != nil {
				return genDirty, err
			}
		}
	}
	return genDirty, nil
}

func clampI64(x, lo, hi int64) int64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// expectedPhysFill returns how many sectors of physical zone z on device
// i a logical fill of wp implies (data units plus parity of complete
// stripes).
func (v *Volume) expectedPhysFill(z, i int, wp int64) int64 {
	stripeSec := v.lt.stripeSectors()
	full := wp / stripeSec
	tail := wp % stripeSec
	fill := int64(0)
	for s := int64(0); s < full; s++ {
		fill += v.lt.su // one unit (data or parity) per device per stripe
	}
	if tail > 0 {
		s := full
		if u := v.lt.unitOfDev(z, s, i); u >= 0 {
			fill += clampI64(tail-int64(u)*v.lt.su, 0, v.lt.su)
		} else if v.eng.InPlaceParityPrefix() {
			// In ZRWA mode the tail stripe's parity prefix IS on media.
			fill += min(tail, v.lt.su)
		}
		// Otherwise the tail stripe's parity is not yet written (the
		// partial parity lives in the metadata zone), so the parity
		// device expects 0.
	}
	return fill
}

// repairStripe inspects one stripe and returns its recovered data fill g.
// present[u] is the data present per unit (-1 unknown/missing device), q
// the parity sectors present (-1 unknown). trunc reports that the stripe
// (and therefore the zone) had unrecoverable holes and was truncated at
// g.
func (v *Volume) repairStripe(z int, s int64, present []int64, q int64, ppLogs []record, finished bool) (g int64, fixed, trunc bool, err error) {
	su := v.lt.su

	// Fast path: everything full.
	complete := true
	for _, p := range present {
		if p >= 0 && p < su {
			complete = false
		}
	}
	if complete && (q < 0 || q == su) {
		return v.lt.stripeSectors(), false, false, nil
	}

	if complete && q < su && q >= 0 {
		// Parity hole: data complete but parity torn/lost (§5.2 write
		// hole). Recompute and append the missing parity region.
		if v.degradedNow() < 0 {
			if err := v.rewriteParity(z, s, q); err != nil {
				return 0, false, false, err
			}
			return v.lt.stripeSectors(), true, false, nil
		}
		// Degraded: one data unit is unknown AND the parity that would
		// serve its reads is incomplete. The unknown unit cannot be
		// assumed full; fall through to prefix inference, which counts
		// it only as far as surviving parity can reconstruct it.
	}

	// Data incomplete. Determine the contiguous prefix and whether the
	// holes can be repaired.
	if q == su {
		// Full parity present: the stripe was complete at crash. Every
		// short unit is a hole; with at most one short unit (or one
		// unknown device) reconstruct it from parity + survivors.
		shorts := []int{}
		unknown := -1
		for u, p := range present {
			if p < 0 {
				unknown = u
			} else if p < su {
				shorts = append(shorts, u)
			}
		}
		switch {
		case len(shorts) == 0:
			// Only the missing device's unit is unknown: readable via
			// degraded reads; nothing to repair on media.
			return v.lt.stripeSectors(), false, false, nil
		case len(shorts) == 1 && unknown < 0:
			u := shorts[0]
			if err := v.reconstructUnitTail(z, s, u, present); err != nil {
				return 0, false, false, err
			}
			return v.lt.stripeSectors(), true, false, nil
		default:
			// Two or more erasures: unrecoverable; fall through to
			// truncation.
		}
	}

	// In ZRWA mode a partial stripe carries an in-place parity prefix on
	// media; a single unit torn below that prefix can be repaired from
	// it even though the stripe never completed (§5.4).
	if v.eng.InPlaceParityPrefix() && q == v.lt.su {
		// A unit is torn (rather than simply not yet written) when a
		// LATER unit holds data: sequential writes fill units in order.
		torn := -1
		multi := false
		for u := 0; u < v.lt.d; u++ {
			if present[u] < 0 || present[u] == v.lt.su {
				continue
			}
			laterData := false
			for u2 := u + 1; u2 < v.lt.d; u2++ {
				if present[u2] > 0 {
					laterData = true
				}
			}
			if !laterData {
				continue // legitimate tail fill
			}
			if torn >= 0 {
				multi = true
			} else {
				torn = u
			}
		}
		if torn >= 0 && !multi {
			fills := make([]int64, v.lt.d)
			for u, p := range present {
				fills[u] = p
			}
			fills[torn] = v.lt.su
			if err := v.reconstructUnitRange(z, s, torn, present[torn], v.lt.su, fills); err == nil {
				present[torn] = v.lt.su
			}
		}
	}

	// Partial stripe (or unrecoverable holes): compute the contiguous
	// data prefix, extending across an unknown (failed) device's unit
	// when later evidence (data in a later unit, or partial-parity logs)
	// proves it was full.
	ppEnd := v.ppEndForStripe(z, s, ppLogs) // zone-relative stripe fill per pp logs, -1 none
	// recon bounds how much of an unknown (missing-device) unit is
	// actually reconstructible: the surviving media parity prefix, or the
	// partial-parity log coverage. Counting anything beyond it into the
	// zone would leave unreadable sectors below the write pointer.
	recon := q
	if !v.eng.InPlaceParityPrefix() {
		if _, ppcov := v.parityImageFromLogs(z, s, ppLogs); ppcov > recon {
			recon = ppcov
		}
	}
	g = 0
	for u := 0; u < v.lt.d; u++ {
		p := present[u]
		if p < 0 {
			// Unknown unit (missing device): infer from later units
			// and pp logs, capped by what parity can reconstruct.
			inferred := int64(0)
			for u2 := u + 1; u2 < v.lt.d; u2++ {
				if present[u2] > 0 {
					inferred = su // a later unit has data => this one was full
				}
			}
			if ppEnd >= 0 {
				if f := clampI64(ppEnd-int64(u)*su, 0, su); f > inferred {
					inferred = f
				}
			}
			if inferred > recon {
				if recon < 0 {
					recon = 0
				}
				inferred = recon
			}
			p = inferred
		}
		g += p
		if p < su {
			break
		}
	}

	// Detect debris: data beyond the prefix on later units.
	prefixUnits := g / su
	for u := int(prefixUnits) + 1; u < v.lt.d; u++ {
		if present[u] > 0 {
			trunc = true
		}
	}
	if q > 0 && g < v.lt.stripeSectors() && !finished && !v.eng.InPlaceParityPrefix() {
		// Parity persisted for an incomplete stripe: debris unless the
		// zone was finished (FinishZone writes prefix parity) or the
		// array updates parity prefixes in place (PPZRWA, §5.4).
		trunc = true
	}
	return g, false, trunc, nil
}

// degradedNow returns the failed device index or -1 (lock-free helper for
// recovery, which runs single-threaded).
func (v *Volume) degradedNow() int { return v.degraded }

// rewriteParity recomputes the parity of a data-complete stripe and
// appends the missing region [q, su) at the parity device's write
// pointer.
func (v *Volume) rewriteParity(z int, s int64, q int64) error {
	ss := int64(v.sectorSize)
	su := v.lt.su
	units := make([][]byte, v.lt.d)
	var futs []subIO
	for u := 0; u < v.lt.d; u++ {
		units[u] = make([]byte, su*ss)
		if err := v.readUnitPiece(z, s, u, 0, su, units[u], &futs); err != nil {
			return err
		}
	}
	if err := v.awaitReads(futs); err != nil {
		return err
	}
	p := parity.Encode(units...)
	dev := v.lt.parityDev(z, s)
	d := v.devs[dev]
	if d == nil {
		return nil
	}
	fut := d.Write(v.lt.parityPBA(z, s)+q, p[q*ss:], 0)
	return fut.Wait()
}

// reconstructUnitTail repairs the single short data unit u of a stripe
// whose parity is fully present, writing the reconstructed tail at the
// owning device's write pointer (§4.3: "rebuilding the missing stripe
// units using parity").
func (v *Volume) reconstructUnitTail(z int, s int64, u int, present []int64) error {
	ss := int64(v.sectorSize)
	su := v.lt.su
	a := present[u] // repair [a, su)
	n := su - a
	img := make([]byte, n*ss)
	var futs []subIO
	if err := v.readParityPiece(z, s, a, su, img, &futs); err != nil {
		return err
	}
	others := make([][]byte, 0, v.lt.d-1)
	for u2 := 0; u2 < v.lt.d; u2++ {
		if u2 == u {
			continue
		}
		b := make([]byte, n*ss)
		if err := v.readUnitPiece(z, s, u2, a, su, b, &futs); err != nil {
			return err
		}
		others = append(others, b)
	}
	if err := v.awaitReads(futs); err != nil {
		return err
	}
	for _, o := range others {
		parity.XORInto(img, o)
	}
	dev := v.lt.dataDev(z, s, u)
	d := v.devs[dev]
	if d == nil {
		return ErrInconsistent
	}
	pba := int64(z)*v.lt.physZoneSize + s*su + a
	return d.Write(pba, img, 0).Wait()
}

// ppEndForStripe returns the stripe-relative data fill implied by the
// latest valid partial-parity log for stripe s of zone z, or -1 if none.
func (v *Volume) ppEndForStripe(z int, s int64, ppLogs []record) int64 {
	lo := v.lt.stripeStart(z, s)
	hi := lo + v.lt.stripeSectors()
	end := int64(-1)
	for i := range ppLogs {
		r := &ppLogs[i]
		if r.startLBA >= lo && r.endLBA <= hi && r.gen == v.gen[z] {
			if e := r.endLBA - lo; e > end {
				end = e
			}
		}
	}
	return end
}

// rebuildStripeBuffer reloads the partial tail stripe (s, fill) of a zone
// into a stripe buffer: present units are read from their devices; a
// missing device's unit is reconstructed by replaying the partial-parity
// logs in LBA order (§5.1).
func (v *Volume) rebuildStripeBuffer(lz *logicalZone, s int64, fill int64, ppLogs []record) error {
	z := lz.idx
	ss := int64(v.sectorSize)
	su := v.lt.su
	buf, err := v.stripeBufferLocked(lz, s, 0) // single-threaded during mount
	if err != nil {
		return err
	}
	buf.fill = fill
	fills := v.lt.unitFills(fill)

	missingUnit := -1
	var futs []subIO
	for u := 0; u < v.lt.d; u++ {
		if fills[u] == 0 {
			continue
		}
		dev := v.lt.dataDev(z, s, u)
		if v.devs[dev] == nil {
			missingUnit = u
			continue
		}
		dst := buf.data[int64(u)*su*ss : int64(u)*su*ss+fills[u]*ss]
		if err := v.readUnitPiece(z, s, u, 0, fills[u], dst, &futs); err != nil {
			return err
		}
	}
	if err := v.awaitReads(futs); err != nil {
		return err
	}
	if missingUnit < 0 {
		return nil
	}

	// Reconstruct the missing unit: build the parity image (from the
	// partial-parity logs, §5.1 — or straight from the in-place parity
	// prefix in ZRWA mode), then XOR with the surviving units.
	var img []byte
	var covered int64
	if v.eng.InPlaceParityPrefix() {
		covered = v.parityPrefixLen(z, s)
		img = make([]byte, v.lt.su*int64(v.sectorSize))
		if covered > 0 {
			var futs []subIO
			if err := v.readParityPiece(z, s, 0, covered, img[:covered*int64(v.sectorSize)], &futs); err != nil {
				return err
			}
			if err := v.awaitReads(futs); err != nil {
				return err
			}
		}
	} else {
		img, covered = v.parityImageFromLogs(z, s, ppLogs)
	}
	u := missingUnit
	need := fills[u]
	if covered < need {
		// Partial parity insufficient (e.g. lost with the power): data
		// at and beyond the gap is discarded per §5.1. The zone write
		// pointer has already been bounded by ppEnd in repairStripe;
		// treat the rest as zeroes here.
		need = covered
	}
	dst := buf.data[int64(u)*su*ss : int64(u)*su*ss+su*ss]
	copy(dst, img)
	for u2 := 0; u2 < v.lt.d; u2++ {
		if u2 == u || fills[u2] == 0 {
			continue
		}
		src := buf.data[int64(u2)*su*ss : int64(u2)*su*ss+fills[u2]*ss]
		hi := min(int64(len(src)), need*ss)
		if hi > 0 {
			parity.XORInto(dst[:hi], src[:hi])
		}
	}
	return nil
}

// parityImageFromLogs replays the valid partial-parity logs of stripe s
// in LBA order, producing the current parity image over intra offsets
// [0, covered).
func (v *Volume) parityImageFromLogs(z int, s int64, ppLogs []record) (img []byte, covered int64) {
	ss := int64(v.sectorSize)
	su := v.lt.su
	lo := v.lt.stripeStart(z, s)
	hi := lo + v.lt.stripeSectors()
	img = make([]byte, su*ss)

	// Collect, then apply in (startLBA, endLBA) order — later logs
	// overwrite earlier ones where they overlap.
	var logs []*record
	for i := range ppLogs {
		r := &ppLogs[i]
		if r.startLBA >= lo && r.endLBA <= hi && r.gen == v.gen[z] {
			logs = append(logs, r)
		}
	}
	for i := 1; i < len(logs); i++ {
		for j := i; j > 0 && logs[j-1].startLBA > logs[j].startLBA; j-- {
			logs[j-1], logs[j] = logs[j], logs[j-1]
		}
	}
	for _, r := range logs {
		a := r.startLBA - lo
		b := r.endLBA - lo
		regions := v.lt.intraRegions(a, b)
		src := r.payload
		for _, reg := range regions {
			n := (reg.b - reg.a) * ss
			if int64(len(src)) < n {
				n = int64(len(src))
			}
			copy(img[reg.a*ss:reg.a*ss+n], src[:n])
			src = src[n:]
		}
		if e := clampI64(b, 0, su); e > covered {
			covered = e
		}
		if b-a >= su {
			covered = su
		}
	}
	return img, covered
}
