package raizn

import (
	"raizn/internal/obs"
	"raizn/internal/zns"
)

// ResetZone resets logical zone z: all constituent physical zones are
// erased and the zone returns to empty. Because the physical resets are
// not atomic as a group, RAIZN write-ahead logs the intent on two devices
// — the holder of the zone's first stripe unit and the holder of the
// first stripe's parity — before issuing any reset (§5.2). IO to the zone
// is blocked for the duration.
func (v *Volume) ResetZone(z int) error {
	if z < 0 || z >= v.lt.numZones {
		return ErrOutOfRange
	}
	if v.ReadOnly() {
		return ErrReadOnly
	}
	lz := v.zones[z]
	lz.mu.Lock()
	for lz.resetting {
		lz.cond.Wait()
	}
	if lz.state == zns.ZoneEmpty {
		lz.mu.Unlock()
		return nil
	}
	lz.resetting = true
	// In-flight writes already claimed their range; wait for their device
	// submissions so the physical zones are quiescent before resetting.
	v.drainSubmitsLocked(lz)
	lz.mu.Unlock()

	sp := v.tracer.Begin(obs.OpReset, v.lt.zoneStart(z), 0)
	err := v.doResetZone(sp, lz)
	sp.End(err)

	lz.mu.Lock()
	lz.resetting = false
	lz.cond.Broadcast()
	lz.mu.Unlock()
	return err
}

func (v *Volume) doResetZone(sp *obs.Span, lz *logicalZone) error {
	z := lz.idx
	gen := v.Generation(z)

	// 1. Persist the reset intent on the two WAL devices. Device order
	// rotates per zone (via the parity rotation), spreading WAL write
	// amplification across the array.
	v.mu.Lock()
	v.pendingWALs[z] = gen
	v.mu.Unlock()
	walDevs := []int{v.lt.dataDev(z, 0, 0), v.lt.parityDev(z, 0)}
	if v.cfg.DisableResetWAL {
		walDevs = nil // ablation only: partial resets become ambiguous
	}
	var walFuts []subIO
	for _, dev := range walDevs {
		if v.md[dev] == nil {
			continue // degraded: the surviving WAL copy suffices
		}
		rec := &record{
			typ:      recResetWAL,
			startLBA: v.lt.zoneStart(z),
			endLBA:   v.lt.zoneStart(z) + v.lt.zoneSectors(),
			gen:      gen,
			inline:   encodeResetWAL(z),
		}
		child := sp.Child(obs.OpMDAppend, dev, rec.startLBA, int64(len(rec.inline)))
		fut, _, err := v.md[dev].appendSpan(child, rec, zns.FUA)
		if err != nil {
			return err
		}
		walFuts = append(walFuts, subIO{dev: dev, fut: fut})
	}
	if err := v.awaitSubIOs(walFuts); err != nil {
		return err
	}
	v.fireHook("raizn.reset.wal", obs.SrcLogical, z, int64(gen))

	// 2. Reset every physical zone. The WAL ensures a partial group of
	// resets is finished on the next mount.
	var futs []subIO
	for i := range v.devs {
		if d := v.dev(i); d != nil {
			child := sp.Child(obs.OpDevReset, i, d.ZoneStart(z), 0)
			futs = append(futs, subIO{dev: i, fut: d.ResetZoneSpan(child, z)})
		}
	}
	if err := v.awaitSubIOs(futs); err != nil {
		return err
	}
	v.fireHook("raizn.reset.phys", obs.SrcLogical, z, int64(gen))

	// 3. Advance the generation counter, invalidating every metadata
	// record for the old generation (including the WAL entries), and
	// persist it on all devices.
	v.mu.Lock()
	v.gen[z]++
	delete(v.pendingWALs, z)
	v.mu.Unlock()
	if err := v.persistGenCounters(); err != nil {
		return err
	}
	v.fireHook("raizn.reset.done", obs.SrcLogical, z, int64(gen+1))

	// 4. Reset the in-memory zone state. The generation bump made every
	// partial-parity image for the zone stale; tell the engine so zraid
	// slots become reclaimable (no-op for logged records, which the gen
	// filter invalidates).
	v.eng.ZoneReset(z)
	v.dropRelocEntries(z)
	v.clearZoneChecksums(z)
	lz.mu.Lock()
	if lz.state == zns.ZoneOpen {
		v.mu.Lock()
		v.openCount--
		v.mu.Unlock()
	}
	if v.jrn.Enabled() {
		v.mu.Lock()
		open := int64(v.openCount)
		v.mu.Unlock()
		v.jrn.Record(obs.EvZoneReset, obs.SrcLogical, z,
			lz.wp, int64(v.Generation(z)), open, open)
	}
	lz.state = zns.ZoneEmpty
	lz.wp = 0
	lz.submittedWP = 0
	lz.persistedWP = 0
	lz.remapped = false
	for s, b := range lz.active {
		b.stripe = -1
		b.fill = 0
		lz.free = append(lz.free, b)
		delete(lz.active, s)
	}
	lz.cond.Broadcast()
	lz.mu.Unlock()
	v.stats.zoneResets.Add(1)
	return nil
}

// persistGenCounters appends the generation-counter blocks to the general
// metadata zone of every live device (Table 1: persisted on all devices).
func (v *Volume) persistGenCounters() error {
	v.mu.Lock()
	gens := append([]uint64(nil), v.gen...)
	v.mu.Unlock()
	nBlocks := (len(gens) + gensPerBlock - 1) / gensPerBlock
	var futs []subIO
	for b := 0; b < nBlocks; b++ {
		inline := encodeGenBlock(b, gens)
		seq := v.nextMDSeq()
		for i := range v.devs {
			if v.md[i] == nil {
				continue
			}
			fut, _, err := v.md[i].append(&record{
				typ:    recGenCounters,
				gen:    seq,
				inline: inline,
			}, 0)
			if err != nil {
				return err
			}
			futs = append(futs, subIO{dev: i, fut: fut})
		}
	}
	return v.awaitSubIOs(futs)
}

// dropRelocEntries discards the relocation state of zone z (its records
// become stale once the generation counter advances).
func (v *Volume) dropRelocEntries(z int) {
	v.relocMu.Lock()
	delete(v.reloc, z)
	delete(v.parityReloc, z)
	v.relocMu.Unlock()
	v.bumpZCEpoch(z)
}

// FinishZone transitions logical zone z to full without writing the rest
// of its capacity. If the tail stripe is partial, its parity-so-far is
// written to the parity unit first so the stripe stays reconstructable,
// then every physical zone is finished.
func (v *Volume) FinishZone(z int) error {
	if z < 0 || z >= v.lt.numZones {
		return ErrOutOfRange
	}
	if v.ReadOnly() {
		return ErrReadOnly
	}
	lz := v.zones[z]
	lz.mu.Lock()
	for lz.resetting {
		lz.cond.Wait()
	}
	if lz.state == zns.ZoneFull {
		lz.mu.Unlock()
		return nil
	}
	// Quiesce in-flight writes so the tail stripe buffer and physical
	// write pointers are final before sealing.
	v.drainSubmitsLocked(lz)

	var futs []subIO
	var pending []pendingMD
	// Seal the partial tail stripe's parity.
	stripeSec := v.lt.stripeSectors()
	if tail := lz.wp % stripeSec; tail != 0 {
		s := lz.wp / stripeSec
		if buf, ok := lz.active[s]; ok {
			if !v.eng.InPlaceParityPrefix() {
				// In ZRWA mode the parity prefix is already in place.
				img := v.parityImageLocked(buf, []intraInterval{{0, min(buf.fill, v.lt.su)}})
				v.issueDeviceWrite(nil, v.lt.parityDev(z, s), v.lt.parityPBA(z, s), img, 0, 0, true, z, s, &futs, &pending)
			}
			delete(lz.active, s)
			buf.stripe = -1
			buf.fill = 0
			lz.free = append(lz.free, buf)
			lz.cond.Broadcast()
		}
	}
	// The sealed zone has no in-progress stripes: all PP state is dead.
	v.eng.ZoneReset(z)
	for i := range v.devs {
		if d := v.dev(i); d != nil {
			futs = append(futs, subIO{dev: i, fut: d.FinishZone(z)})
		}
	}
	v.closeZoneSlot(lz, zns.ZoneFull)
	persisted := lz.wp
	if v.jrn.Enabled() {
		v.mu.Lock()
		open := int64(v.openCount)
		v.mu.Unlock()
		v.jrn.Record(obs.EvZoneFinish, obs.SrcLogical, z, persisted, 0, open, open)
	}
	lz.mu.Unlock()

	futs = v.issuePendingMD(nil, pending, futs)
	if err := v.awaitSubIOs(futs); err != nil {
		return err
	}
	v.fireHook("raizn.finish.done", obs.SrcLogical, z, persisted)
	// Device zone finish persists contents; reflect that logically.
	lz.mu.Lock()
	if persisted > lz.persistedWP {
		lz.persistedWP = persisted
	}
	lz.mu.Unlock()
	return nil
}

// OpenZone explicitly opens a logical zone, reserving an open slot.
func (v *Volume) OpenZone(z int) error {
	if z < 0 || z >= v.lt.numZones {
		return ErrOutOfRange
	}
	lz := v.zones[z]
	lz.mu.Lock()
	defer lz.mu.Unlock()
	if lz.state == zns.ZoneOpen {
		return nil
	}
	if lz.state == zns.ZoneFull {
		return ErrZoneFull
	}
	return v.openZoneSlot(lz)
}

// CloseZone transitions an open logical zone to closed (or back to empty
// when nothing has been written), freeing its open slot.
func (v *Volume) CloseZone(z int) error {
	if z < 0 || z >= v.lt.numZones {
		return ErrOutOfRange
	}
	lz := v.zones[z]
	lz.mu.Lock()
	defer lz.mu.Unlock()
	if lz.state != zns.ZoneOpen {
		return nil
	}
	to := zns.ZoneClosed
	if lz.wp == 0 {
		to = zns.ZoneEmpty
	}
	v.closeZoneSlot(lz, to)
	return nil
}

// maintainFuture is documented in Maintain.
const genCounterCeiling = ^uint64(0) - 1

// Maintain performs the generation-counter maintenance operation (§4.3):
// it garbage collects every metadata zone, checkpointing live records,
// and (in the paper, after WAL-protected log rewriting) resets all
// generation counters. This implementation performs the metadata GC and
// re-persists counters; counters are only zeroed when one has reached the
// ceiling, which 64-bit counters make effectively unreachable.
func (v *Volume) Maintain() error {
	for i := range v.devs {
		m := v.md[i]
		if m == nil {
			continue
		}
		if err := m.forceGC(mdGeneral); err != nil {
			return err
		}
		if err := m.forceGC(mdParity); err != nil {
			return err
		}
	}
	// Engine housekeeping: the zraid engine force-reclaims its PP zones.
	if err := v.eng.Maintain(); err != nil {
		return err
	}
	v.mu.Lock()
	reset := false
	for _, g := range v.gen {
		if g >= genCounterCeiling {
			reset = true
		}
	}
	if reset {
		for z := range v.gen {
			v.gen[z] = 0
		}
		v.readOnly = false
	}
	v.mu.Unlock()
	return v.persistGenCounters()
}
