package raizn

import (
	"sync"
	"testing"

	"raizn/internal/obs"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// Differential tests for the submission/completion ring (Config.UseRing):
// draining whole per-device SQ groups under one lock acquisition, reaping
// the CQ with one walker per batch, and fusing XOR+CRC must be
// observationally identical to the direct path — same bytes, zone states,
// persistence bitmaps, checksum records, and crash-recovery outcome. The
// harness is the write-path differential harness (write_coalesce_test.go)
// pointed at UseRing instead of LegacyWritePath.

func ringConfig() Config {
	cfg := DefaultConfig()
	cfg.UseRing = true
	return cfg
}

// TestRingVsDirectDifferentialConcurrent races one pipelined writer per
// zone on the ring and direct paths and demands identical logical
// outcomes, then reads everything back through both paths (the ring run
// batches its read SQEs too).
func TestRingVsDirectDifferentialConcurrent(t *testing.T) {
	var snaps [2]volSnapshot
	var stats [2]Stats
	for i, cfg := range []Config{ringConfig(), DefaultConfig()} {
		i, cfg := i, cfg
		c := vclock.New()
		c.Run(func() {
			devs := newTestDevices(c, 5)
			v, err := Create(c, devs, cfg)
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			runDiffWorkload(t, c, v, true, true)
			snaps[i] = snapshotVolume(t, v)
			stats[i] = v.Stats()
			if err := v.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
		})
	}
	compareSnapshots(t, "ring-vs-direct", snaps[0], snaps[1])
	diffStats(t, "ring-vs-direct", stats[0], stats[1])
	if stats[0].CoalescedSubWrites != stats[1].CoalescedSubWrites {
		t.Errorf("CoalescedSubWrites differ: ring %d, direct %d",
			stats[0].CoalescedSubWrites, stats[1].CoalescedSubWrites)
	}
}

// TestRingVsDirectDifferentialZRWA repeats the differential on PPZRWA
// devices: in-place parity updates order against the staged SQ groups
// (the group is flushed before every ZRWA write), and that ordering must
// not change outcomes.
func TestRingVsDirectDifferentialZRWA(t *testing.T) {
	var snaps [2]volSnapshot
	var stats [2]Stats
	for i, ring := range []bool{true, false} {
		i, ring := i, ring
		c := vclock.New()
		c.Run(func() {
			devs := make([]*zns.Device, 5)
			for j := range devs {
				devs[j] = zns.NewDevice(c, extDevConfig())
			}
			cfg := DefaultConfig()
			cfg.ParityMode = PPZRWA
			cfg.UseRing = ring
			v, err := Create(c, devs, cfg)
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			runDiffWorkload(t, c, v, false, true)
			snaps[i] = snapshotVolume(t, v)
			stats[i] = v.Stats()
		})
	}
	compareSnapshots(t, "ring-zrwa", snaps[0], snaps[1])
	diffStats(t, "ring-zrwa", stats[0], stats[1])
	if stats[0].ZRWAParityWrites != stats[1].ZRWAParityWrites {
		t.Errorf("ZRWAParityWrites differ: ring %d, direct %d",
			stats[0].ZRWAParityWrites, stats[1].ZRWAParityWrites)
	}
	if stats[0].ZRWAParityWrites == 0 {
		t.Error("workload drove no in-place parity updates")
	}
}

// TestRingVsDirectDifferentialDegradedAndScrub checks that the fused
// XOR/CRC scrub pass and degraded-mode operation behave identically on
// both paths.
func TestRingVsDirectDifferentialDegradedAndScrub(t *testing.T) {
	var snaps [2]volSnapshot
	var verified [2]int
	var degradedReads [2]int64
	for i, cfg := range []Config{ringConfig(), DefaultConfig()} {
		i, cfg := i, cfg
		c := vclock.New()
		c.Run(func() {
			devs := newTestDevices(c, 5)
			v, err := Create(c, devs, cfg)
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			runDiffWorkload(t, c, v, true, true)
			if err := v.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			wp := v.Zone(0).WP
			for s := int64(0); (s+1)*v.StripeSectors() <= wp; s++ {
				res, err := v.ScrubStripe(0, s, true)
				if err != nil {
					t.Fatalf("ScrubStripe(0, %d): %v", s, err)
				}
				if res.Mismatch {
					t.Errorf("ScrubStripe(0, %d): mismatch on healthy volume", s)
				}
				if res.Verified {
					verified[i]++
				}
			}
			if err := v.FailDevice(1); err != nil {
				t.Fatalf("FailDevice: %v", err)
			}
			zs := v.ZoneSectors()
			for z := 0; z < 3; z++ {
				zd := v.Zone(z)
				rel := zd.WP - int64(z)*zs
				if rel+16 <= zs {
					mustWriteV(t, v, zd.WP, 16, 0)
				}
			}
			snaps[i] = snapshotVolume(t, v)
			degradedReads[i] = v.Stats().DegradedReads
		})
	}
	compareSnapshots(t, "ring-degraded", snaps[0], snaps[1])
	if verified[0] != verified[1] || verified[0] == 0 {
		t.Errorf("scrub verified %d stripes on ring, %d direct", verified[0], verified[1])
	}
	if degradedReads[0] != degradedReads[1] {
		t.Errorf("DegradedReads differ: ring %d, direct %d", degradedReads[0], degradedReads[1])
	}
}

// runSeqDiffWorkload is the crash differential's workload: strictly
// sequential awaited writes (no FUA) so the global order of device
// command applications — and therefore of crash-point crossings — is
// identical on both paths, with one mid-workload flush so the
// flushed-only crash variant has a non-trivial persisted prefix.
func runSeqDiffWorkload(t *testing.T, v *Volume) {
	t.Helper()
	for z := 0; z < v.NumZones(); z++ {
		lba := int64(z) * v.ZoneSectors()
		for _, n := range diffWriteSizes(z, false) {
			if err := v.Write(lba, lbaPattern(v, lba, int(n)), 0); err != nil {
				t.Fatalf("zone %d write at %d: %v", z, lba, err)
			}
			lba += n
		}
		if z == 1 {
			if err := v.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
		}
	}
}

// crashCapture is one crash point's device clones: the all-submitted
// variant (every zone cut at its submitted write pointer) and the
// flushed-only variant (persisted prefixes), each bound to a fresh clock
// for recovery.
type crashCapture struct {
	k               int // write/append crossings at the capture instant
	allClk, flClk   *vclock.Clock
	allDevs, flDevs []*zns.Device
}

func captureCrash(devs []*zns.Device, k int) *crashCapture {
	cc := &crashCapture{k: k, allClk: vclock.New(), flClk: vclock.New()}
	for _, d := range devs {
		cuts := make(map[int]int64, d.Config().NumZones)
		for z := 0; z < d.Config().NumZones; z++ {
			cuts[z] = 1 << 62 // clamped to the zone's submitted WP
		}
		cc.allDevs = append(cc.allDevs, d.CrashClone(cc.allClk, nil, cuts))
		cc.flDevs = append(cc.flDevs, d.CrashClone(cc.flClk, nil, nil))
	}
	return cc
}

// mountAndSnapshot recovers one clone set and snapshots the result.
func mountAndSnapshot(t *testing.T, clk *vclock.Clock, devs []*zns.Device, cfg Config) volSnapshot {
	t.Helper()
	var snap volSnapshot
	clk.Run(func() {
		v, err := Mount(clk, devs, cfg)
		if err != nil {
			t.Fatalf("Mount crash clone: %v", err)
		}
		snap = snapshotVolume(t, v)
	})
	return snap
}

// TestRingVsDirectCrashAtDrain crashes the ring run at SQ-drain
// boundaries and the direct run at the equivalent command crossings, and
// demands byte-identical recovered state. The mapping: the device state
// after the ring's Nth "zns.ring.drain" crossing (the whole group is
// applied before the hook fires, with no virtual time mid-batch) equals
// the direct path's state after the Kth per-command crossing, where K is
// the cumulative accepted write/append count at that drain. The census
// pass records total drains; the capture passes clone every device at
// the chosen crossings (submitted-WP and flushed-only cuts) and recovery
// runs on the clones.
func TestRingVsDirectCrashAtDrain(t *testing.T) {
	isWrite := func(p obs.HookPoint) bool {
		return p.Name == "zns.cmd.write" || p.Name == "zns.cmd.append"
	}

	// Census: count the ring run's drain crossings.
	totalDrains := 0
	{
		c := vclock.New()
		c.Run(func() {
			devs := newTestDevices(c, 5)
			v, err := Create(c, devs, ringConfig())
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			var mu sync.Mutex
			hook := func(p obs.HookPoint) {
				if p.Name == "zns.ring.drain" {
					mu.Lock()
					totalDrains++
					mu.Unlock()
				}
			}
			for i, d := range devs {
				d.AttachHook(hook, i)
			}
			runSeqDiffWorkload(t, v)
		})
	}
	if totalDrains < 8 {
		t.Fatalf("workload crossed only %d ring drains; differential needs more", totalDrains)
	}
	targets := map[int]bool{
		totalDrains / 4:     true,
		totalDrains / 2:     true,
		3 * totalDrains / 4: true,
		totalDrains - 1:     true,
	}

	// Ring capture pass: clone at each target drain, recording K.
	ringCaps := map[int]*crashCapture{}
	{
		c := vclock.New()
		c.Run(func() {
			devs := newTestDevices(c, 5)
			v, err := Create(c, devs, ringConfig())
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			var mu sync.Mutex
			writes, drains := 0, 0
			hook := func(p obs.HookPoint) {
				mu.Lock()
				defer mu.Unlock()
				switch {
				case isWrite(p):
					writes++
				case p.Name == "zns.ring.drain":
					drains++
					if targets[drains] {
						ringCaps[drains] = captureCrash(devs, writes)
					}
				}
			}
			for i, d := range devs {
				d.AttachHook(hook, i)
			}
			runSeqDiffWorkload(t, v)
		})
	}
	if len(ringCaps) != len(targets) {
		t.Fatalf("captured %d of %d target drains", len(ringCaps), len(targets))
	}

	// Direct capture pass: clone at each ring capture's Kth crossing.
	kTargets := map[int]*crashCapture{} // K -> direct capture
	for _, cc := range ringCaps {
		kTargets[cc.k] = nil
	}
	{
		c := vclock.New()
		c.Run(func() {
			devs := newTestDevices(c, 5)
			v, err := Create(c, devs, DefaultConfig())
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			var mu sync.Mutex
			writes := 0
			hook := func(p obs.HookPoint) {
				if !isWrite(p) {
					return
				}
				mu.Lock()
				defer mu.Unlock()
				writes++
				if cc, ok := kTargets[writes]; ok && cc == nil {
					kTargets[writes] = captureCrash(devs, writes)
				}
			}
			for i, d := range devs {
				d.AttachHook(hook, i)
			}
			runSeqDiffWorkload(t, v)
		})
	}

	// Recover every pair and compare byte-for-byte. The ring clones are
	// mounted with the ring config so recovery itself also runs through
	// the batched read path.
	for drain, rc := range ringCaps {
		dc := kTargets[rc.k]
		if dc == nil {
			t.Fatalf("direct run never reached K=%d (drain %d)", rc.k, drain)
		}
		ringAll := mountAndSnapshot(t, rc.allClk, rc.allDevs, ringConfig())
		directAll := mountAndSnapshot(t, dc.allClk, dc.allDevs, DefaultConfig())
		compareSnapshots(t, "crash-all", ringAll, directAll)
		ringFl := mountAndSnapshot(t, rc.flClk, rc.flDevs, ringConfig())
		directFl := mountAndSnapshot(t, dc.flClk, dc.flDevs, DefaultConfig())
		compareSnapshots(t, "crash-flushed", ringFl, directFl)
	}
}
