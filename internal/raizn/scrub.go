package raizn

import (
	"errors"

	"raizn/internal/obs"
	"raizn/internal/parity"
	"raizn/internal/zns"
)

// Scrub support: stripe-granular verify/repair primitives driven by the
// background scrubber (internal/scrub). A scrub pass walks every
// complete stripe below each logical zone's write pointer, reads the D
// data units plus parity, and checks two things: XOR consistency
// (parity really is the XOR of the data) and, where a checksum row
// exists (see checksum.go), per-unit CRC32-C integrity.
//
// Repair policy — scrub must never "repair" good data into bad:
//
//   - XOR consistent, no checksum row: the stripe predates checksum
//     coverage (or its row was lost with a dead device). Adopt: record
//     the observed CRCs so future rot is attributable.
//   - Checksum row present, exactly one unit's CRC mismatching: the
//     unit is reconstructed from the other units, the reconstruction is
//     verified against the stored CRC, and — zones being immutable —
//     the corrected unit is relocated through the §5.2 relocation map.
//   - A unit that fails with a latent read error is reconstructed the
//     same way (classic RAID latent-error recovery); when a checksum
//     row exists the surviving units and the reconstruction are
//     CRC-verified first, so rot elsewhere in the stripe cannot poison
//     the repair.
//   - Anything else (two bad units, XOR mismatch with no row to
//     attribute it, CRCs that contradict the reconstruction) is counted
//     unrepairable and the data is left untouched.

// StripeScrubResult reports what one ScrubStripe call did.
type StripeScrubResult struct {
	BytesRead      int64 // payload bytes read off the devices
	Skipped        bool  // stripe not scrubbable now (partial, empty, racing reset, degraded array)
	Verified       bool  // stripe proven consistent (possibly after repair)
	Adopted        bool  // checksum row recorded for a previously uncovered stripe
	Mismatch       bool  // XOR or CRC verification failed
	ReadErrors     int   // units that failed with a latent read error
	RepairedData   bool  // a data unit was reconstructed and relocated
	RepairedParity bool  // the parity unit was reconstructed and relocated
	Unrepaired     bool  // damage detected but not safely attributable/repairable
}

// StripesPerZone returns the number of stripes a logical zone holds.
func (v *Volume) StripesPerZone() int64 { return v.lt.stripesPerZone() }

// ScrubProgress returns, per logical zone, one past the index of the
// highest stripe verified since the progress was last reset.
func (v *Volume) ScrubProgress() []int64 {
	v.scrubMu.Lock()
	defer v.scrubMu.Unlock()
	out := make([]int64, len(v.scrubPos))
	copy(out, v.scrubPos)
	return out
}

// ResetScrubProgress zeroes the per-zone scrub positions (start of a
// new scrub pass).
func (v *Volume) ResetScrubProgress() {
	v.scrubMu.Lock()
	for z := range v.scrubPos {
		v.scrubPos[z] = 0
	}
	v.scrubMu.Unlock()
}

func (v *Volume) setScrubPos(z int, s int64) {
	v.scrubMu.Lock()
	if s+1 > v.scrubPos[z] {
		v.scrubPos[z] = s + 1
	}
	v.scrubMu.Unlock()
}

// ScrubStripe verifies (and, when repair is set, repairs) stripe s of
// logical zone z. It returns an error only for environmental failures
// (dead device mid-scrub, IO beyond the fault model); verification
// outcomes are reported in the result.
func (v *Volume) ScrubStripe(z int, s int64, repair bool) (StripeScrubResult, error) {
	var res StripeScrubResult
	if z < 0 || z >= v.lt.numZones || s < 0 || s >= v.lt.stripesPerZone() {
		return res, ErrOutOfRange
	}
	skip := func() (StripeScrubResult, error) {
		res.Skipped = true
		v.stats.scrubSkippedStripes.Add(1)
		return res, nil
	}
	// While degraded one unit per stripe is already being served by
	// reconstruction; there is no redundancy left to verify against.
	if v.Degraded() >= 0 || v.ReadOnly() {
		return skip()
	}
	gen0 := v.Generation(z)
	lz := v.zones[z]
	lz.mu.Lock()
	stable := !lz.resetting && (s+1)*v.lt.stripeSectors() <= lz.submittedWP
	lz.mu.Unlock()
	if !stable {
		return skip()
	}

	// Root span of the scrub request; nil while tracing is disabled.
	sp := v.tracer.Begin(obs.OpScrub, v.lt.stripeStart(z, s), v.lt.stripeSectors()*int64(v.sectorSize))

	// Read the full stripe: D data units + parity (slot d).
	ss := int64(v.sectorSize)
	su := v.lt.su
	imgs := make([][]byte, v.lt.n)
	var unreadable []int
	for u := 0; u <= v.lt.d; u++ {
		img, err := v.readUnitImage(sp, z, s, u, su)
		if err != nil {
			if v.Generation(z) != gen0 {
				sp.End(nil)
				return skip() // the zone was reset under us
			}
			if errors.Is(err, zns.ErrReadMedium) {
				unreadable = append(unreadable, u)
				res.ReadErrors++
				continue
			}
			sp.End(err)
			return res, err
		}
		imgs[u] = img
		res.BytesRead += su * ss
	}
	sp.Mark(obs.PhasePlan)
	if v.Generation(z) != gen0 {
		sp.End(nil)
		return skip()
	}

	crcs := v.StripeChecksums(z, s)
	switch len(unreadable) {
	case 0:
		v.verifyStripeImages(z, s, gen0, imgs, crcs, repair, &res)
	case 1:
		v.repairUnreadableUnit(z, s, unreadable[0], imgs, crcs, repair, &res)
	default:
		// Multiple unreadable units: beyond single-parity redundancy.
		res.Mismatch = true
		res.Unrepaired = true
		v.stats.scrubMismatches.Add(1)
		v.stats.scrubUnrepaired.Add(1)
	}
	sp.Mark(obs.PhaseCompute)

	if res.Verified {
		v.stats.scrubbedStripes.Add(1)
		v.setScrubPos(z, s)
	}
	v.fireHook("raizn.scrub.stripe", obs.SrcLogical, z, s)
	sp.End(nil)
	return res, nil
}

// verifyStripeImages checks a fully readable stripe and repairs at most
// one CRC-attributed bad unit.
func (v *Volume) verifyStripeImages(z int, s int64, gen uint64, imgs [][]byte, crcs []uint32, repair bool, res *StripeScrubResult) {
	// One fused pass over the stripe (parity.XORCRCInto): XOR-accumulate
	// every unit image into acc while computing each unit's CRC32-C with
	// the block still cache-hot. XOR consistency = acc all-zero; the
	// per-unit CRCs serve both mismatch attribution and adoption.
	acc := make([]byte, len(imgs[0]))
	obsCRC := make([]uint32, len(imgs)+1)
	parity.XORCRCInto(acc, imgs, obsCRC, crcTable)
	xorOK := allZero(acc)
	if crcs == nil {
		if xorOK {
			// Consistent but uncovered: adopt the observed checksums.
			v.adoptChecksums(z, s, gen, obsCRC[:len(imgs)])
			res.Adopted = true
			res.Verified = true
			return
		}
		// Inconsistent with nothing to attribute the damage: repairing
		// would guess which unit is wrong. Leave the data alone.
		res.Mismatch = true
		res.Unrepaired = true
		v.stats.scrubMismatches.Add(1)
		v.stats.scrubUnrepaired.Add(1)
		return
	}

	var bad []int
	for u := range imgs {
		if obsCRC[u] != crcs[u] {
			bad = append(bad, u)
		}
	}
	if len(bad) == 0 {
		if xorOK {
			res.Verified = true
			return
		}
		// Every unit matches its CRC yet the XOR fails: the row itself
		// is inconsistent (e.g. adopted from a previously damaged
		// stripe). Not attributable.
		res.Mismatch = true
		res.Unrepaired = true
		v.stats.scrubMismatches.Add(1)
		v.stats.scrubUnrepaired.Add(1)
		return
	}

	res.Mismatch = true
	v.stats.scrubMismatches.Add(1)
	if len(bad) > 1 {
		res.Unrepaired = true
		v.stats.scrubUnrepaired.Add(1)
		return
	}

	u := bad[0]
	v.noteCorruption(v.unitDevice(z, s, u))
	want := reconstructUnit(imgs, u)
	if crcOf(want) != crcs[u] {
		// The reconstruction does not match the recorded CRC either:
		// more than one unit is wrong in a way the CRCs cannot pin down.
		res.Unrepaired = true
		v.stats.scrubUnrepaired.Add(1)
		return
	}
	if !repair {
		return
	}
	if err := v.relocateRepairedUnit(z, s, u, want); err != nil {
		res.Unrepaired = true
		v.stats.scrubUnrepaired.Add(1)
		return
	}
	if u == v.lt.d {
		res.RepairedParity = true
		v.stats.scrubRepairedParity.Add(1)
	} else {
		res.RepairedData = true
		v.stats.scrubRepairedData.Add(1)
	}
	res.Verified = true
}

// repairUnreadableUnit reconstructs the single unit that failed with a
// latent read error from the surviving units.
func (v *Volume) repairUnreadableUnit(z int, s int64, u int, imgs [][]byte, crcs []uint32, repair bool, res *StripeScrubResult) {
	v.noteCorruption(v.unitDevice(z, s, u))
	if crcs != nil {
		// Verify the survivors first: silent rot in a survivor would
		// poison the reconstruction.
		for u2, img := range imgs {
			if u2 == u || img == nil {
				continue
			}
			if crcOf(img) != crcs[u2] {
				res.Mismatch = true
				res.Unrepaired = true
				v.stats.scrubMismatches.Add(1)
				v.stats.scrubUnrepaired.Add(1)
				return
			}
		}
	}
	want := reconstructUnit(imgs, u)
	if crcs != nil && crcOf(want) != crcs[u] {
		res.Mismatch = true
		res.Unrepaired = true
		v.stats.scrubMismatches.Add(1)
		v.stats.scrubUnrepaired.Add(1)
		return
	}
	if !repair {
		return
	}
	if err := v.relocateRepairedUnit(z, s, u, want); err != nil {
		res.Unrepaired = true
		v.stats.scrubUnrepaired.Add(1)
		return
	}
	if u == v.lt.d {
		res.RepairedParity = true
		v.stats.scrubRepairedParity.Add(1)
	} else {
		res.RepairedData = true
		v.stats.scrubRepairedData.Add(1)
	}
	res.Verified = true
}

// unitDevice maps a CRC slot (data unit index, or d for parity) to the
// owning device.
func (v *Volume) unitDevice(z int, s int64, u int) int {
	if u == v.lt.d {
		return v.lt.parityDev(z, s)
	}
	return v.lt.dataDev(z, s, u)
}

// allZero reports whether every byte of b is zero.
func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

// reconstructUnit XORs every unit image except slot u — by the parity
// equation that is slot u's content.
func reconstructUnit(imgs [][]byte, u int) []byte {
	var out []byte
	for u2, img := range imgs {
		if u2 == u || img == nil {
			continue
		}
		if out == nil {
			out = append([]byte(nil), img...)
			continue
		}
		parity.XORInto(out, img)
	}
	return out
}

// adoptChecksums records the observed CRC row of an XOR-consistent but
// uncovered stripe, in memory and in the metadata log.
func (v *Volume) adoptChecksums(z int, s int64, gen uint64, crcs []uint32) {
	v.setStripeChecksums(z, s, crcs)
	v.stats.checksumRecords.Add(1)
	m := v.mdm(v.checksumDev(z))
	if m == nil {
		return
	}
	fut, _, err := m.append(&record{
		typ:    recChecksums,
		gen:    gen,
		inline: encodeChecksums(z, s, crcs),
	}, 0)
	if err == nil {
		_ = fut.Wait()
	}
}

// relocateRepairedUnit persists a corrected unit through the §5.2
// relocation machinery: the physical sectors are pinned by zone
// immutability, so the payload goes to the owning device's metadata
// zone and shadows the arithmetic location from the relocation map.
func (v *Volume) relocateRepairedUnit(z int, s int64, u int, data []byte) error {
	isParity := u == v.lt.d
	dev := v.unitDevice(z, s, u)
	var lba int64
	if !isParity {
		lba = v.lt.stripeStart(z, s) + int64(u)*v.lt.su
	}
	p := v.relocationRecord(dev, data, lba, isParity, z, s)
	return v.awaitSubIOs(v.issuePendingMD(nil, []pendingMD{p}, nil))
}
