package raizn

import (
	"testing"

	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// unitSectorPBA returns (device, device-absolute sector) of intra offset
// `intra` of data unit u (or the parity unit when u == d) of stripe s in
// logical zone z.
func unitSectorPBA(v *Volume, z int, s int64, u int, intra int64) (int, int64) {
	if u == v.lt.d {
		return v.lt.parityDev(z, s), v.lt.parityPBA(z, s) + intra
	}
	return v.lt.dataDev(z, s, u), int64(z)*v.lt.physZoneSize + s*v.lt.su + intra
}

func TestScrubVerifiesCleanStripes(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 128, 0) // two full stripes in zone 0
		for s := int64(0); s < 2; s++ {
			res, err := v.ScrubStripe(0, s, true)
			if err != nil {
				t.Fatalf("ScrubStripe(0, %d): %v", s, err)
			}
			if !res.Verified || res.Mismatch || res.Skipped {
				t.Errorf("stripe %d: got %+v, want clean verify", s, res)
			}
		}
		// Partial tail stripe and unwritten stripes are skipped.
		mustWriteV(t, v, 128, 8, 0)
		res, err := v.ScrubStripe(0, 2, true)
		if err != nil {
			t.Fatalf("ScrubStripe(0, 2): %v", err)
		}
		if !res.Skipped {
			t.Errorf("partial stripe: got %+v, want skipped", res)
		}
		if got := v.Stats().ScrubbedStripes; got != 2 {
			t.Errorf("ScrubbedStripes = %d, want 2", got)
		}
	})
}

func TestScrubRepairsDataRot(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0)
		if err := v.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		dev, pba := unitSectorPBA(v, 0, 0, 2, 5)
		if err := devs[dev].CorruptSector(pba); err != nil {
			t.Fatalf("CorruptSector: %v", err)
		}
		res, err := v.ScrubStripe(0, 0, true)
		if err != nil {
			t.Fatalf("ScrubStripe: %v", err)
		}
		if !res.Mismatch || !res.RepairedData || !res.Verified {
			t.Fatalf("got %+v, want mismatch+repaired", res)
		}
		checkReadV(t, v, 0, 64)
		// The repair went through the relocation map.
		if v.RelocationCount() == 0 {
			t.Error("repair did not create a relocation entry")
		}
		if re, _ := v.DeviceErrorCounters(dev); re != 0 {
			t.Errorf("readErrors = %d, want 0", re)
		}
		if _, corr := v.DeviceErrorCounters(dev); corr != 1 {
			t.Errorf("corruptions = %d, want 1", corr)
		}
		// A second pass sees a clean stripe.
		res, err = v.ScrubStripe(0, 0, true)
		if err != nil {
			t.Fatalf("ScrubStripe (2nd): %v", err)
		}
		if !res.Verified || res.Mismatch {
			t.Errorf("second pass: got %+v, want clean", res)
		}
	})
}

func TestScrubRepairsParityRot(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0)
		dev, pba := unitSectorPBA(v, 0, 0, v.lt.d, 3)
		if err := devs[dev].CorruptSector(pba); err != nil {
			t.Fatalf("CorruptSector: %v", err)
		}
		res, err := v.ScrubStripe(0, 0, true)
		if err != nil {
			t.Fatalf("ScrubStripe: %v", err)
		}
		if !res.Mismatch || !res.RepairedParity || !res.Verified {
			t.Fatalf("got %+v, want parity repair", res)
		}
		// Degraded reads after the repair reconstruct from the corrected
		// parity: fail a data-holding device and re-read.
		if err := v.FailDevice(v.lt.dataDev(0, 0, 0)); err != nil {
			t.Fatalf("FailDevice: %v", err)
		}
		checkReadV(t, v, 0, 64)
	})
}

func TestScrubRepairsLatentReadError(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0)
		dev, pba := unitSectorPBA(v, 0, 0, 1, 0)
		if err := devs[dev].InjectReadError(pba); err != nil {
			t.Fatalf("InjectReadError: %v", err)
		}
		res, err := v.ScrubStripe(0, 0, true)
		if err != nil {
			t.Fatalf("ScrubStripe: %v", err)
		}
		if res.ReadErrors != 1 || !res.RepairedData || !res.Verified {
			t.Fatalf("got %+v, want read-error repair", res)
		}
		// The relocation overlay shadows the latent sector: reads no
		// longer touch it.
		checkReadV(t, v, 0, 64)
		if re, _ := v.DeviceErrorCounters(dev); re == 0 {
			t.Error("latent read error not counted against the device")
		}
	})
}

func TestScrubNeverRepairsUnattributable(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0)
		// Rot in two different units of the same stripe: not repairable
		// with single parity.
		d1, p1 := unitSectorPBA(v, 0, 0, 0, 1)
		d2, p2 := unitSectorPBA(v, 0, 0, 3, 7)
		if err := devs[d1].CorruptSector(p1); err != nil {
			t.Fatalf("CorruptSector: %v", err)
		}
		if err := devs[d2].CorruptSector(p2); err != nil {
			t.Fatalf("CorruptSector: %v", err)
		}
		res, err := v.ScrubStripe(0, 0, true)
		if err != nil {
			t.Fatalf("ScrubStripe: %v", err)
		}
		if !res.Mismatch || !res.Unrepaired || res.RepairedData || res.RepairedParity {
			t.Fatalf("got %+v, want unrepaired", res)
		}
		if v.RelocationCount() != 0 {
			t.Error("unrepairable stripe must not be modified")
		}
	})
}

func TestScrubForegroundReadRepair(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0)
		dev, pba := unitSectorPBA(v, 0, 0, 0, 2)
		if err := devs[dev].InjectReadError(pba); err != nil {
			t.Fatalf("InjectReadError: %v", err)
		}
		// A foreground read of the affected range succeeds transparently
		// via parity reconstruction.
		checkReadV(t, v, 0, 64)
		if got := v.Stats().ReadErrorRepairs; got == 0 {
			t.Error("read-repair not counted")
		}
		if re, _ := v.DeviceErrorCounters(dev); re == 0 {
			t.Error("read error not counted against device")
		}
	})
}

func TestChecksumsSurviveRemount(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		devs := newTestDevices(c, 5)
		v, err := Create(c, devs, DefaultConfig())
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		mustWriteV(t, v, 0, 128, 0)
		if err := v.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		if err := v.Unmount(); err != nil {
			t.Fatalf("Unmount: %v", err)
		}

		v2, err := Mount(c, devs, DefaultConfig())
		if err != nil {
			t.Fatalf("Mount: %v", err)
		}
		if got := v2.ChecksumCoverage(0); got != 2 {
			t.Fatalf("ChecksumCoverage(0) = %d, want 2", got)
		}
		// Rot introduced while offline is caught and repaired using the
		// replayed checksums.
		dev, pba := unitSectorPBA(v2, 0, 1, 2, 9)
		if err := devs[dev].CorruptSector(pba); err != nil {
			t.Fatalf("CorruptSector: %v", err)
		}
		res, err := v2.ScrubStripe(0, 1, true)
		if err != nil {
			t.Fatalf("ScrubStripe: %v", err)
		}
		if !res.Mismatch || !res.RepairedData {
			t.Fatalf("got %+v, want repair from replayed checksums", res)
		}
		checkReadV(t, v2, 0, 128)
	})
}

func TestScrubAdoptsUncoveredStripes(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0)
		// Simulate a pre-checksum stripe by dropping the table row.
		v.clearZoneChecksums(0)
		res, err := v.ScrubStripe(0, 0, true)
		if err != nil {
			t.Fatalf("ScrubStripe: %v", err)
		}
		if !res.Adopted || !res.Verified {
			t.Fatalf("got %+v, want adopt", res)
		}
		if v.StripeChecksums(0, 0) == nil {
			t.Fatal("adopt did not record checksums")
		}
		// Rot after adoption is attributable.
		dev, pba := unitSectorPBA(v, 0, 0, 1, 1)
		if err := devs[dev].CorruptSector(pba); err != nil {
			t.Fatalf("CorruptSector: %v", err)
		}
		res, err = v.ScrubStripe(0, 0, true)
		if err != nil {
			t.Fatalf("ScrubStripe: %v", err)
		}
		if !res.RepairedData {
			t.Fatalf("got %+v, want repair after adoption", res)
		}
	})
}

func TestScrubProgressTracking(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 192, 0)
		for s := int64(0); s < 3; s++ {
			if _, err := v.ScrubStripe(0, s, true); err != nil {
				t.Fatalf("ScrubStripe: %v", err)
			}
		}
		if got := v.ScrubProgress()[0]; got != 3 {
			t.Errorf("ScrubProgress[0] = %d, want 3", got)
		}
		v.ResetScrubProgress()
		if got := v.ScrubProgress()[0]; got != 0 {
			t.Errorf("after reset: ScrubProgress[0] = %d, want 0", got)
		}
	})
}

func TestScrubSkipsAfterZoneReset(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0)
		if err := v.ResetZone(0); err != nil {
			t.Fatalf("ResetZone: %v", err)
		}
		res, err := v.ScrubStripe(0, 0, true)
		if err != nil {
			t.Fatalf("ScrubStripe: %v", err)
		}
		if !res.Skipped {
			t.Errorf("got %+v, want skipped after reset", res)
		}
		if v.StripeChecksums(0, 0) != nil {
			t.Error("zone reset did not clear the checksum table")
		}
	})
}
