package raizn

import "sync/atomic"

// Stats are lifetime volume counters, useful for write-amplification
// analysis and for verifying which mechanisms a workload exercises.
type Stats struct {
	LogicalWriteBytes int64 // host data accepted by SubmitWrite/Append
	LogicalReadBytes  int64 // host data returned by SubmitRead
	PartialParityLogs int64 // §5.1 log records written (PPLog/PPInlineMeta)
	ZRWAParityWrites  int64 // §5.4 in-place parity updates (PPZRWA)
	FullParityWrites  int64 // full-stripe parity units written
	Relocations       int64 // §5.2 relocated fragments created
	ZoneResets        int64 // logical zone resets completed
	MetadataGCs       int64 // metadata zone roll-overs
	DegradedReads     int64 // stripe-unit pieces served by reconstruction

	CoalescedSubWrites int64 // sub-IOs merged into a preceding device write
	// (a vectored command carrying k sub-IOs adds k-1)

	ChecksumRecords     int64 // stripe-checksum metadata records written
	ReadErrorRepairs    int64 // foreground reads recovered via reconstruction
	ScrubbedStripes     int64 // stripes fully verified by scrub
	ScrubSkippedStripes int64 // stripes scrub could not verify (partial/racing)
	ScrubMismatches     int64 // stripes where XOR or CRC verification failed
	ScrubRepairedData   int64 // corrupted data units repaired by scrub
	ScrubRepairedParity int64 // corrupted parity units repaired by scrub
	ScrubUnrepaired     int64 // mismatched stripes scrub could not attribute/repair
}

// statsCounters is embedded in Volume; all fields are updated atomically.
type statsCounters struct {
	logicalWriteBytes atomic.Int64
	logicalReadBytes  atomic.Int64
	partialParityLogs atomic.Int64
	zrwaParityWrites  atomic.Int64
	fullParityWrites  atomic.Int64
	relocations       atomic.Int64
	zoneResets        atomic.Int64
	metadataGCs       atomic.Int64
	degradedReads     atomic.Int64

	coalescedSubWrites atomic.Int64

	checksumRecords     atomic.Int64
	readErrorRepairs    atomic.Int64
	scrubbedStripes     atomic.Int64
	scrubSkippedStripes atomic.Int64
	scrubMismatches     atomic.Int64
	scrubRepairedData   atomic.Int64
	scrubRepairedParity atomic.Int64
	scrubUnrepaired     atomic.Int64
}

// Stats returns a snapshot of the volume's lifetime counters.
func (v *Volume) Stats() Stats {
	return Stats{
		LogicalWriteBytes: v.stats.logicalWriteBytes.Load(),
		LogicalReadBytes:  v.stats.logicalReadBytes.Load(),
		PartialParityLogs: v.stats.partialParityLogs.Load(),
		ZRWAParityWrites:  v.stats.zrwaParityWrites.Load(),
		FullParityWrites:  v.stats.fullParityWrites.Load(),
		Relocations:       v.stats.relocations.Load(),
		ZoneResets:        v.stats.zoneResets.Load(),
		MetadataGCs:       v.stats.metadataGCs.Load(),
		DegradedReads:     v.stats.degradedReads.Load(),

		CoalescedSubWrites: v.stats.coalescedSubWrites.Load(),

		ChecksumRecords:     v.stats.checksumRecords.Load(),
		ReadErrorRepairs:    v.stats.readErrorRepairs.Load(),
		ScrubbedStripes:     v.stats.scrubbedStripes.Load(),
		ScrubSkippedStripes: v.stats.scrubSkippedStripes.Load(),
		ScrubMismatches:     v.stats.scrubMismatches.Load(),
		ScrubRepairedData:   v.stats.scrubRepairedData.Load(),
		ScrubRepairedParity: v.stats.scrubRepairedParity.Load(),
		ScrubUnrepaired:     v.stats.scrubUnrepaired.Load(),
	}
}

// DeviceWriteAmplification returns total device writes (data + parity +
// metadata) divided by host writes, or 0 before any host write. The
// RAID-5 floor is n/d.
func (v *Volume) DeviceWriteAmplification() float64 {
	host := v.stats.logicalWriteBytes.Load()
	if host == 0 {
		return 0
	}
	var dev int64
	for i := range v.devs {
		d := v.dev(i)
		if d == nil {
			continue
		}
		w, _, _, _ := d.Counters()
		dev += w
	}
	return float64(dev) / float64(host)
}
