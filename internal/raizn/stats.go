package raizn

import "raizn/internal/obs"

// Stats are lifetime volume counters, useful for write-amplification
// analysis and for verifying which mechanisms a workload exercises.
type Stats struct {
	LogicalWriteBytes int64 // host data accepted by SubmitWrite/Append
	LogicalReadBytes  int64 // host data returned by SubmitRead
	PartialParityLogs int64 // §5.1 log records written (PPLog/PPInlineMeta)
	ZRWAParityWrites  int64 // §5.4 in-place parity updates (PPZRWA)
	FullParityWrites  int64 // full-stripe parity units written
	Relocations       int64 // §5.2 relocated fragments created
	ZoneResets        int64 // logical zone resets completed
	MetadataGCs       int64 // metadata zone roll-overs
	DegradedReads     int64 // stripe-unit pieces served by reconstruction

	CoalescedSubWrites int64 // sub-IOs merged into a preceding device write
	// (a vectored command carrying k sub-IOs adds k-1)

	ChecksumRecords     int64 // stripe-checksum metadata records written
	ReadErrorRepairs    int64 // foreground reads recovered via reconstruction
	ScrubbedStripes     int64 // stripes fully verified by scrub
	ScrubSkippedStripes int64 // stripes scrub could not verify (partial/racing)
	ScrubMismatches     int64 // stripes where XOR or CRC verification failed
	ScrubRepairedData   int64 // corrupted data units repaired by scrub
	ScrubRepairedParity int64 // corrupted parity units repaired by scrub
	ScrubUnrepaired     int64 // mismatched stripes scrub could not attribute/repair
}

// statsCounters is embedded in Volume. Every field is a registry-backed
// counter (an atomic add on the hot path), so the same numbers are
// visible both through the legacy Stats() view and through registry
// snapshots/exports under their raizn_* names.
type statsCounters struct {
	logicalWriteBytes *obs.Counter
	logicalReadBytes  *obs.Counter
	partialParityLogs *obs.Counter
	zrwaParityWrites  *obs.Counter
	fullParityWrites  *obs.Counter
	relocations       *obs.Counter
	zoneResets        *obs.Counter
	metadataGCs       *obs.Counter
	degradedReads     *obs.Counter

	coalescedSubWrites *obs.Counter

	checksumRecords     *obs.Counter
	readErrorRepairs    *obs.Counter
	scrubbedStripes     *obs.Counter
	scrubSkippedStripes *obs.Counter
	scrubMismatches     *obs.Counter
	scrubRepairedData   *obs.Counter
	scrubRepairedParity *obs.Counter
	scrubUnrepaired     *obs.Counter
}

func newStatsCounters(r *obs.Registry) statsCounters {
	return statsCounters{
		logicalWriteBytes: r.Counter("raizn_logical_write_bytes"),
		logicalReadBytes:  r.Counter("raizn_logical_read_bytes"),
		partialParityLogs: r.Counter("raizn_partial_parity_logs_total"),
		zrwaParityWrites:  r.Counter("raizn_zrwa_parity_writes_total"),
		fullParityWrites:  r.Counter("raizn_full_parity_writes_total"),
		relocations:       r.Counter("raizn_relocations_total"),
		zoneResets:        r.Counter("raizn_zone_resets_total"),
		metadataGCs:       r.Counter("raizn_metadata_gcs_total"),
		degradedReads:     r.Counter("raizn_degraded_reads_total"),

		coalescedSubWrites: r.Counter("raizn_coalesced_sub_writes_total"),

		checksumRecords:     r.Counter("raizn_checksum_records_total"),
		readErrorRepairs:    r.Counter("raizn_read_error_repairs_total"),
		scrubbedStripes:     r.Counter("raizn_scrubbed_stripes_total"),
		scrubSkippedStripes: r.Counter("raizn_scrub_skipped_stripes_total"),
		scrubMismatches:     r.Counter("raizn_scrub_mismatches_total"),
		scrubRepairedData:   r.Counter("raizn_scrub_repaired_data_total"),
		scrubRepairedParity: r.Counter("raizn_scrub_repaired_parity_total"),
		scrubUnrepaired:     r.Counter("raizn_scrub_unrepaired_total"),
	}
}

// Stats returns a snapshot of the volume's lifetime counters. It is a
// thin view over the registry-backed counters.
func (v *Volume) Stats() Stats {
	return Stats{
		LogicalWriteBytes: v.stats.logicalWriteBytes.Load(),
		LogicalReadBytes:  v.stats.logicalReadBytes.Load(),
		PartialParityLogs: v.stats.partialParityLogs.Load(),
		ZRWAParityWrites:  v.stats.zrwaParityWrites.Load(),
		FullParityWrites:  v.stats.fullParityWrites.Load(),
		Relocations:       v.stats.relocations.Load(),
		ZoneResets:        v.stats.zoneResets.Load(),
		MetadataGCs:       v.stats.metadataGCs.Load(),
		DegradedReads:     v.stats.degradedReads.Load(),

		CoalescedSubWrites: v.stats.coalescedSubWrites.Load(),

		ChecksumRecords:     v.stats.checksumRecords.Load(),
		ReadErrorRepairs:    v.stats.readErrorRepairs.Load(),
		ScrubbedStripes:     v.stats.scrubbedStripes.Load(),
		ScrubSkippedStripes: v.stats.scrubSkippedStripes.Load(),
		ScrubMismatches:     v.stats.scrubMismatches.Load(),
		ScrubRepairedData:   v.stats.scrubRepairedData.Load(),
		ScrubRepairedParity: v.stats.scrubRepairedParity.Load(),
		ScrubUnrepaired:     v.stats.scrubUnrepaired.Load(),
	}
}

// DeviceWriteAmplification returns total device writes (data + parity +
// metadata) divided by host writes, or 0 before any host write. The
// RAID-5 floor is n/d.
func (v *Volume) DeviceWriteAmplification() float64 {
	host := v.stats.logicalWriteBytes.Load()
	if host == 0 {
		return 0
	}
	var dev int64
	for i := range v.devs {
		d := v.dev(i)
		if d == nil {
			continue
		}
		w, _, _, _ := d.Counters()
		dev += w
	}
	return float64(dev) / float64(host)
}
