package raizn

import (
	"fmt"

	"raizn/internal/obs"
	"raizn/internal/ppengine"
)

// Stats are lifetime volume counters, useful for write-amplification
// analysis and for verifying which mechanisms a workload exercises.
type Stats struct {
	LogicalWriteBytes int64 // host data accepted by SubmitWrite/Append
	LogicalReadBytes  int64 // host data returned by SubmitRead
	PartialParityLogs int64 // §5.1 log records written (PPLog/PPInlineMeta)
	ZRWAParityWrites  int64 // §5.4 in-place parity updates (PPZRWA)
	FullParityWrites  int64 // full-stripe parity units written
	Relocations       int64 // §5.2 relocated fragments created
	ZoneResets        int64 // logical zone resets completed
	MetadataGCs       int64 // metadata zone roll-overs
	DegradedReads     int64 // stripe-unit pieces served by reconstruction

	CoalescedSubWrites int64 // sub-IOs merged into a preceding device write
	// (a vectored command carrying k sub-IOs adds k-1)

	ChecksumRecords     int64 // stripe-checksum metadata records written
	ReadErrorRepairs    int64 // foreground reads recovered via reconstruction
	ZeroCopyReads       int64 // SubmitReadZC requests served without copying
	ZeroCopyFallbacks   int64 // SubmitReadZC requests that fell back to a copy
	ScrubbedStripes     int64 // stripes fully verified by scrub
	ScrubSkippedStripes int64 // stripes scrub could not verify (partial/racing)
	ScrubMismatches     int64 // stripes where XOR or CRC verification failed
	ScrubRepairedData   int64 // corrupted data units repaired by scrub
	ScrubRepairedParity int64 // corrupted parity units repaired by scrub
	ScrubUnrepaired     int64 // mismatched stripes scrub could not attribute/repair
}

// statsCounters is embedded in Volume. Every field is a registry-backed
// counter (an atomic add on the hot path), so the same numbers are
// visible both through the legacy Stats() view and through registry
// snapshots/exports under their raizn_* names.
type statsCounters struct {
	logicalWriteBytes *obs.Counter
	logicalReadBytes  *obs.Counter
	partialParityLogs *obs.Counter
	zrwaParityWrites  *obs.Counter
	fullParityWrites  *obs.Counter
	relocations       *obs.Counter
	zoneResets        *obs.Counter
	metadataGCs       *obs.Counter
	degradedReads     *obs.Counter

	coalescedSubWrites *obs.Counter

	checksumRecords     *obs.Counter
	readErrorRepairs    *obs.Counter
	zcReads             *obs.Counter
	zcFallbacks         *obs.Counter
	scrubbedStripes     *obs.Counter
	scrubSkippedStripes *obs.Counter
	scrubMismatches     *obs.Counter
	scrubRepairedData   *obs.Counter
	scrubRepairedParity *obs.Counter
	scrubUnrepaired     *obs.Counter

	// Layered write-amplification accounting: every byte the raizn
	// layer puts on a device is charged to exactly one category, so
	// summing them reproduces total device host writes and the WAReport
	// can decompose the amplification by cause.
	waDataBytes      *obs.Counter // user data at its arithmetic (or relocated) location
	waParityBytes    *obs.Counter // full-stripe, ZRWA, and relocated parity images
	waPPHeaderBytes  *obs.Counter // §5.1 partial-parity record header sectors
	waPPPayloadBytes *obs.Counter // §5.1 partial-parity payload sectors
	waMetadataBytes  *obs.Counter // superblock/gen/WAL/checksum/checkpoint records + reloc headers
	waRebuildBytes   *obs.Counter // reconstruction writes to a replacement device
}

func newStatsCounters(r *obs.Registry, label string) statsCounters {
	registerStatsHelp(r)
	// A non-empty array label turns every series into name{array="..."}
	// so multiple arrays sharing one registry keep distinct counters; an
	// empty label preserves the original bare names (see Config.
	// MetricsLabel).
	n := func(name string) string { return obs.LabeledName(name, "array", label) }
	return statsCounters{
		logicalWriteBytes: r.Counter(n("raizn_logical_write_bytes")),
		logicalReadBytes:  r.Counter(n("raizn_logical_read_bytes")),
		partialParityLogs: r.Counter(n("raizn_partial_parity_logs_total")),
		zrwaParityWrites:  r.Counter(n("raizn_zrwa_parity_writes_total")),
		fullParityWrites:  r.Counter(n("raizn_full_parity_writes_total")),
		relocations:       r.Counter(n("raizn_relocations_total")),
		zoneResets:        r.Counter(n("raizn_zone_resets_total")),
		metadataGCs:       r.Counter(n("raizn_metadata_gcs_total")),
		degradedReads:     r.Counter(n("raizn_degraded_reads_total")),

		coalescedSubWrites: r.Counter(n("raizn_coalesced_sub_writes_total")),

		checksumRecords:     r.Counter(n("raizn_checksum_records_total")),
		readErrorRepairs:    r.Counter(n("raizn_read_error_repairs_total")),
		zcReads:             r.Counter(n("raizn_zero_copy_reads_total")),
		zcFallbacks:         r.Counter(n("raizn_zero_copy_fallbacks_total")),
		scrubbedStripes:     r.Counter(n("raizn_scrubbed_stripes_total")),
		scrubSkippedStripes: r.Counter(n("raizn_scrub_skipped_stripes_total")),
		scrubMismatches:     r.Counter(n("raizn_scrub_mismatches_total")),
		scrubRepairedData:   r.Counter(n("raizn_scrub_repaired_data_total")),
		scrubRepairedParity: r.Counter(n("raizn_scrub_repaired_parity_total")),
		scrubUnrepaired:     r.Counter(n("raizn_scrub_unrepaired_total")),

		waDataBytes:      r.Counter(n("raizn_wa_data_bytes")),
		waParityBytes:    r.Counter(n("raizn_wa_parity_bytes")),
		waPPHeaderBytes:  r.Counter(n("raizn_wa_pp_header_bytes")),
		waPPPayloadBytes: r.Counter(n("raizn_wa_pp_payload_bytes")),
		waMetadataBytes:  r.Counter(n("raizn_wa_metadata_bytes")),
		waRebuildBytes:   r.Counter(n("raizn_wa_rebuild_bytes")),
	}
}

// registerEngineMetrics publishes the parity-persistence engine's
// counters as pull-style gauges. Like the statsCounters, a non-empty
// array label namespaces every series (name{array="..."}) so arrays
// sharing a volume-manager registry stay collision-free; HELP text is
// registered under the bare names, shared by all arrays.
func registerEngineMetrics(r *obs.Registry, label string, eng ppengine.Engine) {
	r.Help("raizn_pp_volatile_bytes", "partial-parity bytes superseded inside the ZRWA window, never programmed to flash (zraid engine)")
	r.Help("raizn_pp_permanent_bytes", "partial-parity bytes programmed to flash (the ZRWA window slid past them, or every logged PP byte)")
	r.Help("raizn_pp_fallback_total", "partial-parity persists refused by the engine (PP-zone exhaustion) and diverted to the metadata log")
	r.Help("raizn_gc_runs_total", "PP-zone garbage collections completed (zraid engine)")
	r.Help("raizn_gc_migrated_total", "live partial-parity slots migrated by PP-zone garbage collection (zraid engine)")
	n := func(name string) string { return obs.LabeledName(name, "array", label) }
	g := func(name string, f func(ppengine.Stats) int64) {
		r.GaugeFunc(n(name), func() int64 { return f(eng.Stats()) })
	}
	g("raizn_pp_volatile_bytes", func(s ppengine.Stats) int64 { return s.VolatileBytes })
	g("raizn_pp_permanent_bytes", func(s ppengine.Stats) int64 { return s.PermanentBytes })
	g("raizn_pp_fallback_total", func(s ppengine.Stats) int64 { return s.FallbackTotal })
	g("raizn_gc_runs_total", func(s ppengine.Stats) int64 { return s.GCRuns })
	g("raizn_gc_migrated_total", func(s ppengine.Stats) int64 { return s.GCMigrated })
}

// registerStatsHelp attaches HELP text to every statsCounters family
// (under the bare names — labeled series share the family's help).
func registerStatsHelp(r *obs.Registry) {
	r.Help("raizn_logical_write_bytes", "host data bytes accepted by SubmitWrite/Append")
	r.Help("raizn_logical_read_bytes", "host data bytes returned by SubmitRead")
	r.Help("raizn_partial_parity_logs_total", "partial-parity log records written (paper section 5.1)")
	r.Help("raizn_zrwa_parity_writes_total", "in-place ZRWA parity updates (paper section 5.4)")
	r.Help("raizn_full_parity_writes_total", "full-stripe parity units written")
	r.Help("raizn_relocations_total", "relocated write fragments created (paper section 5.2)")
	r.Help("raizn_zone_resets_total", "logical zone resets completed")
	r.Help("raizn_metadata_gcs_total", "metadata zone garbage-collection roll-overs")
	r.Help("raizn_degraded_reads_total", "stripe-unit pieces served by parity reconstruction")
	r.Help("raizn_coalesced_sub_writes_total", "device sub-IOs merged into a preceding vectored write")
	r.Help("raizn_checksum_records_total", "stripe-checksum metadata records written")
	r.Help("raizn_read_error_repairs_total", "foreground reads recovered via reconstruction")
	r.Help("raizn_zero_copy_reads_total", "SubmitReadZC requests served without copying")
	r.Help("raizn_zero_copy_fallbacks_total", "SubmitReadZC requests that fell back to a copy")
	r.Help("raizn_scrubbed_stripes_total", "stripes fully verified by scrub")
	r.Help("raizn_scrub_skipped_stripes_total", "stripes scrub could not verify (partial or racing)")
	r.Help("raizn_scrub_mismatches_total", "stripes where XOR or CRC verification failed")
	r.Help("raizn_scrub_repaired_data_total", "corrupted data units repaired by scrub")
	r.Help("raizn_scrub_repaired_parity_total", "corrupted parity units repaired by scrub")
	r.Help("raizn_scrub_unrepaired_total", "mismatched stripes scrub could not attribute or repair")
}

func registerWAHelp(r *obs.Registry) {
	r.Help("raizn_wa_data_bytes", "device bytes carrying user data (arithmetic location or relocated payload)")
	r.Help("raizn_wa_parity_bytes", "device bytes carrying parity images (full-stripe, ZRWA prefix, relocated)")
	r.Help("raizn_wa_pp_header_bytes", "device bytes spent on partial-parity record headers (paper section 5.1)")
	r.Help("raizn_wa_pp_payload_bytes", "device bytes carrying partial-parity payloads (paper section 5.1)")
	r.Help("raizn_wa_metadata_bytes", "device bytes spent on metadata records: superblock, generations, reset WAL, checksums, checkpoints, relocation headers")
	r.Help("raizn_wa_rebuild_bytes", "device bytes written to a replacement device during rebuild")
}

// Stats returns a snapshot of the volume's lifetime counters. It is a
// thin view over the registry-backed counters.
func (v *Volume) Stats() Stats {
	return Stats{
		LogicalWriteBytes: v.stats.logicalWriteBytes.Load(),
		LogicalReadBytes:  v.stats.logicalReadBytes.Load(),
		PartialParityLogs: v.stats.partialParityLogs.Load(),
		ZRWAParityWrites:  v.stats.zrwaParityWrites.Load(),
		FullParityWrites:  v.stats.fullParityWrites.Load(),
		Relocations:       v.stats.relocations.Load(),
		ZoneResets:        v.stats.zoneResets.Load(),
		MetadataGCs:       v.stats.metadataGCs.Load(),
		DegradedReads:     v.stats.degradedReads.Load(),

		CoalescedSubWrites: v.stats.coalescedSubWrites.Load(),

		ChecksumRecords:     v.stats.checksumRecords.Load(),
		ReadErrorRepairs:    v.stats.readErrorRepairs.Load(),
		ZeroCopyReads:       v.stats.zcReads.Load(),
		ZeroCopyFallbacks:   v.stats.zcFallbacks.Load(),
		ScrubbedStripes:     v.stats.scrubbedStripes.Load(),
		ScrubSkippedStripes: v.stats.scrubSkippedStripes.Load(),
		ScrubMismatches:     v.stats.scrubMismatches.Load(),
		ScrubRepairedData:   v.stats.scrubRepairedData.Load(),
		ScrubRepairedParity: v.stats.scrubRepairedParity.Load(),
		ScrubUnrepaired:     v.stats.scrubUnrepaired.Load(),
	}
}

// accountMDBytes charges a metadata append's sectors to the layered WA
// categories: partial-parity headers and payloads separately (§5.1),
// relocation payloads back to the data/parity category they carry
// (§5.2), everything else — superblock, generation counters, reset WAL,
// stripe checksums, GC checkpoints — to metadata. Checkpoint copies are
// pure metadata churn regardless of the record they re-persist.
func (v *Volume) accountMDBytes(typ recType, headerSectors, payloadSectors int64) {
	ss := int64(v.sectorSize)
	hdr, pay := headerSectors*ss, payloadSectors*ss
	if typ&recCheckpoint != 0 {
		v.stats.waMetadataBytes.Add(hdr + pay)
		return
	}
	switch typ.base() {
	case recPartialParity:
		v.stats.waPPHeaderBytes.Add(hdr)
		v.stats.waPPPayloadBytes.Add(pay)
	case recRelocData:
		v.stats.waMetadataBytes.Add(hdr)
		v.stats.waDataBytes.Add(pay)
	case recRelocParity:
		v.stats.waMetadataBytes.Add(hdr)
		v.stats.waParityBytes.Add(pay)
	default:
		v.stats.waMetadataBytes.Add(hdr + pay)
	}
}

// recordMDEvent journals one metadata append into the event stream:
// live partial-parity records get their own event type (§5.1 traffic is
// a headline WA cause); everything else is a metadata-write event
// carrying the record type. zone is the physical metadata zone appended
// to on device dev.
func (v *Volume) recordMDEvent(dev, zone int, typ recType, hdrSectors, paySectors int64) {
	if !v.jrn.Enabled() {
		return
	}
	ss := int64(v.sectorSize)
	if typ.base() == recPartialParity && typ&recCheckpoint == 0 {
		v.jrn.Record(obs.EvPartialParity, dev, zone, paySectors*ss, hdrSectors*ss, 0, 0)
		return
	}
	v.jrn.Record(obs.EvMetadataWrite, dev, zone, paySectors*ss, hdrSectors*ss, int64(typ), 0)
}

// WAReport assembles the layered write-amplification report: user bytes
// accepted at the top, the raizn layer's per-category physical writes in
// the middle, and each device's host-write total at the bottom. The
// category sum and the device sum describe the same bytes from the two
// sides of the device interface, so they agree once in-flight IO drains.
func (v *Volume) WAReport() *obs.WAReport {
	rep := &obs.WAReport{
		UserBytes: v.stats.logicalWriteBytes.Load(),
		Categories: []obs.WACategory{
			{Name: "data", Bytes: v.stats.waDataBytes.Load()},
			{Name: "parity", Bytes: v.stats.waParityBytes.Load()},
			{Name: "pp-header", Bytes: v.stats.waPPHeaderBytes.Load()},
			{Name: "pp-payload", Bytes: v.stats.waPPPayloadBytes.Load()},
			{Name: "metadata", Bytes: v.stats.waMetadataBytes.Load()},
			{Name: "rebuild", Bytes: v.stats.waRebuildBytes.Load()},
		},
	}
	for i := range v.devs {
		d := v.dev(i)
		if d == nil {
			rep.Devices = append(rep.Devices, obs.WADevice{Name: fmt.Sprintf("dev%d (failed)", i)})
			continue
		}
		w, _, _, _ := d.Counters()
		rep.Devices = append(rep.Devices, obs.WADevice{Name: fmt.Sprintf("dev%d", i), HostBytes: w})
	}
	return rep
}

// DeviceWriteAmplification returns total device writes (data + parity +
// metadata) divided by host writes, or 0 before any host write. The
// RAID-5 floor is n/d.
func (v *Volume) DeviceWriteAmplification() float64 {
	host := v.stats.logicalWriteBytes.Load()
	if host == 0 {
		return 0
	}
	var dev int64
	for i := range v.devs {
		d := v.dev(i)
		if d == nil {
			continue
		}
		w, _, _, _ := d.Counters()
		dev += w
	}
	return float64(dev) / float64(host)
}
