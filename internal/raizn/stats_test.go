package raizn

import (
	"testing"

	"raizn/internal/vclock"
	"raizn/internal/zns"
)

func TestStatsCounters(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 10, 0)  // sub-stripe: pp log
		mustWriteV(t, v, 10, 54, 0) // completes the stripe: full parity
		checkReadV(t, v, 0, 64)
		if err := v.ResetZone(0); err != nil {
			t.Fatal(err)
		}
		st := v.Stats()
		if st.LogicalWriteBytes != 64*4096 {
			t.Errorf("LogicalWriteBytes = %d", st.LogicalWriteBytes)
		}
		if st.LogicalReadBytes != 64*4096 {
			t.Errorf("LogicalReadBytes = %d", st.LogicalReadBytes)
		}
		if st.PartialParityLogs == 0 {
			t.Error("no partial parity logs counted")
		}
		if st.FullParityWrites != 1 {
			t.Errorf("FullParityWrites = %d, want 1", st.FullParityWrites)
		}
		if st.ZoneResets != 1 {
			t.Errorf("ZoneResets = %d, want 1", st.ZoneResets)
		}
		if st.DegradedReads != 0 {
			t.Errorf("DegradedReads = %d, want 0", st.DegradedReads)
		}
	})
}

func TestStatsDegradedAndWA(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 128, 0)
		if wa := v.DeviceWriteAmplification(); wa < 1.24 {
			t.Errorf("WA = %f, want >= n/d", wa)
		}
		v.FailDevice(1)
		checkReadV(t, v, 0, 128)
		if st := v.Stats(); st.DegradedReads == 0 {
			t.Error("degraded reads not counted")
		}
	})
}
