package raizn

import (
	"bytes"
	"testing"

	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// testDevConfig returns a small ZNS device: 8 zones of 128 writable
// sectors, 3 of which RAIZN reserves for metadata (leaving 5 logical
// zones of 512 sectors over a 5-device array with su=16).
func testDevConfig() zns.Config {
	cfg := zns.DefaultConfig()
	cfg.NumZones = 8
	cfg.ZoneSize = 160
	cfg.ZoneCap = 128
	cfg.MaxOpenZones = 8
	cfg.MaxActiveZones = 10
	return cfg
}

func newTestDevices(clk *vclock.Clock, n int) []*zns.Device {
	devs := make([]*zns.Device, n)
	for i := range devs {
		devs[i] = zns.NewDevice(clk, testDevConfig())
	}
	return devs
}

// runVol creates a 5-device volume and runs fn inside a simulation.
func runVol(t *testing.T, fn func(c *vclock.Clock, v *Volume, devs []*zns.Device)) {
	t.Helper()
	c := vclock.New()
	c.Run(func() {
		devs := newTestDevices(c, 5)
		v, err := Create(c, devs, DefaultConfig())
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		fn(c, v, devs)
	})
}

// lbaPattern fills n sectors with bytes that identify their LBA, so any
// misrouting shows up as a data mismatch.
func lbaPattern(v *Volume, lba int64, nSectors int) []byte {
	ss := v.SectorSize()
	out := make([]byte, nSectors*ss)
	for i := 0; i < nSectors; i++ {
		cur := lba + int64(i)
		for j := 0; j < ss; j++ {
			out[i*ss+j] = byte(cur) ^ byte(j) ^ byte(cur>>8)
		}
	}
	return out
}

func mustWriteV(t *testing.T, v *Volume, lba int64, n int, flags zns.Flag) {
	t.Helper()
	if err := v.Write(lba, lbaPattern(v, lba, n), flags); err != nil {
		t.Fatalf("Write(%d, %d sectors): %v", lba, n, err)
	}
}

func checkReadV(t *testing.T, v *Volume, lba int64, n int) {
	t.Helper()
	buf := make([]byte, n*v.SectorSize())
	if err := v.Read(lba, buf); err != nil {
		t.Fatalf("Read(%d, %d sectors): %v", lba, n, err)
	}
	if !bytes.Equal(buf, lbaPattern(v, lba, n)) {
		t.Fatalf("Read(%d, %d sectors): data mismatch", lba, n)
	}
}

func TestCreateGeometry(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		if v.NumZones() != 5 {
			t.Errorf("NumZones = %d, want 5", v.NumZones())
		}
		if v.ZoneSectors() != 512 {
			t.Errorf("ZoneSectors = %d, want 512", v.ZoneSectors())
		}
		if v.StripeSectors() != 64 {
			t.Errorf("StripeSectors = %d, want 64", v.StripeSectors())
		}
		if v.NumSectors() != 2560 {
			t.Errorf("NumSectors = %d, want 2560", v.NumSectors())
		}
		if v.Degraded() != -1 {
			t.Errorf("new volume degraded = %d", v.Degraded())
		}
	})
}

func TestCreateRequiresThreeDevices(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		devs := newTestDevices(c, 2)
		if _, err := Create(c, devs, DefaultConfig()); err != ErrNotEnoughDevs {
			t.Errorf("Create with 2 devices: %v", err)
		}
	})
}

func TestWriteReadFullStripe(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0) // exactly one stripe
		checkReadV(t, v, 0, 64)
	})
}

func TestWriteReadSubStripeUnit(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		// Many small sequential writes (4 KiB each).
		for i := int64(0); i < 40; i++ {
			mustWriteV(t, v, i, 1, 0)
		}
		checkReadV(t, v, 0, 40)
		// Read at odd offsets/lengths.
		checkReadV(t, v, 7, 9)
		checkReadV(t, v, 15, 17)
		checkReadV(t, v, 39, 1)
	})
}

func TestWriteReadWholeZone(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		zs := v.ZoneSectors()
		mustWriteV(t, v, 0, int(zs), 0)
		checkReadV(t, v, 0, int(zs))
		if st := v.Zone(0).State; st != zns.ZoneFull {
			t.Errorf("zone state = %v, want full", st)
		}
		// The full zone rejects further writes; the next zone accepts
		// its first write.
		if err := v.Write(zs-1, lbaPattern(v, zs-1, 1), 0); err != ErrZoneFull && err != ErrNotSequential {
			t.Errorf("write into full zone error = %v", err)
		}
		mustWriteV(t, v, zs, 1, 0)
	})
}

func TestWriteCrossStripeBoundaries(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		// Irregular sizes that cross unit and stripe boundaries.
		sizes := []int{5, 11, 16, 33, 64, 3, 60, 64} // totals 256 = full zone
		lba := int64(0)
		for _, n := range sizes {
			mustWriteV(t, v, lba, n, 0)
			lba += int64(n)
		}
		checkReadV(t, v, 0, 256)
	})
}

func TestSequentialityEnforced(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 4, 0)
		if err := v.Write(8, lbaPattern(v, 8, 1), 0); err != ErrNotSequential {
			t.Errorf("gap write error = %v", err)
		}
		if err := v.Write(0, lbaPattern(v, 0, 1), 0); err != ErrNotSequential {
			t.Errorf("rewind write error = %v", err)
		}
	})
}

func TestZoneBoundaryRejected(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		zs := v.ZoneSectors()
		mustWriteV(t, v, 0, int(zs)-2, 0)
		if err := v.Write(zs-2, lbaPattern(v, zs-2, 4), 0); err != ErrZoneBoundary {
			t.Errorf("cross-zone write error = %v", err)
		}
	})
}

func TestReadBeyondWP(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 4, 0)
		buf := make([]byte, 2*v.SectorSize())
		if err := v.Read(4, buf); err != ErrReadBeyondWP {
			t.Errorf("read beyond WP error = %v", err)
		}
	})
}

func TestMultipleZonesIndependent(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		zs := v.ZoneSectors()
		for z := int64(0); z < 3; z++ {
			mustWriteV(t, v, z*zs, 20, 0)
		}
		for z := int64(0); z < 3; z++ {
			checkReadV(t, v, z*zs, 20)
		}
	})
}

func TestPipelinedWrites(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		var futs []*vclock.Future
		for off := int64(0); off < v.ZoneSectors(); off += 8 {
			futs = append(futs, v.SubmitWrite(off, lbaPattern(v, off, 8), 0))
		}
		if err := vclock.WaitAll(futs...); err != nil {
			t.Fatalf("pipelined writes: %v", err)
		}
		checkReadV(t, v, 0, int(v.ZoneSectors()))
	})
}

func TestZoneResetAndRewrite(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 100, 0)
		gen0 := v.Generation(0)
		if err := v.ResetZone(0); err != nil {
			t.Fatalf("ResetZone: %v", err)
		}
		if st := v.Zone(0).State; st != zns.ZoneEmpty {
			t.Errorf("state after reset = %v", st)
		}
		if g := v.Generation(0); g != gen0+1 {
			t.Errorf("generation after reset = %d, want %d", g, gen0+1)
		}
		// Zone is writable from 0 again.
		mustWriteV(t, v, 0, 30, 0)
		checkReadV(t, v, 0, 30)
	})
}

func TestResetEmptyZoneNoop(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		gen0 := v.Generation(2)
		if err := v.ResetZone(2); err != nil {
			t.Fatal(err)
		}
		if g := v.Generation(2); g != gen0 {
			t.Errorf("generation changed on empty reset: %d -> %d", gen0, g)
		}
	})
}

func TestFinishZone(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 37, 0) // partial stripe tail
		if err := v.FinishZone(0); err != nil {
			t.Fatalf("FinishZone: %v", err)
		}
		if st := v.Zone(0).State; st != zns.ZoneFull {
			t.Errorf("state = %v, want full", st)
		}
		checkReadV(t, v, 0, 37)
		// Reads beyond the data return zeroes.
		buf := make([]byte, 8*v.SectorSize())
		if err := v.Read(40, buf); err != nil {
			t.Fatalf("read of finished zone: %v", err)
		}
		if !bytes.Equal(buf, make([]byte, len(buf))) {
			t.Error("finished-zone tail should read zeroes")
		}
		// Writes rejected.
		if err := v.Write(37, lbaPattern(v, 37, 1), 0); err != ErrZoneFull {
			t.Errorf("write to finished zone error = %v", err)
		}
	})
}

func TestMaxOpenZonesEnforced(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		devs := newTestDevices(c, 5)
		cfg := DefaultConfig()
		cfg.MaxOpenZones = 2
		v, err := Create(c, devs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		zs := v.ZoneSectors()
		mustWriteV(t, v, 0, 4, 0)
		mustWriteV(t, v, zs, 4, 0)
		if err := v.Write(2*zs, lbaPattern(v, 2*zs, 4), 0); err != ErrTooManyOpen {
			t.Errorf("3rd open error = %v", err)
		}
		if err := v.CloseZone(0); err != nil {
			t.Fatal(err)
		}
		mustWriteV(t, v, 2*zs, 4, 0)
		// Reopening the closed zone needs a free slot.
		if err := v.Write(4, lbaPattern(v, 4, 4), 0); err != ErrTooManyOpen {
			t.Errorf("reopen error = %v", err)
		}
	})
}

func TestFlushAdvancesPersistence(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 20, 0)
		if p := v.Zone(0).PersistedWP; p != 0 {
			t.Errorf("persisted WP before flush = %d", p)
		}
		if err := v.Flush(); err != nil {
			t.Fatal(err)
		}
		if p := v.Zone(0).PersistedWP; p != 20 {
			t.Errorf("persisted WP after flush = %d, want 20", p)
		}
		bm := v.PersistenceBitmap(0)
		if bm[0]&1 == 0 || bm[0]&2 == 0 {
			t.Errorf("bitmap = %b, want first two SUs set", bm[0])
		}
	})
}

func TestFUAWritePersists(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 10, 0)       // volatile
		mustWriteV(t, v, 10, 5, zns.FUA) // must persist everything before it
		if p := v.Zone(0).PersistedWP; p != 15 {
			t.Errorf("persisted WP after FUA = %d, want 15", p)
		}
	})
}

func TestParityOnDevices(t *testing.T) {
	// After a full stripe write, XOR of all devices' first stripe-unit
	// rows must be zero (parity invariant).
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 64, 0)
		ss := v.SectorSize()
		suBytes := 16 * ss
		acc := make([]byte, suBytes)
		for _, d := range devs {
			row := make([]byte, suBytes)
			if err := d.Read(0, row).Wait(); err != nil {
				t.Fatalf("device read: %v", err)
			}
			for i := range acc {
				acc[i] ^= row[i]
			}
		}
		for i, b := range acc {
			if b != 0 {
				t.Fatalf("parity invariant violated at byte %d", i)
			}
		}
	})
}

func TestPartialParityLogged(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 10, 0) // sub-stripe: must produce a pp log
		// The parity device of (zone 0, stripe 0) must hold a pp record
		// in its partial-parity metadata zone.
		pdev := v.lt.parityDev(0, 0)
		recs, err := scanMDZones(devs[pdev], v.lt, v.SectorSize())
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range recs {
			if r.typ.base() == recPartialParity && r.startLBA == 0 && r.endLBA == 10 {
				found = true
			}
		}
		if !found {
			t.Error("no partial-parity record found on the parity device")
		}
	})
}

func TestUnalignedAndOOB(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		if err := v.Write(0, make([]byte, 100), 0); err != ErrUnaligned {
			t.Errorf("unaligned write error = %v", err)
		}
		if err := v.Write(v.NumSectors(), lbaPattern(v, 0, 1), 0); err != ErrOutOfRange {
			t.Errorf("oob write error = %v", err)
		}
		if err := v.Read(-1, make([]byte, v.SectorSize())); err != ErrOutOfRange {
			t.Errorf("negative read error = %v", err)
		}
	})
}

func TestReadSpansZones(t *testing.T) {
	runVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		zs := v.ZoneSectors()
		mustWriteV(t, v, 0, int(zs), 0)
		mustWriteV(t, v, zs, 10, 0)
		checkReadV(t, v, zs-6, 16) // crosses the zone 0 / zone 1 boundary
	})
}
